// trace_smoke — short trace-emitting run for CI and quick local checks.
//
// Runs a miniature unified fan + tDVFS experiment with full telemetry,
// exports the bundle (binary trace, Chrome JSON, run summary), and
// cross-checks the trace against the controllers' own event logs: every fan
// retarget and tDVFS transition the run reports must appear in the trace at
// the same time with the same from/to values. Exits non-zero on mismatch so
// CI fails loudly, not by artifact inspection.
//
// Usage: trace_smoke [--horizon S] [--out-prefix PATH]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "obs/trace_summary.hpp"

int main(int argc, char** argv) {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  double horizon_s = 120.0;
  std::string out_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--horizon") == 0 && i + 1 < argc) {
      horizon_s = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--out-prefix") == 0 && i + 1 < argc) {
      out_prefix = argv[++i];
    }
  }

  tb::banner("trace smoke", "miniature traced run + trace/event-log cross-check");

  ExperimentConfig cfg = paper_platform();
  cfg.name = "trace_smoke";
  cfg.nodes = 2;
  cfg.workload = WorkloadKind::kCpuBurn;
  cfg.cpu_burn_duration = Seconds{horizon_s * 0.75};
  cfg.engine.horizon = Seconds{horizon_s};
  cfg.fan = FanPolicyKind::kDynamic;
  cfg.dvfs = DvfsPolicyKind::kTdvfs;
  cfg.pp = PolicyParam::weak();  // weak fan => tDVFS actually fires
  cfg.max_duty = DutyCycle{50.0};
  cfg.telemetry.trace = true;
  cfg.telemetry.metrics = true;

  const ExperimentResult result = run_experiment(cfg);
  if (out_prefix.empty()) {
    tb::export_telemetry(result, cfg.name);
  } else {
    obs::write_trace_file(out_prefix + ".thermtrace", *result.trace);
    obs::write_chrome_trace(out_prefix + ".trace.json", *result.trace);
    write_run_summary_json(out_prefix + ".summary.json", cfg.name, result);
    std::printf("  telemetry bundle written under prefix %s\n", out_prefix.c_str());
  }

  // Cross-check: reconstruct the applied mode changes from the trace and
  // compare against the controllers' own logs, per node and in order.
  const std::vector<obs::TraceEvent> events = result.trace->merged_events();
  const std::vector<obs::ModeChange> changes = obs::mode_change_sequence(events);

  bool ok = true;
  std::size_t traced_fan = 0;
  std::size_t traced_dvfs = 0;
  for (std::size_t node = 0; node < cfg.nodes; ++node) {
    std::vector<obs::ModeChange> fan_changes;
    std::vector<obs::ModeChange> dvfs_changes;
    for (const obs::ModeChange& mc : changes) {
      if (mc.node != node) {
        continue;
      }
      (mc.subsystem == obs::TraceSubsystem::kFan ? fan_changes : dvfs_changes).push_back(mc);
    }
    traced_fan += fan_changes.size();
    traced_dvfs += dvfs_changes.size();

    const std::vector<FanEvent>& fan_log = result.fan_events[node];
    ok = tb::shape_check("node" + std::to_string(node) + ": trace holds every fan retarget (" +
                             std::to_string(fan_log.size()) + ")",
                         fan_changes.size() == fan_log.size()) &&
         ok;
    for (std::size_t k = 0; k < std::min(fan_changes.size(), fan_log.size()); ++k) {
      const bool match = std::abs(fan_changes[k].t_s - fan_log[k].time_s) < 1e-9 &&
                         fan_changes[k].from == fan_log[k].from_duty &&
                         fan_changes[k].to == fan_log[k].to_duty &&
                         fan_changes[k].used_level2 == fan_log[k].used_level2;
      if (!match) {
        tb::shape_check("node" + std::to_string(node) + ": fan change " + std::to_string(k) +
                            " matches (incl. level-2 attribution)",
                        false);
        ok = false;
      }
    }

    const std::vector<TdvfsEvent>& dvfs_log = result.tdvfs_events[node];
    ok = tb::shape_check("node" + std::to_string(node) +
                             ": trace holds every tDVFS transition (" +
                             std::to_string(dvfs_log.size()) + ")",
                         dvfs_changes.size() == dvfs_log.size()) &&
         ok;
    for (std::size_t k = 0; k < std::min(dvfs_changes.size(), dvfs_log.size()); ++k) {
      const bool match = std::abs(dvfs_changes[k].t_s - dvfs_log[k].time_s) < 1e-9 &&
                         dvfs_changes[k].from == dvfs_log[k].from_ghz &&
                         dvfs_changes[k].to == dvfs_log[k].to_ghz;
      if (!match) {
        tb::shape_check("node" + std::to_string(node) + ": tDVFS change " + std::to_string(k) +
                            " matches",
                        false);
        ok = false;
      }
    }
  }

  ok = tb::shape_check("run produced fan retargets to trace", traced_fan > 0) && ok;
  ok = tb::shape_check("trace recorded window rounds",
                       !events.empty() && result.trace->total_emitted() > 0) &&
       ok;
  std::printf("  traced: %zu fan changes, %zu tDVFS changes, %llu events total\n", traced_fan,
              traced_dvfs, static_cast<unsigned long long>(result.trace->total_emitted()));
  return ok ? 0 : 1;
}
