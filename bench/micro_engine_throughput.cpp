// Engine throughput micro-bench: steps/sec as a first-class metric.
//
// Three measurements, all written to a machine-readable JSON file so the
// performance trajectory is tracked PR-over-PR:
//
//   1. single-thread hot path: one 16-node cluster with banked unified
//      controllers and a barrier-coupled BT workload, run for a fixed
//      simulated horizon; reports engine physics steps per wall second
//      (and node-steps/sec, since per-node cost is what scales).
//   2. fleet scaling ladder: the same rig construction (fleet-backed SoA
//      cluster, per-node unified controllers, synthetic loads) at 16 to
//      100k nodes under a fixed node-step budget; reports steps/sec,
//      node-steps/sec and bytes/node (exact SoA footprint from FleetState
//      plus the process-RSS delta across rig construction) per point.
//   3. parallel sweep runtime: an 8-point Pp sweep executed serially
//      (1 worker) and in parallel (hardware workers) through
//      runtime::run_sweep; reports the wall-clock speedup and verifies the
//      two result sets are bit-identical (the runtime's determinism
//      contract). On a single-hardware-thread machine the speedup is
//      reported as not meaningful rather than pretending 1.0x is a result.
//
// Usage: micro_engine_throughput [--horizon S] [--nodes N] [--hot-reps R]
//                                [--sweep-points K]
//                                [--threads T] [--workers W] [--max-scale M]
//                                [--out PATH]
// Defaults: 120 s horizon, 16 nodes, 8 sweep points, hardware threads,
// engine workers auto (0), scaling ladder up to 100000 nodes,
// BENCH_engine.json in the current directory (the ctest smoke target runs a
// short horizon and a capped ladder in the build tree; the tracked repo-root
// file comes from a full run).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#if defined(__GLIBC__)
#include <malloc.h>
#endif
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/experiment.hpp"
#include "core/control_bank.hpp"
#include "core/unified_controller.hpp"
#include "runtime/sweep.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/app.hpp"
#include "workload/npb.hpp"

namespace {

using namespace thermctl;
using namespace thermctl::core;

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Returns freed heap pages to the OS so the next RSS delta reflects this
/// ladder point's allocations alone. Without the trim, small points reuse
/// already-resident pages freed by an earlier (larger) point's teardown and
/// report an RSS delta of zero.
void trim_heap() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
}

/// Current resident set size in bytes (Linux /proc; 0 where unavailable).
std::size_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  unsigned long total_pages = 0;
  unsigned long resident_pages = 0;
  const int got = std::fscanf(f, "%lu %lu", &total_pages, &resident_pages);
  std::fclose(f);
  if (got != 2) {
    return 0;
  }
  return static_cast<std::size_t>(resident_pages) * 4096u;
#else
  return 0;
#endif
}

/// Peak resident set size in kilobytes over the process lifetime (0 where
/// unavailable).
std::size_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss) / 1024u;  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss);  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

struct HotPathResult {
  std::size_t nodes = 0;
  double horizon_s = 0.0;
  double physics_dt = 0.0;
  std::size_t engine_workers = 0;
  long long steps = 0;
  double wall_s = 0.0;
  double steps_per_sec = 0.0;
  double node_steps_per_sec = 0.0;
  double sim_per_wall = 0.0;
  int reps = 1;  // best-of-N repetitions (noise on a shared box is additive)
};

HotPathResult measure_hot_path_once(std::size_t nodes, double horizon_s, int workers) {
  cluster::NodeParams params;
  cluster::Cluster rack{nodes, params};
  for (std::size_t i = 0; i < nodes; ++i) {
    rack.node(i).set_utilization(Utilization{0.02});
  }
  rack.settle_all();

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{horizon_s};
  engine_cfg.workers = workers;
  cluster::Engine engine{rack, engine_cfg};

  // A long BT job (never completes within the horizon) keeps the barrier
  // coupling and controller activity in the measured loop. Iterations are
  // sized to the horizon with a wide margin (one BT timestep is well over a
  // millisecond of simulated wall) — the run only ever walks a prefix of the
  // program, so the trajectory is identical to an arbitrarily longer job.
  Rng rng{nodes * 131 + 7};
  workload::NpbParams npb = workload::bt_class_b();
  npb.iterations = std::max(2000, static_cast<int>(horizon_s * 100.0));
  workload::ParallelApp app{"BT",
                            workload::make_npb_programs(npb, static_cast<int>(nodes), rng)};
  std::vector<std::size_t> mapping(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    mapping[i] = i;
  }
  engine.attach_app(app, mapping);

  ControlBank bank{nodes, rack.fleet() != nullptr ? rack.fleet()->sensor_last_data() : nullptr};
  for (std::size_t i = 0; i < nodes; ++i) {
    UnifiedConfig cfg;
    cfg.pp = PolicyParam{50};
    bank.emplace_unified(i, rack.node(i).hwmon(), rack.node(i).cpufreq(), cfg);
  }
  engine.add_periodic(params.sample_period, [&bank](SimTime now) { bank.tick_unified(now); });

  const auto start = std::chrono::steady_clock::now();
  const cluster::RunResult run = engine.run();
  const double wall = wall_seconds_since(start);

  HotPathResult r;
  r.nodes = nodes;
  r.horizon_s = horizon_s;
  r.physics_dt = engine_cfg.physics_dt.value();
  r.engine_workers = engine.resolved_workers();
  r.steps = static_cast<long long>(run.times.back() / engine_cfg.physics_dt.value() + 0.5);
  r.wall_s = wall;
  r.steps_per_sec = static_cast<double>(r.steps) / wall;
  r.node_steps_per_sec = r.steps_per_sec * static_cast<double>(nodes);
  r.sim_per_wall = run.times.back() / wall;
  return r;
}

/// Best of `reps` identical hot-path runs. A short measurement window (a few
/// ms at the default horizon) is easily torn by scheduler preemption on a
/// busy machine; interference only ever *slows* a run, so the fastest
/// repetition is the closest estimate of the engine's actual throughput.
HotPathResult measure_hot_path(std::size_t nodes, double horizon_s, int workers, int reps) {
  HotPathResult best{};
  for (int i = 0; i < reps; ++i) {
    HotPathResult r = measure_hot_path_once(nodes, horizon_s, workers);
    if (i == 0 || r.steps_per_sec > best.steps_per_sec) {
      best = r;
    }
  }
  best.reps = reps;
  return best;
}

struct ScalePoint {
  std::size_t nodes = 0;
  std::size_t engine_workers = 0;
  long long steps = 0;
  double build_wall_s = 0.0;
  double wall_s = 0.0;
  double steps_per_sec = 0.0;
  double node_steps_per_sec = 0.0;
  double fleet_bytes_per_node = 0.0;
  double rss_bytes_per_node = 0.0;
};

/// One ladder point: fleet-backed cluster + per-node unified controllers +
/// out-of-phase synthetic loads, run under a fixed node-step budget so every
/// scale costs roughly the same wall time. No barrier-coupled app here — the
/// paper's scaling story is decentralized per-node control, and a 100k-rank
/// expanded NPB program would dominate memory, not the fleet under test.
ScalePoint measure_scale(std::size_t nodes, int workers) {
  constexpr double kNodeStepBudget = 4e6;
  constexpr long long kMinSteps = 40;
  constexpr long long kMaxSteps = 20000;

  trim_heap();
  const std::size_t rss_before = current_rss_bytes();
  const auto build_start = std::chrono::steady_clock::now();

  cluster::NodeParams params;
  cluster::Cluster rack{nodes, params};

  cluster::EngineConfig engine_cfg;
  engine_cfg.workers = workers;
  const long long steps = std::clamp(
      static_cast<long long>(kNodeStepBudget / static_cast<double>(nodes)), kMinSteps,
      kMaxSteps);
  engine_cfg.horizon = Seconds{static_cast<double>(steps) * engine_cfg.physics_dt.value()};
  cluster::Engine engine{rack, engine_cfg};

  ControlBank bank{nodes, rack.fleet() != nullptr ? rack.fleet()->sensor_last_data() : nullptr};
  for (std::size_t i = 0; i < nodes; ++i) {
    UnifiedConfig cfg;
    cfg.pp = PolicyParam{50};
    bank.emplace_unified(i, rack.node(i).hwmon(), rack.node(i).cpufreq(), cfg);
  }
  engine.add_periodic(params.sample_period, [&bank](SimTime now) { bank.tick_unified(now); });

  // Out-of-phase sinusoidal load, util(i, t) = 0.55 + 0.35·sin(0.7t + 0.13i),
  // delivered through the batched fleet hook: one call per step fills the
  // whole utilization row. The per-node phase offsets are precomputed and the
  // angle-addition identity sin(a+b) = sin·cos + cos·sin turns the row fill
  // into a vectorizable fused-multiply sweep — at 100k nodes the per-node
  // std::function + libm-sin dispatch this replaces cost a third of the run.
  std::vector<double> phase_sin(nodes);
  std::vector<double> phase_cos(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    phase_sin[i] = std::sin(static_cast<double>(i) * 0.13);
    phase_cos[i] = std::cos(static_cast<double>(i) * 0.13);
  }
  engine.set_fleet_load_fn([ps = std::move(phase_sin), pc = std::move(phase_cos)](
                               SimTime t, double* util, const std::uint8_t* halted,
                               std::size_t count) {
    const double s = std::sin(t.seconds() * 0.7);
    const double c = std::cos(t.seconds() * 0.7);
    for (std::size_t i = 0; i < count; ++i) {
      util[i] = halted[i] != 0 ? 0.0 : 0.55 + 0.35 * (s * pc[i] + c * ps[i]);
    }
  });

  const double build_wall = wall_seconds_since(build_start);
  const std::size_t rss_after = current_rss_bytes();

  const auto start = std::chrono::steady_clock::now();
  const cluster::RunResult run = engine.run();
  const double wall = wall_seconds_since(start);

  ScalePoint p;
  p.nodes = nodes;
  p.engine_workers = engine.resolved_workers();
  p.steps = static_cast<long long>(run.times.back() / engine_cfg.physics_dt.value() + 0.5);
  p.build_wall_s = build_wall;
  p.wall_s = wall;
  p.steps_per_sec = static_cast<double>(p.steps) / wall;
  p.node_steps_per_sec = p.steps_per_sec * static_cast<double>(nodes);
  if (rack.fleet() != nullptr) {
    p.fleet_bytes_per_node =
        static_cast<double>(rack.fleet()->memory_bytes()) / static_cast<double>(nodes);
  }
  if (rss_after > rss_before) {
    p.rss_bytes_per_node =
        static_cast<double>(rss_after - rss_before) / static_cast<double>(nodes);
  }
  return p;
}

std::vector<ExperimentConfig> build_sweep(std::size_t points) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    ExperimentConfig cfg = paper_platform();
    // Pp spread over [20, 90]: an aggressive-to-weak policy sweep like the
    // paper's Figs. 5/10, sized to finish quickly per point.
    const int pp = 20 + static_cast<int>(k * 70 / (points > 1 ? points - 1 : 1));
    cfg.name = "sweep_pp" + std::to_string(pp);
    cfg.workload = WorkloadKind::kNpbBt;
    cfg.npb_iterations_override = 30;
    cfg.fan = FanPolicyKind::kDynamic;
    cfg.dvfs = DvfsPolicyKind::kTdvfs;
    cfg.pp = PolicyParam{pp};
    cfg.max_duty = DutyCycle{50.0};
    configs.push_back(cfg);
  }
  return configs;
}

bool runs_identical(const cluster::RunResult& a, const cluster::RunResult& b) {
  if (a.times != b.times || a.nodes.size() != b.nodes.size() ||
      a.app_completed != b.app_completed || a.exec_time_s != b.exec_time_s) {
    return false;
  }
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const cluster::NodeSeries& x = a.nodes[i];
    const cluster::NodeSeries& y = b.nodes[i];
    if (x.die_temp != y.die_temp || x.sensor_temp != y.sensor_temp || x.duty != y.duty ||
        x.rpm != y.rpm || x.freq_ghz != y.freq_ghz || x.power_w != y.power_w ||
        x.util != y.util || x.activity != y.activity) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.summaries.size(); ++i) {
    if (a.summaries[i].avg_die_temp != b.summaries[i].avg_die_temp ||
        a.summaries[i].energy_j != b.summaries[i].energy_j ||
        a.summaries[i].freq_transitions != b.summaries[i].freq_transitions) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  namespace tb = thermctl::bench;

  double horizon_s = 120.0;
  std::size_t nodes = 16;
  std::size_t sweep_points = 8;
  std::size_t threads = 0;    // 0 = hardware
  int engine_workers = 0;     // 0 = auto (one shard per hardware thread)
  std::size_t max_scale = 100000;
  int hot_reps = 3;  // best-of; see measure_hot_path
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--horizon") == 0) {
      horizon_s = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      nodes = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--sweep-points") == 0) {
      sweep_points = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      engine_workers = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--max-scale") == 0) {
      max_scale = static_cast<std::size_t>(std::atol(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--hot-reps") == 0) {
      hot_reps = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
  }

  tb::banner("Engine throughput",
             "hot-path steps/sec + fleet scaling ladder + sweep speedup "
             "(BENCH_engine.json)");

  const HotPathResult hot = measure_hot_path(nodes, horizon_s, engine_workers, hot_reps);
  std::printf("  hot path: %zu nodes, %.0f sim-s, %lld steps in %.3f wall-s"
              " (%zu engine workers, best of %d)\n",
              hot.nodes, hot.horizon_s, hot.steps, hot.wall_s, hot.engine_workers, hot.reps);
  std::printf("  steps/sec:       %.0f\n", hot.steps_per_sec);
  std::printf("  node-steps/sec:  %.0f\n", hot.node_steps_per_sec);
  std::printf("  sim-s per wall-s: %.1f\n", hot.sim_per_wall);

  // Fleet scaling ladder: each point is built, measured, printed and torn
  // down before the next — one rig in memory at a time, so the 100k point
  // reflects steady-state footprint rather than accumulated rigs.
  std::vector<ScalePoint> ladder;
  std::printf("  scaling ladder (node-step budget per point):\n");
  for (std::size_t n : {std::size_t{16}, std::size_t{256}, std::size_t{2048},
                        std::size_t{16384}, std::size_t{100000}}) {
    if (n > max_scale) {
      continue;
    }
    const ScalePoint p = measure_scale(n, engine_workers);
    std::printf("    %7zu nodes: %8.0f steps/s, %11.0f node-steps/s, "
                "%4.0f B/node SoA, %6.0f B/node RSS, build %.2fs, run %.2fs"
                " (%zu workers)\n",
                p.nodes, p.steps_per_sec, p.node_steps_per_sec, p.fleet_bytes_per_node,
                p.rss_bytes_per_node, p.build_wall_s, p.wall_s, p.engine_workers);
    ladder.push_back(p);
  }

  const std::size_t hw = runtime::default_thread_count();
  const std::size_t par_threads = threads == 0 ? hw : threads;
  const bool parallelism_available = hw > 1;
  const std::vector<ExperimentConfig> sweep_cfgs = build_sweep(sweep_points);

  auto start = std::chrono::steady_clock::now();
  const auto serial = runtime::run_sweep(sweep_cfgs, {.threads = 1});
  const double serial_wall = wall_seconds_since(start);

  start = std::chrono::steady_clock::now();
  const auto parallel = runtime::run_sweep(sweep_cfgs, {.threads = par_threads});
  const double parallel_wall = wall_seconds_since(start);

  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = runs_identical(serial[i].run, parallel[i].run);
  }
  const double speedup = serial_wall / std::max(parallel_wall, 1e-9);

  std::printf("  sweep: %zu points, serial %.3f s, parallel (%zu workers) %.3f s, %.2fx\n",
              sweep_cfgs.size(), serial_wall, par_threads, parallel_wall, speedup);
  tb::shape_check("parallel sweep results bit-identical to serial", identical);
  if (hw >= 4) {
    tb::shape_check("parallel sweep speedup >= 3x with >= 4 hardware threads", speedup >= 3.0);
  } else if (!parallelism_available) {
    tb::note("  (single hardware thread: sweep speedup and sharded-engine scaling are\n"
             "   not measurable here; the speedup field records overhead, not parallelism)");
  } else {
    tb::note("  (speedup target applies at >= 4 hardware threads; this machine has " +
             std::to_string(hw) + ")");
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"micro_engine_throughput\",\n");
  std::fprintf(f, "  \"hot_path\": {\n");
  std::fprintf(f, "    \"nodes\": %zu,\n", hot.nodes);
  std::fprintf(f, "    \"horizon_sim_s\": %.3f,\n", hot.horizon_s);
  std::fprintf(f, "    \"physics_dt_s\": %.3f,\n", hot.physics_dt);
  std::fprintf(f, "    \"engine_workers\": %zu,\n", hot.engine_workers);
  std::fprintf(f, "    \"best_of_reps\": %d,\n", hot.reps);
  std::fprintf(f, "    \"engine_steps\": %lld,\n", hot.steps);
  std::fprintf(f, "    \"wall_s\": %.6f,\n", hot.wall_s);
  std::fprintf(f, "    \"steps_per_sec\": %.1f,\n", hot.steps_per_sec);
  std::fprintf(f, "    \"node_steps_per_sec\": %.1f,\n", hot.node_steps_per_sec);
  std::fprintf(f, "    \"sim_seconds_per_wall_second\": %.2f\n", hot.sim_per_wall);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"scaling\": [\n");
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const ScalePoint& p = ladder[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"nodes\": %zu,\n", p.nodes);
    std::fprintf(f, "      \"engine_workers\": %zu,\n", p.engine_workers);
    std::fprintf(f, "      \"engine_steps\": %lld,\n", p.steps);
    std::fprintf(f, "      \"build_wall_s\": %.6f,\n", p.build_wall_s);
    std::fprintf(f, "      \"wall_s\": %.6f,\n", p.wall_s);
    std::fprintf(f, "      \"steps_per_sec\": %.1f,\n", p.steps_per_sec);
    std::fprintf(f, "      \"node_steps_per_sec\": %.1f,\n", p.node_steps_per_sec);
    std::fprintf(f, "      \"fleet_bytes_per_node\": %.1f,\n", p.fleet_bytes_per_node);
    std::fprintf(f, "      \"rss_bytes_per_node\": %.1f\n", p.rss_bytes_per_node);
    std::fprintf(f, "    }%s\n", i + 1 < ladder.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"sweep\": {\n");
  std::fprintf(f, "    \"points\": %zu,\n", sweep_cfgs.size());
  std::fprintf(f, "    \"workers\": %zu,\n", par_threads);
  std::fprintf(f, "    \"serial_wall_s\": %.6f,\n", serial_wall);
  std::fprintf(f, "    \"parallel_wall_s\": %.6f,\n", parallel_wall);
  std::fprintf(f, "    \"speedup\": %.3f,\n", speedup);
  std::fprintf(f, "    \"speedup_meaningful\": %s,\n",
               parallelism_available ? "true" : "false");
  std::fprintf(f, "    \"identical_to_serial\": %s\n", identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"memory\": {\n");
  std::fprintf(f, "    \"peak_rss_kb\": %zu\n", peak_rss_kb());
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"hardware_threads\": %zu,\n", hw);
  std::fprintf(f, "  \"parallelism_available\": %s\n",
               parallelism_available ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  json written: %s\n", out_path.c_str());

  return identical ? 0 : 1;
}
