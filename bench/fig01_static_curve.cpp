// Figure 1: the traditional static fan curve — PWM duty vs temperature.
//
// Paper: "The traditional fan speed is set at PWMmin when the temperature is
// no more than Tmin, and increases linearly with temperature to full speed
// PWMmax when the temperature reaches Tmax. The parameter values in our
// cluster are: PWMmin=10%, Tmin=38°C and Tmax=82°C."
//
// Regenerated here from the ADT7467 model's automatic mode, i.e. the exact
// curve the traditional baseline runs on in Figs. 6-8.
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "hw/adt7467.hpp"

int main() {
  using namespace thermctl;
  namespace tb = thermctl::bench;

  tb::banner("Figure 1", "static PWM-vs-temperature curve (ADT7467 automatic mode)");

  hw::Adt7467 chip;  // boots with the paper's curve: PWMmin 10%, Tmin 38, Trange 44

  CsvWriter csv{tb::out_dir() + "/fig01_static_curve.csv", {"temp_c", "duty_pct"}};
  TextTable table{{"temp (degC)", "PWM duty (%)"}};
  for (int t = 28; t <= 92; t += 4) {
    const double duty = chip.auto_curve(Celsius{static_cast<double>(t)}).percent();
    csv.row({static_cast<double>(t), duty});
    table.add_row(std::to_string(t), {duty}, 1);
  }
  std::printf("%s", table.render().c_str());
  std::printf("  series written: %s/fig01_static_curve.csv\n", tb::out_dir().c_str());

  const double at_tmin = chip.auto_curve(Celsius{38.0}).percent();
  const double below = chip.auto_curve(Celsius{30.0}).percent();
  const double at_tmax = chip.auto_curve(Celsius{82.0}).percent();
  const double mid = chip.auto_curve(Celsius{60.0}).percent();
  tb::shape_check("duty == PWMmin (10%) at and below Tmin=38 degC",
                  at_tmin < 11.0 && below < 11.0);
  tb::shape_check("duty == 100% at Tmax=82 degC", at_tmax > 99.0);
  tb::shape_check("linear midpoint (~55%) at 60 degC", mid > 52.0 && mid < 58.0);
  return 0;
}
