// Technique comparison: load migration vs DVFS for a rack hot spot.
//
// Related-work positioning made quantitative: the paper's in-band DVFS slows
// the hot node (and through barriers, the whole BSP job) for as long as the
// hot spot lasts; migration (Heath, Powell et al.) pays one checkpoint stall
// to move the work somewhere cool — a better deal when a spare node exists
// and the ambient cause persists. The unified framework supports both; this
// bench shows where each wins.
//
// Scenario: 5 nodes, 4-rank BT job, one idle spare. Node 1 sits in a +11 degC
// recirculation pocket.
#include <memory>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/load_balancer.hpp"
#include "core/tdvfs.hpp"
#include "core/unified_controller.hpp"
#include "workload/app.hpp"
#include "workload/npb.hpp"

namespace {

using namespace thermctl;
using namespace thermctl::core;

constexpr std::size_t kNodes = 5;
constexpr std::size_t kHotNode = 1;

struct Outcome {
  double exec_s;
  double hottest;
  double avg_power;
  int migrations;
  std::uint64_t freq_changes;
};

enum class Response { kNone, kDvfs, kMigration };

Outcome run_response(Response response) {
  cluster::NodeParams params;
  cluster::Cluster rack{kNodes, params};
  for (std::size_t i = 0; i < kNodes; ++i) {
    rack.node(i).set_utilization(Utilization{0.02});
  }
  rack.set_inlet_temperature(kHotNode, Celsius{40.5});
  rack.settle_all();

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{400.0};
  cluster::Engine engine{rack, engine_cfg};

  Rng rng{2211};
  workload::NpbParams npb = workload::bt_class_b();
  npb.iterations = 150;
  workload::ParallelApp app{"BT", workload::make_npb_programs(npb, 4, rng)};
  engine.attach_app(app, {0, 1, 2, 3});  // node 4 is the spare

  std::vector<std::unique_ptr<TdvfsDaemon>> daemons;
  std::unique_ptr<ThermalLoadBalancer> balancer;

  if (response == Response::kDvfs) {
    for (std::size_t i = 0; i < 4; ++i) {
      TdvfsConfig tc;
      tc.pp = PolicyParam{50};
      tc.threshold = Celsius{55.0};
      daemons.push_back(
          std::make_unique<TdvfsDaemon>(rack.node(i).hwmon(), rack.node(i).cpufreq(), tc));
      TdvfsDaemon* raw = daemons.back().get();
      engine.add_periodic(params.sample_period, [raw](SimTime now) { raw->on_sample(now); });
    }
  } else if (response == Response::kMigration) {
    LoadBalancerConfig bc;
    bc.min_hot_temp = Celsius{55.0};
    bc.imbalance_threshold = CelsiusDelta{6.0};
    bc.migration_cost = Seconds{4.0};
    balancer = std::make_unique<ThermalLoadBalancer>(rack, engine, bc);
    ThermalLoadBalancer* raw = balancer.get();
    engine.add_periodic(Seconds{5.0}, [raw](SimTime now) { raw->on_tick(now); });
  }

  const cluster::RunResult run = engine.run();
  return Outcome{run.exec_time_s, run.max_die_temp(), run.avg_power_w(),
                 engine.migrations(), run.total_freq_transitions()};
}

}  // namespace

int main() {
  namespace tb = thermctl::bench;
  tb::banner("Comparison", "load migration vs DVFS for a persistent hot spot (BT.4 + spare)");

  const Outcome none = run_response(Response::kNone);
  const Outcome dvfs = run_response(Response::kDvfs);
  const Outcome migration = run_response(Response::kMigration);

  TextTable table{{"response", "exec (s)", "hottest die (degC)", "avg power (W)",
                   "migrations", "freq changes"}};
  auto row = [&table](const char* name, const Outcome& o) {
    table.add_row(name,
                  {o.exec_s, o.hottest, o.avg_power, static_cast<double>(o.migrations),
                   static_cast<double>(o.freq_changes)},
                  1);
  };
  row("none (ride it out)", none);
  row("tDVFS @55 on every node", dvfs);
  row("migrate to the spare", migration);
  std::printf("%s", table.render().c_str());
  tb::note("DVFS pays a *continuous* tax while the hot spot persists; migration pays\n"
           "one checkpoint stall and then runs at full speed on the spare");

  tb::shape_check("unmanaged run is the hottest",
                  none.hottest >= dvfs.hottest && none.hottest >= migration.hottest);
  tb::shape_check("migration actually happened and resolved the hot spot",
                  migration.migrations >= 1 && migration.hottest < none.hottest - 2.0);
  tb::shape_check("migration is faster than sustained DVFS for a persistent hot spot",
                  migration.exec_s < dvfs.exec_s);
  tb::shape_check("DVFS still beats doing nothing on peak temperature",
                  dvfs.hottest < none.hottest - 1.0);
  return 0;
}
