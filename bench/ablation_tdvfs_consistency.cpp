// Ablation: tDVFS trigger consistency (the "consistently above threshold"
// requirement of §4.3).
//
// With consistency_rounds = 1 the daemon reacts to single hot rounds —
// transient spikes cause frequency changes the paper's design explicitly
// avoids (Fig. 8's red circle). Larger values delay the legitimate response.
// The bench measures both: transitions under a spiky-but-safe trace, and
// response delay under a genuinely hot plateau.
#include "bench_util.hpp"
#include "core/tdvfs.hpp"
#include "hw/adt7467.hpp"
#include "hw/cpu_device.hpp"
#include "hw/i2c.hpp"
#include "hw/thermal_sensor.hpp"
#include "sysfs/adt7467_driver.hpp"
#include "sysfs/cpufreq.hpp"
#include "sysfs/hwmon.hpp"
#include "sysfs/vfs.hpp"

namespace {

using namespace thermctl;

struct Rig {
  sysfs::VirtualFs fs;
  hw::I2cBus bus;
  hw::Adt7467 chip;
  hw::CpuDevice cpu;
  sysfs::Adt7467Driver driver{bus};
  double truth = 45.0;
  hw::ThermalSensor sensor{[this] { return Celsius{truth}; },
                           [] {
                             hw::SensorParams p;
                             p.noise_sigma_degc = 0.0;
                             return p;
                           }(),
                           Rng{1}};
  std::unique_ptr<sysfs::HwmonDevice> hwmon;
  std::unique_ptr<sysfs::CpufreqPolicy> cpufreq;

  Rig() {
    bus.attach(sysfs::Adt7467Driver::kDefaultAddress, &chip);
    (void)driver.probe();
    hwmon = std::make_unique<sysfs::HwmonDevice>(fs, "/sys/class/hwmon", 0, sensor, driver);
    cpufreq = std::make_unique<sysfs::CpufreqPolicy>(fs, "/sys/devices/system/cpu", 0, cpu);
  }
};

}  // namespace

int main() {
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Ablation", "tDVFS consistency rounds: spike immunity vs response delay");

  struct Row {
    int rounds;
    std::uint64_t spike_transitions;
    double plateau_delay_s;
  };
  std::vector<Row> rows;

  for (int rounds : {1, 2, 3, 6}) {
    // Scenario A: 49 degC baseline with one-round 53 degC spikes every 10 s.
    Rig rig_a;
    TdvfsConfig cfg;
    cfg.pp = PolicyParam{50};
    cfg.consistency_rounds = rounds;
    TdvfsDaemon daemon_a{*rig_a.hwmon, *rig_a.cpufreq, cfg};
    SimTime now;
    for (int i = 0; i < 1200; ++i) {  // 5 min at 4 Hz
      now.advance_us(250000);
      const int second = i / 4;
      rig_a.truth = (second % 10 == 0) ? 53.0 : 49.0;
      rig_a.sensor.sample();
      daemon_a.on_sample(now);
    }
    const std::uint64_t spikes = rig_a.cpu.transition_count();

    // Scenario B: sustained 54 degC plateau; time to first down-scale.
    Rig rig_b;
    TdvfsDaemon daemon_b{*rig_b.hwmon, *rig_b.cpufreq, cfg};
    SimTime now_b;
    double delay = -1.0;
    for (int i = 0; i < 400; ++i) {
      now_b.advance_us(250000);
      rig_b.truth = 54.0;
      rig_b.sensor.sample();
      daemon_b.on_sample(now_b);
      if (!daemon_b.events().empty()) {
        delay = daemon_b.events().front().time_s;
        break;
      }
    }
    rows.push_back(Row{rounds, spikes, delay});
  }

  TextTable table{{"consistency rounds", "transitions under spikes", "plateau response (s)"}};
  for (const Row& row : rows) {
    table.add_row(std::to_string(row.rounds),
                  {static_cast<double>(row.spike_transitions), row.plateau_delay_s}, 2);
  }
  std::printf("%s", table.render().c_str());
  tb::note("paper behaviour: no response to short-term spikes, prompt response to\n"
           "sustained heat; the default of 3 rounds delivers both");

  tb::shape_check("1-round trigger thrashes on spikes", rows[0].spike_transitions >= 4);
  tb::shape_check("3-round trigger ignores spikes entirely", rows[2].spike_transitions == 0);
  tb::shape_check("3-round plateau response within 5 s",
                  rows[2].plateau_delay_s > 0.0 && rows[2].plateau_delay_s <= 5.0);
  tb::shape_check("response delay grows with consistency",
                  rows[3].plateau_delay_s > rows[0].plateau_delay_s);
  return 0;
}
