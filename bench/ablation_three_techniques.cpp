// Ablation: the three technique families of §3.2.2 — out-of-band fan
// control, in-band DVFS, and in-band sleep states (idle injection) — alone
// and coordinated, on the same severe workload (cpu-burn behind a weak fan).
//
// What the unified framework claims: every technique fits the same control
// array + window machinery, and coordinating them beats any one in
// isolation. This bench quantifies each technique's profile:
//   fan-only     — no performance cost, limited authority;
//   DVFS-only    — strong, but pays execution time;
//   clamp-only   — strongest per step, pays the most throughput;
//   all three    — staged escalation: cool *and* fast *and* safe.
#include <memory>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/unified_controller.hpp"
#include "workload/app.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace thermctl;
using namespace thermctl::core;

struct Outcome {
  double avg_temp;
  double max_temp;
  double exec_time;
  double avg_power;
  int prochot;
};

enum class Variant { kNone, kFanOnly, kDvfsOnly, kClampOnly, kAllThree };

Outcome run_variant(Variant variant) {
  cluster::NodeParams params;
  params.sensor.noise_sigma_degc = 0.0;  // same trajectory for all variants
  cluster::Cluster rack{1, params};
  cluster::Node& node = rack.node(0);
  node.set_utilization(Utilization{0.02});
  node.settle();

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{900.0};
  cluster::Engine engine{rack, engine_cfg};

  // A fixed amount of WORK (not wall time), so throughput costs show up as
  // execution time: 280 s worth of cpu-burn at full speed.
  workload::ParallelApp app{"burn", {workload::cpu_burn_program(Seconds{280.0})}};
  engine.attach_app(app, {0});

  // Weak fan: cap 25% regardless of technique (Fig. 9's regime).
  std::unique_ptr<DynamicFanController> fan;
  std::unique_ptr<TdvfsDaemon> dvfs;
  std::unique_ptr<IdleInjectionController> clamp;

  const bool use_fan = variant == Variant::kFanOnly || variant == Variant::kAllThree;
  const bool use_dvfs = variant == Variant::kDvfsOnly || variant == Variant::kAllThree;
  const bool use_clamp = variant == Variant::kClampOnly || variant == Variant::kAllThree;

  if (use_fan) {
    FanControlConfig fc;
    fc.pp = PolicyParam{50};
    fc.max_duty = DutyCycle{25.0};
    fan = std::make_unique<DynamicFanController>(node.hwmon(), fc);
    engine.add_periodic(params.sample_period, [&f = *fan](SimTime now) { f.on_sample(now); });
  } else {
    // Pin the fan at the same 25% so the techniques face identical airflow.
    node.hwmon().set_manual_mode();
    node.hwmon().write_pwm(DutyCycle{25.0});
  }
  if (use_dvfs) {
    TdvfsConfig tc;
    tc.pp = PolicyParam{50};
    tc.threshold = Celsius{51.0};
    dvfs = std::make_unique<TdvfsDaemon>(node.hwmon(), node.cpufreq(), tc);
    engine.add_periodic(params.sample_period, [&d = *dvfs](SimTime now) { d.on_sample(now); });
  }
  if (use_clamp) {
    IdleInjectionConfig ic;
    ic.pp = PolicyParam{50};
    ic.threshold = variant == Variant::kClampOnly ? Celsius{51.0} : Celsius{55.0};
    clamp = std::make_unique<IdleInjectionController>(node.hwmon(), node.powerclamp(), ic);
    engine.add_periodic(params.sample_period, [&c = *clamp](SimTime now) { c.on_sample(now); });
  }

  const cluster::RunResult run = engine.run();
  return Outcome{run.avg_die_temp(), run.max_die_temp(), run.exec_time_s, run.avg_power_w(),
                 run.summaries[0].prochot_events};
}

}  // namespace

int main() {
  namespace tb = thermctl::bench;
  tb::banner("Ablation",
             "technique families alone vs coordinated (cpu-burn work quantum, weak fan)");

  const Outcome none = run_variant(Variant::kNone);
  const Outcome fan = run_variant(Variant::kFanOnly);
  const Outcome dvfs = run_variant(Variant::kDvfsOnly);
  const Outcome clamp = run_variant(Variant::kClampOnly);
  const Outcome all = run_variant(Variant::kAllThree);

  TextTable table{{"variant", "avg temp (degC)", "max temp", "exec time (s)", "avg power (W)",
                   "PROCHOT"}};
  auto row = [&table](const char* name, const Outcome& o) {
    table.add_row(name,
                  {o.avg_temp, o.max_temp, o.exec_time, o.avg_power,
                   static_cast<double>(o.prochot)},
                  1);
  };
  row("uncontrolled (fan pinned 25%)", none);
  row("fan only (dynamic, cap 25%)", fan);
  row("DVFS only (tDVFS @51)", dvfs);
  row("sleep states only (clamp @51)", clamp);
  row("all three, staged", all);
  std::printf("%s", table.render().c_str());
  tb::note("§3.2.2: every technique fills the same thermal control array; the unified\n"
           "controller stages them by intrusiveness (fan -> DVFS -> idle injection)");

  tb::shape_check("every controlled variant runs cooler (max) than uncontrolled",
                  fan.max_temp < none.max_temp + 0.2 && dvfs.max_temp < none.max_temp &&
                      clamp.max_temp < none.max_temp && all.max_temp < none.max_temp);
  tb::shape_check("fan-only costs no execution time",
                  std::abs(fan.exec_time - none.exec_time) < 2.0);
  tb::shape_check("in-band techniques pay execution time for temperature",
                  dvfs.exec_time > none.exec_time + 2.0 &&
                      clamp.exec_time > none.exec_time + 2.0);
  tb::shape_check("coordinated control holds the lowest max temperature",
                  all.max_temp <= std::min({fan.max_temp, dvfs.max_temp, clamp.max_temp}) + 0.5);
  tb::shape_check("coordinated control is faster than the worst single in-band technique",
                  all.exec_time < std::max(dvfs.exec_time, clamp.exec_time) + 1.0);
  return 0;
}
