// Scaling study: unified thermal control on larger clusters (§5 future
// work: "study how our thermal controllers scale in large-scale clusters").
//
// Per-node controllers are fully decentralized — each reads its own sensor
// and actuates its own fan/DVFS — so control *quality* should be scale-free
// while cluster-wide outcomes (hottest node, total transitions) grow
// predictably. The bench runs the same BT-per-node job on 4..32 nodes with
// per-node unified control plus a rack hot spot, and also reports the
// simulator's wall-clock throughput at each scale.
#include <chrono>
#include <memory>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/unified_controller.hpp"
#include "runtime/parallel_runner.hpp"
#include "workload/app.hpp"
#include "workload/npb.hpp"

namespace {

using namespace thermctl;
using namespace thermctl::core;

struct Outcome {
  double exec_s;
  double hottest;
  double avg_temp;
  std::uint64_t transitions;
  double sim_rate;  // simulated seconds per wall second
};

Outcome run_scale(std::size_t nodes) {
  cluster::NodeParams params;
  cluster::Cluster rack{nodes, params};
  for (std::size_t i = 0; i < nodes; ++i) {
    rack.node(i).set_utilization(Utilization{0.02});
  }
  // One hot-spot node per 8 (recirculation pockets scale with rack count).
  for (std::size_t i = 7; i < nodes; i += 8) {
    rack.set_inlet_temperature(i, Celsius{35.0});
  }
  rack.settle_all();

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{300.0};
  cluster::Engine engine{rack, engine_cfg};

  Rng rng{nodes * 131 + 7};
  workload::NpbParams npb = workload::bt_class_b();
  npb.iterations = 100;
  workload::ParallelApp app{"BT", workload::make_npb_programs(npb, static_cast<int>(nodes), rng)};
  std::vector<std::size_t> mapping(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    mapping[i] = i;
  }
  engine.attach_app(app, mapping);

  std::vector<std::unique_ptr<UnifiedController>> controllers;
  controllers.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    UnifiedConfig cfg;
    cfg.pp = PolicyParam{50};
    cfg.tdvfs.threshold = Celsius{53.0};
    controllers.push_back(std::make_unique<UnifiedController>(
        rack.node(i).hwmon(), rack.node(i).cpufreq(), cfg));
    UnifiedController* raw = controllers.back().get();
    engine.add_periodic(params.sample_period, [raw](SimTime now) { raw->on_sample(now); });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const cluster::RunResult run = engine.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  Outcome o;
  o.exec_s = run.exec_time_s;
  o.hottest = run.max_die_temp();
  o.avg_temp = run.avg_die_temp();
  o.transitions = run.total_freq_transitions();
  o.sim_rate = run.times.back() / std::max(wall_s, 1e-9);
  return o;
}

}  // namespace

int main() {
  namespace tb = thermctl::bench;
  tb::banner("Scaling", "per-node unified control on 4..32-node racks (BT + hot spots)");

  TextTable table{{"nodes", "exec (s)", "hottest die (degC)", "avg die", "freq changes",
                   "sim rate (sim-s/wall-s)"}};
  // Each scale point is an independent rig; fan them across the pool. Note
  // the per-point sim rate is measured inside a concurrently running job, so
  // on a loaded machine it understates the serial rate — the total sweep
  // wall time below is the honest throughput number.
  const std::vector<std::size_t> scales{4, 8, 16, 32};
  const auto sweep_start = std::chrono::steady_clock::now();
  thermctl::runtime::ParallelRunner runner;
  const std::vector<Outcome> outcomes = runner.map<Outcome>(
      scales.size(), [&scales](std::size_t i) { return run_scale(scales[i]); });
  const double sweep_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start).count();
  for (std::size_t i = 0; i < scales.size(); ++i) {
    const Outcome& o = outcomes[i];
    table.add_row(std::to_string(scales[i]),
                  {o.exec_s, o.hottest, o.avg_temp, static_cast<double>(o.transitions),
                   o.sim_rate},
                  1);
  }
  std::printf("%s", table.render().c_str());
  std::printf("  sweep wall time: %.2f s across %zu workers\n", sweep_wall, runner.thread_count());
  tb::note("decentralized per-node control: thermal quality should not degrade with\n"
           "scale; only aggregate counts grow");

  tb::shape_check("hottest die stays controlled (< 60 degC) at every scale", [&] {
    for (const Outcome& o : outcomes) {
      if (o.hottest >= 60.0) {
        return false;
      }
    }
    return true;
  }());
  tb::shape_check("average temperature is scale-free (spread < 2 degC)", [&] {
    double lo = 1e9;
    double hi = -1e9;
    for (const Outcome& o : outcomes) {
      lo = std::min(lo, o.avg_temp);
      hi = std::max(hi, o.avg_temp);
    }
    return hi - lo < 2.0;
  }());
  tb::shape_check("execution time grows only mildly with scale (barrier tail, < 10%)",
                  outcomes.back().exec_s < outcomes.front().exec_s * 1.10);
  return 0;
}
