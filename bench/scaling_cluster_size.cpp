// Scaling study: unified thermal control on larger clusters (§5 future
// work: "study how our thermal controllers scale in large-scale clusters").
//
// Per-node controllers are fully decentralized — each reads its own sensor
// and actuates its own fan/DVFS — so control *quality* should be scale-free
// while cluster-wide outcomes (hottest node, total transitions) grow
// predictably. Two regimes share one rig construction (fleet-backed SoA
// cluster, hot-spot inlets, per-node unified control):
//
//   * quality points (4..32 nodes): the same BT-per-node job at full
//     horizon, comparing execution time and thermal outcomes across scale;
//   * throughput ladder (256..100k nodes): synthetic per-node loads under a
//     fixed node-step budget, reporting simulation rate and bytes/node.
//
// Every point is built, run, printed and destroyed before the next one
// starts — results stream one row at a time and exactly one rig is ever in
// memory, which is what lets the 100k-node point fit a CI memory budget.
//
// Usage: scaling_cluster_size [--max-nodes N]   (default 100000)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/control_bank.hpp"
#include "core/unified_controller.hpp"
#include "workload/app.hpp"
#include "workload/npb.hpp"

namespace {

using namespace thermctl;
using namespace thermctl::core;

struct Outcome {
  std::size_t nodes = 0;
  bool quality = false;  // full-horizon BT point vs budgeted throughput point
  double exec_s = 0.0;
  double hottest = 0.0;
  double avg_temp = 0.0;
  std::uint64_t transitions = 0;
  double sim_rate = 0.0;        // simulated seconds per wall second
  double node_steps_per_sec = 0.0;
  double bytes_per_node = 0.0;  // exact SoA footprint from FleetState
};

Outcome run_scale(std::size_t nodes, bool quality) {
  cluster::NodeParams params;
  cluster::Cluster rack{nodes, params};
  for (std::size_t i = 0; i < nodes; ++i) {
    rack.node(i).set_utilization(Utilization{0.02});
  }
  // One hot-spot node per 8 (recirculation pockets scale with rack count).
  for (std::size_t i = 7; i < nodes; i += 8) {
    rack.set_inlet_temperature(i, Celsius{35.0});
  }
  if (quality) {
    rack.settle_all();
  }

  cluster::EngineConfig engine_cfg;
  if (quality) {
    engine_cfg.horizon = Seconds{300.0};
  } else {
    // Fixed node-step budget: every ladder point costs about the same wall
    // time no matter the scale.
    constexpr double kNodeStepBudget = 4e6;
    const long long steps = std::clamp(
        static_cast<long long>(kNodeStepBudget / static_cast<double>(nodes)), 40LL, 20000LL);
    engine_cfg.horizon =
        Seconds{static_cast<double>(steps) * engine_cfg.physics_dt.value()};
  }
  cluster::Engine engine{rack, engine_cfg};

  std::unique_ptr<workload::ParallelApp> app;
  if (quality) {
    Rng rng{nodes * 131 + 7};
    workload::NpbParams npb = workload::bt_class_b();
    npb.iterations = 100;
    app = std::make_unique<workload::ParallelApp>(
        "BT", workload::make_npb_programs(npb, static_cast<int>(nodes), rng));
    std::vector<std::size_t> mapping(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      mapping[i] = i;
    }
    engine.attach_app(*app, mapping);
  } else {
    // A 100k-rank barrier-coupled program would dominate memory; the ladder
    // drives out-of-phase synthetic loads through the same control stack.
    for (std::size_t i = 0; i < nodes; ++i) {
      engine.set_node_load_fn(i, [i](SimTime t) {
        const double x = t.seconds() * 0.7 + static_cast<double>(i) * 0.13;
        return Utilization{0.55 + 0.35 * std::sin(x)};
      });
    }
  }

  ControlBank bank{nodes, rack.fleet() != nullptr ? rack.fleet()->sensor_last_data() : nullptr};
  for (std::size_t i = 0; i < nodes; ++i) {
    UnifiedConfig cfg;
    cfg.pp = PolicyParam{50};
    cfg.tdvfs.threshold = Celsius{53.0};
    bank.emplace_unified(i, rack.node(i).hwmon(), rack.node(i).cpufreq(), cfg);
  }
  engine.add_periodic(params.sample_period, [&bank](SimTime now) { bank.tick_unified(now); });

  const auto wall_start = std::chrono::steady_clock::now();
  const cluster::RunResult run = engine.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  Outcome o;
  o.nodes = nodes;
  o.quality = quality;
  o.exec_s = run.exec_time_s;
  o.hottest = run.max_die_temp();
  o.avg_temp = run.avg_die_temp();
  o.transitions = run.total_freq_transitions();
  o.sim_rate = run.times.back() / std::max(wall_s, 1e-9);
  o.node_steps_per_sec = run.times.back() / engine_cfg.physics_dt.value() *
                         static_cast<double>(nodes) / std::max(wall_s, 1e-9);
  if (rack.fleet() != nullptr) {
    o.bytes_per_node =
        static_cast<double>(rack.fleet()->memory_bytes()) / static_cast<double>(nodes);
  }
  return o;
}

void print_row(const Outcome& o) {
  std::printf("  %7zu | %10s | %8.1f | %7.1f | %12llu | %9.1f | %12.0f | %6.0f\n", o.nodes,
              o.quality ? "BT-300s" : "budgeted",
              o.quality ? o.exec_s : 0.0, o.hottest,
              static_cast<unsigned long long>(o.transitions), o.sim_rate,
              o.node_steps_per_sec, o.bytes_per_node);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  namespace tb = thermctl::bench;

  std::size_t max_nodes = 100000;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--max-nodes") == 0) {
      max_nodes = static_cast<std::size_t>(std::atol(argv[i + 1]));
    }
  }

  tb::banner("Scaling",
             "per-node unified control from 4-node racks (BT + hot spots) to a "
             "100k-node fleet");

  std::printf("    nodes |   workload | exec (s) | hot die | freq changes | sim-s/s  |"
              " node-steps/s | B/node\n");

  // Quality points: identical job across scale; rows stream as they finish,
  // one rig in memory at a time.
  const std::vector<std::size_t> quality_scales{4, 8, 16, 32};
  std::vector<Outcome> quality;
  for (std::size_t n : quality_scales) {
    if (n > max_nodes) {
      continue;
    }
    quality.push_back(run_scale(n, true));
    print_row(quality.back());
  }

  // Throughput ladder out to fleet scale.
  for (std::size_t n : {std::size_t{256}, std::size_t{2048}, std::size_t{16384},
                        std::size_t{100000}}) {
    if (n > max_nodes) {
      continue;
    }
    print_row(run_scale(n, false));
  }

  tb::note("decentralized per-node control: thermal quality should not degrade with\n"
           "scale; only aggregate counts grow");

  tb::shape_check("hottest die stays controlled (< 60 degC) at every quality scale", [&] {
    for (const Outcome& o : quality) {
      if (o.hottest >= 60.0) {
        return false;
      }
    }
    return true;
  }());
  tb::shape_check("average temperature is scale-free (spread < 2 degC)", [&] {
    double lo = 1e9;
    double hi = -1e9;
    for (const Outcome& o : quality) {
      lo = std::min(lo, o.avg_temp);
      hi = std::max(hi, o.avg_temp);
    }
    return hi - lo < 2.0;
  }());
  tb::shape_check("execution time grows only mildly with scale (barrier tail, < 10%)",
                  quality.empty() ||
                      quality.back().exec_s < quality.front().exec_s * 1.10);
  return 0;
}
