// Figure 2: a CPU thermal profile exhibiting the three behaviour types of
// §3.1 — sudden, gradual, and jitter — under constant fan speed, sampled at
// 4 Hz, on a single simulated Athlon64-class node.
//
// The bench drives the Fig. 2 composite utilization profile (idle → step to
// full load → long hold → drop → bursty jitter → ramp down) against a fixed
// fan, records the 4 Hz sensor series, and runs the §3.1 phase classifier
// over it to label the regions the paper annotates by hand.
#include <map>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/fan_policy.hpp"
#include "core/phase_classifier.hpp"
#include "core/trace_analysis.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace thermctl;
  namespace tb = thermctl::bench;

  tb::banner("Figure 2",
             "thermal profile with sudden / gradual / jitter types (constant fan, 4 Hz)");

  cluster::NodeParams node_params;
  cluster::Cluster cluster{1, node_params};
  cluster.node(0).set_utilization(Utilization{0.03});
  cluster.node(0).settle();

  // Constant fan speed, as in the figure's caption.
  core::ConstantFanPolicy fan{cluster.node(0).hwmon(), DutyCycle{40.0}};
  fan.apply();

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{245.0};
  cluster::Engine engine{cluster, engine_cfg};
  const auto load = workload::fig2_profile();
  engine.set_node_load(0, &load);

  const cluster::RunResult run = engine.run();
  tb::print_series("sensor temperature (downsampled; full series in CSV):", run.times,
                   {{"temp(degC)", &run.nodes[0].sensor_temp},
                    {"util", &run.nodes[0].util}},
                   40);
  tb::dump_csv(run, "fig02_thermal_profile", "sensor_temp");

  // Classify each 8 s region and report the dominant label per segment.
  core::PhaseClassifier classifier;
  std::map<std::string, int> votes_sudden_window;  // label -> count in [20, 40) s
  std::map<std::string, int> votes_gradual_window;  // [60, 105) s
  std::map<std::string, int> votes_jitter_window;   // [145, 195) s
  for (std::size_t i = 0; i < run.times.size(); ++i) {
    classifier.add_sample(Celsius{run.nodes[0].sensor_temp[i]});
    const auto report = classifier.classify();
    const std::string label{core::to_string(report.behaviour)};
    const double t = run.times[i];
    if (t >= 20.0 && t < 40.0) {
      ++votes_sudden_window[label];
    } else if (t >= 60.0 && t < 105.0) {
      ++votes_gradual_window[label];
    } else if (t >= 145.0 && t < 195.0) {
      ++votes_jitter_window[label];
    }
  }
  auto dominant = [](const std::map<std::string, int>& votes) {
    std::string best = "stable";
    int n = -1;
    for (const auto& [label, count] : votes) {
      if (count > n) {
        n = count;
        best = label;
      }
    }
    return best;
  };

  const std::string s1 = dominant(votes_sudden_window);
  const std::string s2 = dominant(votes_gradual_window);
  const std::string s3 = dominant(votes_jitter_window);
  std::printf("  classifier labels: load-step region=%s, hold region=%s, bursty region=%s\n",
              s1.c_str(), s2.c_str(), s3.c_str());

  tb::shape_check("load step region classified sudden", s1 == "sudden");
  tb::shape_check("long hold region classified gradual (heatsink drift)", s2 == "gradual");
  tb::shape_check("bursty region shows jitter or stability, not a sustained trend",
                  s3 == "jitter" || s3 == "stable");

  // Full offline segmentation of the same series (the §3.1 taxonomy as a
  // library tool over any recorded run).
  const auto analysis =
      core::analyze_trace(run.nodes[0].sensor_temp, 0.25);
  std::printf("\noffline segmentation of the profile:\n%s",
              core::render_analysis(analysis).c_str());

  // Amplitude sanity vs the figure: tens of degC dynamic range.
  double lo = 1e9;
  double hi = -1e9;
  for (double v : run.nodes[0].sensor_temp) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::printf("  temperature range: %.1f .. %.1f degC\n", lo, hi);
  tb::shape_check("profile spans > 10 degC like the figure", hi - lo > 10.0);
  return 0;
}
