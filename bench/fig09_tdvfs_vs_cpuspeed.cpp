// Figure 9: tDVFS vs CPUSPEED, both under our dynamic fan control with
// Pp=50 and the fan capped at 25% duty, NPB BT.B on 4 nodes.
//
// Paper finding to reproduce in shape: "the temperature continues to
// increase when controlled by CPUSPEED, while it is stabilized when
// controlled by tDVFS" — the utilization-driven governor is thermally blind.
#include "bench_util.hpp"
#include "core/experiment.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Figure 9", "tDVFS vs CPUSPEED under dynamic fan (BT.B.4, Pp=50, cap 25%)");

  auto run_with = [](DvfsPolicyKind dvfs, const std::string& name) {
    ExperimentConfig cfg = paper_platform();
    cfg.name = name;
    cfg.workload = WorkloadKind::kNpbBt;
    cfg.fan = FanPolicyKind::kDynamic;
    cfg.dvfs = dvfs;
    cfg.pp = PolicyParam{50};
    cfg.max_duty = DutyCycle{25.0};
    return run_experiment(cfg);
  };

  const ExperimentResult cpuspeed = run_with(DvfsPolicyKind::kCpuspeed, "fig09_cpuspeed");
  const ExperimentResult tdvfs = run_with(DvfsPolicyKind::kTdvfs, "fig09_tdvfs");
  tb::dump_csv(cpuspeed.run, "fig09_cpuspeed_temp", "sensor_temp");
  tb::dump_csv(tdvfs.run, "fig09_tdvfs_temp", "sensor_temp");

  // Compare the final-third temperature trend of both runs.
  auto tail_stats = [](const cluster::RunResult& run) {
    const auto& temps = run.nodes[0].sensor_temp;
    const std::size_t start = temps.size() * 2 / 3;
    double mean = 0.0;
    for (std::size_t i = start; i < temps.size(); ++i) {
      mean += temps[i];
    }
    mean /= static_cast<double>(temps.size() - start);
    return mean;
  };

  TextTable table{{"governor", "avg temp (degC)", "final-third temp", "max temp",
                   "#freq changes", "exec time (s)"}};
  table.add_row("CPUSPEED",
                {cpuspeed.run.avg_die_temp(), tail_stats(cpuspeed.run),
                 cpuspeed.run.max_die_temp(),
                 static_cast<double>(cpuspeed.run.total_freq_transitions()),
                 cpuspeed.run.exec_time_s},
                1);
  table.add_row("tDVFS",
                {tdvfs.run.avg_die_temp(), tail_stats(tdvfs.run), tdvfs.run.max_die_temp(),
                 static_cast<double>(tdvfs.run.total_freq_transitions()),
                 tdvfs.run.exec_time_s},
                1);
  std::printf("%s", table.render().c_str());
  tb::note("paper reference: CPUSPEED lets temperature climb toward ~70 degC;\n"
           "tDVFS stabilizes it near the 51 degC threshold");

  tb::shape_check("CPUSPEED runs hotter than tDVFS in the final third",
                  tail_stats(cpuspeed.run) > tail_stats(tdvfs.run) + 2.0);
  tb::shape_check("tDVFS holds max temperature below CPUSPEED's",
                  tdvfs.run.max_die_temp() < cpuspeed.run.max_die_temp());
  tb::shape_check("tDVFS stabilizes near threshold (final third < 57 degC)",
                  tail_stats(tdvfs.run) < 57.0);
  tb::shape_check("CPUSPEED thrashes frequencies (>> tDVFS)",
                  cpuspeed.run.total_freq_transitions() >
                      10 * std::max<std::uint64_t>(1, tdvfs.run.total_freq_transitions()));
  return 0;
}
