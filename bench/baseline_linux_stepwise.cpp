// Baseline comparison: the paper's history-based controller vs the Linux
// kernel's step_wise thermal governor (the framework that eventually shipped
// for this problem).
//
// step_wise only acts once temperature is past the trip point, one state at
// a time, driven by the instantaneous trend sign. The paper's controller is
// proactive (acts on predicted variation anywhere in the band, sized by
// c·Δt) and policy-tunable (Pp). Expected shape: step_wise lets the
// transient overshoot further past the trip and oscillates around it, while
// the dynamic controller heads the rise off earlier for a similar average
// fan effort.
#include <memory>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/fan_policy.hpp"
#include "core/step_wise.hpp"
#include "sysfs/thermal_zone.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace thermctl;
using namespace thermctl::core;

struct Outcome {
  double avg_temp;
  double max_temp;
  double time_above_trip;
  double avg_duty;
};

constexpr double kTrip = 50.0;

Outcome run_stepwise() {
  cluster::NodeParams params;
  params.sensor.noise_sigma_degc = 0.0;
  cluster::Cluster rack{1, params};
  cluster::Node& node = rack.node(0);
  node.set_utilization(Utilization{0.02});
  node.settle();
  node.hwmon().set_manual_mode();
  node.hwmon().write_pwm(DutyCycle{10.0});

  sysfs::ThermalZone zone{node.vfs(), "/sys/class/thermal", 7, "x86_pkg_temp",
                          [&node] { return node.sensor_reading(); }};
  zone.add_trip({Celsius{kTrip}, sysfs::TripType::kPassive});
  sysfs::FanCoolingAdapter fan{
      [&node](DutyCycle d) { return node.hwmon().write_pwm(d); }, DutyCycle{10.0},
      DutyCycle{100.0}, 18};
  zone.bind(&fan);
  StepWiseGovernor governor{zone};

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{300.0};
  cluster::Engine engine{rack, engine_cfg};
  const auto load = workload::sudden_profile(Seconds{30.0}, Seconds{240.0});
  engine.set_node_load(0, &load);
  engine.add_periodic(Seconds{0.25}, [&governor](SimTime now) { governor.on_sample(now); });

  const cluster::RunResult run = engine.run();
  Outcome o{run.avg_die_temp(), run.max_die_temp(), 0.0, run.summaries[0].avg_duty};
  for (double t : run.nodes[0].die_temp) {
    if (t > kTrip) {
      o.time_above_trip += 0.25;
    }
  }
  return o;
}

Outcome run_paper() {
  cluster::NodeParams params;
  params.sensor.noise_sigma_degc = 0.0;
  cluster::Cluster rack{1, params};
  cluster::Node& node = rack.node(0);
  node.set_utilization(Utilization{0.02});
  node.settle();

  FanControlConfig cfg;
  cfg.pp = PolicyParam{50};
  DynamicFanController controller{node.hwmon(), cfg};

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{300.0};
  cluster::Engine engine{rack, engine_cfg};
  const auto load = workload::sudden_profile(Seconds{30.0}, Seconds{240.0});
  engine.set_node_load(0, &load);
  engine.add_periodic(Seconds{0.25}, [&controller](SimTime now) { controller.on_sample(now); });

  const cluster::RunResult run = engine.run();
  Outcome o{run.avg_die_temp(), run.max_die_temp(), 0.0, run.summaries[0].avg_duty};
  for (double t : run.nodes[0].die_temp) {
    if (t > kTrip) {
      o.time_above_trip += 0.25;
    }
  }
  return o;
}

}  // namespace

int main() {
  namespace tb = thermctl::bench;
  tb::banner("Baseline", "paper controller vs Linux step_wise governor (load step)");

  const Outcome stepwise = run_stepwise();
  const Outcome paper = run_paper();

  TextTable table{{"governor", "avg temp (degC)", "max temp", "time above trip (s)",
                   "avg duty (%)"}};
  table.add_row("Linux step_wise (trip @50)",
                {stepwise.avg_temp, stepwise.max_temp, stepwise.time_above_trip,
                 stepwise.avg_duty},
                2);
  table.add_row("paper dynamic (Pp=50)",
                {paper.avg_temp, paper.max_temp, paper.time_above_trip, paper.avg_duty}, 2);
  std::printf("%s", table.render().c_str());
  tb::note("step_wise waits for the trip and then creeps one state per sample; the\n"
           "two-level window reacts to the rise itself, proportionally to its rate");

  tb::shape_check("paper controller spends less time above the trip",
                  paper.time_above_trip < stepwise.time_above_trip);
  tb::shape_check("paper controller's peak is no worse",
                  paper.max_temp <= stepwise.max_temp + 0.3);
  tb::shape_check("both ultimately contain the load (max < 60 degC)",
                  paper.max_temp < 60.0 && stepwise.max_temp < 60.0);
  return 0;
}
