// Power capping (Lefurgy et al., related work §2): budget tracking accuracy
// and its thermal side effect on this platform.
//
// Sweep the package power budget under cpu-burn; for each budget report the
// settled package power (must sit at or under budget), the time spent over
// budget during convergence, the frequency the capper settled at, and the
// resulting die temperature — power capping is implicitly a thermal control,
// which is why the paper's unification matters.
#include <memory>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/power_cap.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Baseline", "DVFS power capping: budget tracking + thermal side effect");

  struct Row {
    double budget;
    double settled_power;
    double overshoot_s;
    double settled_ghz;
    double avg_temp;
  };
  std::vector<Row> rows;

  for (double budget : {70.0, 55.0, 45.0, 30.0, 20.0}) {
    cluster::NodeParams params;
    params.sensor.noise_sigma_degc = 0.0;
    cluster::Cluster rack{1, params};
    rack.node(0).set_utilization(Utilization{0.02});
    rack.node(0).settle();

    PowerCapConfig cfg;
    cfg.budget = Watts{budget};
    PowerCapper capper{rack.node(0).rapl(), rack.node(0).cpufreq(), cfg};

    cluster::EngineConfig engine_cfg;
    engine_cfg.horizon = Seconds{180.0};
    cluster::Engine engine{rack, engine_cfg};
    const auto burn = workload::gradual_profile(Seconds{300.0});
    engine.set_node_load(0, &burn);
    engine.add_periodic(cfg.interval, [&capper](SimTime now) { capper.on_interval(now); });
    const cluster::RunResult run = engine.run();

    rows.push_back(Row{budget, capper.last_power_w(), capper.overshoot_seconds(),
                       rack.node(0).cpu().frequency().value(), run.avg_die_temp()});
  }

  TextTable table{{"budget (W)", "settled power (W)", "time over budget (s)",
                   "settled freq (GHz)", "avg die (degC)"}};
  for (const Row& row : rows) {
    table.add_row(format_number(row.budget, 0),
                  {row.settled_power, row.overshoot_s, row.settled_ghz, row.avg_temp}, 1);
  }
  std::printf("%s", table.render().c_str());
  tb::note("the 20 W budget is below the slowest P-state's package power: the capper\n"
           "pins the floor and the residual overshoot is physics, not control error —\n"
           "capping and thermal control share an actuator, which is the coordination\n"
           "problem the paper's unified framework exists to solve");

  bool tracked = true;
  for (const Row& row : rows) {
    if (row.budget >= 25.0 && row.settled_power > row.budget + 1.0) {
      tracked = false;
    }
  }
  tb::shape_check("settled power respects every achievable budget", tracked);
  tb::shape_check("tighter budgets settle at lower frequencies",
                  rows.back().settled_ghz <= rows.front().settled_ghz);
  tb::shape_check("tighter budgets run cooler (capping is thermal control)",
                  rows[3].avg_temp < rows[0].avg_temp - 3.0);
  tb::shape_check("convergence overshoot stays under 10 s per run",
                  [&] {
                    for (const Row& row : rows) {
                      if (row.budget >= 25.0 && row.overshoot_s > 10.0) {
                        return false;
                      }
                    }
                    return true;
                  }());
  return 0;
}
