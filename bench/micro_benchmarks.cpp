// Microbenchmarks (google-benchmark): costs of the hot paths.
//
// The paper's controller runs in-band on the managed node at 4 Hz, so its
// own overhead must be negligible next to the workload. These benchmarks
// quantify that claim for every layer: window update, array fill, selector
// arithmetic, the full controller tick including the sysfs + i2c round
// trips, one RC physics step, and a whole-node engine step.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/node.hpp"
#include "core/control_array.hpp"
#include "core/fan_policy.hpp"
#include "core/mode_selector.hpp"
#include "core/two_level_window.hpp"
#include "thermal/package_model.hpp"
#include "thermal/rc_batch.hpp"
#include "thermal/rc_network.hpp"

namespace {

using namespace thermctl;

void BM_WindowAddSample(benchmark::State& state) {
  core::TwoLevelWindow window;
  double t = 45.0;
  for (auto _ : state) {
    t += 0.01;
    benchmark::DoNotOptimize(window.add_sample(Celsius{t}));
  }
}
BENCHMARK(BM_WindowAddSample);

void BM_ControlArrayFill(benchmark::State& state) {
  std::vector<double> duties;
  for (int d = 1; d <= 100; ++d) {
    duties.push_back(static_cast<double>(d));
  }
  int pp = 1;
  for (auto _ : state) {
    core::ThermalControlArray arr{duties, 100, core::PolicyParam{pp}};
    benchmark::DoNotOptimize(arr.mode(50));
    pp = pp % 100 + 1;
  }
}
BENCHMARK(BM_ControlArrayFill);

void BM_ModeSelectorDecide(benchmark::State& state) {
  core::ModeSelector selector{core::ModeSelectorConfig{}, 100};
  core::WindowRound round;
  round.level1_delta = CelsiusDelta{0.3};
  round.level2_delta = CelsiusDelta{1.2};
  round.level2_valid = true;
  std::size_t index = 40;
  for (auto _ : state) {
    const auto d = selector.decide(index, round);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ModeSelectorDecide);

void BM_PackagePhysicsStep(benchmark::State& state) {
  thermal::PackageModel pkg{thermal::PackageParams{}};
  pkg.set_cpu_power(Watts{60.0});
  pkg.set_airflow(Cfm{16.0});
  for (auto _ : state) {
    pkg.step(Seconds{0.05});
  }
  benchmark::DoNotOptimize(pkg.die_temperature());
}
BENCHMARK(BM_PackagePhysicsStep);

void BM_NodeFullStep(benchmark::State& state) {
  cluster::NodeParams params;
  cluster::Node node{0, params};
  node.set_utilization(Utilization{0.8});
  for (auto _ : state) {
    node.step(Seconds{0.05});
  }
  benchmark::DoNotOptimize(node.die_temperature());
}
BENCHMARK(BM_NodeFullStep);

void BM_ControllerTickThroughSysfs(benchmark::State& state) {
  // Full in-band control tick: hwmon read (vfs + string parse) + window +
  // selector + pwm write (vfs -> driver -> i2c -> chip).
  cluster::NodeParams params;
  cluster::Node node{0, params};
  core::FanControlConfig cfg;
  cfg.pp = core::PolicyParam{50};
  core::DynamicFanController fan{node.hwmon(), cfg};
  node.set_utilization(Utilization{1.0});
  SimTime now;
  for (auto _ : state) {
    node.step(Seconds{0.05});
    node.sample_sensor();
    now.advance_us(250000);
    fan.on_sample(now);
  }
}
BENCHMARK(BM_ControllerTickThroughSysfs);

void BM_RcNetworkStepFleet(benchmark::State& state) {
  // Per-node reference: N standalone package networks stepped one at a time
  // — the object-walk layout the batched solver replaces.
  const std::size_t instances = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<thermal::RcNetwork>> nets;
  nets.reserve(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    nets.push_back(std::make_unique<thermal::RcNetwork>());
    thermal::PackageModel::wire_network(thermal::PackageParams{}, *nets.back());
  }
  for (auto _ : state) {
    for (auto& net : nets) {
      net->step(Seconds{0.05});
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(instances));
}
BENCHMARK(BM_RcNetworkStepFleet)->Arg(1)->Arg(64)->Arg(4096);

void BM_RcBatchStepFleet(benchmark::State& state) {
  // The batched solver: same package topology, N instances advanced by
  // restrict-qualified, compiler-vectorized SoA sweeps over the instance
  // axis. items/sec here vs BM_RcNetworkStepFleet is the layout win; the
  // trajectories are bit-identical by RcBatch's contract.
  const std::size_t instances = static_cast<std::size_t>(state.range(0));
  thermal::RcNetwork tmpl;
  thermal::PackageModel::wire_network(thermal::PackageParams{}, tmpl);
  thermal::RcBatch batch{tmpl, instances};
  for (auto _ : state) {
    batch.step_all(Seconds{0.05});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(instances));
}
BENCHMARK(BM_RcBatchStepFleet)->Arg(1)->Arg(64)->Arg(4096);

void BM_SimulatedSecondFourNodes(benchmark::State& state) {
  // Cost of simulating one wall-clock second of a 4-node cluster at the
  // default 50 ms physics step (20 steps/node).
  cluster::NodeParams params;
  cluster::Cluster rack{4, params};
  for (std::size_t i = 0; i < 4; ++i) {
    rack.node(i).set_utilization(Utilization{0.75});
  }
  for (auto _ : state) {
    for (int step = 0; step < 20; ++step) {
      for (std::size_t i = 0; i < 4; ++i) {
        rack.node(i).step(Seconds{0.05});
      }
    }
  }
}
BENCHMARK(BM_SimulatedSecondFourNodes);

}  // namespace
