// Table 1: performance and power of NPB BT.B.4 when processor speed is
// controlled by CPUSPEED vs tDVFS, with the dynamic fan capped at 75 / 50 /
// 25% duty.
//
// Paper reference values:
//                      CPUSPEED                tDVFS
//   max duty        75%   50%   25%        75%   50%   25%
//   #freq changes   101   122   139          2     2     3
//   exec time (s)   219   222   223        219   233   234
//   avg power (W) 99.78 99.30 100.80      97.93 94.19 92.78
//   PDP (kW*s)    21.85 22.04  22.48      21.45 21.95 21.71
//
// Shape targets: tDVFS cuts frequency changes by ~98%, saves power, costs a
// few percent execution time at small fan caps, and still wins on
// power-delay product.
#include "bench_util.hpp"
#include "core/experiment.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Table 1", "CPUSPEED vs tDVFS across fan caps {75, 50, 25}% (BT.B.4)");

  struct Cell {
    double freq_changes;
    double exec_time;
    double avg_power;
    double pdp;
  };
  auto run_cell = [](DvfsPolicyKind dvfs, int cap) {
    ExperimentConfig cfg = paper_platform();
    cfg.name = "table1";
    cfg.workload = WorkloadKind::kNpbBt;
    cfg.fan = FanPolicyKind::kDynamic;
    cfg.dvfs = dvfs;
    cfg.pp = PolicyParam{50};
    cfg.max_duty = DutyCycle{static_cast<double>(cap)};
    const ExperimentResult r = run_experiment(cfg);
    // Per-node averages, as the paper reports per-node meters.
    const double changes =
        static_cast<double>(r.run.total_freq_transitions()) / static_cast<double>(cfg.nodes);
    return Cell{changes, r.run.exec_time_s, r.run.avg_power_w(), r.run.power_delay_product()};
  };

  const int caps[] = {75, 50, 25};
  std::vector<Cell> cpuspeed;
  std::vector<Cell> tdvfs;
  for (int cap : caps) {
    cpuspeed.push_back(run_cell(DvfsPolicyKind::kCpuspeed, cap));
    tdvfs.push_back(run_cell(DvfsPolicyKind::kTdvfs, cap));
  }

  TextTable table{{"metric", "CS 75%", "CS 50%", "CS 25%", "tD 75%", "tD 50%", "tD 25%"}};
  auto row = [&](const char* name, auto getter, int decimals) {
    std::vector<double> values;
    for (const Cell& c : cpuspeed) {
      values.push_back(getter(c));
    }
    for (const Cell& c : tdvfs) {
      values.push_back(getter(c));
    }
    table.add_row(name, values, decimals);
  };
  row("# freq changes (per node)", [](const Cell& c) { return c.freq_changes; }, 0);
  row("execution time (s)", [](const Cell& c) { return c.exec_time; }, 1);
  row("avg power (W)", [](const Cell& c) { return c.avg_power; }, 2);
  row("power-delay product (W*s)", [](const Cell& c) { return c.pdp; }, 0);
  std::printf("%s", table.render().c_str());
  tb::note("paper reference: CPUSPEED 101/122/139 changes vs tDVFS 2/2/3;\n"
           "exec 219/222/223 vs 219/233/234 s; power ~99-101 vs ~93-98 W;\n"
           "PDP: tDVFS wins in every column");

  bool changes_ok = true;
  bool pdp_ok = true;
  for (std::size_t i = 0; i < 3; ++i) {
    changes_ok &= tdvfs[i].freq_changes * 10.0 < cpuspeed[i].freq_changes;
    pdp_ok &= tdvfs[i].pdp < cpuspeed[i].pdp * 1.02;
  }
  // At the 75% cap both daemons run near full speed and the power gap is
  // noise-scale (the paper reports 1.9%, we land within ±1%); at reduced
  // caps tDVFS's deeper scaling must win outright.
  const bool power_ok = tdvfs[0].avg_power < cpuspeed[0].avg_power * 1.01 &&
                        tdvfs[1].avg_power < cpuspeed[1].avg_power &&
                        tdvfs[2].avg_power < cpuspeed[2].avg_power;
  tb::shape_check("tDVFS cuts frequency changes by >90% in every column", changes_ok);
  tb::shape_check("tDVFS power: tie (within 1%) at 75% cap, strictly lower at 50/25%",
                  power_ok);
  tb::shape_check("tDVFS PDP no worse than CPUSPEED (within 2%) in every column", pdp_ok);
  tb::shape_check("CPUSPEED makes on the order of 100+ changes per node",
                  cpuspeed[0].freq_changes > 50.0);
  tb::shape_check("tDVFS slowdown at small caps stays modest (< 12% vs 75% cap)",
                  tdvfs[2].exec_time < tdvfs[0].exec_time * 1.12);
  tb::shape_check("tDVFS power decreases as the fan cap shrinks (deeper scaling)",
                  tdvfs[2].avg_power < tdvfs[0].avg_power);
  return 0;
}
