// verify_fuzz — deterministic controller fuzzing as a CI gate.
//
// Drives every controller in the stack (unified fan+tDVFS, predictive fan,
// PID, step_wise, mode selector + control array) with seeded adversarial
// sensor streams: spikes, steep ramps, stuck-at readings, NaN bursts, step
// discontinuities, and RAPL counters parked at the wrap boundary. Any
// invariant violation prints with the seed that produced it; re-running
// with `--base-seed <seed> --seeds 1` replays the exact stream. Exits
// non-zero if any seed produced a violation. Intended to run under the
// asan preset in CI so memory errors fail the same gate.
//
// Usage: verify_fuzz [--seeds N] [--base-seed S] [--ticks T]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"
#include "common/log.hpp"
#include "verify/fuzz.hpp"

int main(int argc, char** argv) {
  using namespace thermctl;
  namespace tb = thermctl::bench;

  // Adversarial streams cross critical trips by design; thousands of WARN
  // lines would bury a real failure in the CI log.
  Logger::instance().set_level(LogLevel::kError);

  std::uint64_t seeds = 8;
  std::uint64_t base_seed = 1;
  int ticks = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--base-seed") == 0 && i + 1 < argc) {
      base_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--ticks") == 0 && i + 1 < argc) {
      ticks = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    }
  }

  tb::banner("verify fuzz", "adversarial controller fuzzing, replayable seeds");
  std::printf("  %llu seeds starting at %llu, %d ticks per target\n",
              static_cast<unsigned long long>(seeds),
              static_cast<unsigned long long>(base_seed), ticks);

  std::uint64_t total_ticks = 0;
  std::uint64_t total_checks = 0;
  bool all_ok = true;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const std::uint64_t seed = base_seed + s;
    const verify::FuzzReport report = verify::fuzz_all(seed, ticks);
    total_ticks += report.ticks;
    total_checks += report.invariants.checks;
    if (!report.ok()) {
      all_ok = false;
      std::printf("FAIL seed %llu:\n%s\n", static_cast<unsigned long long>(seed),
                  report.to_string().c_str());
      std::printf("REPLAY: verify_fuzz --base-seed %llu --seeds 1 --ticks %d\n",
                  static_cast<unsigned long long>(seed), ticks);
    }
  }

  std::printf("  %llu ticks, %llu invariant checks across %llu seeds\n",
              static_cast<unsigned long long>(total_ticks),
              static_cast<unsigned long long>(total_checks),
              static_cast<unsigned long long>(seeds));
  if (!all_ok) {
    return 1;
  }
  std::printf("  no violations\n");
  return 0;
}
