// Ablation: the mode selector's deadband.
//
// The paper rejects jitter structurally (the level-one sum difference plus
// truncation of c·Δt). Our implementation exposes an additional optional
// deadband on |Δt|. This bench quantifies whether it earns its keep on this
// platform: spurious retargets under realistic sensor noise vs added
// response latency, across deadband widths.
#include <cmath>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/mode_selector.hpp"
#include "core/two_level_window.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Ablation", "selector deadband: noise immunity vs response latency");

  struct Row {
    double deadband;
    int noise_moves;
    double latency_s;
  };
  std::vector<Row> rows;

  for (double deadband : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    ModeSelectorConfig cfg;
    cfg.deadband = CelsiusDelta{deadband};
    ModeSelector selector{cfg, 100};

    // Noise scenario: a flat 48 degC signal through the quantized sensor
    // model (sigma 0.18, 0.25 degC steps) for 10 minutes at 4 Hz.
    Rng rng{4242};
    TwoLevelWindow window;
    std::size_t index = 30;
    int moves = 0;
    for (int i = 0; i < 2400; ++i) {
      const double reading = 48.0 + std::round(rng.normal(0.0, 0.18) / 0.25) * 0.25;
      if (auto round = window.add_sample(Celsius{reading})) {
        const ModeDecision d = selector.decide(index, *round);
        if (d.changed) {
          ++moves;
          index = d.target;
        }
      }
    }

    // Latency scenario: a 0.6 degC/s sustained rise; samples to first move.
    TwoLevelWindow w2;
    std::size_t idx2 = 30;
    double latency = -1.0;
    double temp = 45.0;
    for (int i = 0; i < 400; ++i) {
      temp += 0.6 * 0.25;
      if (auto round = w2.add_sample(Celsius{temp})) {
        if (selector.decide(idx2, *round).changed) {
          latency = (i + 1) * 0.25;
          break;
        }
      }
    }
    rows.push_back(Row{deadband, moves, latency});
  }

  TextTable table{{"deadband (degC)", "spurious moves / 10 min", "step latency (s)"}};
  for (const Row& row : rows) {
    table.add_row(format_number(row.deadband, 2),
                  {static_cast<double>(row.noise_moves), row.latency_s}, 2);
  }
  std::printf("%s", table.render().c_str());
  tb::note("with zero deadband the index dithers +-1 cell on sensor noise — which is\n"
           "exactly the small fan-speed wiggle visible in the paper's Fig. 5 PWM\n"
           "traces (1 cell = 1% duty: cosmetic). Silencing it takes a deadband near\n"
           "2x the noise sigma (1 degC here), which already triples step latency;\n"
           "the paper's structural rejection (sum-difference + truncation) is the\n"
           "right default and the deadband is a tunable for noisier sensors.");

  tb::shape_check("zero deadband dithers on noise", rows[0].noise_moves > 10);
  tb::shape_check("1 degC deadband cuts noise moves by >80%",
                  rows[3].noise_moves * 5 < rows[0].noise_moves);
  tb::shape_check("2 degC deadband silences noise entirely", rows[4].noise_moves == 0);
  tb::shape_check("sub-sigma deadbands add no latency",
                  rows[1].latency_s <= rows[0].latency_s + 1.1);
  tb::shape_check("a 2 degC deadband triples genuine response latency",
                  rows[4].latency_s >= rows[0].latency_s * 3.0);
  return 0;
}
