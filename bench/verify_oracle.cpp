// verify_oracle — the differential determinism oracle as a CI gate.
//
// Generates a seeded corpus of small experiment configs and runs each one
// under the three paired configurations the runtime promises are inert
// (serial vs parallel sweep, telemetry on vs off, fault-aware gating on a
// zero-fault run), diffing every behavioural output bit-exactly. Exits
// non-zero on the first report with failures so CI fails loudly; the
// printed report carries the corpus seed and config index needed to replay
// a failing pair locally.
//
// Usage: verify_oracle [--corpus N] [--seed S] [--threads T]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"
#include "verify/differential.hpp"

int main(int argc, char** argv) {
  using namespace thermctl;
  namespace tb = thermctl::bench;

  std::size_t corpus_size = 20;
  std::uint64_t seed = 20100913;  // ICPP 2010 opening day
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--corpus") == 0 && i + 1 < argc) {
      corpus_size = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
  }

  tb::banner("verify oracle", "differential determinism oracle over a seeded corpus");
  std::printf("  corpus: %zu configs, seed %llu\n", corpus_size,
              static_cast<unsigned long long>(seed));

  const std::vector<core::ExperimentConfig> corpus =
      verify::make_oracle_corpus(seed, corpus_size);
  verify::OracleOptions options;
  options.threads = threads;
  const verify::OracleReport report = verify::run_oracle(corpus, options);

  std::printf("%s\n", report.to_string().c_str());
  if (!report.ok()) {
    std::printf("REPLAY: verify_oracle --corpus %zu --seed %llu\n", corpus_size,
                static_cast<unsigned long long>(seed));
    return 1;
  }
  std::printf("  all %zu pairs bit-identical\n", report.pairs_checked);
  return 0;
}
