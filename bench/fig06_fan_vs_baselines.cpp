// Figure 6: our dynamic fan control vs the traditional static curve vs
// constant fan speed, NPB BT.B on 4 nodes.
//
// Paper setup: "the maximum allowed fan speed for traditional fan control
// and our fan control is set to 75%. Pp in our fan control is set to 50.
// [Constant control's] PWM duty cycle is fixed at 75%."
//
// Paper findings to reproduce in shape:
//   * the static method reacts only to absolute temperature, stabilizes
//     slowest and hottest;
//   * our method proactively expedites the fan and stabilizes lower;
//   * constant 75% is coolest but consumes the most (fan) power.
#include "bench_util.hpp"
#include "core/experiment.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Figure 6", "dynamic vs traditional static vs constant fan (BT.B.4, Pp=50)");

  struct Variant {
    const char* name;
    FanPolicyKind fan;
  };
  const Variant variants[] = {
      {"traditional static", FanPolicyKind::kStaticCurve},
      {"our dynamic", FanPolicyKind::kDynamic},
      {"constant 75%", FanPolicyKind::kConstantDuty},
  };

  struct Row {
    std::string name;
    double avg_temp;
    double max_temp;
    double avg_duty;
    double fan_energy_proxy;  // mean duty^3 — fan power proxy
    double exec_time;
  };
  std::vector<Row> rows;

  for (const Variant& v : variants) {
    ExperimentConfig cfg = paper_platform();
    cfg.name = std::string{"fig06_"} + (v.fan == FanPolicyKind::kStaticCurve
                                            ? "static"
                                            : (v.fan == FanPolicyKind::kDynamic ? "dynamic"
                                                                                : "constant"));
    cfg.workload = WorkloadKind::kNpbBt;
    cfg.fan = v.fan;
    cfg.pp = PolicyParam{50};
    cfg.max_duty = DutyCycle{75.0};
    cfg.constant_duty = DutyCycle{75.0};
    const ExperimentResult r = run_experiment(cfg);

    double duty3 = 0.0;
    std::size_t n = 0;
    for (const auto& node : r.run.nodes) {
      for (double d : node.duty) {
        duty3 += (d / 100.0) * (d / 100.0) * (d / 100.0);
        ++n;
      }
    }
    rows.push_back(Row{v.name, r.run.avg_die_temp(), r.run.max_die_temp(), r.run.avg_duty(),
                       duty3 / static_cast<double>(n), r.run.exec_time_s});
    tb::dump_csv(r.run, cfg.name + "_temp", "sensor_temp");
    tb::dump_csv(r.run, cfg.name + "_duty", "duty");
  }

  TextTable table{{"control", "avg temp (degC)", "max temp (degC)", "avg duty (%)",
                   "fan power proxy", "exec time (s)"}};
  for (const Row& row : rows) {
    table.add_row(row.name,
                  {row.avg_temp, row.max_temp, row.avg_duty, row.fan_energy_proxy,
                   row.exec_time},
                  2);
  }
  std::printf("%s", table.render().c_str());
  tb::note("paper reference: static stabilizes slowest/hottest (duty reaches 32%);\n"
           "ours proactively reaches >45% duty and stabilizes lower;\n"
           "constant 75% is coolest but burns the most fan power");

  const Row& stat = rows[0];
  const Row& dyn = rows[1];
  const Row& con = rows[2];
  tb::shape_check("dynamic runs cooler than static on average",
                  dyn.avg_temp < stat.avg_temp + 0.3);
  tb::shape_check("constant 75% is the coolest", con.avg_temp <= dyn.avg_temp + 0.3 &&
                                                     con.avg_temp <= stat.avg_temp);
  tb::shape_check("constant 75% costs the most fan power",
                  con.fan_energy_proxy > dyn.fan_energy_proxy &&
                      con.fan_energy_proxy > stat.fan_energy_proxy);
  tb::shape_check("fan policy does not change execution time (out-of-band)",
                  std::abs(dyn.exec_time - stat.exec_time) < 2.0 &&
                      std::abs(dyn.exec_time - con.exec_time) < 2.0);
  return 0;
}
