// Live telemetry pipeline at fleet scale — the acceptance bench for the
// streaming spiller, fleet rollups, OpenMetrics exposition and the alert
// watchdog (ISSUE 8).
//
// A 10k-node cpu-burn fleet runs under a lossy hierarchical control plane
// with deliberately tiny trace rings (64 events/node), twice:
//
//   dark:  rings only. The rings wrap and the run summary reports nonzero
//          dropped events — the loss the spiller exists to prevent. The
//          fleet rollup's steady window also calibrates the power-overshoot
//          alert threshold for the live run.
//   live:  the same run with the spiller draining every ring on a sub-ring
//          cadence, the watchdog armed with a budget-overshoot rule, and
//          mid-run OpenMetrics expositions captured in-process.
//
// Hard acceptance checks (exit status, like rack_budget):
//   * zero trace-event loss with the spiller on vs nonzero drops dark,
//   * rollup output is O(racks · intervals), not O(nodes · samples),
//   * a mid-run OpenMetrics snapshot was captured and is well-formed
//     (tools/validate_openmetrics.py lints the written file under ctest),
//   * the budget-overshoot alert fired, at exactly the sim-time a replay of
//     the rollup series says it should have.
//
// Usage: live_telemetry [--nodes N] [--horizon S] [--om-out PATH]
//                       [--spill-file PATH]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"

namespace {

using namespace thermctl;
using namespace thermctl::core;

constexpr std::size_t kNodesPerRack = 64;
constexpr double kRollupIntervalS = 0.5;
constexpr double kSpillPeriodS = 0.5;
constexpr std::size_t kRingCapacity = 64;
constexpr double kAlertForS = 2.0;

ExperimentConfig base_config(std::size_t nodes, double horizon_s) {
  ExperimentConfig cfg = paper_platform();
  cfg.name = "live-telemetry";
  cfg.nodes = nodes;
  cfg.workload = WorkloadKind::kCpuBurn;
  cfg.cpu_burn_duration = Seconds{horizon_s};
  cfg.engine.horizon = Seconds{horizon_s};
  // Recording every node's full series at fleet scale is exactly the
  // overhead the rollup replaces; keep it coarse.
  cfg.engine.record_period = Seconds{1.0};
  cfg.engine.workers = nodes >= 1024 ? 8 : 1;
  cfg.fan = FanPolicyKind::kDynamic;

  // Lossy plane: dropped and reordered coordination messages exercise the
  // fail-safe/rejoin churn the rollup's plane columns report.
  cfg.control_plane.enabled = true;
  cfg.control_plane.plane.nodes_per_rack = kNodesPerRack;
  cfg.control_plane.plane.transport.drop_rate = 0.05;
  cfg.control_plane.plane.transport.reorder_rate = 0.05;

  cfg.telemetry.trace = true;
  cfg.telemetry.trace_ring_capacity = kRingCapacity;
  cfg.telemetry.metrics = true;
  cfg.telemetry.rollup.enabled = true;
  cfg.telemetry.rollup.interval_s = kRollupIntervalS;
  return cfg;
}

/// Replays the fleet rollup series through the watchdog's hold-time rule and
/// returns the sim-time a power rule should first fire (-1 if never).
double expected_fire_time(const std::vector<obs::RollupSample>& fleet, double threshold,
                          double for_s) {
  double above_since = -1.0;
  for (const obs::RollupSample& s : fleet) {
    if (s.power_w > threshold) {
      if (above_since < 0.0) {
        above_since = s.t_s;
      }
      if (s.t_s - above_since >= for_s) {
        return s.t_s;
      }
    } else {
      above_since = -1.0;
    }
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  namespace tb = thermctl::bench;

  std::size_t nodes = 10000;
  double horizon_s = 60.0;
  std::string om_out;
  std::string spill_file;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--nodes") == 0) {
      nodes = static_cast<std::size_t>(std::atol(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--horizon") == 0) {
      horizon_s = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--om-out") == 0) {
      om_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--spill-file") == 0) {
      spill_file = argv[i + 1];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--nodes N] [--horizon S] [--om-out PATH] [--spill-file PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (om_out.empty()) {
    om_out = tb::out_dir() + "/live_telemetry_metrics.txt";
  }

  tb::banner("Live telemetry",
             "streaming spill + fleet rollups + OpenMetrics + alert watchdog (" +
                 std::to_string(nodes) + " nodes, lossy plane)");

  // ---- dark run: rings wrap, events drop, rollup calibrates the alert ----
  const ExperimentResult dark = run_experiment(base_config(nodes, horizon_s));
  const std::uint64_t dark_dropped = dark.trace->total_dropped();
  const std::vector<obs::RollupSample>& dark_fleet = dark.rollup->fleet_series();
  double steady_w = 0.0;
  std::size_t steady_n = 0;
  for (const obs::RollupSample& s : dark_fleet) {
    if (s.t_s >= horizon_s * 0.25) {
      steady_w += s.power_w;
      ++steady_n;
    }
  }
  steady_w = steady_n > 0 ? steady_w / static_cast<double>(steady_n) : 0.0;
  // Injected overshoot: the threshold an operator would have wanted held sits
  // 25% under the fleet's actual steady draw, so the signal is over budget
  // from early in the burn and must hold through the rule's 2 s window.
  const double budget_threshold_w = 0.75 * steady_w;
  std::printf("  dark run: %llu trace events emitted, %llu dropped to ring wraps\n",
              static_cast<unsigned long long>(dark.trace->total_emitted()),
              static_cast<unsigned long long>(dark_dropped));
  std::printf("  fleet steady draw %.0f W -> alert threshold %.0f W\n", steady_w,
              budget_threshold_w);

  // ---- live run: spiller + watchdog + exposition armed ----
  ExperimentConfig live_cfg = base_config(nodes, horizon_s);
  obs::MemorySpillSink memory_sink;
  std::unique_ptr<obs::FileSpillSink> file_sink;
  live_cfg.telemetry.spill = true;
  live_cfg.telemetry.spill_cfg.period_s = kSpillPeriodS;
  if (!spill_file.empty()) {
    file_sink = std::make_unique<obs::FileSpillSink>(spill_file);
    live_cfg.telemetry.spill_sink = file_sink.get();
  } else {
    live_cfg.telemetry.spill_sink = &memory_sink;
  }
  live_cfg.telemetry.alerts = {
      {"fleet-power-over-budget", obs::AlertKind::kPowerOverBudget, budget_threshold_w,
       kAlertForS, false},
      {"rack-hot", obs::AlertKind::kMaxTemp, 70.0, 1.0, true},
      {"plane-failsafe-storm", obs::AlertKind::kFailsafeRate, 120.0, 0.0, false},
  };
  obs::CapturingTelemetrySink live_sink;
  live_cfg.telemetry.live_sink = &live_sink;
  live_cfg.telemetry.live_every = 2;
  const ExperimentResult live = run_experiment(live_cfg);

  const obs::SpillStats& spill = *live.spill;
  std::printf("  live run: %llu events spilled across %llu drains, %llu lost, "
              "%llu deferred\n",
              static_cast<unsigned long long>(spill.events_spilled),
              static_cast<unsigned long long>(spill.drains),
              static_cast<unsigned long long>(spill.events_lost),
              static_cast<unsigned long long>(spill.deferred_drains));

  // Rollup footprint vs what per-node recording would have cost.
  const std::uint64_t rollup_samples = live.rollup->samples_recorded();
  const std::uint64_t intervals =
      static_cast<std::uint64_t>(horizon_s / kRollupIntervalS) + 2;
  const std::uint64_t per_node_samples =
      static_cast<std::uint64_t>(nodes) * static_cast<std::uint64_t>(horizon_s / 0.25);
  std::printf("  rollup: %llu samples over %zu rack(s) + fleet (per-node recording would "
              "be %llu)\n",
              static_cast<unsigned long long>(rollup_samples), live.rollup->rack_count(),
              static_cast<unsigned long long>(per_node_samples));

  // Mid-run exposition: persist the last captured snapshot for the linter.
  {
    std::ofstream om{om_out, std::ios::trunc};
    om << live_sink.last();
  }
  std::printf("  openmetrics: %llu mid-run expositions captured, last at t=%.1f s "
              "(%zu bytes) -> %s\n",
              static_cast<unsigned long long>(live_sink.count()), live_sink.last_t_s(),
              live_sink.last().size(), om_out.c_str());

  // Alert replay: recompute the fire time from the recorded rollup series.
  const double expected_fire =
      expected_fire_time(live.rollup->fleet_series(), budget_threshold_w, kAlertForS);
  const obs::AlertEvent* power_alert = nullptr;
  for (const obs::AlertEvent& e : live.alerts) {
    if (e.rule == 0) {
      power_alert = &e;
      break;
    }
  }
  if (power_alert != nullptr) {
    std::printf("  alert '%s' fired at t=%.2f s (expected %.2f), peak %.0f W%s\n",
                power_alert->name.c_str(), power_alert->fired_at_s, expected_fire,
                power_alert->peak,
                power_alert->cleared_at_s < 0.0 ? ", still firing at end" : "");
  }

  // The full telemetry bundle (chrome export of 10k nodes' rings) is too
  // heavy for a bench artifact; the machine-readable summary carries the
  // alerts / rollup / spill sections the tooling consumes.
  const std::string summary_path = tb::out_dir() + "/live_telemetry.summary.json";
  core::write_run_summary_json(summary_path, "live_telemetry", live);
  std::printf("  run summary written: %s\n", summary_path.c_str());

  // Fleet rollup series for replotting.
  CsvWriter csv{tb::out_dir() + "/live_telemetry_rollup.csv",
                {"t_s", "max_temp_c", "avg_temp_c", "power_w", "capped_nodes",
                 "autonomous_nodes", "violation_node_s"}};
  for (const obs::RollupSample& s : live.rollup->fleet_series()) {
    csv.row({s.t_s, s.max_temp_c, s.avg_temp_c, s.power_w,
             static_cast<double>(s.capped_nodes), static_cast<double>(s.autonomous_nodes),
             s.violation_node_s});
  }
  std::printf("  series written: %s (%zu rows)\n", csv.path().c_str(), csv.rows_written());

  // Acceptance criteria — exit status, ctest runs this as
  // bench_live_telemetry_smoke.
  bool ok = true;
  ok &= tb::shape_check("dark run drops trace events to ring wraps", dark_dropped > 0);
  ok &= tb::shape_check("spiller loses zero events on the same run",
                        spill.events_lost == 0);
  ok &= tb::shape_check("every emitted event reached the spill sink",
                        spill.events_spilled == live.trace->total_emitted());
  if (spill_file.empty()) {
    ok &= tb::shape_check("memory sink finalized with the full stream",
                          memory_sink.finalized() &&
                              memory_sink.events().size() == spill.events_spilled);
  }
  ok &= tb::shape_check("rollup output is O(racks), not O(nodes)",
                        rollup_samples <=
                            (static_cast<std::uint64_t>(live.rollup->rack_count()) + 1) *
                                intervals &&
                        (nodes < 64 || rollup_samples * 10 < per_node_samples));
  ok &= tb::shape_check("mid-run OpenMetrics snapshots were captured",
                        live_sink.count() >= 2);
  ok &= tb::shape_check("exposition is EOF-terminated",
                        live_sink.last().size() >= 6 &&
                            live_sink.last().rfind("# EOF\n") ==
                                live_sink.last().size() - 6);
  ok &= tb::shape_check("budget-overshoot alert fired", power_alert != nullptr);
  ok &= tb::shape_check("alert fired at the sim-time the rollup series dictates",
                        power_alert != nullptr && expected_fire >= 0.0 &&
                            power_alert->fired_at_s == expected_fire);
  ok &= tb::shape_check("live pipeline run is behaviourally clean (same app outcome)",
                        live.run.app_completed == dark.run.app_completed);
  return ok ? 0 : 1;
}
