// Baseline comparison: formal closed-loop (PID) fan control vs the paper's
// history-based controller.
//
// §2 positions the paper against "formal thermal control techniques"
// (Wu/Juang, Lefurgy, Wang): precise regulation to a setpoint, at the price
// of per-platform gain tuning. This bench runs both on the same two
// scenarios:
//
//   1. a load step (regulation quality: overshoot past the setpoint,
//      settling, steady-state error);
//   2. a quiet, jittery workload (actuator wear: PWM writes per minute —
//      PID chases every sensor count, the window-based controller ignores
//      Type III by construction).
#include <memory>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/fan_policy.hpp"
#include "core/pid_fan.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace thermctl;
using namespace thermctl::core;

struct Outcome {
  double max_temp;
  double tail_avg_temp;  // final third
  double avg_duty;
  double actuations_per_min;
};

Outcome summarize_run(const cluster::RunResult& run, std::uint64_t actuations,
                      double horizon_s) {
  Outcome o{};
  o.max_temp = run.max_die_temp();
  const auto& temps = run.nodes[0].sensor_temp;
  double tail = 0.0;
  const std::size_t start = temps.size() * 2 / 3;
  for (std::size_t i = start; i < temps.size(); ++i) {
    tail += temps[i];
  }
  o.tail_avg_temp = tail / static_cast<double>(temps.size() - start);
  o.avg_duty = run.summaries[0].avg_duty;
  o.actuations_per_min = static_cast<double>(actuations) / (horizon_s / 60.0);
  return o;
}

Outcome run_pid(const workload::SegmentLoad& load, double horizon_s) {
  cluster::NodeParams params;
  PidFanConfig cfg;
  cfg.setpoint = Celsius{50.0};
  cluster::Cluster rig{1, params};
  rig.node(0).set_utilization(Utilization{0.05});
  rig.node(0).settle();
  PidFanController pid{rig.node(0).hwmon(), cfg};
  cluster::EngineConfig ecfg;
  ecfg.horizon = Seconds{horizon_s};
  cluster::Engine engine{rig, ecfg};
  engine.set_node_load(0, &load);
  engine.add_periodic(Seconds{0.25}, [&pid](SimTime now) { pid.on_sample(now); });
  const cluster::RunResult run = engine.run();
  return summarize_run(run, pid.actuations(), horizon_s);
}

Outcome run_dynamic(const workload::SegmentLoad& load, double horizon_s) {
  cluster::NodeParams params;
  cluster::Cluster rig{1, params};
  rig.node(0).set_utilization(Utilization{0.05});
  rig.node(0).settle();
  FanControlConfig cfg;
  cfg.pp = PolicyParam{50};
  DynamicFanController ctl{rig.node(0).hwmon(), cfg};
  cluster::EngineConfig ecfg;
  ecfg.horizon = Seconds{horizon_s};
  cluster::Engine engine{rig, ecfg};
  engine.set_node_load(0, &load);
  engine.add_periodic(Seconds{0.25}, [&ctl](SimTime now) { ctl.on_sample(now); });
  const cluster::RunResult run = engine.run();
  return summarize_run(run, ctl.retarget_count(), horizon_s);
}

}  // namespace

int main() {
  namespace tb = thermctl::bench;
  tb::banner("Baseline", "formal PID regulation vs history-based control");

  const auto step = workload::sudden_profile(Seconds{30.0}, Seconds{210.0});
  const auto quiet = workload::jitter_profile(Seconds{240.0}, 0.25, 0.15, Seconds{3.0});

  const Outcome pid_step = run_pid(step, 240.0);
  const Outcome dyn_step = run_dynamic(step, 240.0);
  const Outcome pid_quiet = run_pid(quiet, 240.0);
  const Outcome dyn_quiet = run_dynamic(quiet, 240.0);

  TextTable table{{"controller / scenario", "max temp (degC)", "tail avg temp", "avg duty (%)",
                   "PWM writes / min"}};
  table.add_row("PID @50, load step",
                {pid_step.max_temp, pid_step.tail_avg_temp, pid_step.avg_duty,
                 pid_step.actuations_per_min},
                1);
  table.add_row("dynamic Pp=50, load step",
                {dyn_step.max_temp, dyn_step.tail_avg_temp, dyn_step.avg_duty,
                 dyn_step.actuations_per_min},
                1);
  table.add_row("PID @50, quiet jitter",
                {pid_quiet.max_temp, pid_quiet.tail_avg_temp, pid_quiet.avg_duty,
                 pid_quiet.actuations_per_min},
                1);
  table.add_row("dynamic Pp=50, quiet jitter",
                {dyn_quiet.max_temp, dyn_quiet.tail_avg_temp, dyn_quiet.avg_duty,
                 dyn_quiet.actuations_per_min},
                1);
  std::printf("%s", table.render().c_str());
  tb::note("PID holds its setpoint tightly but actuates on every sensor count; the\n"
           "window-based controller trades a softer temperature target for an\n"
           "order-of-magnitude quieter actuator under Type III conditions");

  tb::shape_check("PID regulates the step scenario at least as tightly",
                  pid_step.tail_avg_temp <= dyn_step.tail_avg_temp + 1.0);
  tb::shape_check("history-based controller writes PWM ~3x less often under jitter",
                  dyn_quiet.actuations_per_min * 2.5 < pid_quiet.actuations_per_min);
  tb::shape_check("both contain the step (max < 60 degC)",
                  pid_step.max_temp < 60.0 && dyn_step.max_temp < 60.0);
  return 0;
}
