// Figure 7: emulating fans of different power — maximum PWM duty cycle
// sweep {25, 50, 75, 100}% under dynamic control, NPB BT.B on 4 nodes, Pp=50.
//
// Paper findings to reproduce in shape:
//   * a more powerful fan (higher cap) brings temperature lower;
//   * 100% cap runs ~8 degC cooler than 25% cap;
//   * "no significant temperature difference between 50% and 75%" — a less
//     powerful fan under proactive control delivers comparable cooling.
#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "runtime/sweep.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Figure 7", "maximum-PWM sweep 25/50/75/100% (BT.B.4, dynamic fan, Pp=50)");

  // Four independent fan-ceiling points, fanned across cores.
  const std::vector<int> caps{25, 50, 75, 100};
  std::vector<ExperimentConfig> configs;
  for (int cap : caps) {
    ExperimentConfig cfg = paper_platform();
    cfg.name = "fig07_cap" + std::to_string(cap);
    cfg.workload = WorkloadKind::kNpbBt;
    cfg.fan = FanPolicyKind::kDynamic;
    cfg.pp = PolicyParam{50};
    cfg.max_duty = DutyCycle{static_cast<double>(cap)};
    configs.push_back(cfg);
  }
  const std::vector<ExperimentResult> results = runtime::run_sweep(configs);

  struct Row {
    int cap;
    double avg_temp;
    double max_temp;
    double avg_duty;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    rows.push_back(Row{caps[i], r.run.avg_die_temp(), r.run.max_die_temp(), r.run.avg_duty()});
    tb::dump_csv(r.run, configs[i].name + "_temp", "sensor_temp");
    tb::dump_csv(r.run, configs[i].name + "_duty", "duty");
  }

  TextTable table{{"max duty", "avg temp (degC)", "max temp (degC)", "avg duty (%)"}};
  for (const Row& row : rows) {
    table.add_row(std::to_string(row.cap) + "%", {row.avg_temp, row.max_temp, row.avg_duty},
                  2);
  }
  std::printf("%s", table.render().c_str());
  tb::note("paper reference: 100% cap ~8 degC cooler than 25% cap; 50% vs 75% gap not\n"
           "significant — a less powerful fan achieves comparable cooling with\n"
           "proactive control");

  const double gap_25_100 = rows[0].avg_temp - rows[3].avg_temp;
  const double gap_50_75 = rows[1].avg_temp - rows[2].avg_temp;
  std::printf("  temperature gap 25%% vs 100%% cap: %.2f degC\n", gap_25_100);
  std::printf("  temperature gap 50%% vs 75%% cap: %.2f degC\n", gap_50_75);

  tb::shape_check("higher cap never hotter (monotone ordering)",
                  rows[0].avg_temp >= rows[1].avg_temp - 0.2 &&
                      rows[1].avg_temp >= rows[2].avg_temp - 0.2 &&
                      rows[2].avg_temp >= rows[3].avg_temp - 0.2);
  tb::shape_check("25% vs 100% gap is several degrees (paper: ~8)",
                  gap_25_100 > 3.0 && gap_25_100 < 16.0);
  tb::shape_check("50% vs 75% gap much smaller than 25% vs 100% gap",
                  gap_50_75 < gap_25_100 * 0.5);
  return 0;
}
