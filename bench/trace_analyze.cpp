// trace_analyze — decision-trace analyzer CLI.
//
// Ingests a .thermtrace file written by any traced run (fig05/fig10/
// fault_campaign, trace_smoke, or user code calling obs::write_trace_file)
// and renders the three views the paper's evaluation reasons in:
//
//   * per-node decision timelines (retargets, triggers, fail-safe episodes,
//     plane cap moves / fail-safes / Pp re-tunes, watchdog alerts),
//   * mode-residency histograms (time at each duty / frequency / plane cap),
//   * the trigger-causality table (rounds -> decisions -> actuations, with
//     Δt-source and clamp attribution, plus plane and alert columns).
//
// Usage: trace_analyze <run.thermtrace> [--max-rows N] [--chrome out.json]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "obs/chrome_export.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_summary.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <run.thermtrace> [--max-rows N] [--chrome out.json]\n"
               "  --max-rows N   cap timeline rows per node (default 40, 0 = unlimited)\n"
               "  --chrome PATH  also re-export the trace as Chrome trace_event JSON\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace thermctl;

  std::string path;
  std::string chrome_out;
  std::size_t max_rows = 40;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-rows") == 0 && i + 1 < argc) {
      max_rows = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--chrome") == 0 && i + 1 < argc) {
      chrome_out = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) {
    return usage(argv[0]);
  }

  try {
    obs::TraceFile file = obs::read_trace_file(path);
    std::vector<obs::TraceEvent>& events = file.events;
    // Spilled traces can interleave equal-timestamp events across batch
    // boundaries (backpressure deferral); restore the canonical merge order
    // the summary views assume.
    std::stable_sort(events.begin(), events.end(),
                     [](const obs::TraceEvent& x, const obs::TraceEvent& y) {
                       if (x.t_s != y.t_s) return x.t_s < y.t_s;
                       return x.node < y.node;
                     });
    const double end_s = events.empty() ? 0.0 : events.back().t_s;

    std::printf("%s: %zu events across %u node(s), t = 0 .. %.2f s\n\n", path.c_str(),
                events.size(), file.node_count, end_s);

    std::printf("decision timeline (max %zu rows/node):\n", max_rows);
    std::printf("%s\n", obs::render_timeline(events, max_rows).c_str());

    const std::string fan_res =
        obs::render_residency(events, obs::TraceSubsystem::kFan, end_s);
    if (!fan_res.empty()) {
      std::printf("fan duty residency:\n%s\n", fan_res.c_str());
    }
    const std::string dvfs_res =
        obs::render_residency(events, obs::TraceSubsystem::kTdvfs, end_s);
    if (!dvfs_res.empty()) {
      std::printf("cpu frequency residency:\n%s\n", dvfs_res.c_str());
    }
    const std::string plane_res =
        obs::render_residency(events, obs::TraceSubsystem::kPlane, end_s);
    if (!plane_res.empty()) {
      std::printf("plane p-state cap residency:\n%s\n", plane_res.c_str());
    }

    std::printf("trigger causality:\n%s", obs::render_causality(events).c_str());

    if (!chrome_out.empty()) {
      obs::write_chrome_trace(chrome_out, events);
      std::printf("\nchrome trace written: %s (load in Perfetto / chrome://tracing)\n",
                  chrome_out.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_analyze: %s\n", e.what());
    return 1;
  }
  return 0;
}
