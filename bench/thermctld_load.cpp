// thermctld under load — the acceptance bench for the control daemon
// (ISSUE 9).
//
// One daemon hosts a 1k-node fleet (hierarchical plane + live telemetry)
// while hundreds of concurrent UNIX-socket clients hammer the control API:
// status probes, liveness pings and full OpenMetrics pulls, with a mid-run
// `set-policy` re-tune landing while the fleet is hot.
//
// Hard acceptance checks (exit status, like rack_budget):
//   * every client request is answered well-formed — none dropped, none
//     truncated, under >= 200 concurrent connections,
//   * zero dropped control rounds: the daemon's engine-side round count
//     matches the elapsed sim time at the control period,
//   * every accepted command is applied (applied == enqueued),
//   * the mid-run set-policy becomes visible in `status` within one L2
//     window (level1 x level2 x sample period = 5 s of sim time),
//   * the keepalive watchdog never fired spuriously.
//
// Usage: thermctld_load [--clients N] [--nodes N] [--requests N]
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "daemon/daemon.hpp"

namespace {

using namespace thermctl;

constexpr std::size_t kNodesPerRack = 64;
constexpr double kControlPeriodS = 0.25;
// One L2 window: level1_size(4) x level2_size(5) x sample period (0.25 s).
constexpr double kL2WindowS = 5.0;

int connect_client(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (int attempt = 0; attempt < 500; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      return fd;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  ::close(fd);
  return -1;
}

/// One request line -> the full response (terminated by `terminator`), or
/// empty on a dropped/truncated reply.
std::string request(int fd, const std::string& line, const std::string& terminator = "\n") {
  const std::string out = line + "\n";
  if (::write(fd, out.data(), out.size()) != static_cast<ssize_t>(out.size())) {
    return {};
  }
  std::string response;
  char chunk[8192];
  while (response.size() < terminator.size() ||
         response.compare(response.size() - terminator.size(), terminator.size(),
                          terminator) != 0) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      return {};
    }
    response.append(chunk, static_cast<std::size_t>(n));
  }
  return response;
}

}  // namespace

int main(int argc, char** argv) {
  namespace tb = thermctl::bench;

  std::size_t clients = 200;
  std::size_t nodes = 1000;
  int requests_per_client = 40;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--clients") == 0) {
      clients = static_cast<std::size_t>(std::atol(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      nodes = static_cast<std::size_t>(std::atol(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      requests_per_client = std::atoi(argv[i + 1]);
    } else {
      std::fprintf(stderr, "usage: %s [--clients N] [--nodes N] [--requests N]\n", argv[0]);
      return 2;
    }
  }

  tb::banner("thermctld load",
             std::to_string(clients) + " socket clients against a " + std::to_string(nodes) +
                 "-node fleet, mid-run policy re-tune");

  daemon::DaemonConfig dc;
  dc.socket_path = "/tmp/thermctld_load_" + std::to_string(::getpid()) + ".sock";
  dc.control_period_s = kControlPeriodS;

  core::ExperimentConfig& cfg = dc.experiment;
  cfg = core::paper_platform();
  cfg.name = "thermctld-load";
  cfg.nodes = nodes;
  cfg.workload = core::WorkloadKind::kCpuBurn;
  cfg.cpu_burn_duration = Seconds{100000.0};  // ends via `shutdown`, not horizon
  cfg.engine.record_period = Seconds{1.0};
  cfg.engine.workers = nodes >= 512 ? 0 : 1;
  cfg.control_plane.enabled = true;
  cfg.control_plane.plane.nodes_per_rack = kNodesPerRack;
  cfg.telemetry.metrics = true;
  cfg.telemetry.rollup.enabled = true;
  cfg.telemetry.rollup.interval_s = 1.0;

  daemon::Daemon d{dc};
  core::ExperimentResult result;
  std::thread runner{[&] { result = d.run(); }};

  // ---- concurrent client storm ----
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> malformed{0};
  std::vector<std::thread> storm;
  storm.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    storm.emplace_back([&, c] {
      const int fd = connect_client(dc.socket_path);
      if (fd < 0) {
        malformed.fetch_add(static_cast<std::uint64_t>(requests_per_client));
        return;
      }
      for (int i = 0; i < requests_per_client; ++i) {
        std::string response;
        bool ok = false;
        switch ((i + static_cast<int>(c)) % 3) {
          case 0:
            response = request(fd, "status");
            ok = response.rfind("OK ", 0) == 0;
            break;
          case 1:
            response = request(fd, "ping");
            ok = response == "OK pong\n";
            break;
          default:
            // Before the first rollup interval the exposition is a bare
            // "# EOF\n" frame; after it, a full body. Both are well-formed.
            response = request(fd, "GET /metrics", "# EOF\n");
            ok = !response.empty() &&
                 (response == "# EOF\n" ||
                  response.find("thermctl_sim_time_seconds") != std::string::npos);
            break;
        }
        (ok ? answered : malformed).fetch_add(1);
      }
      ::close(fd);
    });
  }

  // ---- mid-run hot re-tune ----
  // The latency against the L2 window is measured by the daemon in sim
  // seconds (enqueue stamp -> engine-thread apply stamp): with the sim
  // outrunning wall clock, a client-side poll can only sample the status
  // snapshot several windows apart, which measures socket round-trip
  // granularity rather than control latency. The client here asserts the
  // observable contract instead: the ack, then pp=25 visible in `status`.
  bool retune_visible = false;
  {
    const int fd = connect_client(dc.socket_path);
    if (fd >= 0) {
      const std::string ack = request(fd, "set-policy 25");
      if (ack != "OK pp=25\n") {
        std::fprintf(stderr, "set-policy rejected: %s", ack.c_str());
      }
      for (int attempt = 0; attempt < 200000 && !retune_visible; ++attempt) {
        retune_visible = request(fd, "status").find(" pp=25 ") != std::string::npos;
      }
      ::close(fd);
    }
  }

  for (std::thread& t : storm) {
    t.join();
  }
  {
    const int fd = connect_client(dc.socket_path);
    if (fd >= 0) {
      (void)request(fd, "shutdown");
      ::close(fd);
    }
  }
  runner.join();

  const daemon::DaemonStats stats = d.stats();
  const double retune_latency_s =
      stats.last_retune_apply_t_s >= 0.0 && stats.last_retune_enqueue_t_s >= 0.0
          ? stats.last_retune_apply_t_s - stats.last_retune_enqueue_t_s
          : -1.0;
  const auto expected_rounds =
      static_cast<std::uint64_t>(result.run.exec_time_s / kControlPeriodS);

  std::printf("\n  clients            : %zu (%llu accepted by daemon)\n", clients,
              static_cast<unsigned long long>(stats.clients_accepted));
  std::printf("  requests answered  : %llu ok, %llu malformed/dropped\n",
              static_cast<unsigned long long>(answered.load()),
              static_cast<unsigned long long>(malformed.load()));
  std::printf("  control rounds     : %llu (>= %llu expected at %.2fs period)\n",
              static_cast<unsigned long long>(stats.control_rounds),
              static_cast<unsigned long long>(expected_rounds), kControlPeriodS);
  std::printf("  commands           : %llu applied / %llu enqueued\n",
              static_cast<unsigned long long>(stats.commands_applied),
              static_cast<unsigned long long>(stats.commands_enqueued));
  std::printf("  re-tune latency    : %.3f sim-s (L2 window %.1f s)\n", retune_latency_s,
              kL2WindowS);
  std::printf("  sim time at stop   : %.1f s\n", result.run.exec_time_s);

  bool ok = true;
  ok &= tb::shape_check("every client request answered well-formed",
                        malformed.load() == 0 &&
                            answered.load() ==
                                static_cast<std::uint64_t>(clients) *
                                    static_cast<std::uint64_t>(requests_per_client));
  ok &= tb::shape_check("zero dropped control rounds",
                        stats.control_rounds + 1 >= expected_rounds);
  ok &= tb::shape_check("every accepted command applied",
                        stats.commands_applied == stats.commands_enqueued);
  ok &= tb::shape_check("mid-run set-policy visible within one L2 window",
                        retune_visible && retune_latency_s >= 0.0 &&
                            retune_latency_s <= kL2WindowS);
  ok &= tb::shape_check("watchdog never fired spuriously", stats.failsafe_entries == 0);
  return ok ? 0 : 1;
}
