// Figure 5: dynamic fan control under cpu-burn for Pp in {25, 50, 75}.
//
// Paper setup: "We initially run three instances of the cpu-burn code ...
// Each run lasts about five minutes. We tested three temperature control
// policies: aggressive (Pp=25), moderate (Pp=50), weak (Pp=75)."
//
// Paper findings to reproduce in shape:
//   * fan responds to sudden variation, ignores jitter,
//   * smaller Pp -> lower operating temperature,
//   * average PWM duty ordering: Pp=25 (70) > Pp=50 (53) > Pp=75 (36).
#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "runtime/sweep.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Figure 5", "dynamic fan control under cpu-burn, Pp in {25, 50, 75}");

  // The three policy points are independent runs — fan them across cores.
  const std::vector<int> pps{25, 50, 75};
  std::vector<ExperimentConfig> configs;
  for (int pp : pps) {
    ExperimentConfig cfg = paper_platform();
    cfg.name = "fig05_pp" + std::to_string(pp);
    cfg.nodes = 1;
    cfg.workload = WorkloadKind::kCpuBurnCycles;  // three instances, as in §4.2
    cfg.cpu_burn_duration = Seconds{300.0};       // "about five minutes"
    cfg.fan = FanPolicyKind::kDynamic;
    cfg.pp = PolicyParam{pp};
    // Trace the controller so every retarget in the figure has its window
    // round / Δt-source recorded alongside.
    cfg.telemetry.trace = true;
    cfg.telemetry.metrics = true;
    configs.push_back(cfg);
  }
  const std::vector<ExperimentResult> results = runtime::run_sweep(configs);

  struct Row {
    int pp;
    double avg_duty;
    double avg_temp;
    double max_temp;
    double avg_power;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    rows.push_back(Row{pps[i], r.run.summaries[0].avg_duty, r.run.avg_die_temp(),
                       r.run.max_die_temp(), r.run.avg_power_w()});
    tb::dump_csv(r.run, configs[i].name + "_temp", "sensor_temp");
    tb::dump_csv(r.run, configs[i].name + "_duty", "duty");
    tb::export_telemetry(r, configs[i].name);
  }

  TextTable table{{"policy", "avg PWM duty (%)", "avg temp (degC)", "max temp (degC)",
                   "avg power (W)"}};
  for (const Row& row : rows) {
    table.add_row("Pp=" + std::to_string(row.pp),
                  {row.avg_duty, row.avg_temp, row.max_temp, row.avg_power}, 1);
  }
  std::printf("%s", table.render().c_str());
  tb::note("paper reference: avg PWM duty 70 (Pp=25), 53 (Pp=50), 36 (Pp=75);\n"
           "smaller Pp -> lower temperature, higher fan power");

  tb::shape_check("duty ordering Pp=25 > Pp=50 > Pp=75",
                  rows[0].avg_duty > rows[1].avg_duty && rows[1].avg_duty > rows[2].avg_duty);
  tb::shape_check("temperature ordering Pp=25 < Pp=50 < Pp=75",
                  rows[0].avg_temp < rows[1].avg_temp && rows[1].avg_temp < rows[2].avg_temp);
  tb::shape_check("duty spread across policies > 10 points",
                  rows[0].avg_duty - rows[2].avg_duty > 10.0);
  return 0;
}
