// Figure 3: mechanics of the two-level, history-based temperature window.
//
// The paper's figure is a schematic; this bench makes it executable: it
// feeds the window three scripted scenarios (sudden rise, gradual drift,
// jitter) and prints each completed round's Δt_L1 / Δt_L2 / average so the
// division of labour between the two levels is visible in numbers.
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/two_level_window.hpp"

namespace {

using namespace thermctl;

void run_scenario(const char* name, const std::vector<double>& samples) {
  core::TwoLevelWindow window;
  TextTable table{{"round", "dT_L1", "dT_L2", "round avg"}};
  int round_no = 0;
  for (double s : samples) {
    const auto round = window.add_sample(Celsius{s});
    if (round.has_value()) {
      ++round_no;
      table.add_row("#" + std::to_string(round_no),
                    {round->level1_delta.value(),
                     round->level2_valid ? round->level2_delta.value() : 0.0,
                     round->level1_average.value()},
                    2);
    }
  }
  std::printf("\nscenario: %s\n%s", name, table.render().c_str());
}

}  // namespace

int main() {
  namespace tb = thermctl::bench;
  tb::banner("Figure 3", "two-level window mechanics (4-entry L1, 5-entry L2 FIFO)");

  // Sudden: +0.5 degC per sample, sustained.
  std::vector<double> sudden;
  for (int i = 0; i < 20; ++i) {
    sudden.push_back(45.0 + 0.5 * i);
  }
  run_scenario("sudden rise (+2 degC/s at 4 Hz) -> large dT_L1 every round", sudden);

  // Gradual: +0.05 degC per sample — invisible to L1, visible to L2.
  std::vector<double> gradual;
  for (int i = 0; i < 24; ++i) {
    gradual.push_back(45.0 + 0.05 * i);
  }
  run_scenario("gradual drift (+0.2 degC/s) -> dT_L1 small, dT_L2 accumulates", gradual);

  // Jitter: alternating +-0.5 degC with no trend.
  std::vector<double> jitter;
  for (int i = 0; i < 24; ++i) {
    jitter.push_back(45.0 + (i % 2 == 0 ? 0.5 : -0.5));
  }
  run_scenario("jitter (alternating +-0.5 degC) -> both deltas cancel", jitter);

  // Quantitative contract checks.
  core::TwoLevelWindow w;
  std::optional<core::WindowRound> last;
  for (double s : gradual) {
    if (auto r = w.add_sample(Celsius{s})) {
      last = r;
    }
  }
  tb::shape_check("gradual: |dT_L2| > 3x |dT_L1| on the final round",
                  last.has_value() && std::abs(last->level2_delta.value()) >
                                          3.0 * std::abs(last->level1_delta.value()));

  core::TwoLevelWindow wj;
  std::optional<core::WindowRound> lastj;
  for (double s : jitter) {
    if (auto r = wj.add_sample(Celsius{s})) {
      lastj = r;
    }
  }
  tb::shape_check("jitter: both deltas below 0.1 degC",
                  lastj.has_value() && std::abs(lastj->level1_delta.value()) < 0.1 &&
                      std::abs(lastj->level2_delta.value()) < 0.1);
  return 0;
}
