// Shared helpers for the experiment harness binaries.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cluster/metrics.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/report.hpp"
#include "obs/chrome_export.hpp"
#include "obs/trace_io.hpp"

namespace thermctl::bench {

/// Directory experiment CSVs land in (created on demand).
inline std::string out_dir() {
  const std::string dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Prints a PASS/WARN shape check (the bench's contract with the paper).
inline bool shape_check(const std::string& what, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "WARN", what.c_str());
  return ok;
}

/// Downsamples a recorded series for console display: every `stride`-th
/// sample as one table row.
inline void print_series(const std::string& label, const std::vector<double>& times,
                         const std::vector<std::pair<std::string, const std::vector<double>*>>&
                             series,
                         std::size_t stride) {
  std::vector<std::string> headers{"t(s)"};
  for (const auto& [name, _] : series) {
    headers.push_back(name);
  }
  TextTable table{headers};
  for (std::size_t i = 0; i < times.size(); i += stride) {
    std::vector<double> row;
    for (const auto& [_, values] : series) {
      row.push_back(i < values->size() ? (*values)[i] : 0.0);
    }
    char label_buf[32];
    std::snprintf(label_buf, sizeof label_buf, "%.0f", times[i]);
    table.add_row(label_buf, row, 1);
  }
  std::printf("%s\n%s", label.c_str(), table.render().c_str());
}

/// Writes one field of a run to bench_out/<name>.csv and says so.
inline void dump_csv(const cluster::RunResult& run, const std::string& name,
                     const std::string& field) {
  const std::string path = out_dir() + "/" + name + ".csv";
  run.write_csv(path, field);
  std::printf("  series written: %s\n", path.c_str());
}

/// Exports a traced run's telemetry bundle under bench_out/: the binary
/// .thermtrace (for bench/trace_analyze), the Chrome trace_event JSON (load
/// in Perfetto / chrome://tracing), and the machine-readable run summary.
inline void export_telemetry(const core::ExperimentResult& result, const std::string& name) {
  const std::string base = out_dir() + "/" + name;
  if (result.trace != nullptr) {
    obs::write_trace_file(base + ".thermtrace", *result.trace);
    obs::write_chrome_trace(base + ".trace.json", *result.trace);
    std::printf("  trace written: %s (+.trace.json; %llu events, %llu dropped)\n",
                (base + ".thermtrace").c_str(),
                static_cast<unsigned long long>(result.trace->total_emitted()),
                static_cast<unsigned long long>(result.trace->total_dropped()));
  }
  core::write_run_summary_json(base + ".summary.json", name, result);
  std::printf("  run summary written: %s\n", (base + ".summary.json").c_str());
}

}  // namespace thermctl::bench
