// Rack power budgeting through the hierarchical control plane.
//
// The paper's out-of-band story stops at one node's fan; the control plane
// extends it up a tier: a rack coordinator aggregates member telemetry once
// a second and deals a shared wall-power budget down as per-node p-state
// caps (ISSUE 7 / ControlPULP's supervisor-worker shape). This bench runs
// the same 8-node cpu-burn rack twice — plane detached, then plane active
// under a budget set well below the uncapped draw — and shows the aggregate
// wall-power series before/after plus the budget line. Mid-run the budget
// is released (watts <= 0) to show the rack climbing back to full draw.
#include <algorithm>
#include <numeric>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"

namespace {

using namespace thermctl;
using namespace thermctl::core;

constexpr std::size_t kNodes = 8;
constexpr double kHorizonS = 120.0;
constexpr double kReleaseAtS = 80.0;

ExperimentConfig base_config() {
  ExperimentConfig cfg = paper_platform();
  cfg.name = "rack-budget";
  cfg.nodes = kNodes;
  cfg.workload = WorkloadKind::kCpuBurn;
  cfg.cpu_burn_duration = Seconds{kHorizonS};
  cfg.engine.horizon = Seconds{kHorizonS};
  cfg.fan = FanPolicyKind::kDynamic;
  return cfg;
}

/// Sum of the per-node wall-power series at each recorded sample.
std::vector<double> aggregate_power(const cluster::RunResult& run) {
  std::vector<double> total(run.times.size(), 0.0);
  for (const cluster::NodeSeries& series : run.nodes) {
    for (std::size_t i = 0; i < total.size() && i < series.power_w.size(); ++i) {
      total[i] += series.power_w[i];
    }
  }
  return total;
}

/// Mean of `series` over [t0, t1).
double window_mean(const std::vector<double>& times, const std::vector<double>& series,
                   double t0, double t1) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < times.size() && i < series.size(); ++i) {
    if (times[i] >= t0 && times[i] < t1) {
      sum += series[i];
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

int main() {
  namespace tb = thermctl::bench;
  tb::banner("Control plane", "rack coordinator enforcing a shared power budget (8-node burn)");

  // Before: no plane. The burn settles the rack at its natural draw.
  const ExperimentResult uncapped = run_experiment(base_config());
  const std::vector<double> before = aggregate_power(uncapped.run);
  // Budget against the steady window (past the thermal/fan ramp, before any
  // release): 70% of the uncapped draw, guaranteed binding.
  const double steady_w =
      window_mean(uncapped.run.times, before, 30.0, kReleaseAtS);
  const double budget_w = 0.7 * steady_w;

  // After: plane active with the shared budget; one rack holds all 8 nodes.
  // An engine periodic releases the budget late in the run (a PowerBudget of
  // 0 from the room coordinator's endpoint means "uncapped") so the series
  // also shows the rack recovering its full draw.
  ExperimentConfig capped_cfg = base_config();
  capped_cfg.control_plane.enabled = true;
  capped_cfg.control_plane.plane.rack_budget_w = budget_w;
  capped_cfg.on_rig_built = [](const RigView& view) {
    cluster::ctrl::ControlPlane* plane = view.plane;
    view.engine->add_periodic(Seconds{1.0}, [plane](SimTime now) {
      if (now.seconds() >= kReleaseAtS && now.seconds() < kReleaseAtS + 1.0) {
        cluster::ctrl::Message release = cluster::ctrl::make_power_budget(0.0);
        release.from = kNodes + 1;  // room endpoint (one rack: nodes + 1)
        release.to = kNodes;        // the rack coordinator
        plane->transport().send(release);
      }
    });
  };
  const ExperimentResult capped = run_experiment(capped_cfg);
  const std::vector<double> after = aggregate_power(capped.run);

  const double capped_steady_w =
      window_mean(capped.run.times, after, 30.0, kReleaseAtS);
  const double released_w =
      window_mean(capped.run.times, after, kReleaseAtS + 20.0, kHorizonS);

  TextTable table{{"window", "uncapped (W)", "plane-capped (W)", "budget (W)"}};
  table.add_row("steady [30s, 80s)", {steady_w, capped_steady_w, budget_w}, 1);
  table.add_row("post-release [100s, 120s)",
                {window_mean(uncapped.run.times, before, kReleaseAtS + 20.0, kHorizonS),
                 released_w, 0.0},
                1);
  std::printf("%s", table.render().c_str());

  const cluster::ctrl::PlaneStats& stats = capped.plane_stats;
  std::printf("  plane: %llu rounds, %llu caps lowered / %llu raised / %llu released, "
              "%llu over-budget rounds\n",
              static_cast<unsigned long long>(stats.rounds),
              static_cast<unsigned long long>(stats.caps_lowered),
              static_cast<unsigned long long>(stats.caps_raised),
              static_cast<unsigned long long>(stats.caps_released),
              static_cast<unsigned long long>(stats.rack_over_budget_rounds));

  // Full-resolution before/after series for replotting.
  CsvWriter csv{tb::out_dir() + "/rack_budget.csv",
                {"t_s", "uncapped_rack_w", "capped_rack_w", "budget_w"}};
  for (std::size_t i = 0; i < capped.run.times.size(); ++i) {
    const double t = capped.run.times[i];
    csv.row({t, i < before.size() ? before[i] : 0.0, after[i],
             t < kReleaseAtS ? budget_w : 0.0});
  }
  std::printf("  series written: %s (%zu rows)\n", csv.path().c_str(), csv.rows_written());

  // Unlike the figure benches, these checks are the acceptance criterion for
  // the plane ("a rack under a shared budget demonstrably caps aggregate
  // power"), so failing any of them fails the binary — ctest runs this as
  // bench_rack_budget_smoke.
  bool ok = true;
  ok &= tb::shape_check("budget is binding (uncapped steady draw exceeds it by >= 20%)",
                        steady_w > budget_w * 1.2);
  ok &= tb::shape_check("plane holds the rack at or under budget (steady window, 5% slack)",
                        capped_steady_w <= budget_w * 1.05);
  ok &= tb::shape_check("caps were actually stepped down", stats.caps_lowered > 0);
  ok &= tb::shape_check("budget release restores the rack toward full draw",
                        released_w > capped_steady_w * 1.1);
  return ok ? 0 : 1;
}
