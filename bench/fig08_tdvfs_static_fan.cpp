// Figure 8: tDVFS coupled with traditional static fan control, NPB LU on
// 4 nodes, trigger threshold 51 degC, maximum fan duty 25%.
//
// Paper findings to reproduce in shape:
//   * tDVFS scales down (2.4 -> 2.2 GHz) only when the average temperature
//     is consistently above threshold;
//   * it scales back up to the original frequency once consistently below;
//   * it does not respond to short-term thermal behaviour (the red circle).
#include "bench_util.hpp"
#include "core/experiment.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Figure 8", "tDVFS + traditional static fan (LU.B.4, threshold 51 degC, cap 25%)");

  ExperimentConfig cfg = paper_platform();
  cfg.name = "fig08";
  cfg.workload = WorkloadKind::kNpbLu;
  cfg.fan = FanPolicyKind::kStaticCurve;
  cfg.dvfs = DvfsPolicyKind::kTdvfs;
  cfg.pp = PolicyParam{50};
  cfg.max_duty = DutyCycle{25.0};
  // Keep recording past job completion so the cool-down (and tDVFS's
  // restore-to-original, Fig. 8's right half) is part of the figure.
  cfg.engine.cooldown = Seconds{60.0};
  const ExperimentResult r = run_experiment(cfg);

  tb::print_series("node 0 temperature / frequency (downsampled):", r.run.times,
                   {{"temp(degC)", &r.run.nodes[0].sensor_temp},
                    {"freq(GHz)", &r.run.nodes[0].freq_ghz}},
                   80);
  tb::dump_csv(r.run, "fig08_temp", "sensor_temp");
  tb::dump_csv(r.run, "fig08_freq", "freq_ghz");

  std::printf("  tDVFS events (node 0):\n");
  for (const TdvfsEvent& e : r.tdvfs_events[0]) {
    std::printf("    t=%7.1fs  %.1f GHz -> %.1f GHz\n", e.time_s, e.from_ghz, e.to_ghz);
  }

  bool scaled_down = false;
  bool scaled_back = false;
  for (const TdvfsEvent& e : r.tdvfs_events[0]) {
    if (e.to_ghz < e.from_ghz) {
      scaled_down = true;
    }
    if (scaled_down && e.to_ghz > e.from_ghz) {
      scaled_back = true;
    }
  }
  tb::note("paper reference: one down-scale 2.4->2.2 GHz once consistently above 51 degC,\n"
           "one restore 2.2->2.4 GHz once consistently below; no response to transients");

  tb::shape_check("tDVFS scaled down under the weak (25%) fan", scaled_down);
  tb::shape_check("tDVFS restored the original frequency when cool", scaled_back);
  tb::shape_check("transitions stay rare (a handful per run)",
                  r.run.summaries[0].freq_transitions <= 10);
  tb::shape_check("temperature held near the threshold (max < 58 degC)",
                  r.run.max_die_temp() < 58.0);
  tb::shape_check("job completed", r.run.app_completed);
  std::printf("  execution time: %.1f s\n", r.run.exec_time_s);
  return 0;
}
