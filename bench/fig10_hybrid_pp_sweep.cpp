// Figure 10: hybrid (unified) fan + tDVFS control with one shared Pp in
// {25, 50, 75}, NPB BT.B on 4 nodes, fan capped at 50%, threshold 51 degC.
//
// Paper findings to reproduce in shape:
//   * smaller Pp controls temperature more effectively;
//   * the smaller Pp is, the LATER tDVFS is triggered (aggressive fan
//     control defers the in-band response);
//   * smaller Pp costs more execution time, but the Pp=25 vs Pp=75 gap is
//     small (paper: 4.76%).
#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "runtime/sweep.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Figure 10", "hybrid fan + tDVFS, shared Pp in {25, 50, 75} (BT.B.4, cap 50%)");

  // Three independent shared-Pp points, fanned across cores.
  const std::vector<int> pps{25, 50, 75};
  std::vector<ExperimentConfig> configs;
  for (int pp : pps) {
    ExperimentConfig cfg = paper_platform();
    cfg.name = "fig10_pp" + std::to_string(pp);
    cfg.workload = WorkloadKind::kNpbBt;
    cfg.fan = FanPolicyKind::kDynamic;
    cfg.dvfs = DvfsPolicyKind::kTdvfs;
    cfg.pp = PolicyParam{pp};
    cfg.max_duty = DutyCycle{50.0};
    // Full telemetry: the Fig. 10 story is exactly the trigger causality the
    // decision trace records (which Pp trips tDVFS, when, and off which Δt).
    cfg.telemetry.trace = true;
    cfg.telemetry.metrics = true;
    configs.push_back(cfg);
  }
  const std::vector<ExperimentResult> results = runtime::run_sweep(configs);

  struct Row {
    int pp;
    double avg_temp;
    double max_temp;
    double trigger_s;
    double exec_time;
    double min_freq;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    double min_freq = 2.4;
    for (const auto& node : r.run.nodes) {
      for (double f : node.freq_ghz) {
        min_freq = std::min(min_freq, f);
      }
    }
    rows.push_back(Row{pps[i], r.run.avg_die_temp(), r.run.max_die_temp(),
                       r.first_dvfs_trigger_s, r.run.exec_time_s, min_freq});
    tb::dump_csv(r.run, configs[i].name + "_temp", "sensor_temp");
    tb::dump_csv(r.run, configs[i].name + "_freq", "freq_ghz");
    tb::export_telemetry(r, configs[i].name);
  }

  TextTable table{{"policy", "avg temp (degC)", "max temp", "tDVFS trigger (s)",
                   "exec time (s)", "lowest freq (GHz)"}};
  for (const Row& row : rows) {
    table.add_row("Pp=" + std::to_string(row.pp),
                  {row.avg_temp, row.max_temp, row.trigger_s, row.exec_time, row.min_freq}, 2);
  }
  std::printf("%s", table.render().c_str());
  tb::note("paper reference: smaller Pp -> lower temperature, later tDVFS trigger,\n"
           "deeper frequency drop, slightly longer run; Pp=25 vs Pp=75 performance\n"
           "difference only 4.76%");

  tb::shape_check("temperature ordering Pp=25 <= Pp=50 <= Pp=75",
                  rows[0].avg_temp <= rows[1].avg_temp + 0.3 &&
                      rows[1].avg_temp <= rows[2].avg_temp + 0.3);
  const bool t25 = rows[0].trigger_s > 0.0;
  const bool t75 = rows[2].trigger_s > 0.0;
  tb::shape_check("weak policy (Pp=75) triggers tDVFS", t75);
  tb::shape_check("aggressive fan defers the tDVFS trigger (Pp=25 later or never)",
                  !t25 || rows[0].trigger_s >= rows[2].trigger_s);
  const double perf_gap =
      (rows[0].exec_time - rows[2].exec_time) / rows[2].exec_time * 100.0;
  std::printf("  Pp=25 vs Pp=75 execution-time difference: %.2f%%\n", perf_gap);
  tb::shape_check("performance gap between Pp=25 and Pp=75 stays below ~8%",
                  std::abs(perf_gap) < 8.0);
  return 0;
}
