// Ablation: the level-two (gradual) fallback of §3.2.2.
//
// The paper's selector consults Δt_L2 only when Δt_L1 produces no index
// change. This bench disables that fallback and shows that a slow drift
// (below the L1 detection floor) then goes completely uncontrolled, while
// the full algorithm tracks it.
#include "bench_util.hpp"
#include "core/mode_selector.hpp"
#include "core/two_level_window.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Ablation", "level-two fallback on/off under a slow drift");

  // Drift slow enough that each round's Δt_L1 stays below one index cell:
  // c = 2.25/degC, so Δt_L1 < 0.44 degC per round. 0.3 degC/round = 0.075
  // degC/sample.
  auto run_drift = [](bool use_fallback) {
    WindowConfig wc;
    TwoLevelWindow window{wc};
    ModeSelector selector{ModeSelectorConfig{}, 100};
    std::size_t index = 10;
    double temp = 45.0;
    int moves = 0;
    for (int i = 0; i < 1200; ++i) {  // 5 min at 4 Hz
      temp += 0.075;
      if (auto round = window.add_sample(Celsius{temp})) {
        if (!use_fallback) {
          round->level2_valid = false;  // ablate the gradual path
        }
        const ModeDecision d = selector.decide(index, *round);
        if (d.changed) {
          index = d.target;
          ++moves;
        }
      }
    }
    return std::pair<std::size_t, int>{index, moves};
  };

  const auto [idx_with, moves_with] = run_drift(true);
  const auto [idx_without, moves_without] = run_drift(false);

  TextTable table{{"variant", "final index", "index moves"}};
  table.add_row("full algorithm (L1 + L2 fallback)",
                {static_cast<double>(idx_with), static_cast<double>(moves_with)}, 0);
  table.add_row("L1 only (fallback ablated)",
                {static_cast<double>(idx_without), static_cast<double>(moves_without)}, 0);
  std::printf("%s", table.render().c_str());
  tb::note("a 0.3 degC/round drift is invisible to the sudden detector; only the\n"
           "level-two FIFO accumulates it across rounds (the Fig. 5 red circles)");

  tb::shape_check("full algorithm tracks the drift (index rose)", idx_with > 10 + 20);
  tb::shape_check("ablated variant never moves", idx_without == 10 && moves_without == 0);
  return 0;
}
