// Datacenter feedback: the rack heats its own inlet air.
//
// The paper's introduction blames hot spots on "room air circulation [that]
// is not effective"; the related data-center work (Moore's Weatherman,
// Mukherjee, Ramos) manages exactly this loop. Here the RoomModel closes it:
// every watt the rack dissipates recirculates into the cold aisle, raising
// every node's inlet — so aggressive fans don't just cool their own node,
// they also pay back as room heat. The bench runs an 8-node BT job three
// ways: no feedback (fixed inlets), feedback uncontrolled, and feedback with
// per-node unified control.
#include <memory>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/unified_controller.hpp"
#include "workload/app.hpp"
#include "workload/npb.hpp"

namespace {

using namespace thermctl;
using namespace thermctl::core;

constexpr std::size_t kNodes = 8;

struct Outcome {
  double max_die;
  double avg_die;
  double final_inlet;
  double exec_s;
  int prochot;
};

Outcome run_case(bool with_room, bool with_control) {
  cluster::NodeParams params;
  cluster::Cluster rack{kNodes, params};
  for (std::size_t i = 0; i < kNodes; ++i) {
    rack.node(i).set_utilization(Utilization{0.02});
  }
  rack.settle_all();

  cluster::RoomParams room_params;
  room_params.crac_supply = Celsius{27.0};
  room_params.recirculation_k_per_w = 0.012;  // poorly contained aisles
  room_params.tau = Seconds{90.0};
  cluster::RoomModel room{kNodes, room_params};
  room.settle(rack.total_power());

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{400.0};
  cluster::Engine engine{rack, engine_cfg};
  if (with_room) {
    engine.attach_room(room);
  }

  Rng rng{909};
  workload::NpbParams npb = workload::bt_class_b();
  npb.iterations = 150;
  workload::ParallelApp app{"BT",
                            workload::make_npb_programs(npb, static_cast<int>(kNodes), rng)};
  std::vector<std::size_t> mapping(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    mapping[i] = i;
  }
  engine.attach_app(app, mapping);

  std::vector<std::unique_ptr<UnifiedController>> controllers;
  if (with_control) {
    for (std::size_t i = 0; i < kNodes; ++i) {
      UnifiedConfig cfg;
      cfg.pp = PolicyParam{40};
      cfg.tdvfs.threshold = Celsius{55.0};
      controllers.push_back(std::make_unique<UnifiedController>(
          rack.node(i).hwmon(), rack.node(i).cpufreq(), cfg));
      UnifiedController* raw = controllers.back().get();
      engine.add_periodic(params.sample_period, [raw](SimTime now) { raw->on_sample(now); });
    }
  }

  const cluster::RunResult run = engine.run();
  int prochot = 0;
  for (const auto& s : run.summaries) {
    prochot += s.prochot_events;
  }
  return Outcome{run.max_die_temp(), run.avg_die_temp(),
                 with_room ? room.inlet(0).value() : 29.5, run.exec_time_s, prochot};
}

}  // namespace

int main() {
  namespace tb = thermctl::bench;
  tb::banner("Datacenter", "rack self-heating feedback (8-node BT, leaky aisles)");

  const Outcome fixed = run_case(false, false);
  const Outcome feedback = run_case(true, false);
  const Outcome controlled = run_case(true, true);

  TextTable table{{"case", "max die (degC)", "avg die", "final inlet", "exec (s)", "PROCHOT"}};
  table.add_row("fixed inlets (no feedback)",
                {fixed.max_die, fixed.avg_die, fixed.final_inlet, fixed.exec_s,
                 static_cast<double>(fixed.prochot)},
                1);
  table.add_row("room feedback, uncontrolled",
                {feedback.max_die, feedback.avg_die, feedback.final_inlet, feedback.exec_s,
                 static_cast<double>(feedback.prochot)},
                1);
  table.add_row("room feedback + unified control",
                {controlled.max_die, controlled.avg_die, controlled.final_inlet,
                 controlled.exec_s, static_cast<double>(controlled.prochot)},
                1);
  std::printf("%s", table.render().c_str());
  tb::note("recirculation turns rack power into everyone's ambient: the uncontrolled\n"
           "rack runs several degrees hotter than fixed-inlet physics predicts;\n"
           "coordinated control claws most of it back (fan power is part of the\n"
           "recirculated heat, so the controller faces diminishing returns)");

  tb::shape_check("feedback raises the final inlet above the CRAC supply",
                  feedback.final_inlet > 28.0);
  tb::shape_check("feedback makes the uncontrolled rack hotter than fixed inlets",
                  feedback.avg_die > fixed.avg_die + 1.0);
  tb::shape_check("unified control recovers most of the feedback penalty",
                  controlled.avg_die < feedback.avg_die - 1.0);
  tb::shape_check("control contains the peak below PROCHOT territory",
                  controlled.max_die < 70.0 && controlled.prochot == 0);
  return 0;
}
