// Ablation: level-one window size (§3.2.1's design discussion).
//
// Paper: "If the window size is too small, then the controller will react to
// jitter as if it were a 'sudden' sustained behavior. If the window size is
// too large, then the controller will not promptly respond to sudden
// sustained behaviors. We experimented with various window sizes and found a
// 4-entry window was sufficiently large."
//
// The bench quantifies both failure modes: spurious retargets under pure
// sensor jitter (too small) and response latency to a genuine load step
// (too large).
#include <cmath>

#include "bench_util.hpp"
#include "core/fan_policy.hpp"
#include "core/two_level_window.hpp"
#include "common/rng.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Ablation", "level-one window size: jitter rejection vs response latency");

  struct Row {
    std::size_t size;
    int jitter_moves;     // index moves under pure quantization jitter
    double latency_s;     // rounds-to-first-move on a 0.8 degC/s step
  };
  std::vector<Row> rows;

  for (std::size_t size : {2u, 4u, 8u, 16u}) {
    WindowConfig wc;
    wc.level1_size = size;
    ModeSelector selector{ModeSelectorConfig{}, 100};

    // Jitter scenario: quantized sensor readings of a flat 50 degC signal.
    Rng rng{99};
    TwoLevelWindow jitter_window{wc};
    int jitter_moves = 0;
    std::size_t index = 20;
    for (int i = 0; i < 2400; ++i) {  // 10 min at 4 Hz
      const double reading =
          50.0 + std::round(rng.normal(0.0, 0.18) / 0.25) * 0.25;
      if (auto round = jitter_window.add_sample(Celsius{reading})) {
        const ModeDecision d = selector.decide(index, *round);
        if (d.changed) {
          ++jitter_moves;
          index = d.target;
        }
      }
    }

    // Step scenario: +0.8 degC/s sustained rise; latency to first move.
    TwoLevelWindow step_window{wc};
    double t = 45.0;
    double latency_s = -1.0;
    std::size_t idx2 = 20;
    for (int i = 0; i < 400; ++i) {
      t += 0.8 * 0.25;
      if (auto round = step_window.add_sample(Celsius{t})) {
        const ModeDecision d = selector.decide(idx2, *round);
        if (d.changed) {
          latency_s = (i + 1) * 0.25;
          break;
        }
      }
    }
    rows.push_back(Row{size, jitter_moves, latency_s});
  }

  TextTable table{{"L1 size", "spurious moves (10 min jitter)", "step response latency (s)"}};
  for (const Row& row : rows) {
    table.add_row(std::to_string(row.size),
                  {static_cast<double>(row.jitter_moves), row.latency_s}, 2);
  }
  std::printf("%s", table.render().c_str());
  tb::note("paper reference: 4 entries balances jitter rejection against prompt\n"
           "response to sudden sustained change");

  tb::shape_check("size 2 reacts to jitter more than size 4",
                  rows[0].jitter_moves > rows[1].jitter_moves);
  tb::shape_check("size 16 responds slower to a step than size 4",
                  rows[3].latency_s > rows[1].latency_s);
  tb::shape_check("size 4 responds within ~2 s", rows[1].latency_s <= 2.0);
  return 0;
}
