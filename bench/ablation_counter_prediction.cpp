// Ablation: hardware-counter-augmented prediction (§5 future work).
//
// Scenario: a node idles, then a full-power job lands (Type I "sudden").
// The history-only controller cannot move until the die has measurably
// warmed; the counter-augmented controller sees the RAPL power step on the
// same round and spins the fan up ahead of the heat. Measured: reaction
// latency from the load step to the first fan retarget, and the resulting
// peak die temperature over the transient.
#include <memory>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "core/fan_policy.hpp"
#include "core/predictive_fan.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace thermctl;
using namespace thermctl::core;

struct Outcome {
  double reaction_s;    // load step -> first retarget
  double first_move;    // duty commanded by that first retarget
  double duty_at_3s;    // duty reached 3 s after the step
  double peak_temp;
  double avg_duty;
};

constexpr double kStepAt = 30.0;

template <typename Controller>
Outcome run_with(Controller& ctl, cluster::Cluster& rack, cluster::Engine& engine,
                 const workload::SegmentLoad& load) {
  engine.set_node_load(0, &load);
  engine.add_periodic(Seconds{0.25}, [&ctl](SimTime now) { ctl.on_sample(now); });
  const cluster::RunResult run = engine.run();
  (void)rack;

  Outcome o{};
  o.reaction_s = -1.0;
  for (const FanEvent& e : ctl.events()) {
    if (e.time_s >= kStepAt && e.to_duty > e.from_duty) {
      if (o.reaction_s < 0.0) {
        o.reaction_s = e.time_s - kStepAt;
        o.first_move = e.to_duty;
      }
      if (e.time_s <= kStepAt + 3.0) {
        o.duty_at_3s = e.to_duty;  // last retarget within 3 s of the step
      }
    }
  }
  o.peak_temp = run.max_die_temp();
  o.avg_duty = run.summaries[0].avg_duty;
  return o;
}

Outcome run_variant(bool predictive) {
  cluster::NodeParams params;
  params.sensor.noise_sigma_degc = 0.0;
  cluster::Cluster rack{1, params};
  rack.node(0).set_utilization(Utilization{0.05});
  rack.node(0).settle();

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{150.0};
  cluster::Engine engine{rack, engine_cfg};
  const auto load = workload::sudden_profile(Seconds{kStepAt}, Seconds{90.0});

  if (predictive) {
    PredictiveFanConfig cfg;
    cfg.base.pp = PolicyParam{50};
    auto ctl = std::make_unique<PredictiveFanController>(rack.node(0).hwmon(),
                                                         rack.node(0).rapl(), cfg);
    return run_with(*ctl, rack, engine, load);
  }
  FanControlConfig cfg;
  cfg.pp = PolicyParam{50};
  auto ctl = std::make_unique<DynamicFanController>(rack.node(0).hwmon(), cfg);
  return run_with(*ctl, rack, engine, load);
}

}  // namespace

int main() {
  namespace tb = thermctl::bench;
  tb::banner("Ablation", "counter-augmented prediction vs history-only window (load step)");

  const Outcome history = run_variant(false);
  const Outcome counter = run_variant(true);

  TextTable table{{"controller", "reaction (s)", "first move (duty %)", "duty 3 s in (%)",
                   "peak die (degC)", "avg duty (%)"}};
  table.add_row("history-only (paper baseline)",
                {history.reaction_s, history.first_move, history.duty_at_3s,
                 history.peak_temp, history.avg_duty},
                2);
  table.add_row("counter-augmented (future work)",
                {counter.reaction_s, counter.first_move, counter.duty_at_3s,
                 counter.peak_temp, counter.avg_duty},
                2);
  std::printf("%s", table.render().c_str());
  tb::note("the die's own fast RC makes both variants notice the step within one\n"
           "round — but the RAPL feed-forward knows the step's full magnitude\n"
           "immediately, so it commands a far stronger response up front\n"
           "(§5: 'integration of hardware counter and data')");

  tb::shape_check("both controllers react within ~2 rounds",
                  history.reaction_s > 0.0 && history.reaction_s <= 2.0 &&
                      counter.reaction_s > 0.0 && counter.reaction_s <= 2.0);
  tb::shape_check("counter-augmented first move is at least 1.5x stronger",
                  counter.first_move >= history.first_move * 1.5);
  tb::shape_check("counter-augmented is further up the curve 3 s after the step",
                  counter.duty_at_3s > history.duty_at_3s + 5.0);
  tb::shape_check("stronger early response lowers or matches the transient peak",
                  counter.peak_temp <= history.peak_temp + 0.1);
  return 0;
}
