// Scaling study: OS noise from the in-band control daemon (§5 future work:
// "explore the effects of our techniques on OS noise and jitter in scalable
// systems").
//
// The controller itself runs in-band: every 4 Hz tick steals a slice of CPU
// from the application. On one node that slice is trivially small; on a
// bulk-synchronous job it is amplified — any node's delay holds everyone at
// the barrier. This bench sweeps the per-tick overhead and the cluster
// size, measuring job slowdown vs a noise-free run.
//
// (The *measured* cost of a real tick — window update + sysfs + i2c — is a
// few microseconds; see micro_benchmarks. The sweep covers that point and
// pessimistic daemons several orders of magnitude heavier.)
#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "workload/app.hpp"
#include "workload/npb.hpp"

namespace {

using namespace thermctl;

double run_bt(std::size_t nodes, double per_tick_us) {
  cluster::NodeParams params;
  params.sensor.noise_sigma_degc = 0.0;
  cluster::Cluster rack{nodes, params};
  for (std::size_t i = 0; i < nodes; ++i) {
    rack.node(i).set_utilization(Utilization{0.02});
  }
  rack.settle_all();

  cluster::EngineConfig engine_cfg;
  engine_cfg.horizon = Seconds{400.0};
  cluster::Engine engine{rack, engine_cfg};

  Rng rng{777};
  workload::NpbParams npb = workload::bt_class_b();
  npb.iterations = 100;
  workload::ParallelApp app{"BT", workload::make_npb_programs(npb, static_cast<int>(nodes), rng)};
  std::vector<std::size_t> mapping(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    mapping[i] = i;
  }
  engine.attach_app(app, mapping);

  for (std::size_t i = 0; i < nodes; ++i) {
    engine.set_inband_overhead(i, Seconds{per_tick_us * 1e-6}, Seconds{0.25});
  }
  return engine.run().exec_time_s;
}

}  // namespace

int main() {
  namespace tb = thermctl::bench;
  tb::banner("Scaling", "in-band controller overhead (OS noise) vs job slowdown");

  const std::size_t sizes[] = {4, 16};
  const double overheads_us[] = {0.0, 10.0, 1000.0, 10000.0};

  TextTable table{{"per-tick overhead", "4 nodes: exec (s)", "slowdown",
                   "16 nodes: exec (s)", "slowdown"}};
  double base4 = 0.0;
  double base16 = 0.0;
  double worst4 = 0.0;
  double worst16 = 0.0;
  for (double us : overheads_us) {
    const double t4 = run_bt(sizes[0], us);
    const double t16 = run_bt(sizes[1], us);
    if (us == 0.0) {
      base4 = t4;
      base16 = t16;
    }
    worst4 = (t4 - base4) / base4 * 100.0;
    worst16 = (t16 - base16) / base16 * 100.0;
    char label[32];
    std::snprintf(label, sizeof label, "%.0f us", us);
    table.add_row(label, {t4, worst4, t16, worst16}, 2);
  }
  std::printf("%s", table.render().c_str());
  tb::note("a real controller tick costs ~microseconds (see micro_benchmarks): its\n"
           "noise is invisible; the sweep shows where a heavyweight daemon would\n"
           "start to hurt, and that barriers amplify noise with scale");

  tb::shape_check("microsecond-scale ticks cost < 0.5% at any scale",
                  run_bt(4, 10.0) < base4 * 1.005);
  tb::shape_check("10 ms ticks (4% steal) visibly slow the job", worst4 > 2.0);
  tb::shape_check("noise hurts at least as much at 16 nodes as at 4",
                  worst16 >= worst4 - 0.5);
  return 0;
}
