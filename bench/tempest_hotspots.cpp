// Tempest-style hot-spot identification on the paper's workloads
// (reference [28] — the authors' own characterization tool).
//
// Runs BT and LU with a fixed fan and attributes every degree of heating to
// the program activity that produced it. This regenerates the *premise* of
// §3.1: compute slabs are Type I/II heat sources, exchanges and barrier
// waits are where the die cools — which is why a controller that can tell
// sustained trends from bursty jitter wins.
#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/tempest.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Tempest", "heat attribution by program activity (BT and LU, fixed fan)");

  for (const auto& [name, kind] :
       {std::pair{"BT.B.4", WorkloadKind::kNpbBt}, std::pair{"LU.B.4", WorkloadKind::kNpbLu}}) {
    ExperimentConfig cfg = paper_platform();
    cfg.workload = kind;
    cfg.npb_iterations_override = 80;
    cfg.fan = FanPolicyKind::kConstantDuty;
    cfg.constant_duty = DutyCycle{40.0};
    const ExperimentResult result = run_experiment(cfg);

    std::printf("\n%s, node 0:\n", name);
    const TempestReport report = attribute_heat(result.run.nodes[0], 0.25);
    std::printf("%s", render_tempest(report).c_str());

    const auto& compute =
        report.by_activity[static_cast<std::size_t>(cluster::ActivityCode::kCompute)];
    const auto& comm =
        report.by_activity[static_cast<std::size_t>(cluster::ActivityCode::kCommunicate)];
    tb::shape_check("compute is the hot spot",
                    report.hottest == cluster::ActivityCode::kCompute);
    tb::shape_check("compute heats more than it cools", compute.heating_c > compute.cooling_c);
    if (kind == WorkloadKind::kNpbBt) {
      // BT's exchanges (150 ms + stragglers) are resolvable at the 4 Hz
      // sampling grid; LU's 50 ms wavefront exchanges are not — a sampling
      // profiler smears them into the surrounding compute, the same
      // granularity limit the real Tempest documented.
      tb::shape_check("exchanges cool more than they heat", comm.cooling_c > comm.heating_c);
    } else {
      tb::shape_check("sub-sample exchanges at least heat no faster than compute",
                      comm.heating_c / std::max(comm.time_s, 1e-9) <=
                          compute.heating_c / std::max(compute.time_s, 1e-9) + 0.05);
    }
  }

  tb::note("\nthe asymmetry above is §3.1's taxonomy in numbers: sustained compute\n"
           "produces the Type I/II trends worth reacting to, while exchange phases\n"
           "produce the dips-and-recoveries that must not trigger the controller");
  return 0;
}
