// Fault campaign: seeded schedules of stuck sensors and i2c bus faults over
// the cpu-burn workload, with the fault-aware controller stack engaged.
//
// Not a paper figure — this is the hardening study for the fail-safe path:
//   * confirmed sensor failures must push the fan to its most effective mode
//     and hold tDVFS instead of chasing a frozen reading,
//   * no node may approach the 90 degC emergency (THERMTRIP) temperature,
//   * control must restore through the consistency-count machinery after the
//     fault clears,
//   * every fault event is accounted in the run metrics.
#include <algorithm>
#include <cstdint>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "runtime/sweep.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Fault campaign", "fail-safe degradation under seeded sensor/i2c faults");

  ExperimentConfig base = paper_platform();
  base.nodes = 4;
  base.workload = WorkloadKind::kCpuBurn;
  base.cpu_burn_duration = Seconds{120.0};
  base.engine.horizon = Seconds{180.0};
  base.fan = FanPolicyKind::kDynamic;
  base.dvfs = DvfsPolicyKind::kTdvfs;
  base.pp = PolicyParam::aggressive();
  base.fault_aware = true;
  base.faults.enabled = true;
  base.faults.episodes_per_node = 3;
  base.faults.start_after = Seconds{20.0};
  base.faults.min_duration = Seconds{10.0};
  base.faults.max_duration = Seconds{30.0};
  // Decision tracing: the degradation story (classify -> fail-safe ->
  // recover, i2c retries under bus faults) is exactly what the trace records.
  base.telemetry.trace = true;
  base.telemetry.metrics = true;

  // Three seeded campaigns plus a zero-fault control run of the same stack.
  const std::vector<std::uint64_t> seeds{7, 11, 13};
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed : seeds) {
    ExperimentConfig cfg = base;
    cfg.name = "fault_campaign_seed" + std::to_string(seed);
    cfg.faults.seed = seed;
    configs.push_back(cfg);
  }
  ExperimentConfig clean = base;
  clean.name = "fault_campaign_clean";
  clean.faults.enabled = false;
  configs.push_back(clean);

  const std::vector<ExperimentResult> results = runtime::run_sweep(configs);

  TextTable table{{"campaign", "episodes", "sensor fail/rec", "fail-safe in/out",
                   "dvfs holds", "i2c retries", "i2c exhausted", "max temp (degC)"}};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    std::size_t episodes = 0;
    for (const auto& schedule : r.fault_schedules) {
      episodes += schedule.size();
    }
    const ControllerFaultStats& fs = r.fault_stats;
    table.add_row(configs[i].name,
                  {static_cast<double>(episodes),
                   static_cast<double>(fs.sensor_failures + fs.sensor_recoveries),
                   static_cast<double>(fs.failsafe_entries + fs.failsafe_exits),
                   static_cast<double>(fs.dvfs_hold_entries),
                   static_cast<double>(r.run.total_i2c_retries()),
                   static_cast<double>(r.run.total_i2c_exhausted()),
                   r.run.max_die_temp()},
                  1);
    tb::dump_csv(r.run, configs[i].name + "_temp", "sensor_temp");
    tb::dump_csv(r.run, configs[i].name + "_duty", "duty");
    tb::export_telemetry(r, configs[i].name);
  }
  std::printf("%s", table.render().c_str());
  tb::note("fail-safe contract: confirmed sensor failure -> most effective fan mode,\n"
           "tDVFS holds its operating point; both restore after recovery");

  bool all_campaigns_engaged = true;
  bool all_campaigns_recovered = true;
  double max_temp = 0.0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const ControllerFaultStats& fs = results[i].fault_stats;
    all_campaigns_engaged = all_campaigns_engaged && fs.failsafe_entries > 0;
    all_campaigns_recovered = all_campaigns_recovered && fs.failsafe_exits > 0;
    max_temp = std::max(max_temp, results[i].run.max_die_temp());
  }
  const ExperimentResult& control = results.back();
  tb::shape_check("every seeded campaign entered fail-safe cooling", all_campaigns_engaged);
  tb::shape_check("every seeded campaign restored normal control", all_campaigns_recovered);
  tb::shape_check("no node approached the 90 degC emergency temperature",
                  max_temp < 85.0);
  tb::shape_check("zero-fault control run saw no fault machinery fire",
                  control.fault_stats.failsafe_entries == 0 &&
                      control.fault_stats.sensor_failures == 0 &&
                      control.run.total_i2c_retries() == 0);
  return 0;
}
