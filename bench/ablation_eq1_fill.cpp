// Ablation: the Eq. (1) array fill vs a naive linear fill.
//
// The thermal control array's Pp-shaped fill is the paper's policy knob: a
// plain linear index→mode map has no notion of aggressiveness. This bench
// runs the same cpu-burn under both fills and shows that Eq. (1) yields a
// policy *family* (25/50/75 land at different duty/temperature trade-offs)
// while the linear fill collapses to a single behaviour.
#include "bench_util.hpp"
#include "core/control_array.hpp"
#include "core/experiment.hpp"

int main() {
  using namespace thermctl;
  using namespace thermctl::core;
  namespace tb = thermctl::bench;

  tb::banner("Ablation", "Eq. (1) Pp-shaped fill vs naive linear fill");

  // First, the static view: how different are the arrays themselves?
  std::vector<double> duties;
  for (int d = 1; d <= 100; ++d) {
    duties.push_back(static_cast<double>(d));
  }
  TextTable array_table{{"index", "linear", "Pp=25", "Pp=50", "Pp=75"}};
  ThermalControlArray a25{duties, 100, PolicyParam{25}};
  ThermalControlArray a50{duties, 100, PolicyParam{50}};
  ThermalControlArray a75{duties, 100, PolicyParam{75}};
  for (std::size_t i = 0; i < 100; i += 10) {
    array_table.add_row(std::to_string(i + 1),
                        {static_cast<double>(i + 1), a25.mode(i), a50.mode(i), a75.mode(i)},
                        0);
  }
  std::printf("%s", array_table.render().c_str());

  // Second, the closed-loop consequence: average duty spread across Pp.
  auto avg_duty_for_pp = [](int pp) {
    ExperimentConfig cfg = paper_platform();
    cfg.nodes = 1;
    cfg.workload = WorkloadKind::kCpuBurn;
    cfg.cpu_burn_duration = Seconds{150.0};
    cfg.fan = FanPolicyKind::kDynamic;
    cfg.pp = PolicyParam{pp};
    return run_experiment(cfg).run.summaries[0].avg_duty;
  };
  const double d25 = avg_duty_for_pp(25);
  const double d50 = avg_duty_for_pp(50);
  const double d75 = avg_duty_for_pp(75);
  std::printf("  closed-loop avg duty: Pp=25 -> %.1f%%, Pp=50 -> %.1f%%, Pp=75 -> %.1f%%\n",
              d25, d50, d75);
  tb::note("a linear fill is exactly the Pp=100 column: one fixed trade-off;\n"
           "Eq. (1) turns the same index arithmetic into a tunable policy family");

  tb::shape_check("Pp=25 array is pointwise at least as strong as Pp=75", [&] {
    for (std::size_t i = 0; i < 100; ++i) {
      if (a25.mode(i) < a75.mode(i)) {
        return false;
      }
    }
    return true;
  }());
  tb::shape_check("closed-loop duty spread across Pp exceeds 10 points", d25 - d75 > 10.0);
  tb::shape_check("mid-array contrast: Pp=25 commands max while Pp=75 still ramps",
                  a25.mode(49) == 100.0 && a75.mode(49) < 70.0);
  return 0;
}
