#include "thermal/rc_batch.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace thermctl::thermal {

RcBatch::RcBatch(const RcNetwork& tmpl, std::size_t instances)
    : node_count_(tmpl.node_count()), instances_(instances) {
  THERMCTL_ASSERT(instances > 0, "batch needs at least one instance");
  THERMCTL_ASSERT(node_count_ > 0, "template network is empty");

  capacitance_.resize(node_count_);
  fixed_.resize(node_count_);
  names_.resize(node_count_);
  for (std::size_t k = 0; k < node_count_; ++k) {
    const NodeId n{k};
    fixed_[k] = tmpl.is_fixed(n) ? 1 : 0;
    capacitance_[k] = fixed_[k] ? 0.0 : tmpl.capacitance(n).value();
    names_[k] = tmpl.node_name(n);
  }

  // CSR built with the same counting-sort fill as RcNetwork::ensure_adjacency
  // so each node's half-edges sit in edge-insertion order — the flux
  // accumulation order the bit-exactness contract depends on.
  const std::size_t e_count = tmpl.edge_count();
  edge_nodes_.resize(e_count);
  csr_offset_.assign(node_count_ + 1, 0);
  for (std::size_t e = 0; e < e_count; ++e) {
    const auto [a, b] = tmpl.edge_nodes(EdgeId{e});
    edge_nodes_[e] = {a.index, b.index};
    ++csr_offset_[a.index + 1];
    ++csr_offset_[b.index + 1];
  }
  for (std::size_t k = 0; k < node_count_; ++k) {
    csr_offset_[k + 1] += csr_offset_[k];
  }
  csr_neighbor_.assign(2 * e_count, 0);
  edge_slots_.assign(e_count, {0, 0});
  std::vector<std::size_t> cursor(csr_offset_.begin(), csr_offset_.end() - 1);
  for (std::size_t e = 0; e < e_count; ++e) {
    const std::size_t slot_a = cursor[edge_nodes_[e].first]++;
    const std::size_t slot_b = cursor[edge_nodes_[e].second]++;
    csr_neighbor_[slot_a] = edge_nodes_[e].second;
    csr_neighbor_[slot_b] = edge_nodes_[e].first;
    edge_slots_[e] = {slot_a, slot_b};
  }

  // Instance state: every column starts as a copy of the template.
  temp_.resize(node_count_ * instances_);
  power_.resize(node_count_ * instances_);
  flux_.assign(node_count_ * instances_, 0.0);
  for (std::size_t k = 0; k < node_count_; ++k) {
    const double t0 = tmpl.temperature(NodeId{k}).value();
    const double p0 = fixed_[k] ? 0.0 : tmpl.power(NodeId{k}).value();
    std::fill_n(row(temp_, k), instances_, t0);
    std::fill_n(row(power_, k), instances_, p0);
  }
  cond_.resize(2 * e_count * instances_);
  for (std::size_t e = 0; e < e_count; ++e) {
    const double g = tmpl.edge_conductance(EdgeId{e});
    std::fill_n(row(cond_, edge_slots_[e].first), instances_, g);
    std::fill_n(row(cond_, edge_slots_[e].second), instances_, g);
  }

  node_tau_.assign(node_count_ * instances_, 0.0);
  min_tau_.assign(instances_, 0.0);
  plan_stale_.assign(instances_, 1);
  cached_dt_.assign(instances_, -1.0);
  cached_substeps_.assign(instances_, 1);
  // All columns start identical; rebuilding instance 0 and replicating its
  // taus gives the same bits as rebuilding each column from its (equal)
  // conductances.
  rebuild_taus(0);
  for (std::size_t k = 0; k < node_count_; ++k) {
    std::fill_n(row(node_tau_, k), instances_, row(node_tau_, k)[0]);
  }
  std::fill(min_tau_.begin(), min_tau_.end(), min_tau_[0]);
}

bool RcBatch::matches(const RcNetwork& candidate) const {
  if (candidate.node_count() != node_count_ || candidate.edge_count() != edge_slots_.size()) {
    return false;
  }
  for (std::size_t k = 0; k < node_count_; ++k) {
    const NodeId n{k};
    if (candidate.is_fixed(n) != (fixed_[k] != 0)) {
      return false;
    }
    if (!fixed_[k] && candidate.capacitance(n).value() != capacitance_[k]) {
      return false;
    }
  }
  for (std::size_t e = 0; e < edge_nodes_.size(); ++e) {
    const auto [a, b] = candidate.edge_nodes(EdgeId{e});
    if (a.index != edge_nodes_[e].first || b.index != edge_nodes_[e].second) {
      return false;
    }
  }
  return true;
}

const std::string& RcBatch::node_name(NodeId n) const {
  THERMCTL_ASSERT(n.index < node_count_, "node out of range");
  return names_[n.index];
}

void RcBatch::set_power(std::size_t b, NodeId n, Watts p) {
  THERMCTL_ASSERT(b < instances_, "instance out of range");
  THERMCTL_ASSERT(n.index < node_count_, "node out of range");
  THERMCTL_ASSERT(!fixed_[n.index], "cannot inject power into a fixed node");
  row(power_, n.index)[b] = p.value();
}

Watts RcBatch::power(std::size_t b, NodeId n) const {
  THERMCTL_ASSERT(b < instances_, "instance out of range");
  THERMCTL_ASSERT(n.index < node_count_, "node out of range");
  return Watts{row(power_, n.index)[b]};
}

void RcBatch::set_resistance(std::size_t b, EdgeId e, KelvinPerWatt r) {
  THERMCTL_ASSERT(b < instances_, "instance out of range");
  THERMCTL_ASSERT(e.index < edge_slots_.size(), "edge out of range");
  THERMCTL_ASSERT(r.value() > 0.0, "thermal resistance must be positive");
  const double g = 1.0 / r.value();
  double* slot_a = &row(cond_, edge_slots_[e.index].first)[b];
  if (g == *slot_a) {
    return;  // steady fans re-set the same convection value every step
  }
  *slot_a = g;
  row(cond_, edge_slots_[e.index].second)[b] = g;
  // Incremental min-tau maintenance: only this edge's endpoints changed
  // conductance, so only their taus need refreshing before re-taking the
  // min. This keeps a slewing fan (one convection edge retargeted every
  // step) at O(degree) instead of a full O(E+K) rescan per step.
  refresh_node_tau(edge_nodes_[e.index].first, b);
  refresh_node_tau(edge_nodes_[e.index].second, b);
  min_tau_[b] = min_over_taus(b);
  plan_stale_[b] = 1;
}

KelvinPerWatt RcBatch::resistance(std::size_t b, EdgeId e) const {
  THERMCTL_ASSERT(b < instances_, "instance out of range");
  THERMCTL_ASSERT(e.index < edge_slots_.size(), "edge out of range");
  return KelvinPerWatt{1.0 / row(cond_, edge_slots_[e.index].first)[b]};
}

void RcBatch::set_temperature(std::size_t b, NodeId n, Celsius t) {
  THERMCTL_ASSERT(b < instances_, "instance out of range");
  THERMCTL_ASSERT(n.index < node_count_, "node out of range");
  row(temp_, n.index)[b] = t.value();
}

void RcBatch::set_fixed_temperature(std::size_t b, NodeId n, Celsius t) {
  THERMCTL_ASSERT(b < instances_, "instance out of range");
  THERMCTL_ASSERT(n.index < node_count_, "node out of range");
  THERMCTL_ASSERT(fixed_[n.index], "not a fixed node");
  row(temp_, n.index)[b] = t.value();
}

Celsius RcBatch::temperature(std::size_t b, NodeId n) const {
  THERMCTL_ASSERT(b < instances_, "instance out of range");
  THERMCTL_ASSERT(n.index < node_count_, "node out of range");
  return Celsius{row(temp_, n.index)[b]};
}

void RcBatch::refresh_node_tau(std::size_t k, std::size_t b) {
  if (fixed_[k]) {
    return;  // fixed nodes keep the sentinel; they never bound the substep
  }
  // Sum the node's incident conductances from its CSR row. The row was
  // filled in edge-insertion order, so the addends arrive in the same order
  // as RcNetwork::ensure_min_tau's per-edge accumulation — same partial
  // sums, same rounding, same bits.
  double g_sum = 0.0;
  const std::size_t slot_end = csr_offset_[k + 1];
  for (std::size_t s = csr_offset_[k]; s < slot_end; ++s) {
    g_sum += row(cond_, s)[b];
  }
  row(node_tau_, k)[b] = g_sum > 0.0 ? capacitance_[k] / g_sum : 1e30;
}

double RcBatch::min_over_taus(std::size_t b) const {
  // RcNetwork scans nodes in index order starting from 1e30; sentinel
  // entries (fixed / zero-conductance nodes) are absorbed without changing
  // the result, so the chain is bitwise identical to its skip-scan.
  double min_tau = 1e30;
  for (std::size_t k = 0; k < node_count_; ++k) {
    min_tau = std::min(min_tau, row(node_tau_, k)[b]);
  }
  return min_tau;
}

void RcBatch::rebuild_taus(std::size_t b) {
  for (std::size_t k = 0; k < node_count_; ++k) {
    row(node_tau_, k)[b] = 1e30;
    refresh_node_tau(k, b);
  }
  min_tau_[b] = min_over_taus(b);
}

Seconds RcBatch::min_time_constant(std::size_t b) const {
  THERMCTL_ASSERT(b < instances_, "instance out of range");
  // min_tau_ is always fresh; clearing plan_stale_ mirrors RcNetwork's
  // ensure_min_tau clearing min_tau_dirty_ on read — which leaves a
  // then-stale substep plan cached, a quirk step() reproduces.
  plan_stale_[b] = 0;
  return Seconds{min_tau_[b]};
}

void RcBatch::ensure_plan(std::size_t b, double dt) {
  // Mirrors RcNetwork::step's cache: recompute only after a conductance
  // change or when the caller varies dt.
  if (plan_stale_[b] || dt != cached_dt_[b]) {
    const double max_sub = std::max(1e-6, min_tau_[b] / 8.0);
    cached_substeps_[b] = std::max(1, static_cast<int>(std::ceil(dt / max_sub)));
    cached_dt_[b] = dt;
    plan_stale_[b] = 0;
  }
}

namespace {

// The substep inner loops, hoisted into free functions whose pointer
// parameters are restrict-qualified. The rows they receive never overlap:
// flux/cond/power are distinct arrays, and the two temp_ rows belong to
// distinct RC nodes (self-edges are rejected at add_edge). Declaring that at
// the parameter level — where GCC honours restrict — lets the vectorizer
// emit one straight-line SIMD loop instead of versioning every invocation
// with runtime overlap tests. noinline keeps the restrict contract from
// being discarded by inlining back into the (aliasing-opaque) caller.
[[gnu::noinline]] void flux_accumulate(double* __restrict f, const double* __restrict tk,
                                       const double* __restrict tn,
                                       const double* __restrict g, std::size_t begin,
                                       std::size_t end) {
  for (std::size_t b = begin; b < end; ++b) {
    f[b] += (tn[b] - tk[b]) * g[b];
  }
}

[[gnu::noinline]] void temp_update(double* __restrict tk, const double* __restrict f,
                                   const double* __restrict p, double c, double h,
                                   std::size_t begin, std::size_t end) {
  for (std::size_t b = begin; b < end; ++b) {
    tk[b] += h * (p[b] + f[b]) / c;
  }
}

}  // namespace

void RcBatch::euler_substep_range(double h, std::size_t begin, std::size_t end) {
  // Two passes (flux from pre-step temperatures, then update) keep the
  // scheme Jacobi. Within each node row the instance loop is unit-stride and
  // data-independent across instances — the vectorizable axis.
  for (std::size_t k = 0; k < node_count_; ++k) {
    if (fixed_[k]) {
      continue;
    }
    double* f = row(flux_, k);
    const double* tk = row(temp_, k);
    for (std::size_t b = begin; b < end; ++b) {
      f[b] = 0.0;
    }
    const std::size_t slot_end = csr_offset_[k + 1];
    for (std::size_t s = csr_offset_[k]; s < slot_end; ++s) {
      flux_accumulate(f, tk, row(temp_, csr_neighbor_[s]), row(cond_, s), begin, end);
    }
  }
  for (std::size_t k = 0; k < node_count_; ++k) {
    if (fixed_[k]) {
      continue;
    }
    temp_update(row(temp_, k), row(flux_, k), row(power_, k), capacitance_[k], h, begin,
                end);
  }
}

void RcBatch::step_range(Seconds dt, std::size_t begin, std::size_t end) {
  THERMCTL_ASSERT(dt.value() > 0.0, "step duration must be positive");
  THERMCTL_ASSERT(begin <= end && end <= instances_, "instance range out of bounds");
  for (std::size_t b = begin; b < end; ++b) {
    ensure_plan(b, dt.value());
  }
  // Advance maximal runs of instances that agree on the substep count in one
  // vectorized pass each; a heterogeneous plan splits the range, not the
  // arithmetic, so every instance's trajectory is independent of its
  // neighbours' plans.
  std::size_t i = begin;
  while (i < end) {
    const int subs = cached_substeps_[i];
    std::size_t j = i + 1;
    while (j < end && cached_substeps_[j] == subs) {
      ++j;
    }
    const double h = dt.value() / subs;
    for (int s = 0; s < subs; ++s) {
      euler_substep_range(h, i, j);
    }
    i = j;
  }
}

void RcBatch::settle(std::size_t b, int max_iterations, double tolerance_kelvin) {
  THERMCTL_ASSERT(b < instances_, "instance out of range");
  // March the instance with large (but stable) steps until quiescent —
  // RcNetwork::settle, one column at a time.
  const double h = min_time_constant(b).value() / 2.0;
  std::vector<double> before(node_count_);
  for (int it = 0; it < max_iterations; ++it) {
    for (std::size_t k = 0; k < node_count_; ++k) {
      before[k] = row(temp_, k)[b];
    }
    euler_substep_range(h, b, b + 1);
    double delta = 0.0;
    for (std::size_t k = 0; k < node_count_; ++k) {
      delta = std::max(delta, std::abs(row(temp_, k)[b] - before[k]));
    }
    if (delta < tolerance_kelvin) {
      return;
    }
  }
}

std::size_t RcBatch::memory_bytes() const {
  auto vec_bytes = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
  return vec_bytes(temp_) + vec_bytes(power_) + vec_bytes(cond_) + vec_bytes(flux_) +
         vec_bytes(node_tau_) + vec_bytes(min_tau_) + vec_bytes(plan_stale_) +
         vec_bytes(cached_dt_) + vec_bytes(cached_substeps_) + vec_bytes(capacitance_) +
         vec_bytes(fixed_) + vec_bytes(csr_offset_) + vec_bytes(csr_neighbor_) +
         vec_bytes(edge_slots_) + vec_bytes(edge_nodes_);
}

}  // namespace thermctl::thermal
