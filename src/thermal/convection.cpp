#include "thermal/convection.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace thermctl::thermal {

ConvectionModel::ConvectionModel(const ConvectionParams& p) : params_(p) {
  THERMCTL_ASSERT(p.g_natural > 0.0, "natural-convection conductance must be positive");
  THERMCTL_ASSERT(p.g_forced >= 0.0, "forced-convection coefficient must be non-negative");
  THERMCTL_ASSERT(p.exponent > 0.0 && p.exponent <= 1.5, "implausible airflow exponent");
  THERMCTL_ASSERT(p.r_conduction.value() >= 0.0, "conduction resistance must be non-negative");
}

KelvinPerWatt ConvectionModel::resistance(Cfm v) const {
  THERMCTL_ASSERT(v.value() >= 0.0, "negative airflow");
  const double g = params_.g_natural + params_.g_forced * std::pow(v.value(), params_.exponent);
  return KelvinPerWatt{params_.r_conduction.value() + 1.0 / g};
}

}  // namespace thermctl::thermal
