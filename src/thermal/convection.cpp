#include "thermal/convection.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace thermctl::thermal {

ConvectionModel::ConvectionModel(const ConvectionParams& p) : params_(p) {
  THERMCTL_ASSERT(p.g_natural > 0.0, "natural-convection conductance must be positive");
  THERMCTL_ASSERT(p.g_forced >= 0.0, "forced-convection coefficient must be non-negative");
  THERMCTL_ASSERT(p.exponent > 0.0 && p.exponent <= 1.5, "implausible airflow exponent");
  THERMCTL_ASSERT(p.r_conduction.value() >= 0.0, "conduction resistance must be non-negative");
}

}  // namespace thermctl::thermal
