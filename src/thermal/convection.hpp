// Forced-convection heat transfer model.
//
// The fan's contribution to cooling is modelled as an airflow-dependent
// heatsink-to-ambient resistance. For forced convection over a finned sink
// the convective conductance scales roughly with airflow^0.8 (classic
// Dittus-Boelter turbulence exponent), plus a natural-convection floor so the
// model stays sane at zero airflow:
//
//   G(v) = g_natural + g_forced * v^0.8        [W/K, v in CFM]
//   R(v) = r_conduction + 1 / G(v)             [K/W]
//
// r_conduction captures the fin/base spreading resistance that no amount of
// airflow removes; it is what makes the 50% vs 75% max-duty trajectories in
// the paper's Fig. 7 nearly indistinguishable while 25% vs 100% differ by
// several degrees (diminishing returns of airflow).
#pragma once

#include <cmath>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace thermctl::thermal {

struct ConvectionParams {
  /// Natural-convection conductance at zero airflow (W/K). Calibrated so a
  /// stalled fan sends a loaded CPU toward PROCHOT territory but an idle one
  /// survives — the fan-failure scenarios of §1.
  double g_natural = 0.55;
  /// Forced-convection coefficient (W/K per CFM^exponent).
  double g_forced = 0.5;
  /// Airflow exponent. Sub-linear (0.6 effective over this sink's range) so
  /// conductance saturates: the 25→50% duty gain dwarfs 75→100% (Fig. 7).
  double exponent = 0.6;
  /// Series conduction/spreading resistance (K/W) independent of airflow.
  KelvinPerWatt r_conduction{0.02};
};

class ConvectionModel {
 public:
  ConvectionModel() = default;
  explicit ConvectionModel(const ConvectionParams& p);

  /// Heatsink-to-ambient resistance at airflow `v`.
  [[nodiscard]] KelvinPerWatt resistance(Cfm v) const {
    THERMCTL_ASSERT(v.value() >= 0.0, "negative airflow");
    const double g = params_.g_natural + params_.g_forced * std::pow(v.value(), params_.exponent);
    return KelvinPerWatt{params_.r_conduction.value() + 1.0 / g};
  }

  /// Resistance with the fan stopped (natural convection only).
  [[nodiscard]] KelvinPerWatt still_air_resistance() const { return resistance(Cfm{0.0}); }

  /// Asymptotic floor as airflow → ∞ (the conduction term).
  [[nodiscard]] KelvinPerWatt limit_resistance() const { return params_.r_conduction; }

  [[nodiscard]] const ConvectionParams& params() const { return params_; }

 private:
  ConvectionParams params_{};
};

}  // namespace thermctl::thermal
