// Batched RC thermal networks: one solver advancing a whole fleet.
//
// A datacenter rack is thousands of *structurally identical* package models
// (same nodes, capacitances and edges; only temperatures, powers and the
// fan-dependent convection conductance differ per machine). Stepping each
// instance through its own RcNetwork costs a virtual-free but pointer-chasing
// object walk per node per physics step; at 100k nodes that layout is the
// bottleneck, not the arithmetic.
//
// RcBatch lifts B instances of one template topology into structure-of-arrays
// storage: the CSR adjacency, capacitances and fixed-node mask are shared,
// while temperatures, injected powers and edge conductances live in
// node-major rows of length B (`temp[k*B + b]`). One euler_substep pass then
// advances *every* instance with tight unit-stride loops over the instance
// axis that the compiler auto-vectorizes — no per-instance dispatch at all.
//
// Bit-exactness contract: an RcBatch instance's trajectory is bitwise
// identical to the same sequence of calls on a standalone RcNetwork. Flux
// accumulation visits half-edges in the same CSR order, min-time-constant
// accumulation runs in edge-insertion order, and the per-instance substep
// plan cache reproduces RcNetwork::step's recompute conditions exactly
// (including its quirk that settle() can clear the dirty bit without
// refreshing an already-cached plan). The differential oracle and the
// rc_batch unit tests assert this equivalence.
//
// Heterogeneous fleets (mixed hardware) fail `matches()`; callers fall back
// to per-node RcNetwork stepping for the odd ones out. The batch makes no
// attempt to mask or gather across structural differences — fallback is the
// compatibility story.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/aligned.hpp"
#include "common/assert.hpp"
#include "common/units.hpp"
#include "thermal/rc_network.hpp"

namespace thermctl::thermal {

class RcBatch {
 public:
  /// Builds a batch of `instances` copies of `tmpl`: shared topology, and
  /// every instance's temperatures/powers/conductances initialized from the
  /// template's current state.
  RcBatch(const RcNetwork& tmpl, std::size_t instances);

  /// True if `candidate` has the template's structure (node count, fixed
  /// mask, capacitances, edge endpoints) and could therefore be an instance
  /// of this batch. Conductances/temperatures/powers are per-instance state,
  /// not structure.
  [[nodiscard]] bool matches(const RcNetwork& candidate) const;

  [[nodiscard]] std::size_t instance_count() const { return instances_; }
  [[nodiscard]] std::size_t rc_node_count() const { return node_count_; }
  [[nodiscard]] std::size_t edge_count() const { return edge_slots_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId n) const;

  // ---- per-instance state, mirroring the RcNetwork API ----
  void set_power(std::size_t b, NodeId n, Watts p);
  [[nodiscard]] Watts power(std::size_t b, NodeId n) const;
  void set_resistance(std::size_t b, EdgeId e, KelvinPerWatt r);
  [[nodiscard]] KelvinPerWatt resistance(std::size_t b, EdgeId e) const;
  void set_temperature(std::size_t b, NodeId n, Celsius t);
  void set_fixed_temperature(std::size_t b, NodeId n, Celsius t);
  [[nodiscard]] Celsius temperature(std::size_t b, NodeId n) const;
  [[nodiscard]] Seconds min_time_constant(std::size_t b) const;

  /// Advances instances [begin, end) by `dt`, sub-stepping per instance for
  /// stability. Contiguous runs of instances that agree on the substep count
  /// (the homogeneous common case: all of them) advance in one vectorized
  /// pass; disagreeing instances split the range, never the arithmetic.
  ///
  /// Thread-safety: concurrent step_range calls on DISJOINT instance ranges
  /// are safe (all touched state is per-instance columns) — this is what the
  /// sharded engine relies on. set_resistance/set_power on an instance inside
  /// a shard's range are likewise column-local. Everything else on this class
  /// is single-threaded.
  void step_range(Seconds dt, std::size_t begin, std::size_t end);
  void step_all(Seconds dt) { step_range(dt, 0, instances_); }
  void step_one(std::size_t b, Seconds dt) { step_range(dt, b, b + 1); }

  /// RcNetwork::settle for one instance: marches with large stable steps
  /// until quiescent.
  void settle(std::size_t b, int max_iterations = 200000, double tolerance_kelvin = 1e-7);

  /// Stable pointers to one instance's state cells, for per-node views
  /// (fleet-backed PackageModel) that access a fixed (instance, node)
  /// coordinate every physics step. Range/fixed-node validation happens here,
  /// once, instead of per access; the SoA arrays never reallocate after
  /// construction, so the pointers live as long as the batch. Writing through
  /// power_cell is exactly set_power (a plain cell write with no bookkeeping);
  /// temperature_cell reads are exactly temperature().
  [[nodiscard]] double* power_cell(std::size_t b, NodeId n) {
    THERMCTL_ASSERT(b < instances_, "instance out of range");
    THERMCTL_ASSERT(n.index < node_count_, "node out of range");
    THERMCTL_ASSERT(!fixed_[n.index], "cannot inject power into a fixed node");
    return &row(power_, n.index)[b];
  }
  [[nodiscard]] const double* temperature_cell(std::size_t b, NodeId n) const {
    THERMCTL_ASSERT(b < instances_, "instance out of range");
    THERMCTL_ASSERT(n.index < node_count_, "node out of range");
    return &row(temp_, n.index)[b];
  }

  /// Heap footprint of the SoA arrays (bytes) — the "hot" per-node state the
  /// scaling benchmark reports as bytes/node.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  /// One Jacobi substep of length `h` for instances [begin, end).
  void euler_substep_range(double h, std::size_t begin, std::size_t end);
  /// Full per-node tau rebuild for instance b (edge-order accumulation, like
  /// RcNetwork::ensure_min_tau). Only needed at construction; afterwards
  /// set_resistance keeps node_tau_/min_tau_ fresh incrementally.
  void rebuild_taus(std::size_t b);
  /// Recomputes node k's tau for instance b from its CSR row. The row holds
  /// the node's half-edges in edge-insertion order, so the partial sums are
  /// the same addends in the same order as the full edge-order accumulation
  /// — bitwise identical result.
  void refresh_node_tau(std::size_t k, std::size_t b);
  /// min over the cached per-node taus, in node order (RcNetwork's scan
  /// order; fixed/zero-conductance nodes hold the 1e30 sentinel and never
  /// win).
  [[nodiscard]] double min_over_taus(std::size_t b) const;
  /// Refreshes instance b's substep plan if its recompute condition fires.
  void ensure_plan(std::size_t b, double dt);

  [[nodiscard]] double* row(AlignedVector<double>& v, std::size_t k) {
    return v.data() + k * instances_;
  }
  [[nodiscard]] const double* row(const AlignedVector<double>& v, std::size_t k) const {
    return v.data() + k * instances_;
  }

  // Shared structure.
  std::size_t node_count_ = 0;
  std::size_t instances_ = 0;
  std::vector<double> capacitance_;             // [K]; 0 marks a fixed node
  std::vector<std::uint8_t> fixed_;             // [K]
  std::vector<std::string> names_;              // [K]
  std::vector<std::size_t> csr_offset_;         // [K+1]
  std::vector<std::size_t> csr_neighbor_;       // [2E]
  std::vector<std::pair<std::size_t, std::size_t>> edge_slots_;  // [E]
  std::vector<std::pair<std::size_t, std::size_t>> edge_nodes_;  // [E]

  // Per-instance SoA state: node-major rows of length B, each array on a
  // cache-line boundary for the vectorized substep sweeps.
  AlignedVector<double> temp_;   // [K*B]
  AlignedVector<double> power_;  // [K*B]
  AlignedVector<double> cond_;   // [2E*B], slot-major rows
  AlignedVector<double> flux_;   // [K*B] scratch

  // Per-instance substep plan cache (mirrors RcNetwork's). Unlike RcNetwork,
  // the batch keeps min_tau_ *always fresh*: set_resistance refreshes only
  // the touched edge's endpoint taus (node_tau_) and re-takes the min, so a
  // slewing fan costs O(degree) per step instead of a full O(E+K) rescan.
  // plan_stale_ then plays exactly the role of RcNetwork's min_tau_dirty_ in
  // the substep-plan recompute condition — including the quirk that reading
  // min_time_constant() clears it without refreshing an already-cached plan.
  AlignedVector<double> node_tau_;               // [K*B]; 1e30 = never wins
  mutable std::vector<double> min_tau_;          // [B]
  mutable std::vector<std::uint8_t> plan_stale_;  // [B]
  std::vector<double> cached_dt_;                // [B]
  std::vector<int> cached_substeps_;             // [B]
};

}  // namespace thermctl::thermal
