#include "thermal/package_model.hpp"

namespace thermctl::thermal {

PackageWiring PackageModel::wire_network(const PackageParams& params, RcNetwork& net) {
  // Build the three-node chain. Initial temperatures start at ambient; callers
  // that want a hot start use settle() after setting power/airflow.
  const ConvectionModel convection{params.convection};
  PackageWiring w;
  w.die = net.add_node("die", params.c_die, params.ambient);
  w.heatsink = net.add_node("heatsink", params.c_heatsink, params.ambient);
  w.ambient = net.add_fixed_node("ambient", params.ambient);
  w.die_hs = net.add_edge(w.die, w.heatsink, params.r_die_heatsink);
  w.hs_amb = net.add_edge(w.heatsink, w.ambient, convection.still_air_resistance());
  return w;
}

PackageModel::PackageModel(const PackageParams& params)
    : params_(params), convection_(params.convection), net_(std::make_unique<RcNetwork>()) {
  wiring_ = wire_network(params_, *net_);
}

PackageModel::PackageModel(const PackageParams& params, RcBatch& batch, std::size_t slot)
    : params_(params), convection_(params.convection), batch_(&batch), slot_(slot) {
  // Wiring ids are deterministic (same build order as wire_network); recover
  // them structurally rather than hard-coding indices.
  RcNetwork probe;
  wiring_ = wire_network(params_, probe);
  THERMCTL_ASSERT(batch.matches(probe), "batch was not built from this package wiring");
  THERMCTL_ASSERT(slot < batch.instance_count(), "batch slot out of range");
  die_power_cell_ = batch.power_cell(slot, wiring_.die);
  die_temp_cell_ = batch.temperature_cell(slot, wiring_.die);
}

void PackageModel::set_ambient(Celsius t) {
  params_.ambient = t;
  if (batch_ != nullptr) {
    batch_->set_fixed_temperature(slot_, wiring_.ambient, t);
  } else {
    net_->set_fixed_temperature(wiring_.ambient, t);
  }
}

Watts PackageModel::cpu_power() const {
  return batch_ != nullptr ? batch_->power(slot_, wiring_.die) : net_->power(wiring_.die);
}

Celsius PackageModel::steady_state_die(Watts p, Cfm v) const {
  // In steady state all die power flows through both resistances in series.
  const double r_total =
      params_.r_die_heatsink.value() + convection_.resistance(v).value();
  return Celsius{params_.ambient.value() + p.value() * r_total};
}

}  // namespace thermctl::thermal
