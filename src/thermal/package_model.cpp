#include "thermal/package_model.hpp"

namespace thermctl::thermal {

PackageModel::PackageModel(const PackageParams& params)
    : params_(params), convection_(params.convection) {
  // Build the three-node chain. Initial temperatures start at ambient; callers
  // that want a hot start use settle() after setting power/airflow.
  die_ = net_.add_node("die", params_.c_die, params_.ambient);
  heatsink_ = net_.add_node("heatsink", params_.c_heatsink, params_.ambient);
  ambient_ = net_.add_fixed_node("ambient", params_.ambient);
  die_hs_edge_ = net_.add_edge(die_, heatsink_, params_.r_die_heatsink);
  hs_amb_edge_ = net_.add_edge(heatsink_, ambient_, convection_.still_air_resistance());
}

void PackageModel::set_ambient(Celsius t) {
  params_.ambient = t;
  net_.set_fixed_temperature(ambient_, t);
}

Watts PackageModel::cpu_power() const { return net_.power(die_); }

Celsius PackageModel::steady_state_die(Watts p, Cfm v) const {
  // In steady state all die power flows through both resistances in series.
  const double r_total =
      params_.r_die_heatsink.value() + convection_.resistance(v).value();
  return Celsius{params_.ambient.value() + p.value() * r_total};
}

}  // namespace thermctl::thermal
