#include "thermal/rc_network.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace thermctl::thermal {

NodeId RcNetwork::add_node(std::string name, JoulesPerKelvin c, Celsius t0) {
  THERMCTL_ASSERT(c.value() > 0.0, "dynamic node needs positive capacitance");
  nodes_.push_back(Node{std::move(name), c.value(), t0.value(), 0.0, false});
  flux_.push_back(0.0);
  return NodeId{nodes_.size() - 1};
}

NodeId RcNetwork::add_fixed_node(std::string name, Celsius t) {
  nodes_.push_back(Node{std::move(name), 0.0, t.value(), 0.0, true});
  flux_.push_back(0.0);
  return NodeId{nodes_.size() - 1};
}

EdgeId RcNetwork::add_edge(NodeId a, NodeId b, KelvinPerWatt r) {
  THERMCTL_ASSERT(a.index < nodes_.size() && b.index < nodes_.size(), "edge node out of range");
  THERMCTL_ASSERT(a.index != b.index, "self-edge");
  THERMCTL_ASSERT(r.value() > 0.0, "thermal resistance must be positive");
  edges_.push_back(Edge{a.index, b.index, 1.0 / r.value()});
  return EdgeId{edges_.size() - 1};
}

void RcNetwork::set_resistance(EdgeId e, KelvinPerWatt r) {
  THERMCTL_ASSERT(e.index < edges_.size(), "edge out of range");
  THERMCTL_ASSERT(r.value() > 0.0, "thermal resistance must be positive");
  edges_[e.index].conductance = 1.0 / r.value();
}

KelvinPerWatt RcNetwork::resistance(EdgeId e) const {
  THERMCTL_ASSERT(e.index < edges_.size(), "edge out of range");
  return KelvinPerWatt{1.0 / edges_[e.index].conductance};
}

void RcNetwork::set_power(NodeId n, Watts p) {
  THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
  THERMCTL_ASSERT(!nodes_[n.index].fixed, "cannot inject power into a fixed node");
  nodes_[n.index].power = p.value();
}

Watts RcNetwork::power(NodeId n) const {
  THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
  return Watts{nodes_[n.index].power};
}

void RcNetwork::set_fixed_temperature(NodeId n, Celsius t) {
  THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
  THERMCTL_ASSERT(nodes_[n.index].fixed, "not a fixed node");
  nodes_[n.index].temperature = t.value();
}

void RcNetwork::set_temperature(NodeId n, Celsius t) {
  THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
  nodes_[n.index].temperature = t.value();
}

Celsius RcNetwork::temperature(NodeId n) const {
  THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
  return Celsius{nodes_[n.index].temperature};
}

const std::string& RcNetwork::node_name(NodeId n) const {
  THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
  return nodes_[n.index].name;
}

Seconds RcNetwork::min_time_constant() const {
  // tau_i = C_i / G_i where G_i is the total conductance attached to node i.
  std::vector<double> conductance(nodes_.size(), 0.0);
  for (const Edge& e : edges_) {
    conductance[e.a] += e.conductance;
    conductance[e.b] += e.conductance;
  }
  double min_tau = 1e30;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].fixed && conductance[i] > 0.0) {
      min_tau = std::min(min_tau, nodes_[i].capacitance / conductance[i]);
    }
  }
  return Seconds{min_tau};
}

void RcNetwork::euler_substep(double dt) {
  std::fill(flux_.begin(), flux_.end(), 0.0);
  for (const Edge& e : edges_) {
    const double q = (nodes_[e.a].temperature - nodes_[e.b].temperature) * e.conductance;
    flux_[e.a] -= q;
    flux_[e.b] += q;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (!n.fixed) {
      n.temperature += dt * (n.power + flux_[i]) / n.capacitance;
    }
  }
}

void RcNetwork::step(Seconds dt) {
  THERMCTL_ASSERT(dt.value() > 0.0, "step duration must be positive");
  // Explicit Euler is stable for dt < 2*tau; keep sub-steps below tau/8 for
  // accuracy (sub-degree error per time constant) on top of the stability
  // margin.
  const double max_sub = std::max(1e-6, min_time_constant().value() / 8.0);
  const int substeps = std::max(1, static_cast<int>(std::ceil(dt.value() / max_sub)));
  const double h = dt.value() / substeps;
  for (int s = 0; s < substeps; ++s) {
    euler_substep(h);
  }
}

void RcNetwork::settle(int max_iterations, double tolerance_kelvin) {
  // March the network with large (but stable) steps until quiescent.
  const double h = min_time_constant().value() / 2.0;
  for (int it = 0; it < max_iterations; ++it) {
    std::vector<double> before(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      before[i] = nodes_[i].temperature;
    }
    euler_substep(h);
    double delta = 0.0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      delta = std::max(delta, std::abs(nodes_[i].temperature - before[i]));
    }
    if (delta < tolerance_kelvin) {
      return;
    }
  }
}

}  // namespace thermctl::thermal
