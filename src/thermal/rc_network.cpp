#include "thermal/rc_network.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace thermctl::thermal {

NodeId RcNetwork::add_node(std::string name, JoulesPerKelvin c, Celsius t0) {
  THERMCTL_ASSERT(c.value() > 0.0, "dynamic node needs positive capacitance");
  nodes_.push_back(Node{std::move(name), c.value(), t0.value(), 0.0, false});
  flux_.push_back(0.0);
  adjacency_dirty_ = true;
  min_tau_dirty_ = true;
  return NodeId{nodes_.size() - 1};
}

NodeId RcNetwork::add_fixed_node(std::string name, Celsius t) {
  nodes_.push_back(Node{std::move(name), 0.0, t.value(), 0.0, true});
  flux_.push_back(0.0);
  adjacency_dirty_ = true;
  min_tau_dirty_ = true;
  return NodeId{nodes_.size() - 1};
}

EdgeId RcNetwork::add_edge(NodeId a, NodeId b, KelvinPerWatt r) {
  THERMCTL_ASSERT(a.index < nodes_.size() && b.index < nodes_.size(), "edge node out of range");
  THERMCTL_ASSERT(a.index != b.index, "self-edge");
  THERMCTL_ASSERT(r.value() > 0.0, "thermal resistance must be positive");
  edges_.push_back(Edge{a.index, b.index, 1.0 / r.value()});
  adjacency_dirty_ = true;
  min_tau_dirty_ = true;
  return EdgeId{edges_.size() - 1};
}

void RcNetwork::set_resistance(EdgeId e, KelvinPerWatt r) {
  THERMCTL_ASSERT(e.index < edges_.size(), "edge out of range");
  THERMCTL_ASSERT(r.value() > 0.0, "thermal resistance must be positive");
  const double g = 1.0 / r.value();
  if (g == edges_[e.index].conductance) {
    return;  // steady fans re-set the same convection value every step
  }
  edges_[e.index].conductance = g;
  if (!adjacency_dirty_) {
    csr_conductance_[edge_slots_[e.index].first] = g;
    csr_conductance_[edge_slots_[e.index].second] = g;
  }
  min_tau_dirty_ = true;
}

KelvinPerWatt RcNetwork::resistance(EdgeId e) const {
  THERMCTL_ASSERT(e.index < edges_.size(), "edge out of range");
  return KelvinPerWatt{1.0 / edges_[e.index].conductance};
}

Watts RcNetwork::power(NodeId n) const {
  THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
  return Watts{nodes_[n.index].power};
}

void RcNetwork::set_fixed_temperature(NodeId n, Celsius t) {
  THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
  THERMCTL_ASSERT(nodes_[n.index].fixed, "not a fixed node");
  nodes_[n.index].temperature = t.value();
}

void RcNetwork::set_temperature(NodeId n, Celsius t) {
  THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
  nodes_[n.index].temperature = t.value();
}

const std::string& RcNetwork::node_name(NodeId n) const {
  THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
  return nodes_[n.index].name;
}

void RcNetwork::ensure_adjacency() const {
  if (!adjacency_dirty_) {
    return;
  }
  const std::size_t n = nodes_.size();
  csr_offset_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++csr_offset_[e.a + 1];
    ++csr_offset_[e.b + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    csr_offset_[i + 1] += csr_offset_[i];
  }
  csr_neighbor_.assign(2 * edges_.size(), 0);
  csr_conductance_.assign(2 * edges_.size(), 0.0);
  edge_slots_.assign(edges_.size(), {0, 0});
  std::vector<std::size_t> cursor(csr_offset_.begin(), csr_offset_.end() - 1);
  // Filling in edge-insertion order keeps each node's half-edges sorted by
  // edge index, so per-node flux accumulation visits addends in exactly the
  // order the edge-list loop did — bitwise-identical trajectories.
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const std::size_t slot_a = cursor[edges_[e].a]++;
    const std::size_t slot_b = cursor[edges_[e].b]++;
    csr_neighbor_[slot_a] = edges_[e].b;
    csr_neighbor_[slot_b] = edges_[e].a;
    csr_conductance_[slot_a] = edges_[e].conductance;
    csr_conductance_[slot_b] = edges_[e].conductance;
    edge_slots_[e] = {slot_a, slot_b};
  }
  node_conductance_.assign(n, 0.0);
  adjacency_dirty_ = false;
}

void RcNetwork::ensure_min_tau() const {
  if (!min_tau_dirty_) {
    return;
  }
  ensure_adjacency();
  // tau_i = C_i / G_i where G_i is the total conductance attached to node i.
  // Accumulated in edge order (not CSR order) to match the original
  // implementation's rounding exactly.
  std::fill(node_conductance_.begin(), node_conductance_.end(), 0.0);
  for (const Edge& e : edges_) {
    node_conductance_[e.a] += e.conductance;
    node_conductance_[e.b] += e.conductance;
  }
  double min_tau = 1e30;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].fixed && node_conductance_[i] > 0.0) {
      min_tau = std::min(min_tau, nodes_[i].capacitance / node_conductance_[i]);
    }
  }
  min_tau_ = min_tau;
  min_tau_dirty_ = false;
}

Seconds RcNetwork::min_time_constant() const {
  ensure_min_tau();
  return Seconds{min_tau_};
}

void RcNetwork::euler_substep(double dt) {
  ensure_adjacency();
  const std::size_t n = nodes_.size();
  // Two passes (flux from pre-step temperatures, then update) keep the
  // scheme Jacobi, matching the edge-list formulation.
  for (std::size_t i = 0; i < n; ++i) {
    if (nodes_[i].fixed) {
      continue;
    }
    const double t_i = nodes_[i].temperature;
    double f = 0.0;
    const std::size_t end = csr_offset_[i + 1];
    for (std::size_t k = csr_offset_[i]; k < end; ++k) {
      f += (nodes_[csr_neighbor_[k]].temperature - t_i) * csr_conductance_[k];
    }
    flux_[i] = f;
  }
  for (std::size_t i = 0; i < n; ++i) {
    Node& node = nodes_[i];
    if (!node.fixed) {
      node.temperature += dt * (node.power + flux_[i]) / node.capacitance;
    }
  }
}

void RcNetwork::step(Seconds dt) {
  THERMCTL_ASSERT(dt.value() > 0.0, "step duration must be positive");
  // Explicit Euler is stable for dt < 2*tau; keep sub-steps below tau/8 for
  // accuracy (sub-degree error per time constant) on top of the stability
  // margin. The plan is cached: recomputed only after a resistance or
  // topology change, or when the caller varies dt.
  if (min_tau_dirty_ || dt.value() != cached_dt_) {
    ensure_min_tau();
    const double max_sub = std::max(1e-6, min_tau_ / 8.0);
    cached_substeps_ = std::max(1, static_cast<int>(std::ceil(dt.value() / max_sub)));
    cached_dt_ = dt.value();
  }
  const double h = dt.value() / cached_substeps_;
  for (int s = 0; s < cached_substeps_; ++s) {
    euler_substep(h);
  }
}

void RcNetwork::settle(int max_iterations, double tolerance_kelvin) {
  // March the network with large (but stable) steps until quiescent.
  const double h = min_time_constant().value() / 2.0;
  std::vector<double> before(nodes_.size());
  for (int it = 0; it < max_iterations; ++it) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      before[i] = nodes_[i].temperature;
    }
    euler_substep(h);
    double delta = 0.0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      delta = std::max(delta, std::abs(nodes_[i].temperature - before[i]));
    }
    if (delta < tolerance_kelvin) {
      return;
    }
  }
}

}  // namespace thermctl::thermal
