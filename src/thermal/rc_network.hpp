// Lumped-parameter RC thermal network.
//
// The standard compact model for package-level thermals (cf. Skadron et al.,
// "Temperature-aware microarchitecture", and the RC web-farm model of
// Ferreira et al. cited by the paper): temperatures are node potentials, heat
// flows are currents, thermal resistances are conductances between nodes, and
// heat capacities integrate the imbalance.
//
//   C_i * dT_i/dt = P_i(t) + sum_j (T_j - T_i) / R_ij
//
// Nodes are either *dynamic* (finite capacitance, integrated) or *fixed*
// (boundary conditions such as ambient air). Edge resistances may be updated
// between steps — that is how fan-speed-dependent convection enters the model.
//
// Integration is explicit Euler with automatic sub-stepping: the solver
// splits a requested step so that every sub-step is comfortably below the
// smallest node time constant, which keeps the scheme stable for the stiff
// die/heatsink combination without dragging in an implicit solver.
//
// step() is the simulator's innermost loop (every node of every cluster runs
// it every physics step), so the solver keeps all of its working state in
// preallocated members: edge adjacency is flattened into a CSR-style layout
// rebuilt only when the topology changes, and the stability bound (smallest
// time constant, hence the sub-step count) is cached and recomputed only
// after a resistance change. Flux accumulation order matches the original
// edge-ordered implementation bit-for-bit, so refactors here are verifiable
// against recorded trajectories.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace thermctl::thermal {

/// Handle to a network node.
struct NodeId {
  std::size_t index = 0;
  friend constexpr bool operator==(NodeId, NodeId) = default;
};

/// Handle to a network edge (thermal resistance between two nodes).
struct EdgeId {
  std::size_t index = 0;
  friend constexpr bool operator==(EdgeId, EdgeId) = default;
};

class RcNetwork {
 public:
  /// Adds a dynamic node with heat capacity `c` and initial temperature `t0`.
  NodeId add_node(std::string name, JoulesPerKelvin c, Celsius t0);

  /// Adds a fixed-temperature boundary node (e.g. ambient air).
  NodeId add_fixed_node(std::string name, Celsius t);

  /// Connects two nodes with thermal resistance `r` (> 0).
  EdgeId add_edge(NodeId a, NodeId b, KelvinPerWatt r);

  /// Updates an edge's resistance (fan-dependent convection). Cheap: the
  /// flattened adjacency is patched in place; only the cached stability
  /// bound is invalidated, and only when the value actually changed.
  void set_resistance(EdgeId e, KelvinPerWatt r);
  [[nodiscard]] KelvinPerWatt resistance(EdgeId e) const;

  /// Sets the power injected into a dynamic node for the next step(s).
  void set_power(NodeId n, Watts p) {
    THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
    THERMCTL_ASSERT(!nodes_[n.index].fixed, "cannot inject power into a fixed node");
    nodes_[n.index].power = p.value();
  }
  [[nodiscard]] Watts power(NodeId n) const;

  /// Overrides a fixed node's boundary temperature (ambient drift, hot spots).
  void set_fixed_temperature(NodeId n, Celsius t);

  /// Forces a dynamic node's state (initialization / steady-state priming).
  void set_temperature(NodeId n, Celsius t);

  [[nodiscard]] Celsius temperature(NodeId n) const {
    THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
    return Celsius{nodes_[n.index].temperature};
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId n) const;

  // ---- structure introspection (used by RcBatch to lift homogeneous
  // networks into a shared-topology SoA batch) ----
  [[nodiscard]] bool is_fixed(NodeId n) const {
    THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
    return nodes_[n.index].fixed;
  }
  [[nodiscard]] JoulesPerKelvin capacitance(NodeId n) const {
    THERMCTL_ASSERT(n.index < nodes_.size(), "node out of range");
    return JoulesPerKelvin{nodes_[n.index].capacitance};
  }
  /// The two endpoints of edge `e`, in insertion (a, b) order.
  [[nodiscard]] std::pair<NodeId, NodeId> edge_nodes(EdgeId e) const {
    THERMCTL_ASSERT(e.index < edges_.size(), "edge out of range");
    return {NodeId{edges_[e.index].a}, NodeId{edges_[e.index].b}};
  }
  /// Raw stored conductance (1/R, W/K) of edge `e`. RcBatch replicates state
  /// through this instead of resistance() because the double reciprocal
  /// round-trip 1/(1/g) is not bitwise lossless for every g.
  [[nodiscard]] double edge_conductance(EdgeId e) const {
    THERMCTL_ASSERT(e.index < edges_.size(), "edge out of range");
    return edges_[e.index].conductance;
  }

  /// Advances the network by `dt`, sub-stepping internally for stability.
  void step(Seconds dt);

  /// Solves for the steady state under the current powers/resistances by
  /// fixed-point iteration, and writes it into the node temperatures. Used to
  /// prime experiments that start from thermal equilibrium (machine idling
  /// before the benchmark launches).
  void settle(int max_iterations = 200000, double tolerance_kelvin = 1e-7);

  /// Smallest dynamic-node time constant under current resistances; the
  /// stability bound the sub-stepper enforces against.
  [[nodiscard]] Seconds min_time_constant() const;

 private:
  struct Node {
    std::string name;
    double capacitance = 0.0;  // J/K; 0 marks a fixed node
    double temperature = 0.0;  // degC
    double power = 0.0;        // W
    bool fixed = false;
  };
  struct Edge {
    std::size_t a = 0;
    std::size_t b = 0;
    double conductance = 0.0;  // W/K
  };

  void euler_substep(double dt);
  /// Rebuilds the CSR adjacency after a topology change (node/edge added).
  void ensure_adjacency() const;
  /// Recomputes and caches the smallest time constant if invalidated.
  void ensure_min_tau() const;

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<double> flux_;  // scratch: net heat into each node (W)

  // CSR adjacency: node i's incident half-edges occupy
  // [csr_offset_[i], csr_offset_[i+1]) of csr_neighbor_/csr_conductance_,
  // in edge-insertion order (which keeps flux summation order identical to
  // the edge-list formulation). edge_slots_ maps an edge to its two
  // half-edge slots so set_resistance() can patch without a rebuild.
  mutable std::vector<std::size_t> csr_offset_;
  mutable std::vector<std::size_t> csr_neighbor_;
  mutable std::vector<double> csr_conductance_;
  mutable std::vector<std::pair<std::size_t, std::size_t>> edge_slots_;
  mutable std::vector<double> node_conductance_;  // scratch for min-tau scan
  mutable double min_tau_ = 0.0;
  mutable bool adjacency_dirty_ = true;
  mutable bool min_tau_dirty_ = true;

  // Sub-step plan cache: valid while min_tau_ and the requested dt hold.
  double cached_dt_ = -1.0;
  int cached_substeps_ = 1;
};

}  // namespace thermctl::thermal
