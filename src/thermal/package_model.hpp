// CPU package thermal model: die → heatsink → ambient.
//
// A three-node RC instantiation tuned to reproduce the thermal envelope the
// paper reports for its AMD Athlon64 4000+ nodes: idle die temperatures just
// below the static fan curve's Tmin (38 °C), sustained full-power temperatures
// in the 50–70 °C band depending on fan speed, die time constants of a few
// seconds (the "sudden" behaviour of Fig. 2) and heatsink time constants of
// tens of seconds (the "gradual" behaviour).
#pragma once

#include "common/units.hpp"
#include "thermal/convection.hpp"
#include "thermal/rc_network.hpp"

namespace thermctl::thermal {

struct PackageParams {
  /// Die + integrated heat spreader lumped capacitance (die transient of a
  /// couple of seconds — the Fig. 2 "sudden" timescale).
  JoulesPerKelvin c_die{22.0};
  /// Heatsink mass capacitance (minute-scale drift — the "gradual"
  /// timescale).
  JoulesPerKelvin c_heatsink{150.0};
  /// Die-to-heatsink (TIM + spreader) resistance; sets the instantaneous die
  /// jump on a load step (~6 °C at cpu-burn power).
  KelvinPerWatt r_die_heatsink{0.10};
  /// Chassis/inlet air temperature seen by the heatsink.
  Celsius ambient{29.5};
  ConvectionParams convection{};
};

/// Owns an RcNetwork wired as die—heatsink—ambient with fan-speed-dependent
/// convection on the heatsink-ambient edge.
class PackageModel {
 public:
  explicit PackageModel(const PackageParams& params);

  /// Power dissipated in the die for subsequent steps.
  void set_cpu_power(Watts p) { net_.set_power(die_, p); }
  /// Airflow delivered by the fan across the heatsink. The convection power
  /// law is only re-evaluated when the airflow actually moved — the fan's
  /// rotor settles between duty changes, making steady steps free.
  void set_airflow(Cfm v) {
    if (airflow_set_ && v.value() == airflow_.value()) {
      return;
    }
    airflow_ = v;
    airflow_set_ = true;
    net_.set_resistance(hs_amb_edge_, convection_.resistance(v));
  }
  /// Chassis inlet temperature (hot-spot / HVAC scenarios).
  void set_ambient(Celsius t);

  void step(Seconds dt) { net_.step(dt); }

  /// Primes the model at equilibrium for the current power/airflow.
  void settle() { net_.settle(); }

  [[nodiscard]] Celsius die_temperature() const { return net_.temperature(die_); }
  [[nodiscard]] Celsius heatsink_temperature() const { return net_.temperature(heatsink_); }
  [[nodiscard]] Celsius ambient_temperature() const { return net_.temperature(ambient_); }
  [[nodiscard]] Cfm airflow() const { return airflow_; }
  [[nodiscard]] Watts cpu_power() const;

  /// Steady-state die temperature for a hypothetical (power, airflow) point —
  /// the analytic solution of the two-resistor chain. Useful for calibration
  /// and for the model-validation tests.
  [[nodiscard]] Celsius steady_state_die(Watts p, Cfm v) const;

  [[nodiscard]] const PackageParams& params() const { return params_; }

 private:
  PackageParams params_;
  ConvectionModel convection_;
  RcNetwork net_;
  NodeId die_{};
  NodeId heatsink_{};
  NodeId ambient_{};
  EdgeId die_hs_edge_{};
  EdgeId hs_amb_edge_{};
  Cfm airflow_{0.0};
  bool airflow_set_ = false;
};

}  // namespace thermctl::thermal
