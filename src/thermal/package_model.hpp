// CPU package thermal model: die → heatsink → ambient.
//
// A three-node RC instantiation tuned to reproduce the thermal envelope the
// paper reports for its AMD Athlon64 4000+ nodes: idle die temperatures just
// below the static fan curve's Tmin (38 °C), sustained full-power temperatures
// in the 50–70 °C band depending on fan speed, die time constants of a few
// seconds (the "sudden" behaviour of Fig. 2) and heatsink time constants of
// tens of seconds (the "gradual" behaviour).
#pragma once

#include <cstdint>
#include <memory>

#include "common/units.hpp"
#include "thermal/convection.hpp"
#include "thermal/rc_batch.hpp"
#include "thermal/rc_network.hpp"

namespace thermctl::thermal {

struct PackageParams {
  /// Die + integrated heat spreader lumped capacitance (die transient of a
  /// couple of seconds — the Fig. 2 "sudden" timescale).
  JoulesPerKelvin c_die{22.0};
  /// Heatsink mass capacitance (minute-scale drift — the "gradual"
  /// timescale).
  JoulesPerKelvin c_heatsink{150.0};
  /// Die-to-heatsink (TIM + spreader) resistance; sets the instantaneous die
  /// jump on a load step (~6 °C at cpu-burn power).
  KelvinPerWatt r_die_heatsink{0.10};
  /// Chassis/inlet air temperature seen by the heatsink.
  Celsius ambient{29.5};
  ConvectionParams convection{};
};

/// Handles into the die—heatsink—ambient wiring shared by the standalone
/// network and the fleet batch (identical build order ⇒ identical ids).
struct PackageWiring {
  NodeId die{};
  NodeId heatsink{};
  NodeId ambient{};
  EdgeId die_hs{};
  EdgeId hs_amb{};
};

/// The die—heatsink—ambient RC model with fan-speed-dependent convection on
/// the heatsink-ambient edge.
///
/// Two backends share one API: a standalone PackageModel owns its own
/// RcNetwork (the historical layout — tests and one-off rigs use it), while a
/// fleet-backed PackageModel is a *view* onto one instance column of an
/// RcBatch built from the same wiring. Trajectories are bit-identical either
/// way (RcBatch's contract), so callers never need to know which backend
/// they're on.
class PackageModel {
 public:
  explicit PackageModel(const PackageParams& params);
  /// Fleet-backed view onto instance `slot` of `batch`. The batch must have
  /// been built from `wire_network(params, ...)` so the wiring ids line up.
  PackageModel(const PackageParams& params, RcBatch& batch, std::size_t slot);

  // The airflow memo may be rebound into fleet-owned SoA arrays
  // (bind_airflow_memo), so the model must not be duplicated with pointers
  // into the old storage. Callers build packages in place (prvalue
  // construction elides; no move needed).
  PackageModel(const PackageModel&) = delete;
  PackageModel& operator=(const PackageModel&) = delete;

  /// Builds the three-node chain into `net` (initial temperatures at
  /// ambient, still-air convection) and returns the handles. Both the
  /// standalone backend and FleetState's batch template go through here, so
  /// the two layouts start from bitwise-identical state.
  static PackageWiring wire_network(const PackageParams& params, RcNetwork& net);

  /// Power dissipated in the die for subsequent steps.
  void set_cpu_power(Watts p) {
    if (die_power_cell_ != nullptr) {
      *die_power_cell_ = p.value();  // == batch set_power: a plain cell write
    } else {
      net_->set_power(wiring_.die, p);
    }
  }
  /// Airflow delivered by the fan across the heatsink. The convection power
  /// law is only re-evaluated when the airflow actually moved — the fan's
  /// rotor settles between duty changes, making steady steps free.
  void set_airflow(Cfm v) {
    if (*airflow_set_ != 0 && v.value() == *airflow_cfm_) {
      return;
    }
    *airflow_cfm_ = v.value();
    *airflow_set_ = 1;
    const KelvinPerWatt r = convection_.resistance(v);
    if (batch_ != nullptr) {
      batch_->set_resistance(slot_, wiring_.hs_amb, r);
    } else {
      net_->set_resistance(wiring_.hs_amb, r);
    }
  }
  /// Chassis inlet temperature (hot-spot / HVAC scenarios).
  void set_ambient(Celsius t);

  /// Advances this package only. Fleet-backed packages are normally advanced
  /// en masse via RcBatch::step_range by the engine; stepping one instance
  /// here is the same arithmetic on one column.
  void step(Seconds dt) {
    if (batch_ != nullptr) {
      batch_->step_one(slot_, dt);
    } else {
      net_->step(dt);
    }
  }

  /// Primes the model at equilibrium for the current power/airflow.
  void settle() {
    if (batch_ != nullptr) {
      batch_->settle(slot_);
    } else {
      net_->settle();
    }
  }

  [[nodiscard]] Celsius die_temperature() const {
    // Hottest read in the simulator (several per node per step); the fleet
    // backend resolves to a cached cell pointer bound at construction.
    return die_temp_cell_ != nullptr ? Celsius{*die_temp_cell_} : net_->temperature(wiring_.die);
  }
  [[nodiscard]] Celsius heatsink_temperature() const { return temperature(wiring_.heatsink); }
  [[nodiscard]] Celsius ambient_temperature() const { return temperature(wiring_.ambient); }
  [[nodiscard]] Cfm airflow() const { return Cfm{*airflow_cfm_}; }
  [[nodiscard]] Watts cpu_power() const;

  /// Steady-state die temperature for a hypothetical (power, airflow) point —
  /// the analytic solution of the two-resistor chain. Useful for calibration
  /// and for the model-validation tests.
  [[nodiscard]] Celsius steady_state_die(Watts p, Cfm v) const;

  [[nodiscard]] const PackageParams& params() const { return params_; }
  /// True when this package is a view onto a FleetState batch column.
  [[nodiscard]] bool fleet_backed() const { return batch_ != nullptr; }

  /// Rebinds the airflow memo (last applied CFM + applied flag) onto
  /// external storage — FleetState SoA slots — so the fleet sweep can run
  /// the same skip-if-unchanged test over contiguous arrays. Current values
  /// carry over.
  void bind_airflow_memo(double* airflow_cfm, std::uint8_t* airflow_set) {
    *airflow_cfm = *airflow_cfm_;
    *airflow_set = *airflow_set_;
    airflow_cfm_ = airflow_cfm;
    airflow_set_ = airflow_set;
  }

 private:
  [[nodiscard]] Celsius temperature(NodeId n) const {
    return batch_ != nullptr ? batch_->temperature(slot_, n) : net_->temperature(n);
  }

  PackageParams params_;
  ConvectionModel convection_;
  std::unique_ptr<RcNetwork> net_;  // standalone backend; null when batched
  RcBatch* batch_ = nullptr;        // fleet backend; null when standalone
  // Fleet-backend fast path: cells for this view's fixed (slot, node)
  // coordinates, validated once in the constructor (see RcBatch::power_cell).
  double* die_power_cell_ = nullptr;
  const double* die_temp_cell_ = nullptr;
  std::size_t slot_ = 0;
  PackageWiring wiring_{};
  // Airflow memo defaults to inline storage; bind_airflow_memo() repoints it
  // into FleetState SoA slots without changing behaviour.
  double airflow_cfm_storage_ = 0.0;
  std::uint8_t airflow_set_storage_ = 0;
  double* airflow_cfm_ = &airflow_cfm_storage_;
  std::uint8_t* airflow_set_ = &airflow_set_storage_;
};

}  // namespace thermctl::thermal
