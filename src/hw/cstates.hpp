// ACPI processor idle states (C-states) and forced-idle injection.
//
// §3.2.2 names "valid sleep states for ACPI-compatible system" as a third
// population for the thermal control array, alongside fan speeds and DVFS
// frequencies. The actuation mechanism for sleep-state thermal control on
// real systems is *idle injection* (Linux's intel_powerclamp): the OS
// forces the core into a chosen C-state for a duty-cycled fraction of each
// period, trading throughput for heat linearly.
//
// The model: a table of C-states with per-state power retention (C1 halts
// the clock, deeper states gate voltage and flush caches) and wake-up
// latency (which costs extra throughput at high injection rates).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace thermctl::hw {

struct CState {
  std::string name;
  /// Fraction of *dynamic* power still burned while resident (clock gating
  /// leaves ~0; shallow halt keeps caches snooping).
  double dynamic_retention = 0.0;
  /// Fraction of leakage power still burned (deep states gate voltage).
  double leakage_retention = 1.0;
  /// Wake-up latency per injection period (entry+exit, lost to execution).
  Seconds wakeup_latency{0.0};
};

/// Athlon64-era ladder: C1 (HLT), C1E (HLT + reduced LDT clock), C2 (stop
/// grant). Ordered shallow → deep: deeper saves more, wakes slower.
[[nodiscard]] std::vector<CState> default_cstates();

struct IdleInjectorParams {
  std::vector<CState> cstates = default_cstates();
  /// Injection period: one forced-idle pulse per period (powerclamp uses
  /// ~6 ms windows; we use a coarser 50 ms to match the physics step).
  Seconds period{0.05};
  /// Maximum legal injection fraction (powerclamp caps at 50%).
  double max_fraction = 0.5;
};

/// Duty-cycled forced idle on one CPU. The CpuDevice consults this to scale
/// its delivered work and power; the sysfs PowerClamp device drives it.
class IdleInjector {
 public:
  explicit IdleInjector(IdleInjectorParams params = {});

  // Mirrors may be rebound into fleet-owned SoA arrays (bind_state), so the
  // injector must not be duplicated with pointers into the old storage.
  IdleInjector(const IdleInjector&) = delete;
  IdleInjector& operator=(const IdleInjector&) = delete;

  [[nodiscard]] const std::vector<CState>& cstates() const { return params_.cstates; }
  [[nodiscard]] std::size_t cstate_count() const { return params_.cstates.size(); }

  /// Rebinds the injection mirrors (the three factors + the generation
  /// counter) onto external storage — the FleetState SoA arrays. The sweep
  /// multiplies the factor arrays into its power/throughput math every step;
  /// an inactive injector mirrors exact 1.0s, so the multiplications are
  /// bitwise no-ops and the batched path stays identical to the per-node
  /// one whether or not injection is in use.
  void bind_state(double* dynamic_factor, double* leakage_factor, double* throughput_factor,
                  std::uint64_t* generation) {
    *generation = *generation_;
    dyn_factor_ = dynamic_factor;
    leak_factor_ = leakage_factor;
    thr_factor_ = throughput_factor;
    generation_ = generation;
    refresh_mirrors();
  }

  /// Commands injection of `fraction` of each period spent in C-state
  /// `state` (0-based into cstates()). Fraction is clamped to
  /// [0, max_fraction]; state must be valid.
  void set_injection(double fraction, std::size_t state);
  void stop() {
    fraction_ = 0.0;
    ++*generation_;
    refresh_mirrors();
  }

  [[nodiscard]] double fraction() const { return fraction_; }
  [[nodiscard]] std::size_t state() const { return state_; }
  [[nodiscard]] bool active() const { return fraction_ > 0.0; }

  /// Fraction of nominal throughput delivered under the current injection:
  /// the idle slice itself plus the wake-up latency per period.
  [[nodiscard]] double throughput_factor() const;

  /// Multipliers applied to the CPU's dynamic / leakage power under the
  /// current injection (time-weighted between C0 and the chosen state).
  [[nodiscard]] double dynamic_power_factor() const;
  [[nodiscard]] double leakage_power_factor() const;

  [[nodiscard]] const IdleInjectorParams& params() const { return params_; }

  /// Bumped on every injection change; lets consumers (the CPU's power
  /// cache) detect staleness without comparing the full injection state.
  [[nodiscard]] std::uint64_t generation() const { return *generation_; }

 private:
  void refresh_mirrors() {
    *dyn_factor_ = dynamic_power_factor();
    *leak_factor_ = leakage_power_factor();
    *thr_factor_ = throughput_factor();
  }

  IdleInjectorParams params_;
  double fraction_ = 0.0;
  std::size_t state_ = 0;
  // Mirrors default to inline storage; bind_state() repoints them into
  // FleetState SoA slots without changing behaviour.
  double dyn_factor_storage_ = 1.0;
  double leak_factor_storage_ = 1.0;
  double thr_factor_storage_ = 1.0;
  std::uint64_t generation_storage_ = 0;
  double* dyn_factor_ = &dyn_factor_storage_;
  double* leak_factor_ = &leak_factor_storage_;
  double* thr_factor_ = &thr_factor_storage_;
  std::uint64_t* generation_ = &generation_storage_;
};

}  // namespace thermctl::hw
