#include "hw/i2c.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace thermctl::hw {

void I2cBus::attach(std::uint8_t address, I2cSlave* dev) {
  THERMCTL_ASSERT(dev != nullptr, "cannot attach null device");
  THERMCTL_ASSERT(address <= 0x7f, "7-bit address out of range");
  THERMCTL_ASSERT(!devices_.contains(address), "address already in use");
  devices_[address] = dev;
}

void I2cBus::detach(std::uint8_t address) { devices_.erase(address); }

void I2cBus::record(I2cTransaction t) {
  if (log_limit_ != 0 && log_.size() >= log_limit_) {
    // Evict at least one entry so a limit of 1 still caps the log.
    const std::size_t evict = std::max<std::size_t>(log_limit_ / 2, 1);
    log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(evict));
  }
  log_.push_back(t);
}

bool I2cBus::transfer_faulted() {
  if (transient_faults_ > 0) {
    --transient_faults_;
    return true;
  }
  return faulted_;
}

I2cStatus I2cBus::read_byte_data(std::uint8_t address, std::uint8_t reg, std::uint8_t& out) {
  I2cTransaction t{address, reg, 0, /*is_write=*/false, I2cStatus::kOk};
  if (transfer_faulted()) {
    t.status = I2cStatus::kBusFault;
  } else if (auto it = devices_.find(address); it == devices_.end()) {
    t.status = I2cStatus::kAddressNak;
  } else if (auto v = it->second->read_register(reg); !v.has_value()) {
    t.status = I2cStatus::kRegisterNak;
  } else {
    out = *v;
    t.value = *v;
  }
  record(t);
  return t.status;
}

I2cStatus I2cBus::write_byte_data(std::uint8_t address, std::uint8_t reg, std::uint8_t value) {
  I2cTransaction t{address, reg, value, /*is_write=*/true, I2cStatus::kOk};
  if (transfer_faulted()) {
    t.status = I2cStatus::kBusFault;
  } else if (auto it = devices_.find(address); it == devices_.end()) {
    t.status = I2cStatus::kAddressNak;
  } else if (!it->second->write_register(reg, value)) {
    t.status = I2cStatus::kRegisterNak;
  }
  record(t);
  return t.status;
}

}  // namespace thermctl::hw
