#include "hw/cstates.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace thermctl::hw {

std::vector<CState> default_cstates() {
  return {
      CState{"C1", 0.12, 1.00, Seconds{2e-6}},
      CState{"C1E", 0.06, 0.90, Seconds{10e-6}},
      CState{"C2", 0.02, 0.75, Seconds{100e-6}},
  };
}

IdleInjector::IdleInjector(IdleInjectorParams params) : params_(std::move(params)) {
  THERMCTL_ASSERT(!params_.cstates.empty(), "need at least one C-state");
  THERMCTL_ASSERT(params_.period.value() > 0.0, "injection period must be positive");
  THERMCTL_ASSERT(params_.max_fraction > 0.0 && params_.max_fraction <= 0.95,
                  "implausible max injection fraction");
  for (const CState& c : params_.cstates) {
    THERMCTL_ASSERT(c.dynamic_retention >= 0.0 && c.dynamic_retention <= 1.0,
                    "dynamic retention out of range");
    THERMCTL_ASSERT(c.leakage_retention >= 0.0 && c.leakage_retention <= 1.0,
                    "leakage retention out of range");
  }
}

void IdleInjector::set_injection(double fraction, std::size_t state) {
  THERMCTL_ASSERT(state < params_.cstates.size(), "C-state index out of range");
  fraction_ = std::clamp(fraction, 0.0, params_.max_fraction);
  state_ = state;
  ++*generation_;
  refresh_mirrors();
}

double IdleInjector::throughput_factor() const {
  if (fraction_ <= 0.0) {
    return 1.0;
  }
  const double wake_loss =
      params_.cstates[state_].wakeup_latency.value() / params_.period.value();
  return std::max(0.0, 1.0 - fraction_ - wake_loss);
}

double IdleInjector::dynamic_power_factor() const {
  if (fraction_ <= 0.0) {
    return 1.0;
  }
  const double retained = params_.cstates[state_].dynamic_retention;
  return (1.0 - fraction_) + fraction_ * retained;
}

double IdleInjector::leakage_power_factor() const {
  if (fraction_ <= 0.0) {
    return 1.0;
  }
  const double retained = params_.cstates[state_].leakage_retention;
  return (1.0 - fraction_) + fraction_ * retained;
}

}  // namespace thermctl::hw
