// Digital thermal sensor model.
//
// The controller never sees the true die temperature — it sees what the
// on-die diode + ADC report: a quantized, noisy, sample-and-hold value at a
// fixed rate (the paper samples at 4 Hz via lm-sensors). Quantization noise
// is precisely what produces the "jitter" (Type III) behaviour the two-level
// window must ignore, so the sensor model is load-bearing for the evaluation.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace thermctl::hw {

struct SensorParams {
  /// ADC step (lm-sensors k8temp exposes 1 °C; the ADT7467 remote channel
  /// resolves 0.25 °C — default to the finer one, experiments can coarsen).
  double quantization_degc = 0.25;
  /// Gaussian measurement noise before quantization (1 sigma).
  double noise_sigma_degc = 0.18;
  /// Fixed calibration offset.
  double offset_degc = 0.0;
};

class ThermalSensor {
 public:
  /// `source` returns the true temperature being measured.
  ThermalSensor(std::function<Celsius()> source, SensorParams params, Rng rng);

  // The held reading may be rebound into a fleet-owned SoA array
  // (bind_state), so the sensor must not be duplicated with a pointer into
  // the old storage.
  ThermalSensor(const ThermalSensor&) = delete;
  ThermalSensor& operator=(const ThermalSensor&) = delete;

  /// Rebinds the sample-and-hold register onto external storage — the
  /// FleetState SoA array of last sensor readings. The current value carries
  /// over.
  void bind_state(double* last_degc) {
    *last_degc = *last_;
    last_ = last_degc;
  }

  /// Takes a new reading (called on the sampling schedule) and returns it.
  Celsius sample();

  /// Most recent reading without resampling (sample-and-hold).
  [[nodiscard]] Celsius last_reading() const { return Celsius{*last_}; }

  /// True once at least one real reading exists. Before that,
  /// `last_reading()` is the constructed 0.0 °C placeholder — callers that
  /// can observe the sensor pre-settle should check this first.
  [[nodiscard]] bool ready() const { return has_reading_; }

  /// Fault injection: the sensor reports a frozen value until cleared. A
  /// fault injected before the first `sample()` does NOT freeze the 0.0 °C
  /// placeholder: the first sample still takes a real reading and sticks
  /// there (a frozen register holds its last conversion, not reset garbage).
  void inject_stuck_fault() { stuck_ = true; }
  void clear_fault() { stuck_ = false; }
  [[nodiscard]] bool faulted() const { return stuck_; }

  [[nodiscard]] const SensorParams& params() const { return params_; }

 private:
  std::function<Celsius()> source_;
  SensorParams params_;
  Rng rng_;
  // Sample-and-hold register: inline storage by default; bind_state()
  // repoints it into a FleetState SoA slot.
  double last_storage_ = 0.0;
  double* last_ = &last_storage_;
  bool stuck_ = false;
  bool has_reading_ = false;
};

}  // namespace thermctl::hw
