// DVFS-capable CPU device model.
//
// Models the evaluation platform's AMD Athlon64 4000+ : five P-states
// (2.4/2.2/2.0/1.8/1.0 GHz), per-state core voltage, and a power model with
// the structure the paper's argument relies on —
//
//   P = P_dyn + P_leak
//   P_dyn  = k_dyn * V^2 * f * activity      (activity tracks utilization)
//   P_leak = k_leak * V^2 * (1 + alpha*(T_die - T_ref))
//
// so that scaling frequency down reduces power super-linearly (via the
// accompanying voltage drop, the paper's "cubic" claim) while leakage couples
// power back to die temperature.
//
// Frequency transitions are not free: each one stalls execution briefly
// (voltage ramp) and is counted, because Table 1 scores governors by the
// number of transitions they inflict (a reliability proxy).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "hw/cstates.hpp"

namespace thermctl::hw {

/// One DVFS operating point.
struct PState {
  GigaHertz frequency{};
  Volts voltage{};
};

struct CpuParams {
  /// P-states in descending frequency order (index 0 = fastest). Defaults to
  /// the Athlon64 4000+ ladder from the paper with plausible VID voltages.
  std::vector<PState> pstates{
      {GigaHertz{2.4}, Volts{1.40}}, {GigaHertz{2.2}, Volts{1.325}},
      {GigaHertz{2.0}, Volts{1.25}}, {GigaHertz{1.8}, Volts{1.20}},
      {GigaHertz{1.0}, Volts{1.10}},
  };
  /// Dynamic power coefficient, W / (V^2 * GHz). 14.0 gives ~66 W of
  /// dynamic power flat-out at 2.4 GHz / 1.4 V (Athlon64 4000+ class).
  double k_dyn = 14.0;
  /// Leakage coefficient, W / V^2 (~ 5.6 W at 1.4 V and T_ref).
  double k_leak = 2.85;
  /// Leakage temperature sensitivity per kelvin above t_ref.
  double leakage_alpha = 0.012;
  Celsius t_ref{45.0};
  /// Floor activity when idle (OS housekeeping, clock tree).
  double idle_activity = 0.06;
  /// Execution stall per frequency transition (voltage ramp + relock).
  Seconds transition_stall{0.000150};
  /// ACPI idle-state ladder + injection mechanics (§3.2.2's third
  /// technique).
  IdleInjectorParams idle{};
};

/// External storage the CPU's hot state can be rebound onto (bind_state) —
/// one slot per field, pointing into FleetState's SoA arrays. The fleet
/// sweep reads/writes these arrays directly; the device keeps behaving
/// identically through its own API because both share the same storage.
struct CpuStateSlots {
  std::uint32_t* pstate = nullptr;
  double* utilization = nullptr;      // fraction
  double* die_temperature = nullptr;  // °C
  double* power_cache = nullptr;
  std::uint8_t* power_valid = nullptr;
  std::uint64_t* power_gen = nullptr;
  std::uint8_t* throttled = nullptr;
  std::uint64_t* transitions = nullptr;
  std::uint64_t* aperf = nullptr;
  std::uint64_t* mperf = nullptr;
  std::uint64_t* energy_uj = nullptr;
  double* aperf_frac = nullptr;
  double* mperf_frac = nullptr;
  double* energy_frac = nullptr;
  // Idle-injector mirrors (forwarded to IdleInjector::bind_state).
  double* inj_dynamic_factor = nullptr;
  double* inj_leakage_factor = nullptr;
  double* inj_throughput_factor = nullptr;
  std::uint64_t* inj_generation = nullptr;
};

class CpuDevice {
 public:
  explicit CpuDevice(CpuParams params = {});

  // Hot state may be rebound into fleet-owned SoA arrays (bind_state), so
  // the device must not be duplicated with pointers into the old storage.
  CpuDevice(const CpuDevice&) = delete;
  CpuDevice& operator=(const CpuDevice&) = delete;

  /// Rebinds every hot field (operating point, power memo, counter block,
  /// injector mirrors) onto external storage — the FleetState SoA arrays.
  /// Current values carry over; the device keeps behaving identically, it
  /// just keeps its hot state in the fleet arrays where the batched sweep
  /// can walk it contiguously.
  void bind_state(const CpuStateSlots& slots);

  [[nodiscard]] std::span<const PState> pstates() const { return params_.pstates; }
  [[nodiscard]] std::size_t pstate_count() const { return params_.pstates.size(); }

  /// Currently active P-state index (0 = fastest).
  [[nodiscard]] std::size_t pstate_index() const { return *pstate_; }
  [[nodiscard]] GigaHertz frequency() const { return params_.pstates[*pstate_].frequency; }
  [[nodiscard]] Volts voltage() const { return params_.pstates[*pstate_].voltage; }
  [[nodiscard]] GigaHertz max_frequency() const { return params_.pstates.front().frequency; }
  [[nodiscard]] GigaHertz min_frequency() const { return params_.pstates.back().frequency; }

  /// Requests a P-state switch; counts a transition when the index changes.
  void set_pstate(std::size_t index);

  /// Requests the P-state whose frequency is nearest `f`.
  void set_frequency(GigaHertz f);

  /// Hardware thermal throttle (PROCHOT#). While asserted the core clock is
  /// gated down to the slowest P-state frequency *without* changing the
  /// OS-visible P-state — exactly how real parts behave: cpufreq still
  /// reports the requested frequency, but work completes at the throttled
  /// rate. Not counted as a transition.
  void set_thermal_throttle(bool asserted) {
    *throttled_ = asserted ? 1 : 0;
    *power_valid_ = 0;
  }
  [[nodiscard]] bool thermal_throttled() const { return *throttled_ != 0; }

  /// Frequency actually delivered to execution (accounts for PROCHOT).
  [[nodiscard]] GigaHertz effective_frequency() const {
    return thermal_throttled() ? min_frequency() : frequency();
  }

  /// Instantaneous utilization imposed by the workload model.
  void set_utilization(Utilization u) {
    *utilization_ = u.fraction();
    *power_valid_ = 0;
  }
  [[nodiscard]] Utilization utilization() const { return Utilization{*utilization_}; }

  /// Die temperature feedback for the leakage term.
  void set_die_temperature(Celsius t) {
    *die_temperature_ = t.value();
    *power_valid_ = 0;
  }

  /// Instantaneous electrical power at the current operating point. The node
  /// reads it several times per physics step (package heat input, meter,
  /// counters), so the value is memoized until an input changes; injection
  /// changes are tracked through the injector's generation counter.
  [[nodiscard]] Watts power() const {
    if (*power_valid_ == 0 || *power_gen_ != idle_injector_.generation()) {
      recompute_power();
    }
    return Watts{*power_cache_};
  }

  /// Number of completed frequency transitions since construction.
  [[nodiscard]] std::uint64_t transition_count() const { return *transitions_; }

  /// Total execution stall accumulated from transitions.
  [[nodiscard]] Seconds transition_stall_total() const {
    return Seconds{static_cast<double>(*transitions_) * params_.transition_stall.value()};
  }

  /// Work executed during `dt` at the current frequency and utilization, in
  /// normalized units of GHz-seconds (cycles / 1e9). The workload model uses
  /// this to advance application progress. Accounts for PROCHOT throttling
  /// and forced-idle injection.
  [[nodiscard]] double work_capacity(Seconds dt) const {
    return effective_frequency().value() * *utilization_ * dt.value() *
           idle_injector_.throughput_factor();
  }

  /// The frequency the workload effectively progresses at, folding in both
  /// PROCHOT and idle injection — what the cluster engine feeds the app.
  [[nodiscard]] GigaHertz delivered_frequency() const {
    return GigaHertz{effective_frequency().value() * idle_injector_.throughput_factor()};
  }

  /// The ACPI idle-injection mechanism (sleep-state thermal control).
  [[nodiscard]] IdleInjector& idle_injector() { return idle_injector_; }
  [[nodiscard]] const IdleInjector& idle_injector() const { return idle_injector_; }

  // ---- hardware counters (the paper's future-work prediction inputs) ----

  /// Advances the counter block by `dt` at the current operating point.
  /// Called once per physics step by the owning node.
  void advance_counters(Seconds dt);

  /// APERF-style counter: cycles actually delivered (frequency, throttling,
  /// idle injection and utilization all fold in).
  [[nodiscard]] std::uint64_t aperf() const { return *aperf_; }

  /// MPERF-style counter: cycles at the nominal (max) frequency regardless
  /// of load — the time base. aperf/mperf deltas give delivered speed.
  [[nodiscard]] std::uint64_t mperf() const { return *mperf_; }

  /// RAPL-style accumulated package energy in microjoules.
  [[nodiscard]] std::uint64_t energy_uj() const { return *energy_uj_; }

  /// Overwrites the counter block (test / fault-injection hook) — e.g. to
  /// place the energy counter just below a RAPL wrap boundary so wraparound
  /// handling can be exercised without simulating hours of runtime.
  void preset_counters(std::uint64_t aperf, std::uint64_t mperf, std::uint64_t energy_uj) {
    *aperf_ = aperf;
    *mperf_ = mperf;
    *energy_uj_ = energy_uj;
    *aperf_frac_ = 0.0;
    *mperf_frac_ = 0.0;
    *energy_frac_ = 0.0;
  }

  [[nodiscard]] const CpuParams& params() const { return params_; }

 private:
  void recompute_power() const;

  CpuParams params_;
  IdleInjector idle_injector_;
  // Hot state defaults to inline storage; bind_state() repoints it into
  // FleetState SoA slots without changing behaviour.
  std::uint32_t pstate_storage_ = 0;
  double utilization_storage_ = 0.0;
  double die_temperature_storage_ = 40.0;
  double power_cache_storage_ = 0.0;
  std::uint8_t power_valid_storage_ = 0;
  std::uint64_t power_gen_storage_ = 0;
  std::uint8_t throttled_storage_ = 0;
  std::uint64_t transitions_storage_ = 0;
  std::uint64_t aperf_storage_ = 0;
  std::uint64_t mperf_storage_ = 0;
  std::uint64_t energy_uj_storage_ = 0;
  double aperf_frac_storage_ = 0.0;
  double mperf_frac_storage_ = 0.0;
  double energy_frac_storage_ = 0.0;
  std::uint32_t* pstate_ = &pstate_storage_;
  double* utilization_ = &utilization_storage_;
  double* die_temperature_ = &die_temperature_storage_;
  double* power_cache_ = &power_cache_storage_;
  std::uint8_t* power_valid_ = &power_valid_storage_;
  std::uint64_t* power_gen_ = &power_gen_storage_;
  std::uint8_t* throttled_ = &throttled_storage_;
  std::uint64_t* transitions_ = &transitions_storage_;
  std::uint64_t* aperf_ = &aperf_storage_;
  std::uint64_t* mperf_ = &mperf_storage_;
  std::uint64_t* energy_uj_ = &energy_uj_storage_;
  double* aperf_frac_ = &aperf_frac_storage_;
  double* mperf_frac_ = &mperf_frac_storage_;
  double* energy_frac_ = &energy_frac_storage_;
};

}  // namespace thermctl::hw
