#include "hw/cpu_device.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace thermctl::hw {

CpuDevice::CpuDevice(CpuParams params)
    : params_(std::move(params)), idle_injector_(params_.idle) {
  THERMCTL_ASSERT(!params_.pstates.empty(), "CPU needs at least one P-state");
  for (std::size_t i = 1; i < params_.pstates.size(); ++i) {
    THERMCTL_ASSERT(params_.pstates[i].frequency < params_.pstates[i - 1].frequency,
                    "P-states must be in descending frequency order");
  }
  THERMCTL_ASSERT(params_.k_dyn > 0.0 && params_.k_leak >= 0.0, "power coefficients invalid");
}

void CpuDevice::set_pstate(std::size_t index) {
  THERMCTL_ASSERT(index < params_.pstates.size(), "P-state index out of range");
  if (index != current_) {
    current_ = index;
    ++transitions_;
    power_valid_ = false;
  }
}

void CpuDevice::set_frequency(GigaHertz f) {
  std::size_t best = 0;
  double best_err = 1e30;
  for (std::size_t i = 0; i < params_.pstates.size(); ++i) {
    const double err = std::abs(params_.pstates[i].frequency.value() - f.value());
    if (err < best_err) {
      best_err = err;
      best = i;
    }
  }
  set_pstate(best);
}

void CpuDevice::recompute_power() const {
  const PState& ps = params_.pstates[current_];
  const double v2 = ps.voltage.value() * ps.voltage.value();
  const double activity =
      params_.idle_activity + (1.0 - params_.idle_activity) * utilization_.fraction();
  // PROCHOT clock-gates: dynamic power tracks the delivered (effective)
  // frequency while voltage stays at the OS-selected P-state. Forced-idle
  // injection scales both components by its per-C-state retention.
  const double p_dyn = params_.k_dyn * v2 * effective_frequency().value() * activity *
                       idle_injector_.dynamic_power_factor();
  const double p_leak =
      params_.k_leak * v2 *
      (1.0 + params_.leakage_alpha * (die_temperature_.value() - params_.t_ref.value())) *
      idle_injector_.leakage_power_factor();
  power_cache_ = p_dyn + std::max(0.0, p_leak);
  power_valid_ = true;
  power_injection_gen_ = idle_injector_.generation();
}

void CpuDevice::advance_counters(Seconds dt) {
  // Counters in units of 1e6 cycles / microjoules so 64 bits last for any
  // plausible simulation length.
  const double aperf_inc = work_capacity(dt) * 1e3;  // GHz-s -> Mcycles
  const double mperf_inc = max_frequency().value() * dt.value() * 1e3;
  const double energy_inc = power().value() * dt.value() * 1e6;  // J -> uJ

  aperf_frac_ += aperf_inc;
  mperf_frac_ += mperf_inc;
  energy_frac_ += energy_inc;
  const auto a = static_cast<std::uint64_t>(aperf_frac_);
  const auto m = static_cast<std::uint64_t>(mperf_frac_);
  const auto e = static_cast<std::uint64_t>(energy_frac_);
  aperf_ += a;
  mperf_ += m;
  energy_uj_ += e;
  aperf_frac_ -= static_cast<double>(a);
  mperf_frac_ -= static_cast<double>(m);
  energy_frac_ -= static_cast<double>(e);
}

}  // namespace thermctl::hw
