#include "hw/cpu_device.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace thermctl::hw {

CpuDevice::CpuDevice(CpuParams params)
    : params_(std::move(params)), idle_injector_(params_.idle) {
  THERMCTL_ASSERT(!params_.pstates.empty(), "CPU needs at least one P-state");
  for (std::size_t i = 1; i < params_.pstates.size(); ++i) {
    THERMCTL_ASSERT(params_.pstates[i].frequency < params_.pstates[i - 1].frequency,
                    "P-states must be in descending frequency order");
  }
  THERMCTL_ASSERT(params_.k_dyn > 0.0 && params_.k_leak >= 0.0, "power coefficients invalid");
}

void CpuDevice::bind_state(const CpuStateSlots& slots) {
  *slots.pstate = *pstate_;
  *slots.utilization = *utilization_;
  *slots.die_temperature = *die_temperature_;
  *slots.power_cache = *power_cache_;
  *slots.power_valid = *power_valid_;
  *slots.power_gen = *power_gen_;
  *slots.throttled = *throttled_;
  *slots.transitions = *transitions_;
  *slots.aperf = *aperf_;
  *slots.mperf = *mperf_;
  *slots.energy_uj = *energy_uj_;
  *slots.aperf_frac = *aperf_frac_;
  *slots.mperf_frac = *mperf_frac_;
  *slots.energy_frac = *energy_frac_;
  pstate_ = slots.pstate;
  utilization_ = slots.utilization;
  die_temperature_ = slots.die_temperature;
  power_cache_ = slots.power_cache;
  power_valid_ = slots.power_valid;
  power_gen_ = slots.power_gen;
  throttled_ = slots.throttled;
  transitions_ = slots.transitions;
  aperf_ = slots.aperf;
  mperf_ = slots.mperf;
  energy_uj_ = slots.energy_uj;
  aperf_frac_ = slots.aperf_frac;
  mperf_frac_ = slots.mperf_frac;
  energy_frac_ = slots.energy_frac;
  idle_injector_.bind_state(slots.inj_dynamic_factor, slots.inj_leakage_factor,
                            slots.inj_throughput_factor, slots.inj_generation);
}

void CpuDevice::set_pstate(std::size_t index) {
  THERMCTL_ASSERT(index < params_.pstates.size(), "P-state index out of range");
  if (index != *pstate_) {
    *pstate_ = static_cast<std::uint32_t>(index);
    ++*transitions_;
    *power_valid_ = 0;
  }
}

void CpuDevice::set_frequency(GigaHertz f) {
  std::size_t best = 0;
  double best_err = 1e30;
  for (std::size_t i = 0; i < params_.pstates.size(); ++i) {
    const double err = std::abs(params_.pstates[i].frequency.value() - f.value());
    if (err < best_err) {
      best_err = err;
      best = i;
    }
  }
  set_pstate(best);
}

void CpuDevice::recompute_power() const {
  const PState& ps = params_.pstates[*pstate_];
  const double v2 = ps.voltage.value() * ps.voltage.value();
  const double activity =
      params_.idle_activity + (1.0 - params_.idle_activity) * *utilization_;
  // PROCHOT clock-gates: dynamic power tracks the delivered (effective)
  // frequency while voltage stays at the OS-selected P-state. Forced-idle
  // injection scales both components by its per-C-state retention.
  const double p_dyn = params_.k_dyn * v2 * effective_frequency().value() * activity *
                       idle_injector_.dynamic_power_factor();
  const double p_leak =
      params_.k_leak * v2 *
      (1.0 + params_.leakage_alpha * (*die_temperature_ - params_.t_ref.value())) *
      idle_injector_.leakage_power_factor();
  *power_cache_ = p_dyn + std::max(0.0, p_leak);
  *power_valid_ = 1;
  *power_gen_ = idle_injector_.generation();
}

void CpuDevice::advance_counters(Seconds dt) {
  // Counters in units of 1e6 cycles / microjoules so 64 bits last for any
  // plausible simulation length.
  const double aperf_inc = work_capacity(dt) * 1e3;  // GHz-s -> Mcycles
  const double mperf_inc = max_frequency().value() * dt.value() * 1e3;
  const double energy_inc = power().value() * dt.value() * 1e6;  // J -> uJ

  *aperf_frac_ += aperf_inc;
  *mperf_frac_ += mperf_inc;
  *energy_frac_ += energy_inc;
  const auto a = static_cast<std::uint64_t>(*aperf_frac_);
  const auto m = static_cast<std::uint64_t>(*mperf_frac_);
  const auto e = static_cast<std::uint64_t>(*energy_frac_);
  *aperf_ += a;
  *mperf_ += m;
  *energy_uj_ += e;
  *aperf_frac_ -= static_cast<double>(a);
  *mperf_frac_ -= static_cast<double>(m);
  *energy_frac_ -= static_cast<double>(e);
}

}  // namespace thermctl::hw
