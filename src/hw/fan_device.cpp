#include "hw/fan_device.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace thermctl::hw {

FanDevice::FanDevice(FanParams params) : params_(params) {
  THERMCTL_ASSERT(params_.max_rpm.value() > 0.0, "fan max RPM must be positive");
  THERMCTL_ASSERT(params_.rotor_tau.value() > 0.0, "rotor time constant must be positive");
}

void FanDevice::set_duty(DutyCycle duty) { duty_ = duty; }

Rpm FanDevice::target_rpm(DutyCycle duty) const {
  if (duty.percent() < params_.stall_duty.percent()) {
    return Rpm{0.0};
  }
  // Linear from the stall point up to max RPM at 100% duty.
  const double span = 100.0 - params_.stall_duty.percent();
  const double frac = (duty.percent() - params_.stall_duty.percent()) / span;
  // Real fans keep spinning slowly right at the stall threshold; give the
  // curve a floor of 15% RPM at the threshold for continuity with datasheet
  // minimum-speed specs.
  const double min_frac = 0.15;
  return Rpm{params_.max_rpm.value() * (min_frac + (1.0 - min_frac) * frac)};
}

void FanDevice::step(Seconds dt) {
  THERMCTL_ASSERT(dt.value() > 0.0, "step duration must be positive");
  const double target = stuck_ ? 0.0 : target_rpm(duty_).value();
  // First-order lag: exact discrete update, stable for any dt.
  const double alpha = 1.0 - std::exp(-dt.value() / params_.rotor_tau.value());
  rpm_ += (target - rpm_) * alpha;
  if (rpm_ < 1.0 && target == 0.0) {
    rpm_ = 0.0;
  }
}

Cfm FanDevice::airflow() const {
  return Cfm{params_.max_airflow.value() * rpm_ / params_.max_rpm.value()};
}

Watts FanDevice::power() const {
  const double frac = rpm_ / params_.max_rpm.value();
  return Watts{params_.idle_power.value() + params_.max_power.value() * frac * frac * frac};
}

}  // namespace thermctl::hw
