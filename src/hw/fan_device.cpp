#include "hw/fan_device.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace thermctl::hw {

FanDevice::FanDevice(FanParams params) : params_(params) {
  THERMCTL_ASSERT(params_.max_rpm.value() > 0.0, "fan max RPM must be positive");
  THERMCTL_ASSERT(params_.rotor_tau.value() > 0.0, "rotor time constant must be positive");
}

void FanDevice::recompute_alpha(Seconds dt) {
  THERMCTL_ASSERT(dt.value() > 0.0, "step duration must be positive");
  alpha_ = 1.0 - std::exp(-dt.value() / params_.rotor_tau.value());
  alpha_dt_ = dt.value();
}

}  // namespace thermctl::hw
