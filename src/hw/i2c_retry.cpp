#include "hw/i2c_retry.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace thermctl::hw {

RetryingI2cMaster::RetryingI2cMaster(I2cBus& bus, I2cRetryConfig config)
    : bus_(bus), config_(config) {
  THERMCTL_ASSERT(config_.max_attempts >= 1, "need at least one attempt");
}

bool RetryingI2cMaster::retryable(I2cStatus status) {
  return status == I2cStatus::kBusFault || status == I2cStatus::kAddressNak;
}

bool RetryingI2cMaster::note_attempt(I2cErrorStats& s, I2cStatus status, int attempt) {
  switch (status) {
    case I2cStatus::kOk:
      return false;
    case I2cStatus::kAddressNak:
      ++s.naks;
      break;
    case I2cStatus::kRegisterNak:
      ++s.register_naks;
      break;
    case I2cStatus::kBusFault:
      ++s.bus_faults;
      break;
  }
  if (!retryable(status) || attempt + 1 >= config_.max_attempts) {
    ++s.exhausted;
    THERMCTL_TRACE_EMIT(trace_, (obs::TraceEvent{.type = obs::TraceEventType::kI2cExhausted,
                                                 .subsystem = obs::TraceSubsystem::kI2c,
                                                 .i0 = attempt,
                                                 .i1 = static_cast<std::int64_t>(status)}));
    return false;
  }
  ++s.retries;
  // Capped exponential backoff: base, 2*base, 4*base, ... (accounted, not
  // slept — the simulation has no wall clock to block).
  const std::uint64_t shift = static_cast<std::uint64_t>(attempt);
  std::uint64_t delay = shift < 63 ? config_.base_backoff_us << shift : config_.max_backoff_us;
  delay = std::min(delay, config_.max_backoff_us);
  s.backoff_us += delay;
  THERMCTL_TRACE_EMIT(trace_, (obs::TraceEvent{.type = obs::TraceEventType::kI2cRetry,
                                               .subsystem = obs::TraceSubsystem::kI2c,
                                               .i0 = attempt,
                                               .i1 = static_cast<std::int64_t>(status),
                                               .a = static_cast<double>(delay)}));
  return true;
}

I2cStatus RetryingI2cMaster::read_byte_data(std::uint8_t address, std::uint8_t reg,
                                            std::uint8_t& out) {
  I2cErrorStats& s = stats_[address];
  ++s.transfers;
  I2cStatus status = I2cStatus::kOk;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    status = bus_.read_byte_data(address, reg, out);
    if (!note_attempt(s, status, attempt)) {
      break;
    }
  }
  return status;
}

I2cStatus RetryingI2cMaster::write_byte_data(std::uint8_t address, std::uint8_t reg,
                                             std::uint8_t value) {
  I2cErrorStats& s = stats_[address];
  ++s.transfers;
  I2cStatus status = I2cStatus::kOk;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    status = bus_.write_byte_data(address, reg, value);
    if (!note_attempt(s, status, attempt)) {
      break;
    }
  }
  return status;
}

const I2cErrorStats& RetryingI2cMaster::stats(std::uint8_t address) const {
  static const I2cErrorStats kEmpty{};
  auto it = stats_.find(address);
  return it == stats_.end() ? kEmpty : it->second;
}

I2cErrorStats RetryingI2cMaster::total() const {
  I2cErrorStats sum;
  for (const auto& [addr, s] : stats_) {
    sum += s;
  }
  return sum;
}

}  // namespace thermctl::hw
