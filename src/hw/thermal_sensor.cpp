#include "hw/thermal_sensor.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace thermctl::hw {

ThermalSensor::ThermalSensor(std::function<Celsius()> source, SensorParams params, Rng rng)
    : source_(std::move(source)), params_(params), rng_(rng) {
  THERMCTL_ASSERT(static_cast<bool>(source_), "sensor needs a source");
  THERMCTL_ASSERT(params_.quantization_degc > 0.0, "quantization step must be positive");
  THERMCTL_ASSERT(params_.noise_sigma_degc >= 0.0, "noise sigma must be non-negative");
}

Celsius ThermalSensor::sample() {
  if (stuck_ && has_reading_) {
    return Celsius{*last_};
  }
  double v = source_().value() + params_.offset_degc;
  if (params_.noise_sigma_degc > 0.0) {
    v += rng_.normal(0.0, params_.noise_sigma_degc);
  }
  const double q = params_.quantization_degc;
  v = std::round(v / q) * q;
  *last_ = v;
  has_reading_ = true;
  return Celsius{v};
}

}  // namespace thermctl::hw
