// Retry-with-bounded-backoff wrapper around the i2c bus.
//
// Real SMBus links drop transfers: electrical glitches surface as bus faults,
// a busy or resetting device NAKs its own address. Production drivers
// (i2c-core's adapter retries, lm-sensors fault paths) retry such transfers a
// bounded number of times with a short backoff before reporting failure
// upward. This wrapper gives the simulated ADT7467 driver the same posture:
// transient faults are absorbed inside one transfer call, persistent faults
// exhaust the budget and fail fast, and every outcome is counted per device
// so fault-event totals can flow into the cluster metrics.
#pragma once

#include <cstdint>
#include <map>

#include "hw/i2c.hpp"
#include "obs/trace.hpp"

namespace thermctl::hw {

struct I2cRetryConfig {
  /// Total attempts per transfer (first try included). 1 disables retry.
  int max_attempts = 3;
  /// Backoff before the first retry; doubles each further retry.
  std::uint64_t base_backoff_us = 100;
  /// Cap on any single backoff interval.
  std::uint64_t max_backoff_us = 2000;
};

/// Per-device (and aggregate) transfer outcome counters.
struct I2cErrorStats {
  std::uint64_t transfers = 0;      // transfer calls (not attempts)
  std::uint64_t retries = 0;        // extra attempts beyond the first
  std::uint64_t naks = 0;           // address-NAK attempt outcomes
  std::uint64_t register_naks = 0;  // register-NAK outcomes (never retried)
  std::uint64_t bus_faults = 0;     // bus-fault attempt outcomes
  std::uint64_t exhausted = 0;      // transfers that failed after all attempts
  std::uint64_t backoff_us = 0;     // total backoff delay accounted

  I2cErrorStats& operator+=(const I2cErrorStats& o) {
    transfers += o.transfers;
    retries += o.retries;
    naks += o.naks;
    register_naks += o.register_naks;
    bus_faults += o.bus_faults;
    exhausted += o.exhausted;
    backoff_us += o.backoff_us;
    return *this;
  }
};

class RetryingI2cMaster {
 public:
  explicit RetryingI2cMaster(I2cBus& bus, I2cRetryConfig config = {});

  /// SMBus transfers with the retry budget applied. On failure `out` is left
  /// untouched (same contract as the raw bus).
  I2cStatus read_byte_data(std::uint8_t address, std::uint8_t reg, std::uint8_t& out);
  I2cStatus write_byte_data(std::uint8_t address, std::uint8_t reg, std::uint8_t value);

  [[nodiscard]] const I2cErrorStats& stats(std::uint8_t address) const;
  /// Aggregate over every device this master has talked to.
  [[nodiscard]] I2cErrorStats total() const;

  [[nodiscard]] const I2cRetryConfig& config() const { return config_; }
  [[nodiscard]] I2cBus& bus() { return bus_; }

  /// Attaches a decision-trace ring (nullptr detaches). Retried attempts and
  /// exhausted transfers are then emitted with the ring's current sim time —
  /// the bus has no clock of its own, so whoever drives the node's timeline
  /// keeps the ring's clock fresh (controllers do, on every tick).
  void set_trace(obs::TraceRing* trace) { trace_ = trace; }

 private:
  /// True when `status` is worth another attempt: bus faults and address
  /// NAKs look transient; a register NAK is a deterministic protocol
  /// rejection and retrying it would just repeat the answer.
  static bool retryable(I2cStatus status);

  /// Tracks the outcome of one attempt and, for retryable failures with
  /// budget left, accounts the capped-exponential backoff. Returns true when
  /// another attempt should be made.
  bool note_attempt(I2cErrorStats& s, I2cStatus status, int attempt);

  I2cBus& bus_;
  I2cRetryConfig config_;
  std::map<std::uint8_t, I2cErrorStats> stats_;
  obs::TraceRing* trace_ = nullptr;
};

}  // namespace thermctl::hw
