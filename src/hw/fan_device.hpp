// PWM-controlled cooling fan model.
//
// Reproduces the out-of-band actuator of the paper's platform: a CPU fan with
// a 4300 RPM ceiling whose speed is commanded through a PWM duty cycle
// (Fig. 1). The model captures the properties the experiments depend on:
//
//  * PWM→RPM: linear above a stall threshold (a real fan does not spin below
//    a few percent duty).
//  * Rotor inertia: RPM follows the command with a first-order lag, so fan
//    response is fast (~1 s) but not instantaneous.
//  * Airflow ∝ RPM (fan laws), feeding the convection model.
//  * Electrical power ∝ RPM^3 (fan affinity laws) — the cost side of
//    aggressive fan policies in Figs. 5–7.
//  * Failure injection: a stuck rotor for the emergency scenarios.
#pragma once

#include <cstdint>
#include <limits>

#include "common/units.hpp"

namespace thermctl::hw {

struct FanParams {
  Rpm max_rpm{4300.0};
  /// Duty below which the rotor stalls (no rotation).
  DutyCycle stall_duty{4.0};
  /// Airflow at max RPM.
  Cfm max_airflow{32.0};
  /// Electrical power at max RPM (affinity-law cubic from here).
  Watts max_power{5.5};
  /// Standby electronics draw even when stalled.
  Watts idle_power{0.2};
  /// Rotor spin-up/down time constant.
  Seconds rotor_tau{0.8};
};

class FanDevice {
 public:
  explicit FanDevice(FanParams params = {});

  // Duty and RPM may be rebound into fleet-owned SoA arrays (bind_state), so
  // the device must not be duplicated with pointers into the old storage.
  FanDevice(const FanDevice&) = delete;
  FanDevice& operator=(const FanDevice&) = delete;

  /// Rebinds the rotor state (duty %, RPM, stuck flag) onto external
  /// storage — the FleetState SoA arrays. Current values carry over; the
  /// device keeps behaving identically, it just keeps its hot state in the
  /// fleet arrays.
  void bind_state(double* duty_pct, double* rpm, std::uint8_t* stuck) {
    *duty_pct = *duty_pct_;
    *rpm = *rpm_;
    *stuck = *stuck_;
    duty_pct_ = duty_pct;
    rpm_ = rpm;
    stuck_ = stuck;
  }

  /// Commands a PWM duty cycle; takes effect through the rotor lag.
  void set_duty(DutyCycle duty) { *duty_pct_ = duty.percent(); }
  [[nodiscard]] DutyCycle duty() const { return DutyCycle{*duty_pct_}; }

  /// Advances rotor dynamics. First-order lag via the exact discrete update;
  /// the exponential smoothing factor only depends on dt, which the engine
  /// holds constant, so it is cached rather than recomputed per step.
  void step(Seconds dt) {
    const double target = (*stuck_ != 0) ? 0.0 : target_rpm(duty()).value();
    if (dt.value() != alpha_dt_) {
      recompute_alpha(dt);
    }
    *rpm_ += (target - *rpm_) * alpha_;
    if (*rpm_ < 1.0 && target == 0.0) {
      *rpm_ = 0.0;
    }
  }

  [[nodiscard]] Rpm rpm() const { return Rpm{*rpm_}; }
  [[nodiscard]] Cfm airflow() const {
    return Cfm{params_.max_airflow.value() * *rpm_ / params_.max_rpm.value()};
  }
  [[nodiscard]] Watts power() const {
    const double frac = *rpm_ / params_.max_rpm.value();
    return Watts{params_.idle_power.value() + params_.max_power.value() * frac * frac * frac};
  }

  /// Steady-state RPM for a duty command (the rotor lag's fixed point):
  /// linear from the stall point up to max RPM at 100% duty. Real fans keep
  /// spinning slowly right at the stall threshold; the curve has a floor of
  /// 15% RPM there for continuity with datasheet minimum-speed specs.
  [[nodiscard]] Rpm target_rpm(DutyCycle duty) const {
    if (duty.percent() < params_.stall_duty.percent()) {
      return Rpm{0.0};
    }
    const double span = 100.0 - params_.stall_duty.percent();
    const double frac = (duty.percent() - params_.stall_duty.percent()) / span;
    constexpr double kMinFrac = 0.15;
    return Rpm{params_.max_rpm.value() * (kMinFrac + (1.0 - kMinFrac) * frac)};
  }

  /// Snaps the rotor to its steady state for the current duty (experiment
  /// priming).
  void settle() { *rpm_ = target_rpm(duty()).value(); }

  /// Injects a stuck-rotor fault: the fan ignores commands and coasts to a
  /// halt. `clear_fault` restores normal operation.
  void inject_stuck_fault() { *stuck_ = 1; }
  void clear_fault() { *stuck_ = 0; }
  [[nodiscard]] bool faulted() const { return *stuck_ != 0; }

  [[nodiscard]] const FanParams& params() const { return params_; }

 private:
  void recompute_alpha(Seconds dt);

  FanParams params_;
  // Rotor state defaults to inline storage; bind_state() repoints it into a
  // FleetState SoA slot without changing behaviour.
  double duty_pct_storage_ = 0.0;
  double rpm_storage_ = 0.0;
  std::uint8_t stuck_storage_ = 0;
  double* duty_pct_ = &duty_pct_storage_;
  double* rpm_ = &rpm_storage_;
  std::uint8_t* stuck_ = &stuck_storage_;
  // dt the cached smoothing factor was built for; NaN compares unequal to
  // every dt, forcing (and validating) the first computation.
  double alpha_dt_ = std::numeric_limits<double>::quiet_NaN();
  double alpha_ = 0.0;
};

}  // namespace thermctl::hw
