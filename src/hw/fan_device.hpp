// PWM-controlled cooling fan model.
//
// Reproduces the out-of-band actuator of the paper's platform: a CPU fan with
// a 4300 RPM ceiling whose speed is commanded through a PWM duty cycle
// (Fig. 1). The model captures the properties the experiments depend on:
//
//  * PWM→RPM: linear above a stall threshold (a real fan does not spin below
//    a few percent duty).
//  * Rotor inertia: RPM follows the command with a first-order lag, so fan
//    response is fast (~1 s) but not instantaneous.
//  * Airflow ∝ RPM (fan laws), feeding the convection model.
//  * Electrical power ∝ RPM^3 (fan affinity laws) — the cost side of
//    aggressive fan policies in Figs. 5–7.
//  * Failure injection: a stuck rotor for the emergency scenarios.
#pragma once

#include "common/units.hpp"

namespace thermctl::hw {

struct FanParams {
  Rpm max_rpm{4300.0};
  /// Duty below which the rotor stalls (no rotation).
  DutyCycle stall_duty{4.0};
  /// Airflow at max RPM.
  Cfm max_airflow{32.0};
  /// Electrical power at max RPM (affinity-law cubic from here).
  Watts max_power{5.5};
  /// Standby electronics draw even when stalled.
  Watts idle_power{0.2};
  /// Rotor spin-up/down time constant.
  Seconds rotor_tau{0.8};
};

class FanDevice {
 public:
  explicit FanDevice(FanParams params = {});

  /// Commands a PWM duty cycle; takes effect through the rotor lag.
  void set_duty(DutyCycle duty);
  [[nodiscard]] DutyCycle duty() const { return duty_; }

  /// Advances rotor dynamics.
  void step(Seconds dt);

  [[nodiscard]] Rpm rpm() const { return Rpm{rpm_}; }
  [[nodiscard]] Cfm airflow() const;
  [[nodiscard]] Watts power() const;

  /// Steady-state RPM for a duty command (the rotor lag's fixed point).
  [[nodiscard]] Rpm target_rpm(DutyCycle duty) const;

  /// Snaps the rotor to its steady state for the current duty (experiment
  /// priming).
  void settle() { rpm_ = target_rpm(duty_).value(); }

  /// Injects a stuck-rotor fault: the fan ignores commands and coasts to a
  /// halt. `clear_fault` restores normal operation.
  void inject_stuck_fault() { stuck_ = true; }
  void clear_fault() { stuck_ = false; }
  [[nodiscard]] bool faulted() const { return stuck_; }

  [[nodiscard]] const FanParams& params() const { return params_; }

 private:
  FanParams params_;
  DutyCycle duty_{0.0};
  double rpm_ = 0.0;
  bool stuck_ = false;
};

}  // namespace thermctl::hw
