// SMBus/i2c bus simulation.
//
// The paper connects the ADT7467 fan controller through an i2c link and
// drives it from a custom Linux driver. To keep that software layering real,
// the simulated driver talks to the simulated chip only through this bus —
// register reads/writes addressed by 7-bit device address, with NAK errors
// for absent devices or rejected registers. A transaction log supports both
// debugging and the protocol-level tests.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace thermctl::hw {

/// Result of an i2c transfer.
enum class I2cStatus : std::uint8_t {
  kOk,
  kAddressNak,   // no device at address
  kRegisterNak,  // device rejected the register offset
  kBusFault,     // injected electrical fault
};

/// Device-side interface: a chip that can be attached to the bus.
class I2cSlave {
 public:
  virtual ~I2cSlave() = default;

  /// Reads one register byte; nullopt => register NAK.
  virtual std::optional<std::uint8_t> read_register(std::uint8_t reg) = 0;

  /// Writes one register byte; false => register NAK (read-only/unknown).
  virtual bool write_register(std::uint8_t reg, std::uint8_t value) = 0;
};

struct I2cTransaction {
  std::uint8_t address = 0;
  std::uint8_t reg = 0;
  std::uint8_t value = 0;
  bool is_write = false;
  I2cStatus status = I2cStatus::kOk;
};

class I2cBus {
 public:
  /// Attaches `dev` at `address` (7-bit). The bus does not own the device.
  void attach(std::uint8_t address, I2cSlave* dev);
  void detach(std::uint8_t address);

  /// SMBus "read byte data".
  I2cStatus read_byte_data(std::uint8_t address, std::uint8_t reg, std::uint8_t& out);

  /// SMBus "write byte data".
  I2cStatus write_byte_data(std::uint8_t address, std::uint8_t reg, std::uint8_t value);

  /// Injects/clears a bus-level electrical fault (all transfers fail).
  void inject_bus_fault() { faulted_ = true; }
  void clear_bus_fault() { faulted_ = false; }

  /// Injects a transient glitch: the next `transfers` transfers fail with
  /// kBusFault, then the bus recovers on its own — the failure mode a
  /// retry-with-backoff master is designed to ride out.
  void inject_transient_bus_fault(int transfers) { transient_faults_ = transfers; }
  [[nodiscard]] bool faulted() const { return faulted_ || transient_faults_ > 0; }

  [[nodiscard]] const std::vector<I2cTransaction>& log() const { return log_; }
  void clear_log() { log_.clear(); }
  /// Caps the log so long simulations don't grow unbounded (0 = unlimited).
  void set_log_limit(std::size_t limit) { log_limit_ = limit; }

 private:
  void record(I2cTransaction t);

  /// Consumes one transfer's worth of fault state; true if it failed.
  bool transfer_faulted();

  std::map<std::uint8_t, I2cSlave*> devices_;
  std::vector<I2cTransaction> log_;
  std::size_t log_limit_ = 4096;
  bool faulted_ = false;
  int transient_faults_ = 0;
};

}  // namespace thermctl::hw
