#include "hw/adt7467.hpp"

#include <algorithm>
#include <cmath>

namespace thermctl::hw {

Adt7467::Adt7467() { refresh_output(); }

void Adt7467::bind_state(const ChipStateSlots& slots) {
  *slots.temp_remote1 = *temp_remote1_;
  *slots.tach1 = *tach1_;
  *slots.last_measured_rpm = *last_measured_rpm_;
  *slots.output_duty_pct = *output_duty_pct_;
  temp_remote1_ = slots.temp_remote1;
  tach1_ = slots.tach1;
  last_measured_rpm_ = slots.last_measured_rpm;
  output_duty_pct_ = slots.output_duty_pct;
}

std::uint8_t Adt7467::duty_to_reg(DutyCycle d) {
  return static_cast<std::uint8_t>(std::lround(d.fraction() * 255.0));
}

DutyCycle Adt7467::reg_to_duty(std::uint8_t v) {
  return DutyCycle{static_cast<double>(v) / 255.0 * 100.0};
}

void Adt7467::set_measured_temperature(Celsius t) {
  const double clamped = std::clamp(t.value(), -128.0, 127.0);
  const auto reg = static_cast<std::int8_t>(std::lround(clamped));
  if (reg == *temp_remote1_) {
    return;  // sub-degree drift doesn't move the register or the auto curve
  }
  *temp_remote1_ = reg;
  refresh_output();
}

void Adt7467::set_measured_rpm(Rpm rpm) {
  if (rpm.value() == *last_measured_rpm_) {
    return;  // rotor at steady state: the latched tach period is current
  }
  *last_measured_rpm_ = rpm.value();
  if (rpm.value() < 100.0) {
    *tach1_ = 0xFFFF;  // stalled / too slow to measure
  } else {
    const double count = kTachClock / rpm.value();
    *tach1_ = static_cast<std::uint16_t>(std::min(count, 65534.0));
  }
}

bool Adt7467::manual_mode() const { return (pwm1_config_ >> 5) == kBehaviourManual; }

DutyCycle Adt7467::auto_curve(Celsius t) const {
  const double tmin = static_cast<double>(tmin_remote1_);
  const double trange = std::max(1.0, static_cast<double>(trange_remote1_));
  const double duty_min = reg_to_duty(pwm1_min_).percent();
  if (t.value() <= tmin) {
    return DutyCycle{duty_min};
  }
  const double frac = std::min(1.0, (t.value() - tmin) / trange);
  return DutyCycle{duty_min + frac * (100.0 - duty_min)};
}

void Adt7467::refresh_output() {
  if (!manual_mode()) {
    pwm1_duty_ = std::min(
        duty_to_reg(auto_curve(Celsius{static_cast<double>(*temp_remote1_)})), pwm1_max_);
  }
  refresh_duty_mirror();
}

DutyCycle Adt7467::output_duty() const { return reg_to_duty(pwm1_duty_); }

std::optional<std::uint8_t> Adt7467::read_register(std::uint8_t reg) {
  switch (reg) {
    case kRegTempRemote1:
      return static_cast<std::uint8_t>(*temp_remote1_);
    case kRegTach1Low:
      return static_cast<std::uint8_t>(*tach1_ & 0xFF);
    case kRegTach1High:
      return static_cast<std::uint8_t>(*tach1_ >> 8);
    case kRegPwm1Duty:
      return pwm1_duty_;
    case kRegPwm1Max:
      return pwm1_max_;
    case kRegPwm1Config:
      return pwm1_config_;
    case kRegPwm1Min:
      return pwm1_min_;
    case kRegTminRemote1:
      return static_cast<std::uint8_t>(tmin_remote1_);
    case kRegTrangeRemote1:
      return trange_remote1_;
    case kRegDeviceId:
      return kDeviceId;
    case kRegCompanyId:
      return kCompanyId;
    default:
      return std::nullopt;  // register NAK
  }
}

bool Adt7467::write_register(std::uint8_t reg, std::uint8_t value) {
  switch (reg) {
    case kRegPwm1Duty:
      // Writable only under manual behaviour; the real part ignores writes in
      // automatic mode — we NAK so driver bugs surface loudly.
      if (!manual_mode()) {
        return false;
      }
      pwm1_duty_ = value;
      refresh_duty_mirror();
      return true;
    case kRegPwm1Max:
      pwm1_max_ = value;
      refresh_output();
      return true;
    case kRegPwm1Config:
      pwm1_config_ = value;
      refresh_output();
      return true;
    case kRegPwm1Min:
      pwm1_min_ = value;
      refresh_output();
      return true;
    case kRegTminRemote1:
      tmin_remote1_ = static_cast<std::int8_t>(value);
      refresh_output();
      return true;
    case kRegTrangeRemote1:
      trange_remote1_ = value;
      refresh_output();
      return true;
    default:
      return false;  // read-only or unknown register
  }
}

}  // namespace thermctl::hw
