// System power meter model (Watts up? Pro ES stand-in).
//
// Table 1's "Ave Power" and power-delay-product columns come from a wall
// meter sampling whole-system draw at ~1 Hz. The model sums component powers
// through a PSU-efficiency curve and integrates energy between samples, so
// averages computed from its reading history have the same semantics as the
// paper's instrument.
#pragma once

#include <functional>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace thermctl::hw {

struct PowerMeterParams {
  /// Constant platform draw (board, DRAM, disk, NIC) behind the PSU.
  /// Calibrated so a loaded node meters ~95-100 W AC (Table 1's range).
  Watts base_load{35.0};
  /// PSU efficiency at the loads of interest (AC draw = DC load / eff).
  double psu_efficiency = 0.85;
  /// Meter display resolution.
  double resolution_watts = 0.1;
};

class PowerMeter {
 public:
  /// `dc_load` returns the instantaneous DC-side component power sum
  /// (CPU + fan + anything else the node registers).
  PowerMeter(std::function<Watts()> dc_load, PowerMeterParams params = {});

  // The integration accumulators may be rebound into fleet-owned SoA arrays
  // (bind_state), so the meter must not be duplicated with pointers into the
  // old storage.
  PowerMeter(const PowerMeter&) = delete;
  PowerMeter& operator=(const PowerMeter&) = delete;

  /// Rebinds the energy/elapsed accumulators onto external storage
  /// (FleetState SoA slots). Current values carry over.
  void bind_state(double* energy_joules, double* elapsed_seconds) {
    *energy_joules = *energy_joules_;
    *elapsed_seconds = *elapsed_seconds_;
    energy_joules_ = energy_joules;
    elapsed_seconds_ = elapsed_seconds;
  }

  /// Instantaneous AC-side power as the meter would display it.
  [[nodiscard]] Watts read() const;

  /// read() for a caller-supplied DC component sum: identical arithmetic,
  /// minus the indirect dc_load_ call. For callers that already hold the
  /// component sum (the node does, every physics step).
  [[nodiscard]] Watts read_with(Watts dc_component) const;

  /// Advances the internal energy integral by `dt` at the current load.
  void integrate(Seconds dt) { integrate_with(dt, dc_load_()); }

  /// integrate() with the DC component sum supplied directly.
  void integrate_with(Seconds dt, Watts dc_component) {
    THERMCTL_ASSERT(dt.value() >= 0.0, "negative integration interval");
    const double dc = params_.base_load.value() + dc_component.value();
    *energy_joules_ += dc / params_.psu_efficiency * dt.value();
    *elapsed_seconds_ += dt.value();
  }

  /// Energy accumulated so far (the meter's kWh counter, in joules).
  [[nodiscard]] Joules energy() const { return Joules{*energy_joules_}; }

  /// Average power over the integration window so far.
  [[nodiscard]] Watts average_power() const;

  void reset();

  [[nodiscard]] const PowerMeterParams& params() const { return params_; }

 private:
  std::function<Watts()> dc_load_;
  PowerMeterParams params_;
  // Accumulators default to inline storage; bind_state() repoints them into
  // FleetState SoA slots without changing behaviour.
  double energy_joules_storage_ = 0.0;
  double elapsed_seconds_storage_ = 0.0;
  double* energy_joules_ = &energy_joules_storage_;
  double* elapsed_seconds_ = &elapsed_seconds_storage_;
};

}  // namespace thermctl::hw
