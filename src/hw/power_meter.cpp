#include "hw/power_meter.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace thermctl::hw {

PowerMeter::PowerMeter(std::function<Watts()> dc_load, PowerMeterParams params)
    : dc_load_(std::move(dc_load)), params_(params) {
  THERMCTL_ASSERT(static_cast<bool>(dc_load_), "power meter needs a load source");
  THERMCTL_ASSERT(params_.psu_efficiency > 0.0 && params_.psu_efficiency <= 1.0,
                  "PSU efficiency must be in (0, 1]");
}

Watts PowerMeter::read() const { return read_with(dc_load_()); }

Watts PowerMeter::read_with(Watts dc_component) const {
  const double dc = params_.base_load.value() + dc_component.value();
  const double ac = dc / params_.psu_efficiency;
  const double r = params_.resolution_watts;
  return Watts{std::round(ac / r) * r};
}

Watts PowerMeter::average_power() const {
  if (*elapsed_seconds_ <= 0.0) {
    return Watts{0.0};
  }
  return Watts{*energy_joules_ / *elapsed_seconds_};
}

void PowerMeter::reset() {
  *energy_joules_ = 0.0;
  *elapsed_seconds_ = 0.0;
}

}  // namespace thermctl::hw
