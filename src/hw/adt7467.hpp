// ADT7467 dBCool remote thermal monitor / fan controller model.
//
// The paper's out-of-band actuation path runs through this Analog Devices
// part: a custom Linux driver writes PWM registers over i2c, and the chip's
// *automatic* mode implements the traditional static fan curve of Fig. 1
// (duty = PWMmin below Tmin, rising linearly to 100% at Tmax).
//
// This model implements the subset of the register map the experiments
// exercise, with the real part's conventions (8-bit duty, tach period
// counters, identification registers). It is a simplification of the full
// datasheet — enough to keep the driver ↔ chip protocol honest, not a
// cycle-accurate replica.
//
// Register map (subset):
//   0x26  TEMP_REMOTE1   measured remote-diode temperature, signed °C (RO)
//   0x28  TACH1_LOW      fan tach period counter, low byte (RO)
//   0x29  TACH1_HIGH     fan tach period counter, high byte (RO)
//   0x30  PWM1_DUTY      current duty, 0..255; writable in manual mode
//   0x38  PWM1_MAX       ceiling applied to the automatic curve, 0..255
//   0x5C  PWM1_CONFIG    bits 7:5 = behaviour (0b111 manual, 0b101 auto)
//   0x64  PWM1_MIN       minimum duty for the automatic curve, 0..255
//   0x67  TMIN_REMOTE1   automatic-curve Tmin, signed °C
//   0x68  TRANGE_REMOTE1 automatic-curve range (Tmax - Tmin), °C
//   0x3D  DEVICE_ID      0x68
//   0x3E  COMPANY_ID     0x41 (Analog Devices)
#pragma once

#include <cstdint>
#include <optional>

#include "common/units.hpp"
#include "hw/i2c.hpp"

namespace thermctl::hw {

/// External storage the chip's latched measurements and output mirror can be
/// rebound onto (bind_state) — slots into FleetState's SoA arrays so the
/// fleet sweep can batch the measurement-side protocol without touching the
/// register objects.
struct ChipStateSlots {
  std::int8_t* temp_remote1 = nullptr;
  std::uint16_t* tach1 = nullptr;
  double* last_measured_rpm = nullptr;
  /// Mirror of reg_to_duty(PWM1_DUTY).percent(), refreshed whenever the duty
  /// register changes (auto-curve refresh or manual write).
  double* output_duty_pct = nullptr;
};

class Adt7467 final : public I2cSlave {
 public:
  // Register addresses (public so drivers and tests share one definition).
  static constexpr std::uint8_t kRegTempRemote1 = 0x26;
  static constexpr std::uint8_t kRegTach1Low = 0x28;
  static constexpr std::uint8_t kRegTach1High = 0x29;
  static constexpr std::uint8_t kRegPwm1Duty = 0x30;
  static constexpr std::uint8_t kRegPwm1Max = 0x38;
  static constexpr std::uint8_t kRegPwm1Config = 0x5C;
  static constexpr std::uint8_t kRegPwm1Min = 0x64;
  static constexpr std::uint8_t kRegTminRemote1 = 0x67;
  static constexpr std::uint8_t kRegTrangeRemote1 = 0x68;
  static constexpr std::uint8_t kRegDeviceId = 0x3D;
  static constexpr std::uint8_t kRegCompanyId = 0x3E;

  static constexpr std::uint8_t kDeviceId = 0x68;
  static constexpr std::uint8_t kCompanyId = 0x41;

  static constexpr std::uint8_t kBehaviourManual = 0b111;
  static constexpr std::uint8_t kBehaviourAutoRemote1 = 0b101;

  /// Datasheet tach convention: counter = 5.4e6 / RPM; 0xFFFF = stalled.
  static constexpr double kTachClock = 5.4e6;

  Adt7467();

  // Latched state may be rebound into fleet-owned SoA arrays (bind_state),
  // so the chip must not be duplicated with pointers into the old storage.
  Adt7467(const Adt7467&) = delete;
  Adt7467& operator=(const Adt7467&) = delete;

  /// Rebinds the latched measurements and the output-duty mirror onto
  /// external storage (FleetState SoA slots). Current values carry over.
  void bind_state(const ChipStateSlots& slots);

  // --- physical-side interface (wired by the node model, not by drivers) ---

  /// Latches the remote diode temperature measurement.
  void set_measured_temperature(Celsius t);

  /// Latches the fan tach feedback.
  void set_measured_rpm(Rpm rpm);

  /// Duty the chip is currently driving on its PWM output pin.
  [[nodiscard]] DutyCycle output_duty() const;

  /// True when bits 7:5 of PWM1_CONFIG select manual behaviour.
  [[nodiscard]] bool manual_mode() const;

  /// The automatic-mode curve evaluated at `t` (Fig. 1 of the paper):
  /// duty = PWM1_MIN below Tmin, linear to 100% at Tmin + Trange.
  [[nodiscard]] DutyCycle auto_curve(Celsius t) const;

  // --- I2cSlave protocol ---
  std::optional<std::uint8_t> read_register(std::uint8_t reg) override;
  bool write_register(std::uint8_t reg, std::uint8_t value) override;

  /// Converts a percentage duty to the 8-bit register encoding and back.
  [[nodiscard]] static std::uint8_t duty_to_reg(DutyCycle d);
  [[nodiscard]] static DutyCycle reg_to_duty(std::uint8_t v);

 private:
  void refresh_output();
  void refresh_duty_mirror() { *output_duty_pct_ = reg_to_duty(pwm1_duty_).percent(); }

  // Latched measurements default to inline storage; bind_state() repoints
  // them into FleetState SoA slots without changing behaviour.
  std::int8_t temp_remote1_storage_ = 25;    // latched measurement, °C
  std::uint16_t tach1_storage_ = 0xFFFF;     // latched tach period
  double last_measured_rpm_storage_ = -1.0;  // skip tach recompute when unchanged
  double output_duty_pct_storage_ = 0.0;     // mirror of the PWM output pin
  std::int8_t* temp_remote1_ = &temp_remote1_storage_;
  std::uint16_t* tach1_ = &tach1_storage_;
  double* last_measured_rpm_ = &last_measured_rpm_storage_;
  double* output_duty_pct_ = &output_duty_pct_storage_;
  std::uint8_t pwm1_duty_ = 0;      // current duty register
  std::uint8_t pwm1_max_ = 0xFF;    // automatic-curve ceiling
  std::uint8_t pwm1_config_ = static_cast<std::uint8_t>(kBehaviourAutoRemote1 << 5);
  std::uint8_t pwm1_min_ = 26;      // ~10% of 255 (PWMmin in the paper)
  std::int8_t tmin_remote1_ = 38;   // paper platform: Tmin = 38 °C
  std::uint8_t trange_remote1_ = 44;  // paper platform: Tmax = 82 °C
};

}  // namespace thermctl::hw
