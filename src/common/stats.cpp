#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace thermctl {

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& o) {
  if (o.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += o.m2_ + delta * delta * na * nb / total;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double percentile_sorted(std::span<const double> sorted, double q) {
  THERMCTL_ASSERT(!sorted.empty(), "percentile of empty sample");
  THERMCTL_ASSERT(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) {
    return s;
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());

  OnlineStats acc;
  for (double x : xs) {
    acc.add(x);
  }
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = percentile_sorted(sorted, 0.25);
  s.median = percentile_sorted(sorted, 0.50);
  s.p75 = percentile_sorted(sorted, 0.75);
  s.p95 = percentile_sorted(sorted, 0.95);
  return s;
}

std::vector<double> moving_average(std::span<const double> xs, std::size_t w) {
  THERMCTL_ASSERT(w >= 1, "moving average window must be >= 1");
  std::vector<double> out;
  out.reserve(xs.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum += xs[i];
    if (i >= w) {
      sum -= xs[i - w];
    }
    const std::size_t n = std::min(i + 1, w);
    out.push_back(sum / static_cast<double>(n));
  }
  return out;
}

double slope(std::span<const double> ys, double dx) {
  if (ys.size() < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(ys.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double x = static_cast<double>(i) * dx;
    sx += x;
    sy += ys[i];
    sxx += x * x;
    sxy += x * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    return 0.0;
  }
  return (n * sxy - sx * sy) / denom;
}

}  // namespace thermctl
