#include "common/csv.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/assert.hpp"

namespace thermctl {

std::string format_number(double v, int max_decimals) {
  if (!std::isfinite(v)) {
    return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", max_decimals, v);
  std::string s{buf};
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') {
      s.pop_back();
    }
    if (!s.empty() && s.back() == '.') {
      s.pop_back();
    }
  }
  return s;
}

std::string csv_escape(std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string{field};
  }
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char ch : field) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : path_(path), out_(path), columns_(columns.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  THERMCTL_ASSERT(!columns.empty(), "CSV needs at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << csv_escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::span<const double> values) {
  THERMCTL_ASSERT(values.size() == columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << format_number(values[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(std::initializer_list<double> values) {
  row(std::span<const double>{values.begin(), values.size()});
}

}  // namespace thermctl
