// Minimal leveled logger.
//
// Controllers and drivers log mode transitions (frequency changes, PWM
// retargets, tDVFS triggers) — the same events the paper's figures annotate.
// The default sink is stderr; tests install a capturing sink to assert on
// event sequences.
// Thread-safety: the logger is shared by every thread of a parallel sweep;
// emission is serialized on an internal mutex and the level is atomic.
// set_sink()/set_level() are safe to call concurrently with logging, but
// tests that install capturing sinks should do so while no sweep is running.
#pragma once

#include <atomic>
#include <cstdarg>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace thermctl {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// Parses a level name ("debug", "info", "warn"/"warning", "error",
/// case-insensitive) or its numeric value ("0".."3"). nullopt on anything
/// else — callers keep their current level rather than guessing.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view text);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component, std::string_view msg)>;

  /// Process-wide logger instance. First use reads THERMCTL_LOG_LEVEL from
  /// the environment (e.g. "debug" to surface per-tick controller decisions
  /// from a bench run without a rebuild); unset or unparsable keeps the
  /// kWarn default.
  static Logger& instance();

  /// Messages below `level` are dropped.
  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Replaces the output sink; pass nullptr to restore the stderr default.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view component, std::string_view msg);

  /// printf-style convenience.
  void logf(LogLevel level, std::string_view component, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mutex_;  // guards sink_ and serializes emission
  Sink sink_;
};

#define THERMCTL_LOG_DEBUG(component, ...) \
  ::thermctl::Logger::instance().logf(::thermctl::LogLevel::kDebug, (component), __VA_ARGS__)
#define THERMCTL_LOG_INFO(component, ...) \
  ::thermctl::Logger::instance().logf(::thermctl::LogLevel::kInfo, (component), __VA_ARGS__)
#define THERMCTL_LOG_WARN(component, ...) \
  ::thermctl::Logger::instance().logf(::thermctl::LogLevel::kWarn, (component), __VA_ARGS__)

}  // namespace thermctl
