// Simulation clock.
//
// Time is tracked as an integer count of microseconds since simulation start.
// Integer ticks keep repeated small steps exact (no floating-point drift in
// "is it time to sample?" comparisons), which matters because the paper's
// controller is driven by a strict 4 Hz sampling schedule.
#pragma once

#include <compare>
#include <cstdint>

#include "common/units.hpp"

namespace thermctl {

/// A point on the simulation timeline (microsecond resolution).
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime from_us(std::int64_t us) { return SimTime{us}; }
  [[nodiscard]] static constexpr SimTime from_ms(std::int64_t ms) { return SimTime{ms * 1000}; }
  [[nodiscard]] static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(us_) * 1e-6; }

  friend constexpr auto operator<=>(const SimTime&, const SimTime&) = default;

  friend constexpr SimTime operator+(SimTime t, Seconds d) {
    return SimTime{t.us_ + static_cast<std::int64_t>(d.value() * 1e6)};
  }
  friend constexpr Seconds operator-(SimTime a, SimTime b) {
    return Seconds{static_cast<double>(a.us_ - b.us_) * 1e-6};
  }

  constexpr SimTime& advance_us(std::int64_t us) {
    us_ += us;
    return *this;
  }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// A fixed-period schedule: fires every `period_us` microseconds, starting at
/// `phase_us`. Used to drive sensor sampling, controller intervals and meter
/// readings from the engine's fine-grained physics loop.
class PeriodicSchedule {
 public:
  constexpr PeriodicSchedule() = default;
  constexpr PeriodicSchedule(std::int64_t period_us, std::int64_t phase_us = 0)
      : period_us_(period_us), next_us_(phase_us) {}

  /// Returns true (and advances the schedule) if the schedule fires at or
  /// before `now`. Call in a loop if multiple periods may have elapsed.
  constexpr bool due(SimTime now) {
    if (period_us_ <= 0 || now.us() < next_us_) {
      return false;
    }
    next_us_ += period_us_;
    return true;
  }

  [[nodiscard]] constexpr std::int64_t period_us() const { return period_us_; }

 private:
  std::int64_t period_us_ = 0;
  std::int64_t next_us_ = 0;
};

}  // namespace thermctl
