// Streaming and batch statistics.
//
// Experiment summaries (Table 1 columns, figure captions) are produced from
// these: online mean/variance for per-run aggregates, and batch summaries
// (min/max/percentiles) over recorded series.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace thermctl {

/// Welford online accumulator: numerically stable mean/variance without
/// storing samples.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Merges another accumulator (parallel reduction of per-node stats).
  void merge(const OnlineStats& o);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes a batch Summary; copies + sorts internally, input order preserved.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Linear-interpolated percentile of an already-sorted sample, q in [0, 1].
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double q);

/// Simple moving average of `xs` with window `w` (w>=1). Element i averages
/// the up-to-`w` most recent values ending at i. Used by trace analysis and
/// plot smoothing in the benches.
[[nodiscard]] std::vector<double> moving_average(std::span<const double> xs, std::size_t w);

/// Ordinary least-squares slope of y over x index (per-sample trend). Returns
/// 0 for fewer than two samples. Used by the Type I/II/III phase classifier.
[[nodiscard]] double slope(std::span<const double> ys, double dx = 1.0);

}  // namespace thermctl
