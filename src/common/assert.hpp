// Lightweight contract checking.
//
// THERMCTL_ASSERT is an always-on precondition/invariant check: simulation
// code is not performance critical enough to justify silently corrupting a
// run, so violations abort with a useful message in every build type.
#pragma once

#include <string_view>

namespace thermctl {

/// Prints a diagnostic to stderr and aborts. Used by THERMCTL_ASSERT; exposed
/// so tests can exercise the formatting path via death tests.
[[noreturn]] void assert_fail(std::string_view expr, std::string_view file, int line,
                              std::string_view msg);

}  // namespace thermctl

#define THERMCTL_ASSERT(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::thermctl::assert_fail(#expr, __FILE__, __LINE__, (msg));        \
    }                                                                   \
  } while (false)
