// CSV series output.
//
// Every bench writes the series behind its figure as CSV next to the printed
// summary, so results can be re-plotted outside the harness. The writer is
// deliberately minimal: fixed column set declared up front, one row per call.
#pragma once

#include <fstream>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace thermctl {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  /// Writes one data row; `values.size()` must equal the column count.
  void row(std::span<const double> values);
  void row(std::initializer_list<double> values);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

/// Formats a double with trailing-zero trimming ("42", "42.5", "42.125").
[[nodiscard]] std::string format_number(double v, int max_decimals = 6);

/// RFC 4180 field quoting: fields containing a comma, quote, CR or LF come
/// back wrapped in quotes with internal quotes doubled; anything else passes
/// through unchanged. Header columns go through this (series names can carry
/// units like "power (W), total").
[[nodiscard]] std::string csv_escape(std::string_view field);

}  // namespace thermctl
