#include "common/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace thermctl {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char ch : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  if (lower == "debug" || lower == "0") {
    return LogLevel::kDebug;
  }
  if (lower == "info" || lower == "1") {
    return LogLevel::kInfo;
  }
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") {
    return LogLevel::kError;
  }
  return std::nullopt;
}

Logger::Logger() {
  set_sink(nullptr);
  if (const char* env = std::getenv("THERMCTL_LOG_LEVEL")) {
    if (const auto level = parse_log_level(env)) {
      set_level(*level);
    }
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock{mutex_};
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, std::string_view component, std::string_view msg) {
      std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
                   static_cast<int>(to_string(level).size()), to_string(level).data(),
                   static_cast<int>(component.size()), component.data(),
                   static_cast<int>(msg.size()), msg.data());
    };
  }
}

void Logger::log(LogLevel level, std::string_view component, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(this->level())) {
    return;
  }
  std::lock_guard<std::mutex> lock{mutex_};
  sink_(level, component, msg);
}

void Logger::logf(LogLevel level, std::string_view component, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(this->level())) {
    return;
  }
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  log(level, component, buf);
}

}  // namespace thermctl
