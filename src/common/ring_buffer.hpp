// Fixed-capacity ring buffer.
//
// Backbone of the paper's level-two temperature window (a fixed-size FIFO of
// level-one averages) and of the metrics recorder's bounded history. Capacity
// is a runtime parameter because window sizes are tunables under study
// (see bench/ablation_window_sizes).
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace thermctl {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    THERMCTL_ASSERT(capacity > 0, "ring buffer capacity must be positive");
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == buf_.size(); }

  /// Appends `v`; if full, the oldest element is dropped.
  void push(const T& v) {
    buf_[(head_ + size_) % buf_.size()] = v;
    if (full()) {
      head_ = (head_ + 1) % buf_.size();
    } else {
      ++size_;
    }
  }

  /// Oldest element (the FIFO "front" in the paper's level-two window).
  [[nodiscard]] const T& front() const {
    THERMCTL_ASSERT(!empty(), "front() on empty ring buffer");
    return buf_[head_];
  }

  /// Newest element (the FIFO "rear").
  [[nodiscard]] const T& back() const {
    THERMCTL_ASSERT(!empty(), "back() on empty ring buffer");
    return buf_[(head_ + size_ - 1) % buf_.size()];
  }

  /// Element `i` positions from the oldest (0 == front).
  [[nodiscard]] const T& at(std::size_t i) const {
    THERMCTL_ASSERT(i < size_, "ring buffer index out of range");
    return buf_[(head_ + i) % buf_.size()];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace thermctl
