// Strong physical-quantity types.
//
// The thermal-control domain mixes many scalar quantities (temperatures,
// temperature differences, powers, frequencies, PWM duty cycles, fan RPMs,
// voltages, airflows). Passing them all around as `double` invites the classic
// argument-swap bug, so each quantity is a distinct arithmetic wrapper
// (C++ Core Guidelines I.4: make interfaces precisely and strongly typed).
//
// The wrapper is intentionally thin: `value()` returns the underlying double
// and the types convert explicitly, never implicitly. Only physically
// meaningful cross-type operations are defined (e.g. Celsius − Celsius →
// CelsiusDelta; Watts × Seconds → Joules).
#pragma once

#include <compare>
#include <cstdint>

namespace thermctl {

/// CRTP base providing ordering, additive arithmetic, and scalar scaling for a
/// strongly typed quantity. Derived types inherit constructors.
template <typename Derived>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  friend constexpr auto operator<=>(const Quantity&, const Quantity&) = default;

  friend constexpr Derived operator+(Derived a, Derived b) { return Derived{a.value_ + b.value_}; }
  friend constexpr Derived operator-(Derived a, Derived b) { return Derived{a.value_ - b.value_}; }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.value_}; }
  friend constexpr Derived operator*(Derived a, double s) { return Derived{a.value_ * s}; }
  friend constexpr Derived operator*(double s, Derived a) { return Derived{s * a.value_}; }
  friend constexpr Derived operator/(Derived a, double s) { return Derived{a.value_ / s}; }
  /// Ratio of two like quantities is a dimensionless double.
  friend constexpr double operator/(Derived a, Derived b) { return a.value_ / b.value_; }

  constexpr Derived& operator+=(Derived o) {
    value_ += o.value_;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived o) {
    value_ -= o.value_;
    return static_cast<Derived&>(*this);
  }

 private:
  double value_ = 0.0;
};

/// Temperature difference in kelvin/°C. Separate from absolute temperature so
/// `Celsius + Celsius` does not compile.
class CelsiusDelta : public Quantity<CelsiusDelta> {
  using Quantity::Quantity;
};

/// Absolute temperature in degrees Celsius.
class Celsius {
 public:
  constexpr Celsius() = default;
  constexpr explicit Celsius(double v) : value_(v) {}
  [[nodiscard]] constexpr double value() const { return value_; }

  friend constexpr auto operator<=>(const Celsius&, const Celsius&) = default;
  friend constexpr CelsiusDelta operator-(Celsius a, Celsius b) {
    return CelsiusDelta{a.value_ - b.value_};
  }
  friend constexpr Celsius operator+(Celsius t, CelsiusDelta d) {
    return Celsius{t.value_ + d.value()};
  }
  friend constexpr Celsius operator+(CelsiusDelta d, Celsius t) { return t + d; }
  friend constexpr Celsius operator-(Celsius t, CelsiusDelta d) {
    return Celsius{t.value_ - d.value()};
  }
  constexpr Celsius& operator+=(CelsiusDelta d) {
    value_ += d.value();
    return *this;
  }

 private:
  double value_ = 0.0;
};

class Joules : public Quantity<Joules> {
  using Quantity::Quantity;
};

class Seconds : public Quantity<Seconds> {
  using Quantity::Quantity;
};

class Watts : public Quantity<Watts> {
  using Quantity::Quantity;
};

/// Watts × Seconds → Joules (energy accumulation in the power meter and
/// metrics recorder).
constexpr Joules operator*(Watts p, Seconds t) { return Joules{p.value() * t.value()}; }
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }

/// CPU core frequency in GHz (the paper's P-states are 1.0–2.4 GHz).
class GigaHertz : public Quantity<GigaHertz> {
  using Quantity::Quantity;
};

class Volts : public Quantity<Volts> {
  using Quantity::Quantity;
};

/// Fan revolutions per minute.
class Rpm : public Quantity<Rpm> {
  using Quantity::Quantity;
};

/// Volumetric airflow in cubic feet per minute, the conventional unit for
/// chassis fans.
class Cfm : public Quantity<Cfm> {
  using Quantity::Quantity;
};

/// Thermal resistance in K/W.
class KelvinPerWatt : public Quantity<KelvinPerWatt> {
  using Quantity::Quantity;
};

/// Heat capacity in J/K.
class JoulesPerKelvin : public Quantity<JoulesPerKelvin> {
  using Quantity::Quantity;
};

/// PWM duty cycle in percent, clamped to [0, 100]. The ADT7467 register is an
/// 8-bit value; DutyCycle is the driver-facing percentage representation.
class DutyCycle {
 public:
  constexpr DutyCycle() = default;
  constexpr explicit DutyCycle(double percent)
      : percent_(percent < 0.0 ? 0.0 : (percent > 100.0 ? 100.0 : percent)) {}

  [[nodiscard]] constexpr double percent() const { return percent_; }
  /// Fraction in [0, 1], convenient for power/airflow laws.
  [[nodiscard]] constexpr double fraction() const { return percent_ / 100.0; }

  friend constexpr auto operator<=>(const DutyCycle&, const DutyCycle&) = default;

 private:
  double percent_ = 0.0;
};

/// CPU utilization as a fraction in [0, 1].
class Utilization {
 public:
  constexpr Utilization() = default;
  constexpr explicit Utilization(double fraction)
      : fraction_(fraction < 0.0 ? 0.0 : (fraction > 1.0 ? 1.0 : fraction)) {}

  [[nodiscard]] constexpr double fraction() const { return fraction_; }
  [[nodiscard]] constexpr double percent() const { return fraction_ * 100.0; }

  friend constexpr auto operator<=>(const Utilization&, const Utilization&) = default;

 private:
  double fraction_ = 0.0;
};

namespace literals {

constexpr Celsius operator""_degC(long double v) { return Celsius{static_cast<double>(v)}; }
constexpr Celsius operator""_degC(unsigned long long v) { return Celsius{static_cast<double>(v)}; }
constexpr CelsiusDelta operator""_dK(long double v) { return CelsiusDelta{static_cast<double>(v)}; }
constexpr CelsiusDelta operator""_dK(unsigned long long v) {
  return CelsiusDelta{static_cast<double>(v)};
}
constexpr Watts operator""_W(long double v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_W(unsigned long long v) { return Watts{static_cast<double>(v)}; }
constexpr Seconds operator""_s(long double v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_s(unsigned long long v) { return Seconds{static_cast<double>(v)}; }
constexpr GigaHertz operator""_GHz(long double v) { return GigaHertz{static_cast<double>(v)}; }
constexpr GigaHertz operator""_GHz(unsigned long long v) {
  return GigaHertz{static_cast<double>(v)};
}
constexpr Volts operator""_V(long double v) { return Volts{static_cast<double>(v)}; }
constexpr Rpm operator""_rpm(unsigned long long v) { return Rpm{static_cast<double>(v)}; }
constexpr DutyCycle operator""_pwm(long double v) { return DutyCycle{static_cast<double>(v)}; }
constexpr DutyCycle operator""_pwm(unsigned long long v) {
  return DutyCycle{static_cast<double>(v)};
}

}  // namespace literals

}  // namespace thermctl
