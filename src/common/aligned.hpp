// Cache-line-aligned vector storage for SoA hot arrays.
//
// The batched solvers sweep node-major rows of per-instance doubles with
// compiler-vectorized unit-stride loops; starting each array on a 64-byte
// boundary keeps the vectorizer's peel prologue minimal and row starts
// cache-line clean for the (power-of-two) fleet sizes the ladder measures.
// Alignment changes where the bytes live, never what they hold — bit-exact
// trajectories are unaffected.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace thermctl {

template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment below the type's natural requirement");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) { return false; }
};

/// std::vector whose buffer starts on a 64-byte (cache line) boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace thermctl
