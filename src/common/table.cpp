#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace thermctl {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  THERMCTL_ASSERT(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  THERMCTL_ASSERT(cells.size() == headers_.size(), "table row width mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& label, const std::vector<double>& values,
                        int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    cells.emplace_back(buf);
  }
  add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        out << "  ";
      }
      // First column left-aligned (labels), the rest right-aligned (numbers).
      const std::size_t pad = widths[c] - cells[c].size();
      if (c == 0) {
        out << cells[c] << std::string(pad, ' ');
      } else {
        out << std::string(pad, ' ') << cells[c];
      }
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

}  // namespace thermctl
