// Aligned console tables.
//
// The benches print paper-style tables (Table 1 rows, figure summary series)
// to stdout; this formatter right-aligns numeric cells under their headers so
// the output is directly readable in a terminal or diffable in CI logs.
#pragma once

#include <string>
#include <vector>

namespace thermctl {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row of preformatted cells; width must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `decimals` places.
  void add_row(const std::string& label, const std::vector<double>& values, int decimals = 2);

  /// Renders the table with a separator line under the header.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace thermctl
