// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (sensor noise, workload phase
// jitter, per-rank imbalance) draws from an explicitly seeded generator so
// that experiments are exactly reproducible run-to-run — a hard requirement
// for regression-testing the controller against recorded trajectories.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64: small, fast and
// statistically strong enough for simulation noise.
#pragma once

#include <cstdint>

namespace thermctl {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit draw (xoshiro256** step).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Marsaglia polar; deterministic given the stream.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = sqrt_approx(-2.0 * log_approx(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    // Plain modulo draw; the bias is < 2^-53 for the n used in simulation.
    return n == 0 ? 0 : next_u64() % n;
  }

  /// Derives an independent child stream, e.g. one per cluster node.
  Rng fork() { return Rng{next_u64() ^ 0xd1342543de82ef95ULL}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  // Thin indirections so <cmath> stays out of this hot header's interface.
  static double sqrt_approx(double x);
  static double log_approx(double x);

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

inline double Rng::sqrt_approx(double x) { return __builtin_sqrt(x); }
inline double Rng::log_approx(double x) { return __builtin_log(x); }

}  // namespace thermctl
