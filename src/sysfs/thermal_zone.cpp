#include "sysfs/thermal_zone.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace thermctl::sysfs {

ThermalZone::ThermalZone(VirtualFs& fs, std::string root, int index, std::string type,
                         std::function<Celsius()> read_temp)
    : fs_(fs),
      dir_(root + "/thermal_zone" + std::to_string(index)),
      read_temp_(std::move(read_temp)) {
  THERMCTL_ASSERT(static_cast<bool>(read_temp_), "zone needs a temperature source");
  fs_.add_attribute(dir_ + "/type", [type] { return type; });
  fs_.add_attribute(dir_ + "/temp", [this] {
    return std::to_string(static_cast<long>(std::lround(read_temp_().value() * 1000.0)));
  });
}

ThermalZone::~ThermalZone() {
  fs_.remove_attribute(dir_ + "/type");
  fs_.remove_attribute(dir_ + "/temp");
  for (std::size_t i = 0; i < trips_.size(); ++i) {
    fs_.remove_attribute(dir_ + "/trip_point_" + std::to_string(i) + "_temp");
    fs_.remove_attribute(dir_ + "/trip_point_" + std::to_string(i) + "_type");
  }
}

std::size_t ThermalZone::add_trip(TripPoint trip) {
  const std::size_t index = trips_.size();
  trips_.push_back(trip);
  const std::string base = dir_ + "/trip_point_" + std::to_string(index);
  fs_.add_attribute(base + "_temp", [this, index] {
    return std::to_string(
        static_cast<long>(std::lround(trips_[index].temperature.value() * 1000.0)));
  });
  fs_.add_attribute(base + "_type", [this, index] {
    return std::string{trips_[index].type == TripType::kCritical ? "critical" : "passive"};
  });
  return index;
}

void ThermalZone::bind(CoolingDevice* device) {
  THERMCTL_ASSERT(device != nullptr, "cannot bind null cooling device");
  devices_.push_back(device);
}

FanCoolingAdapter::FanCoolingAdapter(std::function<bool(DutyCycle)> write_duty,
                                     DutyCycle min_duty, DutyCycle max_duty, long states)
    : write_duty_(std::move(write_duty)),
      min_duty_(min_duty),
      max_duty_(max_duty),
      states_(states) {
  THERMCTL_ASSERT(static_cast<bool>(write_duty_), "fan adapter needs an actuator");
  THERMCTL_ASSERT(states_ >= 1, "need at least one cooling state");
  THERMCTL_ASSERT(max_duty_.percent() > min_duty_.percent(), "duty range inverted");
}

bool FanCoolingAdapter::set_cooling_state(long state) {
  if (state < 0 || state > states_) {
    return false;
  }
  const double frac = static_cast<double>(state) / static_cast<double>(states_);
  const double duty =
      min_duty_.percent() + frac * (max_duty_.percent() - min_duty_.percent());
  if (!write_duty_(DutyCycle{duty})) {
    return false;
  }
  state_ = state;
  return true;
}

DvfsCoolingAdapter::DvfsCoolingAdapter(std::function<bool(long)> set_khz,
                                       std::vector<long> ladder_khz)
    : set_khz_(std::move(set_khz)), ladder_khz_(std::move(ladder_khz)) {
  THERMCTL_ASSERT(static_cast<bool>(set_khz_), "dvfs adapter needs an actuator");
  THERMCTL_ASSERT(ladder_khz_.size() >= 2, "need at least two frequencies");
  THERMCTL_ASSERT(std::is_sorted(ladder_khz_.rbegin(), ladder_khz_.rend()),
                  "ladder must be descending");
}

bool DvfsCoolingAdapter::set_cooling_state(long state) {
  if (state < 0 || state > max_cooling_state()) {
    return false;
  }
  if (!set_khz_(ladder_khz_[static_cast<std::size_t>(state)])) {
    return false;
  }
  state_ = state;
  return true;
}

}  // namespace thermctl::sysfs
