// Virtual sysfs attribute tree.
//
// On the paper's platform the in-band control plane is Linux sysfs: cpufreq
// exposes frequency knobs, hwmon exposes temperatures and PWM. The simulated
// node reproduces that layer as a tree of string-valued attributes so
// governors and tools interact with the "OS" the same way a real daemon
// would (read/write small text files), rather than poking C++ objects
// directly. Tests exercise the exact attribute grammar (e.g. millidegrees in
// temp*_input).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace thermctl::sysfs {

/// Read handler: produces the attribute's current contents.
using ReadFn = std::function<std::string()>;
/// Write handler: consumes a value; returns false on rejection (-EINVAL).
using WriteFn = std::function<bool(const std::string&)>;

class VirtualFs {
 public:
  /// Registers an attribute at `path` (e.g. "/sys/class/hwmon/hwmon0/temp1_input").
  /// Either handler may be null for write-only / read-only attributes.
  void add_attribute(const std::string& path, ReadFn read, WriteFn write = nullptr);

  void remove_attribute(const std::string& path);

  [[nodiscard]] bool exists(const std::string& path) const;

  /// Reads an attribute; nullopt if missing or write-only (-EACCES).
  [[nodiscard]] std::optional<std::string> read(const std::string& path) const;

  /// Reads and parses as a long integer; nullopt on missing/parse failure.
  [[nodiscard]] std::optional<long> read_long(const std::string& path) const;

  /// Writes an attribute; false if missing, read-only, or rejected.
  bool write(const std::string& path, const std::string& value);
  bool write_long(const std::string& path, long value);

  /// All attribute paths under a directory prefix, sorted.
  [[nodiscard]] std::vector<std::string> list(const std::string& dir_prefix) const;

 private:
  struct Attribute {
    ReadFn read;
    WriteFn write;
  };
  std::map<std::string, Attribute> attrs_;
};

}  // namespace thermctl::sysfs
