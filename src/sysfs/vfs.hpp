// Virtual sysfs attribute tree.
//
// On the paper's platform the in-band control plane is Linux sysfs: cpufreq
// exposes frequency knobs, hwmon exposes temperatures and PWM. The simulated
// node reproduces that layer as a tree of string-valued attributes so
// governors and tools interact with the "OS" the same way a real daemon
// would (read/write small text files), rather than poking C++ objects
// directly. Tests exercise the exact attribute grammar (e.g. millidegrees in
// temp*_input).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace thermctl::sysfs {

/// Read handler: produces the attribute's current contents.
using ReadFn = std::function<std::string()>;
/// Write handler: consumes a value; returns false on rejection (-EINVAL).
using WriteFn = std::function<bool(const std::string&)>;
/// Typed handlers for numeric attributes (kernel-style integer files):
/// the text surface is synthesized from these, and handle-based
/// read_long/write_long bypass the string round-trip entirely.
using LongReadFn = std::function<long()>;
using LongWriteFn = std::function<bool(long)>;

class VirtualFs {
 private:
  struct Attribute {
    ReadFn read;
    WriteFn write;
    // Set only for attributes registered via add_attribute_long; the fast
    // path for numeric handle access on the sampling hot path.
    LongReadFn read_long;
    LongWriteFn write_long;
  };

 public:
  /// Opaque cached handle to one attribute, resolved once with open().
  /// Skips the per-access path lookup on the sampling hot path (controllers
  /// read temperatures every tick on up to 100k nodes). Removing the
  /// attribute *invalidates* the handle safely: the attribute is retired in
  /// place (handlers cleared, storage kept alive), so a stale handle reads
  /// nullopt / writes false rather than dangling — and if the path is later
  /// re-registered with new handlers, old handles can never observe the old
  /// (stale) values; callers re-open() to see the new attribute.
  class Handle {
   public:
    Handle() = default;
    [[nodiscard]] explicit operator bool() const { return attr_ != nullptr; }

   private:
    friend class VirtualFs;
    explicit Handle(const Attribute* attr) : attr_(attr) {}
    const Attribute* attr_ = nullptr;
  };

  /// Registers an attribute at `path` (e.g. "/sys/class/hwmon/hwmon0/temp1_input").
  /// Either handler may be null for write-only / read-only attributes.
  void add_attribute(const std::string& path, ReadFn read, WriteFn write = nullptr);

  /// Registers a numeric attribute from typed handlers. The string surface
  /// (read()/write(), path or handle) is synthesized — reads render with
  /// std::to_string, writes parse with strtol and reject non-numeric input
  /// — so the sysfs text grammar is unchanged; but read_long()/write_long()
  /// through a handle call the typed handlers directly, skipping the
  /// format/parse round-trip. Use for integer files polled every tick
  /// (temp1_input, scaling_cur_freq, pwm1).
  void add_attribute_long(const std::string& path, LongReadFn read,
                          LongWriteFn write = nullptr);

  /// Unregisters `path`. Outstanding handles to it are invalidated (reads
  /// return nullopt, writes return false) but never dangle.
  void remove_attribute(const std::string& path);

  [[nodiscard]] bool exists(const std::string& path) const;

  /// Reads an attribute; nullopt if missing or write-only (-EACCES).
  [[nodiscard]] std::optional<std::string> read(const std::string& path) const;

  /// Reads and parses as a long integer; nullopt on missing/parse failure.
  [[nodiscard]] std::optional<long> read_long(const std::string& path) const;

  /// Writes an attribute; false if missing, read-only, or rejected.
  bool write(const std::string& path, const std::string& value);
  bool write_long(const std::string& path, long value);

  /// Resolves `path` once; a null handle if the attribute is missing.
  [[nodiscard]] Handle open(const std::string& path) const;

  /// Handle-based accessors: identical semantics to the path forms (same
  /// handlers, same text grammar), minus the lookup.
  [[nodiscard]] std::optional<std::string> read(Handle h) const;
  [[nodiscard]] std::optional<long> read_long(Handle h) const;
  bool write(Handle h, const std::string& value);
  bool write_long(Handle h, long value);

  /// All attribute paths under a directory prefix, sorted.
  [[nodiscard]] std::vector<std::string> list(const std::string& dir_prefix) const;

 private:
  // unique_ptr storage: attribute addresses outlive map surgery, and
  // remove_attribute() can retire the allocation into the graveyard below
  // instead of freeing memory live handles may still point at.
  std::map<std::string, std::unique_ptr<Attribute>> attrs_;
  // Removed attributes, kept alive (with handlers cleared) so stale cached
  // handles fail closed instead of reading freed — or re-registered-and-
  // different — state. Bounded by the number of removals, which is tiny
  // (device unpublish events), not per-access.
  std::vector<std::unique_ptr<Attribute>> retired_;
};

}  // namespace thermctl::sysfs
