#include "sysfs/proc_stat.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/assert.hpp"

namespace thermctl::sysfs {

ProcStat::ProcStat(VirtualFs& fs, CounterFn busy_jiffies, CounterFn total_jiffies)
    : fs_(fs), busy_(std::move(busy_jiffies)), total_(std::move(total_jiffies)) {
  THERMCTL_ASSERT(static_cast<bool>(busy_) && static_cast<bool>(total_),
                  "proc stat needs counter sources");
  fs_.add_attribute(kPath, [this] {
    const std::uint64_t busy = busy_();
    const std::uint64_t total = total_();
    const std::uint64_t idle = total >= busy ? total - busy : 0;
    // Kernel layout: user nice system idle iowait irq softirq. We fold all
    // busy time into "user" and report zeros elsewhere — daemons sum the
    // busy columns and diff against idle, which this preserves exactly.
    char buf[128];
    std::snprintf(buf, sizeof buf, "cpu  %" PRIu64 " 0 0 %" PRIu64 " 0 0 0\n", busy, idle);
    return std::string{buf};
  });
}

ProcStat::~ProcStat() { fs_.remove_attribute(kPath); }

std::optional<JiffySnapshot> ProcStat::parse(const std::string& contents) {
  std::uint64_t user = 0;
  std::uint64_t nice = 0;
  std::uint64_t system = 0;
  std::uint64_t idle = 0;
  if (std::sscanf(contents.c_str(), "cpu %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64, &user,
                  &nice, &system, &idle) != 4) {
    return std::nullopt;
  }
  JiffySnapshot snap;
  snap.busy = user + nice + system;
  snap.total = snap.busy + idle;
  return snap;
}

std::optional<JiffySnapshot> ProcStat::read(const VirtualFs& fs) const {
  const auto contents = fs.read(kPath);
  if (!contents.has_value()) {
    return std::nullopt;
  }
  return parse(*contents);
}

}  // namespace thermctl::sysfs
