// Linux thermal framework: zones, trip points and cooling devices.
//
// The modern kernel generalizes thermal control exactly the way this paper
// proposed: sensors become *thermal zones*, actuators become *cooling
// devices* with an abstract 0..max_state scale (fans, DVFS and idle
// injection alike), and governors bind them through trip points. Building
// this surface gives the reproduction a present-day baseline (the step_wise
// governor, see core/step_wise.hpp) and shows the paper's thermal-control-
// array idea in its descendant form.
//
// Sysfs contract (subset):
//   /sys/class/thermal/thermal_zone<N>/type
//   /sys/class/thermal/thermal_zone<N>/temp            millidegrees
//   /sys/class/thermal/thermal_zone<N>/trip_point_<K>_temp
//   /sys/class/thermal/thermal_zone<N>/trip_point_<K>_type   passive|critical
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sysfs/vfs.hpp"

namespace thermctl::sysfs {

/// Abstract cooling device: anything with a 0..max_state throttle scale.
/// (PowerClampDevice implements this contract natively; adapters below wrap
/// the fan and DVFS paths.)
class CoolingDevice {
 public:
  virtual ~CoolingDevice() = default;
  [[nodiscard]] virtual long max_cooling_state() const = 0;
  [[nodiscard]] virtual long cooling_state() const = 0;
  virtual bool set_cooling_state(long state) = 0;
  [[nodiscard]] virtual std::string cooling_type() const = 0;
};

enum class TripType { kPassive, kCritical };

struct TripPoint {
  Celsius temperature{};
  TripType type = TripType::kPassive;
};

class ThermalZone {
 public:
  /// `read_temp` supplies the zone temperature (normally the node's hwmon
  /// sensor reading).
  ThermalZone(VirtualFs& fs, std::string root, int index, std::string type,
              std::function<Celsius()> read_temp);
  ~ThermalZone();

  ThermalZone(const ThermalZone&) = delete;
  ThermalZone& operator=(const ThermalZone&) = delete;

  [[nodiscard]] const std::string& directory() const { return dir_; }

  /// Adds a trip point; returns its index. Registers the sysfs attributes.
  std::size_t add_trip(TripPoint trip);
  [[nodiscard]] const std::vector<TripPoint>& trips() const { return trips_; }

  /// Binds a cooling device to this zone (not owned). Governors iterate
  /// bound devices.
  void bind(CoolingDevice* device);
  [[nodiscard]] const std::vector<CoolingDevice*>& bound_devices() const { return devices_; }

  [[nodiscard]] Celsius temperature() const { return read_temp_(); }

 private:
  VirtualFs& fs_;
  std::string dir_;
  std::function<Celsius()> read_temp_;
  std::vector<TripPoint> trips_;
  std::vector<CoolingDevice*> devices_;
};

/// Fan as a cooling device: state s maps to duty (s / max) * duty ceiling.
class FanCoolingAdapter final : public CoolingDevice {
 public:
  /// `write_duty` actuates the fan (normally HwmonDevice::write_pwm);
  /// `states` is the resolution of the throttle scale.
  FanCoolingAdapter(std::function<bool(DutyCycle)> write_duty, DutyCycle min_duty,
                    DutyCycle max_duty, long states = 10);

  [[nodiscard]] long max_cooling_state() const override { return states_; }
  [[nodiscard]] long cooling_state() const override { return state_; }
  bool set_cooling_state(long state) override;
  [[nodiscard]] std::string cooling_type() const override { return "fan"; }

 private:
  std::function<bool(DutyCycle)> write_duty_;
  DutyCycle min_duty_;
  DutyCycle max_duty_;
  long states_;
  long state_ = 0;
};

/// DVFS as a cooling device: state s = s-th P-state below nominal.
class DvfsCoolingAdapter final : public CoolingDevice {
 public:
  /// `set_khz` actuates (normally CpufreqPolicy::set_khz); `ladder_khz` is
  /// the frequency ladder in descending order.
  DvfsCoolingAdapter(std::function<bool(long)> set_khz, std::vector<long> ladder_khz);

  [[nodiscard]] long max_cooling_state() const override {
    return static_cast<long>(ladder_khz_.size()) - 1;
  }
  [[nodiscard]] long cooling_state() const override { return state_; }
  bool set_cooling_state(long state) override;
  [[nodiscard]] std::string cooling_type() const override { return "dvfs"; }

 private:
  std::function<bool(long)> set_khz_;
  std::vector<long> ladder_khz_;
  long state_ = 0;
};

}  // namespace thermctl::sysfs
