#include "sysfs/powerclamp.hpp"

#include <cmath>
#include <cstdlib>

namespace thermctl::sysfs {

PowerClampDevice::PowerClampDevice(VirtualFs& fs, std::string root, int index,
                                   hw::CpuDevice& cpu)
    : fs_(fs),
      dir_(root + "/cooling_device" + std::to_string(index)),
      cpu_(cpu),
      cstate_(cpu.idle_injector().cstate_count() - 1) {
  fs_.add_attribute(dir_ + "/type", [] { return std::string{"intel_powerclamp"}; });
  fs_.add_attribute(dir_ + "/max_state", [this] { return std::to_string(max_state()); });
  fs_.add_attribute(
      dir_ + "/cur_state",
      [this] {
        return std::to_string(
            static_cast<long>(std::lround(cpu_.idle_injector().fraction() * 100.0)));
      },
      [this](const std::string& value) {
        char* end = nullptr;
        const long state = std::strtol(value.c_str(), &end, 10);
        if (end == value.c_str() || state < 0 || state > max_state()) {
          return false;
        }
        cpu_.idle_injector().set_injection(static_cast<double>(state) / 100.0, cstate_);
        return true;
      });
}

PowerClampDevice::~PowerClampDevice() {
  for (const auto& name : {"/type", "/max_state", "/cur_state"}) {
    fs_.remove_attribute(dir_ + name);
  }
}

long PowerClampDevice::max_state() const {
  return static_cast<long>(std::lround(cpu_.idle_injector().params().max_fraction * 100.0));
}

long PowerClampDevice::cur_state() const { return fs_.read_long(dir_ + "/cur_state").value_or(0); }

bool PowerClampDevice::set_cur_state(long state) {
  return fs_.write_long(dir_ + "/cur_state", state);
}

}  // namespace thermctl::sysfs
