#include "sysfs/cpufreq.hpp"

#include <cstdlib>
#include <sstream>

namespace thermctl::sysfs {

CpufreqPolicy::CpufreqPolicy(VirtualFs& fs, std::string root, int index, hw::CpuDevice& cpu)
    : fs_(fs), dir_(root + "/cpu" + std::to_string(index) + "/cpufreq"), cpu_(cpu) {
  fs_.add_attribute(dir_ + "/scaling_available_frequencies", [this] {
    std::ostringstream out;
    for (std::size_t i = 0; i < cpu_.pstate_count(); ++i) {
      if (i > 0) {
        out << ' ';
      }
      out << to_khz(cpu_.pstates()[i].frequency);
    }
    return out.str();
  });
  fs_.add_attribute_long(dir_ + "/scaling_cur_freq",
                         [this] { return to_khz(cpu_.frequency()); });
  fs_.add_attribute_long(dir_ + "/cpuinfo_max_freq",
                         [this] { return to_khz(cpu_.max_frequency()); });
  fs_.add_attribute_long(dir_ + "/cpuinfo_min_freq",
                         [this] { return to_khz(cpu_.min_frequency()); });
  fs_.add_attribute(dir_ + "/scaling_governor", [] { return std::string{"userspace"}; });
  fs_.add_attribute_long(
      dir_ + "/scaling_setspeed", [this] { return to_khz(cpu_.frequency()); },
      [this](long khz) {
        if (khz <= 0) {
          return false;
        }
        cpu_.set_frequency(from_khz(khz));
        return true;
      });
  fs_.add_attribute(dir_ + "/stats/total_trans",
                    [this] { return std::to_string(cpu_.transition_count()); });
  // Governors hit these every sampling tick; cached handles skip the path
  // lookup. Handles are to our own attributes, dropped in the destructor.
  cur_freq_attr_ = fs_.open(dir_ + "/scaling_cur_freq");
  max_freq_attr_ = fs_.open(dir_ + "/cpuinfo_max_freq");
  min_freq_attr_ = fs_.open(dir_ + "/cpuinfo_min_freq");
  setspeed_attr_ = fs_.open(dir_ + "/scaling_setspeed");
}

CpufreqPolicy::~CpufreqPolicy() {
  for (const auto& name :
       {"/scaling_available_frequencies", "/scaling_cur_freq", "/cpuinfo_max_freq",
        "/cpuinfo_min_freq", "/scaling_governor", "/scaling_setspeed", "/stats/total_trans"}) {
    fs_.remove_attribute(dir_ + name);
  }
}

long CpufreqPolicy::cur_khz() const { return fs_.read_long(cur_freq_attr_).value_or(0); }

long CpufreqPolicy::max_khz() const { return fs_.read_long(max_freq_attr_).value_or(0); }

long CpufreqPolicy::min_khz() const { return fs_.read_long(min_freq_attr_).value_or(0); }

bool CpufreqPolicy::set_khz(long khz) { return fs_.write_long(setspeed_attr_, khz); }

std::vector<double> CpufreqPolicy::available_ghz() const {
  std::vector<double> out;
  const auto contents = fs_.read(dir_ + "/scaling_available_frequencies");
  if (!contents.has_value()) {
    return out;
  }
  std::istringstream in{*contents};
  long khz = 0;
  while (in >> khz) {
    out.push_back(from_khz(khz).value());
  }
  return out;
}

}  // namespace thermctl::sysfs
