#include "sysfs/vfs.hpp"

#include <cstdlib>

#include "common/assert.hpp"

namespace thermctl::sysfs {

void VirtualFs::add_attribute(const std::string& path, ReadFn read, WriteFn write) {
  THERMCTL_ASSERT(!path.empty() && path.front() == '/', "attribute path must be absolute");
  THERMCTL_ASSERT(read || write, "attribute needs at least one handler");
  THERMCTL_ASSERT(!attrs_.contains(path), "attribute already registered");
  attrs_[path] =
      std::make_unique<Attribute>(Attribute{std::move(read), std::move(write), nullptr, nullptr});
}

void VirtualFs::add_attribute_long(const std::string& path, LongReadFn read, LongWriteFn write) {
  THERMCTL_ASSERT(!path.empty() && path.front() == '/', "attribute path must be absolute");
  THERMCTL_ASSERT(read || write, "attribute needs at least one handler");
  THERMCTL_ASSERT(!attrs_.contains(path), "attribute already registered");
  Attribute attr;
  if (read) {
    attr.read = [read] { return std::to_string(read()); };
  }
  if (write) {
    attr.write = [write](const std::string& value) {
      char* end = nullptr;
      const long v = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str()) {
        return false;
      }
      return write(v);
    };
  }
  attr.read_long = std::move(read);
  attr.write_long = std::move(write);
  attrs_[path] = std::make_unique<Attribute>(std::move(attr));
}

void VirtualFs::remove_attribute(const std::string& path) {
  auto it = attrs_.find(path);
  if (it == attrs_.end()) {
    return;
  }
  // Retire rather than free: live handles keep a raw pointer to the
  // attribute. Clearing the handlers makes every stale access fail closed
  // (nullopt / false), and keeping the allocation in the graveyard means a
  // re-registration at the same path can never alias the old address with
  // new state — mixed string-path and typed-handle access stays coherent.
  *it->second = Attribute{};
  retired_.push_back(std::move(it->second));
  attrs_.erase(it);
}

bool VirtualFs::exists(const std::string& path) const { return attrs_.contains(path); }

std::optional<std::string> VirtualFs::read(const std::string& path) const {
  auto it = attrs_.find(path);
  if (it == attrs_.end() || !it->second->read) {
    return std::nullopt;
  }
  return it->second->read();
}

namespace {

std::optional<long> parse_long(const std::optional<std::string>& contents) {
  if (!contents.has_value()) {
    return std::nullopt;
  }
  char* end = nullptr;
  const long v = std::strtol(contents->c_str(), &end, 10);
  if (end == contents->c_str()) {
    return std::nullopt;
  }
  return v;
}

}  // namespace

std::optional<long> VirtualFs::read_long(const std::string& path) const {
  return parse_long(read(path));
}

bool VirtualFs::write(const std::string& path, const std::string& value) {
  auto it = attrs_.find(path);
  if (it == attrs_.end() || !it->second->write) {
    return false;
  }
  return it->second->write(value);
}

bool VirtualFs::write_long(const std::string& path, long value) {
  return write(path, std::to_string(value));
}

VirtualFs::Handle VirtualFs::open(const std::string& path) const {
  auto it = attrs_.find(path);
  if (it == attrs_.end()) {
    return Handle{};
  }
  return Handle{it->second.get()};
}

std::optional<std::string> VirtualFs::read(Handle h) const {
  if (h.attr_ == nullptr || !h.attr_->read) {
    return std::nullopt;
  }
  return h.attr_->read();
}

std::optional<long> VirtualFs::read_long(Handle h) const {
  if (h.attr_ != nullptr && h.attr_->read_long) {
    return h.attr_->read_long();
  }
  return parse_long(read(h));
}

bool VirtualFs::write(Handle h, const std::string& value) {
  if (h.attr_ == nullptr || !h.attr_->write) {
    return false;
  }
  return h.attr_->write(value);
}

bool VirtualFs::write_long(Handle h, long value) {
  if (h.attr_ != nullptr && h.attr_->write_long) {
    return h.attr_->write_long(value);
  }
  return write(h, std::to_string(value));
}

std::vector<std::string> VirtualFs::list(const std::string& dir_prefix) const {
  std::string prefix = dir_prefix;
  if (prefix.empty() || prefix.back() != '/') {
    prefix += '/';
  }
  std::vector<std::string> out;
  // std::map iterates in sorted order; prefix range scan.
  for (auto it = attrs_.lower_bound(prefix); it != attrs_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    out.push_back(it->first);
  }
  return out;
}

}  // namespace thermctl::sysfs
