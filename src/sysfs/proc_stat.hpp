// /proc/stat binding.
//
// Utilization-driven daemons (CPUSPEED here; ondemand's ancestors generally)
// compute load by diffing the cumulative jiffy counters in /proc/stat. This
// binding publishes the node's counters in the kernel's format:
//
//   cpu  <user> <nice> <system> <idle> ...
//
// and provides the parse helper daemons use, so the in-band utilization path
// is file-shaped end to end, like every other surface in this stack.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sysfs/vfs.hpp"

namespace thermctl::sysfs {

struct JiffySnapshot {
  std::uint64_t busy = 0;
  std::uint64_t total = 0;
};

class ProcStat {
 public:
  using CounterFn = std::function<std::uint64_t()>;

  /// Publishes `/proc/stat` in `fs` backed by the node's counters.
  ProcStat(VirtualFs& fs, CounterFn busy_jiffies, CounterFn total_jiffies);
  ~ProcStat();

  ProcStat(const ProcStat&) = delete;
  ProcStat& operator=(const ProcStat&) = delete;

  /// Reads and parses the attribute (what a daemon does every interval).
  [[nodiscard]] std::optional<JiffySnapshot> read(const VirtualFs& fs) const;

  /// Parses a /proc/stat cpu line; nullopt on malformed input.
  [[nodiscard]] static std::optional<JiffySnapshot> parse(const std::string& contents);

  static constexpr const char* kPath = "/proc/stat";

 private:
  VirtualFs& fs_;
  CounterFn busy_;
  CounterFn total_;
};

}  // namespace thermctl::sysfs
