// Linux-driver equivalent for the ADT7467 fan controller.
//
// The paper's authors "developed a Linux device driver that regulates fan
// speed using the i2c protocol". This class is that driver's simulation-side
// twin: it probes the chip's identification registers, switches PWM1 into
// manual behaviour, and exposes duty/temperature/RPM operations — all
// implemented as i2c register transactions, never as direct object access.
// Errors surface as status codes the way -EIO would from a real driver.
// Transfers go through a retry-with-backoff master, so transient bus glitches
// are absorbed below the driver API and counted in `io_stats()`.
#pragma once

#include <cstdint>
#include <optional>

#include "common/units.hpp"
#include "hw/adt7467.hpp"
#include "hw/i2c.hpp"
#include "hw/i2c_retry.hpp"

namespace thermctl::sysfs {

enum class DriverStatus : std::uint8_t {
  kOk,
  kProbeFailed,  // wrong/absent chip at the address
  kIoError,      // bus NAK / fault during a transaction
};

class Adt7467Driver {
 public:
  /// Typical ADT7467 SMBus address.
  static constexpr std::uint8_t kDefaultAddress = 0x2E;

  Adt7467Driver(hw::I2cBus& bus, std::uint8_t address = kDefaultAddress,
                hw::I2cRetryConfig retry = {});

  /// Verifies device/company IDs and switches PWM1 to manual behaviour.
  /// Must succeed before the control operations are used.
  DriverStatus probe();
  [[nodiscard]] bool probed() const { return probed_; }

  /// Commands a manual duty cycle (the dynamic-control actuation path).
  DriverStatus set_duty(DutyCycle duty);

  /// Reads back the duty the chip is driving.
  DriverStatus read_duty(DutyCycle& out);

  /// Reads the remote-diode temperature (1 °C register resolution).
  DriverStatus read_temperature(Celsius& out);

  /// Reads the fan tach and converts to RPM (nullopt RPM = stalled).
  DriverStatus read_rpm(std::optional<Rpm>& out);

  /// Restores the chip's automatic (Fig. 1 static curve) behaviour — used
  /// when handing control back to the "traditional" policy.
  DriverStatus set_automatic_mode();
  /// Re-enters manual behaviour (duty writes are only legal here).
  DriverStatus set_manual_mode();

  /// Programs the automatic-curve parameters (PWMmin / Tmin / Trange).
  DriverStatus configure_auto_curve(DutyCycle pwm_min, Celsius tmin, CelsiusDelta trange);

  /// Caps the automatic curve's output (PWM1_MAX) — how the experiments
  /// emulate less powerful fans under the traditional policy.
  DriverStatus set_max_duty(DutyCycle max_duty);

  /// Transfer/retry/fault counters for this driver's device address.
  [[nodiscard]] const hw::I2cErrorStats& io_stats() const { return master_.stats(address_); }

  /// Attaches a decision-trace ring to the underlying retrying master so bus
  /// retries/exhaustions show up on the node's timeline (nullptr detaches).
  void set_trace(obs::TraceRing* trace) { master_.set_trace(trace); }

 private:
  DriverStatus read_reg(std::uint8_t reg, std::uint8_t& out);
  DriverStatus write_reg(std::uint8_t reg, std::uint8_t value);

  hw::RetryingI2cMaster master_;
  std::uint8_t address_;
  bool probed_ = false;
};

}  // namespace thermctl::sysfs
