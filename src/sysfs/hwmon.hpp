// hwmon sysfs binding (the lm-sensors surface).
//
// The paper samples CPU temperature "through lm-sensors"; lm-sensors reads
// the hwmon class tree. This binding publishes a thermal sensor, fan tach and
// PWM control as hwmon attributes with the kernel's conventions: temperatures
// in millidegrees (`temp1_input`), fan speed in RPM (`fan1_input`), PWM as
// 0–255 (`pwm1`) with `pwm1_enable` selecting automatic (2) or manual (1)
// mode.
#pragma once

#include <string>

#include "common/units.hpp"
#include "hw/thermal_sensor.hpp"
#include "sysfs/adt7467_driver.hpp"
#include "sysfs/vfs.hpp"

namespace thermctl::sysfs {

class HwmonDevice {
 public:
  /// Publishes `<root>/hwmon<index>/...` backed by `sensor` (temperature) and
  /// `driver` (fan/PWM path). Neither is owned.
  HwmonDevice(VirtualFs& fs, std::string root, int index, hw::ThermalSensor& sensor,
              Adt7467Driver& driver);
  ~HwmonDevice();

  HwmonDevice(const HwmonDevice&) = delete;
  HwmonDevice& operator=(const HwmonDevice&) = delete;

  [[nodiscard]] const std::string& directory() const { return dir_; }

  /// Reads temp1_input and converts from millidegrees.
  [[nodiscard]] Celsius read_temperature() const;

  /// Writes pwm1 (0-255 encoding) through the sysfs path.
  bool write_pwm(DutyCycle duty);

  /// pwm1_enable = 1 (manual) / 2 (automatic), the lm-sensors convention.
  bool set_manual_mode();
  bool set_automatic_mode();

 private:
  VirtualFs& fs_;
  std::string dir_;
  hw::ThermalSensor& sensor_;
  Adt7467Driver& driver_;
  // Cached handles to our own attributes (hot sampling path).
  VirtualFs::Handle temp_attr_;
  VirtualFs::Handle pwm_attr_;
  VirtualFs::Handle pwm_enable_attr_;
};

}  // namespace thermctl::sysfs
