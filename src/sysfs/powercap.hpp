// RAPL powercap sysfs binding.
//
// Linux exposes the CPU's running-average-power-limit energy counters under
// /sys/class/powercap/intel-rapl:<N>/energy_uj. Counter-augmented
// controllers (the paper's future-work §5 item: "integration of hardware
// counter and data in our techniques to improve our prediction mechanisms")
// read package power from here instead of waiting for it to appear as
// temperature.
#pragma once

#include <string>

#include "hw/cpu_device.hpp"
#include "sysfs/vfs.hpp"

namespace thermctl::sysfs {

class RaplDomain {
 public:
  /// Registers `<root>/intel-rapl:<index>/...` backed by `cpu`'s counters.
  RaplDomain(VirtualFs& fs, std::string root, int index, hw::CpuDevice& cpu);
  ~RaplDomain();

  RaplDomain(const RaplDomain&) = delete;
  RaplDomain& operator=(const RaplDomain&) = delete;

  [[nodiscard]] const std::string& directory() const { return dir_; }

  /// Current accumulated energy in microjoules (the energy_uj attribute).
  [[nodiscard]] std::uint64_t energy_uj() const;

  /// APERF/MPERF exposed alongside (a simulation convenience; real systems
  /// read these via MSRs, but the semantic content is identical).
  [[nodiscard]] std::uint64_t aperf() const;
  [[nodiscard]] std::uint64_t mperf() const;

 private:
  VirtualFs& fs_;
  std::string dir_;
  hw::CpuDevice& cpu_;
};

}  // namespace thermctl::sysfs
