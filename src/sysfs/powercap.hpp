// RAPL powercap sysfs binding.
//
// Linux exposes the CPU's running-average-power-limit energy counters under
// /sys/class/powercap/intel-rapl:<N>/energy_uj. Counter-augmented
// controllers (the paper's future-work §5 item: "integration of hardware
// counter and data in our techniques to improve our prediction mechanisms")
// read package power from here instead of waiting for it to appear as
// temperature.
#pragma once

#include <string>

#include "hw/cpu_device.hpp"
#include "sysfs/vfs.hpp"

namespace thermctl::sysfs {

class RaplDomain {
 public:
  /// The counter's wrap range, mirroring the kernel's max_energy_range_uj
  /// attribute: energy_uj counts up to this value and then wraps to zero
  /// (~65.5 kJ, a real Intel package domain range — minutes of runtime at
  /// server power, so consumers MUST handle wrap; see energy_delta_uj).
  static constexpr std::uint64_t kMaxEnergyRangeUj = 65'532'610'987ULL;

  /// Registers `<root>/intel-rapl:<index>/...` backed by `cpu`'s counters.
  RaplDomain(VirtualFs& fs, std::string root, int index, hw::CpuDevice& cpu);
  ~RaplDomain();

  RaplDomain(const RaplDomain&) = delete;
  RaplDomain& operator=(const RaplDomain&) = delete;

  [[nodiscard]] const std::string& directory() const { return dir_; }

  /// Current accumulated energy in microjoules (the energy_uj attribute).
  /// Wraps to zero past max_energy_range_uj(), as the real counter does.
  [[nodiscard]] std::uint64_t energy_uj() const;

  /// Maximum value energy_uj() reaches before wrapping to zero.
  [[nodiscard]] std::uint64_t max_energy_range_uj() const { return kMaxEnergyRangeUj; }

  /// Wrap-correct delta between two energy_uj() readings taken `prev` then
  /// `cur`: assumes at most one wrap of a counter whose maximum value is
  /// `range` (the kernel convention: the counter holds values in
  /// [0, range] and wraps max → 0).
  [[nodiscard]] static std::uint64_t energy_delta_uj(std::uint64_t prev, std::uint64_t cur,
                                                     std::uint64_t range = kMaxEnergyRangeUj) {
    return cur >= prev ? cur - prev : cur + (range - prev) + 1;
  }

  /// APERF/MPERF exposed alongside (a simulation convenience; real systems
  /// read these via MSRs, but the semantic content is identical).
  [[nodiscard]] std::uint64_t aperf() const;
  [[nodiscard]] std::uint64_t mperf() const;

 private:
  VirtualFs& fs_;
  std::string dir_;
  hw::CpuDevice& cpu_;
};

}  // namespace thermctl::sysfs
