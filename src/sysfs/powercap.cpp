#include "sysfs/powercap.hpp"

namespace thermctl::sysfs {

RaplDomain::RaplDomain(VirtualFs& fs, std::string root, int index, hw::CpuDevice& cpu)
    : fs_(fs), dir_(root + "/intel-rapl:" + std::to_string(index)), cpu_(cpu) {
  fs_.add_attribute(dir_ + "/name", [] { return std::string{"package-0"}; });
  fs_.add_attribute(dir_ + "/energy_uj", [this] {
    return std::to_string(cpu_.energy_uj() % (kMaxEnergyRangeUj + 1));
  });
  fs_.add_attribute(dir_ + "/max_energy_range_uj",
                    [] { return std::to_string(kMaxEnergyRangeUj); });
  fs_.add_attribute(dir_ + "/aperf", [this] { return std::to_string(cpu_.aperf()); });
  fs_.add_attribute(dir_ + "/mperf", [this] { return std::to_string(cpu_.mperf()); });
}

RaplDomain::~RaplDomain() {
  for (const auto& name :
       {"/name", "/energy_uj", "/max_energy_range_uj", "/aperf", "/mperf"}) {
    fs_.remove_attribute(dir_ + name);
  }
}

std::uint64_t RaplDomain::energy_uj() const {
  const auto v = fs_.read(dir_ + "/energy_uj");
  return v.has_value() ? std::stoull(*v) : 0;
}

std::uint64_t RaplDomain::aperf() const {
  const auto v = fs_.read(dir_ + "/aperf");
  return v.has_value() ? std::stoull(*v) : 0;
}

std::uint64_t RaplDomain::mperf() const {
  const auto v = fs_.read(dir_ + "/mperf");
  return v.has_value() ? std::stoull(*v) : 0;
}

}  // namespace thermctl::sysfs
