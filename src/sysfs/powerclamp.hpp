// Idle-injection cooling device (the intel_powerclamp sysfs contract).
//
// Linux exposes forced-idle as a thermal *cooling device*:
//   /sys/class/thermal/cooling_device<N>/type       "intel_powerclamp"
//   /sys/class/thermal/cooling_device<N>/max_state  maximum idle ratio step
//   /sys/class/thermal/cooling_device<N>/cur_state  commanded idle ratio (%)
//
// This binding drives the CPU's IdleInjector through that contract, so the
// sleep-state technique actuates through the same kind of OS surface as the
// fan (hwmon) and DVFS (cpufreq) paths.
#pragma once

#include <string>

#include "hw/cpu_device.hpp"
#include "sysfs/vfs.hpp"

namespace thermctl::sysfs {

class PowerClampDevice {
 public:
  /// Registers `<root>/cooling_device<index>/...` driving `cpu`'s injector.
  PowerClampDevice(VirtualFs& fs, std::string root, int index, hw::CpuDevice& cpu);
  ~PowerClampDevice();

  PowerClampDevice(const PowerClampDevice&) = delete;
  PowerClampDevice& operator=(const PowerClampDevice&) = delete;

  [[nodiscard]] const std::string& directory() const { return dir_; }

  /// Maximum cur_state (idle percent ceiling from the injector's params).
  [[nodiscard]] long max_state() const;
  [[nodiscard]] long cur_state() const;
  bool set_cur_state(long state);

  /// Selects which C-state injections use (deepest by default).
  void set_cstate_index(std::size_t index) { cstate_ = index; }

 private:
  VirtualFs& fs_;
  std::string dir_;
  hw::CpuDevice& cpu_;
  std::size_t cstate_;
};

}  // namespace thermctl::sysfs
