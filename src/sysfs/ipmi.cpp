#include "sysfs/ipmi.hpp"

#include "common/assert.hpp"

namespace thermctl::sysfs {

std::uint8_t BmcEndpoint::add_sensor(std::string name, std::string unit, SensorFn read) {
  THERMCTL_ASSERT(static_cast<bool>(read), "sensor needs a read function");
  THERMCTL_ASSERT(next_sensor_ != 0, "sensor repository full");
  const std::uint8_t num = next_sensor_++;
  sensors_[num] = Sensor{std::move(name), std::move(unit), std::move(read)};
  return num;
}

IpmiCompletion BmcEndpoint::get_sensor_reading(std::uint8_t sensor, SensorReading& out) const {
  if (!reachable_) {
    return IpmiCompletion::kDestinationUnavailable;
  }
  auto it = sensors_.find(sensor);
  if (it == sensors_.end()) {
    return IpmiCompletion::kInvalidSensor;
  }
  out.value = it->second.read();
  out.unit = it->second.unit;
  return IpmiCompletion::kOk;
}

std::vector<std::pair<std::uint8_t, std::string>> BmcEndpoint::list_sensors() const {
  std::vector<std::pair<std::uint8_t, std::string>> out;
  out.reserve(sensors_.size());
  for (const auto& [num, s] : sensors_) {
    out.emplace_back(num, s.name);
  }
  return out;
}

IpmiCompletion BmcEndpoint::set_fan_override(std::optional<DutyCycle> duty) {
  if (!reachable_) {
    return IpmiCompletion::kDestinationUnavailable;
  }
  if (!fan_override_) {
    return IpmiCompletion::kInvalidCommand;
  }
  fan_override_(duty);
  return IpmiCompletion::kOk;
}

void IpmiNetwork::attach(int node_id, BmcEndpoint* bmc) {
  THERMCTL_ASSERT(bmc != nullptr, "cannot attach null BMC");
  THERMCTL_ASSERT(!endpoints_.contains(node_id), "node id already attached");
  endpoints_[node_id] = bmc;
}

IpmiCompletion IpmiNetwork::get_sensor_reading(int node_id, std::uint8_t sensor,
                                               SensorReading& out) const {
  auto it = endpoints_.find(node_id);
  if (it == endpoints_.end()) {
    return IpmiCompletion::kDestinationUnavailable;
  }
  return it->second->get_sensor_reading(sensor, out);
}

IpmiCompletion IpmiNetwork::set_fan_override(int node_id, std::optional<DutyCycle> duty) {
  auto it = endpoints_.find(node_id);
  if (it == endpoints_.end()) {
    return IpmiCompletion::kDestinationUnavailable;
  }
  return it->second->set_fan_override(duty);
}

std::vector<int> IpmiNetwork::nodes() const {
  std::vector<int> out;
  out.reserve(endpoints_.size());
  for (const auto& [id, _] : endpoints_) {
    out.push_back(id);
  }
  return out;
}

}  // namespace thermctl::sysfs
