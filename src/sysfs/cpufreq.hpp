// cpufreq sysfs binding.
//
// Exposes a CpuDevice through the Linux cpufreq userspace-governor contract:
// frequencies are kHz strings, `scaling_setspeed` accepts a target, and
// `stats/total_trans` counts transitions (the number Table 1 reports).
// Governors in src/core talk to the CPU only through this interface, exactly
// as the paper's tDVFS and CPUSPEED daemons talked to /sys.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "hw/cpu_device.hpp"
#include "sysfs/vfs.hpp"

namespace thermctl::sysfs {

class CpufreqPolicy {
 public:
  /// Registers the cpufreq attribute set for `cpu` under
  /// `<root>/cpu<index>/cpufreq/` in `fs`. The policy does not own the device.
  CpufreqPolicy(VirtualFs& fs, std::string root, int index, hw::CpuDevice& cpu);
  ~CpufreqPolicy();

  CpufreqPolicy(const CpufreqPolicy&) = delete;
  CpufreqPolicy& operator=(const CpufreqPolicy&) = delete;

  [[nodiscard]] const std::string& directory() const { return dir_; }

  /// Convenience accessors mirroring the attribute contents.
  [[nodiscard]] long cur_khz() const;
  [[nodiscard]] long max_khz() const;
  [[nodiscard]] long min_khz() const;

  /// Sets frequency through the same path a sysfs write would take.
  bool set_khz(long khz);

  /// Parses scaling_available_frequencies into GHz values (file order).
  [[nodiscard]] std::vector<double> available_ghz() const;

  // lround, not truncation: 2.2 GHz * 1e6 lands just below 2200000 in
  // binary floating point, and a truncated 2199999 would never match the
  // ladder entries parsed back from the attribute text.
  static long to_khz(GigaHertz f) { return std::lround(f.value() * 1e6); }
  static GigaHertz from_khz(long khz) { return GigaHertz{static_cast<double>(khz) * 1e-6}; }

 private:
  VirtualFs& fs_;
  std::string dir_;
  hw::CpuDevice& cpu_;
  // Cached handles to our own attributes (hot sampling path).
  VirtualFs::Handle cur_freq_attr_;
  VirtualFs::Handle max_freq_attr_;
  VirtualFs::Handle min_freq_attr_;
  VirtualFs::Handle setspeed_attr_;
};

}  // namespace thermctl::sysfs
