#include "sysfs/adt7467_driver.hpp"

#include <cmath>

namespace thermctl::sysfs {

using hw::Adt7467;
using hw::I2cStatus;

Adt7467Driver::Adt7467Driver(hw::I2cBus& bus, std::uint8_t address, hw::I2cRetryConfig retry)
    : master_(bus, retry), address_(address) {}

DriverStatus Adt7467Driver::read_reg(std::uint8_t reg, std::uint8_t& out) {
  return master_.read_byte_data(address_, reg, out) == I2cStatus::kOk ? DriverStatus::kOk
                                                                      : DriverStatus::kIoError;
}

DriverStatus Adt7467Driver::write_reg(std::uint8_t reg, std::uint8_t value) {
  return master_.write_byte_data(address_, reg, value) == I2cStatus::kOk ? DriverStatus::kOk
                                                                         : DriverStatus::kIoError;
}

DriverStatus Adt7467Driver::probe() {
  std::uint8_t device_id = 0;
  std::uint8_t company_id = 0;
  if (read_reg(Adt7467::kRegDeviceId, device_id) != DriverStatus::kOk ||
      read_reg(Adt7467::kRegCompanyId, company_id) != DriverStatus::kOk) {
    return DriverStatus::kProbeFailed;
  }
  if (device_id != Adt7467::kDeviceId || company_id != Adt7467::kCompanyId) {
    return DriverStatus::kProbeFailed;
  }
  if (set_manual_mode() != DriverStatus::kOk) {
    return DriverStatus::kProbeFailed;
  }
  probed_ = true;
  return DriverStatus::kOk;
}

DriverStatus Adt7467Driver::set_duty(DutyCycle duty) {
  if (!probed_) {
    return DriverStatus::kProbeFailed;
  }
  return write_reg(Adt7467::kRegPwm1Duty, Adt7467::duty_to_reg(duty));
}

DriverStatus Adt7467Driver::read_duty(DutyCycle& out) {
  std::uint8_t raw = 0;
  const DriverStatus st = read_reg(Adt7467::kRegPwm1Duty, raw);
  if (st == DriverStatus::kOk) {
    out = Adt7467::reg_to_duty(raw);
  }
  return st;
}

DriverStatus Adt7467Driver::read_temperature(Celsius& out) {
  std::uint8_t raw = 0;
  const DriverStatus st = read_reg(Adt7467::kRegTempRemote1, raw);
  if (st == DriverStatus::kOk) {
    out = Celsius{static_cast<double>(static_cast<std::int8_t>(raw))};
  }
  return st;
}

DriverStatus Adt7467Driver::read_rpm(std::optional<Rpm>& out) {
  std::uint8_t lo = 0;
  std::uint8_t hi = 0;
  if (auto st = read_reg(Adt7467::kRegTach1Low, lo); st != DriverStatus::kOk) {
    return st;
  }
  if (auto st = read_reg(Adt7467::kRegTach1High, hi); st != DriverStatus::kOk) {
    return st;
  }
  const std::uint16_t count = static_cast<std::uint16_t>((hi << 8) | lo);
  if (count == 0xFFFF || count == 0) {
    out = std::nullopt;  // stalled
  } else {
    out = Rpm{Adt7467::kTachClock / static_cast<double>(count)};
  }
  return DriverStatus::kOk;
}

DriverStatus Adt7467Driver::set_automatic_mode() {
  return write_reg(Adt7467::kRegPwm1Config,
                   static_cast<std::uint8_t>(Adt7467::kBehaviourAutoRemote1 << 5));
}

DriverStatus Adt7467Driver::set_manual_mode() {
  return write_reg(Adt7467::kRegPwm1Config,
                   static_cast<std::uint8_t>(Adt7467::kBehaviourManual << 5));
}

DriverStatus Adt7467Driver::configure_auto_curve(DutyCycle pwm_min, Celsius tmin,
                                                 CelsiusDelta trange) {
  if (auto st = write_reg(Adt7467::kRegPwm1Min, Adt7467::duty_to_reg(pwm_min));
      st != DriverStatus::kOk) {
    return st;
  }
  if (auto st = write_reg(Adt7467::kRegTminRemote1,
                          static_cast<std::uint8_t>(
                              static_cast<std::int8_t>(std::lround(tmin.value()))));
      st != DriverStatus::kOk) {
    return st;
  }
  return write_reg(Adt7467::kRegTrangeRemote1,
                   static_cast<std::uint8_t>(std::lround(trange.value())));
}

DriverStatus Adt7467Driver::set_max_duty(DutyCycle max_duty) {
  return write_reg(Adt7467::kRegPwm1Max, Adt7467::duty_to_reg(max_duty));
}

}  // namespace thermctl::sysfs
