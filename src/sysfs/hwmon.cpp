#include "sysfs/hwmon.hpp"

#include <cmath>
#include <cstdlib>

#include "hw/adt7467.hpp"

namespace thermctl::sysfs {

HwmonDevice::HwmonDevice(VirtualFs& fs, std::string root, int index, hw::ThermalSensor& sensor,
                         Adt7467Driver& driver)
    : fs_(fs), dir_(root + "/hwmon" + std::to_string(index)), sensor_(sensor), driver_(driver) {
  fs_.add_attribute(dir_ + "/name", [] { return std::string{"adt7467"}; });
  fs_.add_attribute_long(dir_ + "/temp1_input", [this] {
    // Kernel convention: millidegrees Celsius.
    return static_cast<long>(std::lround(sensor_.last_reading().value() * 1000.0));
  });
  fs_.add_attribute(dir_ + "/fan1_input", [this] {
    std::optional<Rpm> rpm;
    if (driver_.read_rpm(rpm) != DriverStatus::kOk || !rpm.has_value()) {
      return std::string{"0"};
    }
    return std::to_string(static_cast<long>(std::lround(rpm->value())));
  });
  fs_.add_attribute_long(
      dir_ + "/pwm1",
      [this]() -> long {
        DutyCycle d;
        if (driver_.read_duty(d) != DriverStatus::kOk) {
          return 0;
        }
        return static_cast<long>(hw::Adt7467::duty_to_reg(d));
      },
      [this](long raw) {
        if (raw < 0 || raw > 255) {
          return false;
        }
        return driver_.set_duty(hw::Adt7467::reg_to_duty(static_cast<std::uint8_t>(raw))) ==
               DriverStatus::kOk;
      });
  fs_.add_attribute(
      dir_ + "/pwm1_enable", [] { return std::string{"1"}; },
      [this](const std::string& value) {
        if (value == "1") {
          return driver_.set_manual_mode() == DriverStatus::kOk;
        }
        if (value == "2") {
          return driver_.set_automatic_mode() == DriverStatus::kOk;
        }
        return false;
      });
  // Controllers poll temp1_input and pwm1 every sampling tick on every node;
  // cached handles keep that off the path-lookup slow path. The handles are
  // to our own attributes, dropped with them in the destructor.
  temp_attr_ = fs_.open(dir_ + "/temp1_input");
  pwm_attr_ = fs_.open(dir_ + "/pwm1");
  pwm_enable_attr_ = fs_.open(dir_ + "/pwm1_enable");
}

HwmonDevice::~HwmonDevice() {
  for (const auto& name : {"/name", "/temp1_input", "/fan1_input", "/pwm1", "/pwm1_enable"}) {
    fs_.remove_attribute(dir_ + name);
  }
}

Celsius HwmonDevice::read_temperature() const {
  const long milli = fs_.read_long(temp_attr_).value_or(0);
  return Celsius{static_cast<double>(milli) / 1000.0};
}

bool HwmonDevice::write_pwm(DutyCycle duty) {
  return fs_.write_long(pwm_attr_, hw::Adt7467::duty_to_reg(duty));
}

bool HwmonDevice::set_manual_mode() { return fs_.write(pwm_enable_attr_, "1"); }

bool HwmonDevice::set_automatic_mode() { return fs_.write(pwm_enable_attr_, "2"); }

}  // namespace thermctl::sysfs
