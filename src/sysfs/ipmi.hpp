// IPMI-style out-of-band management channel.
//
// The paper's title promises *out-of-band* control; on server-class machines
// the canonical out-of-band path is the BMC's IPMI interface, which keeps
// working regardless of what the host OS or application is doing. This
// module models a small BMC: a sensor repository (SDR) readable by sensor
// number, fan-override commands, and a chassis power reading — message-based,
// with completion codes, so the rack-level example can monitor and actuate
// nodes without touching their in-band (sysfs) plane.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace thermctl::sysfs {

/// IPMI completion codes (subset).
enum class IpmiCompletion : std::uint8_t {
  kOk = 0x00,
  kInvalidSensor = 0xCB,
  kInvalidCommand = 0xC1,
  kDestinationUnavailable = 0xD3,
};

struct SensorReading {
  double value = 0.0;
  std::string unit;
};

/// The node-side BMC endpoint.
class BmcEndpoint {
 public:
  using SensorFn = std::function<double()>;
  using FanOverrideFn = std::function<void(std::optional<DutyCycle>)>;

  /// Registers a sensor in the repository; returns its sensor number.
  std::uint8_t add_sensor(std::string name, std::string unit, SensorFn read);

  /// Installs the fan-override hook (nullopt duty = release override).
  void set_fan_override_handler(FanOverrideFn fn) { fan_override_ = std::move(fn); }

  IpmiCompletion get_sensor_reading(std::uint8_t sensor, SensorReading& out) const;
  [[nodiscard]] std::vector<std::pair<std::uint8_t, std::string>> list_sensors() const;

  /// "Set fan speed override" OEM command.
  IpmiCompletion set_fan_override(std::optional<DutyCycle> duty);

  /// Marks the endpoint unreachable (powered off BMC / network partition).
  void set_reachable(bool reachable) { reachable_ = reachable; }
  [[nodiscard]] bool reachable() const { return reachable_; }

 private:
  struct Sensor {
    std::string name;
    std::string unit;
    SensorFn read;
  };
  std::map<std::uint8_t, Sensor> sensors_;
  std::uint8_t next_sensor_ = 1;
  FanOverrideFn fan_override_;
  bool reachable_ = true;

  friend class IpmiNetwork;
};

/// The management network tying BMCs together, addressed by node id.
class IpmiNetwork {
 public:
  void attach(int node_id, BmcEndpoint* bmc);

  IpmiCompletion get_sensor_reading(int node_id, std::uint8_t sensor, SensorReading& out) const;
  IpmiCompletion set_fan_override(int node_id, std::optional<DutyCycle> duty);
  [[nodiscard]] std::vector<int> nodes() const;

 private:
  std::map<int, BmcEndpoint*> endpoints_;
};

}  // namespace thermctl::sysfs
