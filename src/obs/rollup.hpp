// Fleet rollups: online per-rack + fleet aggregation of node state.
//
// At 100k nodes the post-hoc per-node series are the telemetry scaling
// problem — O(nodes · samples) doubles nobody upstream wants to ship. The
// rollup inverts that: a fixed sim-time cadence walks the nodes once,
// folds each rack's temperature/power/cap state into one compact sample,
// and appends it to per-rack and fleet time series. A run's rollup output
// is O(racks · intervals) regardless of fleet size, which is what the
// ROADMAP's `thermctld` needs to serve live and what the alert watchdog
// evaluates against.
//
// Layering: obs sits below cluster, so the rollup knows nothing about
// Node/ControlPlane — the experiment harness feeds it plain values
// (observe() per node between begin()/commit()). Rack membership is plain
// arithmetic over nodes_per_rack, matching the control plane's layout when
// one is attached.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"

namespace thermctl::obs {

struct RollupConfig {
  bool enabled = false;
  /// Sim-time sampling cadence.
  double interval_s = 1.0;
  /// Nodes per rack (0 = the whole fleet is one rack). Keep consistent with
  /// the control plane's nodes_per_rack when both are on; the experiment
  /// harness defaults it from there.
  std::size_t nodes_per_rack = 0;
  /// Die temperature above this accrues violation node-seconds.
  double violation_temp_c = 60.0;
};

/// One rollup interval's aggregate for a rack (or the fleet row).
///
/// A rack that saw zero observe() calls in an interval still gets a row (so
/// every series stays interval-aligned), but it is explicitly marked: its
/// `members` is 0 and the temperature/power aggregates are NaN rather than
/// the zeros that would read as real data (and feed a max_temp alert a bogus
/// 0 °C). NaN compares false against any alert threshold, so empty-rack rows
/// naturally never fire, and the OpenMetrics renderer spells them `NaN`.
struct RollupSample {
  double t_s = 0.0;
  /// Nodes observed into this row (0 = empty interval, aggregates are NaN).
  std::uint32_t members = 0;
  double max_temp_c = 0.0;
  double avg_temp_c = 0.0;
  /// Sum of member wall power at the sample instant.
  double power_w = 0.0;
  /// Members under a plane p-state cap / in plane-autonomous fallback.
  std::uint32_t capped_nodes = 0;
  std::uint32_t autonomous_nodes = 0;
  /// Node-seconds above violation_temp_c accrued this interval.
  double violation_node_s = 0.0;
  /// Cumulative fleet counters at sample time (fleet rows only; rack rows
  /// carry zeros — the plane reports these per fleet, not per rack).
  std::uint64_t plane_failsafe_entries = 0;
  std::uint64_t sensor_rejected = 0;
};

class FleetRollup {
 public:
  FleetRollup(std::size_t node_count, RollupConfig config);

  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] std::size_t rack_count() const { return rack_count_; }
  [[nodiscard]] std::size_t rack_of(std::size_t node) const {
    return config_.nodes_per_rack == 0 ? 0 : node / config_.nodes_per_rack;
  }
  [[nodiscard]] const RollupConfig& config() const { return config_; }

  /// One sampling pass: begin(t), observe() every node in node order, then
  /// commit() with the cumulative fleet counters. The harness drives this
  /// from an engine periodic.
  void begin(double t_s);
  void observe(std::size_t node, double temp_c, double power_w, bool capped, bool autonomous);
  void commit(std::uint64_t plane_failsafe_entries, std::uint64_t sensor_rejected);

  [[nodiscard]] const std::vector<RollupSample>& rack_series(std::size_t rack) const {
    return rack_series_[rack];
  }
  [[nodiscard]] const std::vector<RollupSample>& fleet_series() const { return fleet_series_; }
  /// Total samples across all series — the O(racks · intervals) figure the
  /// live-telemetry bench holds against O(nodes · samples).
  [[nodiscard]] std::uint64_t samples_recorded() const;

 private:
  std::size_t node_count_;
  RollupConfig config_;
  std::size_t rack_count_;
  std::vector<RollupSample> pending_;  // per rack, the interval being built
  RollupSample pending_fleet_;
  std::vector<std::uint32_t> pending_counts_;  // members observed, per rack
  bool in_sample_ = false;
  std::vector<std::vector<RollupSample>> rack_series_;
  std::vector<RollupSample> fleet_series_;
};

}  // namespace thermctl::obs
