#include "obs/trace.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace thermctl::obs {

std::string_view to_string(TraceEventType type) {
  switch (type) {
    case TraceEventType::kNone:
      return "none";
    case TraceEventType::kWindowRound:
      return "window_round";
    case TraceEventType::kModeDecision:
      return "mode_decision";
    case TraceEventType::kFanRetarget:
      return "fan_retarget";
    case TraceEventType::kTdvfsTrigger:
      return "tdvfs_trigger";
    case TraceEventType::kTdvfsRestore:
      return "tdvfs_restore";
    case TraceEventType::kSensorClassified:
      return "sensor_classified";
    case TraceEventType::kFailsafeEnter:
      return "failsafe_enter";
    case TraceEventType::kFailsafeExit:
      return "failsafe_exit";
    case TraceEventType::kDvfsHoldEnter:
      return "dvfs_hold_enter";
    case TraceEventType::kDvfsHoldExit:
      return "dvfs_hold_exit";
    case TraceEventType::kI2cRetry:
      return "i2c_retry";
    case TraceEventType::kI2cExhausted:
      return "i2c_exhausted";
    case TraceEventType::kPlaneBudget:
      return "plane_budget";
    case TraceEventType::kPlaneFailsafeEnter:
      return "plane_failsafe_enter";
    case TraceEventType::kPlaneFailsafeExit:
      return "plane_failsafe_exit";
    case TraceEventType::kPlanePolicyUpdate:
      return "plane_policy_update";
    case TraceEventType::kAlertFire:
      return "alert_fire";
    case TraceEventType::kAlertClear:
      return "alert_clear";
  }
  return "?";
}

std::string_view to_string(TraceSubsystem subsystem) {
  switch (subsystem) {
    case TraceSubsystem::kNone:
      return "none";
    case TraceSubsystem::kFan:
      return "fan";
    case TraceSubsystem::kTdvfs:
      return "tdvfs";
    case TraceSubsystem::kIdle:
      return "idle";
    case TraceSubsystem::kEngine:
      return "engine";
    case TraceSubsystem::kI2c:
      return "i2c";
    case TraceSubsystem::kPlane:
      return "plane";
    case TraceSubsystem::kAlert:
      return "alert";
  }
  return "?";
}

TraceRing::TraceRing(std::uint16_t node, std::size_t capacity) : node_(node) {
  THERMCTL_ASSERT(capacity >= 1, "trace ring needs capacity");
  buffer_.resize(capacity);
}

std::size_t TraceRing::size() const {
  return emitted_ < buffer_.size() ? static_cast<std::size_t>(emitted_) : buffer_.size();
}

void TraceRing::emit(TraceEvent ev) {
  ev.node = node_;
  if (ev.t_s == 0.0) {
    ev.t_s = now_s_;
  }
  buffer_[head_] = ev;
  head_ = head_ + 1 == buffer_.size() ? 0 : head_ + 1;
  ++emitted_;
}

std::vector<TraceEvent> TraceRing::events() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest event sits at head_ once the ring has wrapped, at 0 before.
  const std::size_t start = emitted_ < buffer_.size() ? 0 : head_;
  for (std::size_t k = 0; k < n; ++k) {
    out.push_back(buffer_[(start + k) % buffer_.size()]);
  }
  return out;
}

std::uint64_t TraceRing::read_new(std::uint64_t cursor, std::size_t max_events,
                                  std::vector<TraceEvent>& out, std::uint64_t& lost) const {
  // Oldest absolute index still resident in the buffer.
  const std::uint64_t oldest =
      emitted_ > buffer_.size() ? emitted_ - buffer_.size() : 0;
  if (cursor < oldest) {
    lost += oldest - cursor;
    cursor = oldest;
  }
  std::uint64_t n = emitted_ - cursor;
  if (max_events != 0 && n > max_events) {
    n = max_events;
  }
  out.reserve(out.size() + static_cast<std::size_t>(n));
  for (std::uint64_t k = 0; k < n; ++k) {
    // Absolute index j was written at slot j % capacity (head_ starts at 0
    // and advances one slot per emit).
    out.push_back(buffer_[static_cast<std::size_t>((cursor + k) % buffer_.size())]);
  }
  return cursor + n;
}

void TraceRing::clear() {
  head_ = 0;
  emitted_ = 0;
}

RunTrace::RunTrace(std::size_t node_count, std::size_t ring_capacity) {
  THERMCTL_ASSERT(node_count >= 1, "run trace needs nodes");
  THERMCTL_ASSERT(node_count <= 0xffff, "node id must fit the event record");
  rings_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    rings_.emplace_back(static_cast<std::uint16_t>(i), ring_capacity);
  }
}

std::vector<TraceEvent> RunTrace::merged_events() const {
  std::vector<TraceEvent> all;
  all.reserve(static_cast<std::size_t>(total_emitted() - total_dropped()));
  for (const TraceRing& ring : rings_) {
    const std::vector<TraceEvent> evs = ring.events();
    all.insert(all.end(), evs.begin(), evs.end());
  }
  // Stable sort keeps each node's emission order for equal timestamps; the
  // node key makes cross-node order deterministic too.
  std::stable_sort(all.begin(), all.end(), [](const TraceEvent& x, const TraceEvent& y) {
    if (x.t_s != y.t_s) return x.t_s < y.t_s;
    return x.node < y.node;
  });
  return all;
}

std::uint64_t RunTrace::total_emitted() const {
  std::uint64_t n = 0;
  for (const TraceRing& ring : rings_) {
    n += ring.emitted();
  }
  return n;
}

std::uint64_t RunTrace::total_dropped() const {
  std::uint64_t n = 0;
  for (const TraceRing& ring : rings_) {
    n += ring.dropped();
  }
  return n;
}

std::vector<std::uint64_t> RunTrace::dropped_by_node() const {
  std::vector<std::uint64_t> out;
  out.reserve(rings_.size());
  for (const TraceRing& ring : rings_) {
    out.push_back(ring.dropped());
  }
  return out;
}

}  // namespace thermctl::obs
