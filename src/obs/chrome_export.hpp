// Chrome trace_event exporter.
//
// Converts a thermctl decision trace into the JSON Array Format consumed by
// Perfetto and chrome://tracing: each node becomes a pid, each subsystem a
// tid, decisions become instant events with their causality payload under
// "args", and fan duty / CPU frequency become counter tracks so the mode
// staircase is visible next to the decisions that produced it. Fail-safe and
// DVFS-hold episodes export as complete ("X") spans so degraded operation
// shows up as a duration, not two disconnected instants.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace thermctl::obs {

/// Writes the merged stream as Chrome trace JSON. Throws std::runtime_error
/// on I/O failure.
void write_chrome_trace(const std::string& path, const std::vector<TraceEvent>& events);

void write_chrome_trace(const std::string& path, const RunTrace& trace);

}  // namespace thermctl::obs
