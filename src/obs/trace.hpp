// Structured decision tracing: bounded per-node binary event ring.
//
// Every control-loop decision the paper's evaluation reasons about — which
// window level supplied Δt, the Eq.(1) cell the selector jumped to, fan PWM
// writes and their i2c retries, tDVFS trigger/restore with the consistency
// counts that armed them, sensor-health classifications, fail-safe entry and
// exit — is recordable as a fixed-size POD event in a per-node ring. The ring
// is bounded (oldest events overwritten), allocation-free after construction,
// and single-writer: one node's controllers and bus all run on the engine
// thread that owns that node.
//
// Cost model: emission sites go through THERMCTL_TRACE_* macros that reduce
// to one null-pointer test when tracing is wired off (the default — no ring
// attached), and to nothing at all when compiled out with
// -DTHERMCTL_TRACE_COMPILED_OUT. Sweep results are bit-identical with tracing
// on or off: tracing observes decisions, it never participates in them.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace thermctl::obs {

/// What a TraceEvent describes. Values are part of the on-disk format — add
/// at the end, never renumber.
enum class TraceEventType : std::uint8_t {
  kNone = 0,
  /// Completed two-level window round. a=level-1 average (°C),
  /// b=Δt_L1, c=Δt_L2; flag kLevel2Valid when the FIFO held ≥ 2 rounds.
  kWindowRound = 1,
  /// Mode-selector outcome for that round. i0=current index, i1=chosen
  /// (post-clamp) target index, a=raw i + c·Δt before clamping, b=the Δt the
  /// decision used, c=the mode value in the target cell (Eq.(1) cell hit).
  /// Flags: kChanged, kUsedLevel2 (Δt source = level-2).
  kModeDecision = 2,
  /// Fan PWM write attempt. a=from duty %, b=to duty %, i0=target array
  /// index. Flags: kWriteOk, kUsedLevel2.
  kFanRetarget = 3,
  /// tDVFS down-scale trigger. a=from GHz, b=to GHz, i0=rounds-above count
  /// that armed the trigger, i1=target array index. Flag kUsedLevel2 when
  /// the window's level-2 prediction pushed past the consistency floor.
  kTdvfsTrigger = 4,
  /// tDVFS restore to the original frequency. a=from GHz, b=to GHz,
  /// i0=rounds-below count that armed the restore.
  kTdvfsRestore = 5,
  /// Sensor-health classification of one reading (non-OK only, plus the
  /// first OK after a bad streak). a=raw reading, i0=SensorState.
  kSensorClassified = 6,
  /// Fan fail-safe cooling entered (confirmed sensor failure). a=commanded
  /// duty %.
  kFailsafeEnter = 7,
  /// Fan fail-safe exited (sensor recovered). i0=resume array index.
  kFailsafeExit = 8,
  /// tDVFS frequency hold entered. a=held GHz.
  kDvfsHoldEnter = 9,
  /// tDVFS hold exited.
  kDvfsHoldExit = 10,
  /// One retried i2c attempt. i0=attempt number (0-based), i1=I2cStatus of
  /// the failed attempt, a=backoff accounted (µs).
  kI2cRetry = 11,
  /// An i2c transfer failed after exhausting its retry budget. i1=I2cStatus.
  kI2cExhausted = 12,
  /// Control-plane power budget applied to this node. a=budget watts
  /// (<= 0 = uncapped), b=wall watts at application, i0=resulting cap kHz.
  /// Flag kChanged when the cap moved a p-state.
  kPlaneBudget = 13,
  /// Node reverted to autonomous control (coordinator stall or resignation).
  /// a=seconds since the coordinator was last heard.
  kPlaneFailsafeEnter = 14,
  /// Node rejoined its rack coordinator after a fail-safe. i0=coordinator
  /// epoch from the JoinAck.
  kPlaneFailsafeExit = 15,
  /// Policy parameter re-tune pushed down by the plane. i0=applied Pp.
  kPlanePolicyUpdate = 16,
  /// Watchdog alert rule crossed its threshold for its hold time.
  /// i0=rule index, i1=rack (-1 = fleet scope), a=observed value,
  /// b=threshold. Recorded on the fleet lane (ring 0).
  kAlertFire = 17,
  /// Previously firing alert dropped back under threshold. Same payload as
  /// kAlertFire, with a=value at clearing.
  kAlertClear = 18,
};

/// Which controller/plane emitted the event.
enum class TraceSubsystem : std::uint8_t {
  kNone = 0,
  kFan = 1,
  kTdvfs = 2,
  kIdle = 3,
  kEngine = 4,
  kI2c = 5,
  /// Hierarchical rack/room control plane (node agents).
  kPlane = 6,
  /// Online alert watchdog (fleet-scope events land on node 0's ring).
  kAlert = 7,
};

/// Flag bits (per-type meaning documented on the type).
enum TraceFlags : std::uint32_t {
  kTraceFlagNone = 0,
  kTraceFlagLevel2Valid = 1u << 0,
  kTraceFlagUsedLevel2 = 1u << 1,
  kTraceFlagChanged = 1u << 2,
  kTraceFlagWriteOk = 1u << 3,
  /// The raw i + c·Δt fell outside [0, N−1] and was clamped.
  kTraceFlagClamped = 1u << 4,
};

/// Fixed-size POD record; the ring stores these by value and the trace file
/// stores them verbatim.
struct TraceEvent {
  double t_s = 0.0;
  std::uint16_t node = 0;
  TraceEventType type = TraceEventType::kNone;
  TraceSubsystem subsystem = TraceSubsystem::kNone;
  std::uint32_t flags = 0;
  std::int64_t i0 = 0;
  std::int64_t i1 = 0;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
};
static_assert(sizeof(TraceEvent) == 56, "TraceEvent is an on-disk format; keep it packed");

[[nodiscard]] std::string_view to_string(TraceEventType type);
[[nodiscard]] std::string_view to_string(TraceSubsystem subsystem);

/// Bounded single-writer event buffer for one node.
class TraceRing {
 public:
  explicit TraceRing(std::uint16_t node, std::size_t capacity = 1u << 14);

  [[nodiscard]] std::uint16_t node() const { return node_; }
  [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }
  /// Events currently held (≤ capacity).
  [[nodiscard]] std::size_t size() const;
  /// Total events ever emitted, including overwritten ones.
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return emitted_ > buffer_.size() ? emitted_ - buffer_.size() : 0;
  }

  /// Current sim time for emitters without their own clock (the i2c layer).
  /// Controllers set this on tick entry.
  void set_time_s(double t_s) { now_s_ = t_s; }
  [[nodiscard]] double time_s() const { return now_s_; }

  /// Records one event, stamping node (always) and time (when ev.t_s is
  /// left 0 the ring's clock is used).
  void emit(TraceEvent ev);

  /// Events in emission order, oldest first (copies out of the ring).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Cursor-based incremental read for the streaming spiller. `cursor` is an
  /// absolute emission index (0 on the first call, then the returned value).
  /// Appends up to `max_events` events at-or-after the cursor to `out`
  /// (0 = no limit) and returns the advanced cursor. Events the ring
  /// overwrote before they could be read are counted into `lost` — that is
  /// the spiller's true loss, distinct from dropped() which counts every
  /// overwrite whether or not a reader got there first.
  [[nodiscard]] std::uint64_t read_new(std::uint64_t cursor, std::size_t max_events,
                                       std::vector<TraceEvent>& out,
                                       std::uint64_t& lost) const;

  void clear();

 private:
  std::uint16_t node_;
  std::vector<TraceEvent> buffer_;
  std::size_t head_ = 0;  // next write position
  std::uint64_t emitted_ = 0;
  double now_s_ = 0.0;
};

/// Per-node rings plus run-level bookkeeping for one experiment run.
class RunTrace {
 public:
  explicit RunTrace(std::size_t node_count, std::size_t ring_capacity = 1u << 14);

  [[nodiscard]] std::size_t node_count() const { return rings_.size(); }
  [[nodiscard]] TraceRing& ring(std::size_t node) { return rings_[node]; }
  [[nodiscard]] const TraceRing& ring(std::size_t node) const { return rings_[node]; }

  /// All nodes' events merged into one stream, ordered by (time, node,
  /// emission order) — stable and deterministic.
  [[nodiscard]] std::vector<TraceEvent> merged_events() const;

  [[nodiscard]] std::uint64_t total_emitted() const;
  [[nodiscard]] std::uint64_t total_dropped() const;
  /// Ring-wrap overwrites per node, indexable by node id — lets post-hoc
  /// analyses spot which nodes' traces are truncated even when the totals
  /// look survivable.
  [[nodiscard]] std::vector<std::uint64_t> dropped_by_node() const;

 private:
  std::vector<TraceRing> rings_;
};

}  // namespace thermctl::obs

#ifdef THERMCTL_TRACE_COMPILED_OUT
#define THERMCTL_TRACE_EMIT(ring_ptr, ev_expr) \
  do {                                         \
  } while (false)
#define THERMCTL_TRACE_SET_TIME(ring_ptr, t_s) \
  do {                                         \
  } while (false)
#else
/// Emission seam: one pointer test when no ring is attached, one branch +
/// struct store when one is. `ev_expr` is an expression yielding a
/// TraceEvent — parenthesize designated-initializer literals at the call
/// site so their commas survive the preprocessor.
#define THERMCTL_TRACE_EMIT(ring_ptr, ev_expr) \
  do {                                         \
    if ((ring_ptr) != nullptr) {               \
      (ring_ptr)->emit(ev_expr);               \
    }                                          \
  } while (false)
#define THERMCTL_TRACE_SET_TIME(ring_ptr, t_s) \
  do {                                         \
    if ((ring_ptr) != nullptr) {               \
      (ring_ptr)->set_time_s(t_s);             \
    }                                          \
  } while (false)
#endif
