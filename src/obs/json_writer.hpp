// Minimal streaming JSON writer.
//
// Enough JSON for the exporters (Chrome trace_event arrays, run-summary
// documents): objects, arrays, string escaping, finite-number formatting.
// No reflection, no DOM — callers drive the structure and the writer keeps
// the commas and quoting honest.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace thermctl::obs {

[[nodiscard]] std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object-context variants: emit the key, then open the container.
  JsonWriter& begin_object(std::string_view key);
  JsonWriter& begin_array(std::string_view key);

  /// Key/value pairs (object context).
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, bool value);

  /// Bare values (array context).
  JsonWriter& value(std::string_view v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);

 private:
  void comma();
  void key(std::string_view k);
  void number(double v);

  std::ostream& out_;
  std::vector<bool> has_items_;  // per open container: wrote a member yet?
};

}  // namespace thermctl::obs
