#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace thermctl::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (!has_items_.empty()) {
    if (has_items_.back()) {
      out_ << ',';
    }
    has_items_.back() = true;
  }
}

void JsonWriter::key(std::string_view k) {
  comma();
  out_ << '"' << json_escape(k) << "\":";
}

void JsonWriter::number(double v) {
  // JSON has no NaN/Inf; null is the conventional stand-in.
  if (!std::isfinite(v)) {
    out_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out_ << buf;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ << '{';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  THERMCTL_ASSERT(!has_items_.empty(), "end_object without begin");
  has_items_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ << '[';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  THERMCTL_ASSERT(!has_items_.empty(), "end_array without begin");
  has_items_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::begin_object(std::string_view k) {
  key(k);
  out_ << '{';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view k) {
  key(k);
  out_ << '[';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::string_view v) {
  key(k);
  out_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, const char* v) {
  return field(k, std::string_view{v});
}

JsonWriter& JsonWriter::field(std::string_view k, double v) {
  key(k);
  number(v);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::int64_t v) {
  key(k);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::uint64_t v) {
  key(k);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, bool v) {
  key(k);
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ << v;
  return *this;
}

}  // namespace thermctl::obs
