// Streaming trace spiller: continuous ring-to-container drain.
//
// The per-node TraceRings are bounded by design, so a long fleet run loses
// its oldest events to ring wraps unless something reads them out first.
// The spiller is that something: registered as an engine periodic task, it
// walks every ring on a fixed sim-time cadence, copies out the events
// emitted since its last visit (TraceRing::read_new cursors), stable-sorts
// the batch into the canonical (time, node) merge order and appends it to a
// SpillSink — the .thermtrace container for real runs, an in-memory buffer
// for tests and the differential oracle.
//
// Backpressure is explicit rather than implicit: each drain moves at most
// `max_events_per_drain` events (0 = unbounded). When the budget runs out
// mid-pass the remaining rings keep their events until the next drain — and
// the pass resumes *at the ring where it stopped*, so a budget smaller than
// the steady-state event rate degrades fairly instead of starving the
// high-numbered nodes. Events a ring overwrites before the spiller returns
// are counted per node in SpillStats::lost_by_node; a zero there is the
// "no trace-event loss" claim bench/live_telemetry asserts.
//
// Everything runs on the engine thread in the serial BSP phases (the rings
// are single-writer from those same phases), so the spiller needs no locks
// and a spilling run stays bit-identical to a dark one — the oracle's
// live-telemetry pairing holds it to that.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace thermctl::obs {

/// Where the spilled stream lands. append() receives batches each sorted in
/// (time, node) order, but batches are NOT globally ordered against each
/// other: a budgeted drain that runs out mid-pass defers a ring's *older*
/// events to the next batch, so under backpressure a later batch can open
/// earlier than the previous batch ended. The stream is made order-tolerant
/// at the read boundary instead — MemorySpillSink::finalize and
/// read_trace_file both stable-sort back into the canonical (time, node)
/// merge order — so the on-disk .thermtrace stays an append-only crash-safe
/// log and no reader ever sees an unsorted stream.
class SpillSink {
 public:
  virtual ~SpillSink() = default;
  virtual void append(const TraceEvent* events, std::size_t count) = 0;
  /// Called exactly once, after the final drain. `event_count` is the total
  /// ever appended.
  virtual void finalize(std::uint32_t node_count, std::uint64_t event_count) = 0;
};

/// Appends to a .thermtrace container file. The 32-byte header is written
/// up front with a zero event count and patched in place on finalize, so a
/// crash mid-run leaves a recognizable (if short-counted) file rather than
/// a corrupt one.
class FileSpillSink : public SpillSink {
 public:
  explicit FileSpillSink(std::string path);
  ~FileSpillSink() override;

  void append(const TraceEvent* events, std::size_t count) override;
  void finalize(std::uint32_t node_count, std::uint64_t event_count) override;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct Impl;
  std::string path_;
  std::unique_ptr<Impl> impl_;
};

/// Keeps the spilled stream in memory — tests and the oracle use this so
/// parallel sweeps don't need a filesystem rendezvous.
class MemorySpillSink : public SpillSink {
 public:
  void append(const TraceEvent* events, std::size_t count) override;
  void finalize(std::uint32_t node_count, std::uint64_t event_count) override;

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] std::uint32_t node_count() const { return node_count_; }

 private:
  std::vector<TraceEvent> events_;
  std::uint32_t node_count_ = 0;
  bool finalized_ = false;
};

struct SpillConfig {
  /// Sim-time drain cadence.
  double period_s = 1.0;
  /// Backpressure budget: events moved per drain across all rings
  /// (0 = unbounded). Undersized budgets defer, they don't lose — loss only
  /// happens when a ring laps the spill cursor between visits.
  std::size_t max_events_per_drain = 0;
};

struct SpillStats {
  std::uint64_t drains = 0;
  std::uint64_t events_spilled = 0;
  /// Events overwritten before the spiller could read them (ring lapped the
  /// cursor). The spiller's real loss — distinct from TraceRing::dropped(),
  /// which counts overwrites the spiller may well have already saved.
  std::uint64_t events_lost = 0;
  /// Drains that ran out of budget with events still pending.
  std::uint64_t deferred_drains = 0;
  std::vector<std::uint64_t> lost_by_node;
};

class TraceSpiller {
 public:
  /// Neither the trace nor the sink is owned; both must outlive the spiller.
  TraceSpiller(const RunTrace& trace, SpillSink& sink, SpillConfig config);

  /// One budgeted pass over the rings; registered as an engine periodic.
  void drain(double now_s);

  /// Final unbudgeted drain + sink finalize. Call after the engine stops;
  /// further drains are invalid.
  void finish();

  [[nodiscard]] const SpillStats& stats() const { return stats_; }
  [[nodiscard]] const SpillConfig& config() const { return config_; }

 private:
  /// Drains up to `budget` events (0 = unbounded) starting at next_node_.
  void drain_pass(std::size_t budget);

  const RunTrace& trace_;
  SpillSink& sink_;
  SpillConfig config_;
  SpillStats stats_;
  std::vector<std::uint64_t> cursors_;
  std::vector<TraceEvent> batch_;  // reused per drain
  std::size_t next_node_ = 0;      // resume point after a budget-limited pass
  bool finished_ = false;
};

}  // namespace thermctl::obs
