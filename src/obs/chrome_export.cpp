#include "obs/chrome_export.hpp"

#include <fstream>
#include <map>
#include <stdexcept>
#include <utility>

#include "obs/json_writer.hpp"

namespace thermctl::obs {

namespace {

constexpr double kUsPerS = 1e6;

/// pid/tid scheme: one process per node, one thread per subsystem.
std::int64_t tid_of(TraceSubsystem subsystem) { return static_cast<std::int64_t>(subsystem); }

void event_header(JsonWriter& json, const TraceEvent& ev, std::string_view name,
                  std::string_view ph) {
  json.begin_object()
      .field("name", name)
      .field("ph", ph)
      .field("ts", ev.t_s * kUsPerS)
      .field("pid", static_cast<std::int64_t>(ev.node))
      .field("tid", tid_of(ev.subsystem));
}

void instant(JsonWriter& json, const TraceEvent& ev, std::string_view name,
             const std::vector<std::pair<std::string_view, double>>& args) {
  event_header(json, ev, name, "i");
  json.field("s", "t");
  json.begin_object("args");
  for (const auto& [key, value] : args) {
    json.field(key, value);
  }
  json.end_object();
  json.end_object();
}

void counter(JsonWriter& json, const TraceEvent& ev, std::string_view name,
             std::string_view series, double value) {
  event_header(json, ev, name, "C");
  json.begin_object("args").field(series, value).end_object();
  json.end_object();
}

void metadata(JsonWriter& json, std::string_view what, std::int64_t pid, std::int64_t tid,
              std::string_view name) {
  json.begin_object()
      .field("name", what)
      .field("ph", "M")
      .field("pid", pid)
      .field("tid", tid)
      .begin_object("args")
      .field("name", name)
      .end_object()
      .end_object();
}

}  // namespace

void write_chrome_trace(const std::string& path, const std::vector<TraceEvent>& events) {
  std::ofstream out{path, std::ios::trunc};
  if (!out) {
    throw std::runtime_error("chrome_export: cannot open " + path);
  }
  JsonWriter json{out};
  json.begin_object();
  json.field("displayTimeUnit", "ms");
  json.begin_array("traceEvents");

  // Name the pid/tid rows once per (node, subsystem) actually present.
  std::map<std::uint16_t, bool> nodes_seen;
  std::map<std::pair<std::uint16_t, TraceSubsystem>, bool> lanes_seen;
  for (const TraceEvent& ev : events) {
    if (!nodes_seen[ev.node]) {
      nodes_seen[ev.node] = true;
      metadata(json, "process_name", ev.node, 0, "node" + std::to_string(ev.node));
    }
    auto& lane = lanes_seen[{ev.node, ev.subsystem}];
    if (!lane) {
      lane = true;
      metadata(json, "thread_name", ev.node, tid_of(ev.subsystem),
               std::string{to_string(ev.subsystem)});
    }
  }

  // Degraded-operation episodes render as spans: remember the open edge per
  // (node, kind) and close it when the matching exit arrives.
  std::map<std::pair<std::uint16_t, TraceEventType>, TraceEvent> open_spans;
  double last_ts = 0.0;

  for (const TraceEvent& ev : events) {
    last_ts = ev.t_s;
    switch (ev.type) {
      case TraceEventType::kWindowRound:
        instant(json, ev, "window_round",
                {{"level1_avg_c", ev.a},
                 {"level1_delta_c", ev.b},
                 {"level2_delta_c", ev.c},
                 {"level2_valid", (ev.flags & kTraceFlagLevel2Valid) ? 1.0 : 0.0}});
        break;
      case TraceEventType::kModeDecision:
        instant(json, ev, "mode_decision",
                {{"index", static_cast<double>(ev.i0)},
                 {"target", static_cast<double>(ev.i1)},
                 {"raw_target", ev.a},
                 {"delta_used_c", ev.b},
                 {"target_mode", ev.c},
                 {"changed", (ev.flags & kTraceFlagChanged) ? 1.0 : 0.0},
                 {"used_level2", (ev.flags & kTraceFlagUsedLevel2) ? 1.0 : 0.0}});
        break;
      case TraceEventType::kFanRetarget:
        instant(json, ev, "fan_retarget",
                {{"from_duty_pct", ev.a},
                 {"to_duty_pct", ev.b},
                 {"target_index", static_cast<double>(ev.i0)},
                 {"write_ok", (ev.flags & kTraceFlagWriteOk) ? 1.0 : 0.0},
                 {"used_level2", (ev.flags & kTraceFlagUsedLevel2) ? 1.0 : 0.0}});
        if (ev.flags & kTraceFlagWriteOk) {
          counter(json, ev, "fan_duty", "pct", ev.b);
        }
        break;
      case TraceEventType::kTdvfsTrigger:
        instant(json, ev, "tdvfs_trigger",
                {{"from_ghz", ev.a},
                 {"to_ghz", ev.b},
                 {"rounds_above", static_cast<double>(ev.i0)},
                 {"target_index", static_cast<double>(ev.i1)},
                 {"used_level2", (ev.flags & kTraceFlagUsedLevel2) ? 1.0 : 0.0}});
        counter(json, ev, "cpu_freq", "ghz", ev.b);
        break;
      case TraceEventType::kTdvfsRestore:
        instant(json, ev, "tdvfs_restore",
                {{"from_ghz", ev.a},
                 {"to_ghz", ev.b},
                 {"rounds_below", static_cast<double>(ev.i0)}});
        counter(json, ev, "cpu_freq", "ghz", ev.b);
        break;
      case TraceEventType::kSensorClassified:
        instant(json, ev, "sensor_classified",
                {{"reading_c", ev.a}, {"state", static_cast<double>(ev.i0)}});
        break;
      case TraceEventType::kFailsafeEnter:
      case TraceEventType::kDvfsHoldEnter:
      case TraceEventType::kPlaneFailsafeEnter:
        open_spans[{ev.node, ev.type}] = ev;
        break;
      case TraceEventType::kFailsafeExit:
      case TraceEventType::kDvfsHoldExit:
      case TraceEventType::kPlaneFailsafeExit: {
        const TraceEventType enter_type =
            ev.type == TraceEventType::kFailsafeExit     ? TraceEventType::kFailsafeEnter
            : ev.type == TraceEventType::kDvfsHoldExit   ? TraceEventType::kDvfsHoldEnter
                                                         : TraceEventType::kPlaneFailsafeEnter;
        const char* name = ev.type == TraceEventType::kFailsafeExit ? "failsafe_cooling"
                           : ev.type == TraceEventType::kDvfsHoldExit ? "dvfs_hold"
                                                                      : "plane_autonomous";
        auto it = open_spans.find({ev.node, enter_type});
        const double start_s = it != open_spans.end() ? it->second.t_s : ev.t_s;
        // The span starts at the enter edge, so stamp ts from it — not from
        // the exit event this branch is handling.
        TraceEvent span = ev;
        span.t_s = start_s;
        event_header(json, span, name, "X");
        json.field("dur", (ev.t_s - start_s) * kUsPerS);
        json.begin_object("args").field("start_s", start_s).field("end_s", ev.t_s).end_object();
        json.end_object();
        if (it != open_spans.end()) {
          open_spans.erase(it);
        }
        break;
      }
      case TraceEventType::kI2cRetry:
        instant(json, ev, "i2c_retry",
                {{"attempt", static_cast<double>(ev.i0)},
                 {"status", static_cast<double>(ev.i1)},
                 {"backoff_us", ev.a}});
        break;
      case TraceEventType::kI2cExhausted:
        instant(json, ev, "i2c_exhausted", {{"status", static_cast<double>(ev.i1)}});
        break;
      case TraceEventType::kPlaneBudget:
        instant(json, ev, "plane_budget",
                {{"budget_w", ev.a},
                 {"wall_w", ev.b},
                 {"cap_khz", static_cast<double>(ev.i0)},
                 {"changed", (ev.flags & kTraceFlagChanged) ? 1.0 : 0.0}});
        if (ev.flags & kTraceFlagChanged) {
          counter(json, ev, "plane_cap", "khz", static_cast<double>(ev.i0));
        }
        break;
      case TraceEventType::kPlanePolicyUpdate:
        instant(json, ev, "plane_policy_update", {{"pp", static_cast<double>(ev.i0)}});
        break;
      case TraceEventType::kAlertFire:
        instant(json, ev, "alert_fire",
                {{"rule", static_cast<double>(ev.i0)},
                 {"rack", static_cast<double>(ev.i1)},
                 {"value", ev.a},
                 {"threshold", ev.b}});
        break;
      case TraceEventType::kAlertClear:
        instant(json, ev, "alert_clear",
                {{"rule", static_cast<double>(ev.i0)},
                 {"rack", static_cast<double>(ev.i1)},
                 {"value", ev.a},
                 {"threshold", ev.b}});
        break;
      case TraceEventType::kNone:
        break;
    }
  }

  // A fault active at end-of-run leaves its span open; close it at the last
  // event's timestamp so the trace stays well-formed.
  for (const auto& [key, enter] : open_spans) {
    const char* name = key.second == TraceEventType::kFailsafeEnter ? "failsafe_cooling"
                       : key.second == TraceEventType::kDvfsHoldEnter ? "dvfs_hold"
                                                                      : "plane_autonomous";
    TraceEvent synthetic = enter;
    event_header(json, synthetic, name, "X");
    json.field("dur", (last_ts - enter.t_s) * kUsPerS);
    json.begin_object("args").field("start_s", enter.t_s).field("open", true).end_object();
    json.end_object();
  }

  json.end_array();
  json.end_object();
  out << "\n";
  if (!out) {
    throw std::runtime_error("chrome_export: write failed for " + path);
  }
}

void write_chrome_trace(const std::string& path, const RunTrace& trace) {
  write_chrome_trace(path, trace.merged_events());
}

}  // namespace thermctl::obs
