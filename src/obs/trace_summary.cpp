#include "obs/trace_summary.hpp"

#include <cstdio>
#include <sstream>

namespace thermctl::obs {

namespace {

std::string fmt(const char* format, double a, double b = 0.0, double c = 0.0) {
  char buf[192];
  std::snprintf(buf, sizeof buf, format, a, b, c);
  return std::string{buf};
}

}  // namespace

std::vector<ModeChange> mode_change_sequence(const std::vector<TraceEvent>& events) {
  std::vector<ModeChange> out;
  // Plane budget events carry the node's *current* cap, not a from/to pair;
  // reconstruct transitions by remembering each node's last-seen cap.
  std::map<std::uint16_t, std::int64_t> last_cap_khz;
  for (const TraceEvent& ev : events) {
    ModeChange mc;
    mc.t_s = ev.t_s;
    mc.node = ev.node;
    mc.subsystem = ev.subsystem;
    switch (ev.type) {
      case TraceEventType::kFanRetarget:
        if ((ev.flags & kTraceFlagWriteOk) == 0) {
          continue;  // the duty never reached the chip
        }
        mc.from = ev.a;
        mc.to = ev.b;
        mc.used_level2 = (ev.flags & kTraceFlagUsedLevel2) != 0;
        break;
      case TraceEventType::kTdvfsTrigger:
        mc.from = ev.a;
        mc.to = ev.b;
        mc.used_level2 = (ev.flags & kTraceFlagUsedLevel2) != 0;
        mc.consistency_rounds = ev.i0;
        break;
      case TraceEventType::kTdvfsRestore:
        mc.from = ev.a;
        mc.to = ev.b;
        mc.consistency_rounds = ev.i0;
        mc.is_restore = true;
        break;
      case TraceEventType::kPlaneBudget: {
        auto it = last_cap_khz.find(ev.node);
        const std::int64_t prev = it != last_cap_khz.end() ? it->second : ev.i0;
        last_cap_khz[ev.node] = ev.i0;
        if ((ev.flags & kTraceFlagChanged) == 0) {
          continue;  // heartbeat round, cap held
        }
        // Cap moves express as the p-state frequency in GHz; a node whose
        // very first budget already moved the cap has no recorded "from", so
        // its pre-history is attributed to the new cap.
        mc.from = static_cast<double>(prev) / 1e6;
        mc.to = static_cast<double>(ev.i0) / 1e6;
        break;
      }
      default:
        continue;
    }
    out.push_back(mc);
  }
  return out;
}

std::map<std::uint16_t, std::map<double, double>> mode_residency(
    const std::vector<TraceEvent>& events, TraceSubsystem subsystem, double end_s) {
  struct Open {
    double mode = 0.0;
    double since_s = 0.0;
    bool valid = false;
  };
  std::map<std::uint16_t, std::map<double, double>> residency;
  std::map<std::uint16_t, Open> open;
  for (const ModeChange& mc : mode_change_sequence(events)) {
    if (mc.subsystem != subsystem) {
      continue;
    }
    Open& o = open[mc.node];
    if (o.valid) {
      residency[mc.node][o.mode] += mc.t_s - o.since_s;
    } else {
      // The stretch before the first change ran at mc.from — attribute it
      // from t=0, which is when the controller initialized that mode.
      residency[mc.node][mc.from] += mc.t_s;
    }
    o.mode = mc.to;
    o.since_s = mc.t_s;
    o.valid = true;
  }
  for (auto& [node, o] : open) {
    if (o.valid && end_s > o.since_s) {
      residency[node][o.mode] += end_s - o.since_s;
    }
  }
  return residency;
}

std::map<std::uint16_t, NodeDecisionStats> decision_stats(
    const std::vector<TraceEvent>& events) {
  std::map<std::uint16_t, NodeDecisionStats> stats;
  for (const TraceEvent& ev : events) {
    NodeDecisionStats& s = stats[ev.node];
    switch (ev.type) {
      case TraceEventType::kWindowRound:
        ++s.window_rounds;
        break;
      case TraceEventType::kModeDecision:
        ++s.decisions;
        if (ev.flags & kTraceFlagChanged) {
          ++s.decisions_changed;
        }
        if (ev.flags & kTraceFlagUsedLevel2) {
          ++s.level2_decisions;
        }
        if (ev.flags & kTraceFlagClamped) {
          ++s.clamped_decisions;
        }
        break;
      case TraceEventType::kFanRetarget:
        if (ev.flags & kTraceFlagWriteOk) {
          ++s.fan_retargets;
        } else {
          ++s.fan_write_failures;
        }
        break;
      case TraceEventType::kTdvfsTrigger:
        ++s.tdvfs_triggers;
        break;
      case TraceEventType::kTdvfsRestore:
        ++s.tdvfs_restores;
        break;
      case TraceEventType::kSensorClassified:
        if (ev.i0 != 0) {
          ++s.sensor_flags;
        }
        break;
      case TraceEventType::kFailsafeEnter:
        ++s.failsafe_entries;
        break;
      case TraceEventType::kDvfsHoldEnter:
        ++s.dvfs_holds;
        break;
      case TraceEventType::kI2cRetry:
        ++s.i2c_retries;
        break;
      case TraceEventType::kI2cExhausted:
        ++s.i2c_exhausted;
        break;
      case TraceEventType::kPlaneBudget:
        ++s.plane_budgets;
        if (ev.flags & kTraceFlagChanged) {
          ++s.plane_cap_changes;
        }
        break;
      case TraceEventType::kPlaneFailsafeEnter:
        ++s.plane_failsafes;
        break;
      case TraceEventType::kPlanePolicyUpdate:
        ++s.plane_policy_updates;
        break;
      case TraceEventType::kAlertFire:
        ++s.alerts_fired;
        break;
      default:
        break;
    }
  }
  return stats;
}

std::string render_timeline(const std::vector<TraceEvent>& events, std::size_t max_rows) {
  std::ostringstream out;
  std::map<std::uint16_t, std::size_t> rows;
  std::size_t suppressed = 0;
  for (const TraceEvent& ev : events) {
    std::string text;
    switch (ev.type) {
      case TraceEventType::kFanRetarget:
        text = fmt("fan duty %.0f%% -> %.0f%%", ev.a, ev.b) +
               ((ev.flags & kTraceFlagWriteOk) ? "" : " [WRITE FAILED]") +
               ((ev.flags & kTraceFlagUsedLevel2) ? " (gradual, level-2)" : " (sudden, level-1)");
        break;
      case TraceEventType::kTdvfsTrigger:
        text = fmt("tDVFS %.2f -> %.2f GHz after %.0f hot rounds", ev.a, ev.b,
                   static_cast<double>(ev.i0)) +
               ((ev.flags & kTraceFlagUsedLevel2) ? " (level-2 push)" : "");
        break;
      case TraceEventType::kTdvfsRestore:
        text = fmt("tDVFS restore %.2f -> %.2f GHz after %.0f cool rounds", ev.a, ev.b,
                   static_cast<double>(ev.i0));
        break;
      case TraceEventType::kFailsafeEnter:
        text = fmt("FAIL-SAFE: sensor failed, commanding %.0f%% duty", ev.a);
        break;
      case TraceEventType::kFailsafeExit:
        text = "fail-safe exit: sensor recovered";
        break;
      case TraceEventType::kDvfsHoldEnter:
        text = fmt("DVFS HOLD: sensor failed, holding %.2f GHz", ev.a);
        break;
      case TraceEventType::kDvfsHoldExit:
        text = "DVFS hold released";
        break;
      case TraceEventType::kI2cExhausted:
        text = "i2c transfer exhausted its retry budget";
        break;
      case TraceEventType::kPlaneBudget:
        if ((ev.flags & kTraceFlagChanged) == 0) {
          continue;  // unchanged heartbeats arrive every plane round
        }
        text = fmt("plane cap -> %.2f GHz (budget %.0f W, wall %.0f W)",
                   static_cast<double>(ev.i0) / 1e6, ev.a, ev.b);
        break;
      case TraceEventType::kPlaneFailsafeEnter:
        text = fmt("PLANE FAIL-SAFE: coordinator quiet %.1f s, reverting to local control",
                   ev.a);
        break;
      case TraceEventType::kPlaneFailsafeExit:
        text = fmt("plane rejoin: back under coordinator epoch %.0f",
                   static_cast<double>(ev.i0));
        break;
      case TraceEventType::kPlanePolicyUpdate:
        text = fmt("plane re-tune: Pp -> %.0f", static_cast<double>(ev.i0));
        break;
      case TraceEventType::kAlertFire:
        text = fmt("ALERT FIRED: rule %.0f value %.1f > threshold %.1f",
                   static_cast<double>(ev.i0), ev.a, ev.b) +
               (ev.i1 >= 0 ? fmt(" (rack %.0f)", static_cast<double>(ev.i1)) : " (fleet)");
        break;
      case TraceEventType::kAlertClear:
        text = fmt("alert cleared: rule %.0f value %.1f <= threshold %.1f",
                   static_cast<double>(ev.i0), ev.a, ev.b);
        break;
      default:
        continue;  // window rounds / raw decisions are too dense for this view
    }
    std::size_t& count = rows[ev.node];
    if (max_rows != 0 && count >= max_rows) {
      ++suppressed;
      continue;
    }
    ++count;
    out << fmt("  t=%8.2fs", ev.t_s) << "  node" << ev.node << "  ["
        << to_string(ev.subsystem) << "]  " << text << "\n";
  }
  if (suppressed != 0) {
    out << "  (" << suppressed << " further rows suppressed; raise --max-rows)\n";
  }
  return out.str();
}

std::string render_residency(const std::vector<TraceEvent>& events, TraceSubsystem subsystem,
                             double end_s) {
  const auto residency = mode_residency(events, subsystem, end_s);
  std::ostringstream out;
  const char* unit = subsystem == TraceSubsystem::kFan ? "%" : " GHz";
  for (const auto& [node, modes] : residency) {
    double total = 0.0;
    for (const auto& [mode, seconds] : modes) {
      total += seconds;
    }
    out << "  node" << node << " (" << to_string(subsystem) << "):\n";
    for (const auto& [mode, seconds] : modes) {
      const double share = total > 0.0 ? seconds / total : 0.0;
      out << fmt("    %7.2f", mode) << unit << fmt("  %8.1f s  %5.1f%%  ", seconds, share * 100.0);
      const int bar = static_cast<int>(share * 40.0 + 0.5);
      for (int i = 0; i < bar; ++i) {
        out << '#';
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string render_causality(const std::vector<TraceEvent>& events) {
  const auto stats = decision_stats(events);
  std::ostringstream out;
  out << "  node  rounds  decided  changed  lvl2  clamped  fan-moves  wr-fail  "
         "dvfs-trig  dvfs-rest  sensor-flags  failsafe  holds  i2c-retry  "
         "plane-budg  plane-cap  plane-fs  plane-pp  alerts\n";
  for (const auto& [node, s] : stats) {
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "  %4u  %6llu  %7llu  %7llu  %4llu  %7llu  %9llu  %7llu  %9llu  %9llu  "
                  "%12llu  %8llu  %5llu  %9llu  %10llu  %9llu  %8llu  %8llu  %6llu\n",
                  static_cast<unsigned>(node),
                  static_cast<unsigned long long>(s.window_rounds),
                  static_cast<unsigned long long>(s.decisions),
                  static_cast<unsigned long long>(s.decisions_changed),
                  static_cast<unsigned long long>(s.level2_decisions),
                  static_cast<unsigned long long>(s.clamped_decisions),
                  static_cast<unsigned long long>(s.fan_retargets),
                  static_cast<unsigned long long>(s.fan_write_failures),
                  static_cast<unsigned long long>(s.tdvfs_triggers),
                  static_cast<unsigned long long>(s.tdvfs_restores),
                  static_cast<unsigned long long>(s.sensor_flags),
                  static_cast<unsigned long long>(s.failsafe_entries),
                  static_cast<unsigned long long>(s.dvfs_holds),
                  static_cast<unsigned long long>(s.i2c_retries),
                  static_cast<unsigned long long>(s.plane_budgets),
                  static_cast<unsigned long long>(s.plane_cap_changes),
                  static_cast<unsigned long long>(s.plane_failsafes),
                  static_cast<unsigned long long>(s.plane_policy_updates),
                  static_cast<unsigned long long>(s.alerts_fired));
    out << buf;
  }
  return out.str();
}

}  // namespace thermctl::obs
