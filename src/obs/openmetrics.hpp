// OpenMetrics text exposition: a pull-style snapshot of the live run.
//
// render_openmetrics() serializes the merged MetricsRegistry snapshot plus
// the fleet rollup's newest samples and the watchdog's firing state into
// the OpenMetrics text format (the Prometheus exposition format with the
// stricter `# EOF` framing): counters as `<name>_total`, histograms as
// `_bucket{le=...}` / `_sum` / `_count`, per-rack rollup gauges labelled
// `{rack="N"}`. Metric names are sanitized (dots become underscores,
// `thermctl_` prefix) so the registry's dotted names scrape cleanly.
//
// LiveTelemetrySink is the mid-run seam: the experiment harness renders an
// exposition on the rollup cadence and hands it to the sink. In-process
// sinks (CapturingTelemetrySink) are what the benches and tests pull from;
// a future `thermctld` serves the same string over a socket — nothing
// above this interface changes.
#pragma once

#include <cstdint>
#include <string>

#include "obs/alerts.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/rollup.hpp"
#include "obs/spill.hpp"

namespace thermctl::obs {

/// `thermctl_`-prefixed OpenMetrics-safe name: [a-zA-Z0-9_:] only.
[[nodiscard]] std::string openmetrics_name(const std::string& name);

/// Renders one exposition. Any of rollup / alerts / spill may be null —
/// only the sections with data appear. Always ends with `# EOF\n`.
[[nodiscard]] std::string render_openmetrics(const MetricsSnapshot& metrics,
                                             const FleetRollup* rollup,
                                             const AlertWatchdog* alerts,
                                             const SpillStats* spill, double t_s);

/// Receives mid-run expositions on the rollup cadence. Implementations run
/// on the engine thread and must not touch the rig — they observe, never
/// actuate (the oracle's live-telemetry pairing assumes it).
class LiveTelemetrySink {
 public:
  virtual ~LiveTelemetrySink() = default;
  virtual void on_exposition(double t_s, const std::string& text) = 0;
};

/// Keeps the latest exposition (and the count) for in-process pulls.
class CapturingTelemetrySink : public LiveTelemetrySink {
 public:
  void on_exposition(double t_s, const std::string& text) override {
    last_t_s_ = t_s;
    last_ = text;
    ++count_;
  }

  [[nodiscard]] const std::string& last() const { return last_; }
  [[nodiscard]] double last_t_s() const { return last_t_s_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  std::string last_;
  double last_t_s_ = -1.0;
  std::uint64_t count_ = 0;
};

}  // namespace thermctl::obs
