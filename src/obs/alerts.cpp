#include "obs/alerts.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace thermctl::obs {

const char* to_string(AlertKind kind) {
  switch (kind) {
    case AlertKind::kMaxTemp:
      return "max_temp";
    case AlertKind::kPowerOverBudget:
      return "power_over_budget";
    case AlertKind::kFailsafeRate:
      return "failsafe_rate";
    case AlertKind::kSensorFaultRate:
      return "sensor_fault_rate";
  }
  return "unknown";
}

AlertWatchdog::AlertWatchdog(std::vector<AlertRule> rules, std::size_t rack_count)
    : rules_(std::move(rules)), rack_count_(rack_count) {
  for (const AlertRule& r : rules_) {
    const bool rate_kind =
        r.kind == AlertKind::kFailsafeRate || r.kind == AlertKind::kSensorFaultRate;
    THERMCTL_ASSERT(!(rate_kind && r.per_rack),
                    "rate alert kinds are fleet-scope only: per_rack is unsupported on "
                    "failsafe_rate / sensor_fault_rate rules");
  }
  states_.resize(rules_.size() * (rack_count_ + 1));
}

void AlertWatchdog::step(std::size_t rule, std::int32_t rack, double t_s, double value) {
  const AlertRule& r = rules_[rule];
  const std::size_t scope = rack < 0 ? rack_count_ : static_cast<std::size_t>(rack);
  ScopeState& st = states_[rule * (rack_count_ + 1) + scope];
  const bool over = value > r.threshold;
  if (over) {
    if (st.above_since_s < 0.0) {
      st.above_since_s = t_s;
      st.peak = value;
    }
    st.peak = std::max(st.peak, value);
    const bool held = t_s - st.above_since_s >= r.for_s;
    if (held && st.event < 0) {
      AlertEvent ev;
      ev.rule = rule;
      ev.name = r.name;
      ev.rack = rack;
      ev.fired_at_s = t_s;
      ev.peak = st.peak;
      st.event = static_cast<std::int64_t>(events_.size());
      events_.push_back(std::move(ev));
      THERMCTL_TRACE_EMIT(trace_, (TraceEvent{.t_s = t_s,
                                              .type = TraceEventType::kAlertFire,
                                              .subsystem = TraceSubsystem::kAlert,
                                              .i0 = static_cast<std::int64_t>(rule),
                                              .i1 = rack,
                                              .a = value,
                                              .b = r.threshold}));
    }
    if (st.event >= 0) {
      events_[static_cast<std::size_t>(st.event)].peak = st.peak;
    }
  } else {
    if (st.event >= 0) {
      events_[static_cast<std::size_t>(st.event)].cleared_at_s = t_s;
      THERMCTL_TRACE_EMIT(trace_, (TraceEvent{.t_s = t_s,
                                              .type = TraceEventType::kAlertClear,
                                              .subsystem = TraceSubsystem::kAlert,
                                              .i0 = static_cast<std::int64_t>(rule),
                                              .i1 = rack,
                                              .a = value,
                                              .b = r.threshold}));
    }
    st.above_since_s = -1.0;
    st.peak = 0.0;
    st.event = -1;
  }
}

void AlertWatchdog::evaluate(double t_s, const FleetRollup& rollup) {
  THERMCTL_ASSERT(rollup.rack_count() == rack_count_, "watchdog/rollup rack count mismatch");
  THERMCTL_ASSERT(!rollup.fleet_series().empty(), "evaluate() before the first rollup commit");
  const RollupSample& fleet = rollup.fleet_series().back();

  // Rate signals: per-minute deltas of the cumulative fleet counters across
  // rollup intervals. The first sample has no predecessor, so rates are 0.
  const double dt = last_t_s_ >= 0.0 ? t_s - last_t_s_ : 0.0;
  const double failsafe_per_min =
      dt > 0.0
          ? static_cast<double>(fleet.plane_failsafe_entries - last_failsafes_) / dt * 60.0
          : 0.0;
  const double rejected_per_min =
      dt > 0.0 ? static_cast<double>(fleet.sensor_rejected - last_rejected_) / dt * 60.0 : 0.0;
  last_t_s_ = t_s;
  last_failsafes_ = fleet.plane_failsafe_entries;
  last_rejected_ = fleet.sensor_rejected;

  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& r = rules_[i];
    switch (r.kind) {
      case AlertKind::kMaxTemp:
      case AlertKind::kPowerOverBudget: {
        if (r.per_rack) {
          for (std::size_t rack = 0; rack < rack_count_; ++rack) {
            const RollupSample& s = rollup.rack_series(rack).back();
            step(i, static_cast<std::int32_t>(rack), t_s,
                 r.kind == AlertKind::kMaxTemp ? s.max_temp_c : s.power_w);
          }
        } else {
          step(i, -1, t_s, r.kind == AlertKind::kMaxTemp ? fleet.max_temp_c : fleet.power_w);
        }
        break;
      }
      case AlertKind::kFailsafeRate:
        step(i, -1, t_s, failsafe_per_min);
        break;
      case AlertKind::kSensorFaultRate:
        step(i, -1, t_s, rejected_per_min);
        break;
    }
  }
}

std::size_t AlertWatchdog::firing_count() const {
  std::size_t n = 0;
  for (const ScopeState& st : states_) {
    n += st.event >= 0 ? 1 : 0;
  }
  return n;
}

bool AlertWatchdog::rule_firing(std::size_t rule) const {
  for (std::size_t scope = 0; scope <= rack_count_; ++scope) {
    if (states_[rule * (rack_count_ + 1) + scope].event >= 0) {
      return true;
    }
  }
  return false;
}

}  // namespace thermctl::obs
