#include "obs/trace_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace thermctl::obs {

namespace {

constexpr char kMagic[8] = {'T', 'H', 'M', 'T', 'R', 'C', '1', '\0'};
constexpr std::uint32_t kHeaderSize = 32;

struct Header {
  char magic[8];
  std::uint32_t header_size;
  std::uint32_t record_size;
  std::uint64_t event_count;  // 8-aligned at offset 16, so no padding anywhere
  std::uint32_t node_count;
  std::uint32_t reserved;
};
static_assert(sizeof(Header) == kHeaderSize, "trace header layout drifted");

}  // namespace

void write_trace_file(const std::string& path, const RunTrace& trace) {
  write_trace_file(path, static_cast<std::uint32_t>(trace.node_count()),
                   trace.merged_events());
}

void write_trace_header(std::ostream& out, std::uint32_t node_count,
                        std::uint64_t event_count) {
  Header header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.header_size = kHeaderSize;
  header.record_size = static_cast<std::uint32_t>(sizeof(TraceEvent));
  header.node_count = node_count;
  header.event_count = event_count;
  header.reserved = 0;
  out.write(reinterpret_cast<const char*>(&header), sizeof header);
}

void write_trace_file(const std::string& path, std::uint32_t node_count,
                      const std::vector<TraceEvent>& events) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) {
    throw std::runtime_error("trace_io: cannot open " + path + " for writing");
  }
  write_trace_header(out, node_count, events.size());
  if (!events.empty()) {
    out.write(reinterpret_cast<const char*>(events.data()),
              static_cast<std::streamsize>(events.size() * sizeof(TraceEvent)));
  }
  if (!out) {
    throw std::runtime_error("trace_io: write failed for " + path);
  }
}

TraceFile read_trace_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error("trace_io: cannot open " + path);
  }
  Header header{};
  in.read(reinterpret_cast<char*>(&header), sizeof header);
  if (!in || std::memcmp(header.magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("trace_io: " + path + " is not a thermctl trace");
  }
  if (header.header_size != kHeaderSize ||
      header.record_size != static_cast<std::uint32_t>(sizeof(TraceEvent))) {
    throw std::runtime_error("trace_io: " + path +
                             " was written with an incompatible record layout");
  }
  TraceFile file;
  file.node_count = header.node_count;
  file.events.resize(static_cast<std::size_t>(header.event_count));
  if (!file.events.empty()) {
    in.read(reinterpret_cast<char*>(file.events.data()),
            static_cast<std::streamsize>(file.events.size() * sizeof(TraceEvent)));
  }
  if (!in) {
    throw std::runtime_error("trace_io: " + path + " is truncated");
  }
  // Spilled files are written as per-drain batches; a budget-limited drain
  // defers a ring's older events into a later batch, so the on-disk order is
  // only sorted per batch. Restore the canonical (time, node) merge order
  // here so every reader is order-tolerant by construction.
  std::stable_sort(file.events.begin(), file.events.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     if (x.t_s != y.t_s) return x.t_s < y.t_s;
                     return x.node < y.node;
                   });
  return file;
}

}  // namespace thermctl::obs
