// Decision-trace analysis: the queries the trace_analyze CLI and the tests
// ask of a recorded event stream.
//
// All functions take the merged, time-ordered stream (RunTrace::merged_events
// or TraceFile::events) and are pure — they derive timelines, residency
// histograms and causality tables without touching the live rings.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace thermctl::obs {

/// One applied mode change (fan duty or DVFS frequency actually reaching the
/// hardware), reconstructed from the trace.
struct ModeChange {
  double t_s = 0.0;
  std::uint16_t node = 0;
  TraceSubsystem subsystem = TraceSubsystem::kNone;
  double from = 0.0;  // duty % or GHz
  double to = 0.0;
  /// Δt source attribution: true when the level-2 (gradual) predictor
  /// supplied the step. Restores carry false (they are consistency-count
  /// driven, not window-driven).
  bool used_level2 = false;
  /// Consistency count that armed a tDVFS trigger/restore (0 for fan moves).
  std::int64_t consistency_rounds = 0;
  bool is_restore = false;
};

/// Applied mode changes in stream order. Fan retargets whose PWM write
/// failed are excluded — the hardware never changed mode.
[[nodiscard]] std::vector<ModeChange> mode_change_sequence(
    const std::vector<TraceEvent>& events);

/// Time spent at each mode value between changes, per node, for one
/// subsystem. `end_s` closes the final residency interval (pass the run's
/// end time); the stretch before the first change is attributed from t=0 to
/// that change's from-mode (the mode the controller initialized).
[[nodiscard]] std::map<std::uint16_t, std::map<double, double>> mode_residency(
    const std::vector<TraceEvent>& events, TraceSubsystem subsystem, double end_s);

/// Per-node decision statistics for the causality table.
struct NodeDecisionStats {
  std::uint64_t window_rounds = 0;
  std::uint64_t decisions = 0;
  std::uint64_t decisions_changed = 0;
  std::uint64_t level2_decisions = 0;   // Δt came from the gradual predictor
  std::uint64_t clamped_decisions = 0;  // raw i + c·Δt fell outside [0, N-1]
  std::uint64_t fan_retargets = 0;
  std::uint64_t fan_write_failures = 0;
  std::uint64_t tdvfs_triggers = 0;
  std::uint64_t tdvfs_restores = 0;
  std::uint64_t sensor_flags = 0;  // non-OK classifications
  std::uint64_t failsafe_entries = 0;
  std::uint64_t dvfs_holds = 0;
  std::uint64_t i2c_retries = 0;
  std::uint64_t i2c_exhausted = 0;
  std::uint64_t plane_budgets = 0;       // budget heartbeats applied
  std::uint64_t plane_cap_changes = 0;   // ... that moved the p-state cap
  std::uint64_t plane_failsafes = 0;     // autonomous-fallback entries
  std::uint64_t plane_policy_updates = 0;
  std::uint64_t alerts_fired = 0;  // watchdog fires (fleet lane = node 0)
};

[[nodiscard]] std::map<std::uint16_t, NodeDecisionStats> decision_stats(
    const std::vector<TraceEvent>& events);

/// Human-readable per-node decision timeline (the CLI's main view).
/// `max_rows` caps output rows per node (0 = unlimited).
[[nodiscard]] std::string render_timeline(const std::vector<TraceEvent>& events,
                                          std::size_t max_rows = 0);

/// Mode-residency histogram rendering for one subsystem.
[[nodiscard]] std::string render_residency(const std::vector<TraceEvent>& events,
                                           TraceSubsystem subsystem, double end_s);

/// Trigger-causality table: per node, what fired and why.
[[nodiscard]] std::string render_causality(const std::vector<TraceEvent>& events);

}  // namespace thermctl::obs
