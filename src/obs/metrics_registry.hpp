// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Design goals, in order:
//
//   1. Lock-free hot path. Registration (name lookup) takes a mutex and
//      happens at wiring time; the returned Counter/Gauge/Histogram handles
//      are plain objects with stable addresses, and updating one is an
//      ordinary non-atomic store — no lock, no atomic RMW. The concurrency
//      model is sharding, not synchronization: each worker/job updates only
//      its own shard.
//
//   2. Deterministic merge. A registry is a fixed-size array of shards
//      indexed by job (not by whichever thread happened to pick the job up),
//      and merged() folds shards in ascending index order — so a parallel
//      sweep's merged telemetry is bit-identical to the serial run's.
//      Counters and histogram buckets merge by sum (order-independent over
//      integers); gauges merge by "last shard that set it wins", which under
//      index-ordered folding is again deterministic.
//
//   3. Zero cost when absent. Everything takes the registry by pointer and
//      tolerates nullptr; a disabled run never touches this code.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace thermctl::obs {

/// Monotonic event count. Non-atomic by design: one shard, one writer.
class Counter {
 public:
  void add(std::uint64_t n) { value_ += n; }
  void inc() { ++value_; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value (e.g. steps/sec, final sim time).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    set_ = true;
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool is_set() const { return set_; }

 private:
  double value_ = 0.0;
  bool set_ = false;
};

/// Fixed-bucket histogram: bounds are upper edges of the finite buckets, a
/// final overflow bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }
  [[nodiscard]] std::uint64_t total_count() const { return total_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// One writer's private slice of the registry. Handles returned here stay
/// valid for the registry's lifetime.
class MetricsShard {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Re-registering an existing histogram name requires identical bounds.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

 private:
  friend class MetricsRegistry;
  // std::map keeps snapshot iteration name-ordered; unique_ptr keeps handle
  // addresses stable across registrations.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::mutex mutex_;  // guards registration only, never updates
};

/// Point-in-time merged view, cheap to copy and to serialize.
struct MetricsSnapshot {
  struct HistogramValue {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    double sum = 0.0;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramValue> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Folds `other` in: counters/histograms sum, gauges overwrite. Callers
  /// merging many snapshots must fold in a stable order (sweep point order)
  /// for gauge determinism.
  void merge(const MetricsSnapshot& other);
};

class MetricsRegistry {
 public:
  /// `shards` is the writer count (sweep points, worker jobs, ...). One
  /// shard is the common single-run case.
  explicit MetricsRegistry(std::size_t shards = 1);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] MetricsShard& shard(std::size_t index);

  /// Convenience for the single-writer case: shard 0.
  Counter& counter(const std::string& name) { return shard(0).counter(name); }
  Gauge& gauge(const std::string& name) { return shard(0).gauge(name); }
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds) {
    return shard(0).histogram(name, std::move(upper_bounds));
  }

  /// Deterministic fold of all shards, ascending shard index.
  [[nodiscard]] MetricsSnapshot merged() const;

 private:
  std::vector<std::unique_ptr<MetricsShard>> shards_;
};

}  // namespace thermctl::obs
