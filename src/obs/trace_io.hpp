// Trace serialization: the .thermtrace binary container and its readers.
//
// Format (little-endian, versioned):
//
//   offset  size  field
//   0       8     magic "THMTRC1\0"
//   8       4     u32 header size (= 32)
//   12      4     u32 event record size (= sizeof(TraceEvent) = 56)
//   16      8     u64 event count
//   24      4     u32 node count
//   28      4     u32 reserved (0)
//   32      ...   event records, merged stream order (time, node)
//
// The record size is stored so a reader can reject traces from a build whose
// TraceEvent layout drifted instead of misparsing them.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace thermctl::obs {

struct TraceFile {
  std::uint32_t node_count = 0;
  std::vector<TraceEvent> events;  // merged stream order
};

/// Writes the merged event stream of `trace` to `path`. Throws
/// std::runtime_error on I/O failure.
void write_trace_file(const std::string& path, const RunTrace& trace);

/// Writes an already-merged stream (e.g. a filtered one).
void write_trace_file(const std::string& path, std::uint32_t node_count,
                      const std::vector<TraceEvent>& events);

/// Reads a trace file back. Throws std::runtime_error on I/O failure, bad
/// magic, or a record-size mismatch.
[[nodiscard]] TraceFile read_trace_file(const std::string& path);

/// Writes just the 32-byte container header at the stream's current
/// position. The streaming spiller writes it once with a zero event count,
/// appends records as the run progresses, and rewrites it on finalize.
void write_trace_header(std::ostream& out, std::uint32_t node_count,
                        std::uint64_t event_count);

}  // namespace thermctl::obs
