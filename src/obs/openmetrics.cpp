#include "obs/openmetrics.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace thermctl::obs {

namespace {

std::string fmt_double(double v) {
  // The OpenMetrics ABNF spells non-finite values "NaN" / "+Inf" / "-Inf"
  // exactly; printf's %g renders "nan" / "inf", which scrapers reject.
  if (std::isnan(v)) {
    return "NaN";
  }
  if (std::isinf(v)) {
    return v > 0.0 ? "+Inf" : "-Inf";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return std::string{buf};
}

/// OpenMetrics label values escape backslash, double quote and newline.
std::string label_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

struct Renderer {
  std::ostringstream out;

  void type(const std::string& name, const char* kind) {
    out << "# TYPE " << name << ' ' << kind << '\n';
  }
  void sample(const std::string& name, double value) {
    out << name << ' ' << fmt_double(value) << '\n';
  }
  void sample(const std::string& name, const std::string& labels, double value) {
    out << name << '{' << labels << "} " << fmt_double(value) << '\n';
  }

  void gauge(const std::string& name, double value) {
    type(name, "gauge");
    sample(name, value);
  }
  void counter(const std::string& name, double value) {
    type(name, "counter");
    sample(name + "_total", value);
  }
};

}  // namespace

std::string openmetrics_name(const std::string& name) {
  std::string out = "thermctl_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_openmetrics(const MetricsSnapshot& metrics, const FleetRollup* rollup,
                               const AlertWatchdog* alerts, const SpillStats* spill,
                               double t_s) {
  Renderer r;
  r.gauge("thermctl_sim_time_seconds", t_s);

  for (const auto& [name, value] : metrics.counters) {
    r.counter(openmetrics_name(name), static_cast<double>(value));
  }
  for (const auto& [name, value] : metrics.gauges) {
    r.gauge(openmetrics_name(name), value);
  }
  for (const auto& [name, h] : metrics.histograms) {
    const std::string om = openmetrics_name(name);
    r.type(om, "histogram");
    // The registry stores per-bucket counts; the exposition wants cumulative
    // counts per upper bound, closed by the +Inf bucket.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      r.sample(om + "_bucket", "le=\"" + fmt_double(h.bounds[i]) + "\"",
               static_cast<double>(cumulative));
    }
    r.sample(om + "_bucket", "le=\"+Inf\"", static_cast<double>(h.total));
    r.sample(om + "_sum", h.sum);
    r.sample(om + "_count", static_cast<double>(h.total));
  }

  if (rollup != nullptr && !rollup->fleet_series().empty()) {
    const RollupSample& fleet = rollup->fleet_series().back();
    r.gauge("thermctl_fleet_max_temp_celsius", fleet.max_temp_c);
    r.gauge("thermctl_fleet_avg_temp_celsius", fleet.avg_temp_c);
    r.gauge("thermctl_fleet_power_watts", fleet.power_w);
    r.gauge("thermctl_fleet_capped_nodes", static_cast<double>(fleet.capped_nodes));
    r.gauge("thermctl_fleet_autonomous_nodes", static_cast<double>(fleet.autonomous_nodes));
    r.gauge("thermctl_fleet_violation_node_seconds", fleet.violation_node_s);
    // `fleet_`-prefixed like the gauges above — the raw names would collide
    // with the registry counters the coordinator publishes under the same
    // families (plane.failsafe_entries et al).
    r.counter("thermctl_fleet_plane_failsafe_entries",
              static_cast<double>(fleet.plane_failsafe_entries));
    r.counter("thermctl_fleet_sensor_rejected", static_cast<double>(fleet.sensor_rejected));

    r.type("thermctl_rack_max_temp_celsius", "gauge");
    for (std::size_t rack = 0; rack < rollup->rack_count(); ++rack) {
      r.sample("thermctl_rack_max_temp_celsius", "rack=\"" + std::to_string(rack) + "\"",
               rollup->rack_series(rack).back().max_temp_c);
    }
    r.type("thermctl_rack_power_watts", "gauge");
    for (std::size_t rack = 0; rack < rollup->rack_count(); ++rack) {
      r.sample("thermctl_rack_power_watts", "rack=\"" + std::to_string(rack) + "\"",
               rollup->rack_series(rack).back().power_w);
    }
    r.type("thermctl_rack_capped_nodes", "gauge");
    for (std::size_t rack = 0; rack < rollup->rack_count(); ++rack) {
      r.sample("thermctl_rack_capped_nodes", "rack=\"" + std::to_string(rack) + "\"",
               static_cast<double>(rollup->rack_series(rack).back().capped_nodes));
    }
  }

  if (alerts != nullptr) {
    r.gauge("thermctl_alerts_firing", static_cast<double>(alerts->firing_count()));
    if (!alerts->rules().empty()) {
      r.type("thermctl_alert_firing", "gauge");
      for (std::size_t i = 0; i < alerts->rules().size(); ++i) {
        r.sample("thermctl_alert_firing",
                 "rule=\"" + label_escape(alerts->rules()[i].name) + "\"",
                 alerts->rule_firing(i) ? 1.0 : 0.0);
      }
    }
    r.counter("thermctl_alert_events", static_cast<double>(alerts->events().size()));
  }

  if (spill != nullptr) {
    r.counter("thermctl_spill_drains", static_cast<double>(spill->drains));
    r.counter("thermctl_spill_events", static_cast<double>(spill->events_spilled));
    r.counter("thermctl_spill_events_lost", static_cast<double>(spill->events_lost));
    r.counter("thermctl_spill_deferred_drains", static_cast<double>(spill->deferred_drains));
  }

  r.out << "# EOF\n";
  return r.out.str();
}

}  // namespace thermctl::obs
