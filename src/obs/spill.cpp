#include "obs/spill.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "common/assert.hpp"
#include "obs/trace_io.hpp"

namespace thermctl::obs {

struct FileSpillSink::Impl {
  std::ofstream out;
};

FileSpillSink::FileSpillSink(std::string path)
    : path_(std::move(path)), impl_(std::make_unique<Impl>()) {
  impl_->out.open(path_, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    throw std::runtime_error("spill: cannot open " + path_ + " for writing");
  }
  // Placeholder header; finalize() rewrites it with the real counts.
  write_trace_header(impl_->out, 0, 0);
}

FileSpillSink::~FileSpillSink() = default;

void FileSpillSink::append(const TraceEvent* events, std::size_t count) {
  if (count == 0) {
    return;
  }
  impl_->out.write(reinterpret_cast<const char*>(events),
                   static_cast<std::streamsize>(count * sizeof(TraceEvent)));
  if (!impl_->out) {
    throw std::runtime_error("spill: write failed for " + path_);
  }
}

void FileSpillSink::finalize(std::uint32_t node_count, std::uint64_t event_count) {
  impl_->out.seekp(0);
  write_trace_header(impl_->out, node_count, event_count);
  impl_->out.flush();
  if (!impl_->out) {
    throw std::runtime_error("spill: finalize failed for " + path_);
  }
  impl_->out.close();
}

void MemorySpillSink::append(const TraceEvent* events, std::size_t count) {
  events_.insert(events_.end(), events, events + count);
}

void MemorySpillSink::finalize(std::uint32_t node_count, std::uint64_t event_count) {
  THERMCTL_ASSERT(event_count == events_.size(), "spill finalize count drifted");
  // Budgeted drains can defer a ring's older events into a later batch, so
  // the appended stream is only sorted within batches; restore the global
  // (time, node) merge order here, like read_trace_file does for files.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     if (x.t_s != y.t_s) return x.t_s < y.t_s;
                     return x.node < y.node;
                   });
  node_count_ = node_count;
  finalized_ = true;
}

TraceSpiller::TraceSpiller(const RunTrace& trace, SpillSink& sink, SpillConfig config)
    : trace_(trace), sink_(sink), config_(config) {
  THERMCTL_ASSERT(config_.period_s > 0.0, "spill period must be positive");
  cursors_.assign(trace_.node_count(), 0);
  stats_.lost_by_node.assign(trace_.node_count(), 0);
}

void TraceSpiller::drain_pass(std::size_t budget) {
  batch_.clear();
  const std::size_t nodes = trace_.node_count();
  const std::size_t start = next_node_;
  for (std::size_t visited = 0; visited < nodes; ++visited) {
    if (budget != 0 && batch_.size() >= budget) {
      break;
    }
    const std::size_t i = (start + visited) % nodes;
    const std::size_t remaining = budget == 0 ? 0 : budget - batch_.size();
    std::uint64_t lost = 0;
    cursors_[i] = trace_.ring(i).read_new(cursors_[i], remaining, batch_, lost);
    stats_.lost_by_node[i] += lost;
    stats_.events_lost += lost;
  }
  // Budget exhausted with events still unread? Resume the next pass at the
  // first still-pending ring so no node starves under sustained pressure.
  next_node_ = 0;
  for (std::size_t visited = 0; visited < nodes; ++visited) {
    const std::size_t i = (start + visited) % nodes;
    if (cursors_[i] < trace_.ring(i).emitted()) {
      next_node_ = i;
      ++stats_.deferred_drains;
      break;
    }
  }
  // Batches interleave nodes in visit order; restore the canonical container
  // order. Stable so one node's events keep their emission order.
  std::stable_sort(batch_.begin(), batch_.end(), [](const TraceEvent& x, const TraceEvent& y) {
    if (x.t_s != y.t_s) return x.t_s < y.t_s;
    return x.node < y.node;
  });
  sink_.append(batch_.data(), batch_.size());
  stats_.events_spilled += batch_.size();
}

void TraceSpiller::drain(double now_s) {
  (void)now_s;  // cadence is the caller's (engine periodic) concern
  THERMCTL_ASSERT(!finished_, "spiller drained after finish()");
  ++stats_.drains;
  drain_pass(config_.max_events_per_drain);
}

void TraceSpiller::finish() {
  if (finished_) {
    return;
  }
  // One unbudgeted closing drain empties every ring regardless of where the
  // last budgeted pass stopped.
  drain_pass(0);
  finished_ = true;
  sink_.finalize(static_cast<std::uint32_t>(trace_.node_count()), stats_.events_spilled);
}

}  // namespace thermctl::obs
