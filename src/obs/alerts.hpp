// Online alert watchdog: declarative threshold rules over the rollup stream.
//
// A rule names a signal (rack/fleet max temperature, fleet wall power,
// plane-failsafe rate, sensor-fault rate), a threshold, and a hold time:
// the alert fires at the first rollup sample where the signal has been
// continuously over threshold for at least `for_s` seconds, and clears at
// the first sample back at or under it. Evaluation is pure arithmetic over
// the latest rollup row — deterministic, O(rules · racks) per interval —
// and every transition is recorded twice: a structured kAlertFire /
// kAlertClear event on the trace's fleet lane (ring 0), and an AlertEvent
// in the list the run summary serializes as the machine-readable `alerts`
// section.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/rollup.hpp"
#include "obs/trace.hpp"

namespace thermctl::obs {

enum class AlertKind : std::uint8_t {
  /// Rack (or fleet, when per_rack is false) max die temperature, °C.
  kMaxTemp = 0,
  /// Fleet (or rack) wall power, W — "budget overshoot" against the
  /// threshold the operator intended the plane to hold.
  kPowerOverBudget = 1,
  /// Plane failsafe entries per minute, fleet-wide (from the cumulative
  /// counter's delta across rollup intervals).
  kFailsafeRate = 2,
  /// Sensor readings rejected per minute, fleet-wide.
  kSensorFaultRate = 3,
};

[[nodiscard]] const char* to_string(AlertKind kind);

struct AlertRule {
  std::string name;
  AlertKind kind = AlertKind::kMaxTemp;
  double threshold = 0.0;
  /// Continuous seconds over threshold before firing (0 = first sample).
  double for_s = 0.0;
  /// Evaluate each rack's series separately; otherwise one fleet-scope
  /// evaluation. Scope rules: only kMaxTemp and kPowerOverBudget support
  /// per-rack evaluation — the rollup keeps those per rack. The rate kinds
  /// (kFailsafeRate, kSensorFaultRate) derive from cumulative counters the
  /// plane reports fleet-wide only, so per_rack=true on them is a config
  /// error and the AlertWatchdog constructor rejects it rather than
  /// silently evaluating at fleet scope.
  bool per_rack = false;
};

/// One fire (and optional clear) of a rule in one scope.
struct AlertEvent {
  std::size_t rule = 0;    // index into the rule list
  std::string name;        // copied from the rule for self-contained output
  std::int32_t rack = -1;  // -1 = fleet scope
  double fired_at_s = 0.0;
  double cleared_at_s = -1.0;  // -1 = still firing at end of run
  /// Worst value observed while over threshold.
  double peak = 0.0;
};

class AlertWatchdog {
 public:
  AlertWatchdog(std::vector<AlertRule> rules, std::size_t rack_count);

  /// Structured alert events land on this ring (the fleet lane; nullptr
  /// disables trace emission but the AlertEvent record is always kept).
  void set_trace(TraceRing* ring) { trace_ = ring; }

  /// Evaluate every rule against the rollup's newest sample. Call once per
  /// rollup interval, right after FleetRollup::commit().
  void evaluate(double t_s, const FleetRollup& rollup);

  [[nodiscard]] const std::vector<AlertRule>& rules() const { return rules_; }
  [[nodiscard]] const std::vector<AlertEvent>& events() const { return events_; }
  /// Alerts currently over threshold (fired, not yet cleared).
  [[nodiscard]] std::size_t firing_count() const;
  [[nodiscard]] bool rule_firing(std::size_t rule) const;

 private:
  struct ScopeState {
    double above_since_s = -1.0;  // first over-threshold sample (-1 = none)
    double peak = 0.0;
    std::int64_t event = -1;  // open AlertEvent index while firing
  };

  void step(std::size_t rule, std::int32_t rack, double t_s, double value);

  std::vector<AlertRule> rules_;
  std::size_t rack_count_;
  TraceRing* trace_ = nullptr;
  /// rack_count_+1 scopes per rule: [0..racks) then the fleet scope.
  std::vector<ScopeState> states_;
  std::vector<AlertEvent> events_;
  /// Previous cumulative counters + sample time for the rate kinds.
  double last_t_s_ = -1.0;
  std::uint64_t last_failsafes_ = 0;
  std::uint64_t last_rejected_ = 0;
};

}  // namespace thermctl::obs
