#include "obs/metrics_registry.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace thermctl::obs {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  THERMCTL_ASSERT(!bounds_.empty(), "histogram needs at least one bucket bound");
  THERMCTL_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "histogram bounds must ascend");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  // First bucket whose upper edge admits v; everything past the last edge
  // lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++total_;
  sum_ += v;
}

Counter& MetricsShard::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock{mutex_};
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsShard::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock{mutex_};
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsShard::histogram(const std::string& name, std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock{mutex_};
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  } else {
    THERMCTL_ASSERT(slot->bounds() == upper_bounds,
                    "histogram re-registered with different bounds");
  }
  return *slot;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) {
    counters[name] += v;
  }
  for (const auto& [name, v] : other.gauges) {
    gauges[name] = v;
  }
  for (const auto& [name, h] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, h);
      continue;
    }
    HistogramValue& mine = it->second;
    THERMCTL_ASSERT(mine.bounds == h.bounds, "merging histograms with different bounds");
    for (std::size_t i = 0; i < mine.counts.size(); ++i) {
      mine.counts[i] += h.counts[i];
    }
    mine.total += h.total;
    mine.sum += h.sum;
  }
}

MetricsRegistry::MetricsRegistry(std::size_t shards) {
  THERMCTL_ASSERT(shards >= 1, "registry needs at least one shard");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<MetricsShard>());
  }
}

MetricsShard& MetricsRegistry::shard(std::size_t index) {
  THERMCTL_ASSERT(index < shards_.size(), "shard index out of range");
  return *shards_[index];
}

MetricsSnapshot MetricsRegistry::merged() const {
  MetricsSnapshot snap;
  for (const auto& shard : shards_) {
    // Shard fold order is ascending index by construction — the determinism
    // contract parallel sweeps rely on.
    for (const auto& [name, c] : shard->counters_) {
      snap.counters[name] += c->value();
    }
    for (const auto& [name, g] : shard->gauges_) {
      if (g->is_set()) {
        snap.gauges[name] = g->value();
      }
    }
    for (const auto& [name, h] : shard->histograms_) {
      auto it = snap.histograms.find(name);
      if (it == snap.histograms.end()) {
        MetricsSnapshot::HistogramValue v;
        v.bounds = h->bounds();
        v.counts = h->counts();
        v.total = h->total_count();
        v.sum = h->sum();
        snap.histograms.emplace(name, std::move(v));
        continue;
      }
      MetricsSnapshot::HistogramValue& mine = it->second;
      THERMCTL_ASSERT(mine.bounds == h->bounds(),
                      "shards registered one histogram with different bounds");
      for (std::size_t i = 0; i < mine.counts.size(); ++i) {
        mine.counts[i] += h->counts()[i];
      }
      mine.total += h->total_count();
      mine.sum += h->sum();
    }
  }
  return snap;
}

}  // namespace thermctl::obs
