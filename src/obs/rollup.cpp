#include "obs/rollup.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace thermctl::obs {

FleetRollup::FleetRollup(std::size_t node_count, RollupConfig config)
    : node_count_(node_count), config_(config) {
  THERMCTL_ASSERT(node_count_ >= 1, "rollup needs nodes");
  THERMCTL_ASSERT(config_.interval_s > 0.0, "rollup interval must be positive");
  rack_count_ = config_.nodes_per_rack == 0
                    ? 1
                    : (node_count_ + config_.nodes_per_rack - 1) / config_.nodes_per_rack;
  pending_.resize(rack_count_);
  pending_counts_.resize(rack_count_);
  rack_series_.resize(rack_count_);
}

void FleetRollup::begin(double t_s) {
  THERMCTL_ASSERT(!in_sample_, "rollup begin() without commit()");
  in_sample_ = true;
  for (RollupSample& s : pending_) {
    s = RollupSample{};
    s.t_s = t_s;
    // Identity for max: a rack that never observes keeps no fake 0 °C peak
    // (commit() replaces it with NaN when the interval stays empty).
    s.max_temp_c = std::numeric_limits<double>::lowest();
  }
  pending_fleet_ = RollupSample{};
  pending_fleet_.t_s = t_s;
  pending_fleet_.max_temp_c = std::numeric_limits<double>::lowest();
  std::fill(pending_counts_.begin(), pending_counts_.end(), 0u);
}

void FleetRollup::observe(std::size_t node, double temp_c, double power_w, bool capped,
                          bool autonomous) {
  THERMCTL_ASSERT(in_sample_, "rollup observe() outside begin()/commit()");
  RollupSample& r = pending_[rack_of(node)];
  r.max_temp_c = std::max(r.max_temp_c, temp_c);
  r.avg_temp_c += temp_c;  // sum for now; commit() divides
  r.power_w += power_w;
  r.capped_nodes += capped ? 1 : 0;
  r.autonomous_nodes += autonomous ? 1 : 0;
  if (temp_c > config_.violation_temp_c) {
    r.violation_node_s += config_.interval_s;
  }
  ++pending_counts_[rack_of(node)];
}

void FleetRollup::commit(std::uint64_t plane_failsafe_entries, std::uint64_t sensor_rejected) {
  THERMCTL_ASSERT(in_sample_, "rollup commit() without begin()");
  in_sample_ = false;
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  RollupSample& fleet = pending_fleet_;
  std::uint32_t fleet_members = 0;
  for (std::size_t rack = 0; rack < rack_count_; ++rack) {
    RollupSample& r = pending_[rack];
    const std::uint32_t members = pending_counts_[rack];
    r.members = members;
    if (members > 0) {
      // Fleet aggregates fold nonempty racks only, so one idle rack can't
      // drag NaN (or a fake 0) into the fleet row.
      fleet.max_temp_c = std::max(fleet.max_temp_c, r.max_temp_c);
      fleet.avg_temp_c += r.avg_temp_c;  // still a sum
      fleet.power_w += r.power_w;
      fleet.capped_nodes += r.capped_nodes;
      fleet.autonomous_nodes += r.autonomous_nodes;
      fleet.violation_node_s += r.violation_node_s;
      fleet_members += members;
      r.avg_temp_c /= static_cast<double>(members);
    } else {
      r.max_temp_c = kNaN;
      r.avg_temp_c = kNaN;
      r.power_w = kNaN;
    }
    rack_series_[rack].push_back(r);
  }
  fleet.members = fleet_members;
  if (fleet_members > 0) {
    fleet.avg_temp_c /= static_cast<double>(fleet_members);
  } else {
    fleet.max_temp_c = kNaN;
    fleet.avg_temp_c = kNaN;
    fleet.power_w = kNaN;
  }
  fleet.plane_failsafe_entries = plane_failsafe_entries;
  fleet.sensor_rejected = sensor_rejected;
  fleet_series_.push_back(fleet);
}

std::uint64_t FleetRollup::samples_recorded() const {
  std::uint64_t n = fleet_series_.size();
  for (const auto& series : rack_series_) {
    n += series.size();
  }
  return n;
}

}  // namespace thermctl::obs
