#include "core/tempest.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace thermctl::core {

std::string_view to_string(cluster::ActivityCode code) {
  switch (code) {
    case cluster::ActivityCode::kNone:
      return "(no rank)";
    case cluster::ActivityCode::kCompute:
      return "compute";
    case cluster::ActivityCode::kCommunicate:
      return "communicate";
    case cluster::ActivityCode::kIdlePhase:
      return "idle";
    case cluster::ActivityCode::kBarrier:
      return "barrier wait";
    case cluster::ActivityCode::kFinished:
      return "finished";
  }
  return "?";
}

TempestReport attribute_heat(const cluster::NodeSeries& series, double record_dt_s) {
  THERMCTL_ASSERT(record_dt_s > 0.0, "recording period must be positive");
  THERMCTL_ASSERT(series.activity.size() == series.die_temp.size(),
                  "activity series misaligned");
  TempestReport report;
  if (series.die_temp.size() < 2) {
    return report;
  }

  std::array<double, 6> util_sum{};
  std::array<double, 6> temp_sum{};
  std::array<std::size_t, 6> count{};
  std::size_t present = 0;

  for (std::size_t i = 1; i < series.die_temp.size(); ++i) {
    const int code = static_cast<int>(series.activity[i]);
    THERMCTL_ASSERT(code >= 0 && code < 6, "activity code out of range");
    const double dt_temp = series.die_temp[i] - series.die_temp[i - 1];
    ActivityStats& stats = report.by_activity[static_cast<std::size_t>(code)];
    stats.time_s += record_dt_s;
    util_sum[static_cast<std::size_t>(code)] += series.util[i];
    temp_sum[static_cast<std::size_t>(code)] += series.die_temp[i];
    ++count[static_cast<std::size_t>(code)];
    if (code != 0) {
      ++present;
    }
    if (dt_temp > 0.0) {
      stats.heating_c += dt_temp;
      report.total_heating_c += dt_temp;
    } else {
      stats.cooling_c += -dt_temp;
    }
  }

  double best = -1.0;
  for (std::size_t k = 0; k < 6; ++k) {
    ActivityStats& stats = report.by_activity[k];
    if (count[k] > 0) {
      stats.avg_util = util_sum[k] / static_cast<double>(count[k]);
      stats.avg_temp = temp_sum[k] / static_cast<double>(count[k]);
    }
    if (k != 0 && present > 0) {
      stats.time_share = static_cast<double>(count[k]) / static_cast<double>(present);
    }
    if (k != 0 && stats.heating_c > best) {
      best = stats.heating_c;
      report.hottest = static_cast<cluster::ActivityCode>(k);
    }
  }
  return report;
}

std::string render_tempest(const TempestReport& report) {
  std::ostringstream out;
  TextTable table{{"activity", "time (s)", "share (%)", "avg util", "avg temp (degC)",
                   "heating (degC)", "cooling (degC)"}};
  for (std::size_t k = 1; k < 6; ++k) {
    const ActivityStats& stats = report.by_activity[k];
    if (stats.time_s <= 0.0) {
      continue;
    }
    table.add_row(std::string{to_string(static_cast<cluster::ActivityCode>(k))},
                  {stats.time_s, stats.time_share * 100.0, stats.avg_util, stats.avg_temp,
                   stats.heating_c, stats.cooling_c},
                  2);
  }
  out << table.render();
  out << "hot spot: " << to_string(report.hottest) << " ("
      << format_number(report.total_heating_c, 1) << " degC total heating)\n";
  return out.str();
}

}  // namespace thermctl::core
