#include "core/step_wise.hpp"

#include <cmath>

#include "common/log.hpp"

namespace thermctl::core {

StepWiseGovernor::StepWiseGovernor(sysfs::ThermalZone& zone, StepWiseConfig config)
    : zone_(zone), config_(config) {}

void StepWiseGovernor::on_sample(SimTime now) {
  (void)now;
  const double temp = zone_.temperature().value();
  const double trend = last_temp_ <= -1e8 ? 0.0 : temp - last_temp_;
  last_temp_ = temp;

  bool above_passive = false;
  for (const sysfs::TripPoint& trip : zone_.trips()) {
    if (trip.type == sysfs::TripType::kCritical) {
      if (temp >= trip.temperature.value()) {
        if (!critical_latched_) {
          ++critical_;
          critical_latched_ = true;
          THERMCTL_LOG_WARN("step_wise", "critical trip crossed at %.1f C", temp);
        }
      } else {
        critical_latched_ = false;
      }
      continue;
    }
    if (temp >= trip.temperature.value()) {
      above_passive = true;
    }
  }

  const bool rising = trend > config_.trend_deadband_c;
  const bool falling = trend < -config_.trend_deadband_c;

  if (above_passive && rising) {
    for (sysfs::CoolingDevice* dev : zone_.bound_devices()) {
      if (dev->cooling_state() < dev->max_cooling_state() &&
          dev->set_cooling_state(dev->cooling_state() + 1)) {
        ++steps_up_;
      }
    }
  } else if (!above_passive && falling) {
    for (sysfs::CoolingDevice* dev : zone_.bound_devices()) {
      if (dev->cooling_state() > 0 && dev->set_cooling_state(dev->cooling_state() - 1)) {
        ++steps_down_;
      }
    }
  }
}

}  // namespace thermctl::core
