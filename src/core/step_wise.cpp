#include "core/step_wise.hpp"

#include <cmath>

#include "common/log.hpp"

namespace thermctl::core {

StepWiseGovernor::StepWiseGovernor(sysfs::ThermalZone& zone, StepWiseConfig config)
    : zone_(zone), config_(config) {}

void StepWiseGovernor::on_sample(SimTime now) {
  (void)now;
  const double temp = zone_.temperature().value();
  // The first sample has no predecessor, so its trend is defined as flat —
  // an explicit flag rather than a magic sentinel, so absurd-but-real
  // readings (a sensor fault reporting a huge negative value) cannot be
  // mistaken for "not yet primed".
  const double trend = primed_ ? temp - last_temp_ : 0.0;
  last_temp_ = temp;
  primed_ = true;

  bool above_passive = false;
  for (const sysfs::TripPoint& trip : zone_.trips()) {
    if (trip.type == sysfs::TripType::kCritical) {
      if (temp >= trip.temperature.value()) {
        if (!critical_latched_) {
          ++critical_;
          critical_latched_ = true;
          THERMCTL_LOG_WARN("step_wise", "critical trip crossed at %.1f C", temp);
        }
      } else {
        critical_latched_ = false;
      }
      continue;
    }
    if (temp >= trip.temperature.value()) {
      above_passive = true;
    }
  }

  const bool rising = trend > config_.trend_deadband_c;
  const bool falling = trend < -config_.trend_deadband_c;
  falling_streak_ = falling ? falling_streak_ + 1 : 0;

  const auto step_down_all = [this] {
    for (sysfs::CoolingDevice* dev : zone_.bound_devices()) {
      if (dev->cooling_state() > 0 && dev->set_cooling_state(dev->cooling_state() - 1)) {
        ++steps_down_;
      }
    }
  };

  if (above_passive && rising) {
    for (sysfs::CoolingDevice* dev : zone_.bound_devices()) {
      if (dev->cooling_state() < dev->max_cooling_state() &&
          dev->set_cooling_state(dev->cooling_state() + 1)) {
        ++steps_up_;
      }
    }
    falling_streak_ = 0;
  } else if (!above_passive && falling) {
    step_down_all();
  } else if (above_passive && falling_streak_ >= config_.cooling_consistency) {
    // Still past the trip but consistently cooling: relax one step rather
    // than pinning every device at its peak state until the temperature
    // finally drops below the trip. The consistency requirement is the
    // hysteresis — one cool-looking sample must not unwind the response.
    step_down_all();
    falling_streak_ = 0;
  }
}

}  // namespace thermctl::core
