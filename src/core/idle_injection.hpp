// Sleep-state (idle-injection) thermal control — the third technique family
// §3.2.2 names for the thermal control array ("valid sleep states for
// ACPI-compatible system").
//
// Same machinery as the other techniques: a Pp-filled ThermalControlArray
// whose modes are forced-idle percentages (0 → max clamp, ascending
// effectiveness), the two-level window for prediction, threshold +
// consistency gating like tDVFS. Idle injection is the most intrusive
// technique (it steals whole time slices from the application), so in the
// unified controller it is staged *after* fan and DVFS as the emergency
// backstop.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "core/control_array.hpp"
#include "core/mode_selector.hpp"
#include "core/policy.hpp"
#include "core/two_level_window.hpp"
#include "sysfs/hwmon.hpp"
#include "sysfs/powerclamp.hpp"

namespace thermctl::core {

struct IdleInjectionConfig {
  PolicyParam pp{};
  /// Engage only above this (defaults above the tDVFS threshold: last
  /// resort).
  Celsius threshold{56.0};
  CelsiusDelta hysteresis{2.0};
  int consistency_rounds = 3;
  /// Rounds below (threshold − hysteresis) before releasing the clamp.
  int release_rounds = 8;
  /// Idle-percent step between modes (0, step, 2·step, … max_state).
  int percent_step = 5;
  std::size_t array_size = 16;
  ModeSelectorConfig selector{};
  WindowConfig window{};
};

struct ClampEvent {
  double time_s = 0.0;
  long from_percent = 0;
  long to_percent = 0;
};

class IdleInjectionController {
 public:
  IdleInjectionController(sysfs::HwmonDevice& hwmon, sysfs::PowerClampDevice& clamp,
                          IdleInjectionConfig config);

  /// Controller tick at the sensor sampling rate.
  void on_sample(SimTime now);

  [[nodiscard]] std::size_t current_index() const { return index_; }
  [[nodiscard]] long current_percent() const;
  [[nodiscard]] const std::vector<ClampEvent>& events() const { return events_; }
  [[nodiscard]] const ThermalControlArray& array() const { return array_; }

  void set_policy(PolicyParam pp);

 private:
  static std::vector<double> clamp_modes(const sysfs::PowerClampDevice& clamp,
                                         const IdleInjectionConfig& config);
  void retarget(SimTime now, std::size_t target);

  sysfs::HwmonDevice& hwmon_;
  sysfs::PowerClampDevice& clamp_;
  IdleInjectionConfig config_;
  ThermalControlArray array_;
  ModeSelector selector_;
  TwoLevelWindow window_;
  std::size_t index_ = 0;
  int rounds_above_ = 0;
  int rounds_below_ = 0;
  std::vector<ClampEvent> events_;
};

}  // namespace thermctl::core
