#include "core/cpuspeed.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace thermctl::core {

CpuspeedGovernor::CpuspeedGovernor(JiffyFn busy, JiffyFn total, sysfs::CpufreqPolicy& cpufreq,
                                   CpuspeedConfig config)
    : busy_(std::move(busy)), total_(std::move(total)), cpufreq_(cpufreq), config_(config) {
  THERMCTL_ASSERT(static_cast<bool>(busy_) && static_cast<bool>(total_),
                  "governor needs jiffy sources");
  THERMCTL_ASSERT(config_.up_threshold > config_.down_threshold,
                  "up threshold must exceed down threshold");
}

CpuspeedGovernor::CpuspeedGovernor(const sysfs::VirtualFs& fs,
                                   const sysfs::ProcStat& proc_stat,
                                   sysfs::CpufreqPolicy& cpufreq, CpuspeedConfig config)
    : CpuspeedGovernor(
          [&fs, &proc_stat] { return proc_stat.read(fs).value_or(sysfs::JiffySnapshot{}).busy; },
          [&fs, &proc_stat] { return proc_stat.read(fs).value_or(sysfs::JiffySnapshot{}).total; },
          cpufreq, config) {}

void CpuspeedGovernor::on_interval(SimTime now) {
  (void)now;
  const std::uint64_t busy = busy_();
  const std::uint64_t total = total_();
  if (!primed_) {
    prev_busy_ = busy;
    prev_total_ = total;
    primed_ = true;
    return;
  }
  const std::uint64_t d_busy = busy - prev_busy_;
  const std::uint64_t d_total = total - prev_total_;
  prev_busy_ = busy;
  prev_total_ = total;
  if (d_total == 0) {
    return;
  }
  last_util_ = static_cast<double>(d_busy) / static_cast<double>(d_total);

  if (last_util_ >= config_.up_threshold) {
    // Busy: jump straight to the fastest frequency (cpuspeed behaviour).
    cpufreq_.set_khz(cpufreq_.max_khz());
    return;
  }
  if (last_util_ <= config_.down_threshold) {
    // Idle enough: step down one rung of the ladder.
    std::vector<double> ladder = cpufreq_.available_ghz();  // descending
    const long cur = cpufreq_.cur_khz();
    for (std::size_t i = 0; i + 1 < ladder.size(); ++i) {
      const long khz = sysfs::CpufreqPolicy::to_khz(GigaHertz{ladder[i]});
      if (khz == cur) {
        cpufreq_.set_khz(sysfs::CpufreqPolicy::to_khz(GigaHertz{ladder[i + 1]}));
        return;
      }
    }
  }
}

}  // namespace thermctl::core
