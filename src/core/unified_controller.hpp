// The unified in-band + out-of-band controller (§4.4).
//
// Coordination as the paper defines it: "use fan to control temperature if
// possible, and trigger tDVFS to scale down frequency only when temperature
// is above a threshold." Both techniques are driven from the same sensor
// stream, are filled from the same thermal control array machinery, and take
// one shared policy parameter Pp — a small Pp makes the *fan* aggressive,
// which keeps temperature below the tDVFS threshold longer and defers the
// in-band (performance-costly) response; a large Pp conserves fan power and
// lets tDVFS fire earlier. That interplay is exactly Fig. 10.
#pragma once

#include <optional>

#include "common/sim_time.hpp"
#include "core/fan_policy.hpp"
#include "core/idle_injection.hpp"
#include "core/policy.hpp"
#include "core/tdvfs.hpp"

namespace thermctl::core {

struct UnifiedConfig {
  PolicyParam pp{};
  FanControlConfig fan{};
  TdvfsConfig tdvfs{};
  /// Optional third technique (sleep-state / idle-injection backstop).
  /// Requires the clamp-aware constructor; its threshold should sit above
  /// tdvfs.threshold so it only engages when DVFS alone is losing.
  bool enable_idle_injection = false;
  IdleInjectionConfig idle{};
  /// Shared fault-awareness knob, harmonized into both sub-controllers the
  /// same way Pp is: each keeps its own SensorHealthMonitor (they classify
  /// the same stream but degrade differently — fan fails safe to maximum
  /// cooling, tDVFS holds). The idle-injection backstop is not gated; it is
  /// already the defence of last resort.
  bool fault_aware = false;
  SensorHealthConfig health{};
};

class UnifiedController {
 public:
  /// Both sub-controllers act on the same node through its sysfs planes.
  UnifiedController(sysfs::HwmonDevice& hwmon, sysfs::CpufreqPolicy& cpufreq,
                    UnifiedConfig config);

  /// Three-technique variant: fan + DVFS + idle-injection backstop (enabled
  /// via config.enable_idle_injection).
  UnifiedController(sysfs::HwmonDevice& hwmon, sysfs::CpufreqPolicy& cpufreq,
                    sysfs::PowerClampDevice& clamp, UnifiedConfig config);

  /// One controller tick at the sensor sampling rate. The out-of-band
  /// technique runs first (it is free), then the in-band one.
  void on_sample(SimTime now);

  /// on_sample with the shared hwmon reading supplied by the caller (the
  /// ControlBank batches the sensor reads across a fleet). `reading` must
  /// equal what hwmon.read_temperature() would return at this tick; both
  /// sub-controllers then behave byte-for-byte the same. The idle-injection
  /// backstop keeps its own read path (it samples independently).
  void on_sample_with(SimTime now, Celsius reading);

  /// Applies one Pp to both techniques (the paper's single-knob contract).
  void set_policy(PolicyParam pp);

  [[nodiscard]] DynamicFanController& fan() { return fan_; }
  [[nodiscard]] const DynamicFanController& fan() const { return fan_; }
  [[nodiscard]] TdvfsDaemon& dvfs() { return dvfs_; }
  [[nodiscard]] const TdvfsDaemon& dvfs() const { return dvfs_; }
  [[nodiscard]] bool has_idle_injection() const { return idle_.has_value(); }
  [[nodiscard]] IdleInjectionController& idle_injection() { return *idle_; }
  [[nodiscard]] const IdleInjectionController& idle_injection() const { return *idle_; }

  /// Time of the first in-band (DVFS) intervention, if any — the "trigger
  /// time" Fig. 10 compares across Pp.
  [[nodiscard]] double first_dvfs_trigger_s() const;

  /// Attaches one decision-trace ring to both sub-controllers (nullptr
  /// detaches): their events interleave on the node's single timeline,
  /// distinguished by subsystem.
  void set_trace(obs::TraceRing* trace) {
    fan_.set_trace(trace);
    dvfs_.set_trace(trace);
  }

 private:
  static UnifiedConfig harmonize(UnifiedConfig config);

  DynamicFanController fan_;
  TdvfsDaemon dvfs_;
  std::optional<IdleInjectionController> idle_;
};

}  // namespace thermctl::core
