// Thermal load migration — the in-band technique family of the paper's
// related work (Powell's heat-and-run, Heath's Mercury/Freon, Mukherjee's
// datacenter placement), integrated with this framework's out-of-band plane:
// the balancer reads every node's temperature over IPMI (it runs on a
// management host, not on the compute nodes) and moves ranks from hot nodes
// to idle spares.
//
// Migration is strong medicine: the moved rank stalls for the
// checkpoint/transfer time and, through barriers, the whole job waits. The
// balancer therefore acts only on sustained imbalance and honours a cooldown
// between moves.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "common/sim_time.hpp"
#include "common/units.hpp"

namespace thermctl::core {

struct LoadBalancerConfig {
  /// Act when (hottest hosting node) − (coolest free node) exceeds this.
  CelsiusDelta imbalance_threshold{6.0};
  /// ...and only when the hot node is genuinely hot. A busy node is always
  /// warmer than an idle spare; migration is for *abnormal* heat (failing
  /// fan, hot pocket), not for chasing the load-vs-idle equilibrium.
  Celsius min_hot_temp{55.0};
  /// Consecutive evaluations the imbalance must persist.
  int consistency_evals = 3;
  /// Checkpoint + transfer stall charged to the migrated rank.
  Seconds migration_cost{4.0};
  /// Minimum simulated time between migrations.
  Seconds cooldown{30.0};
  /// BMC sensor number carrying the CPU temperature (Node registers it as
  /// sensor 1).
  std::uint8_t temp_sensor = 1;
};

struct MigrationEvent {
  double time_s = 0.0;
  std::size_t rank = 0;
  std::size_t from_node = 0;
  std::size_t to_node = 0;
  double hot_temp = 0.0;
  double cool_temp = 0.0;
};

class ThermalLoadBalancer {
 public:
  ThermalLoadBalancer(cluster::Cluster& cluster, cluster::Engine& engine,
                      LoadBalancerConfig config = {});

  /// Balancer tick (management-host cadence, e.g. every 5 s).
  void on_tick(SimTime now);

  [[nodiscard]] const std::vector<MigrationEvent>& events() const { return events_; }

 private:
  cluster::Cluster& cluster_;
  cluster::Engine& engine_;
  LoadBalancerConfig config_;
  int consecutive_ = 0;
  double last_migration_s_ = -1e9;
  std::vector<MigrationEvent> events_;
};

}  // namespace thermctl::core
