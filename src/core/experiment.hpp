// Experiment harness.
//
// One declarative config describing a paper experiment — cluster size,
// workload, fan policy, DVFS policy, Pp, fan ceiling — and a runner that
// builds the full stack (cluster → sysfs planes → controllers → engine),
// executes it, and returns the recorded result plus controller event logs.
// Every bench, example and integration test goes through this entry point,
// so experiment definitions stay single-sourced.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/coordinator/coordinator.hpp"
#include "cluster/engine.hpp"
#include "cluster/metrics.hpp"
#include "cluster/room.hpp"
#include "core/cpuspeed.hpp"
#include "core/fan_policy.hpp"
#include "core/policy.hpp"
#include "core/tdvfs.hpp"
#include "core/unified_controller.hpp"
#include "obs/alerts.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/openmetrics.hpp"
#include "obs/rollup.hpp"
#include "obs/spill.hpp"
#include "obs/trace.hpp"
#include "workload/npb.hpp"
#include "workload/synthetic.hpp"

namespace thermctl::core {

enum class FanPolicyKind {
  kChipDefault,   // leave the chip's power-on automatic mode alone
  kStaticCurve,   // the traditional Fig. 1 policy (baseline)
  kConstantDuty,  // pinned duty (baseline)
  kDynamic,       // the paper's history-based controller
};

enum class DvfsPolicyKind {
  kNone,
  kTdvfs,
  kCpuspeed,
};

/// Rig state layout — see ExperimentConfig::control_layout.
enum class ControlLayout {
  kBatched,  // FleetState SoA + FleetSweep + ControlBank family ticks
  kPerNode,  // per-node objects, one periodic per controller (reference)
};

enum class WorkloadKind {
  kIdle,
  kCpuBurn,        // §4.2 stressor, one sustained instance
  kCpuBurnCycles,  // three back-to-back cpu-burn instances with gaps between
                   // them (§4.2 runs "three instances"; the inter-instance
                   // dips are visible in Fig. 5's temperature traces)
  kNpbBt,          // BT class B
  kNpbLu,          // LU class B
  kFig2Profile,    // the sudden/gradual/jitter composite
};

/// One scheduled fault episode on one node (half-open interval, sim time).
struct FaultEpisode {
  enum class Kind : std::uint8_t {
    kSensorStuck,  // thermal sensor freezes at its last conversion
    kBusFault,     // i2c transfers fail electrically
  };
  Kind kind{};
  Seconds start{0.0};
  Seconds end{0.0};
};

/// Randomized fault campaign: every node gets a seeded, reproducible
/// schedule of sensor-stuck and bus-fault episodes. Pairs with
/// `ExperimentConfig::fault_aware` to exercise the degradation paths; with
/// it off, the same campaign shows what the blind controller does instead.
struct FaultCampaignConfig {
  bool enabled = false;
  std::uint64_t seed = 1;
  int episodes_per_node = 2;
  /// No episode starts before this (lets the controllers reach steady state).
  Seconds start_after{20.0};
  Seconds min_duration{10.0};
  Seconds max_duration{30.0};
  /// Probability an episode is kSensorStuck (the rest are kBusFault).
  double sensor_stuck_weight = 0.5;
};

/// The deterministic schedule for `node` (sorted by start time). Exposed so
/// tests can assert exactly which faults a run saw.
[[nodiscard]] std::vector<FaultEpisode> make_fault_schedule(const FaultCampaignConfig& cfg,
                                                            std::size_t node, Seconds horizon);

/// Cluster-wide controller-side fault counters (sums over all nodes).
struct ControllerFaultStats {
  std::uint64_t failsafe_entries = 0;      // fan fail-safe cooling entries
  std::uint64_t failsafe_exits = 0;        // ... and recoveries out of it
  std::uint64_t dvfs_hold_entries = 0;     // tDVFS frequency-hold entries
  std::uint64_t dvfs_held_ticks = 0;       // ticks spent holding
  std::uint64_t sensor_rejected = 0;       // readings rejected by the monitors
  std::uint64_t sensor_stuck_detections = 0;
  std::uint64_t sensor_failures = 0;       // confirmed-failure entries
  std::uint64_t sensor_recoveries = 0;
};

/// Hierarchical rack/room control plane riding above the per-node
/// controllers (node agent → rack coordinator → room coordinator). Off by
/// default — the paper's flat per-node loops run exactly as before. With
/// `room_enabled` a RoomModel is built, settled at the cluster's idle wall
/// draw and attached to the engine, closing the datacenter ambient loop the
/// room coordinator budgets against.
struct PlaneHarnessConfig {
  bool enabled = false;
  cluster::ctrl::PlaneConfig plane{};
  bool room_enabled = false;
  cluster::RoomParams room{};
};

/// Run telemetry switches. Everything defaults off; a disabled run pays one
/// untaken branch per decision site and is bit-identical to a build without
/// any of this wired in. The live pipeline below (spill / rollup / alerts /
/// exposition) is pure observation on the engine thread's serial phases: the
/// oracle's kLiveTelemetryOnVsOff pairing asserts an enabled run stays
/// bit-identical on every behavioural axis.
struct TelemetryConfig {
  /// Record controller decisions into per-node trace rings; the result then
  /// carries a RunTrace for export (.thermtrace / Chrome JSON) and analysis.
  bool trace = false;
  /// Events retained per node (oldest overwritten beyond this).
  std::size_t trace_ring_capacity = 1u << 14;
  /// Count engine/controller activity into a metrics registry; the result
  /// then carries a merged MetricsSnapshot.
  bool metrics = false;

  /// Stream ring contents into a SpillSink during the run (requires trace).
  /// With a drain period short enough for the ring capacity, a run whose
  /// rings would wrap loses nothing — drops surface in SpillStats instead.
  bool spill = false;
  obs::SpillConfig spill_cfg{};
  /// Spill destination: an externally owned sink takes precedence; else a
  /// .thermtrace file is created at spill_path. One must be set when
  /// spill is on.
  obs::SpillSink* spill_sink = nullptr;
  std::string spill_path;

  /// Online per-rack/fleet aggregation on a sim-time cadence. When the
  /// control plane is enabled and rollup.nodes_per_rack is 0, rack geometry
  /// is inherited from the plane config.
  obs::RollupConfig rollup{};

  /// Watchdog threshold rules evaluated after every rollup sample (requires
  /// rollup.enabled). Fires land on the fleet trace lane (ring 0, when
  /// tracing) and in the run summary's alerts section.
  std::vector<obs::AlertRule> alerts;

  /// Mid-run OpenMetrics exposition sink (not owned), called every
  /// `live_every` rollup intervals (requires rollup.enabled).
  obs::LiveTelemetrySink* live_sink = nullptr;
  std::uint32_t live_every = 1;
};

/// Read-only view of a fully built rig, handed to `on_rig_built` observers
/// after the controllers are wired but before the engine runs. Observers may
/// register additional periodic engine tasks (they fire after the node
/// sampling and after every controller registered before them).
/// *Verification* observers must not actuate anything — their contract is
/// that an observed run is bit-identical to an unobserved one. Scenario
/// drivers (benches scripting mid-run plane events through `plane`) actuate
/// on purpose and give up that guarantee.
struct RigView {
  cluster::Cluster* cluster = nullptr;
  cluster::Engine* engine = nullptr;
  std::vector<DynamicFanController*> fans;    // empty unless fan == kDynamic
  std::vector<TdvfsDaemon*> tdvfs;            // empty unless dvfs == kTdvfs
  cluster::ctrl::ControlPlane* plane = nullptr;  // null unless plane enabled
  // Live-telemetry handles (null unless the corresponding TelemetryConfig
  // switch is on). thermctld serves these over its socket; observers may
  // read them from the engine thread only.
  obs::FleetRollup* rollup = nullptr;
  obs::AlertWatchdog* watchdog = nullptr;
  obs::TraceSpiller* spiller = nullptr;
  const struct ExperimentConfig* config = nullptr;
};

/// Hot policy re-tune across a built rig: applies `pp` directly to every
/// dynamic fan controller and tDVFS daemon (taking effect at their next
/// sample, i.e. well inside one L2 window) and, when an active control plane
/// is attached, also broadcasts it down the hierarchy so late joiners and
/// plane bookkeeping converge on the same Pp. This is thermctld's
/// `set-policy` path; engine-thread only, like the controllers themselves.
void retune_policy(const RigView& rig, PolicyParam pp);

struct ExperimentConfig {
  std::string name = "experiment";
  std::size_t nodes = 4;
  WorkloadKind workload = WorkloadKind::kNpbBt;
  Seconds cpu_burn_duration{300.0};  // "each run lasts about five minutes"
  /// Overrides the NPB iteration count (0 = benchmark default); lets tests
  /// run miniature BT/LU instances.
  int npb_iterations_override = 0;

  FanPolicyKind fan = FanPolicyKind::kDynamic;
  DvfsPolicyKind dvfs = DvfsPolicyKind::kNone;

  PolicyParam pp{};
  /// Fan ceiling — emulates less powerful fans (Figs. 6–10, Table 1).
  DutyCycle max_duty{100.0};
  /// Duty for kConstantDuty.
  DutyCycle constant_duty{75.0};

  TdvfsConfig tdvfs{};
  CpuspeedConfig cpuspeed{};
  FanControlConfig fan_cfg{};

  cluster::NodeParams node_params{};
  cluster::EngineConfig engine{};
  std::uint64_t seed = 20260708;

  /// How the rig lays out per-node simulation and control state.
  ///
  ///  * kBatched (default): nodes share FleetState SoA arrays swept by the
  ///    FleetSweep fast path, and the dynamic fan / tDVFS controllers live in
  ///    a ControlBank ticked by ONE periodic per family (batched sensor
  ///    latch, contiguous window state).
  ///  * kPerNode: the historical reference — per-node-object cluster, one
  ///    heap controller and one periodic per node, every sensor read a
  ///    VirtualFs round trip.
  ///
  /// The two are bit-identical by contract; the differential oracle's
  /// kBatchedVsPerNodeControl pairing enforces it across the corpus.
  ControlLayout control_layout = ControlLayout::kBatched;

  /// Phase wheel (requires kBatched): staggers each node's first window
  /// round by (node mod level1_size) samples so window closes — the
  /// expensive part of a controller tick — spread round-robin across engine
  /// steps instead of all landing on the same tick. NOT bit-identical to
  /// synchronized windows; off by default and excluded from the oracle's
  /// default corpus.
  bool control_phase_wheel = false;

  /// Sensor-health gating for the dynamic fan and tDVFS controllers (one
  /// knob for both, like Pp). Off by default: zero-fault runs are
  /// bit-identical with it on or off, but the default keeps the paper's
  /// blind-controller behaviour exact under injected faults too.
  bool fault_aware = false;
  SensorHealthConfig health{};
  FaultCampaignConfig faults{};

  PlaneHarnessConfig control_plane{};

  TelemetryConfig telemetry{};

  /// Observer called once per run with the built rig (see RigView). Null by
  /// default; the verification layer uses this to arm invariant checking on
  /// any experiment without core depending on it.
  std::function<void(const RigView&)> on_rig_built;
};

struct ExperimentResult {
  cluster::RunResult run;
  /// Per-node tDVFS event logs (empty unless tDVFS ran on that node).
  std::vector<std::vector<TdvfsEvent>> tdvfs_events;
  /// Per-node dynamic-fan retarget logs.
  std::vector<std::vector<FanEvent>> fan_events;
  /// First DVFS intervention time across the cluster (-1 if none).
  double first_dvfs_trigger_s = -1.0;
  /// Controller-side fault counters (all zero unless fault_aware was set).
  ControllerFaultStats fault_stats;
  /// The fault schedule each node actually ran (empty when no campaign).
  std::vector<std::vector<FaultEpisode>> fault_schedules;
  /// Control-plane counters (all zero unless the plane was enabled). Like
  /// telemetry payloads, these are plane bookkeeping, not node behaviour —
  /// the differential oracle does not diff them.
  cluster::ctrl::PlaneStats plane_stats;
  /// Decision trace (null unless telemetry.trace). Shared so results can be
  /// copied around by sweeps without duplicating event buffers.
  std::shared_ptr<obs::RunTrace> trace;
  /// Merged run telemetry (empty unless telemetry.metrics).
  obs::MetricsSnapshot metrics;
  /// Fleet/rack rollup series (null unless telemetry.rollup.enabled). Shared
  /// for the same reason as `trace`.
  std::shared_ptr<obs::FleetRollup> rollup;
  /// Watchdog rules and the alert episodes they produced (empty unless
  /// telemetry.alerts were configured).
  std::vector<obs::AlertRule> alert_rules;
  std::vector<obs::AlertEvent> alerts;
  /// Spiller accounting (set only when telemetry.spill; includes the
  /// finishing drain).
  std::optional<obs::SpillStats> spill;
};

/// Builds, runs and tears down one experiment.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// The paper's platform defaults: 4-node power-aware cluster, Athlon64-class
/// CPUs, 4300 RPM fans, 4 Hz sampling, tDVFS threshold 51 °C.
[[nodiscard]] ExperimentConfig paper_platform();

}  // namespace thermctl::core
