// Experiment harness.
//
// One declarative config describing a paper experiment — cluster size,
// workload, fan policy, DVFS policy, Pp, fan ceiling — and a runner that
// builds the full stack (cluster → sysfs planes → controllers → engine),
// executes it, and returns the recorded result plus controller event logs.
// Every bench, example and integration test goes through this entry point,
// so experiment definitions stay single-sourced.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/engine.hpp"
#include "cluster/metrics.hpp"
#include "core/cpuspeed.hpp"
#include "core/fan_policy.hpp"
#include "core/policy.hpp"
#include "core/tdvfs.hpp"
#include "core/unified_controller.hpp"
#include "workload/npb.hpp"
#include "workload/synthetic.hpp"

namespace thermctl::core {

enum class FanPolicyKind {
  kChipDefault,   // leave the chip's power-on automatic mode alone
  kStaticCurve,   // the traditional Fig. 1 policy (baseline)
  kConstantDuty,  // pinned duty (baseline)
  kDynamic,       // the paper's history-based controller
};

enum class DvfsPolicyKind {
  kNone,
  kTdvfs,
  kCpuspeed,
};

enum class WorkloadKind {
  kIdle,
  kCpuBurn,        // §4.2 stressor, one sustained instance
  kCpuBurnCycles,  // three back-to-back cpu-burn instances with gaps between
                   // them (§4.2 runs "three instances"; the inter-instance
                   // dips are visible in Fig. 5's temperature traces)
  kNpbBt,          // BT class B
  kNpbLu,          // LU class B
  kFig2Profile,    // the sudden/gradual/jitter composite
};

struct ExperimentConfig {
  std::string name = "experiment";
  std::size_t nodes = 4;
  WorkloadKind workload = WorkloadKind::kNpbBt;
  Seconds cpu_burn_duration{300.0};  // "each run lasts about five minutes"
  /// Overrides the NPB iteration count (0 = benchmark default); lets tests
  /// run miniature BT/LU instances.
  int npb_iterations_override = 0;

  FanPolicyKind fan = FanPolicyKind::kDynamic;
  DvfsPolicyKind dvfs = DvfsPolicyKind::kNone;

  PolicyParam pp{};
  /// Fan ceiling — emulates less powerful fans (Figs. 6–10, Table 1).
  DutyCycle max_duty{100.0};
  /// Duty for kConstantDuty.
  DutyCycle constant_duty{75.0};

  TdvfsConfig tdvfs{};
  CpuspeedConfig cpuspeed{};
  FanControlConfig fan_cfg{};

  cluster::NodeParams node_params{};
  cluster::EngineConfig engine{};
  std::uint64_t seed = 20260708;
};

struct ExperimentResult {
  cluster::RunResult run;
  /// Per-node tDVFS event logs (empty unless tDVFS ran on that node).
  std::vector<std::vector<TdvfsEvent>> tdvfs_events;
  /// Per-node dynamic-fan retarget logs.
  std::vector<std::vector<FanEvent>> fan_events;
  /// First DVFS intervention time across the cluster (-1 if none).
  double first_dvfs_trigger_s = -1.0;
};

/// Builds, runs and tears down one experiment.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// The paper's platform defaults: 4-node power-aware cluster, Athlon64-class
/// CPUs, 4300 RPM fans, 4 Hz sampling, tDVFS threshold 51 °C.
[[nodiscard]] ExperimentConfig paper_platform();

}  // namespace thermctl::core
