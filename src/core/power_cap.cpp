#include "core/power_cap.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace thermctl::core {

PowerCapper::PowerCapper(sysfs::RaplDomain& rapl, sysfs::CpufreqPolicy& cpufreq,
                         PowerCapConfig config)
    : rapl_(rapl), cpufreq_(cpufreq), config_(config) {
  THERMCTL_ASSERT(config_.budget.value() > 0.0, "budget must be positive");
  THERMCTL_ASSERT(config_.margin.value() >= 0.0, "margin must be non-negative");
  THERMCTL_ASSERT(config_.interval.value() > 0.0, "interval must be positive");
}

void PowerCapper::on_interval(SimTime now) {
  const std::uint64_t energy = rapl_.energy_uj();
  if (!primed_) {
    last_energy_uj_ = energy;
    last_time_ = now;
    primed_ = true;
    return;
  }
  const double span = (now - last_time_).value();
  if (span <= 0.0) {
    return;
  }
  // Wrap-correct delta: the RAPL counter rolls over at max_energy_range_uj,
  // and a raw subtraction across the wrap would read as a colossal power
  // spike and throttle the CPU for nothing.
  const std::uint64_t delta_uj =
      sysfs::RaplDomain::energy_delta_uj(last_energy_uj_, energy, rapl_.max_energy_range_uj());
  last_power_w_ = static_cast<double>(delta_uj) * 1e-6 / span;
  last_energy_uj_ = energy;
  last_time_ = now;

  if (last_power_w_ > config_.budget.value()) {
    overshoot_s_ += span;
  }

  const std::vector<double> ladder = cpufreq_.available_ghz();  // descending
  const long cur = cpufreq_.cur_khz();
  auto index_of = [&ladder](long khz) {
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      if (sysfs::CpufreqPolicy::to_khz(GigaHertz{ladder[i]}) == khz) {
        return static_cast<long>(i);
      }
    }
    return 0L;
  };
  const long idx = index_of(cur);

  if (last_power_w_ > config_.budget.value() &&
      idx + 1 < static_cast<long>(ladder.size())) {
    cpufreq_.set_khz(
        sysfs::CpufreqPolicy::to_khz(GigaHertz{ladder[static_cast<std::size_t>(idx + 1)]}));
    THERMCTL_LOG_DEBUG("powercap", "%.1f W over %.1f W budget: stepping down", last_power_w_,
                       config_.budget.value());
  } else if (last_power_w_ < config_.budget.value() - config_.margin.value() && idx > 0) {
    // Predictive step-up: estimate power at the next faster state with the
    // cubic frequency law (voltage scales with frequency — the paper's own
    // "scaling down DVFS processor frequency cubically reduces power"), and
    // only step if the estimate still fits the budget. Without this the
    // capper ping-pongs whenever the budget falls between two ladder powers.
    const double f_cur = ladder[static_cast<std::size_t>(idx)];
    const double f_up = ladder[static_cast<std::size_t>(idx - 1)];
    const double ratio = (f_up / f_cur) * (f_up / f_cur) * (f_up / f_cur);
    if (last_power_w_ * ratio <= config_.budget.value() - 1.0) {
      cpufreq_.set_khz(
          sysfs::CpufreqPolicy::to_khz(GigaHertz{ladder[static_cast<std::size_t>(idx - 1)]}));
    }
  }
}

}  // namespace thermctl::core
