#include "core/load_balancer.hpp"

#include "common/log.hpp"
#include "sysfs/ipmi.hpp"

namespace thermctl::core {

ThermalLoadBalancer::ThermalLoadBalancer(cluster::Cluster& cluster, cluster::Engine& engine,
                                         LoadBalancerConfig config)
    : cluster_(cluster), engine_(engine), config_(config) {}

void ThermalLoadBalancer::on_tick(SimTime now) {
  if (now.seconds() - last_migration_s_ < config_.cooldown.value()) {
    return;
  }

  // Survey the rack over the out-of-band plane.
  double hot_temp = -1e9;
  double cool_temp = 1e9;
  std::size_t hot_node = 0;
  std::size_t cool_node = 0;
  std::size_t hot_rank = 0;
  bool have_hot = false;
  bool have_cool = false;
  for (int id : cluster_.ipmi().nodes()) {
    sysfs::SensorReading reading;
    if (cluster_.ipmi().get_sensor_reading(id, config_.temp_sensor, reading) !=
        sysfs::IpmiCompletion::kOk) {
      continue;  // unreachable BMC: skip, don't stall the survey
    }
    const auto node_index = static_cast<std::size_t>(id);
    const auto rank = engine_.rank_on_node(node_index);
    if (rank.has_value()) {
      if (reading.value > hot_temp) {
        hot_temp = reading.value;
        hot_node = node_index;
        hot_rank = *rank;
        have_hot = true;
      }
    } else if (!cluster_.node(node_index).halted()) {
      if (reading.value < cool_temp) {
        cool_temp = reading.value;
        cool_node = node_index;
        have_cool = true;
      }
    }
  }

  if (!have_hot || !have_cool || hot_temp < config_.min_hot_temp.value() ||
      hot_temp - cool_temp < config_.imbalance_threshold.value()) {
    consecutive_ = 0;
    return;
  }
  if (++consecutive_ < config_.consistency_evals) {
    return;
  }
  consecutive_ = 0;

  if (engine_.migrate_rank(hot_rank, cool_node, config_.migration_cost)) {
    last_migration_s_ = now.seconds();
    events_.push_back(
        MigrationEvent{now.seconds(), hot_rank, hot_node, cool_node, hot_temp, cool_temp});
    THERMCTL_LOG_INFO("balancer", "t=%.1fs migrated rank %zu: node %zu (%.1f C) -> %zu (%.1f C)",
                      now.seconds(), hot_rank, hot_node, hot_temp, cool_node, cool_temp);
  }
}

}  // namespace thermctl::core
