// Fan-speed control policies (§4.2).
//
// Three policies from the paper's evaluation:
//
//  * DynamicFanController — the contribution: history-based, context-aware
//    PWM control through the two-level window + thermal control array. Duty
//    modes are the integers 1..max% (the paper discretizes the continuous
//    fan speed into 100 distinct speeds); effectiveness ascends with duty.
//
//  * StaticFanPolicy — the "traditional" baseline: the ADT7467's automatic
//    curve (Fig. 1), PWMmin=10% below Tmin=38 °C rising linearly to 100% at
//    Tmax=82 °C, optionally capped at a maximum duty.
//
//  * ConstantFanPolicy — fixed duty (the paper uses 75%), the
//    coolest-but-most-power reference in Fig. 6.
//
// All three actuate through the sysfs/hwmon + i2c driver path, never by
// touching the FanDevice directly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "core/control_array.hpp"
#include "core/mode_selector.hpp"
#include "core/policy.hpp"
#include "core/sensor_health.hpp"
#include "core/two_level_window.hpp"
#include "obs/trace.hpp"
#include "sysfs/adt7467_driver.hpp"
#include "sysfs/hwmon.hpp"

namespace thermctl::core {

struct FanControlConfig {
  PolicyParam pp{};
  /// Thermal control array bound N (the paper's 100 distinct speeds).
  std::size_t array_size = 100;
  /// Physical duty range; max_duty emulates less powerful fans (Fig. 7).
  DutyCycle min_duty{1.0};
  DutyCycle max_duty{100.0};
  ModeSelectorConfig selector{};
  WindowConfig window{};
  /// Gate readings through a SensorHealthMonitor and fail safe (escalate to
  /// the array's most effective mode) on confirmed sensor failure. Off by
  /// default: the paper's controller trusts its sensor, and zero-fault runs
  /// must behave identically either way.
  bool fault_aware = false;
  SensorHealthConfig health{};
};

/// One controller retarget, for figure annotations and tests.
struct FanEvent {
  double time_s = 0.0;
  double from_duty = 0.0;
  double to_duty = 0.0;
  bool used_level2 = false;
};

class DynamicFanController {
 public:
  DynamicFanController(sysfs::HwmonDevice& hwmon, FanControlConfig config);

  /// Controller tick: consume the latest sensor sample; on a completed
  /// window round, maybe retarget the fan.
  void on_sample(SimTime now);

  /// on_sample with the reading supplied by the caller — the ControlBank
  /// batches the hwmon reads across a fleet and feeds each controller its
  /// own node's value. `reading` must equal what hwmon.read_temperature()
  /// would return at this tick; the tick logic is byte-for-byte the same.
  void on_sample_with(SimTime now, Celsius reading);

  [[nodiscard]] std::size_t current_index() const { return index_; }
  [[nodiscard]] DutyCycle current_duty() const;
  [[nodiscard]] const ThermalControlArray& array() const { return array_; }
  [[nodiscard]] const std::vector<FanEvent>& events() const { return events_; }
  [[nodiscard]] std::uint64_t retarget_count() const { return retargets_; }

  /// Fail-safe cooling state (only ever true when `fault_aware` is set).
  [[nodiscard]] bool in_failsafe() const { return failsafe_; }
  [[nodiscard]] std::uint64_t failsafe_entries() const { return failsafe_entries_; }
  [[nodiscard]] std::uint64_t failsafe_exits() const { return failsafe_exits_; }
  /// The gating monitor, or nullptr when not fault-aware.
  [[nodiscard]] const SensorHealthMonitor* health() const {
    return health_.has_value() ? &*health_ : nullptr;
  }

  /// Re-tunes the policy parameter at runtime.
  void set_policy(PolicyParam pp);

  /// Attaches a decision-trace ring (nullptr detaches). Every window round,
  /// selector decision, PWM retarget, sensor classification, and fail-safe
  /// transition is then recorded; control behaviour is unchanged.
  void set_trace(obs::TraceRing* trace) { trace_ = trace; }

  /// The sampling window, mutable so a ControlBank can rebind its storage
  /// into bank-owned SoA arrays (and a phase wheel can stagger it).
  [[nodiscard]] TwoLevelWindow& window() { return window_; }

 private:
  static std::vector<double> duty_modes(const FanControlConfig& config);

  sysfs::HwmonDevice& hwmon_;
  FanControlConfig config_;
  ThermalControlArray array_;
  ModeSelector selector_;
  TwoLevelWindow window_;
  std::size_t index_ = 0;
  bool initialized_ = false;
  std::vector<FanEvent> events_;
  std::uint64_t retargets_ = 0;
  std::optional<SensorHealthMonitor> health_;
  bool failsafe_ = false;
  bool failsafe_applied_ = false;  // fail-safe duty reached the chip
  std::uint64_t failsafe_entries_ = 0;
  std::uint64_t failsafe_exits_ = 0;
  obs::TraceRing* trace_ = nullptr;
  bool last_sample_ok_ = true;  // edge detector for sensor-classification events
};

/// Applies the traditional static policy: programs the Fig. 1 curve into the
/// chip and hands PWM control to its automatic mode.
class StaticFanPolicy {
 public:
  struct Curve {
    DutyCycle pwm_min{10.0};
    Celsius tmin{38.0};
    Celsius tmax{82.0};
  };

  StaticFanPolicy(sysfs::Adt7467Driver& driver, Curve curve, DutyCycle max_duty);

  /// Writes the configuration; returns false on an i2c failure.
  bool apply();

  [[nodiscard]] const Curve& curve() const { return curve_; }

 private:
  sysfs::Adt7467Driver& driver_;
  Curve curve_;
  DutyCycle max_duty_;
};

/// Pins the fan at a fixed duty through the manual-mode path.
class ConstantFanPolicy {
 public:
  ConstantFanPolicy(sysfs::HwmonDevice& hwmon, DutyCycle duty);
  bool apply();

 private:
  sysfs::HwmonDevice& hwmon_;
  DutyCycle duty_;
};

}  // namespace thermctl::core
