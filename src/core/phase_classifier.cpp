#include "core/phase_classifier.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace thermctl::core {

std::string_view to_string(ThermalBehaviour b) {
  switch (b) {
    case ThermalBehaviour::kStable:
      return "stable";
    case ThermalBehaviour::kSudden:
      return "sudden";
    case ThermalBehaviour::kGradual:
      return "gradual";
    case ThermalBehaviour::kJitter:
      return "jitter";
  }
  return "?";
}

PhaseClassifier::PhaseClassifier(ClassifierConfig config)
    : config_(config), samples_(std::max<std::size_t>(config.window, 8)) {}

void PhaseClassifier::add_sample(Celsius t) { samples_.push(t.value()); }

void PhaseClassifier::reset() { samples_.clear(); }

ClassifierReport PhaseClassifier::classify() const {
  ClassifierReport report;
  const std::size_t n = samples_.size();
  if (n < 8) {
    return report;
  }

  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = samples_.at(i);
  }

  // Least-squares trend in °C/s.
  report.trend_c_per_s = slope(xs, config_.sample_dt_s);

  // Detrended peak-to-peak swing.
  double min_r = 1e30;
  double max_r = -1e30;
  const double mean_x = static_cast<double>(n - 1) / 2.0;
  double mean_y = 0.0;
  for (double v : xs) {
    mean_y += v;
  }
  mean_y /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double fitted =
        mean_y + report.trend_c_per_s * config_.sample_dt_s * (static_cast<double>(i) - mean_x);
    const double r = xs[i] - fitted;
    min_r = std::min(min_r, r);
    max_r = std::max(max_r, r);
  }
  report.swing_c = max_r - min_r;

  // Derivative sign reversals per sample (jitter signature).
  std::size_t reversals = 0;
  std::size_t moves = 0;
  double prev_sign = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double d = xs[i] - xs[i - 1];
    if (std::abs(d) < 1e-9) {
      continue;
    }
    const double sign = d > 0.0 ? 1.0 : -1.0;
    if (prev_sign != 0.0 && sign != prev_sign) {
      ++reversals;
    }
    prev_sign = sign;
    ++moves;
  }
  report.reversal_rate =
      moves > 1 ? static_cast<double>(reversals) / static_cast<double>(moves - 1) : 0.0;

  const double rate = std::abs(report.trend_c_per_s);
  const double window_span_s = static_cast<double>(n - 1) * config_.sample_dt_s;
  // Jitter is judged before "gradual": a large oscillation dominates a small
  // residual trend (the trend's total contribution over the window must be
  // smaller than the swing itself, or the trend is the real story).
  const bool oscillation_dominates =
      report.swing_c >= config_.jitter_swing && report.reversal_rate >= 0.25 &&
      rate * window_span_s < report.swing_c;
  if (rate >= config_.sudden_rate) {
    report.behaviour = ThermalBehaviour::kSudden;
  } else if (oscillation_dominates) {
    report.behaviour = ThermalBehaviour::kJitter;
  } else if (rate >= config_.gradual_rate) {
    report.behaviour = ThermalBehaviour::kGradual;
  } else {
    report.behaviour = ThermalBehaviour::kStable;
  }
  return report;
}

}  // namespace thermctl::core
