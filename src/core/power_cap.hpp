// Server power capping — Lefurgy et al.'s "server-level power control"
// (related work §2) on this stack: hold the node's package power at or
// below a budget by stepping DVFS, reading actual power from the RAPL
// energy counter.
//
// The loop is deliberately simple (it reproduces the cited controller's
// observable behaviour, not its internals): every interval compute average
// package power since the last interval; if above budget, step one P-state
// down; if comfortably below (budget − margin) and not at nominal, step one
// up. Transition counts stay low because the margin provides hysteresis.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "sysfs/cpufreq.hpp"
#include "sysfs/powercap.hpp"

namespace thermctl::core {

struct PowerCapConfig {
  /// Package (DC) power budget.
  Watts budget{45.0};
  /// Step back up only below budget − margin.
  Watts margin{6.0};
  /// Evaluation interval.
  Seconds interval{1.0};
};

class PowerCapper {
 public:
  PowerCapper(sysfs::RaplDomain& rapl, sysfs::CpufreqPolicy& cpufreq, PowerCapConfig config);

  /// Capper tick; call every `config().interval`.
  void on_interval(SimTime now);

  [[nodiscard]] double last_power_w() const { return last_power_w_; }
  [[nodiscard]] const PowerCapConfig& config() const { return config_; }
  /// Seconds the measured power exceeded the budget (capping error).
  [[nodiscard]] double overshoot_seconds() const { return overshoot_s_; }

 private:
  sysfs::RaplDomain& rapl_;
  sysfs::CpufreqPolicy& cpufreq_;
  PowerCapConfig config_;
  std::uint64_t last_energy_uj_ = 0;
  SimTime last_time_{};
  bool primed_ = false;
  double last_power_w_ = 0.0;
  double overshoot_s_ = 0.0;
};

}  // namespace thermctl::core
