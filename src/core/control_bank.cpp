#include "core/control_bank.hpp"

#include <cmath>

namespace thermctl::core {

ControlBank::ControlBank(std::size_t nodes, const double* sensor_last)
    : nodes_(nodes), sensor_last_(sensor_last), readings_(nodes, 0.0) {
  THERMCTL_ASSERT(nodes > 0, "bank needs at least one node");
  fans_.reserve(nodes);
  tdvfs_.reserve(nodes);
  unified_.reserve(nodes);
}

void ControlBank::bind_window(WindowPool& pool, std::size_t node, TwoLevelWindow& window) {
  const WindowConfig& cfg = window.config();
  if (!pool.sized) {
    pool.config = cfg;
    pool.level1.assign(nodes_ * cfg.level1_size, 0.0);
    pool.level2.assign(nodes_ * cfg.level2_size, 0.0);
    pool.fill.assign(nodes_, 0);
    pool.head.assign(nodes_, 0);
    pool.count.assign(nodes_, 0);
    pool.pooled.assign(nodes_, 0);
    pool.sized = true;
  }
  if (cfg.level1_size != pool.config.level1_size || cfg.level2_size != pool.config.level2_size) {
    // Heterogeneous geometry: this window keeps its inline storage.
    return;
  }
  WindowSlots slots;
  slots.level1 = pool.level1.data() + node * cfg.level1_size;
  slots.level2 = pool.level2.data() + node * cfg.level2_size;
  slots.level1_fill = pool.fill.data() + node;
  slots.level2_head = pool.head.data() + node;
  slots.level2_count = pool.count.data() + node;
  window.bind_state(slots);
  pool.pooled[node] = 1;
}

DynamicFanController& ControlBank::emplace_fan(std::size_t node, sysfs::HwmonDevice& hwmon,
                                               const FanControlConfig& config) {
  THERMCTL_ASSERT(node == fans_.size(), "emplace fans densely in node order");
  DynamicFanController& fan = fans_.emplace_back(hwmon, config);
  bind_window(fan_pool_, node, fan.window());
  return fan;
}

TdvfsDaemon& ControlBank::emplace_tdvfs(std::size_t node, sysfs::HwmonDevice& hwmon,
                                        sysfs::CpufreqPolicy& cpufreq,
                                        const TdvfsConfig& config) {
  THERMCTL_ASSERT(node == tdvfs_.size(), "emplace tdvfs densely in node order");
  TdvfsDaemon& daemon = tdvfs_.emplace_back(hwmon, cpufreq, config);
  bind_window(tdvfs_pool_, node, daemon.window());
  return daemon;
}

UnifiedController& ControlBank::emplace_unified(std::size_t node, sysfs::HwmonDevice& hwmon,
                                                sysfs::CpufreqPolicy& cpufreq,
                                                const UnifiedConfig& config) {
  THERMCTL_ASSERT(node == unified_.size(), "emplace unified densely in node order");
  UnifiedController& ctl = unified_.emplace_back(hwmon, cpufreq, config);
  bind_window(fan_pool_, node, ctl.fan().window());
  bind_window(tdvfs_pool_, node, ctl.dvfs().window());
  return ctl;
}

UnifiedController& ControlBank::emplace_unified(std::size_t node, sysfs::HwmonDevice& hwmon,
                                                sysfs::CpufreqPolicy& cpufreq,
                                                sysfs::PowerClampDevice& clamp,
                                                const UnifiedConfig& config) {
  THERMCTL_ASSERT(node == unified_.size(), "emplace unified densely in node order");
  UnifiedController& ctl = unified_.emplace_back(hwmon, cpufreq, clamp, config);
  bind_window(fan_pool_, node, ctl.fan().window());
  bind_window(tdvfs_pool_, node, ctl.dvfs().window());
  return ctl;
}

void ControlBank::tick_fans(SimTime now) {
  const std::size_t n = fans_.size();
  if (sensor_last_ == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      fans_[i].on_sample(now);
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Millidegree quantization exactly as the hwmon temp1_input attribute:
    // lround to long millidegrees, back to degrees.
    readings_[i] =
        static_cast<double>(std::lround(sensor_last_[i] * 1000.0)) / 1000.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    fans_[i].on_sample_with(now, Celsius{readings_[i]});
  }
}

void ControlBank::tick_tdvfs(SimTime now) {
  const std::size_t n = tdvfs_.size();
  if (sensor_last_ == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      tdvfs_[i].on_sample(now);
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    readings_[i] =
        static_cast<double>(std::lround(sensor_last_[i] * 1000.0)) / 1000.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    tdvfs_[i].on_sample_with(now, Celsius{readings_[i]});
  }
}

void ControlBank::tick_unified(SimTime now) {
  const std::size_t n = unified_.size();
  if (sensor_last_ == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      unified_[i].on_sample(now);
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    readings_[i] =
        static_cast<double>(std::lround(sensor_last_[i] * 1000.0)) / 1000.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    unified_[i].on_sample_with(now, Celsius{readings_[i]});
  }
}

void ControlBank::stagger_windows() {
  for (std::size_t i = 0; i < fans_.size(); ++i) {
    TwoLevelWindow& w = fans_[i].window();
    w.stagger(i % w.config().level1_size);
  }
  for (std::size_t i = 0; i < tdvfs_.size(); ++i) {
    TwoLevelWindow& w = tdvfs_[i].window();
    w.stagger(i % w.config().level1_size);
  }
  for (std::size_t i = 0; i < unified_.size(); ++i) {
    TwoLevelWindow& wf = unified_[i].fan().window();
    wf.stagger(i % wf.config().level1_size);
    TwoLevelWindow& wd = unified_[i].dvfs().window();
    wd.stagger(i % wd.config().level1_size);
  }
}

bool ControlBank::fan_window_pooled(std::size_t node) const {
  return fan_pool_.sized && node < fan_pool_.pooled.size() && fan_pool_.pooled[node] != 0;
}

bool ControlBank::tdvfs_window_pooled(std::size_t node) const {
  return tdvfs_pool_.sized && node < tdvfs_pool_.pooled.size() && tdvfs_pool_.pooled[node] != 0;
}

}  // namespace thermctl::core
