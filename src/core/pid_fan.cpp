#include "core/pid_fan.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace thermctl::core {

PidFanController::PidFanController(sysfs::HwmonDevice& hwmon, PidFanConfig config)
    : hwmon_(hwmon), config_(config) {
  THERMCTL_ASSERT(config_.period.value() > 0.0, "controller period must be positive");
  THERMCTL_ASSERT(config_.max_duty.percent() > config_.min_duty.percent(),
                  "duty range inverted");
}

void PidFanController::reset() {
  integral_ = 0.0;
  prev_error_ = 0.0;
  primed_ = false;
  // After a reset the hardware state is unknown: re-assert manual mode on
  // the next tick and force the next PWM write even if the computed target
  // matches the duty cached from before the reset.
  initialized_ = false;
  duty_known_ = false;
  duty_ = DutyCycle{0.0};
  actuations_ = 0;
}

void PidFanController::on_sample(SimTime now) {
  (void)now;
  if (!initialized_) {
    hwmon_.set_manual_mode();
    initialized_ = true;
  }

  const double dt = config_.period.value();
  const double error = hwmon_.read_temperature().value() - config_.setpoint.value();
  const double derivative = primed_ ? (error - prev_error_) / dt : 0.0;
  prev_error_ = error;
  primed_ = true;

  const double raw = config_.kp * error + config_.ki * integral_ + config_.kd * derivative;
  const double lo = config_.min_duty.percent();
  const double hi = config_.max_duty.percent();
  const double clamped = std::clamp(raw, lo, hi);

  // Conditional anti-windup: only integrate when not pushing further into
  // saturation.
  const bool saturated_high = raw >= hi && error > 0.0;
  const bool saturated_low = raw <= lo && error < 0.0;
  if (!saturated_high && !saturated_low) {
    integral_ += error * dt;
  }

  const DutyCycle target{clamped};
  if (!duty_known_ || std::abs(target.percent() - duty_.percent()) > 1e-9) {
    if (hwmon_.write_pwm(target)) {
      duty_ = target;
      duty_known_ = true;
      ++actuations_;
    }
  }
}

}  // namespace thermctl::core
