// Run reporting: turn an ExperimentResult into the summary a human reads.
//
// One place for the numbers every consumer prints (thermctld, examples,
// post-run analysis): per-node table, cluster aggregates, controller event
// timeline, and a compact verdict line. Pure formatting — all analysis stays
// in the metrics layer.
#pragma once

#include <string>

#include "core/experiment.hpp"

namespace thermctl::core {

struct ReportOptions {
  /// Include the per-node breakdown table.
  bool per_node = true;
  /// Include the merged controller event timeline (tDVFS + fan retargets).
  bool events = true;
  /// Cap on timeline rows (0 = unlimited).
  std::size_t max_events = 20;
};

/// Renders a human-readable report of an experiment run.
[[nodiscard]] std::string render_report(const ExperimentResult& result,
                                        const ReportOptions& options = {});

/// One-line verdict: completion, hottest die, power, transition count.
[[nodiscard]] std::string render_verdict(const ExperimentResult& result);

/// Writes the machine-readable run-summary JSON: run aggregates, per-node
/// summaries, fault counters, trace bookkeeping, and (when telemetry was on)
/// the merged metrics snapshot. Throws std::runtime_error on I/O failure.
void write_run_summary_json(const std::string& path, const std::string& name,
                            const ExperimentResult& result);

}  // namespace thermctl::core
