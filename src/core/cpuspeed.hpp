// CPUSPEED — the utilization-driven baseline governor (§4.3).
//
// Reimplementation of Carl Thompson's cpuspeed daemon as the paper used it:
// every interval it diffs /proc/stat-style jiffy counters to compute recent
// CPU utilization, jumps to the maximum frequency when busy, and steps down
// one frequency at a time when idle enough. It is *thermally blind* — which
// is exactly why it thrashes frequencies on phase-alternating MPI codes
// (Table 1's 101–139 transitions) and lets temperature climb unchecked
// (Fig. 9).
#pragma once

#include <cstdint>
#include <functional>

#include "common/sim_time.hpp"
#include "sysfs/cpufreq.hpp"
#include "sysfs/proc_stat.hpp"

namespace thermctl::core {

struct CpuspeedConfig {
  /// Governor evaluation interval (cpuspeed's -i default is 2 s; the paper's
  /// platform used a snappier 1 s).
  Seconds interval{1.0};
  /// Jump to max frequency at or above this utilization.
  double up_threshold = 0.90;
  /// Step down one frequency at or below this utilization. 0.75 makes the
  /// daemon react to the longer communication phases of MPI codes the way
  /// the paper's deployment did (~0.5 transitions/s on BT) without walking
  /// deep down the ladder on every exchange.
  double down_threshold = 0.75;
};

class CpuspeedGovernor {
 public:
  using JiffyFn = std::function<std::uint64_t()>;

  /// `busy`/`total` read the node's cumulative jiffy counters (the /proc/stat
  /// contract); frequency actuation goes through cpufreq.
  CpuspeedGovernor(JiffyFn busy, JiffyFn total, sysfs::CpufreqPolicy& cpufreq,
                   CpuspeedConfig config = {});

  /// Daemon-faithful variant: reads and parses /proc/stat from the node's
  /// filesystem every interval, exactly like the real cpuspeed.
  CpuspeedGovernor(const sysfs::VirtualFs& fs, const sysfs::ProcStat& proc_stat,
                   sysfs::CpufreqPolicy& cpufreq, CpuspeedConfig config = {});

  /// Governor tick; call every `config().interval`.
  void on_interval(SimTime now);

  [[nodiscard]] const CpuspeedConfig& config() const { return config_; }
  [[nodiscard]] double last_utilization() const { return last_util_; }

 private:
  JiffyFn busy_;
  JiffyFn total_;
  sysfs::CpufreqPolicy& cpufreq_;
  CpuspeedConfig config_;
  std::uint64_t prev_busy_ = 0;
  std::uint64_t prev_total_ = 0;
  bool primed_ = false;
  double last_util_ = 0.0;
};

}  // namespace thermctl::core
