#include "core/unified_controller.hpp"

namespace thermctl::core {

UnifiedConfig UnifiedController::harmonize(UnifiedConfig config) {
  // One Pp steers every technique — overwrite whatever the sub-configs held.
  config.fan.pp = config.pp;
  config.tdvfs.pp = config.pp;
  config.idle.pp = config.pp;
  // Fault-awareness is likewise a single knob: both gated techniques see the
  // same classification thresholds.
  config.fan.fault_aware = config.fault_aware;
  config.fan.health = config.health;
  config.tdvfs.fault_aware = config.fault_aware;
  config.tdvfs.health = config.health;
  return config;
}

UnifiedController::UnifiedController(sysfs::HwmonDevice& hwmon, sysfs::CpufreqPolicy& cpufreq,
                                     UnifiedConfig config)
    : fan_(hwmon, harmonize(config).fan), dvfs_(hwmon, cpufreq, harmonize(config).tdvfs) {}

UnifiedController::UnifiedController(sysfs::HwmonDevice& hwmon, sysfs::CpufreqPolicy& cpufreq,
                                     sysfs::PowerClampDevice& clamp, UnifiedConfig config)
    : fan_(hwmon, harmonize(config).fan), dvfs_(hwmon, cpufreq, harmonize(config).tdvfs) {
  if (config.enable_idle_injection) {
    idle_.emplace(hwmon, clamp, harmonize(config).idle);
  }
}

void UnifiedController::on_sample(SimTime now) {
  // Staged by intrusiveness: the fan costs no application performance, so
  // it gets first shot at the new sample; tDVFS acts only above its
  // threshold; idle injection, the bluntest instrument, backstops above a
  // still-higher threshold.
  fan_.on_sample(now);
  dvfs_.on_sample(now);
  if (idle_.has_value()) {
    idle_->on_sample(now);
  }
}

void UnifiedController::on_sample_with(SimTime now, Celsius reading) {
  fan_.on_sample_with(now, reading);
  dvfs_.on_sample_with(now, reading);
  if (idle_.has_value()) {
    idle_->on_sample(now);
  }
}

void UnifiedController::set_policy(PolicyParam pp) {
  fan_.set_policy(pp);
  dvfs_.set_policy(pp);
  if (idle_.has_value()) {
    idle_->set_policy(pp);
  }
}

double UnifiedController::first_dvfs_trigger_s() const {
  if (dvfs_.events().empty()) {
    return -1.0;
  }
  return dvfs_.events().front().time_s;
}

}  // namespace thermctl::core
