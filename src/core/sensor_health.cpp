#include "core/sensor_health.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace thermctl::core {

SensorHealthMonitor::SensorHealthMonitor(SensorHealthConfig config) : config_(config) {
  THERMCTL_ASSERT(config_.max_plausible > config_.min_plausible,
                  "plausible band must be non-empty");
  THERMCTL_ASSERT(config_.recovery_samples >= 1, "recovery needs at least one good sample");
}

SensorState SensorHealthMonitor::observe(SimTime now, Celsius reading) {
  ++stats_.samples;
  last_observe_time_ = now;

  const double v = reading.value();
  SensorState state = SensorState::kOk;
  if (!std::isfinite(v)) {
    state = SensorState::kNonFinite;
  } else if (v < config_.min_plausible.value() || v > config_.max_plausible.value()) {
    state = SensorState::kOutOfRange;
  } else {
    // Plausible value: extend or restart the identical-reading run. The
    // comparison is bitwise-exact on purpose — a healthy quantized sensor
    // jitters between adjacent codes, a frozen register does not.
    identical_run_ = (last_raw_.has_value() && *last_raw_ == v) ? identical_run_ + 1 : 1;
    last_raw_ = v;
    if (config_.stuck_samples > 0 && identical_run_ >= config_.stuck_samples) {
      if (identical_run_ == config_.stuck_samples) {
        ++stats_.stuck_detections;
      }
      state = SensorState::kStuck;
    }
  }

  switch (state) {
    case SensorState::kNonFinite:
    case SensorState::kOutOfRange:
      ++stats_.rejected;
      ++reject_run_;
      good_run_ = 0;
      // Garbage interrupts any identical run: the next plausible value
      // starts a fresh one.
      last_raw_.reset();
      identical_run_ = 0;
      break;
    case SensorState::kStuck:
      // The value is plausible but untrustworthy: neither good nor a reject.
      reject_run_ = 0;
      good_run_ = 0;
      break;
    case SensorState::kOk:
      reject_run_ = 0;
      ++good_run_;
      last_good_ = reading;
      last_good_time_ = now;
      break;
  }

  const bool confirmed =
      state == SensorState::kStuck ||
      (config_.reject_samples > 0 && reject_run_ >= config_.reject_samples);
  if (!failed_ && confirmed) {
    failed_ = true;
    ++stats_.failures;
  } else if (failed_ && good_run_ >= config_.recovery_samples) {
    failed_ = false;
    ++stats_.recoveries;
  }
  return state;
}

Seconds SensorHealthMonitor::last_good_age(SimTime now) const {
  THERMCTL_ASSERT(last_good_time_.has_value(), "no good reading yet");
  return now - *last_good_time_;
}

bool SensorHealthMonitor::stale(SimTime now) const {
  if (!last_observe_time_.has_value()) {
    return true;
  }
  return (now - *last_observe_time_).value() > config_.stale_deadline.value();
}

void SensorHealthMonitor::reset() {
  last_raw_.reset();
  identical_run_ = 0;
  reject_run_ = 0;
  good_run_ = 0;
  failed_ = false;
  last_good_.reset();
  last_good_time_.reset();
  last_observe_time_.reset();
}

}  // namespace thermctl::core
