#include "core/experiment.hpp"

#include <algorithm>

#include "core/control_bank.hpp"

#include "common/assert.hpp"
#include "workload/app.hpp"

namespace thermctl::core {

void retune_policy(const RigView& rig, PolicyParam pp) {
  for (DynamicFanController* fan : rig.fans) {
    fan->set_policy(pp);
  }
  for (TdvfsDaemon* daemon : rig.tdvfs) {
    daemon->set_policy(pp);
  }
  if (rig.plane != nullptr) {
    rig.plane->broadcast_policy(pp.value);
  }
}

ExperimentConfig paper_platform() {
  ExperimentConfig cfg;
  cfg.nodes = 4;
  cfg.pp = PolicyParam::moderate();
  cfg.tdvfs.threshold = Celsius{51.0};
  cfg.node_params.sample_period = Seconds{0.25};  // 4 samples per second
  cfg.engine.physics_dt = Seconds{0.05};
  cfg.engine.record_period = Seconds{0.25};
  return cfg;
}

std::vector<FaultEpisode> make_fault_schedule(const FaultCampaignConfig& cfg, std::size_t node,
                                              Seconds horizon) {
  std::vector<FaultEpisode> schedule;
  if (!cfg.enabled || cfg.episodes_per_node <= 0) {
    return schedule;
  }
  THERMCTL_ASSERT(cfg.max_duration.value() >= cfg.min_duration.value(),
                  "fault durations inverted");
  const double latest_start = horizon.value() - cfg.min_duration.value();
  if (latest_start <= cfg.start_after.value()) {
    return schedule;  // horizon too short for any episode
  }
  // Per-node stream: same splitmix64-style spread the cluster uses for node
  // seeds, so schedules are independent across nodes and stable across runs.
  Rng rng{cfg.seed * 0x9e3779b97f4a7c15ULL + node + 1};
  schedule.reserve(static_cast<std::size_t>(cfg.episodes_per_node));
  for (int i = 0; i < cfg.episodes_per_node; ++i) {
    FaultEpisode e;
    e.kind = rng.uniform() < cfg.sensor_stuck_weight ? FaultEpisode::Kind::kSensorStuck
                                                     : FaultEpisode::Kind::kBusFault;
    e.start = Seconds{rng.uniform(cfg.start_after.value(), latest_start)};
    const double duration = rng.uniform(cfg.min_duration.value(), cfg.max_duration.value());
    e.end = Seconds{std::min(e.start.value() + duration, horizon.value())};
    schedule.push_back(e);
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const FaultEpisode& a, const FaultEpisode& b) {
              return a.start.value() < b.start.value();
            });
  return schedule;
}

namespace {

/// Walks one node's fault schedule as edge events; overlapping episodes of
/// the same kind are refcounted so a fault clears only when the last
/// overlapping episode ends.
struct FaultApplier {
  struct Edge {
    double t = 0.0;
    FaultEpisode::Kind kind{};
    int delta = 0;  // +1 start, -1 end
  };

  cluster::Node* node = nullptr;
  std::vector<Edge> edges;
  std::size_t next = 0;
  int stuck_active = 0;
  int bus_active = 0;

  explicit FaultApplier(cluster::Node& n, const std::vector<FaultEpisode>& schedule) : node(&n) {
    edges.reserve(schedule.size() * 2);
    for (const FaultEpisode& e : schedule) {
      edges.push_back({e.start.value(), e.kind, +1});
      edges.push_back({e.end.value(), e.kind, -1});
    }
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      if (a.t != b.t) return a.t < b.t;
      return a.delta < b.delta;  // ends before starts at the same instant
    });
  }

  void tick(SimTime now) {
    while (next < edges.size() && edges[next].t <= now.seconds()) {
      const Edge& e = edges[next++];
      int& active =
          e.kind == FaultEpisode::Kind::kSensorStuck ? stuck_active : bus_active;
      const int before = active;
      active += e.delta;
      if (e.kind == FaultEpisode::Kind::kSensorStuck) {
        if (before == 0 && active > 0) {
          node->sensor().inject_stuck_fault();
        } else if (before > 0 && active == 0) {
          node->sensor().clear_fault();
        }
      } else {
        if (before == 0 && active > 0) {
          node->i2c().inject_bus_fault();
        } else if (before > 0 && active == 0) {
          node->i2c().clear_bus_fault();
        }
      }
    }
  }
};

/// Everything the harness allocates for a run; kept alive until the engine
/// finishes.
struct Rig {
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<cluster::Engine> engine;
  std::unique_ptr<workload::ParallelApp> app;
  std::vector<workload::SegmentLoad> loads;
  /// Batched layout: all dynamic fan / tDVFS / unified controllers live in
  /// one bank, ticked by one periodic per family.
  std::unique_ptr<ControlBank> bank;
  /// Per-node layout: individually heap-allocated controllers, one periodic
  /// each (the historical reference path).
  std::vector<std::unique_ptr<DynamicFanController>> owned_fans;
  std::vector<std::unique_ptr<TdvfsDaemon>> owned_tdvfs;
  /// Node i's controllers regardless of layout (into `bank` or `owned_*`).
  std::vector<DynamicFanController*> fans;
  std::vector<TdvfsDaemon*> tdvfs;
  std::vector<std::unique_ptr<CpuspeedGovernor>> cpuspeed;
  std::vector<std::unique_ptr<FaultApplier>> fault_appliers;
  std::unique_ptr<cluster::RoomModel> room;
  std::unique_ptr<cluster::ctrl::ControlPlane> plane;
  std::shared_ptr<obs::RunTrace> trace;
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::FileSpillSink> spill_file;
  std::unique_ptr<obs::TraceSpiller> spiller;
  std::shared_ptr<obs::FleetRollup> rollup;
  std::unique_ptr<obs::AlertWatchdog> watchdog;

  /// The node's trace ring, or nullptr when tracing is off — controllers
  /// treat nullptr as "don't record".
  [[nodiscard]] obs::TraceRing* ring(std::size_t node) {
    return trace != nullptr ? &trace->ring(node) : nullptr;
  }
};

/// Registers the fault-injection walker for every node. Must run before the
/// controllers are registered so a tick's faults are in force by the time
/// the controllers sample.
void build_fault_campaign(Rig& rig, const ExperimentConfig& config, Seconds horizon,
                          ExperimentResult& result) {
  if (!config.faults.enabled) {
    return;
  }
  result.fault_schedules.resize(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    result.fault_schedules[i] = make_fault_schedule(config.faults, i, horizon);
    auto applier = std::make_unique<FaultApplier>(rig.cluster->node(i), result.fault_schedules[i]);
    FaultApplier* raw = applier.get();
    rig.fault_appliers.push_back(std::move(applier));
    rig.engine->add_periodic(config.node_params.sample_period,
                             [raw](SimTime now) { raw->tick(now); });
  }
}

void build_workload(Rig& rig, const ExperimentConfig& config) {
  Rng rng{config.seed};
  switch (config.workload) {
    case WorkloadKind::kIdle:
      break;
    case WorkloadKind::kCpuBurn: {
      // One cpu-burn per node, uncoupled (no barriers).
      std::vector<workload::Program> programs;
      programs.reserve(config.nodes);
      for (std::size_t i = 0; i < config.nodes; ++i) {
        programs.push_back(workload::cpu_burn_program(config.cpu_burn_duration));
      }
      rig.app = std::make_unique<workload::ParallelApp>("cpu-burn", std::move(programs));
      break;
    }
    case WorkloadKind::kNpbBt:
    case WorkloadKind::kNpbLu: {
      workload::NpbParams params = config.workload == WorkloadKind::kNpbBt
                                       ? workload::bt_class_b()
                                       : workload::lu_class_b();
      if (config.npb_iterations_override > 0) {
        params.iterations = config.npb_iterations_override;
      }
      auto programs =
          workload::make_npb_programs(params, static_cast<int>(config.nodes), rng);
      const char* name = config.workload == WorkloadKind::kNpbBt ? "BT.B" : "LU.B";
      rig.app = std::make_unique<workload::ParallelApp>(name, std::move(programs));
      break;
    }
    case WorkloadKind::kCpuBurnCycles: {
      // Three instances separated by idle gaps; total ~ cpu_burn_duration.
      const double instance = config.cpu_burn_duration.value() / 3.0 - 12.0;
      rig.loads.reserve(config.nodes);
      for (std::size_t i = 0; i < config.nodes; ++i) {
        std::vector<workload::LoadSegment> segments;
        for (int k = 0; k < 3; ++k) {
          segments.push_back({Seconds{12.0}, 0.04, 0.04, 0.0, Seconds{0.0}, 0.01});
          segments.push_back({Seconds{instance}, 1.0, 1.0, 0.0, Seconds{0.0}, 0.02});
        }
        rig.loads.emplace_back(std::move(segments), config.seed + i);
      }
      break;
    }
    case WorkloadKind::kFig2Profile: {
      rig.loads.reserve(config.nodes);
      for (std::size_t i = 0; i < config.nodes; ++i) {
        rig.loads.push_back(workload::fig2_profile(1.0, config.seed + i));
      }
      break;
    }
  }

  if (rig.app != nullptr) {
    std::vector<std::size_t> mapping(config.nodes);
    for (std::size_t i = 0; i < config.nodes; ++i) {
      mapping[i] = i;
    }
    rig.engine->attach_app(*rig.app, std::move(mapping));
  } else {
    for (std::size_t i = 0; i < rig.loads.size(); ++i) {
      rig.engine->set_node_load(i, &rig.loads[i]);
    }
  }
}

void build_fan_policy(Rig& rig, const ExperimentConfig& config) {
  for (std::size_t i = 0; i < config.nodes; ++i) {
    cluster::Node& node = rig.cluster->node(i);
    switch (config.fan) {
      case FanPolicyKind::kChipDefault: {
        // Power-on behaviour is automatic mode; just honour the ceiling.
        const auto st = node.fan_driver().set_max_duty(config.max_duty);
        THERMCTL_ASSERT(st == sysfs::DriverStatus::kOk, "set_max_duty failed");
        const auto mode = node.fan_driver().set_automatic_mode();
        THERMCTL_ASSERT(mode == sysfs::DriverStatus::kOk, "auto mode failed");
        break;
      }
      case FanPolicyKind::kStaticCurve: {
        StaticFanPolicy policy{node.fan_driver(), StaticFanPolicy::Curve{}, config.max_duty};
        THERMCTL_ASSERT(policy.apply(), "static fan policy apply failed");
        break;
      }
      case FanPolicyKind::kConstantDuty: {
        ConstantFanPolicy policy{node.hwmon(), config.constant_duty};
        THERMCTL_ASSERT(policy.apply(), "constant fan policy apply failed");
        break;
      }
      case FanPolicyKind::kDynamic: {
        FanControlConfig fc = config.fan_cfg;
        fc.pp = config.pp;
        fc.max_duty = config.max_duty;
        fc.fault_aware = config.fault_aware;
        fc.health = config.health;
        if (rig.bank != nullptr) {
          DynamicFanController& fan = rig.bank->emplace_fan(i, node.hwmon(), fc);
          fan.set_trace(rig.ring(i));
          rig.fans.push_back(&fan);
        } else {
          auto controller = std::make_unique<DynamicFanController>(node.hwmon(), fc);
          controller->set_trace(rig.ring(i));
          rig.fans.push_back(controller.get());
          rig.owned_fans.push_back(std::move(controller));
          DynamicFanController* raw = rig.fans.back();
          rig.engine->add_periodic(config.node_params.sample_period,
                                   [raw](SimTime now) { raw->on_sample(now); });
        }
        break;
      }
    }
  }
  if (rig.bank != nullptr && rig.bank->fan_count() > 0) {
    // One periodic sweeps the whole family in node order — registered here,
    // where the per-node layout registers its last fan periodic, so the
    // engine's task order is unchanged relative to the reference path.
    ControlBank* bank = rig.bank.get();
    rig.engine->add_periodic(config.node_params.sample_period,
                             [bank](SimTime now) { bank->tick_fans(now); });
  }
}

void build_dvfs_policy(Rig& rig, const ExperimentConfig& config) {
  for (std::size_t i = 0; i < config.nodes; ++i) {
    cluster::Node& node = rig.cluster->node(i);
    switch (config.dvfs) {
      case DvfsPolicyKind::kNone:
        break;
      case DvfsPolicyKind::kTdvfs: {
        TdvfsConfig tc = config.tdvfs;
        tc.pp = config.pp;
        tc.fault_aware = config.fault_aware;
        tc.health = config.health;
        if (rig.bank != nullptr) {
          TdvfsDaemon& daemon = rig.bank->emplace_tdvfs(i, node.hwmon(), node.cpufreq(), tc);
          daemon.set_trace(rig.ring(i));
          rig.tdvfs.push_back(&daemon);
        } else {
          auto daemon = std::make_unique<TdvfsDaemon>(node.hwmon(), node.cpufreq(), tc);
          daemon->set_trace(rig.ring(i));
          rig.tdvfs.push_back(daemon.get());
          rig.owned_tdvfs.push_back(std::move(daemon));
          TdvfsDaemon* raw = rig.tdvfs.back();
          rig.engine->add_periodic(config.node_params.sample_period,
                                   [raw](SimTime now) { raw->on_sample(now); });
        }
        break;
      }
      case DvfsPolicyKind::kCpuspeed: {
        // Daemon-faithful wiring: cpuspeed reads /proc/stat from the node.
        auto governor = std::make_unique<CpuspeedGovernor>(
            node.vfs(), node.proc_stat(), node.cpufreq(), config.cpuspeed);
        CpuspeedGovernor* raw = governor.get();
        rig.cpuspeed.push_back(std::move(governor));
        rig.engine->add_periodic(config.cpuspeed.interval,
                                 [raw](SimTime now) { raw->on_interval(now); });
        break;
      }
    }
  }
  if (rig.bank != nullptr && rig.bank->tdvfs_count() > 0) {
    ControlBank* bank = rig.bank.get();
    rig.engine->add_periodic(config.node_params.sample_period,
                             [bank](SimTime now) { bank->tick_tdvfs(now); });
  }
}

/// Builds the room model and hierarchical control plane when enabled. Runs
/// after the fan/DVFS controllers so the Pp re-tune sinks can point at them;
/// node `i`'s controllers sit at index `i` of rig.fans / rig.tdvfs because
/// the builders above fill one entry per node for the dynamic kinds.
void build_control_plane(Rig& rig, const ExperimentConfig& config) {
  if (!config.control_plane.enabled) {
    return;
  }
  if (config.control_plane.room_enabled) {
    rig.room = std::make_unique<cluster::RoomModel>(config.nodes, config.control_plane.room);
    double idle_wall_w = 0.0;
    for (std::size_t i = 0; i < config.nodes; ++i) {
      idle_wall_w += rig.cluster->node(i).wall_power().value();
    }
    rig.room->settle(Watts{idle_wall_w});
    rig.engine->attach_room(*rig.room);
  }
  rig.plane = std::make_unique<cluster::ctrl::ControlPlane>(
      *rig.cluster, config.control_plane.plane, rig.room.get());
  for (std::size_t i = 0; i < config.nodes; ++i) {
    DynamicFanController* fan =
        config.fan == FanPolicyKind::kDynamic ? rig.fans[i] : nullptr;
    TdvfsDaemon* daemon = config.dvfs == DvfsPolicyKind::kTdvfs ? rig.tdvfs[i] : nullptr;
    if (fan == nullptr && daemon == nullptr) {
      continue;
    }
    rig.plane->set_policy_sink(i, [fan, daemon](int pp) {
      const PolicyParam p{std::clamp(pp, PolicyParam::kMin, PolicyParam::kMax)};
      if (fan != nullptr) {
        fan->set_policy(p);
      }
      if (daemon != nullptr) {
        daemon->set_policy(p);
      }
    });
  }
  if (rig.trace != nullptr) {
    rig.plane->set_trace(rig.trace.get());
  }
  if (rig.registry != nullptr) {
    rig.plane->set_metrics(&rig.registry->shard(0));
  }
  rig.engine->attach_plane(*rig.plane);
}

/// Wires the live telemetry pipeline: the streaming trace spiller, the
/// rollup/watchdog/exposition periodic, or neither — all default off. Runs
/// after build_control_plane so the rollup can read plane state, and before
/// on_rig_built so verification observers see the final task order. All
/// tasks are pure observation on the engine thread's serial phases; the
/// oracle's kLiveTelemetryOnVsOff pairing asserts an enabled run stays
/// bit-identical to a dark one.
void build_live_telemetry(Rig& rig, const ExperimentConfig& config) {
  const TelemetryConfig& t = config.telemetry;

  if (t.spill) {
    THERMCTL_ASSERT(rig.trace != nullptr, "telemetry.spill requires telemetry.trace");
    obs::SpillSink* sink = t.spill_sink;
    if (sink == nullptr) {
      THERMCTL_ASSERT(!t.spill_path.empty(), "telemetry.spill needs a sink or a spill_path");
      rig.spill_file = std::make_unique<obs::FileSpillSink>(t.spill_path);
      sink = rig.spill_file.get();
    }
    rig.spiller = std::make_unique<obs::TraceSpiller>(*rig.trace, *sink, t.spill_cfg);
    obs::TraceSpiller* spiller = rig.spiller.get();
    rig.engine->add_periodic(Seconds{t.spill_cfg.period_s},
                             [spiller](SimTime now) { spiller->drain(now.seconds()); });
  }

  if (!t.rollup.enabled) {
    THERMCTL_ASSERT(t.alerts.empty(), "telemetry.alerts require telemetry.rollup.enabled");
    THERMCTL_ASSERT(t.live_sink == nullptr,
                    "telemetry.live_sink requires telemetry.rollup.enabled");
    return;
  }

  obs::RollupConfig rollup_cfg = t.rollup;
  if (rollup_cfg.nodes_per_rack == 0 && config.control_plane.enabled) {
    rollup_cfg.nodes_per_rack = config.control_plane.plane.nodes_per_rack;
  }
  rig.rollup = std::make_shared<obs::FleetRollup>(config.nodes, rollup_cfg);
  if (!t.alerts.empty()) {
    rig.watchdog = std::make_unique<obs::AlertWatchdog>(t.alerts, rig.rollup->rack_count());
    rig.watchdog->set_trace(rig.ring(0));
  }

  // Cumulative sensor-rejection counters live in the controllers' health
  // monitors; resolve them once instead of per sample.
  std::vector<const SensorHealthMonitor*> monitors;
  for (const auto& fan : rig.fans) {
    if (const SensorHealthMonitor* m = fan->health(); m != nullptr) {
      monitors.push_back(m);
    }
  }
  for (const auto& daemon : rig.tdvfs) {
    if (const SensorHealthMonitor* m = daemon->health(); m != nullptr) {
      monitors.push_back(m);
    }
  }

  // One periodic drives sample → watchdog → exposition so the three stay
  // phase-locked on the rollup cadence.
  cluster::Cluster* cl = rig.cluster.get();
  cluster::ctrl::ControlPlane* plane = rig.plane.get();
  obs::FleetRollup* rollup = rig.rollup.get();
  obs::AlertWatchdog* watchdog = rig.watchdog.get();
  obs::TraceSpiller* spiller = rig.spiller.get();
  obs::MetricsRegistry* registry = rig.registry.get();
  obs::LiveTelemetrySink* sink = t.live_sink;
  const std::uint32_t live_every = t.live_every == 0 ? 1 : t.live_every;
  rig.engine->add_periodic(
      Seconds{rollup_cfg.interval_s},
      [cl, plane, rollup, watchdog, spiller, registry, sink, live_every,
       monitors = std::move(monitors), ticks = std::uint64_t{0}](SimTime now) mutable {
        rollup->begin(now.seconds());
        for (std::size_t i = 0; i < cl->size(); ++i) {
          const cluster::Node& node = cl->node(i);
          const bool capped = plane != nullptr && plane->agent(i).cap_index() > 0;
          const bool autonomous = plane != nullptr && plane->agent(i).autonomous();
          rollup->observe(i, node.die_temperature().value(), node.wall_power().value(),
                          capped, autonomous);
        }
        std::uint64_t rejected = 0;
        for (const SensorHealthMonitor* m : monitors) {
          rejected += m->stats().rejected;
        }
        rollup->commit(plane != nullptr ? plane->stats().failsafe_entries : 0, rejected);
        if (watchdog != nullptr) {
          watchdog->evaluate(now.seconds(), *rollup);
        }
        ++ticks;
        if (sink != nullptr && ticks % live_every == 0) {
          const obs::MetricsSnapshot snapshot =
              registry != nullptr ? registry->merged() : obs::MetricsSnapshot{};
          sink->on_exposition(
              now.seconds(),
              obs::render_openmetrics(snapshot, rollup, watchdog,
                                      spiller != nullptr ? &spiller->stats() : nullptr,
                                      now.seconds()));
        }
      });
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  THERMCTL_ASSERT(config.nodes > 0, "experiment needs nodes");

  Rig rig;
  cluster::NodeParams node_params = config.node_params;
  node_params.seed = config.seed;
  const bool batched = config.control_layout == ControlLayout::kBatched;
  rig.cluster = std::make_unique<cluster::Cluster>(config.nodes, node_params, batched);
  if (batched &&
      (config.fan == FanPolicyKind::kDynamic || config.dvfs == DvfsPolicyKind::kTdvfs)) {
    cluster::FleetState* fleet = rig.cluster->fleet();
    rig.bank = std::make_unique<ControlBank>(
        config.nodes, fleet != nullptr ? fleet->sensor_last_data() : nullptr);
  }

  // The machine idles before the job starts: settle at near-zero load.
  for (std::size_t i = 0; i < config.nodes; ++i) {
    rig.cluster->node(i).set_utilization(Utilization{0.02});
  }
  rig.cluster->settle_all();

  cluster::EngineConfig engine_cfg = config.engine;
  if (config.workload == WorkloadKind::kCpuBurn) {
    engine_cfg.horizon =
        Seconds{std::max(engine_cfg.horizon.value(), config.cpu_burn_duration.value() * 2.0)};
  } else if (config.workload == WorkloadKind::kCpuBurnCycles) {
    // Time-function load: the run ends exactly when the last instance does.
    engine_cfg.horizon = config.cpu_burn_duration;
  } else if (config.workload == WorkloadKind::kFig2Profile) {
    engine_cfg.horizon = Seconds{245.0};
  }
  rig.engine = std::make_unique<cluster::Engine>(*rig.cluster, engine_cfg);

  if (config.telemetry.trace) {
    rig.trace = std::make_shared<obs::RunTrace>(config.nodes, config.telemetry.trace_ring_capacity);
    // The fan i2c master rides the same ring as the node's controllers, so
    // bus retries interleave with the decisions that caused the traffic.
    for (std::size_t i = 0; i < config.nodes; ++i) {
      rig.cluster->node(i).fan_driver().set_trace(rig.ring(i));
    }
  }
  if (config.telemetry.metrics) {
    rig.registry = std::make_unique<obs::MetricsRegistry>(1);
    rig.engine->set_metrics(&rig.registry->shard(0));
  }

  ExperimentResult result;
  build_workload(rig, config);
  build_fault_campaign(rig, config, engine_cfg.horizon, result);
  build_fan_policy(rig, config);
  build_dvfs_policy(rig, config);
  if (config.control_phase_wheel) {
    THERMCTL_ASSERT(rig.bank != nullptr, "phase wheel requires the batched control layout");
    rig.bank->stagger_windows();
  }
  build_control_plane(rig, config);
  build_live_telemetry(rig, config);

  if (config.on_rig_built) {
    RigView view;
    view.cluster = rig.cluster.get();
    view.engine = rig.engine.get();
    view.plane = rig.plane.get();
    view.rollup = rig.rollup.get();
    view.watchdog = rig.watchdog.get();
    view.spiller = rig.spiller.get();
    view.config = &config;
    view.fans = rig.fans;
    view.tdvfs = rig.tdvfs;
    config.on_rig_built(view);
  }

  result.run = rig.engine->run();

  if (rig.spiller != nullptr) {
    rig.spiller->finish();
    result.spill = rig.spiller->stats();
  }
  result.rollup = rig.rollup;
  if (rig.watchdog != nullptr) {
    result.alert_rules = rig.watchdog->rules();
    result.alerts = rig.watchdog->events();
  }

  if (rig.plane != nullptr) {
    result.plane_stats = rig.plane->stats();
  }

  result.tdvfs_events.resize(config.nodes);
  result.fan_events.resize(config.nodes);
  for (std::size_t i = 0; i < rig.tdvfs.size(); ++i) {
    result.tdvfs_events[i] = rig.tdvfs[i]->events();
    for (const TdvfsEvent& e : result.tdvfs_events[i]) {
      if (result.first_dvfs_trigger_s < 0.0 || e.time_s < result.first_dvfs_trigger_s) {
        result.first_dvfs_trigger_s = e.time_s;
      }
    }
  }
  for (std::size_t i = 0; i < rig.fans.size(); ++i) {
    result.fan_events[i] = rig.fans[i]->events();
  }

  ControllerFaultStats& fs = result.fault_stats;
  for (const auto& fan : rig.fans) {
    fs.failsafe_entries += fan->failsafe_entries();
    fs.failsafe_exits += fan->failsafe_exits();
    if (const SensorHealthMonitor* m = fan->health(); m != nullptr) {
      fs.sensor_rejected += m->stats().rejected;
      fs.sensor_stuck_detections += m->stats().stuck_detections;
      fs.sensor_failures += m->stats().failures;
      fs.sensor_recoveries += m->stats().recoveries;
    }
  }
  for (const auto& daemon : rig.tdvfs) {
    fs.dvfs_hold_entries += daemon->hold_entries();
    fs.dvfs_held_ticks += daemon->held_ticks();
    if (const SensorHealthMonitor* m = daemon->health(); m != nullptr) {
      fs.sensor_rejected += m->stats().rejected;
      fs.sensor_stuck_detections += m->stats().stuck_detections;
      fs.sensor_failures += m->stats().failures;
      fs.sensor_recoveries += m->stats().recoveries;
    }
  }

  if (rig.registry != nullptr) {
    // Controller/bus totals and series-shape histograms, folded in post-run
    // so the control loops never pay for the bookkeeping.
    obs::MetricsShard& shard = rig.registry->shard(0);
    for (const auto& fan : rig.fans) {
      shard.counter("fan.retargets").add(fan->retarget_count());
      shard.counter("fan.failsafe_entries").add(fan->failsafe_entries());
      shard.counter("fan.failsafe_exits").add(fan->failsafe_exits());
    }
    for (const auto& daemon : rig.tdvfs) {
      shard.counter("tdvfs.transitions").add(daemon->events().size());
      shard.counter("tdvfs.hold_entries").add(daemon->hold_entries());
      shard.counter("tdvfs.held_ticks").add(daemon->held_ticks());
    }
    for (std::size_t i = 0; i < config.nodes; ++i) {
      const hw::I2cErrorStats& io = rig.cluster->node(i).fan_driver().io_stats();
      shard.counter("i2c.transfers").add(io.transfers);
      shard.counter("i2c.retries").add(io.retries);
      shard.counter("i2c.exhausted").add(io.exhausted);
    }
    obs::Histogram& duty_h =
        shard.histogram("fan.duty_pct", {10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
    obs::Histogram& temp_h =
        shard.histogram("node.die_temp_c", {40, 45, 50, 55, 60, 65, 70, 75, 80, 85});
    for (const cluster::NodeSeries& series : result.run.nodes) {
      for (double d : series.duty) {
        duty_h.observe(d);
      }
      for (double t : series.die_temp) {
        temp_h.observe(t);
      }
    }
    if (rig.trace != nullptr) {
      shard.counter("trace.emitted").add(rig.trace->total_emitted());
      shard.counter("trace.dropped").add(rig.trace->total_dropped());
    }
    if (result.spill.has_value()) {
      shard.counter("spill.drains").add(result.spill->drains);
      shard.counter("spill.events").add(result.spill->events_spilled);
      shard.counter("spill.events_lost").add(result.spill->events_lost);
      shard.counter("spill.deferred_drains").add(result.spill->deferred_drains);
    }
    if (rig.rollup != nullptr) {
      shard.counter("rollup.samples").add(rig.rollup->samples_recorded());
    }
    if (rig.watchdog != nullptr) {
      shard.counter("alerts.events").add(rig.watchdog->events().size());
    }
    result.metrics = rig.registry->merged();
  }
  result.trace = rig.trace;
  return result;
}

}  // namespace thermctl::core
