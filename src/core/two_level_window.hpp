// The paper's two-level, history-based temperature window (§3.2.1, Fig. 3).
//
// Level one: a small array (default 4 entries) of the most recent raw
// samples. When it fills, the window computes
//
//   Δt_L1 = Σ(second half) − Σ(first half)
//
// — a sum-difference that responds to *sustained* change (Type I "sudden")
// while averaging out single-sample jitter (Type III). The level-one average
// is then pushed into the level-two FIFO (default 5 entries) and the
// level-one array is cleared for the next round.
//
// Level two: the FIFO of round averages tracks coarse-grained history;
//
//   Δt_L2 = rear − front
//
// predicts *gradual* trends (Type II) spanning several rounds.
//
// With the paper's 4 Hz sampling and a 4-entry level-one array, rounds
// complete once per second and the level-two FIFO spans five seconds.
//
// Storage follows the fleet bind_state pattern: samples, the FIFO cells and
// the three counters default to inline storage but can be rebound onto
// external SoA slots (bind_state) so a ControlBank can keep thousands of
// windows' hot state in contiguous node-major arrays. Behaviour is
// bit-identical either way — the same add_sample code runs on the same
// values, just at a different address.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/units.hpp"

namespace thermctl::core {

struct WindowConfig {
  std::size_t level1_size = 4;  // must be even (split into halves)
  std::size_t level2_size = 5;
};

/// Result of a completed level-one round.
struct WindowRound {
  CelsiusDelta level1_delta{};   // Δt_L1, degrees over half a round
  CelsiusDelta level2_delta{};   // Δt_L2 (zero until the FIFO holds ≥ 2 rounds)
  Celsius level1_average{};      // round average pushed into level two
  bool level2_valid = false;     // FIFO had ≥ 2 entries when Δt_L2 was read
};

/// External storage one window's hot state can be rebound onto — node-major
/// rows/cells of a ControlBank's SoA arrays. `level1` must hold
/// config.level1_size cells and `level2` config.level2_size cells.
struct WindowSlots {
  double* level1 = nullptr;
  double* level2 = nullptr;
  std::size_t* level1_fill = nullptr;
  std::size_t* level2_head = nullptr;
  std::size_t* level2_count = nullptr;
};

class TwoLevelWindow {
 public:
  explicit TwoLevelWindow(WindowConfig config = {});

  // Sample/FIFO storage may be rebound into bank-owned SoA arrays
  // (bind_state), so the window must not be duplicated with pointers into
  // the old storage.
  TwoLevelWindow(const TwoLevelWindow&) = delete;
  TwoLevelWindow& operator=(const TwoLevelWindow&) = delete;

  /// Rebinds all hot state onto external storage (ControlBank SoA slots).
  /// Current contents carry over.
  void bind_state(const WindowSlots& slots);

  /// Adds a sample; returns a WindowRound when this sample completes a
  /// level-one round, otherwise nullopt. Inline so the no-round common case
  /// (all but one sample in level1_size) is a store and a compare at the
  /// caller.
  std::optional<WindowRound> add_sample(Celsius t) {
    level1_[(*level1_fill_)++] = t.value();
    if (*level1_fill_ < round_size_) {
      return std::nullopt;
    }
    return close_round();
  }

  /// Discards all history (e.g. after a controller mode change that makes
  /// old samples unrepresentative). A configured stagger (see below) is
  /// re-applied, so a staggered window stays phase-offset after resets.
  void reset();

  /// Phase-wheel support: shortens the *next* round to `level1_size - skip`
  /// samples (skip in [0, level1_size)), after which rounds return to full
  /// length. Spreading `skip` round-robin across a fleet staggers the
  /// windows so each engine step closes only ~1/level1_size of them. NOT
  /// bit-identical to synchronized windows — the short round averages fewer
  /// samples — which is why it is opt-in and excluded from the differential
  /// oracle's default pairings.
  void stagger(std::size_t skip);

  [[nodiscard]] const WindowConfig& config() const { return config_; }
  [[nodiscard]] std::size_t level1_fill() const { return *level1_fill_; }
  [[nodiscard]] std::size_t level2_fill() const { return *level2_count_; }

  /// Front (oldest) and rear (newest) of the level-two FIFO.
  [[nodiscard]] Celsius level2_front() const;
  [[nodiscard]] Celsius level2_rear() const;

 private:
  [[nodiscard]] std::optional<WindowRound> close_round();

  WindowConfig config_;
  std::size_t stagger_ = 0;    // sticky first-round shortening (phase wheel)
  std::size_t round_size_ = 0; // samples until the current round closes
  // Hot state defaults to inline storage; bind_state() repoints it into
  // ControlBank SoA slots without changing behaviour.
  std::vector<double> inline_cells_;  // level1_size + level2_size doubles
  std::size_t level1_fill_storage_ = 0;
  std::size_t level2_head_storage_ = 0;
  std::size_t level2_count_storage_ = 0;
  double* level1_ = nullptr;
  double* level2_ = nullptr;
  std::size_t* level1_fill_ = &level1_fill_storage_;
  std::size_t* level2_head_ = &level2_head_storage_;
  std::size_t* level2_count_ = &level2_count_storage_;
};

}  // namespace thermctl::core
