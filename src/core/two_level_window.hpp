// The paper's two-level, history-based temperature window (§3.2.1, Fig. 3).
//
// Level one: a small array (default 4 entries) of the most recent raw
// samples. When it fills, the window computes
//
//   Δt_L1 = Σ(second half) − Σ(first half)
//
// — a sum-difference that responds to *sustained* change (Type I "sudden")
// while averaging out single-sample jitter (Type III). The level-one average
// is then pushed into the level-two FIFO (default 5 entries) and the
// level-one array is cleared for the next round.
//
// Level two: the FIFO of round averages tracks coarse-grained history;
//
//   Δt_L2 = rear − front
//
// predicts *gradual* trends (Type II) spanning several rounds.
//
// With the paper's 4 Hz sampling and a 4-entry level-one array, rounds
// complete once per second and the level-two FIFO spans five seconds.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/units.hpp"

namespace thermctl::core {

struct WindowConfig {
  std::size_t level1_size = 4;  // must be even (split into halves)
  std::size_t level2_size = 5;
};

/// Result of a completed level-one round.
struct WindowRound {
  CelsiusDelta level1_delta{};   // Δt_L1, degrees over half a round
  CelsiusDelta level2_delta{};   // Δt_L2 (zero until the FIFO holds ≥ 2 rounds)
  Celsius level1_average{};      // round average pushed into level two
  bool level2_valid = false;     // FIFO had ≥ 2 entries when Δt_L2 was read
};

class TwoLevelWindow {
 public:
  explicit TwoLevelWindow(WindowConfig config = {});

  /// Adds a sample; returns a WindowRound when this sample completes a
  /// level-one round, otherwise nullopt.
  std::optional<WindowRound> add_sample(Celsius t);

  /// Discards all history (e.g. after a controller mode change that makes
  /// old samples unrepresentative).
  void reset();

  [[nodiscard]] const WindowConfig& config() const { return config_; }
  [[nodiscard]] std::size_t level1_fill() const { return level1_.size(); }
  [[nodiscard]] std::size_t level2_fill() const { return level2_.size(); }

  /// Front (oldest) and rear (newest) of the level-two FIFO.
  [[nodiscard]] Celsius level2_front() const { return level2_.front(); }
  [[nodiscard]] Celsius level2_rear() const { return level2_.back(); }

 private:
  WindowConfig config_;
  std::vector<Celsius> level1_;
  RingBuffer<Celsius> level2_;
};

}  // namespace thermctl::core
