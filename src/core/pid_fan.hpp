// PID fan control — the "formal control techniques" baseline (§2: Wu/Juang's
// formal DVFS scaling, Lefurgy's closed-loop server power control, Wang's
// MIMO cluster controller all come from this school).
//
// A classical discrete PI(D) loop holding the die at a temperature setpoint
// by actuating PWM duty:
//
//   e_k   = T_k − T_set
//   u_k   = Kp·e_k + Ki·Σe·dt + Kd·(e_k − e_{k-1})/dt
//   duty  = clamp(u_k, min_duty, max_duty)
//
// with conditional anti-windup (the integrator freezes while the actuator is
// saturated). The contrast with the paper's controller: PID regulates to a
// *setpoint* and must be gain-tuned per platform; the thermal-control-array
// scheme regulates *variation* anywhere in the band and is tuned by a single
// semantic parameter. The baseline bench quantifies both behaviours.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "sysfs/hwmon.hpp"

namespace thermctl::core {

struct PidFanConfig {
  Celsius setpoint{50.0};
  double kp = 8.0;    // duty-% per degC
  double ki = 0.4;    // duty-% per degC-second
  double kd = 4.0;    // duty-% per (degC/second)
  DutyCycle min_duty{1.0};
  DutyCycle max_duty{100.0};
  /// Controller period (should match the sensor sampling period).
  Seconds period{0.25};
};

class PidFanController {
 public:
  PidFanController(sysfs::HwmonDevice& hwmon, PidFanConfig config);

  void on_sample(SimTime now);

  [[nodiscard]] DutyCycle current_duty() const { return duty_; }
  [[nodiscard]] double integrator() const { return integral_; }
  [[nodiscard]] std::uint64_t actuations() const { return actuations_; }

  /// Clears all controller state (integrator, derivative history, cached
  /// duty, actuation count). The hardware is treated as unknown afterwards:
  /// the next on_sample() re-asserts manual mode and always writes PWM.
  void reset();

 private:
  sysfs::HwmonDevice& hwmon_;
  PidFanConfig config_;
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  bool primed_ = false;
  bool initialized_ = false;
  /// False until a write has confirmed the chip's duty (and again after
  /// reset()): while unknown, the write-suppression shortcut is disabled.
  bool duty_known_ = false;
  DutyCycle duty_{0.0};
  std::uint64_t actuations_ = 0;
};

}  // namespace thermctl::core
