// tDVFS — the temperature-aware DVFS daemon (§4.1, §4.3).
//
// The paper's in-band technique: "our strategy for DVFS control is not to
// scale down frequency unless necessary because low frequencies impact
// application performance ... we trigger frequency scaling when the
// temperature reaches a threshold." Concretely:
//
//  * scale DOWN only when the round-average temperature has been
//    *consistently* above the threshold (51 °C on the paper's platform) for
//    `consistency_rounds` window rounds — single hot rounds and jitter do
//    not trigger (the red-circled non-response in Fig. 8);
//  * how far down is governed by the same thermal control array / Pp
//    machinery as the fan (frequencies ordered fastest → slowest by
//    effectiveness), so one Pp steers both techniques;
//  * scale back UP to the original frequency once the average has been
//    consistently below (threshold − hysteresis), "so as to avoid
//    performance loss".
//
// Actuation goes through the cpufreq sysfs path; transition counts (Table 1)
// therefore come from the same `stats/total_trans` a real system reports.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "core/control_array.hpp"
#include "core/mode_selector.hpp"
#include "core/policy.hpp"
#include "core/sensor_health.hpp"
#include "core/two_level_window.hpp"
#include "obs/trace.hpp"
#include "sysfs/cpufreq.hpp"
#include "sysfs/hwmon.hpp"

namespace thermctl::core {

struct TdvfsConfig {
  PolicyParam pp{};
  /// Trigger threshold (the paper's experiments use 51 °C).
  Celsius threshold{51.0};
  /// Scale back up once average temperature < threshold − hysteresis.
  CelsiusDelta hysteresis{2.0};
  /// Window rounds the average must stay above threshold to count as
  /// "consistent" (rounds are ~1 s at the paper's rates).
  int consistency_rounds = 3;
  /// Rounds below (threshold − hysteresis) before restoring the original
  /// frequency. Deliberately longer than the trigger consistency: restoring
  /// eagerly right after a down-scale causes down/up thrash, and transitions
  /// are the reliability cost Table 1 scores.
  int restore_rounds = 10;
  /// Thermal control array bound N for the frequency modes.
  std::size_t array_size = 16;
  ModeSelectorConfig selector{};
  WindowConfig window{};
  /// Gate readings through a SensorHealthMonitor and *hold* the current
  /// frequency on confirmed sensor failure: scaling on garbage would
  /// oscillate, and the fan's fail-safe already covers cooling. Off by
  /// default for bit-identical zero-fault behaviour.
  bool fault_aware = false;
  SensorHealthConfig health{};
};

struct TdvfsEvent {
  double time_s = 0.0;
  double from_ghz = 0.0;
  double to_ghz = 0.0;
};

class TdvfsDaemon {
 public:
  TdvfsDaemon(sysfs::HwmonDevice& hwmon, sysfs::CpufreqPolicy& cpufreq, TdvfsConfig config);

  /// Daemon tick (call at the sensor sampling rate).
  void on_sample(SimTime now);

  /// on_sample with the reading supplied by the caller (ControlBank batched
  /// path). `reading` must equal what hwmon.read_temperature() would return
  /// at this tick; the tick logic is byte-for-byte the same.
  void on_sample_with(SimTime now, Celsius reading);

  [[nodiscard]] std::size_t current_index() const { return index_; }
  [[nodiscard]] GigaHertz current_target() const;
  [[nodiscard]] const std::vector<TdvfsEvent>& events() const { return events_; }
  [[nodiscard]] const ThermalControlArray& array() const { return array_; }
  [[nodiscard]] const TdvfsConfig& config() const { return config_; }

  /// Round-average temperature of the most recently completed window round
  /// (nullopt until one completes). Read-only observability for the
  /// verification layer's coordination invariant: a trigger without a
  /// threshold-crossing average is a bug.
  [[nodiscard]] std::optional<Celsius> last_round_average() const {
    return last_round_average_;
  }

  /// Frequency-hold state (only ever true when `fault_aware` is set).
  [[nodiscard]] bool holding() const { return holding_; }
  [[nodiscard]] std::uint64_t hold_entries() const { return hold_entries_; }
  [[nodiscard]] std::uint64_t held_ticks() const { return held_ticks_; }
  /// The gating monitor, or nullptr when not fault-aware.
  [[nodiscard]] const SensorHealthMonitor* health() const {
    return health_.has_value() ? &*health_ : nullptr;
  }

  void set_policy(PolicyParam pp);

  /// Attaches a decision-trace ring (nullptr detaches). Window rounds,
  /// selector decisions, trigger/restore transitions (with the consistency
  /// counts that armed them), and hold transitions are then recorded.
  void set_trace(obs::TraceRing* trace) { trace_ = trace; }

  /// The sampling window, mutable so a ControlBank can rebind its storage
  /// into bank-owned SoA arrays (and a phase wheel can stagger it).
  [[nodiscard]] TwoLevelWindow& window() { return window_; }

 private:
  /// `consistency` and `is_restore` feed the decision trace: how many
  /// consistent rounds armed this move and which direction it is.
  void retarget(SimTime now, std::size_t target, int consistency, bool used_level2,
                bool is_restore);

  sysfs::HwmonDevice& hwmon_;
  sysfs::CpufreqPolicy& cpufreq_;
  TdvfsConfig config_;
  ThermalControlArray array_;
  ModeSelector selector_;
  TwoLevelWindow window_;
  std::size_t index_ = 0;  // 0 = least effective = original (fastest) mode
  int rounds_above_ = 0;
  int rounds_below_ = 0;
  std::optional<Celsius> last_round_average_;
  std::vector<TdvfsEvent> events_;
  std::optional<SensorHealthMonitor> health_;
  bool holding_ = false;
  std::uint64_t hold_entries_ = 0;
  std::uint64_t held_ticks_ = 0;
  obs::TraceRing* trace_ = nullptr;
  bool last_sample_ok_ = true;  // edge detector for sensor-classification events
};

}  // namespace thermctl::core
