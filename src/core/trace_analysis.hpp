// Offline thermal-trace analysis: the §3.1 behaviour taxonomy as a tool.
//
// Segments a recorded temperature series into contiguous regions of one
// behaviour type (sudden / gradual / jitter / stable) by sliding the
// PhaseClassifier across it, then merges neighbouring windows with the same
// label. The Fig. 2 bench uses this to annotate its profile; downstream
// users get the same capability over their own recorded runs (e.g. deciding
// whether a workload leaves any headroom for proactive control).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/phase_classifier.hpp"

namespace thermctl::core {

struct BehaviourSegment {
  ThermalBehaviour behaviour = ThermalBehaviour::kStable;
  std::size_t begin = 0;  // sample index, inclusive
  std::size_t end = 0;    // sample index, exclusive
  double start_s = 0.0;
  double duration_s = 0.0;
  double temp_begin = 0.0;
  double temp_end = 0.0;
};

struct TraceAnalysis {
  std::vector<BehaviourSegment> segments;
  /// Fraction of samples per behaviour (indexed by ThermalBehaviour).
  double fraction_stable = 0.0;
  double fraction_sudden = 0.0;
  double fraction_gradual = 0.0;
  double fraction_jitter = 0.0;
  /// Net temperature movement attributable to sudden+gradual segments —
  /// §3.1's observation that only Types I and II change temperature.
  double trending_delta_c = 0.0;
};

struct TraceAnalysisConfig {
  ClassifierConfig classifier{};
  /// Segments shorter than this are merged into their neighbour (debounce).
  std::size_t min_segment_samples = 8;
};

/// Analyzes a temperature series sampled at `sample_dt_s` spacing.
[[nodiscard]] TraceAnalysis analyze_trace(std::span<const double> temps, double sample_dt_s,
                                          const TraceAnalysisConfig& config = {});

/// Human-readable segment table.
[[nodiscard]] std::string render_analysis(const TraceAnalysis& analysis);

}  // namespace thermctl::core
