// Thermal behaviour classifier (§3.1 / Fig. 2).
//
// Labels a sliding window of temperature samples as one of the paper's three
// types (plus "stable"):
//
//   Type I  (sudden):  large sustained rate of change over a short window,
//   Type II (gradual): small but persistent trend over a long window,
//   Type III (jitter): oscillation around a level with no sustained trend.
//
// The classifier is analysis-side (benches, diagnostics); the controller
// itself achieves the same discrimination implicitly through the two-level
// window. Keeping an explicit classifier makes the §3.1 taxonomy testable
// and lets the Fig. 2 bench annotate its profile.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "common/ring_buffer.hpp"
#include "common/units.hpp"

namespace thermctl::core {

enum class ThermalBehaviour {
  kStable,
  kSudden,   // Type I
  kGradual,  // Type II
  kJitter,   // Type III
};

[[nodiscard]] std::string_view to_string(ThermalBehaviour b);

struct ClassifierConfig {
  /// Samples held for analysis (default 32 = 8 s at 4 Hz).
  std::size_t window = 32;
  /// Sample spacing in seconds (4 Hz default).
  double sample_dt_s = 0.25;
  /// |slope| above this is "sudden" (°C/s).
  double sudden_rate = 0.35;
  /// |slope| above this (but below sudden) with a consistent sign is
  /// "gradual" (°C/s).
  double gradual_rate = 0.04;
  /// Peak-to-peak swing above this with no trend is "jitter" (°C).
  double jitter_swing = 0.8;
};

struct ClassifierReport {
  ThermalBehaviour behaviour = ThermalBehaviour::kStable;
  double trend_c_per_s = 0.0;   // least-squares slope
  double swing_c = 0.0;         // peak-to-peak around the trend line
  double reversal_rate = 0.0;   // sign changes of the derivative per sample
};

class PhaseClassifier {
 public:
  explicit PhaseClassifier(ClassifierConfig config = {});

  /// Adds a sample; classification uses up to `window` most recent samples.
  void add_sample(Celsius t);

  /// Classifies the current window (needs at least 8 samples; returns
  /// kStable before that).
  [[nodiscard]] ClassifierReport classify() const;

  void reset();

  [[nodiscard]] std::size_t fill() const { return samples_.size(); }

 private:
  ClassifierConfig config_;
  RingBuffer<double> samples_;
};

}  // namespace thermctl::core
