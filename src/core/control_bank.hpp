// ControlBank — batched controller sweeps over contiguous per-node state.
//
// The fleet-scale profile shows the control path dominated not by control
// *math* but by dispatch overhead: one periodic closure per node, one
// VirtualFs round trip per sensor read, and window state scattered across
// thousands of heap-allocated controller objects. A ControlBank owns a
// fleet's controllers of one family (fan / tDVFS / unified) in a single
// placement-new slab, rebinds every controller's TwoLevelWindow onto
// bank-owned node-major SoA arrays, and ticks the whole family from ONE
// periodic callback:
//
//   1. latch readings[i] = round(sensor_last[i] · 1000) / 1000  — exactly the
//      millidegree quantization the hwmon temp1_input attribute performs, so
//      the batched read is bit-identical to the per-node VFS round trip;
//   2. run each controller's on_sample_with(now, readings[i]) in node order —
//      the same tick logic, same order, as N independent periodics.
//
// Bit-exactness against the per-node path is enforced by the differential
// oracle's batched-vs-per-node pairing. Heterogeneous rigs (per-node window
// configs that differ from the family's) keep per-object inline window
// storage — correctness never depends on the SoA rebind.
//
// The bank also hosts the opt-in phase wheel: stagger_windows() shortens each
// node's FIRST window round by (node mod level1_size) samples so window
// closes — the expensive part of a controller tick — spread round-robin
// across engine steps instead of all landing on the same tick. Deliberately
// NOT bit-identical (the short first round averages fewer samples), hence
// opt-in and excluded from the oracle's default corpus.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/sim_time.hpp"
#include "core/fan_policy.hpp"
#include "core/tdvfs.hpp"
#include "core/unified_controller.hpp"

namespace thermctl::core {

/// Fixed-capacity placement-new arena. Controllers are non-movable once
/// their windows can be rebound onto external storage (deleted copies), so
/// vector<T> — which requires MoveInsertable — cannot hold them; a slab
/// gives stable addresses without per-object heap scatter.
template <typename T>
class FixedSlab {
 public:
  FixedSlab() = default;
  explicit FixedSlab(std::size_t capacity) { reserve(capacity); }
  ~FixedSlab() {
    for (std::size_t i = size_; i > 0; --i) {
      data_[i - 1].~T();
    }
    if (data_ != nullptr) {
      alloc_.deallocate(data_, capacity_);
    }
  }
  FixedSlab(const FixedSlab&) = delete;
  FixedSlab& operator=(const FixedSlab&) = delete;

  /// One-shot capacity set; must precede any emplace.
  void reserve(std::size_t capacity) {
    THERMCTL_ASSERT(data_ == nullptr && size_ == 0, "slab capacity is one-shot");
    capacity_ = capacity;
    if (capacity_ > 0) {
      data_ = alloc_.allocate(capacity_);
    }
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    THERMCTL_ASSERT(size_ < capacity_, "slab full");
    T* slot = ::new (static_cast<void*>(data_ + size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  std::allocator<T> alloc_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

class ControlBank {
 public:
  /// `sensor_last` is the fleet's node-major array of raw sensor
  /// sample-and-hold values (FleetState::sensor_last_data()), or nullptr for
  /// rigs without fleet SoA state — the bank then falls back to each
  /// controller's own VFS read path (on_sample), still batching dispatch.
  ControlBank(std::size_t nodes, const double* sensor_last);

  ControlBank(const ControlBank&) = delete;
  ControlBank& operator=(const ControlBank&) = delete;

  /// Controllers must be emplaced densely in ascending node order (node ==
  /// number already emplaced in that family); each window is rebound into
  /// the family's SoA arrays when its config matches the family's first.
  DynamicFanController& emplace_fan(std::size_t node, sysfs::HwmonDevice& hwmon,
                                    const FanControlConfig& config);
  TdvfsDaemon& emplace_tdvfs(std::size_t node, sysfs::HwmonDevice& hwmon,
                             sysfs::CpufreqPolicy& cpufreq, const TdvfsConfig& config);
  UnifiedController& emplace_unified(std::size_t node, sysfs::HwmonDevice& hwmon,
                                     sysfs::CpufreqPolicy& cpufreq, const UnifiedConfig& config);
  UnifiedController& emplace_unified(std::size_t node, sysfs::HwmonDevice& hwmon,
                                     sysfs::CpufreqPolicy& cpufreq,
                                     sysfs::PowerClampDevice& clamp, const UnifiedConfig& config);

  /// One family tick — call from a single periodic at the sampling rate.
  void tick_fans(SimTime now);
  void tick_tdvfs(SimTime now);
  void tick_unified(SimTime now);

  /// Phase wheel (opt-in, NOT bit-identical): staggers every emplaced
  /// window's next round by (node mod level1_size) samples. Call once, after
  /// emplacement; sticky across window resets.
  void stagger_windows();

  [[nodiscard]] std::size_t nodes() const { return nodes_; }
  [[nodiscard]] std::size_t fan_count() const { return fans_.size(); }
  [[nodiscard]] std::size_t tdvfs_count() const { return tdvfs_.size(); }
  [[nodiscard]] std::size_t unified_count() const { return unified_.size(); }
  [[nodiscard]] DynamicFanController& fan(std::size_t i) { return fans_[i]; }
  [[nodiscard]] TdvfsDaemon& tdvfs(std::size_t i) { return tdvfs_[i]; }
  [[nodiscard]] UnifiedController& unified(std::size_t i) { return unified_[i]; }

  /// True when the window at `node` of the given family landed in the SoA
  /// arrays (diagnostics / tests).
  [[nodiscard]] bool fan_window_pooled(std::size_t node) const;
  [[nodiscard]] bool tdvfs_window_pooled(std::size_t node) const;

 private:
  /// Node-major SoA backing for one family's windows. Sized lazily from the
  /// family's first window config; later windows with a different geometry
  /// keep their inline storage (pooled[] = false).
  struct WindowPool {
    WindowConfig config{};
    bool sized = false;
    std::vector<double> level1;        // nodes × level1_size
    std::vector<double> level2;        // nodes × level2_size
    std::vector<std::size_t> fill;     // nodes
    std::vector<std::size_t> head;     // nodes
    std::vector<std::size_t> count;    // nodes
    std::vector<std::uint8_t> pooled;  // nodes — window rebound here?
  };

  void bind_window(WindowPool& pool, std::size_t node, TwoLevelWindow& window);

  std::size_t nodes_ = 0;
  const double* sensor_last_ = nullptr;
  std::vector<double> readings_;  // per-tick millidegree-quantized latch
  FixedSlab<DynamicFanController> fans_;
  FixedSlab<TdvfsDaemon> tdvfs_;
  FixedSlab<UnifiedController> unified_;
  WindowPool fan_pool_;    // fan windows (standalone + unified fan side)
  WindowPool tdvfs_pool_;  // tDVFS windows (standalone + unified dvfs side)
};

}  // namespace thermctl::core
