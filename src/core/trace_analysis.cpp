#include "core/trace_analysis.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace thermctl::core {

TraceAnalysis analyze_trace(std::span<const double> temps, double sample_dt_s,
                            const TraceAnalysisConfig& config) {
  THERMCTL_ASSERT(sample_dt_s > 0.0, "sample spacing must be positive");
  TraceAnalysis out;
  if (temps.empty()) {
    return out;
  }

  // Per-sample labels from the sliding classifier.
  ClassifierConfig cc = config.classifier;
  cc.sample_dt_s = sample_dt_s;
  PhaseClassifier classifier{cc};
  std::vector<ThermalBehaviour> labels(temps.size(), ThermalBehaviour::kStable);
  for (std::size_t i = 0; i < temps.size(); ++i) {
    classifier.add_sample(Celsius{temps[i]});
    labels[i] = classifier.classify().behaviour;
  }

  // Debounce: flip runs shorter than min_segment_samples to the preceding
  // label so brief classifier flicker does not fragment the segmentation.
  std::size_t run_start = 0;
  for (std::size_t i = 1; i <= labels.size(); ++i) {
    if (i == labels.size() || labels[i] != labels[run_start]) {
      if (i - run_start < config.min_segment_samples && run_start > 0) {
        for (std::size_t k = run_start; k < i; ++k) {
          labels[k] = labels[run_start - 1];
        }
      } else {
        run_start = i;
      }
      if (i < labels.size() && labels[i] != labels[run_start]) {
        run_start = i;
      }
    }
  }

  // Build segments from the (debounced) labels.
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= labels.size(); ++i) {
    if (i == labels.size() || labels[i] != labels[begin]) {
      BehaviourSegment seg;
      seg.behaviour = labels[begin];
      seg.begin = begin;
      seg.end = i;
      seg.start_s = static_cast<double>(begin) * sample_dt_s;
      seg.duration_s = static_cast<double>(i - begin) * sample_dt_s;
      seg.temp_begin = temps[begin];
      seg.temp_end = temps[i - 1];
      out.segments.push_back(seg);
      begin = i;
    }
  }

  // Aggregates.
  const double n = static_cast<double>(temps.size());
  for (const BehaviourSegment& seg : out.segments) {
    const double frac = static_cast<double>(seg.end - seg.begin) / n;
    switch (seg.behaviour) {
      case ThermalBehaviour::kStable:
        out.fraction_stable += frac;
        break;
      case ThermalBehaviour::kSudden:
        out.fraction_sudden += frac;
        out.trending_delta_c += seg.temp_end - seg.temp_begin;
        break;
      case ThermalBehaviour::kGradual:
        out.fraction_gradual += frac;
        out.trending_delta_c += seg.temp_end - seg.temp_begin;
        break;
      case ThermalBehaviour::kJitter:
        out.fraction_jitter += frac;
        break;
    }
  }
  return out;
}

std::string render_analysis(const TraceAnalysis& analysis) {
  std::ostringstream out;
  TextTable table{{"segment", "behaviour", "start (s)", "duration (s)", "temp (degC)"}};
  for (std::size_t i = 0; i < analysis.segments.size(); ++i) {
    const BehaviourSegment& seg = analysis.segments[i];
    // Append instead of `"#" + to_string(...)`: the rvalue operator+ hits
    // GCC 12's -Wrestrict false positive (PR 105329) under -Werror.
    std::string label{"#"};
    label += std::to_string(i + 1);
    table.add_row({std::move(label), std::string{to_string(seg.behaviour)},
                   format_number(seg.start_s, 1), format_number(seg.duration_s, 1),
                   format_number(seg.temp_begin, 1) + " -> " +
                       format_number(seg.temp_end, 1)});
  }
  out << table.render();
  out << "time share: stable " << format_number(analysis.fraction_stable * 100.0, 1)
      << "%, sudden " << format_number(analysis.fraction_sudden * 100.0, 1) << "%, gradual "
      << format_number(analysis.fraction_gradual * 100.0, 1) << "%, jitter "
      << format_number(analysis.fraction_jitter * 100.0, 1) << "%\n";
  out << "net trending movement: " << format_number(analysis.trending_delta_c, 1)
      << " degC (types I+II only, per the paper's observation)\n";
  return out.str();
}

}  // namespace thermctl::core
