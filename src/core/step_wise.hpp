// The Linux `step_wise` thermal governor — the present-day baseline.
//
// Implements the kernel governor's documented behaviour over our thermal-
// zone surface: for each passive trip point, compare the zone temperature
// and its trend against the trip;
//
//   temp >= trip and rising   → step every bound cooling device up by one
//   temp >= trip and stable   → hold
//   temp >= trip and cooling  → step down by one, but only after
//                               `cooling_consistency` consecutive falling
//                               samples (step-down hysteresis)
//   temp <  trip and falling  → step down by one (not below 0)
//
// Critical trips are reported (a real kernel shuts down; we leave the
// response to the platform's THERMTRIP model).
//
// Contrast with the paper's controller: step_wise reacts only to the sign
// of the trend once *past* the trip — no prediction, no policy parameter,
// no per-device proportionality. The ablation bench quantifies what Eq. (1)
// + the two-level window buy over it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "sysfs/thermal_zone.hpp"

namespace thermctl::core {

struct StepWiseConfig {
  /// Trend deadband: |ΔT| below this counts as stable (°C per sample).
  double trend_deadband_c = 0.05;
  /// Step-down hysteresis while still above the passive trip: the zone must
  /// have been falling for this many consecutive samples before one cooling
  /// step is released (a single cool sample never unwinds the response).
  int cooling_consistency = 3;
};

class StepWiseGovernor {
 public:
  StepWiseGovernor(sysfs::ThermalZone& zone, StepWiseConfig config = {});

  /// Governor tick (call at the sampling rate).
  void on_sample(SimTime now);

  [[nodiscard]] std::uint64_t steps_up() const { return steps_up_; }
  [[nodiscard]] std::uint64_t steps_down() const { return steps_down_; }
  [[nodiscard]] int critical_crossings() const { return critical_; }

 private:
  sysfs::ThermalZone& zone_;
  StepWiseConfig config_;
  double last_temp_ = 0.0;
  bool primed_ = false;  // last_temp_ holds a real sample
  int falling_streak_ = 0;
  bool critical_latched_ = false;
  std::uint64_t steps_up_ = 0;
  std::uint64_t steps_down_ = 0;
  int critical_ = 0;
};

}  // namespace thermctl::core
