// The user policy parameter Pp.
//
// §3.2.2: "Since Pp reflects a relative degree of proactive control, we use
// integers within the range of [Pmin, Pmax], i.e., [1, 100] to specify Pp.
// Controls using larger Pp tend to be cost-oriented, while ones using smaller
// Pp tend to be temperature-oriented." A single Pp applied across all
// techniques is the paper's mechanism for *unifying* in-band and out-of-band
// control.
#pragma once

#include "common/assert.hpp"

namespace thermctl::core {

struct PolicyParam {
  static constexpr int kMin = 1;
  static constexpr int kMax = 100;

  int value = 50;

  constexpr PolicyParam() = default;
  explicit PolicyParam(int v) : value(v) {
    THERMCTL_ASSERT(v >= kMin && v <= kMax, "Pp must be in [1, 100]");
  }

  /// Paper shorthand: aggressive (temperature-oriented) control.
  [[nodiscard]] static PolicyParam aggressive() { return PolicyParam{25}; }
  /// Moderate control (the paper's default in most experiments).
  [[nodiscard]] static PolicyParam moderate() { return PolicyParam{50}; }
  /// Weak (cost-oriented) control.
  [[nodiscard]] static PolicyParam weak() { return PolicyParam{75}; }
};

}  // namespace thermctl::core
