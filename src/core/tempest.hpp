// Tempest-style heat attribution (reference [28]: Cameron et al.,
// "Tempest: a portable tool to identify hot spots in parallel code" — the
// tool the paper's authors used to characterize their workloads, §3.1).
//
// Correlates the recorded program-activity series (compute / communicate /
// idle / barrier per rank per sample) with the simultaneous temperature
// series and attributes heating to activity classes:
//
//   heating contribution of class K = Σ max(ΔT, 0) over samples in K
//
// plus time share, average utilization and average temperature per class.
// The output answers the question the paper's §3.1 taxonomy depends on:
// *which parts of the parallel code make the die hot* — compute slabs heat,
// exchanges and barrier waits cool or hold.
#pragma once

#include <array>
#include <string>

#include "cluster/metrics.hpp"

namespace thermctl::core {

struct ActivityStats {
  double time_s = 0.0;
  double time_share = 0.0;     // of samples with a rank present
  double avg_util = 0.0;
  double avg_temp = 0.0;
  double heating_c = 0.0;      // sum of positive per-sample temperature deltas
  double cooling_c = 0.0;      // sum of negative deltas (magnitude)
};

struct TempestReport {
  /// Indexed by cluster::ActivityCode (kNone..kFinished).
  std::array<ActivityStats, 6> by_activity{};
  double total_heating_c = 0.0;
  /// Activity class contributing the most heating (the "hot spot").
  cluster::ActivityCode hottest = cluster::ActivityCode::kNone;
};

[[nodiscard]] std::string_view to_string(cluster::ActivityCode code);

/// Attributes one node's recorded run to activity classes. `record_dt_s` is
/// the recording period (RunResult times spacing).
[[nodiscard]] TempestReport attribute_heat(const cluster::NodeSeries& series,
                                           double record_dt_s);

/// Human-readable attribution table.
[[nodiscard]] std::string render_tempest(const TempestReport& report);

}  // namespace thermctl::core
