// Counter-augmented predictive fan control — the paper's §5 future-work
// item made concrete: "we are considering integration of hardware counter
// and data in our techniques to improve our prediction mechanisms."
//
// The two-level window predicts from temperature *history*, so it cannot
// react until heat has already moved the die — one to two rounds of lag
// behind a load step (die RC ≈ seconds). Package power, read from the RAPL
// energy counter, moves *instantly* when load changes. This controller
// augments the window's Δt with a power-derived feed-forward term:
//
//   Δt' = Δt_window + gain · ΔP_round · R_die
//
// where ΔP_round is the round-over-round change in average package power
// and R_die converts watts to the eventual steady-state degrees they will
// produce. A pure power step thus retargets the fan on the *same* round it
// happens, instead of after the die warms.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "core/control_array.hpp"
#include "core/fan_policy.hpp"
#include "core/mode_selector.hpp"
#include "core/two_level_window.hpp"
#include "sysfs/hwmon.hpp"
#include "sysfs/powercap.hpp"

namespace thermctl::core {

struct PredictiveFanConfig {
  FanControlConfig base{};
  /// Weight of the power feed-forward term (1.0 = trust the model fully).
  double power_gain = 0.8;
  /// Thermal resistance estimate converting ΔP to eventual Δt (K/W). The
  /// die-to-ambient total of the platform; a calibration input, as it would
  /// be on a real deployment.
  double r_thermal = 0.45;
  /// Ignore power deltas below this (meter noise floor, W).
  double power_deadband_w = 3.0;
  /// Reject a round's power sample entirely above this (W): wrap-corrected
  /// RAPL deltas can still be garbage after a counter reset or torn read,
  /// and a bogus spike must not reach the feed-forward term.
  double max_power_w = 400.0;
};

class PredictiveFanController {
 public:
  PredictiveFanController(sysfs::HwmonDevice& hwmon, sysfs::RaplDomain& rapl,
                          PredictiveFanConfig config);

  void on_sample(SimTime now);

  [[nodiscard]] std::size_t current_index() const { return index_; }
  [[nodiscard]] DutyCycle current_duty() const { return DutyCycle{array_.mode(index_)}; }
  [[nodiscard]] const std::vector<FanEvent>& events() const { return events_; }
  [[nodiscard]] std::uint64_t retarget_count() const { return retargets_; }
  /// Retargets attributable to the power feed-forward (counter) term.
  [[nodiscard]] std::uint64_t feedforward_count() const { return feedforward_; }

 private:
  sysfs::HwmonDevice& hwmon_;
  sysfs::RaplDomain& rapl_;
  PredictiveFanConfig config_;
  ThermalControlArray array_;
  ModeSelector selector_;
  TwoLevelWindow window_;
  std::size_t index_ = 0;
  bool initialized_ = false;
  std::uint64_t last_energy_uj_ = 0;
  SimTime last_round_time_{};
  double last_round_power_w_ = -1.0;
  std::vector<FanEvent> events_;
  std::uint64_t retargets_ = 0;
  std::uint64_t feedforward_ = 0;
};

}  // namespace thermctl::core
