#include "core/mode_selector.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace thermctl::core {

ModeSelector::ModeSelector(ModeSelectorConfig config, std::size_t array_size)
    : config_(config), array_size_(array_size) {
  THERMCTL_ASSERT(array_size_ >= 2, "mode selector needs at least two modes");
  THERMCTL_ASSERT(config_.tmax > config_.tmin, "t_max must exceed t_min");
  c_ = static_cast<double>(array_size_ - 1) /
       (config_.tmax.value() - config_.tmin.value());
}

ModeSelector::ApplyOutcome ModeSelector::apply_detail(std::size_t current, CelsiusDelta dt) const {
  ApplyOutcome out{current, static_cast<double>(current), false};
  if (!std::isfinite(dt.value())) {
    // A NaN/Inf variation carries no directional information; stay put
    // rather than feed UB into the double→long cast below.
    return out;
  }
  if (std::abs(dt.value()) < config_.deadband.value()) {
    return out;
  }
  // Truncation toward zero: a variation must be worth at least one full cell
  // before the mode moves. The cast is UB for values outside long's range,
  // so clamp first — no useful step ever exceeds the whole array anyway.
  const double limit = static_cast<double>(array_size_ - 1);
  const double scaled = c_ * dt.value();
  out.raw = static_cast<double>(current) + scaled;
  const double clamped_scaled = std::clamp(scaled, -limit, limit);
  out.clamped = clamped_scaled != scaled;
  const long step = static_cast<long>(clamped_scaled);
  long target = static_cast<long>(current) + step;
  if (target < 0) {
    target = 0;
    out.clamped = true;
  }
  const long max_index = static_cast<long>(array_size_) - 1;
  if (target > max_index) {
    target = max_index;
    out.clamped = true;
  }
  out.target = static_cast<std::size_t>(target);
  return out;
}

std::size_t ModeSelector::apply(std::size_t current, CelsiusDelta dt) const {
  return apply_detail(current, dt).target;
}

ModeDecision ModeSelector::decide(std::size_t current, const WindowRound& round) const {
  ModeDecision d;
  const ApplyOutcome level1 = apply_detail(current, round.level1_delta);
  d.target = level1.target;
  d.raw_target = level1.raw;
  d.delta_used = round.level1_delta;
  d.clamped = level1.clamped;
  if (d.target != current) {
    d.changed = true;
    return d;
  }
  if (round.level2_valid) {
    const ApplyOutcome level2 = apply_detail(current, round.level2_delta);
    if (level2.target != current) {
      d.target = level2.target;
      d.raw_target = level2.raw;
      d.delta_used = round.level2_delta;
      d.clamped = level2.clamped;
      d.changed = true;
      d.used_level2 = true;
    }
  }
  return d;
}

}  // namespace thermctl::core
