#include "core/mode_selector.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace thermctl::core {

ModeSelector::ModeSelector(ModeSelectorConfig config, std::size_t array_size)
    : config_(config), array_size_(array_size) {
  THERMCTL_ASSERT(array_size_ >= 2, "mode selector needs at least two modes");
  THERMCTL_ASSERT(config_.tmax > config_.tmin, "t_max must exceed t_min");
  c_ = static_cast<double>(array_size_ - 1) /
       (config_.tmax.value() - config_.tmin.value());
}

std::size_t ModeSelector::apply(std::size_t current, CelsiusDelta dt) const {
  if (!std::isfinite(dt.value())) {
    // A NaN/Inf variation carries no directional information; stay put
    // rather than feed UB into the double→long cast below.
    return current;
  }
  if (std::abs(dt.value()) < config_.deadband.value()) {
    return current;
  }
  // Truncation toward zero: a variation must be worth at least one full cell
  // before the mode moves. The cast is UB for values outside long's range,
  // so clamp first — no useful step ever exceeds the whole array anyway.
  const double limit = static_cast<double>(array_size_ - 1);
  const double raw = std::clamp(c_ * dt.value(), -limit, limit);
  const long step = static_cast<long>(raw);
  long target = static_cast<long>(current) + step;
  if (target < 0) {
    target = 0;
  }
  const long max_index = static_cast<long>(array_size_) - 1;
  if (target > max_index) {
    target = max_index;
  }
  return static_cast<std::size_t>(target);
}

ModeDecision ModeSelector::decide(std::size_t current, const WindowRound& round) const {
  ModeDecision d;
  d.target = apply(current, round.level1_delta);
  if (d.target != current) {
    d.changed = true;
    return d;
  }
  if (round.level2_valid) {
    d.target = apply(current, round.level2_delta);
    if (d.target != current) {
      d.changed = true;
      d.used_level2 = true;
    }
  }
  return d;
}

}  // namespace thermctl::core
