// Target-mode identification (§3.2.2, last paragraph).
//
// Given the current mode index i and the predicted temperature variation Δt
// from the two-level window, the target index is
//
//   i' = i + c·Δt,   c = (N − 1) / (t_max − t_min)
//
// where [t_min, t_max] bound the safe operating range. If the level-one
// variation Δt_L1 produces no index change, the level-two variation Δt_L2 is
// tried instead — that is how "gradual" trends eventually move the mode even
// when each individual round looks flat.
//
// The product c·Δt is truncated toward zero: sub-cell variations (sensor
// quantization jitter) must not flip modes, which is the window's
// jitter-rejection contract. An optional deadband widens that rejection.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "core/two_level_window.hpp"

namespace thermctl::core {

struct ModeSelectorConfig {
  /// Safe operating band (the paper's platform: 38–82 °C, the static fan
  /// curve's own Tmin/Tmax).
  Celsius tmin{38.0};
  Celsius tmax{82.0};
  /// Variations with |Δt| below this are ignored entirely.
  CelsiusDelta deadband{0.0};
};

struct ModeDecision {
  std::size_t target = 0;
  bool changed = false;
  bool used_level2 = false;  // the decision came from the gradual predictor
  /// Causality payload for decision tracing; does not affect control flow.
  /// The real-valued i + c·Δt before truncation/clamping, the Δt that
  /// produced `target`, and whether the raw value left [0, N−1].
  double raw_target = 0.0;
  CelsiusDelta delta_used{0.0};
  bool clamped = false;
};

class ModeSelector {
 public:
  ModeSelector(ModeSelectorConfig config, std::size_t array_size);

  /// The constant c = (N−1)/(t_max − t_min).
  [[nodiscard]] double c() const { return c_; }

  /// Applies i + c·Δt for a single Δt; clamps to [0, N−1].
  [[nodiscard]] std::size_t apply(std::size_t current, CelsiusDelta dt) const;

  /// Full §3.2.2 policy: try Δt_L1; if no change, try Δt_L2.
  [[nodiscard]] ModeDecision decide(std::size_t current, const WindowRound& round) const;

 private:
  struct ApplyOutcome {
    std::size_t target = 0;
    double raw = 0.0;  // real-valued i + c·Δt (i itself when Δt is rejected)
    bool clamped = false;
  };
  [[nodiscard]] ApplyOutcome apply_detail(std::size_t current, CelsiusDelta dt) const;

  ModeSelectorConfig config_;
  std::size_t array_size_;
  double c_;
};

}  // namespace thermctl::core
