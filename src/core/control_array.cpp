#include "core/control_array.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace thermctl::core {

ThermalControlArray::ThermalControlArray(std::vector<double> available_modes, std::size_t n,
                                         PolicyParam pp)
    : available_(std::move(available_modes)), cells_(n), pp_(pp) {
  THERMCTL_ASSERT(!available_.empty(), "need at least one physical mode");
  THERMCTL_ASSERT(n >= 2, "control array needs at least two cells");
  fill();
}

std::size_t ThermalControlArray::eq1_np(PolicyParam pp, std::size_t n) {
  const double num = static_cast<double>(pp.value - PolicyParam::kMin) *
                     static_cast<double>(n - 1);
  const double den = static_cast<double>(PolicyParam::kMax - PolicyParam::kMin);
  return static_cast<std::size_t>(std::floor(num / den)) + 1;
}

void ThermalControlArray::fill() {
  const std::size_t n = cells_.size();
  np_ = eq1_np(pp_, n);
  THERMCTL_ASSERT(np_ >= 1 && np_ <= n, "Eq. (1) produced an out-of-range n_p");

  const std::size_t m = available_.size();

  // Cells [n_p, N] (1-based) take the most effective mode g_N.
  for (std::size_t i = np_; i <= n; ++i) {
    cells_[i - 1] = available_.back();
  }

  // Cells [1, n_p−1] take an evenly extracted subset of the physical modes,
  // least effective first. The ratio (n_p−1)/m decides whether modes are
  // skipped (< 1) or duplicated (> 1, when N exceeds the physical count).
  const std::size_t ramp = np_ - 1;
  for (std::size_t i = 1; i <= ramp; ++i) {
    const std::size_t pick = (i - 1) * m / ramp;  // floor; < m since i-1 < ramp
    cells_[i - 1] = available_[pick];
  }
  // §3.2.2 boundary conditions: "The first array element g1 always stores
  // the least effective temperature control mode, the last element gN always
  // stores the most effective mode." The ramp guarantees this whenever
  // n_p >= 2; for n_p == 1 (maximally aggressive fills) cell 1 must be
  // forced back to the least effective mode.
  cells_.front() = available_.front();
}

double ThermalControlArray::mode(std::size_t i) const {
  THERMCTL_ASSERT(i < cells_.size(), "control-array index out of range");
  return cells_[i];
}

void ThermalControlArray::set_policy(PolicyParam pp) {
  pp_ = pp;
  fill();
}

std::size_t ThermalControlArray::index_of_nearest(double mode_value) const {
  std::size_t best = 0;
  double best_err = std::abs(cells_[0] - mode_value);
  for (std::size_t i = 1; i < cells_.size(); ++i) {
    const double err = std::abs(cells_[i] - mode_value);
    if (err < best_err) {
      best_err = err;
      best = i;
    }
  }
  return best;
}

}  // namespace thermctl::core
