// Sensor-health gating (fault-aware sensing for the control stack).
//
// The paper's controllers trust the lm-sensors reading unconditionally, but
// the sensing path they model (on-die diode → ADT7467 → i2c → hwmon) fails in
// practice: stuck-at values, garbage after bus glitches, dropouts. The
// monitor sits between the raw reading and the control law, classifying each
// sample (ok / non-finite / out-of-physical-range / stuck-at / stale) and
// maintaining a last-known-good value with an age.
//
// Isolated bad samples are bridged with the last good value; a *confirmed*
// failure — K consecutive identical readings (stuck-at) or a streak of
// rejected samples — latches `failed()` until the readings demonstrably
// recover for `recovery_samples` in a row. Controllers use the latched state
// to degrade gracefully (fail-safe cooling, DVFS hold) instead of steering on
// garbage, mirroring the explicit sensor-fault paths hardened firmware
// controllers (ControlPULP-style) carry.
#pragma once

#include <cstdint>
#include <optional>

#include "common/sim_time.hpp"
#include "common/units.hpp"

namespace thermctl::core {

/// Classification of one reading (staleness is queried separately — it is a
/// property of the sampling schedule, not of any individual sample).
enum class SensorState : std::uint8_t {
  kOk,
  kNonFinite,    // NaN/Inf — an impossible ADC output, reject outright
  kOutOfRange,   // finite but outside the physically plausible band
  kStuck,        // bit-identical for `stuck_samples` consecutive readings
};

struct SensorHealthConfig {
  /// Physically plausible band for a server-class die sensor. Anything
  /// outside is rejected before the control law sees it.
  Celsius min_plausible{-20.0};
  Celsius max_plausible{120.0};
  /// Consecutive bit-identical readings before the sensor counts as stuck.
  /// At 4 Hz with default quantization noise a healthy sensor toggles codes
  /// every few samples, so 24 (6 s) keeps false positives negligible while
  /// confirming a frozen sensor quickly. Noiseless simulations at a perfectly
  /// steady temperature are indistinguishable from a stuck sensor — raise
  /// this (or disable with 0) in that regime.
  int stuck_samples = 24;
  /// Consecutive rejected (non-finite / out-of-range) readings that confirm
  /// failure; isolated rejects are bridged with the last good value.
  int reject_samples = 4;
  /// Consecutive good readings required to clear a confirmed failure — the
  /// same consistency-count idea the tDVFS restore path uses.
  int recovery_samples = 8;
  /// No observation for this long ⇒ the held value is stale.
  Seconds stale_deadline{2.0};
};

struct SensorHealthStats {
  std::uint64_t samples = 0;
  std::uint64_t rejected = 0;          // non-finite + out-of-range readings
  std::uint64_t stuck_detections = 0;  // distinct stuck-at episodes
  std::uint64_t failures = 0;          // confirmed-failure entries
  std::uint64_t recoveries = 0;        // confirmed-failure exits
};

class SensorHealthMonitor {
 public:
  explicit SensorHealthMonitor(SensorHealthConfig config = {});

  /// Classifies one reading and updates the failure latch. Call once per
  /// sensor sample, in sample order.
  SensorState observe(SimTime now, Celsius reading);

  /// Latched confirmed-failure state (sticky until recovery).
  [[nodiscard]] bool failed() const { return failed_; }

  /// Last reading that classified ok, if any, and its age.
  [[nodiscard]] std::optional<Celsius> last_good() const { return last_good_; }
  [[nodiscard]] Seconds last_good_age(SimTime now) const;

  /// True when no reading has arrived within the stale deadline (or ever).
  [[nodiscard]] bool stale(SimTime now) const;

  [[nodiscard]] const SensorHealthStats& stats() const { return stats_; }
  [[nodiscard]] const SensorHealthConfig& config() const { return config_; }

  /// Drops all history and the failure latch (counters are kept).
  void reset();

 private:
  SensorHealthConfig config_;
  SensorHealthStats stats_;
  std::optional<double> last_raw_;  // previous plausible reading, for stuck runs
  int identical_run_ = 0;
  int reject_run_ = 0;
  int good_run_ = 0;
  bool failed_ = false;
  std::optional<Celsius> last_good_;
  std::optional<SimTime> last_good_time_;
  std::optional<SimTime> last_observe_time_;
};

}  // namespace thermctl::core
