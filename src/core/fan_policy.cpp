#include "core/fan_policy.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace thermctl::core {

std::vector<double> DynamicFanController::duty_modes(const FanControlConfig& config) {
  THERMCTL_ASSERT(config.max_duty.percent() > config.min_duty.percent(),
                  "max duty must exceed min duty");
  // "we discretize the continuous fan speed into ... distinct speeds from
  // duty cycle of 1% to 100%" — integer percent steps, ascending
  // effectiveness.
  std::vector<double> modes;
  const int lo = static_cast<int>(std::lround(config.min_duty.percent()));
  const int hi = static_cast<int>(std::lround(config.max_duty.percent()));
  modes.reserve(static_cast<std::size_t>(hi - lo + 1));
  for (int d = lo; d <= hi; ++d) {
    modes.push_back(static_cast<double>(d));
  }
  return modes;
}

DynamicFanController::DynamicFanController(sysfs::HwmonDevice& hwmon, FanControlConfig config)
    : hwmon_(hwmon),
      config_(config),
      array_(duty_modes(config), config.array_size, config.pp),
      selector_(config.selector, config.array_size),
      window_(config.window) {
  if (config_.fault_aware) {
    health_.emplace(config_.health);
  }
}

DutyCycle DynamicFanController::current_duty() const {
  return DutyCycle{array_.mode(index_)};
}

void DynamicFanController::set_policy(PolicyParam pp) {
  config_.pp = pp;
  array_.set_policy(pp);
  // Old history predicts behaviour under the old fill; drop it.
  window_.reset();
}

void DynamicFanController::on_sample(SimTime now) {
  on_sample_with(now, hwmon_.read_temperature());
}

void DynamicFanController::on_sample_with(SimTime now, Celsius reading) {
  // Keep the ring's clock fresh before any bus traffic so i2c retry events
  // emitted below land at this tick's sim time.
  THERMCTL_TRACE_SET_TIME(trace_, now.seconds());

  if (!initialized_) {
    // Take over from the BIOS/auto mode: claim manual PWM control, then
    // start at the bottom of the array; the window walks the index up as
    // the workload heats the die.
    index_ = 0;
    if (hwmon_.set_manual_mode()) {
      hwmon_.write_pwm(DutyCycle{array_.least_effective()});
    }
    initialized_ = true;
  }

  if (health_.has_value()) {
    const SensorState state = health_->observe(now, reading);
    const bool sample_ok = state == SensorState::kOk;
    if (!sample_ok || !last_sample_ok_) {
      // Non-OK classifications, plus the first OK closing a bad streak.
      THERMCTL_TRACE_EMIT(trace_,
                          (obs::TraceEvent{.type = obs::TraceEventType::kSensorClassified,
                                           .subsystem = obs::TraceSubsystem::kFan,
                                           .i0 = static_cast<std::int64_t>(state),
                                           .a = reading.value()}));
    }
    last_sample_ok_ = sample_ok;
    if (health_->failed()) {
      if (!failsafe_) {
        failsafe_ = true;
        failsafe_applied_ = false;
        ++failsafe_entries_;
        window_.reset();  // history under a dead sensor predicts nothing
        THERMCTL_TRACE_EMIT(trace_,
                            (obs::TraceEvent{.type = obs::TraceEventType::kFailsafeEnter,
                                             .subsystem = obs::TraceSubsystem::kFan,
                                             .a = array_.most_effective()}));
        THERMCTL_LOG_DEBUG("fanctl", "t=%.2fs sensor failed; fail-safe cooling", now.seconds());
      }
      // Blind on temperature ⇒ cool as hard as the array allows. Keep
      // retrying the write: the sensor fault may coincide with a bus fault,
      // and the whole point is to reach max cooling as soon as the bus lets
      // us.
      if (!failsafe_applied_ && hwmon_.write_pwm(DutyCycle{array_.most_effective()})) {
        failsafe_applied_ = true;
      }
      return;
    }
    if (failsafe_) {
      // Recovered: resume normal control from the fail-safe operating point;
      // the window machinery walks the duty back down as readings warrant.
      failsafe_ = false;
      ++failsafe_exits_;
      index_ = array_.size() - 1;
      window_.reset();
      THERMCTL_TRACE_EMIT(trace_, (obs::TraceEvent{.type = obs::TraceEventType::kFailsafeExit,
                                                   .subsystem = obs::TraceSubsystem::kFan,
                                                   .i0 = static_cast<std::int64_t>(index_)}));
      THERMCTL_LOG_DEBUG("fanctl", "t=%.2fs sensor recovered; resuming control", now.seconds());
    }
    if (state != SensorState::kOk) {
      // Isolated bad sample below the failure threshold: bridge with the
      // last good reading rather than steering on garbage.
      const auto good = health_->last_good();
      if (!good.has_value()) {
        return;
      }
      reading = *good;
    }
  }

  const auto round = window_.add_sample(reading);
  if (!round.has_value()) {
    return;
  }
  THERMCTL_TRACE_EMIT(
      trace_,
      (obs::TraceEvent{.type = obs::TraceEventType::kWindowRound,
                       .subsystem = obs::TraceSubsystem::kFan,
                       .flags = round->level2_valid ? obs::kTraceFlagLevel2Valid : obs::kTraceFlagNone,
                       .a = round->level1_average.value(),
                       .b = round->level1_delta.value(),
                       .c = round->level2_delta.value()}));

  const ModeDecision decision = selector_.decide(index_, *round);
  THERMCTL_TRACE_EMIT(trace_,
                      (obs::TraceEvent{.type = obs::TraceEventType::kModeDecision,
                                       .subsystem = obs::TraceSubsystem::kFan,
                                       .flags = (decision.changed ? obs::kTraceFlagChanged : 0u) |
                                                (decision.used_level2 ? obs::kTraceFlagUsedLevel2 : 0u) |
                                                (decision.clamped ? obs::kTraceFlagClamped : 0u),
                                       .i0 = static_cast<std::int64_t>(index_),
                                       .i1 = static_cast<std::int64_t>(decision.target),
                                       .a = decision.raw_target,
                                       .b = decision.delta_used.value(),
                                       .c = array_.mode(decision.target)}));
  if (!decision.changed) {
    return;
  }

  const double from = array_.mode(index_);
  const double to = array_.mode(decision.target);
  if (to == from) {
    // Distinct cells can hold the same duty (Eq. (1) duplicates); track the
    // index without touching the hardware.
    index_ = decision.target;
    return;
  }
  const bool write_ok = hwmon_.write_pwm(DutyCycle{to});
  THERMCTL_TRACE_EMIT(trace_,
                      (obs::TraceEvent{.type = obs::TraceEventType::kFanRetarget,
                                       .subsystem = obs::TraceSubsystem::kFan,
                                       .flags = (write_ok ? obs::kTraceFlagWriteOk : 0u) |
                                                (decision.used_level2 ? obs::kTraceFlagUsedLevel2 : 0u),
                                       .i0 = static_cast<std::int64_t>(decision.target),
                                       .a = from,
                                       .b = to}));
  if (write_ok) {
    // Commit the index only once the duty actually reached the chip —
    // otherwise a bus fault would desynchronize the controller's belief
    // from the hardware.
    index_ = decision.target;
    ++retargets_;
    events_.push_back(FanEvent{now.seconds(), from, to, decision.used_level2});
    THERMCTL_LOG_DEBUG("fanctl", "t=%.2fs duty %.0f%% -> %.0f%% (%s)", now.seconds(), from,
                       to, decision.used_level2 ? "gradual" : "sudden");
  }
}

StaticFanPolicy::StaticFanPolicy(sysfs::Adt7467Driver& driver, Curve curve, DutyCycle max_duty)
    : driver_(driver), curve_(curve), max_duty_(max_duty) {
  THERMCTL_ASSERT(curve.tmax > curve.tmin, "curve Tmax must exceed Tmin");
}

bool StaticFanPolicy::apply() {
  using sysfs::DriverStatus;
  if (driver_.configure_auto_curve(curve_.pwm_min, curve_.tmin, curve_.tmax - curve_.tmin) !=
      DriverStatus::kOk) {
    return false;
  }
  if (driver_.set_max_duty(max_duty_) != DriverStatus::kOk) {
    return false;
  }
  return driver_.set_automatic_mode() == DriverStatus::kOk;
}

ConstantFanPolicy::ConstantFanPolicy(sysfs::HwmonDevice& hwmon, DutyCycle duty)
    : hwmon_(hwmon), duty_(duty) {}

bool ConstantFanPolicy::apply() { return hwmon_.set_manual_mode() && hwmon_.write_pwm(duty_); }

}  // namespace thermctl::core
