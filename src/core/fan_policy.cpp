#include "core/fan_policy.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace thermctl::core {

std::vector<double> DynamicFanController::duty_modes(const FanControlConfig& config) {
  THERMCTL_ASSERT(config.max_duty.percent() > config.min_duty.percent(),
                  "max duty must exceed min duty");
  // "we discretize the continuous fan speed into ... distinct speeds from
  // duty cycle of 1% to 100%" — integer percent steps, ascending
  // effectiveness.
  std::vector<double> modes;
  const int lo = static_cast<int>(std::lround(config.min_duty.percent()));
  const int hi = static_cast<int>(std::lround(config.max_duty.percent()));
  modes.reserve(static_cast<std::size_t>(hi - lo + 1));
  for (int d = lo; d <= hi; ++d) {
    modes.push_back(static_cast<double>(d));
  }
  return modes;
}

DynamicFanController::DynamicFanController(sysfs::HwmonDevice& hwmon, FanControlConfig config)
    : hwmon_(hwmon),
      config_(config),
      array_(duty_modes(config), config.array_size, config.pp),
      selector_(config.selector, config.array_size),
      window_(config.window) {}

DutyCycle DynamicFanController::current_duty() const {
  return DutyCycle{array_.mode(index_)};
}

void DynamicFanController::set_policy(PolicyParam pp) {
  config_.pp = pp;
  array_.set_policy(pp);
  // Old history predicts behaviour under the old fill; drop it.
  window_.reset();
}

void DynamicFanController::on_sample(SimTime now) {
  const Celsius reading = hwmon_.read_temperature();

  if (!initialized_) {
    // Take over from the BIOS/auto mode: claim manual PWM control, then
    // start at the bottom of the array; the window walks the index up as
    // the workload heats the die.
    index_ = 0;
    if (hwmon_.set_manual_mode()) {
      hwmon_.write_pwm(DutyCycle{array_.least_effective()});
    }
    initialized_ = true;
  }

  const auto round = window_.add_sample(reading);
  if (!round.has_value()) {
    return;
  }

  const ModeDecision decision = selector_.decide(index_, *round);
  if (!decision.changed) {
    return;
  }

  const double from = array_.mode(index_);
  const double to = array_.mode(decision.target);
  index_ = decision.target;
  if (to != from) {
    if (hwmon_.write_pwm(DutyCycle{to})) {
      ++retargets_;
      events_.push_back(FanEvent{now.seconds(), from, to, decision.used_level2});
      THERMCTL_LOG_DEBUG("fanctl", "t=%.2fs duty %.0f%% -> %.0f%% (%s)", now.seconds(), from,
                         to, decision.used_level2 ? "gradual" : "sudden");
    }
  }
}

StaticFanPolicy::StaticFanPolicy(sysfs::Adt7467Driver& driver, Curve curve, DutyCycle max_duty)
    : driver_(driver), curve_(curve), max_duty_(max_duty) {
  THERMCTL_ASSERT(curve.tmax > curve.tmin, "curve Tmax must exceed Tmin");
}

bool StaticFanPolicy::apply() {
  using sysfs::DriverStatus;
  if (driver_.configure_auto_curve(curve_.pwm_min, curve_.tmin, curve_.tmax - curve_.tmin) !=
      DriverStatus::kOk) {
    return false;
  }
  if (driver_.set_max_duty(max_duty_) != DriverStatus::kOk) {
    return false;
  }
  return driver_.set_automatic_mode() == DriverStatus::kOk;
}

ConstantFanPolicy::ConstantFanPolicy(sysfs::HwmonDevice& hwmon, DutyCycle duty)
    : hwmon_(hwmon), duty_(duty) {}

bool ConstantFanPolicy::apply() { return hwmon_.set_manual_mode() && hwmon_.write_pwm(duty_); }

}  // namespace thermctl::core
