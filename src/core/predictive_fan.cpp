#include "core/predictive_fan.hpp"

#include <cmath>

#include "common/log.hpp"

namespace thermctl::core {

namespace {

std::vector<double> duty_modes(const FanControlConfig& config) {
  std::vector<double> modes;
  const int lo = static_cast<int>(std::lround(config.min_duty.percent()));
  const int hi = static_cast<int>(std::lround(config.max_duty.percent()));
  for (int d = lo; d <= hi; ++d) {
    modes.push_back(static_cast<double>(d));
  }
  return modes;
}

}  // namespace

PredictiveFanController::PredictiveFanController(sysfs::HwmonDevice& hwmon,
                                                 sysfs::RaplDomain& rapl,
                                                 PredictiveFanConfig config)
    : hwmon_(hwmon),
      rapl_(rapl),
      config_(config),
      array_(duty_modes(config.base), config.base.array_size, config.base.pp),
      selector_(config.base.selector, config.base.array_size),
      window_(config.base.window) {}

void PredictiveFanController::on_sample(SimTime now) {
  const Celsius reading = hwmon_.read_temperature();

  if (!initialized_) {
    index_ = 0;
    if (hwmon_.set_manual_mode()) {
      hwmon_.write_pwm(DutyCycle{array_.least_effective()});
    }
    last_energy_uj_ = rapl_.energy_uj();
    last_round_time_ = now;
    initialized_ = true;
  }

  const auto round = window_.add_sample(reading);
  if (!round.has_value()) {
    return;
  }

  // Average package power over the just-completed round, from RAPL deltas.
  // The energy counter wraps (kernel max_energy_range_uj semantics): a raw
  // `energy - last` subtraction across the wrap would read as an enormous
  // power spike and the feed-forward term would slam the fan to its most
  // effective mode on pure fiction.
  const std::uint64_t energy = rapl_.energy_uj();
  const double span_s = (now - last_round_time_).value();
  const std::uint64_t delta_uj =
      sysfs::RaplDomain::energy_delta_uj(last_energy_uj_, energy, rapl_.max_energy_range_uj());
  const double power_w = span_s > 0.0 ? static_cast<double>(delta_uj) * 1e-6 / span_s : 0.0;
  last_energy_uj_ = energy;
  last_round_time_ = now;

  // Clamp: even wrap-corrected, a counter glitch (domain reset, torn read)
  // can yield an implausible delta. Discard the sample instead of steering
  // on it — the power history simply skips a round.
  const bool power_valid = span_s > 0.0 && power_w <= config_.max_power_w;

  // Feed-forward: the round-over-round power change, converted to the
  // degrees it will eventually produce.
  double feedforward_dt = 0.0;
  if (power_valid) {
    if (last_round_power_w_ >= 0.0) {
      const double dp = power_w - last_round_power_w_;
      if (std::abs(dp) > config_.power_deadband_w) {
        feedforward_dt = config_.power_gain * dp * config_.r_thermal;
      }
    }
    last_round_power_w_ = power_w;
  }

  WindowRound augmented = *round;
  augmented.level1_delta = augmented.level1_delta + CelsiusDelta{feedforward_dt};

  const ModeDecision decision = selector_.decide(index_, augmented);
  // What history alone would have decided, for attribution.
  const bool history_would_move = selector_.decide(index_, *round).changed;
  if (!decision.changed) {
    return;
  }
  const double from = array_.mode(index_);
  const double to = array_.mode(decision.target);
  index_ = decision.target;
  if (to != from && hwmon_.write_pwm(DutyCycle{to})) {
    ++retargets_;
    if (feedforward_dt != 0.0 && !history_would_move) {
      ++feedforward_;  // the counter term alone caused this move
    }
    events_.push_back(FanEvent{now.seconds(), from, to, decision.used_level2});
    THERMCTL_LOG_DEBUG("predfan", "t=%.2fs duty %.0f%% -> %.0f%% (ff=%.2f degC)",
                       now.seconds(), from, to, feedforward_dt);
  }
}

}  // namespace thermctl::core
