// The thermal control array (§3.2.2) — the paper's unifying abstraction.
//
// Every thermal technique (fan PWM, DVFS, sleep states, …) is reduced to an
// array of N modes stored in non-descending order of cooling effectiveness.
// The user policy parameter Pp shapes how the array is filled via Eq. (1):
//
//   n_p = ⌊ (Pp − Pmin)(N − 1) / (Pmax − Pmin) ⌋ + 1
//
// Cells [n_p, N] (1-based) hold the most effective mode g_N; cells
// [1, n_p−1] hold a subset of the physically available modes *evenly
// extracted* from the full set. A small Pp ⇒ small n_p ⇒ most of the array
// is the strongest mode and a small index increment produces a large cooling
// increment (aggressive, temperature-oriented). A large Pp ⇒ a long gentle
// ramp (cost-oriented).
//
// Modes are doubles whose *meaning* belongs to the technique (duty percent
// for fans, GHz for DVFS); the array itself only promises the effectiveness
// ordering given at construction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/policy.hpp"

namespace thermctl::core {

class ThermalControlArray {
 public:
  /// `available_modes` must be ordered least → most effective (e.g. fan duty
  /// ascending, CPU frequency descending). `n` is the array bound N, which
  /// may exceed the number of physical modes (duplicates are then used).
  ThermalControlArray(std::vector<double> available_modes, std::size_t n, PolicyParam pp);

  /// Number of cells N.
  [[nodiscard]] std::size_t size() const { return cells_.size(); }

  /// Eq. (1)'s special index (1-based, as in the paper).
  [[nodiscard]] std::size_t np() const { return np_; }

  /// Mode at 0-based index i (cell i+1 in the paper's 1-based notation).
  [[nodiscard]] double mode(std::size_t i) const;

  /// The least / most effective modes (cells 1 and N).
  [[nodiscard]] double least_effective() const { return cells_.front(); }
  [[nodiscard]] double most_effective() const { return cells_.back(); }

  [[nodiscard]] std::span<const double> cells() const { return cells_; }
  [[nodiscard]] std::span<const double> available_modes() const { return available_; }
  [[nodiscard]] PolicyParam policy() const { return pp_; }

  /// Recomputes the fill for a new policy (user re-tunes Pp at runtime).
  void set_policy(PolicyParam pp);

  /// Index of the cell whose mode is nearest `mode_value` (first match).
  [[nodiscard]] std::size_t index_of_nearest(double mode_value) const;

  /// Eq. (1) by itself, exposed for tests and documentation.
  [[nodiscard]] static std::size_t eq1_np(PolicyParam pp, std::size_t n);

 private:
  void fill();

  std::vector<double> available_;
  std::vector<double> cells_;
  PolicyParam pp_;
  std::size_t np_ = 1;
};

}  // namespace thermctl::core
