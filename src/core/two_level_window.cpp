#include "core/two_level_window.hpp"

#include "common/assert.hpp"

namespace thermctl::core {

TwoLevelWindow::TwoLevelWindow(WindowConfig config)
    : config_(config),
      round_size_(config.level1_size),
      inline_cells_(config.level1_size + config.level2_size, 0.0) {
  THERMCTL_ASSERT(config_.level1_size >= 2 && config_.level1_size % 2 == 0,
                  "level-one window must be even-sized and >= 2");
  THERMCTL_ASSERT(config_.level2_size >= 2, "level-two FIFO must hold >= 2 rounds");
  level1_ = inline_cells_.data();
  level2_ = inline_cells_.data() + config_.level1_size;
}

void TwoLevelWindow::bind_state(const WindowSlots& slots) {
  for (std::size_t i = 0; i < config_.level1_size; ++i) {
    slots.level1[i] = level1_[i];
  }
  for (std::size_t i = 0; i < config_.level2_size; ++i) {
    slots.level2[i] = level2_[i];
  }
  *slots.level1_fill = *level1_fill_;
  *slots.level2_head = *level2_head_;
  *slots.level2_count = *level2_count_;
  level1_ = slots.level1;
  level2_ = slots.level2;
  level1_fill_ = slots.level1_fill;
  level2_head_ = slots.level2_head;
  level2_count_ = slots.level2_count;
}

void TwoLevelWindow::reset() {
  *level1_fill_ = 0;
  *level2_head_ = 0;
  *level2_count_ = 0;
  round_size_ = config_.level1_size - stagger_;
}

void TwoLevelWindow::stagger(std::size_t skip) {
  THERMCTL_ASSERT(skip < config_.level1_size, "stagger must be < level1_size");
  stagger_ = skip;
  round_size_ = config_.level1_size - skip;
}

Celsius TwoLevelWindow::level2_front() const {
  THERMCTL_ASSERT(*level2_count_ > 0, "level2_front() on empty FIFO");
  return Celsius{level2_[*level2_head_]};
}

Celsius TwoLevelWindow::level2_rear() const {
  THERMCTL_ASSERT(*level2_count_ > 0, "level2_rear() on empty FIFO");
  return Celsius{level2_[(*level2_head_ + *level2_count_ - 1) % config_.level2_size]};
}

std::optional<WindowRound> TwoLevelWindow::close_round() {
  // Round complete: Δt_L1 = sum(second half) − sum(first half). A staggered
  // first round closes short (round_size_ < level1_size); the halves and the
  // average then cover just the samples it actually saw.
  const std::size_t n = *level1_fill_;
  const std::size_t half = n / 2;
  double first = 0.0;
  double second = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = level1_[i];
    total += v;
    if (i < half) {
      first += v;
    } else {
      second += v;
    }
  }

  WindowRound round;
  round.level1_delta = CelsiusDelta{second - first};
  round.level1_average = Celsius{total / static_cast<double>(n)};

  // Push the round average into the FIFO (oldest evicted when full), then
  // read Δt_L2 = rear − front.
  const std::size_t cap = config_.level2_size;
  level2_[(*level2_head_ + *level2_count_) % cap] = round.level1_average.value();
  if (*level2_count_ == cap) {
    *level2_head_ = (*level2_head_ + 1) % cap;
  } else {
    ++*level2_count_;
  }
  if (*level2_count_ >= 2) {
    round.level2_delta = level2_rear() - level2_front();
    round.level2_valid = true;
  }

  *level1_fill_ = 0;  // "cells ... cleared out for next round of sampling"
  round_size_ = config_.level1_size;
  return round;
}

}  // namespace thermctl::core
