#include "core/two_level_window.hpp"

#include "common/assert.hpp"

namespace thermctl::core {

TwoLevelWindow::TwoLevelWindow(WindowConfig config)
    : config_(config), level2_(config.level2_size) {
  THERMCTL_ASSERT(config_.level1_size >= 2 && config_.level1_size % 2 == 0,
                  "level-one window must be even-sized and >= 2");
  THERMCTL_ASSERT(config_.level2_size >= 2, "level-two FIFO must hold >= 2 rounds");
  level1_.reserve(config_.level1_size);
}

void TwoLevelWindow::reset() {
  level1_.clear();
  level2_.clear();
}

std::optional<WindowRound> TwoLevelWindow::add_sample(Celsius t) {
  level1_.push_back(t);
  if (level1_.size() < config_.level1_size) {
    return std::nullopt;
  }

  // Round complete: Δt_L1 = sum(second half) − sum(first half).
  const std::size_t half = config_.level1_size / 2;
  double first = 0.0;
  double second = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < level1_.size(); ++i) {
    const double v = level1_[i].value();
    total += v;
    if (i < half) {
      first += v;
    } else {
      second += v;
    }
  }

  WindowRound round;
  round.level1_delta = CelsiusDelta{second - first};
  round.level1_average = Celsius{total / static_cast<double>(config_.level1_size)};

  // Push the round average into the FIFO, then read Δt_L2 = rear − front.
  level2_.push(round.level1_average);
  if (level2_.size() >= 2) {
    round.level2_delta = level2_.back() - level2_.front();
    round.level2_valid = true;
  }

  level1_.clear();  // "cells ... cleared out for next round of sampling"
  return round;
}

}  // namespace thermctl::core
