#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "obs/json_writer.hpp"

namespace thermctl::core {

namespace {

struct TimelineEntry {
  double time_s;
  std::string text;
};

std::string format_line(const char* fmt, double a, double b = 0.0, double c = 0.0) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, a, b, c);
  return std::string{buf};
}

}  // namespace

std::string render_verdict(const ExperimentResult& result) {
  std::ostringstream out;
  out << (result.run.app_completed ? "completed" : "horizon reached") << " in "
      << format_number(result.run.exec_time_s, 1) << " s; hottest die "
      << format_number(result.run.max_die_temp(), 1) << " degC; avg node power "
      << format_number(result.run.avg_power_w(), 1) << " W; "
      << result.run.total_freq_transitions() << " frequency transitions";
  return out.str();
}

std::string render_report(const ExperimentResult& result, const ReportOptions& options) {
  std::ostringstream out;
  out << render_verdict(result) << "\n";

  // Fault accounting, printed only when something actually happened so
  // clean-run reports are byte-identical to the pre-fault-handling format.
  const ControllerFaultStats& fs = result.fault_stats;
  const std::uint64_t i2c_retries = result.run.total_i2c_retries();
  const std::uint64_t i2c_bus_faults = result.run.total_i2c_bus_faults();
  const std::uint64_t i2c_exhausted = result.run.total_i2c_exhausted();
  if (i2c_retries + i2c_bus_faults + i2c_exhausted != 0) {
    out << "i2c faults: " << i2c_bus_faults << " bus faults, " << i2c_retries << " retries, "
        << i2c_exhausted << " transfers exhausted\n";
  }
  if (fs.sensor_rejected + fs.sensor_stuck_detections + fs.sensor_failures != 0) {
    out << "sensor health: " << fs.sensor_rejected << " rejected, "
        << fs.sensor_stuck_detections << " stuck detections, " << fs.sensor_failures
        << " failures, " << fs.sensor_recoveries << " recoveries\n";
  }
  if (fs.failsafe_entries + fs.dvfs_hold_entries != 0) {
    out << "degradation: " << fs.failsafe_entries << " fail-safe entries ("
        << fs.failsafe_exits << " exits), " << fs.dvfs_hold_entries << " DVFS holds ("
        << fs.dvfs_held_ticks << " held ticks)\n";
  }

  // Live-pipeline accounting, same only-when-it-happened policy.
  if (result.trace != nullptr && result.trace->total_dropped() != 0) {
    std::size_t nodes_dropping = 0;
    for (std::uint64_t d : result.trace->dropped_by_node()) {
      nodes_dropping += d != 0 ? 1 : 0;
    }
    out << "trace: " << result.trace->total_dropped() << " events dropped to ring wraps on "
        << nodes_dropping << " node(s)";
    if (result.spill.has_value()) {
      out << "; spiller lost " << result.spill->events_lost << " of "
          << result.spill->events_spilled + result.spill->events_lost << " spilled";
    }
    out << "\n";
  }
  if (!result.alerts.empty()) {
    std::size_t still_firing = 0;
    for (const obs::AlertEvent& e : result.alerts) {
      still_firing += e.cleared_at_s < 0.0 ? 1 : 0;
    }
    out << "alerts: " << result.alerts.size() << " episode(s), " << still_firing
        << " still firing at end of run\n";
  }

  if (options.per_node) {
    TextTable table{{"node", "avg die (degC)", "max die", "avg duty (%)", "avg power (W)",
                     "freq changes", "PROCHOT"}};
    for (std::size_t i = 0; i < result.run.summaries.size(); ++i) {
      const cluster::NodeSummary& s = result.run.summaries[i];
      table.add_row("node" + std::to_string(i),
                    {s.avg_die_temp, s.max_die_temp, s.avg_duty, s.avg_power_w,
                     static_cast<double>(s.freq_transitions),
                     static_cast<double>(s.prochot_events)},
                    1);
    }
    out << table.render();
  }

  if (options.events) {
    std::vector<TimelineEntry> timeline;
    for (std::size_t n = 0; n < result.tdvfs_events.size(); ++n) {
      for (const TdvfsEvent& e : result.tdvfs_events[n]) {
        timeline.push_back(
            {e.time_s, "node" + std::to_string(n) + " tDVFS " +
                           format_line("%.1f -> %.1f GHz", e.from_ghz, e.to_ghz)});
      }
    }
    for (std::size_t n = 0; n < result.fan_events.size(); ++n) {
      for (const FanEvent& e : result.fan_events[n]) {
        timeline.push_back(
            {e.time_s, "node" + std::to_string(n) + " fan " +
                           format_line("%.0f%% -> %.0f%% duty", e.from_duty, e.to_duty) +
                           (e.used_level2 ? " (gradual)" : "")});
      }
    }
    std::sort(timeline.begin(), timeline.end(),
              [](const TimelineEntry& a, const TimelineEntry& b) { return a.time_s < b.time_s; });

    if (!timeline.empty()) {
      out << "controller timeline";
      const std::size_t cap =
          options.max_events == 0 ? timeline.size() : options.max_events;
      if (timeline.size() > cap) {
        out << " (first " << cap << " of " << timeline.size() << ")";
      }
      out << ":\n";
      for (std::size_t i = 0; i < std::min(cap, timeline.size()); ++i) {
        out << "  t=" << format_number(timeline[i].time_s, 1) << "s  " << timeline[i].text
            << "\n";
      }
    }
  }
  return out.str();
}

void write_run_summary_json(const std::string& path, const std::string& name,
                            const ExperimentResult& result) {
  std::ofstream out{path, std::ios::trunc};
  if (!out) {
    throw std::runtime_error("run summary: cannot open " + path + " for writing");
  }
  obs::JsonWriter w{out};
  w.begin_object();
  w.field("schema", "thermctl-run-summary-v1");
  w.field("name", name);
  w.field("completed", result.run.app_completed);
  w.field("exec_time_s", result.run.exec_time_s);
  w.field("max_die_temp_c", result.run.max_die_temp());
  w.field("avg_node_power_w", result.run.avg_power_w());
  w.field("freq_transitions", static_cast<std::uint64_t>(result.run.total_freq_transitions()));
  w.field("first_dvfs_trigger_s", result.first_dvfs_trigger_s);

  w.begin_array("nodes");
  for (std::size_t i = 0; i < result.run.summaries.size(); ++i) {
    const cluster::NodeSummary& s = result.run.summaries[i];
    w.begin_object();
    w.field("node", static_cast<std::uint64_t>(i));
    w.field("avg_die_temp_c", s.avg_die_temp);
    w.field("max_die_temp_c", s.max_die_temp);
    w.field("avg_duty_pct", s.avg_duty);
    w.field("avg_power_w", s.avg_power_w);
    w.field("energy_j", s.energy_j);
    w.field("freq_transitions", static_cast<std::uint64_t>(s.freq_transitions));
    w.field("prochot_events", static_cast<std::uint64_t>(s.prochot_events));
    w.field("i2c_retries", s.i2c_retries);
    w.field("i2c_exhausted", s.i2c_exhausted);
    w.end_object();
  }
  w.end_array();

  const ControllerFaultStats& fs = result.fault_stats;
  w.begin_object("faults");
  w.field("failsafe_entries", fs.failsafe_entries);
  w.field("failsafe_exits", fs.failsafe_exits);
  w.field("dvfs_hold_entries", fs.dvfs_hold_entries);
  w.field("dvfs_held_ticks", fs.dvfs_held_ticks);
  w.field("sensor_rejected", fs.sensor_rejected);
  w.field("sensor_stuck_detections", fs.sensor_stuck_detections);
  w.field("sensor_failures", fs.sensor_failures);
  w.field("sensor_recoveries", fs.sensor_recoveries);
  w.end_object();

  if (result.trace != nullptr) {
    w.begin_object("trace");
    w.field("nodes", static_cast<std::uint64_t>(result.trace->node_count()));
    w.field("emitted", result.trace->total_emitted());
    w.field("dropped", result.trace->total_dropped());
    w.begin_array("dropped_by_node");
    for (std::uint64_t d : result.trace->dropped_by_node()) {
      w.value(d);
    }
    w.end_array();
    w.end_object();
  }

  if (result.spill.has_value()) {
    const obs::SpillStats& sp = *result.spill;
    w.begin_object("spill");
    w.field("drains", sp.drains);
    w.field("events_spilled", sp.events_spilled);
    w.field("events_lost", sp.events_lost);
    w.field("deferred_drains", sp.deferred_drains);
    w.begin_array("lost_by_node");
    for (std::uint64_t d : sp.lost_by_node) {
      w.value(d);
    }
    w.end_array();
    w.end_object();
  }

  if (result.rollup != nullptr) {
    const obs::FleetRollup& r = *result.rollup;
    w.begin_object("rollup");
    w.field("interval_s", r.config().interval_s);
    w.field("nodes_per_rack", static_cast<std::uint64_t>(r.config().nodes_per_rack));
    w.field("violation_temp_c", r.config().violation_temp_c);
    w.field("racks", static_cast<std::uint64_t>(r.rack_count()));
    w.field("samples_recorded", r.samples_recorded());
    w.begin_array("fleet");
    for (const obs::RollupSample& s : r.fleet_series()) {
      w.begin_object();
      w.field("t_s", s.t_s);
      w.field("max_temp_c", s.max_temp_c);
      w.field("avg_temp_c", s.avg_temp_c);
      w.field("power_w", s.power_w);
      w.field("capped_nodes", static_cast<std::uint64_t>(s.capped_nodes));
      w.field("autonomous_nodes", static_cast<std::uint64_t>(s.autonomous_nodes));
      w.field("violation_node_s", s.violation_node_s);
      w.field("plane_failsafe_entries", s.plane_failsafe_entries);
      w.field("sensor_rejected", s.sensor_rejected);
      w.end_object();
    }
    w.end_array();
    // Per-rack series stay O(racks · intervals); the summary keeps one
    // aggregate row per rack so fleet-scale files stay small.
    w.begin_array("racks_summary");
    for (std::size_t rack = 0; rack < r.rack_count(); ++rack) {
      const std::vector<obs::RollupSample>& series = r.rack_series(rack);
      double peak_temp = 0.0;
      double peak_power = 0.0;
      double violation_node_s = 0.0;
      for (const obs::RollupSample& s : series) {
        peak_temp = std::max(peak_temp, s.max_temp_c);
        peak_power = std::max(peak_power, s.power_w);
        violation_node_s += s.violation_node_s;
      }
      w.begin_object();
      w.field("rack", static_cast<std::uint64_t>(rack));
      w.field("samples", static_cast<std::uint64_t>(series.size()));
      w.field("peak_temp_c", peak_temp);
      w.field("peak_power_w", peak_power);
      w.field("violation_node_s", violation_node_s);
      w.field("last_capped_nodes",
              static_cast<std::uint64_t>(series.empty() ? 0 : series.back().capped_nodes));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (!result.alert_rules.empty()) {
    w.begin_object("alerts");
    w.begin_array("rules");
    for (const obs::AlertRule& rule : result.alert_rules) {
      w.begin_object();
      w.field("name", rule.name);
      w.field("kind", obs::to_string(rule.kind));
      w.field("threshold", rule.threshold);
      w.field("for_s", rule.for_s);
      w.field("per_rack", rule.per_rack);
      w.end_object();
    }
    w.end_array();
    w.begin_array("events");
    for (const obs::AlertEvent& e : result.alerts) {
      w.begin_object();
      w.field("rule", static_cast<std::uint64_t>(e.rule));
      w.field("name", e.name);
      w.field("rack", static_cast<std::int64_t>(e.rack));
      w.field("fired_at_s", e.fired_at_s);
      w.field("cleared_at_s", e.cleared_at_s);
      w.field("peak", e.peak);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (!result.metrics.empty()) {
    w.begin_object("metrics");
    w.begin_object("counters");
    for (const auto& [k, v] : result.metrics.counters) {
      w.field(k, v);
    }
    w.end_object();
    w.begin_object("gauges");
    for (const auto& [k, v] : result.metrics.gauges) {
      w.field(k, v);
    }
    w.end_object();
    w.begin_object("histograms");
    for (const auto& [k, h] : result.metrics.histograms) {
      w.begin_object(k);
      w.begin_array("bounds");
      for (double bound : h.bounds) {
        w.value(bound);
      }
      w.end_array();
      w.begin_array("counts");
      for (std::uint64_t c : h.counts) {
        w.value(c);
      }
      w.end_array();
      w.field("total", h.total);
      w.field("sum", h.sum);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  out << "\n";
  if (!out) {
    throw std::runtime_error("run summary: write failed for " + path);
  }
}

}  // namespace thermctl::core
