#include "core/idle_injection.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace thermctl::core {

std::vector<double> IdleInjectionController::clamp_modes(
    const sysfs::PowerClampDevice& clamp, const IdleInjectionConfig& config) {
  THERMCTL_ASSERT(config.percent_step >= 1, "percent step must be >= 1");
  std::vector<double> modes;
  const long max_state = clamp.max_state();
  for (long p = 0; p <= max_state; p += config.percent_step) {
    modes.push_back(static_cast<double>(p));
  }
  if (modes.back() < static_cast<double>(max_state)) {
    modes.push_back(static_cast<double>(max_state));
  }
  return modes;  // ascending idle percent = ascending cooling effectiveness
}

IdleInjectionController::IdleInjectionController(sysfs::HwmonDevice& hwmon,
                                                 sysfs::PowerClampDevice& clamp,
                                                 IdleInjectionConfig config)
    : hwmon_(hwmon),
      clamp_(clamp),
      config_(config),
      array_(clamp_modes(clamp, config), config.array_size, config.pp),
      selector_(config.selector, config.array_size),
      window_(config.window) {
  THERMCTL_ASSERT(config_.consistency_rounds >= 1, "consistency must be >= 1 round");
  THERMCTL_ASSERT(config_.release_rounds >= 1, "release consistency must be >= 1 round");
}

long IdleInjectionController::current_percent() const {
  return static_cast<long>(std::lround(array_.mode(index_)));
}

void IdleInjectionController::set_policy(PolicyParam pp) {
  config_.pp = pp;
  array_.set_policy(pp);
  window_.reset();
}

void IdleInjectionController::retarget(SimTime now, std::size_t target) {
  const long from = current_percent();
  index_ = target;
  const long to = current_percent();
  if (to == from) {
    return;
  }
  if (clamp_.set_cur_state(to)) {
    events_.push_back(ClampEvent{now.seconds(), from, to});
    THERMCTL_LOG_INFO("powerclamp", "t=%.2fs idle injection %ld%% -> %ld%%", now.seconds(),
                      from, to);
  }
}

void IdleInjectionController::on_sample(SimTime now) {
  const auto round = window_.add_sample(hwmon_.read_temperature());
  if (!round.has_value()) {
    return;
  }

  const double avg = round->level1_average.value();
  if (avg > config_.threshold.value()) {
    ++rounds_above_;
    rounds_below_ = 0;
  } else if (avg < config_.threshold.value() - config_.hysteresis.value()) {
    ++rounds_below_;
    rounds_above_ = 0;
  } else {
    rounds_above_ = 0;
    rounds_below_ = 0;
  }

  if (rounds_above_ >= config_.consistency_rounds) {
    // Like tDVFS: the floor of a triggered move is the next distinct mode.
    std::size_t next_distinct = index_;
    while (next_distinct + 1 < array_.size() &&
           array_.mode(next_distinct) == array_.mode(index_)) {
      ++next_distinct;
    }
    const ModeDecision d = selector_.decide(index_, *round);
    std::size_t target = d.changed ? std::max(d.target, next_distinct) : next_distinct;
    target = std::min(target, array_.size() - 1);
    retarget(now, target);
    rounds_above_ = 0;
  } else if (rounds_below_ >= config_.release_rounds && index_ != 0) {
    retarget(now, 0);  // release the clamp entirely
    rounds_below_ = 0;
  }
}

}  // namespace thermctl::core
