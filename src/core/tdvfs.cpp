#include "core/tdvfs.hpp"

#include <algorithm>
#include <sstream>
#include <string>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace thermctl::core {

TdvfsDaemon::TdvfsDaemon(sysfs::HwmonDevice& hwmon, sysfs::CpufreqPolicy& cpufreq,
                         TdvfsConfig config)
    : hwmon_(hwmon),
      cpufreq_(cpufreq),
      config_(config),
      array_(
          [&cpufreq] {
            // Frequencies ordered fastest (least effective at cooling) to
            // slowest (most effective).
            std::vector<double> modes;
            const double max_ghz = sysfs::CpufreqPolicy::from_khz(cpufreq.max_khz()).value();
            const double min_ghz = sysfs::CpufreqPolicy::from_khz(cpufreq.min_khz()).value();
            THERMCTL_ASSERT(max_ghz > 0.0 && min_ghz > 0.0, "cpufreq bounds unavailable");
            modes = cpufreq.available_ghz();
            std::sort(modes.begin(), modes.end(), std::greater<>());
            return modes;
          }(),
          config.array_size, config.pp),
      selector_(config.selector, config.array_size),
      window_(config.window) {
  THERMCTL_ASSERT(config_.consistency_rounds >= 1, "consistency must be >= 1 round");
  THERMCTL_ASSERT(config_.restore_rounds >= 1, "restore consistency must be >= 1 round");
  if (config_.fault_aware) {
    health_.emplace(config_.health);
  }
}

GigaHertz TdvfsDaemon::current_target() const { return GigaHertz{array_.mode(index_)}; }

void TdvfsDaemon::set_policy(PolicyParam pp) {
  config_.pp = pp;
  array_.set_policy(pp);
  window_.reset();
}

void TdvfsDaemon::retarget(SimTime now, std::size_t target) {
  const double from = array_.mode(index_);
  const double to = array_.mode(target);
  index_ = target;
  if (to == from) {
    return;
  }
  cpufreq_.set_khz(sysfs::CpufreqPolicy::to_khz(GigaHertz{to}));
  events_.push_back(TdvfsEvent{now.seconds(), from, to});
  THERMCTL_LOG_INFO("tdvfs", "t=%.2fs frequency %.1f GHz -> %.1f GHz", now.seconds(), from, to);
}

void TdvfsDaemon::on_sample(SimTime now) {
  Celsius reading = hwmon_.read_temperature();

  if (health_.has_value()) {
    const SensorState state = health_->observe(now, reading);
    if (health_->failed()) {
      if (!holding_) {
        holding_ = true;
        ++hold_entries_;
        // Forget the pre-failure trend; whatever consistency was building
        // was built on readings we now distrust.
        rounds_above_ = 0;
        rounds_below_ = 0;
        window_.reset();
        THERMCTL_LOG_INFO("tdvfs", "t=%.2fs sensor failed; holding %.1f GHz", now.seconds(),
                          array_.mode(index_));
      }
      ++held_ticks_;
      return;
    }
    if (holding_) {
      holding_ = false;
      THERMCTL_LOG_INFO("tdvfs", "t=%.2fs sensor recovered; resuming control", now.seconds());
    }
    if (state != SensorState::kOk) {
      const auto good = health_->last_good();
      if (!good.has_value()) {
        return;
      }
      reading = *good;
    }
  }

  const auto round = window_.add_sample(reading);
  if (!round.has_value()) {
    return;
  }

  const double avg = round->level1_average.value();
  if (avg > config_.threshold.value()) {
    ++rounds_above_;
    rounds_below_ = 0;
  } else if (avg < config_.threshold.value() - config_.hysteresis.value()) {
    ++rounds_below_;
    rounds_above_ = 0;
  } else {
    // Inside the hysteresis band: neither trend is "consistent".
    rounds_above_ = 0;
    rounds_below_ = 0;
  }

  if (rounds_above_ >= config_.consistency_rounds) {
    // Consistently hot: each trigger must actually change the operating
    // frequency, so the floor of the move is the next cell holding a
    // *distinct* mode (the Pp fill may duplicate modes across cells); the
    // window's prediction can push further (i + c·Δt).
    std::size_t next_distinct = index_;
    while (next_distinct + 1 < array_.size() &&
           array_.mode(next_distinct) == array_.mode(index_)) {
      ++next_distinct;
    }
    const ModeDecision d = selector_.decide(index_, *round);
    std::size_t target = d.changed ? std::max(d.target, next_distinct) : next_distinct;
    target = std::min(target, array_.size() - 1);
    retarget(now, target);
    rounds_above_ = 0;
  } else if (rounds_below_ >= config_.restore_rounds && index_ != 0) {
    // Consistently cool again: restore the original frequency outright.
    retarget(now, 0);
    rounds_below_ = 0;
  }
}

}  // namespace thermctl::core
