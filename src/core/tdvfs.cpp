#include "core/tdvfs.hpp"

#include <algorithm>
#include <sstream>
#include <string>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace thermctl::core {

TdvfsDaemon::TdvfsDaemon(sysfs::HwmonDevice& hwmon, sysfs::CpufreqPolicy& cpufreq,
                         TdvfsConfig config)
    : hwmon_(hwmon),
      cpufreq_(cpufreq),
      config_(config),
      array_(
          [&cpufreq] {
            // Frequencies ordered fastest (least effective at cooling) to
            // slowest (most effective).
            std::vector<double> modes;
            const double max_ghz = sysfs::CpufreqPolicy::from_khz(cpufreq.max_khz()).value();
            const double min_ghz = sysfs::CpufreqPolicy::from_khz(cpufreq.min_khz()).value();
            THERMCTL_ASSERT(max_ghz > 0.0 && min_ghz > 0.0, "cpufreq bounds unavailable");
            modes = cpufreq.available_ghz();
            std::sort(modes.begin(), modes.end(), std::greater<>());
            return modes;
          }(),
          config.array_size, config.pp),
      selector_(config.selector, config.array_size),
      window_(config.window) {
  THERMCTL_ASSERT(config_.consistency_rounds >= 1, "consistency must be >= 1 round");
  THERMCTL_ASSERT(config_.restore_rounds >= 1, "restore consistency must be >= 1 round");
  if (config_.fault_aware) {
    health_.emplace(config_.health);
  }
}

GigaHertz TdvfsDaemon::current_target() const { return GigaHertz{array_.mode(index_)}; }

void TdvfsDaemon::set_policy(PolicyParam pp) {
  config_.pp = pp;
  array_.set_policy(pp);
  window_.reset();
}

void TdvfsDaemon::retarget(SimTime now, std::size_t target, int consistency, bool used_level2,
                           bool is_restore) {
  const double from = array_.mode(index_);
  const double to = array_.mode(target);
  index_ = target;
  if (to == from) {
    return;
  }
  cpufreq_.set_khz(sysfs::CpufreqPolicy::to_khz(GigaHertz{to}));
  THERMCTL_TRACE_EMIT(trace_,
                      (obs::TraceEvent{.type = is_restore ? obs::TraceEventType::kTdvfsRestore
                                                          : obs::TraceEventType::kTdvfsTrigger,
                                       .subsystem = obs::TraceSubsystem::kTdvfs,
                                       .flags = used_level2 ? obs::kTraceFlagUsedLevel2
                                                            : obs::kTraceFlagNone,
                                       .i0 = consistency,
                                       .i1 = static_cast<std::int64_t>(target),
                                       .a = from,
                                       .b = to}));
  events_.push_back(TdvfsEvent{now.seconds(), from, to});
  THERMCTL_LOG_INFO("tdvfs", "t=%.2fs frequency %.1f GHz -> %.1f GHz", now.seconds(), from, to);
}

void TdvfsDaemon::on_sample(SimTime now) {
  on_sample_with(now, hwmon_.read_temperature());
}

void TdvfsDaemon::on_sample_with(SimTime now, Celsius reading) {
  THERMCTL_TRACE_SET_TIME(trace_, now.seconds());

  if (health_.has_value()) {
    const SensorState state = health_->observe(now, reading);
    const bool sample_ok = state == SensorState::kOk;
    if (!sample_ok || !last_sample_ok_) {
      // Non-OK classifications, plus the first OK closing a bad streak.
      THERMCTL_TRACE_EMIT(trace_,
                          (obs::TraceEvent{.type = obs::TraceEventType::kSensorClassified,
                                           .subsystem = obs::TraceSubsystem::kTdvfs,
                                           .i0 = static_cast<std::int64_t>(state),
                                           .a = reading.value()}));
    }
    last_sample_ok_ = sample_ok;
    if (health_->failed()) {
      if (!holding_) {
        holding_ = true;
        ++hold_entries_;
        // Forget the pre-failure trend; whatever consistency was building
        // was built on readings we now distrust.
        rounds_above_ = 0;
        rounds_below_ = 0;
        window_.reset();
        THERMCTL_TRACE_EMIT(trace_,
                            (obs::TraceEvent{.type = obs::TraceEventType::kDvfsHoldEnter,
                                             .subsystem = obs::TraceSubsystem::kTdvfs,
                                             .a = array_.mode(index_)}));
        THERMCTL_LOG_INFO("tdvfs", "t=%.2fs sensor failed; holding %.1f GHz", now.seconds(),
                          array_.mode(index_));
      }
      ++held_ticks_;
      return;
    }
    if (holding_) {
      holding_ = false;
      THERMCTL_TRACE_EMIT(trace_, (obs::TraceEvent{.type = obs::TraceEventType::kDvfsHoldExit,
                                                   .subsystem = obs::TraceSubsystem::kTdvfs}));
      THERMCTL_LOG_INFO("tdvfs", "t=%.2fs sensor recovered; resuming control", now.seconds());
    }
    if (state != SensorState::kOk) {
      const auto good = health_->last_good();
      if (!good.has_value()) {
        return;
      }
      reading = *good;
    }
  }

  const auto round = window_.add_sample(reading);
  if (!round.has_value()) {
    return;
  }
  THERMCTL_TRACE_EMIT(
      trace_,
      (obs::TraceEvent{.type = obs::TraceEventType::kWindowRound,
                       .subsystem = obs::TraceSubsystem::kTdvfs,
                       .flags = round->level2_valid ? obs::kTraceFlagLevel2Valid
                                                   : obs::kTraceFlagNone,
                       .a = round->level1_average.value(),
                       .b = round->level1_delta.value(),
                       .c = round->level2_delta.value()}));

  const double avg = round->level1_average.value();
  last_round_average_ = round->level1_average;
  if (avg > config_.threshold.value()) {
    ++rounds_above_;
    rounds_below_ = 0;
  } else if (avg < config_.threshold.value() - config_.hysteresis.value()) {
    ++rounds_below_;
    rounds_above_ = 0;
  } else {
    // Inside the hysteresis band: neither trend is "consistent".
    rounds_above_ = 0;
    rounds_below_ = 0;
  }

  if (rounds_above_ >= config_.consistency_rounds) {
    // Consistently hot: each trigger must actually change the operating
    // frequency, so the floor of the move is the next cell holding a
    // *distinct* mode (the Pp fill may duplicate modes across cells); the
    // window's prediction can push further (i + c·Δt).
    std::size_t next_distinct = index_;
    while (next_distinct + 1 < array_.size() &&
           array_.mode(next_distinct) == array_.mode(index_)) {
      ++next_distinct;
    }
    const ModeDecision d = selector_.decide(index_, *round);
    THERMCTL_TRACE_EMIT(trace_,
                        (obs::TraceEvent{.type = obs::TraceEventType::kModeDecision,
                                         .subsystem = obs::TraceSubsystem::kTdvfs,
                                         .flags = (d.changed ? obs::kTraceFlagChanged : 0u) |
                                                  (d.used_level2 ? obs::kTraceFlagUsedLevel2 : 0u) |
                                                  (d.clamped ? obs::kTraceFlagClamped : 0u),
                                         .i0 = static_cast<std::int64_t>(index_),
                                         .i1 = static_cast<std::int64_t>(d.target),
                                         .a = d.raw_target,
                                         .b = d.delta_used.value(),
                                         .c = array_.mode(d.target)}));
    std::size_t target = d.changed ? std::max(d.target, next_distinct) : next_distinct;
    target = std::min(target, array_.size() - 1);
    retarget(now, target, rounds_above_, d.changed && d.used_level2, /*is_restore=*/false);
    rounds_above_ = 0;
  } else if (rounds_below_ >= config_.restore_rounds && index_ != 0) {
    // Consistently cool again: restore the original frequency outright.
    retarget(now, 0, rounds_below_, /*used_level2=*/false, /*is_restore=*/true);
    rounds_below_ = 0;
  }
}

}  // namespace thermctl::core
