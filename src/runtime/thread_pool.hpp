// Fixed-size worker pool for the experiment runtime.
//
// Deliberately simple: a single FIFO queue drained by a fixed set of worker
// threads, no work stealing, no dynamic resizing. Sweep workloads are
// embarrassingly parallel and coarse-grained (each task is a whole Engine
// run lasting milliseconds to seconds), so one shared mutex-protected queue
// is nowhere near contention and keeps the scheduling order deterministic
// and easy to reason about: tasks start in submission order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace thermctl::runtime {

/// Number of workers to use when the caller does not care: the hardware
/// concurrency, with a floor of 1 (hardware_concurrency() may return 0).
[[nodiscard]] std::size_t default_thread_count();

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 picks default_thread_count()).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; workers pick tasks up in FIFO order.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;  // tasks currently executing
  bool stopping_ = false;
};

}  // namespace thermctl::runtime
