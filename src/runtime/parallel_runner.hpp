// Deterministic fan-out of independent jobs across a thread pool.
//
// The runner owns the scatter/gather protocol the experiment sweeps need:
// jobs are indexed 0..count-1, each job writes exactly its own result slot,
// and the returned vector is in input order regardless of which worker
// finished first — so a parallel sweep is observationally identical to the
// same sweep run serially, provided each job is self-contained (owns its
// cluster, engine and RNG state; see docs/performance.md).
//
// Exceptions thrown by a job are captured and rethrown on the calling
// thread, lowest job index first.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "runtime/thread_pool.hpp"

namespace thermctl::runtime {

class ParallelRunner {
 public:
  /// `threads` = 0 picks default_thread_count(). A single-thread runner is a
  /// valid degenerate case: everything runs serially on the one worker.
  explicit ParallelRunner(std::size_t threads = 0) : pool_(threads) {}

  [[nodiscard]] std::size_t thread_count() const { return pool_.size(); }

  /// Runs `job(i)` for i in [0, count) across the pool and returns the
  /// results in index order. Blocks until every job finished.
  template <typename R>
  std::vector<R> map(std::size_t count, const std::function<R(std::size_t)>& job) {
    THERMCTL_ASSERT(static_cast<bool>(job), "job must be callable");
    std::vector<std::optional<R>> slots(count);
    std::vector<std::exception_ptr> errors(count);
    for (std::size_t i = 0; i < count; ++i) {
      pool_.submit([&, i] {
        try {
          slots[i].emplace(job(i));
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool_.wait_idle();
    for (std::size_t i = 0; i < count; ++i) {
      if (errors[i]) {
        std::rethrow_exception(errors[i]);
      }
    }
    std::vector<R> results;
    results.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      results.push_back(std::move(*slots[i]));
    }
    return results;
  }

  /// Void-returning variant (side-effecting jobs that manage their own
  /// output slots).
  void for_each(std::size_t count, const std::function<void(std::size_t)>& job) {
    THERMCTL_ASSERT(static_cast<bool>(job), "job must be callable");
    std::vector<std::exception_ptr> errors(count);
    for (std::size_t i = 0; i < count; ++i) {
      pool_.submit([&, i] {
        try {
          job(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool_.wait_idle();
    for (std::size_t i = 0; i < count; ++i) {
      if (errors[i]) {
        std::rethrow_exception(errors[i]);
      }
    }
  }

 private:
  ThreadPool pool_;
};

}  // namespace thermctl::runtime
