#include "runtime/sweep.hpp"

#include "runtime/parallel_runner.hpp"

namespace thermctl::runtime {

std::vector<core::ExperimentResult> run_sweep(const std::vector<core::ExperimentConfig>& points,
                                              SweepOptions options) {
  ParallelRunner runner{options.threads};
  return runner.map<core::ExperimentResult>(
      points.size(), [&points](std::size_t i) { return core::run_experiment(points[i]); });
}

obs::MetricsSnapshot merged_sweep_metrics(const std::vector<core::ExperimentResult>& results) {
  obs::MetricsSnapshot merged;
  for (const core::ExperimentResult& r : results) {
    merged.merge(r.metrics);
  }
  return merged;
}

std::uint64_t sweep_point_seed(std::uint64_t base_seed, std::size_t point) {
  // splitmix64 of (base + point + 1): adjacent points land in unrelated
  // stream neighborhoods, and point 0 never collides with the base itself.
  std::uint64_t z = base_seed + (static_cast<std::uint64_t>(point) + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace thermctl::runtime
