// Parallel experiment sweeps.
//
// A sweep is a vector of ExperimentConfig points run independently; each
// point builds its own full rig (cluster -> engine -> controllers) inside
// the worker, so nothing is shared between concurrent runs except the
// process-wide logger (which is thread-safe). Results come back in point
// order and are bit-identical to running the same configs serially — the
// engine is deterministic and every stochastic input is derived from the
// point's own seed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"

namespace thermctl::runtime {

struct SweepOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serial (useful for
  /// equivalence checks and as the degenerate case on small machines).
  std::size_t threads = 0;
};

/// Runs every config and returns results in the same order.
[[nodiscard]] std::vector<core::ExperimentResult> run_sweep(
    const std::vector<core::ExperimentConfig>& points, SweepOptions options = {});

/// Folds every point's telemetry snapshot in point order — deterministic for
/// any worker count, because results (not workers) define the fold order.
/// Points that ran without telemetry contribute nothing.
[[nodiscard]] obs::MetricsSnapshot merged_sweep_metrics(
    const std::vector<core::ExperimentResult>& results);

/// Derives a decorrelated per-point seed from a sweep's base seed
/// (splitmix64 mix), for sweeps whose points should not share noise streams.
/// Paper-figure sweeps intentionally reuse one seed per point instead, so
/// policy is the only thing that differs between points.
[[nodiscard]] std::uint64_t sweep_point_seed(std::uint64_t base_seed, std::size_t point);

}  // namespace thermctl::runtime
