#include "runtime/thread_pool.hpp"

#include "common/assert.hpp"

namespace thermctl::runtime {

std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = threads == 0 ? default_thread_count() : threads;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock{mutex_};
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  THERMCTL_ASSERT(static_cast<bool>(task), "task must be callable");
  {
    std::unique_lock<std::mutex> lock{mutex_};
    THERMCTL_ASSERT(!stopping_, "pool is shutting down");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock{mutex_};
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock{mutex_};
      --active_;
      if (queue_.empty() && active_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace thermctl::runtime
