#include "daemon/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/assert.hpp"

namespace thermctl::daemon {

namespace {

[[nodiscard]] std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Full-buffer write on a blocking fd; false on a dead peer.
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void Daemon::LatestSink::on_exposition(double t_s, const std::string& text) {
  {
    std::lock_guard<std::mutex> lock{mu_};
    last_ = text;
  }
  if (chain_ != nullptr) {
    chain_->on_exposition(t_s, text);
  }
}

std::string Daemon::LatestSink::last() const {
  std::lock_guard<std::mutex> lock{mu_};
  return last_;
}

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)), sink_(config_.experiment.telemetry.live_sink) {
  THERMCTL_ASSERT(config_.watchdog_timeout_s > 0.0, "watchdog timeout must be positive");
  THERMCTL_ASSERT(config_.control_period_s > 0.0, "control period must be positive");
  current_pp_.store(config_.experiment.pp.value, std::memory_order_relaxed);
  current_budget_w_.store(config_.experiment.control_plane.plane.room_budget_w,
                          std::memory_order_relaxed);
}

Daemon::~Daemon() {
  // run() tears its threads down before returning; reaching here with live
  // threads means run() threw — make the teardown unconditional anyway.
  running_.store(false, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char b = 'x';
    (void)::write(wake_pipe_[1], &b, 1);
  }
  pause_cv_.notify_all();
  if (watchdog_thread_.joinable()) {
    watchdog_thread_.join();
  }
  if (server_thread_.joinable()) {
    server_thread_.join();
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

core::ExperimentResult Daemon::run() {
  core::ExperimentConfig cfg = config_.experiment;
  if (cfg.telemetry.rollup.enabled) {
    cfg.telemetry.live_sink = &sink_;  // chains to any user sink
  }
  auto user_observer = cfg.on_rig_built;
  cfg.on_rig_built = [this, user_observer](const core::RigView& rig) {
    on_rig_built(rig);
    if (user_observer) {
      user_observer(rig);
    }
  };

  running_.store(true, std::memory_order_release);
  shutdown_requested_.store(false, std::memory_order_release);

  if (!config_.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    THERMCTL_ASSERT(config_.socket_path.size() < sizeof(addr.sun_path),
                    "socket path too long for sun_path");
    std::memcpy(addr.sun_path, config_.socket_path.c_str(), config_.socket_path.size() + 1);
    ::unlink(config_.socket_path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    THERMCTL_ASSERT(listen_fd_ >= 0, "socket() failed");
    THERMCTL_ASSERT(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0,
                    "bind() failed on control socket path");
    THERMCTL_ASSERT(::listen(listen_fd_, config_.listen_backlog) == 0, "listen() failed");
    THERMCTL_ASSERT(::pipe(wake_pipe_) == 0, "pipe() failed");
    server_thread_ = std::thread{[this] { server_main(); }};
  }
  watchdog_thread_ = std::thread{[this] { watchdog_main(); }};

  core::ExperimentResult result = core::run_experiment(cfg);

  {
    std::lock_guard<std::mutex> lock{rig_mutex_};
    rig_active_.store(false, std::memory_order_release);
    rig_ = core::RigView{};
  }
  watchdog_armed_.store(false, std::memory_order_release);
  running_.store(false, std::memory_order_release);
  paused_.store(false, std::memory_order_release);
  pause_cv_.notify_all();
  if (wake_pipe_[1] >= 0) {
    const char b = 'x';
    (void)::write(wake_pipe_[1], &b, 1);
  }
  if (watchdog_thread_.joinable()) {
    watchdog_thread_.join();
  }
  if (server_thread_.joinable()) {
    server_thread_.join();
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  return result;
}

void Daemon::on_rig_built(const core::RigView& rig) {
  {
    std::lock_guard<std::mutex> lock{rig_mutex_};
    rig_ = rig;
    rig_active_.store(true, std::memory_order_release);
  }
  pet();
  watchdog_armed_.store(true, std::memory_order_release);
  rig.engine->add_periodic(Seconds{config_.control_period_s},
                           [this](SimTime now) { control_round(now); });
}

void Daemon::pet() { last_pet_ns_.store(steady_now_ns(), std::memory_order_release); }

void Daemon::control_round(SimTime now) {
  control_rounds_.fetch_add(1, std::memory_order_relaxed);
  pet();

  if (failsafe_active_.load(std::memory_order_acquire)) {
    // The deadman fired while this thread was wedged; we're live again, so
    // re-assert policy over the forced max-fan / released-cap state. Plane
    // caps and budgets re-establish themselves on the following rounds.
    std::lock_guard<std::mutex> lock{rig_mutex_};
    core::retune_policy(rig_, core::PolicyParam{current_pp_.load(std::memory_order_relaxed)});
    if (rig_.config != nullptr && rig_.config->fan == core::FanPolicyKind::kChipDefault) {
      for (std::size_t i = 0; i < rig_.cluster->size(); ++i) {
        (void)rig_.cluster->node(i).fan_driver().set_automatic_mode();
      }
    }
    failsafe_active_.store(false, std::memory_order_release);
    failsafe_recoveries_.fetch_add(1, std::memory_order_relaxed);
  }

  std::deque<Command> batch;
  {
    std::lock_guard<std::mutex> lock{cmd_mutex_};
    batch.swap(commands_);
  }
  for (const Command& cmd : batch) {
    apply(cmd, now);
    commands_applied_.fetch_add(1, std::memory_order_relaxed);
  }

  if (paused_.load(std::memory_order_acquire)) {
    // Operator freeze: simulated time stops here and the deadman is
    // disarmed for the duration (a pause is not a stall).
    watchdog_armed_.store(false, std::memory_order_release);
    std::unique_lock<std::mutex> lock{pause_mutex_};
    pause_cv_.wait(lock, [this] {
      return !paused_.load(std::memory_order_acquire) ||
             shutdown_requested_.load(std::memory_order_acquire);
    });
    pet();
    watchdog_armed_.store(true, std::memory_order_release);
  }

  update_status(now);
}

void Daemon::apply(const Command& cmd, SimTime now) {
  switch (cmd.kind) {
    case Command::Kind::kSetPolicy:
      current_pp_.store(cmd.pp, std::memory_order_relaxed);
      core::retune_policy(rig_, core::PolicyParam{cmd.pp});
      last_retune_apply_t_s_.store(now.seconds(), std::memory_order_relaxed);
      break;
    case Command::Kind::kSetBudget:
      current_budget_w_.store(cmd.value, std::memory_order_relaxed);
      if (rig_.plane != nullptr) {
        rig_.plane->set_room_budget(cmd.value);
      }
      last_retune_apply_t_s_.store(now.seconds(), std::memory_order_relaxed);
      break;
    case Command::Kind::kPause:
      paused_.store(true, std::memory_order_release);
      break;
    case Command::Kind::kResume:
      paused_.store(false, std::memory_order_release);
      pause_cv_.notify_all();
      break;
    case Command::Kind::kShutdown:
      shutdown_requested_.store(true, std::memory_order_release);
      rig_.engine->request_stop();
      break;
    case Command::Kind::kStall:
      // Test hook: wedge the control path for `value` wall milliseconds.
      std::this_thread::sleep_for(
          std::chrono::microseconds{static_cast<std::int64_t>(cmd.value * 1000.0)});
      break;
  }
}

void Daemon::update_status(SimTime now) {
  StatusSnapshot s;
  s.t_s = now.seconds();
  if (rig_.rollup != nullptr && !rig_.rollup->fleet_series().empty()) {
    const obs::RollupSample& fleet = rig_.rollup->fleet_series().back();
    s.fleet_members = fleet.members;
    s.fleet_max_temp_c = fleet.max_temp_c;
    s.fleet_power_w = fleet.power_w;
  }
  if (rig_.watchdog != nullptr) {
    s.alerts_firing = rig_.watchdog->firing_count();
  }
  if (rig_.spiller != nullptr) {
    const obs::SpillStats& spill = rig_.spiller->stats();
    s.spill_drains = spill.drains;
    s.spill_events = spill.events_spilled;
    s.spill_lost = spill.events_lost;
  }
  std::lock_guard<std::mutex> lock{status_mutex_};
  status_ = s;
}

void Daemon::watchdog_main() {
  const std::int64_t timeout_ns = static_cast<std::int64_t>(config_.watchdog_timeout_s * 1e9);
  // Poll at a quarter of the timeout, clamped to [5 ms, 100 ms]: fine enough
  // to fire promptly on short test timeouts, and a bounded join latency when
  // run() tears the thread down under a long production timeout.
  const auto interval = std::chrono::nanoseconds{
      std::clamp<std::int64_t>(timeout_ns / 4, 5'000'000, 100'000'000)};
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(interval);
    if (!running_.load(std::memory_order_acquire) ||
        !watchdog_armed_.load(std::memory_order_acquire) ||
        paused_.load(std::memory_order_acquire) ||
        failsafe_active_.load(std::memory_order_acquire)) {
      continue;
    }
    const std::int64_t age = steady_now_ns() - last_pet_ns_.load(std::memory_order_acquire);
    if (age > timeout_ns) {
      enter_failsafe();
    }
  }
}

void Daemon::enter_failsafe() {
  // Safe from this thread precisely because a missed pet means the engine
  // thread is wedged inside the daemon's serial control phase; rig_mutex_
  // additionally orders us against teardown and recovery.
  std::lock_guard<std::mutex> lock{rig_mutex_};
  if (!rig_active_.load(std::memory_order_acquire) ||
      failsafe_active_.load(std::memory_order_acquire)) {
    return;
  }
  for (std::size_t i = 0; i < rig_.cluster->size(); ++i) {
    sysfs::HwmonDevice& hwmon = rig_.cluster->node(i).hwmon();
    (void)hwmon.set_manual_mode();
    (void)hwmon.write_pwm(DutyCycle{100.0});
  }
  if (rig_.plane != nullptr) {
    rig_.plane->failsafe_release_all();
  }
  failsafe_active_.store(true, std::memory_order_release);
  failsafe_entries_.fetch_add(1, std::memory_order_relaxed);
}

void Daemon::request_engine_stop() {
  std::lock_guard<std::mutex> lock{rig_mutex_};
  if (rig_active_.load(std::memory_order_acquire) && rig_.engine != nullptr) {
    rig_.engine->request_stop();
  }
}

void Daemon::enqueue(Command cmd) {
  if (cmd.kind == Command::Kind::kSetPolicy || cmd.kind == Command::Kind::kSetBudget) {
    double t_s = 0.0;
    {
      std::lock_guard<std::mutex> lock{status_mutex_};
      t_s = status_.t_s;
    }
    last_retune_enqueue_t_s_.store(t_s, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock{cmd_mutex_};
    commands_.push_back(cmd);
  }
  commands_enqueued_.fetch_add(1, std::memory_order_relaxed);
}

void Daemon::post_set_policy(int pp) {
  THERMCTL_ASSERT(pp >= core::PolicyParam::kMin && pp <= core::PolicyParam::kMax,
                  "Pp must be in [1, 100]");
  enqueue(Command{Command::Kind::kSetPolicy, pp, 0.0});
}

void Daemon::post_set_budget(double watts) {
  THERMCTL_ASSERT(watts > 0.0, "budget must be positive");
  enqueue(Command{Command::Kind::kSetBudget, 0, watts});
}

void Daemon::post_pause() { enqueue(Command{Command::Kind::kPause, 0, 0.0}); }

void Daemon::post_resume() {
  // Applied directly: while paused the engine thread is blocked inside the
  // control round, so a queued resume would never drain.
  commands_enqueued_.fetch_add(1, std::memory_order_relaxed);
  paused_.store(false, std::memory_order_release);
  pause_cv_.notify_all();
  commands_applied_.fetch_add(1, std::memory_order_relaxed);
}

void Daemon::post_shutdown() {
  // Applied directly so a paused or wedged run still stops cleanly.
  commands_enqueued_.fetch_add(1, std::memory_order_relaxed);
  shutdown_requested_.store(true, std::memory_order_release);
  request_engine_stop();
  paused_.store(false, std::memory_order_release);
  pause_cv_.notify_all();
  commands_applied_.fetch_add(1, std::memory_order_relaxed);
}

void Daemon::post_stall(double ms) { enqueue(Command{Command::Kind::kStall, 0, ms}); }

std::string Daemon::metrics_text() const {
  std::string text = sink_.last();
  if (text.empty()) {
    return "# EOF\n";
  }
  return text;
}

std::string Daemon::status_line() const {
  StatusSnapshot s;
  {
    std::lock_guard<std::mutex> lock{status_mutex_};
    s = status_;
  }
  std::ostringstream out;
  out << "OK t_s=" << s.t_s << " paused=" << (paused() ? 1 : 0)
      << " failsafe=" << (in_failsafe() ? 1 : 0)
      << " rounds=" << control_rounds_.load(std::memory_order_relaxed)
      << " enq=" << commands_enqueued_.load(std::memory_order_relaxed)
      << " applied=" << commands_applied_.load(std::memory_order_relaxed)
      << " pp=" << current_pp_.load(std::memory_order_relaxed)
      << " budget_w=" << current_budget_w_.load(std::memory_order_relaxed)
      << " fleet_members=" << s.fleet_members << " fleet_max_temp_c=" << s.fleet_max_temp_c
      << " fleet_power_w=" << s.fleet_power_w << " alerts_firing=" << s.alerts_firing
      << " spill_drains=" << s.spill_drains << " spill_events=" << s.spill_events
      << " spill_lost=" << s.spill_lost
      << " retune_enq_t_s=" << last_retune_enqueue_t_s_.load(std::memory_order_relaxed)
      << " retune_apply_t_s=" << last_retune_apply_t_s_.load(std::memory_order_relaxed)
      << " failsafe_entries=" << failsafe_entries_.load(std::memory_order_relaxed)
      << " failsafe_recoveries=" << failsafe_recoveries_.load(std::memory_order_relaxed)
      << " clients=" << clients_accepted_.load(std::memory_order_relaxed)
      << " requests=" << requests_served_.load(std::memory_order_relaxed);
  return out.str();
}

std::string Daemon::handle_request(const std::string& line) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  std::string req = line;
  while (!req.empty() && (req.back() == '\r' || req.back() == '\n' || req.back() == ' ')) {
    req.pop_back();
  }
  if (req == "metrics" || req == "GET /metrics" || req.rfind("GET /metrics ", 0) == 0) {
    return metrics_text();
  }
  if (req == "status") {
    return status_line();
  }
  if (req.rfind("set-policy ", 0) == 0) {
    char* end = nullptr;
    const long pp = std::strtol(req.c_str() + 11, &end, 10);
    if (end == req.c_str() + 11 || *end != '\0' || pp < core::PolicyParam::kMin ||
        pp > core::PolicyParam::kMax) {
      return "ERR pp must be an integer in [1, 100]";
    }
    post_set_policy(static_cast<int>(pp));
    return "OK pp=" + std::to_string(pp);
  }
  if (req.rfind("set-budget ", 0) == 0) {
    char* end = nullptr;
    const double w = std::strtod(req.c_str() + 11, &end);
    if (end == req.c_str() + 11 || *end != '\0' || !(w > 0.0)) {
      return "ERR budget must be a positive number of watts";
    }
    post_set_budget(w);
    return "OK budget_w=" + std::to_string(w);
  }
  if (req == "pause") {
    post_pause();
    return "OK paused";
  }
  if (req == "resume") {
    post_resume();
    return "OK resumed";
  }
  if (req == "shutdown") {
    post_shutdown();
    return "OK shutting-down";
  }
  if (req == "ping") {
    return "OK pong";
  }
  if (req == "pet") {
    pet();
    return "OK pet";
  }
  if (req.rfind("stall ", 0) == 0) {
    char* end = nullptr;
    const double ms = std::strtod(req.c_str() + 6, &end);
    if (end == req.c_str() + 6 || *end != '\0' || !(ms >= 0.0)) {
      return "ERR stall wants milliseconds";
    }
    post_stall(ms);
    return "OK stall-armed";
  }
  return "ERR unknown-command (try: metrics status set-policy set-budget pause resume "
         "shutdown ping)";
}

void Daemon::server_main() {
  std::vector<pollfd> fds;
  std::vector<std::string> bufs;  // parallel to fds from index 2 on
  fds.push_back({wake_pipe_[0], POLLIN, 0});
  fds.push_back({listen_fd_, POLLIN, 0});

  auto drop_client = [&](std::size_t idx) {
    ::close(fds[idx].fd);
    fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(idx));
    bufs.erase(bufs.begin() + static_cast<std::ptrdiff_t>(idx - 2));
  };

  while (running_.load(std::memory_order_acquire)) {
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char scratch[64];
      (void)::read(wake_pipe_[0], scratch, sizeof scratch);
      if (!running_.load(std::memory_order_acquire)) {
        break;
      }
    }
    if ((fds[1].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client >= 0) {
        clients_accepted_.fetch_add(1, std::memory_order_relaxed);
        fds.push_back({client, POLLIN, 0});
        bufs.emplace_back();
      }
    }
    for (std::size_t i = 2; i < fds.size();) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        ++i;
        continue;
      }
      char chunk[4096];
      const ssize_t n = ::read(fds[i].fd, chunk, sizeof chunk);
      if (n <= 0) {
        drop_client(i);
        continue;
      }
      std::string& buf = bufs[i - 2];
      buf.append(chunk, static_cast<std::size_t>(n));
      bool dead = false;
      std::size_t nl = 0;
      while ((nl = buf.find('\n')) != std::string::npos) {
        std::string request = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        std::string response = handle_request(request);
        if (response.empty() || response.back() != '\n') {
          response.push_back('\n');
        }
        if (!write_all(fds[i].fd, response.data(), response.size())) {
          dead = true;
          break;
        }
      }
      if (dead) {
        drop_client(i);
      } else {
        ++i;
      }
    }
  }
  for (std::size_t i = 2; i < fds.size(); ++i) {
    ::close(fds[i].fd);
  }
}

DaemonStats Daemon::stats() const {
  DaemonStats s;
  s.control_rounds = control_rounds_.load(std::memory_order_relaxed);
  s.commands_enqueued = commands_enqueued_.load(std::memory_order_relaxed);
  s.commands_applied = commands_applied_.load(std::memory_order_relaxed);
  s.failsafe_entries = failsafe_entries_.load(std::memory_order_relaxed);
  s.failsafe_recoveries = failsafe_recoveries_.load(std::memory_order_relaxed);
  s.clients_accepted = clients_accepted_.load(std::memory_order_relaxed);
  s.requests_served = requests_served_.load(std::memory_order_relaxed);
  s.last_retune_enqueue_t_s = last_retune_enqueue_t_s_.load(std::memory_order_relaxed);
  s.last_retune_apply_t_s = last_retune_apply_t_s_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace thermctl::daemon
