// thermctld — command-line entry point for the control daemon.
//
//   thermctld --socket /tmp/thermctld.sock [--nodes N] [--nodes-per-rack N]
//             [--horizon S] [--pp P] [--budget W] [--watchdog-timeout S]
//             [--workers N] [--spill PATH] [--workload idle|cpu-burn|bt|lu]
//
// Builds a paper-platform fleet with the hierarchical control plane and the
// live telemetry pipeline on, then serves the socket API until `shutdown`
// (or SIGINT/SIGTERM) ends the run cleanly. See docs/observability.md for
// the protocol reference; tools/thermctld_client.py is a minimal client.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "daemon/daemon.hpp"

namespace {

thermctl::daemon::Daemon* g_daemon = nullptr;

void on_signal(int) {
  if (g_daemon != nullptr) {
    g_daemon->post_shutdown();
  }
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--nodes N] [--nodes-per-rack N] [--horizon S]\n"
               "          [--pp P] [--budget W] [--watchdog-timeout S] [--workers N]\n"
               "          [--spill PATH] [--workload idle|cpu-burn|bt|lu]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace thermctl;

  std::string socket_path;
  std::string spill_path;
  std::string workload = "cpu-burn";
  std::size_t nodes = 64;
  std::size_t nodes_per_rack = 16;
  double horizon_s = 600.0;
  int pp = core::PolicyParam::moderate().value;
  double budget_w = 0.0;
  double watchdog_timeout_s = 2.0;
  int workers = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--spill") {
      spill_path = next();
    } else if (arg == "--workload") {
      workload = next();
    } else if (arg == "--nodes") {
      nodes = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--nodes-per-rack") {
      nodes_per_rack = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--horizon") {
      horizon_s = std::strtod(next(), nullptr);
    } else if (arg == "--pp") {
      pp = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--budget") {
      budget_w = std::strtod(next(), nullptr);
    } else if (arg == "--watchdog-timeout") {
      watchdog_timeout_s = std::strtod(next(), nullptr);
    } else if (arg == "--workers") {
      workers = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else {
      usage(argv[0]);
    }
  }
  if (socket_path.empty() || nodes == 0 || nodes_per_rack == 0) {
    usage(argv[0]);
  }

  daemon::DaemonConfig dc;
  dc.socket_path = socket_path;
  dc.watchdog_timeout_s = watchdog_timeout_s;

  core::ExperimentConfig& cfg = dc.experiment;
  cfg = core::paper_platform();
  cfg.name = "thermctld";
  cfg.nodes = nodes;
  cfg.pp = core::PolicyParam{pp};
  cfg.dvfs = core::DvfsPolicyKind::kTdvfs;
  cfg.engine.horizon = Seconds{horizon_s};
  cfg.engine.workers = workers;
  if (workload == "idle") {
    cfg.workload = core::WorkloadKind::kIdle;
  } else if (workload == "cpu-burn") {
    cfg.workload = core::WorkloadKind::kCpuBurn;
    cfg.cpu_burn_duration = Seconds{horizon_s};
  } else if (workload == "bt") {
    cfg.workload = core::WorkloadKind::kNpbBt;
  } else if (workload == "lu") {
    cfg.workload = core::WorkloadKind::kNpbLu;
  } else {
    usage(argv[0]);
  }

  cfg.control_plane.enabled = true;
  cfg.control_plane.room_enabled = true;
  cfg.control_plane.plane.nodes_per_rack = nodes_per_rack;
  if (budget_w > 0.0) {
    cfg.control_plane.plane.room_budget_w = budget_w;
  }

  cfg.telemetry.metrics = true;
  cfg.telemetry.rollup.enabled = true;
  cfg.telemetry.rollup.interval_s = 1.0;
  cfg.telemetry.alerts.push_back(
      {"rack_max_temp_high", obs::AlertKind::kMaxTemp, 70.0, 3.0, true});
  cfg.telemetry.alerts.push_back(
      {"plane_failsafe", obs::AlertKind::kFailsafeRate, 1.0, 0.0, false});
  if (!spill_path.empty()) {
    cfg.telemetry.trace = true;
    cfg.telemetry.spill = true;
    cfg.telemetry.spill_path = spill_path;
  }

  daemon::Daemon daemon{dc};
  g_daemon = &daemon;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr, "thermctld: %zu nodes (%zu/rack), socket %s\n", nodes, nodes_per_rack,
               socket_path.c_str());
  const core::ExperimentResult result = daemon.run();
  g_daemon = nullptr;

  const daemon::DaemonStats stats = daemon.stats();
  std::fprintf(stderr,
               "thermctld: done t=%.1fs rounds=%llu cmds=%llu/%llu failsafe=%llu "
               "clients=%llu requests=%llu\n",
               result.run.exec_time_s,
               static_cast<unsigned long long>(stats.control_rounds),
               static_cast<unsigned long long>(stats.commands_applied),
               static_cast<unsigned long long>(stats.commands_enqueued),
               static_cast<unsigned long long>(stats.failsafe_entries),
               static_cast<unsigned long long>(stats.clients_accepted),
               static_cast<unsigned long long>(stats.requests_served));
  return 0;
}
