// thermctld — the long-lived thermal control daemon.
//
// Wraps one experiment rig in a service: Daemon::run() builds the rig
// through core::run_experiment, rides a control periodic on the engine
// thread, and (when a socket path is configured) serves a line-oriented
// control API over a UNIX-domain stream socket. One request per line,
// one response per request; every response is a single line except
// `metrics`, whose body is `# EOF`-framed exactly like the exposition:
//
//   GET /metrics | metrics   latest OpenMetrics exposition ("# EOF"-framed)
//   status                   one-line "OK key=value ..." fleet summary
//   set-policy <Pp>          hot Pp re-tune (1..100), applied next round
//   set-budget <W>           room power budget injection, applied next round
//   pause / resume           freeze / unfreeze simulated time
//   shutdown                 clean stop: spill finalize, result as usual
//   ping | pet               liveness probe (pet also feeds the keepalive)
//
// Commands mutate through a queue drained by the engine-thread control
// round, so actuation always happens on the thread that owns the rig and
// lands within one control period (default 0.25 s sim — well inside one
// L2 window) without ever dropping a round.
//
// Keepalive watchdog (the w83877f deadman pattern): the control round pets
// a wall-clock deadline every period; a watchdog thread fails safe when
// the pet stops — every fan forced to manual 100 % duty and every plane
// power cap released — and the next live control round recovers by
// re-applying the current policy. Failsafe actuation from the watchdog
// thread is safe precisely because a missed pet means the engine thread is
// wedged inside the daemon's serial phase, so nothing else touches the
// rig. While paused the deadman is disarmed (an operator freeze is not a
// stall), mirroring the chip's magic-close semantics.
//
// An empty socket_path runs the daemon dark (no server thread, no command
// source): the differential oracle's kDaemonPassiveVsEngine pairing
// asserts that configuration is bit-identical to a plain engine run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "core/experiment.hpp"
#include "obs/openmetrics.hpp"

namespace thermctl::daemon {

struct DaemonConfig {
  /// UNIX-domain stream socket path. Empty = dark mode: no server thread,
  /// in-process post_*() is the only command source.
  std::string socket_path;
  /// The experiment to run. telemetry.rollup should be enabled for a useful
  /// `metrics` / `status`; the daemon chains (never replaces) any live_sink
  /// and on_rig_built already configured.
  core::ExperimentConfig experiment;
  /// Wall-clock deadman timeout. The control round pets once per period of
  /// *simulated* time, which normally elapses far faster than wall time, so
  /// a couple of seconds is conservative; tests shrink it to force fires.
  double watchdog_timeout_s = 2.0;
  /// Sim-time cadence of the daemon control round.
  double control_period_s = 0.25;
  int listen_backlog = 64;
};

/// Monotonic service counters (all updated with relaxed atomics; read any
/// time, including after run() returns).
struct DaemonStats {
  std::uint64_t control_rounds = 0;
  std::uint64_t commands_enqueued = 0;
  std::uint64_t commands_applied = 0;
  std::uint64_t failsafe_entries = 0;
  std::uint64_t failsafe_recoveries = 0;
  std::uint64_t clients_accepted = 0;
  std::uint64_t requests_served = 0;
  /// Sim time of the most recent re-tune's (set-policy / set-budget)
  /// enqueue and engine-thread apply; -1 before any. The enqueue stamp is
  /// the last status-snapshot time — at most one control period behind the
  /// engine — so apply - enqueue over-estimates the true in-band latency.
  double last_retune_enqueue_t_s = -1.0;
  double last_retune_apply_t_s = -1.0;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Runs the experiment to completion (blocking) and returns its result.
  /// The socket server and watchdog live exactly as long as this call.
  core::ExperimentResult run();

  // In-process command injection — the same queue the socket commands take.
  // Safe from any thread while run() is live; a post after the run has
  // ended is accepted and never applied.
  void post_set_policy(int pp);
  void post_set_budget(double watts);
  void post_pause();
  void post_resume();
  void post_shutdown();
  /// Test hook: the next control round sleeps `ms` of wall time mid-round,
  /// simulating a wedged control path so the deadman can be exercised.
  void post_stall(double ms);

  /// One protocol request → one response (no trailing newline). Exposed so
  /// tests can drive the protocol without a socket.
  [[nodiscard]] std::string handle_request(const std::string& line);

  [[nodiscard]] DaemonStats stats() const;
  [[nodiscard]] bool in_failsafe() const {
    return failsafe_active_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool paused() const { return paused_.load(std::memory_order_acquire); }
  /// Latest OpenMetrics exposition ("# EOF\n"-terminated; bare "# EOF\n"
  /// before the first rollup interval or when rollup is off).
  [[nodiscard]] std::string metrics_text() const;
  /// The `status` response body.
  [[nodiscard]] std::string status_line() const;

 private:
  struct Command {
    enum class Kind : std::uint8_t { kSetPolicy, kSetBudget, kPause, kResume, kShutdown, kStall };
    Kind kind{};
    int pp = 0;
    double value = 0.0;
  };

  /// Thread-safe latest-exposition keeper; chains to the user's sink.
  class LatestSink : public obs::LiveTelemetrySink {
   public:
    explicit LatestSink(obs::LiveTelemetrySink* chain) : chain_(chain) {}
    void on_exposition(double t_s, const std::string& text) override;
    [[nodiscard]] std::string last() const;

   private:
    obs::LiveTelemetrySink* chain_;
    mutable std::mutex mu_;
    std::string last_;
  };

  void enqueue(Command cmd);
  void on_rig_built(const core::RigView& rig);
  void control_round(SimTime now);
  void apply(const Command& cmd, SimTime now);
  void pet();
  void watchdog_main();
  void enter_failsafe();
  void server_main();
  void update_status(SimTime now);
  void request_engine_stop();

  DaemonConfig config_;
  LatestSink sink_;

  // Rig handles, valid from on_rig_built until run_experiment returns;
  // rig_mutex_ orders off-engine-thread dereferences (shutdown, failsafe)
  // against the post-run teardown that nulls them.
  std::mutex rig_mutex_;
  core::RigView rig_{};
  std::atomic<bool> rig_active_{false};

  std::mutex cmd_mutex_;
  std::deque<Command> commands_;

  // Pause machinery: the control round blocks on pause_cv_ while paused.
  std::mutex pause_mutex_;
  std::condition_variable pause_cv_;
  std::atomic<bool> paused_{false};

  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};

  // Deadman: nanoseconds-since-steady-epoch of the last pet.
  std::atomic<std::int64_t> last_pet_ns_{0};
  std::atomic<bool> watchdog_armed_{false};
  std::atomic<bool> failsafe_active_{false};

  std::atomic<int> current_pp_{0};
  std::atomic<double> current_budget_w_{0.0};

  // Re-tune clock, both ends in sim seconds (see DaemonStats).
  std::atomic<double> last_retune_enqueue_t_s_{-1.0};
  std::atomic<double> last_retune_apply_t_s_{-1.0};

  // Fleet snapshot refreshed by the control round, served by `status`.
  mutable std::mutex status_mutex_;
  struct StatusSnapshot {
    double t_s = 0.0;
    std::uint32_t fleet_members = 0;
    double fleet_max_temp_c = 0.0;
    double fleet_power_w = 0.0;
    std::size_t alerts_firing = 0;
    std::uint64_t spill_drains = 0;
    std::uint64_t spill_events = 0;
    std::uint64_t spill_lost = 0;
  } status_;

  std::atomic<std::uint64_t> control_rounds_{0};
  std::atomic<std::uint64_t> commands_enqueued_{0};
  std::atomic<std::uint64_t> commands_applied_{0};
  std::atomic<std::uint64_t> failsafe_entries_{0};
  std::atomic<std::uint64_t> failsafe_recoveries_{0};
  std::atomic<std::uint64_t> clients_accepted_{0};
  std::atomic<std::uint64_t> requests_served_{0};

  std::thread watchdog_thread_;
  std::thread server_thread_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
};

}  // namespace thermctl::daemon
