// Experiment metrics: recorded series and run summaries.
//
// The engine samples every node at a fixed period (default 250 ms, matching
// the paper's plots, whose x axes are "sample points" at 4 Hz). A RunResult
// carries everything a bench needs to print its table/figure series and is
// cheap to copy around.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace thermctl::cluster {

/// Program-activity codes recorded per sample when an app rank runs on the
/// node (Tempest-style attribution input). Matches workload::PhaseKind plus
/// sentinels for "no rank here" and "rank finished".
enum class ActivityCode : int {
  kNone = 0,      // no app rank mapped to this node
  kCompute = 1,
  kCommunicate = 2,
  kIdlePhase = 3,
  kBarrier = 4,
  kFinished = 5,
};

/// One node's recorded series, index-aligned with RunResult::times.
struct NodeSeries {
  std::vector<double> die_temp;     // true die temperature, °C
  std::vector<double> sensor_temp;  // what the controller saw, °C
  std::vector<double> duty;         // fan PWM duty, %
  std::vector<double> rpm;          // fan speed
  std::vector<double> freq_ghz;     // OS-selected CPU frequency
  std::vector<double> power_w;      // wall power (meter reading)
  std::vector<double> util;         // workload utilization fraction
  std::vector<double> activity;     // ActivityCode as double (CSV-friendly)
};

/// Per-node aggregates computed at the end of a run.
struct NodeSummary {
  double avg_die_temp = 0.0;
  double max_die_temp = 0.0;
  double avg_duty = 0.0;
  double avg_power_w = 0.0;     // meter average (energy / time)
  double energy_j = 0.0;        // meter energy integral
  std::uint64_t freq_transitions = 0;
  int prochot_events = 0;
  double prochot_seconds = 0.0;
  double seconds_above_threshold = 0.0;  // die time above the run's threshold
  // Fault-event counters from the node's fan-driver i2c path (all zero on a
  // clean run).
  std::uint64_t i2c_retries = 0;
  std::uint64_t i2c_naks = 0;        // address NAKs seen (attempt outcomes)
  std::uint64_t i2c_bus_faults = 0;  // bus-fault attempt outcomes
  std::uint64_t i2c_exhausted = 0;   // transfers that failed after all retries
};

struct RunResult {
  std::vector<double> times;  // seconds, shared by all node series
  std::vector<NodeSeries> nodes;
  std::vector<NodeSummary> summaries;

  bool app_completed = false;
  double exec_time_s = 0.0;  // app completion time (or horizon if it ran out)

  /// Cluster averages across nodes.
  [[nodiscard]] double avg_power_w() const;
  [[nodiscard]] double avg_die_temp() const;
  [[nodiscard]] double max_die_temp() const;
  [[nodiscard]] double avg_duty() const;
  [[nodiscard]] std::uint64_t total_freq_transitions() const;

  /// Cluster totals of the per-node i2c fault counters.
  [[nodiscard]] std::uint64_t total_i2c_retries() const;
  [[nodiscard]] std::uint64_t total_i2c_bus_faults() const;
  [[nodiscard]] std::uint64_t total_i2c_exhausted() const;

  /// Power-delay product, the paper's combined metric (Table 1): average
  /// per-node wall power × execution time.
  [[nodiscard]] double power_delay_product() const { return avg_power_w() * exec_time_s; }

  /// Writes `times` plus the chosen per-node field for all nodes as CSV.
  void write_csv(const std::string& path, const std::string& field) const;
};

/// Accumulates samples during a run; the engine owns one.
///
/// Hot-path layout: samples are staged column-major — eight flat arrays, one
/// per recorded field, appended a fleet-row at a time — because the recording
/// loop visits every node each round. Appending into per-node series here
/// would touch 8 x node_count scattered heap buffers per round (at 100k
/// nodes that is ~800k cache misses every record tick, and it shows up as
/// ~30% of a fleet-ladder run). The per-node `RunResult::nodes` shape that
/// everything downstream consumes is materialized once, by a blocked
/// transpose, the first time result() is read — same values, same order,
/// bit-identical output.
class MetricsRecorder {
 public:
  explicit MetricsRecorder(std::size_t node_count);

  void sample(double t_seconds, std::size_t node, double die, double sensor, double duty,
              double rpm, double freq_ghz, double power_w, double util,
              ActivityCode activity = ActivityCode::kNone);
  /// Appends the shared timestamp (once per sampling round).
  void stamp(double t_seconds);

  /// Pre-sizes the staging columns for `samples` sampling rounds so recording
  /// never reallocates mid-run. A hint: recording past it still works.
  void reserve(std::size_t samples);

  [[nodiscard]] RunResult& result() {
    flush_columns();
    return result_;
  }
  [[nodiscard]] const RunResult& result() const {
    flush_columns();
    return result_;
  }

 private:
  /// Drains the staged columns into result_.nodes (append, so recording may
  /// continue afterwards and a later flush picks up where this one left off).
  void flush_columns() const;

  static constexpr std::size_t kFieldCount = 8;

  std::size_t node_count_ = 0;
  std::size_t next_node_ = 0;  // enforced node-major arrival order
  // Staging is logically part of building result_, so a const result() read
  // may drain it.
  mutable std::array<std::vector<double>, kFieldCount> cols_;
  mutable RunResult result_;
};

}  // namespace thermctl::cluster
