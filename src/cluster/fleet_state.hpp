// Fleet-wide structure-of-arrays node state.
//
// One rack of N simulated machines used to mean N pointer-chasing object
// graphs: every node owned its own RcNetwork, its fan kept its rotor state,
// its sensor kept its sample-and-hold register. FleetState hoists the hot
// per-node state into contiguous arrays owned in one place:
//
//   * temperatures, power inputs, edge conductances, capacitances — inside an
//     RcBatch built from the shared package wiring (capacitances and
//     adjacency stored once, per-node state in node-major rows);
//   * fan duty / fan RPM — flat arrays the FanDevices bind onto;
//   * last sensor readings — a flat array the ThermalSensors bind onto.
//
// Node/Cluster keep their exact APIs: each Node's PackageModel becomes a view
// onto one batch column, and its FanDevice/ThermalSensor rebind their state
// pointers into the arrays. Controllers, sysfs, and tests are untouched, and
// trajectories stay bit-identical to the per-node layout (RcBatch contract).
// The payoff is the engine's hot loop: one vectorized RcBatch::step_range
// call advances the whole fleet's thermals, and shards get contiguous slices.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"
#include "thermal/package_model.hpp"
#include "thermal/rc_batch.hpp"

namespace thermctl::cluster {

class FleetState {
 public:
  /// Allocates SoA state for `count` nodes sharing one package design.
  FleetState(const thermal::PackageParams& package, std::size_t count);

  [[nodiscard]] std::size_t size() const { return batch_.instance_count(); }

  /// The batched RC solver all fleet-backed PackageModels view into.
  [[nodiscard]] thermal::RcBatch& batch() { return batch_; }
  [[nodiscard]] const thermal::RcBatch& batch() const { return batch_; }
  /// Handles into the shared die—heatsink—ambient wiring.
  [[nodiscard]] const thermal::PackageWiring& wiring() const { return wiring_; }

  // ---- SoA slots device objects bind their state onto ----
  [[nodiscard]] double* fan_duty_slot(std::size_t i) { return &at(fan_duty_pct_, i); }
  [[nodiscard]] double* fan_rpm_slot(std::size_t i) { return &at(fan_rpm_, i); }
  [[nodiscard]] double* sensor_last_slot(std::size_t i) { return &at(sensor_last_, i); }

  /// Heap footprint of the fleet's hot state (bytes): the RC batch plus the
  /// device-state arrays. The scaling benchmark divides this by node count.
  [[nodiscard]] std::size_t memory_bytes() const {
    return batch_.memory_bytes() +
           (fan_duty_pct_.capacity() + fan_rpm_.capacity() + sensor_last_.capacity()) *
               sizeof(double);
  }

 private:
  [[nodiscard]] double& at(std::vector<double>& v, std::size_t i) {
    THERMCTL_ASSERT(i < v.size(), "fleet slot out of range");
    return v[i];
  }

  thermal::PackageWiring wiring_{};
  thermal::RcBatch batch_;
  std::vector<double> fan_duty_pct_;
  std::vector<double> fan_rpm_;
  std::vector<double> sensor_last_;
};

}  // namespace thermctl::cluster
