// Fleet-wide structure-of-arrays node state.
//
// One rack of N simulated machines used to mean N pointer-chasing object
// graphs: every node owned its own RcNetwork, its fan kept its rotor state,
// its sensor kept its sample-and-hold register. FleetState hoists the hot
// per-node state into contiguous arrays owned in one place:
//
//   * temperatures, power inputs, edge conductances, capacitances — inside an
//     RcBatch built from the shared package wiring (capacitances and
//     adjacency stored once, per-node state in node-major rows);
//   * fan duty / RPM / stuck flag — flat arrays the FanDevices bind onto;
//   * last sensor readings — a flat array the ThermalSensors bind onto;
//   * the CPU operating point and counter block (CpuDevice::bind_state);
//   * the fan chip's latched measurement registers (Adt7467::bind_state);
//   * meter integrals, jiffy counters, protection state, sampling schedules —
//     everything Node::step_pre/post_thermal touches every physics step.
//
// Node/Cluster keep their exact APIs: each Node's PackageModel becomes a view
// onto one batch column, and its devices rebind their state pointers into the
// arrays. Controllers, sysfs, and tests are untouched, and trajectories stay
// bit-identical to the per-node layout (RcBatch contract). The payoff is the
// engine's hot loop: one vectorized RcBatch::step_range call advances the
// whole fleet's thermals, and FleetSweep runs the per-node device/OS phases
// as contiguous array passes instead of N object-graph walks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/sim_time.hpp"
#include "hw/adt7467.hpp"
#include "hw/cpu_device.hpp"
#include "thermal/package_model.hpp"
#include "thermal/rc_batch.hpp"

namespace thermctl::cluster {

class FleetState {
 public:
  /// Allocates SoA state for `count` nodes sharing one package design.
  FleetState(const thermal::PackageParams& package, std::size_t count);

  [[nodiscard]] std::size_t size() const { return batch_.instance_count(); }

  /// The batched RC solver all fleet-backed PackageModels view into.
  [[nodiscard]] thermal::RcBatch& batch() { return batch_; }
  [[nodiscard]] const thermal::RcBatch& batch() const { return batch_; }
  /// Handles into the shared die—heatsink—ambient wiring.
  [[nodiscard]] const thermal::PackageWiring& wiring() const { return wiring_; }

  // ---- SoA slots device objects bind their state onto ----
  [[nodiscard]] double* fan_duty_slot(std::size_t i) { return &at(fan_duty_pct_, i); }
  [[nodiscard]] double* fan_rpm_slot(std::size_t i) { return &at(fan_rpm_, i); }
  [[nodiscard]] std::uint8_t* fan_stuck_slot(std::size_t i) { return &at(fan_stuck_, i); }
  [[nodiscard]] double* sensor_last_slot(std::size_t i) { return &at(sensor_last_, i); }

  [[nodiscard]] hw::CpuStateSlots cpu_slots(std::size_t i) {
    check(i);
    hw::CpuStateSlots s;
    s.pstate = &cpu_pstate_[i];
    s.utilization = &cpu_util_[i];
    s.die_temperature = &cpu_die_temp_[i];
    s.power_cache = &cpu_power_cache_[i];
    s.power_valid = &cpu_power_valid_[i];
    s.power_gen = &cpu_power_gen_[i];
    s.throttled = &cpu_throttled_[i];
    s.transitions = &cpu_transitions_[i];
    s.aperf = &cpu_aperf_[i];
    s.mperf = &cpu_mperf_[i];
    s.energy_uj = &cpu_energy_uj_[i];
    s.aperf_frac = &cpu_aperf_frac_[i];
    s.mperf_frac = &cpu_mperf_frac_[i];
    s.energy_frac = &cpu_energy_frac_[i];
    s.inj_dynamic_factor = &inj_dyn_factor_[i];
    s.inj_leakage_factor = &inj_leak_factor_[i];
    s.inj_throughput_factor = &inj_thr_factor_[i];
    s.inj_generation = &inj_generation_[i];
    return s;
  }

  [[nodiscard]] hw::ChipStateSlots chip_slots(std::size_t i) {
    check(i);
    hw::ChipStateSlots s;
    s.temp_remote1 = &chip_temp_reg_[i];
    s.tach1 = &chip_tach_[i];
    s.last_measured_rpm = &chip_last_rpm_[i];
    s.output_duty_pct = &chip_out_duty_pct_[i];
    return s;
  }

  [[nodiscard]] double* meter_energy_slot(std::size_t i) { return &at(meter_energy_j_, i); }
  [[nodiscard]] double* meter_elapsed_slot(std::size_t i) { return &at(meter_elapsed_s_, i); }

  [[nodiscard]] double* airflow_slot(std::size_t i) { return &at(airflow_cfm_, i); }
  [[nodiscard]] std::uint8_t* airflow_set_slot(std::size_t i) { return &at(airflow_set_, i); }

  // ---- node-level hot scalars (Node binds these at construction) ----
  [[nodiscard]] double* util_slot(std::size_t i) { return &at(util_, i); }
  [[nodiscard]] std::uint64_t* busy_jiffies_slot(std::size_t i) { return &at(busy_jiffies_, i); }
  [[nodiscard]] std::uint64_t* total_jiffies_slot(std::size_t i) {
    return &at(total_jiffies_, i);
  }
  [[nodiscard]] double* jiffy_rem_busy_slot(std::size_t i) { return &at(jiffy_rem_busy_, i); }
  [[nodiscard]] double* jiffy_rem_total_slot(std::size_t i) { return &at(jiffy_rem_total_, i); }
  [[nodiscard]] std::int32_t* prochot_events_slot(std::size_t i) {
    return &at(prochot_events_, i);
  }
  [[nodiscard]] double* prochot_seconds_slot(std::size_t i) { return &at(prochot_seconds_, i); }
  [[nodiscard]] std::uint8_t* halted_slot(std::size_t i) { return &at(halted_, i); }
  [[nodiscard]] double* bmc_override_duty_slot(std::size_t i) {
    return &at(bmc_override_duty_, i);
  }
  [[nodiscard]] std::uint8_t* bmc_override_set_slot(std::size_t i) {
    return &at(bmc_override_set_, i);
  }
  [[nodiscard]] PeriodicSchedule* sample_schedule_slot(std::size_t i) {
    THERMCTL_ASSERT(i < sample_schedule_.size(), "fleet slot out of range");
    return &sample_schedule_[i];
  }

  // ---- raw array access for FleetSweep's contiguous passes ----
  [[nodiscard]] double* fan_duty_data() { return fan_duty_pct_.data(); }
  [[nodiscard]] double* fan_rpm_data() { return fan_rpm_.data(); }
  [[nodiscard]] std::uint8_t* fan_stuck_data() { return fan_stuck_.data(); }
  [[nodiscard]] double* sensor_last_data() { return sensor_last_.data(); }
  [[nodiscard]] std::uint32_t* cpu_pstate_data() { return cpu_pstate_.data(); }
  [[nodiscard]] double* cpu_util_data() { return cpu_util_.data(); }
  [[nodiscard]] double* cpu_die_temp_data() { return cpu_die_temp_.data(); }
  [[nodiscard]] double* cpu_power_cache_data() { return cpu_power_cache_.data(); }
  [[nodiscard]] std::uint8_t* cpu_power_valid_data() { return cpu_power_valid_.data(); }
  [[nodiscard]] std::uint64_t* cpu_power_gen_data() { return cpu_power_gen_.data(); }
  [[nodiscard]] std::uint8_t* cpu_throttled_data() { return cpu_throttled_.data(); }
  [[nodiscard]] std::uint64_t* cpu_aperf_data() { return cpu_aperf_.data(); }
  [[nodiscard]] std::uint64_t* cpu_mperf_data() { return cpu_mperf_.data(); }
  [[nodiscard]] std::uint64_t* cpu_energy_data() { return cpu_energy_uj_.data(); }
  [[nodiscard]] double* cpu_aperf_frac_data() { return cpu_aperf_frac_.data(); }
  [[nodiscard]] double* cpu_mperf_frac_data() { return cpu_mperf_frac_.data(); }
  [[nodiscard]] double* cpu_energy_frac_data() { return cpu_energy_frac_.data(); }
  [[nodiscard]] double* inj_dyn_factor_data() { return inj_dyn_factor_.data(); }
  [[nodiscard]] double* inj_leak_factor_data() { return inj_leak_factor_.data(); }
  [[nodiscard]] double* inj_thr_factor_data() { return inj_thr_factor_.data(); }
  [[nodiscard]] std::uint64_t* inj_generation_data() { return inj_generation_.data(); }
  [[nodiscard]] std::int8_t* chip_temp_reg_data() { return chip_temp_reg_.data(); }
  [[nodiscard]] std::uint16_t* chip_tach_data() { return chip_tach_.data(); }
  [[nodiscard]] double* chip_last_rpm_data() { return chip_last_rpm_.data(); }
  [[nodiscard]] double* chip_out_duty_data() { return chip_out_duty_pct_.data(); }
  [[nodiscard]] double* meter_energy_data() { return meter_energy_j_.data(); }
  [[nodiscard]] double* meter_elapsed_data() { return meter_elapsed_s_.data(); }
  [[nodiscard]] double* airflow_data() { return airflow_cfm_.data(); }
  [[nodiscard]] std::uint8_t* airflow_set_data() { return airflow_set_.data(); }
  [[nodiscard]] double* util_data() { return util_.data(); }
  [[nodiscard]] std::uint64_t* busy_jiffies_data() { return busy_jiffies_.data(); }
  [[nodiscard]] std::uint64_t* total_jiffies_data() { return total_jiffies_.data(); }
  [[nodiscard]] double* jiffy_rem_busy_data() { return jiffy_rem_busy_.data(); }
  [[nodiscard]] double* jiffy_rem_total_data() { return jiffy_rem_total_.data(); }
  [[nodiscard]] std::int32_t* prochot_events_data() { return prochot_events_.data(); }
  [[nodiscard]] double* prochot_seconds_data() { return prochot_seconds_.data(); }
  [[nodiscard]] std::uint8_t* halted_data() { return halted_.data(); }
  [[nodiscard]] double* bmc_override_duty_data() { return bmc_override_duty_.data(); }
  [[nodiscard]] std::uint8_t* bmc_override_set_data() { return bmc_override_set_.data(); }
  [[nodiscard]] PeriodicSchedule* sample_schedule_data() { return sample_schedule_.data(); }

  /// Heap footprint of the fleet's hot state (bytes): the RC batch plus the
  /// device-state arrays. The scaling benchmark divides this by node count.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  template <typename T>
  [[nodiscard]] T& at(std::vector<T>& v, std::size_t i) {
    THERMCTL_ASSERT(i < v.size(), "fleet slot out of range");
    return v[i];
  }
  void check(std::size_t i) const {
    THERMCTL_ASSERT(i < cpu_util_.size(), "fleet slot out of range");
  }

  thermal::PackageWiring wiring_{};
  thermal::RcBatch batch_;
  // Fan rotor + fault flag.
  std::vector<double> fan_duty_pct_;
  std::vector<double> fan_rpm_;
  std::vector<std::uint8_t> fan_stuck_;
  // Sensor sample-and-hold.
  std::vector<double> sensor_last_;
  // CPU operating point, memoized power, counter block, injector mirrors.
  std::vector<std::uint32_t> cpu_pstate_;
  std::vector<double> cpu_util_;
  std::vector<double> cpu_die_temp_;
  std::vector<double> cpu_power_cache_;
  std::vector<std::uint8_t> cpu_power_valid_;
  std::vector<std::uint64_t> cpu_power_gen_;
  std::vector<std::uint8_t> cpu_throttled_;
  std::vector<std::uint64_t> cpu_transitions_;
  std::vector<std::uint64_t> cpu_aperf_;
  std::vector<std::uint64_t> cpu_mperf_;
  std::vector<std::uint64_t> cpu_energy_uj_;
  std::vector<double> cpu_aperf_frac_;
  std::vector<double> cpu_mperf_frac_;
  std::vector<double> cpu_energy_frac_;
  std::vector<double> inj_dyn_factor_;
  std::vector<double> inj_leak_factor_;
  std::vector<double> inj_thr_factor_;
  std::vector<std::uint64_t> inj_generation_;
  // ADT7467 latched measurements + PWM pin mirror.
  std::vector<std::int8_t> chip_temp_reg_;
  std::vector<std::uint16_t> chip_tach_;
  std::vector<double> chip_last_rpm_;
  std::vector<double> chip_out_duty_pct_;
  // Wall meter integrals.
  std::vector<double> meter_energy_j_;
  std::vector<double> meter_elapsed_s_;
  // Package airflow memo (PackageModel's convection early-out state).
  std::vector<double> airflow_cfm_;
  std::vector<std::uint8_t> airflow_set_;
  // Node-level hot scalars.
  std::vector<double> util_;
  std::vector<std::uint64_t> busy_jiffies_;
  std::vector<std::uint64_t> total_jiffies_;
  std::vector<double> jiffy_rem_busy_;
  std::vector<double> jiffy_rem_total_;
  std::vector<std::int32_t> prochot_events_;
  std::vector<double> prochot_seconds_;
  std::vector<std::uint8_t> halted_;
  std::vector<double> bmc_override_duty_;
  std::vector<std::uint8_t> bmc_override_set_;
  std::vector<PeriodicSchedule> sample_schedule_;
};

}  // namespace thermctl::cluster
