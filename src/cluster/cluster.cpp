#include "cluster/cluster.hpp"

#include "common/assert.hpp"

namespace thermctl::cluster {

Cluster::Cluster(std::size_t count, const NodeParams& base, bool batched) {
  THERMCTL_ASSERT(count > 0, "cluster needs at least one node");
  if (batched) {
    // All nodes are built from one base params, so the fleet is homogeneous
    // by construction and every node can view the shared batch.
    fleet_ = std::make_unique<FleetState>(base.package, count);
  }
  nodes_.reserve(count);
  raw_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    NodeParams params = base;
    params.seed = base.seed + i * 7919;  // distinct noise streams per node
    nodes_.push_back(std::make_unique<Node>(static_cast<int>(i), params, fleet_.get(), i));
    raw_.push_back(nodes_.back().get());
    ipmi_.attach(static_cast<int>(i), &nodes_.back()->bmc());
  }
  if (fleet_ != nullptr) {
    // Every node above shares `base`'s hardware constants (only the noise
    // seed differs), so one sweep can batch the whole rack's device/OS work.
    sweep_ = std::make_unique<FleetSweep>(*fleet_, base, raw_);
  }
}

void Cluster::set_inlet_temperature(std::size_t i, Celsius t) {
  node(i).package().set_ambient(t);
}

Watts Cluster::total_power() const {
  double sum = 0.0;
  for (const auto& n : nodes_) {
    sum += n->meter().read().value();
  }
  return Watts{sum};
}

void Cluster::settle_all() {
  for (auto& n : nodes_) {
    n->settle();
  }
}

}  // namespace thermctl::cluster
