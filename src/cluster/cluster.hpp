// A rack of simulated nodes plus their shared management plane.
//
// Owns the Node instances, the IPMI network connecting their BMCs, and the
// rack's ambient model (a per-node inlet temperature that experiments can
// perturb to create hot spots, the motivating phenomenon of the paper's
// introduction).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/fleet_sweep.hpp"
#include "cluster/node.hpp"
#include "common/assert.hpp"
#include "sysfs/ipmi.hpp"

namespace thermctl::cluster {

class Cluster {
 public:
  /// Builds `count` nodes from `base`, giving each a distinct seed. By
  /// default the nodes share a FleetState (SoA hot state + batched RC
  /// solver); `batched = false` builds the historical per-node-object layout
  /// instead — trajectories are bit-identical either way.
  Cluster(std::size_t count, const NodeParams& base, bool batched = true);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node& node(std::size_t i) {
    THERMCTL_ASSERT(i < nodes_.size(), "node index out of range");
    return *nodes_[i];
  }
  [[nodiscard]] const Node& node(std::size_t i) const {
    THERMCTL_ASSERT(i < nodes_.size(), "node index out of range");
    return *nodes_[i];
  }
  /// Unchecked flat node-pointer array for the engine's hot loops.
  [[nodiscard]] const std::vector<Node*>& raw_nodes() const { return raw_; }

  /// The shared SoA state, or nullptr for a per-node-object cluster.
  [[nodiscard]] FleetState* fleet() { return fleet_.get(); }
  [[nodiscard]] const FleetState* fleet() const { return fleet_.get(); }

  /// The batched device/OS sweep over the fleet arrays, or nullptr for a
  /// per-node-object cluster. Built only for the homogeneous batched layout;
  /// the engine falls back to per-node stepping without it.
  [[nodiscard]] FleetSweep* sweep() { return sweep_.get(); }

  [[nodiscard]] sysfs::IpmiNetwork& ipmi() { return ipmi_; }

  /// Sets one node's inlet (ambient) temperature — rack hot spots.
  void set_inlet_temperature(std::size_t i, Celsius t);

  /// Total wall power across the rack right now.
  [[nodiscard]] Watts total_power() const;

  /// Brings every node to equilibrium at its current load.
  void settle_all();

 private:
  std::unique_ptr<FleetState> fleet_;  // must outlive the nodes viewing it
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Node*> raw_;
  std::unique_ptr<FleetSweep> sweep_;  // batched layout only
  sysfs::IpmiNetwork ipmi_;
};

}  // namespace thermctl::cluster
