#include "cluster/node.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace thermctl::cluster {

namespace {

thermal::PackageModel make_package(const NodeParams& params, FleetState* fleet,
                                   std::size_t slot) {
  if (fleet != nullptr) {
    return thermal::PackageModel{params.package, fleet->batch(), slot};
  }
  return thermal::PackageModel{params.package};
}

}  // namespace

Node::Node(int id, const NodeParams& params, FleetState* fleet, std::size_t slot)
    : id_(id),
      params_(params),
      cpu_(params.cpu),
      fan_(params.fan),
      package_(make_package(params, fleet, slot)),
      sensor_([this] { return package_.die_temperature(); }, params.sensor,
              Rng{params.seed * 0x9e3779b9ULL + static_cast<std::uint64_t>(id) + 1}),
      meter_([this] { return Watts{cpu_.power().value() + fan_.power().value()}; },
             params.meter),
      driver_(i2c_),
      sample_schedule_storage_(static_cast<std::int64_t>(params.sample_period.value() * 1e6)) {
  if (fleet != nullptr) {
    // Hot device + OS state moves into the fleet's SoA arrays before first
    // use, so the batched sweep and the per-object API share one storage.
    fan_.bind_state(fleet->fan_duty_slot(slot), fleet->fan_rpm_slot(slot),
                    fleet->fan_stuck_slot(slot));
    sensor_.bind_state(fleet->sensor_last_slot(slot));
    cpu_.bind_state(fleet->cpu_slots(slot));
    chip_.bind_state(fleet->chip_slots(slot));
    meter_.bind_state(fleet->meter_energy_slot(slot), fleet->meter_elapsed_slot(slot));
    package_.bind_airflow_memo(fleet->airflow_slot(slot), fleet->airflow_set_slot(slot));
    auto rebind = [](auto*& ptr, auto* cell) {
      *cell = *ptr;
      ptr = cell;
    };
    rebind(util_, fleet->util_slot(slot));
    rebind(busy_jiffies_, fleet->busy_jiffies_slot(slot));
    rebind(total_jiffies_, fleet->total_jiffies_slot(slot));
    rebind(jiffy_remainder_busy_, fleet->jiffy_rem_busy_slot(slot));
    rebind(jiffy_remainder_total_, fleet->jiffy_rem_total_slot(slot));
    rebind(prochot_events_, fleet->prochot_events_slot(slot));
    rebind(prochot_seconds_, fleet->prochot_seconds_slot(slot));
    rebind(halted_, fleet->halted_slot(slot));
    rebind(bmc_override_duty_, fleet->bmc_override_duty_slot(slot));
    rebind(bmc_override_set_, fleet->bmc_override_set_slot(slot));
    rebind(sample_schedule_, fleet->sample_schedule_slot(slot));
  }
  i2c_.attach(sysfs::Adt7467Driver::kDefaultAddress, &chip_);

  // In-band plane: cpufreq + hwmon sysfs trees.
  cpufreq_ = std::make_unique<sysfs::CpufreqPolicy>(vfs_, "/sys/devices/system/cpu", 0, cpu_);

  // The fan driver must probe before the hwmon binding can drive PWM. The
  // probe leaves the chip in manual behaviour; restore the BIOS default
  // (automatic mode) — a controller that wants manual PWM claims it
  // explicitly through pwm1_enable.
  const auto probe = driver_.probe();
  THERMCTL_ASSERT(probe == sysfs::DriverStatus::kOk, "ADT7467 probe failed");
  const auto restore = driver_.set_automatic_mode();
  THERMCTL_ASSERT(restore == sysfs::DriverStatus::kOk, "ADT7467 mode restore failed");
  hwmon_ = std::make_unique<sysfs::HwmonDevice>(vfs_, "/sys/class/hwmon", 0, sensor_, driver_);
  clamp_ = std::make_unique<sysfs::PowerClampDevice>(vfs_, "/sys/class/thermal", 0, cpu_);
  rapl_ = std::make_unique<sysfs::RaplDomain>(vfs_, "/sys/class/powercap", 0, cpu_);
  proc_stat_ = std::make_unique<sysfs::ProcStat>(
      vfs_, [this] { return busy_jiffies(); }, [this] { return total_jiffies(); });

  // Out-of-band plane: BMC sensors + fan override.
  bmc_.add_sensor("CPU Temp", "degrees C", [this] { return sensor_.last_reading().value(); });
  bmc_.add_sensor("Fan1", "RPM", [this] { return fan_.rpm().value(); });
  bmc_.add_sensor("System Power", "Watts", [this] { return meter_.read().value(); });
  bmc_.set_fan_override_handler([this](std::optional<DutyCycle> duty) {
    if (duty.has_value()) {
      *bmc_override_duty_ = duty->percent();
      *bmc_override_set_ = 1;
    } else {
      *bmc_override_set_ = 0;
    }
  });

  // Start the fan at the chip's automatic-curve output for the initial
  // (ambient) temperature, as the BIOS would have left it.
  chip_.set_measured_temperature(package_.die_temperature());
  fan_.set_duty(chip_.output_duty());
  fan_.settle();
  package_.set_airflow(fan_.airflow());
}

void Node::set_utilization(Utilization u) { *util_ = halted() ? 0.0 : u.fraction(); }

void Node::apply_protection(Celsius die) {
  if (params_.protection.critical_enabled && die >= params_.protection.critical && !halted()) {
    *halted_ = 1;
    THERMCTL_LOG_WARN("node", "node %d THERMTRIP at %.1f C — halted", id_, die.value());
  }
  if (!params_.protection.prochot_enabled) {
    return;
  }
  if (!cpu_.thermal_throttled() && die >= params_.protection.prochot) {
    cpu_.set_thermal_throttle(true);
    ++*prochot_events_;
    THERMCTL_LOG_INFO("node", "node %d PROCHOT asserted at %.1f C", id_, die.value());
  } else if (cpu_.thermal_throttled() &&
             die <= params_.protection.prochot - params_.protection.prochot_hysteresis) {
    cpu_.set_thermal_throttle(false);
    THERMCTL_LOG_INFO("node", "node %d PROCHOT released at %.1f C", id_, die.value());
  }
}

void Node::step_pre_thermal(Seconds dt) {
  THERMCTL_ASSERT(dt.value() > 0.0, "step duration must be positive");
  if (halted()) {
    *util_ = 0.0;
  }
  cpu_.set_utilization(Utilization{*util_});
  cpu_.set_die_temperature(package_.die_temperature());

  // The fan follows the chip's PWM pin unless the BMC has overridden it
  // (the out-of-band plane wins, as on real servers).
  fan_.set_duty(*bmc_override_set_ != 0 ? DutyCycle{*bmc_override_duty_}
                                        : chip_.output_duty());
  fan_.step(dt);

  package_.set_cpu_power(halted() ? Watts{2.0} : cpu_.power());  // halted: trickle
  package_.set_airflow(fan_.airflow());
}

void Node::step_post_thermal(Seconds dt) {
  const Celsius die = package_.die_temperature();

  // The chip continuously tracks its remote diode and tach inputs.
  chip_.set_measured_temperature(die);
  chip_.set_measured_rpm(fan_.rpm());

  meter_.integrate_with(dt, dc_power());
  cpu_.advance_counters(dt);

  if (cpu_.thermal_throttled()) {
    *prochot_seconds_ += dt.value();
  }
  apply_protection(die);

  // /proc/stat accounting at USER_HZ with fractional carry.
  *jiffy_remainder_busy_ += *util_ * dt.value() * 100.0;
  *jiffy_remainder_total_ += dt.value() * 100.0;
  const auto busy_whole = static_cast<std::uint64_t>(*jiffy_remainder_busy_);
  const auto total_whole = static_cast<std::uint64_t>(*jiffy_remainder_total_);
  *busy_jiffies_ += busy_whole;
  *total_jiffies_ += total_whole;
  *jiffy_remainder_busy_ -= static_cast<double>(busy_whole);
  *jiffy_remainder_total_ -= static_cast<double>(total_whole);
}

void Node::step(Seconds dt) {
  step_pre_thermal(dt);
  package_.step(dt);
  step_post_thermal(dt);
}

void Node::settle() {
  cpu_.set_utilization(Utilization{*util_});
  cpu_.set_die_temperature(package_.die_temperature());
  package_.set_cpu_power(cpu_.power());
  fan_.settle();
  package_.set_airflow(fan_.airflow());
  package_.settle();
  // One more pass so leakage (a function of the settled temperature) and the
  // chip's auto curve are consistent with the equilibrium.
  cpu_.set_die_temperature(package_.die_temperature());
  package_.set_cpu_power(cpu_.power());
  package_.settle();
  chip_.set_measured_temperature(package_.die_temperature());
  fan_.set_duty(*bmc_override_set_ != 0 ? DutyCycle{*bmc_override_duty_}
                                        : chip_.output_duty());
  fan_.settle();
  package_.set_airflow(fan_.airflow());
  package_.settle();
  chip_.set_measured_temperature(package_.die_temperature());
  chip_.set_measured_rpm(fan_.rpm());
  sensor_.sample();
}

}  // namespace thermctl::cluster
