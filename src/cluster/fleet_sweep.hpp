// Batched per-node device/OS sweep over FleetState's SoA arrays.
//
// PR 5 batched the RC physics (RcBatch), but the per-step device/OS work —
// utilization latching, fan rotor dynamics, the CPU power model, the fan
// chip's measurement protocol, meter integration, counter advance, the
// protection ladder, jiffy accounting and the sensor sampling schedule — was
// still an object-graph walk per node. At fleet scale those walks dominate:
// each Node's scalars sit on their own cache lines, so 100k nodes per step
// touch 100k scattered objects. With every hot field now fleet-resident
// (bind_state across CpuDevice/FanDevice/Adt7467/PowerMeter/ThermalSensor/
// PackageModel/Node), FleetSweep replays Node::step_pre_thermal /
// step_post_thermal / sampling as contiguous array passes.
//
// Bit-exactness contract: for every node, the sweep performs the *same
// arithmetic in the same per-node order* as Node's methods — it reads and
// writes the very same storage the Node objects are bound to, so the two
// paths are interchangeable mid-run. Cross-node reordering (pass-at-a-time
// instead of node-at-a-time) is safe because the pre/post phases only touch
// their own node's state; the differential oracle's batched-vs-per-node
// pairing holds this to bitwise identity.
//
// Rare events fall back to the objects they model: an integer-degree change
// of the chip's temperature register re-runs the Adt7467 auto-curve through
// the register object, and a due sensor schedule samples through the node's
// ThermalSensor (per-node RNG). Heterogeneous fleets never build a sweep —
// Cluster only constructs one for the homogeneous batched layout, and the
// engine falls back to per-node stepping otherwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/fleet_state.hpp"
#include "cluster/node.hpp"
#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "thermal/convection.hpp"

namespace thermctl::cluster {

class FleetSweep {
 public:
  /// Builds a sweep over `fleet`'s arrays for `nodes` (the fleet-backed Node
  /// views, in slot order). `base` must be the NodeParams every node was
  /// built from — the sweep caches the shared constants once.
  FleetSweep(FleetState& fleet, const NodeParams& base, const std::vector<Node*>& nodes);

  /// Node::step_pre_thermal for slots [begin, end): utilization/die latch,
  /// fan rotor step, CPU power into the batch, airflow → convection.
  void pre_range(std::size_t begin, std::size_t end, Seconds dt);

  /// Node::step_post_thermal for slots [begin, end): chip protocol, meter,
  /// counters, PROCHOT/THERMTRIP ladder, jiffy accounting.
  void post_range(std::size_t begin, std::size_t end, Seconds dt);

  /// The engine's per-node sensor sampling loop over the contiguous schedule
  /// array; returns the number of samples taken.
  std::uint64_t sample_range(std::size_t begin, std::size_t end, SimTime after);

  // ---- record-phase helpers (Engine::record_sample's fast path) ----

  /// Post-solve die temperatures, contiguous across slots.
  [[nodiscard]] const double* die_temp_row() const { return die_temp_; }

  /// Node::wall_power() — memo-aware CPU power (recomputes and stores the
  /// memo exactly like CpuDevice::power() when a controller invalidated it)
  /// plus fan power, through the meter's display rounding.
  [[nodiscard]] double wall_power_w(std::size_t i);

  /// cpufreq-visible (OS-selected) frequency for slot i, GHz.
  [[nodiscard]] double nominal_freq_ghz(std::size_t i) const {
    return pstate_freq_[pstate_[i]];
  }

 private:
  /// CpuDevice::power() on slot i: returns the memoized value, recomputing
  /// and storing it with identical arithmetic when stale.
  double cpu_power_w(std::size_t i);

  FleetState& fleet_;
  std::vector<Node*> nodes_;

  // Batch rows (stride-1 across instances; see RcBatch layout).
  const double* die_temp_ = nullptr;
  double* die_power_ = nullptr;
  thermal::EdgeId hs_amb_{};

  // Raw SoA arrays (fixed for the fleet's lifetime).
  double* fan_duty_ = nullptr;
  double* fan_rpm_ = nullptr;
  const std::uint8_t* fan_stuck_ = nullptr;
  const double* sensor_last_ = nullptr;
  const std::uint32_t* pstate_ = nullptr;
  double* cpu_util_ = nullptr;
  double* cpu_die_temp_ = nullptr;
  double* power_cache_ = nullptr;
  std::uint8_t* power_valid_ = nullptr;
  std::uint64_t* power_gen_ = nullptr;
  std::uint8_t* throttled_ = nullptr;
  std::uint64_t* aperf_ = nullptr;
  std::uint64_t* mperf_ = nullptr;
  std::uint64_t* energy_uj_ = nullptr;
  double* aperf_frac_ = nullptr;
  double* mperf_frac_ = nullptr;
  double* energy_frac_ = nullptr;
  const double* inj_dyn_ = nullptr;
  const double* inj_leak_ = nullptr;
  const double* inj_thr_ = nullptr;
  const std::uint64_t* inj_gen_ = nullptr;
  std::int8_t* chip_temp_reg_ = nullptr;
  std::uint16_t* chip_tach_ = nullptr;
  double* chip_last_rpm_ = nullptr;
  const double* chip_out_duty_ = nullptr;
  double* meter_energy_ = nullptr;
  double* meter_elapsed_ = nullptr;
  double* airflow_ = nullptr;
  std::uint8_t* airflow_set_ = nullptr;
  double* util_ = nullptr;
  std::uint64_t* busy_jiffies_ = nullptr;
  std::uint64_t* total_jiffies_ = nullptr;
  double* jiffy_rem_busy_ = nullptr;
  double* jiffy_rem_total_ = nullptr;
  std::int32_t* prochot_events_ = nullptr;
  double* prochot_seconds_ = nullptr;
  std::uint8_t* halted_ = nullptr;
  const double* bmc_duty_ = nullptr;
  const std::uint8_t* bmc_set_ = nullptr;
  PeriodicSchedule* sample_schedule_ = nullptr;

  // Shared constants, cached from the (homogeneous) base NodeParams.
  std::vector<double> pstate_freq_;  // GHz per P-state
  std::vector<double> pstate_v2_;    // voltage^2 per P-state
  double min_freq_ = 0.0;            // slowest P-state (PROCHOT rate)
  double max_freq_ = 0.0;            // fastest P-state (MPERF base)
  double k_dyn_ = 0.0;
  double k_leak_ = 0.0;
  double leak_alpha_ = 0.0;
  double t_ref_ = 0.0;
  double idle_activity_ = 0.0;
  double fan_max_rpm_ = 0.0;
  double fan_stall_pct_ = 0.0;
  double fan_max_airflow_ = 0.0;
  double fan_idle_w_ = 0.0;
  double fan_max_w_ = 0.0;
  double rotor_tau_ = 0.0;
  thermal::ConvectionModel convection_;
  double meter_base_w_ = 0.0;
  double meter_eff_ = 0.0;
  double meter_res_w_ = 0.0;
  bool critical_enabled_ = false;
  bool prochot_enabled_ = false;
  double critical_c_ = 0.0;
  double prochot_c_ = 0.0;
  double prochot_release_c_ = 0.0;
};

}  // namespace thermctl::cluster
