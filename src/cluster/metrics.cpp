#include "cluster/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/csv.hpp"

namespace thermctl::cluster {

namespace {

double average(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

}  // namespace

double RunResult::avg_power_w() const {
  double sum = 0.0;
  for (const NodeSummary& s : summaries) {
    sum += s.avg_power_w;
  }
  return summaries.empty() ? 0.0 : sum / static_cast<double>(summaries.size());
}

double RunResult::avg_die_temp() const {
  double sum = 0.0;
  for (const NodeSeries& n : nodes) {
    sum += average(n.die_temp);
  }
  return nodes.empty() ? 0.0 : sum / static_cast<double>(nodes.size());
}

double RunResult::max_die_temp() const {
  double m = 0.0;
  for (const NodeSummary& s : summaries) {
    m = std::max(m, s.max_die_temp);
  }
  return m;
}

double RunResult::avg_duty() const {
  double sum = 0.0;
  for (const NodeSeries& n : nodes) {
    sum += average(n.duty);
  }
  return nodes.empty() ? 0.0 : sum / static_cast<double>(nodes.size());
}

std::uint64_t RunResult::total_freq_transitions() const {
  std::uint64_t total = 0;
  for (const NodeSummary& s : summaries) {
    total += s.freq_transitions;
  }
  return total;
}

std::uint64_t RunResult::total_i2c_retries() const {
  std::uint64_t total = 0;
  for (const NodeSummary& s : summaries) {
    total += s.i2c_retries;
  }
  return total;
}

std::uint64_t RunResult::total_i2c_bus_faults() const {
  std::uint64_t total = 0;
  for (const NodeSummary& s : summaries) {
    total += s.i2c_bus_faults;
  }
  return total;
}

std::uint64_t RunResult::total_i2c_exhausted() const {
  std::uint64_t total = 0;
  for (const NodeSummary& s : summaries) {
    total += s.i2c_exhausted;
  }
  return total;
}

void RunResult::write_csv(const std::string& path, const std::string& field) const {
  std::vector<std::string> columns{"time_s"};
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    columns.push_back("node" + std::to_string(i) + "_" + field);
  }
  CsvWriter csv{path, std::move(columns)};

  auto series_of = [&](const NodeSeries& n) -> const std::vector<double>& {
    if (field == "die_temp") return n.die_temp;
    if (field == "sensor_temp") return n.sensor_temp;
    if (field == "duty") return n.duty;
    if (field == "rpm") return n.rpm;
    if (field == "freq_ghz") return n.freq_ghz;
    if (field == "power_w") return n.power_w;
    if (field == "util") return n.util;
    if (field == "activity") return n.activity;
    THERMCTL_ASSERT(false, "unknown series field");
    return n.die_temp;  // unreachable
  };

  for (std::size_t i = 0; i < times.size(); ++i) {
    std::vector<double> values;
    values.reserve(nodes.size() + 1);
    values.push_back(times[i]);
    for (const NodeSeries& n : nodes) {
      const auto& s = series_of(n);
      values.push_back(i < s.size() ? s[i] : 0.0);
    }
    csv.row(values);
  }
}

MetricsRecorder::MetricsRecorder(std::size_t node_count) : node_count_(node_count) {
  result_.nodes.resize(node_count);
  result_.summaries.resize(node_count);
}

void MetricsRecorder::stamp(double t_seconds) { result_.times.push_back(t_seconds); }

void MetricsRecorder::reserve(std::size_t samples) {
  result_.times.reserve(samples);
  for (std::vector<double>& col : cols_) {
    col.reserve(samples * node_count_);
  }
}

void MetricsRecorder::sample(double t_seconds, std::size_t node, double die, double sensor,
                             double duty, double rpm, double freq_ghz, double power_w,
                             double util, ActivityCode activity) {
  (void)t_seconds;
  // The columnar staging assumes whole fleet rows in node order — exactly
  // what the engine's recording loop produces.
  THERMCTL_ASSERT(node == next_node_, "samples must arrive node-major (0..N-1 per round)");
  next_node_ = (next_node_ + 1 == node_count_) ? 0 : next_node_ + 1;
  cols_[0].push_back(die);
  cols_[1].push_back(sensor);
  cols_[2].push_back(duty);
  cols_[3].push_back(rpm);
  cols_[4].push_back(freq_ghz);
  cols_[5].push_back(power_w);
  cols_[6].push_back(util);
  cols_[7].push_back(static_cast<double>(static_cast<int>(activity)));
}

void MetricsRecorder::flush_columns() const {
  if (node_count_ == 0 || cols_[0].empty()) {
    return;
  }
  THERMCTL_ASSERT(cols_[0].size() % node_count_ == 0, "flush mid-row");
  const std::size_t rows = cols_[0].size() / node_count_;

  static constexpr std::vector<double> NodeSeries::*kFields[] = {
      &NodeSeries::die_temp, &NodeSeries::sensor_temp, &NodeSeries::duty,
      &NodeSeries::rpm,      &NodeSeries::freq_ghz,    &NodeSeries::power_w,
      &NodeSeries::util,     &NodeSeries::activity,
  };

  // Blocked transpose: a block of destination series stays cache-resident
  // across all rows while the column side is read in contiguous row spans,
  // so the scatter cost is paid once per element instead of once per record
  // tick.
  constexpr std::size_t kBlock = 128;
  for (std::size_t b0 = 0; b0 < node_count_; b0 += kBlock) {
    const std::size_t b1 = std::min(node_count_, b0 + kBlock);
    for (std::size_t i = b0; i < b1; ++i) {
      for (auto field : kFields) {
        std::vector<double>& dst = result_.nodes[i].*field;
        dst.reserve(dst.size() + rows);
      }
    }
    for (std::size_t f = 0; f < kFieldCount; ++f) {
      const double* col = cols_[f].data();
      for (std::size_t r = 0; r < rows; ++r) {
        const double* row = col + r * node_count_;
        for (std::size_t i = b0; i < b1; ++i) {
          (result_.nodes[i].*kFields[f]).push_back(row[i]);
        }
      }
    }
  }
  for (std::vector<double>& col : cols_) {
    col.clear();
  }
}

}  // namespace thermctl::cluster
