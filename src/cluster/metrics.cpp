#include "cluster/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/csv.hpp"

namespace thermctl::cluster {

namespace {

double average(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

}  // namespace

double RunResult::avg_power_w() const {
  double sum = 0.0;
  for (const NodeSummary& s : summaries) {
    sum += s.avg_power_w;
  }
  return summaries.empty() ? 0.0 : sum / static_cast<double>(summaries.size());
}

double RunResult::avg_die_temp() const {
  double sum = 0.0;
  for (const NodeSeries& n : nodes) {
    sum += average(n.die_temp);
  }
  return nodes.empty() ? 0.0 : sum / static_cast<double>(nodes.size());
}

double RunResult::max_die_temp() const {
  double m = 0.0;
  for (const NodeSummary& s : summaries) {
    m = std::max(m, s.max_die_temp);
  }
  return m;
}

double RunResult::avg_duty() const {
  double sum = 0.0;
  for (const NodeSeries& n : nodes) {
    sum += average(n.duty);
  }
  return nodes.empty() ? 0.0 : sum / static_cast<double>(nodes.size());
}

std::uint64_t RunResult::total_freq_transitions() const {
  std::uint64_t total = 0;
  for (const NodeSummary& s : summaries) {
    total += s.freq_transitions;
  }
  return total;
}

std::uint64_t RunResult::total_i2c_retries() const {
  std::uint64_t total = 0;
  for (const NodeSummary& s : summaries) {
    total += s.i2c_retries;
  }
  return total;
}

std::uint64_t RunResult::total_i2c_bus_faults() const {
  std::uint64_t total = 0;
  for (const NodeSummary& s : summaries) {
    total += s.i2c_bus_faults;
  }
  return total;
}

std::uint64_t RunResult::total_i2c_exhausted() const {
  std::uint64_t total = 0;
  for (const NodeSummary& s : summaries) {
    total += s.i2c_exhausted;
  }
  return total;
}

void RunResult::write_csv(const std::string& path, const std::string& field) const {
  std::vector<std::string> columns{"time_s"};
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    columns.push_back("node" + std::to_string(i) + "_" + field);
  }
  CsvWriter csv{path, std::move(columns)};

  auto series_of = [&](const NodeSeries& n) -> const std::vector<double>& {
    if (field == "die_temp") return n.die_temp;
    if (field == "sensor_temp") return n.sensor_temp;
    if (field == "duty") return n.duty;
    if (field == "rpm") return n.rpm;
    if (field == "freq_ghz") return n.freq_ghz;
    if (field == "power_w") return n.power_w;
    if (field == "util") return n.util;
    if (field == "activity") return n.activity;
    THERMCTL_ASSERT(false, "unknown series field");
    return n.die_temp;  // unreachable
  };

  for (std::size_t i = 0; i < times.size(); ++i) {
    std::vector<double> values;
    values.reserve(nodes.size() + 1);
    values.push_back(times[i]);
    for (const NodeSeries& n : nodes) {
      const auto& s = series_of(n);
      values.push_back(i < s.size() ? s[i] : 0.0);
    }
    csv.row(values);
  }
}

MetricsRecorder::MetricsRecorder(std::size_t node_count) {
  result_.nodes.resize(node_count);
  result_.summaries.resize(node_count);
}

void MetricsRecorder::stamp(double t_seconds) { result_.times.push_back(t_seconds); }

void MetricsRecorder::reserve(std::size_t samples) {
  result_.times.reserve(samples);
  for (NodeSeries& s : result_.nodes) {
    s.die_temp.reserve(samples);
    s.sensor_temp.reserve(samples);
    s.duty.reserve(samples);
    s.rpm.reserve(samples);
    s.freq_ghz.reserve(samples);
    s.power_w.reserve(samples);
    s.util.reserve(samples);
    s.activity.reserve(samples);
  }
}

void MetricsRecorder::sample(double t_seconds, std::size_t node, double die, double sensor,
                             double duty, double rpm, double freq_ghz, double power_w,
                             double util, ActivityCode activity) {
  (void)t_seconds;
  THERMCTL_ASSERT(node < result_.nodes.size(), "node index out of range");
  NodeSeries& s = result_.nodes[node];
  s.die_temp.push_back(die);
  s.sensor_temp.push_back(sensor);
  s.duty.push_back(duty);
  s.rpm.push_back(rpm);
  s.freq_ghz.push_back(freq_ghz);
  s.power_w.push_back(power_w);
  s.util.push_back(util);
  s.activity.push_back(static_cast<double>(static_cast<int>(activity)));
}

}  // namespace thermctl::cluster
