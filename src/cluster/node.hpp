// A simulated cluster node.
//
// Composes the full hardware + OS stack of one machine in the paper's
// power-aware cluster:
//
//   workload utilization ─▶ CpuDevice ─▶ power ─▶ PackageModel (RC thermal)
//                                             ▲            │ die temperature
//   FanDevice ◀─ PWM ─ Adt7467 ◀═ i2c ═ Adt7467Driver      ▼
//        │ airflow ────────────────────────▶ convection   ThermalSensor (4 Hz)
//        └ tach ──▶ Adt7467                                 │
//   PowerMeter (wall) ◀─ CPU + fan power                    ▼
//   VirtualFs: /sys cpufreq + hwmon          controllers read here
//   BmcEndpoint: IPMI sensors + fan override (out-of-band plane)
//
// The node also models the hardware protection ladder the controllers are
// trying to stay clear of: PROCHOT clock throttling above `prochot`, and a
// THERMTRIP-style halt above `critical` (counts as a thermal emergency /
// availability loss).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "cluster/fleet_state.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "hw/adt7467.hpp"
#include "hw/cpu_device.hpp"
#include "hw/fan_device.hpp"
#include "hw/i2c.hpp"
#include "hw/power_meter.hpp"
#include "hw/thermal_sensor.hpp"
#include "sysfs/adt7467_driver.hpp"
#include "sysfs/cpufreq.hpp"
#include "sysfs/hwmon.hpp"
#include "sysfs/ipmi.hpp"
#include "sysfs/powercap.hpp"
#include "sysfs/powerclamp.hpp"
#include "sysfs/proc_stat.hpp"
#include "sysfs/vfs.hpp"
#include "thermal/package_model.hpp"

namespace thermctl::cluster {

struct ProtectionParams {
  /// PROCHOT assertion temperature (clock throttle, self-clearing).
  Celsius prochot{78.0};
  CelsiusDelta prochot_hysteresis{3.0};
  bool prochot_enabled = true;
  /// THERMTRIP halt temperature (node goes down until cleared).
  Celsius critical{90.0};
  bool critical_enabled = true;
};

struct NodeParams {
  hw::CpuParams cpu{};
  hw::FanParams fan{};
  hw::SensorParams sensor{};
  thermal::PackageParams package{};
  hw::PowerMeterParams meter{};
  ProtectionParams protection{};
  /// Sensor sampling period (paper: 4 samples per second).
  Seconds sample_period{0.25};
  std::uint64_t seed = 1;
};

class Node {
 public:
  /// Standalone node: owns all of its state, including its own RcNetwork.
  /// With a `fleet`, the node is a thin view over `fleet`'s SoA arrays at
  /// `slot` — same API, same trajectories, fleet-resident hot state.
  Node(int id, const NodeParams& params, FleetState* fleet = nullptr, std::size_t slot = 0);

  [[nodiscard]] int id() const { return id_; }

  // ---- physics loop (driven by the engine) ----

  /// Sets the utilization the workload imposes for the next step.
  void set_utilization(Utilization u);
  [[nodiscard]] Utilization utilization() const { return Utilization{*util_}; }

  /// Advances devices, thermal model, protection and meters by `dt`.
  void step(Seconds dt);

  /// step() split at the thermal solve, so a fleet engine can run the
  /// device/OS phases per node and the RC solve batched:
  ///   step(dt) ≡ step_pre_thermal(dt); package().step(dt); step_post_thermal(dt)
  /// The phases only touch this node's state, so any interleaving across
  /// nodes is bit-identical to sequential per-node step() calls.
  void step_pre_thermal(Seconds dt);
  void step_post_thermal(Seconds dt);

  /// Takes a thermal-sensor reading (called on the 4 Hz schedule).
  Celsius sample_sensor() { return sensor_.sample(); }
  [[nodiscard]] const PeriodicSchedule& sample_schedule() const { return *sample_schedule_; }
  PeriodicSchedule& sample_schedule() { return *sample_schedule_; }

  // ---- state the experiments observe ----
  [[nodiscard]] Celsius die_temperature() const { return package_.die_temperature(); }
  [[nodiscard]] Celsius sensor_reading() const { return sensor_.last_reading(); }
  [[nodiscard]] GigaHertz effective_frequency() const { return cpu_.effective_frequency(); }
  /// DC-side component power sum (what the meter's dc_load supplier returns).
  [[nodiscard]] Watts dc_power() const { return Watts{cpu_.power().value() + fan_.power().value()}; }
  /// Metered AC wall power — meter().read() minus the supplier indirection.
  [[nodiscard]] Watts wall_power() const { return meter_.read_with(dc_power()); }

  /// /proc/stat-style cumulative counters at USER_HZ (100 jiffies/second);
  /// utilization governors diff these, exactly like the real daemon.
  [[nodiscard]] std::uint64_t busy_jiffies() const { return *busy_jiffies_; }
  [[nodiscard]] std::uint64_t total_jiffies() const { return *total_jiffies_; }

  [[nodiscard]] bool prochot_active() const { return cpu_.thermal_throttled(); }
  [[nodiscard]] int prochot_events() const { return *prochot_events_; }
  [[nodiscard]] Seconds prochot_time() const { return Seconds{*prochot_seconds_}; }
  [[nodiscard]] bool halted() const { return *halted_ != 0; }
  /// Clears a THERMTRIP halt (operator power-cycles the node).
  void clear_halt() { *halted_ = 0; }

  // ---- subsystem access for wiring controllers ----
  [[nodiscard]] hw::CpuDevice& cpu() { return cpu_; }
  [[nodiscard]] const hw::CpuDevice& cpu() const { return cpu_; }
  [[nodiscard]] hw::FanDevice& fan() { return fan_; }
  [[nodiscard]] hw::Adt7467& fan_chip() { return chip_; }
  [[nodiscard]] hw::I2cBus& i2c() { return i2c_; }
  [[nodiscard]] hw::PowerMeter& meter() { return meter_; }
  [[nodiscard]] const hw::PowerMeter& meter() const { return meter_; }
  [[nodiscard]] thermal::PackageModel& package() { return package_; }
  [[nodiscard]] hw::ThermalSensor& sensor() { return sensor_; }
  [[nodiscard]] sysfs::VirtualFs& vfs() { return vfs_; }
  [[nodiscard]] sysfs::Adt7467Driver& fan_driver() { return driver_; }
  [[nodiscard]] const sysfs::Adt7467Driver& fan_driver() const { return driver_; }
  [[nodiscard]] sysfs::CpufreqPolicy& cpufreq() { return *cpufreq_; }
  [[nodiscard]] sysfs::HwmonDevice& hwmon() { return *hwmon_; }
  [[nodiscard]] sysfs::PowerClampDevice& powerclamp() { return *clamp_; }
  [[nodiscard]] sysfs::RaplDomain& rapl() { return *rapl_; }
  [[nodiscard]] sysfs::ProcStat& proc_stat() { return *proc_stat_; }
  [[nodiscard]] sysfs::BmcEndpoint& bmc() { return bmc_; }

  /// Brings the node to thermal equilibrium at the current load (experiment
  /// priming: the machine has been idling before the job starts).
  void settle();

 private:
  void apply_protection(Celsius die);

  int id_;
  NodeParams params_;
  hw::CpuDevice cpu_;
  hw::FanDevice fan_;
  hw::Adt7467 chip_;
  hw::I2cBus i2c_;
  thermal::PackageModel package_;
  hw::ThermalSensor sensor_;
  hw::PowerMeter meter_;
  sysfs::VirtualFs vfs_;
  sysfs::Adt7467Driver driver_;
  std::unique_ptr<sysfs::CpufreqPolicy> cpufreq_;
  std::unique_ptr<sysfs::HwmonDevice> hwmon_;
  std::unique_ptr<sysfs::PowerClampDevice> clamp_;
  std::unique_ptr<sysfs::RaplDomain> rapl_;
  std::unique_ptr<sysfs::ProcStat> proc_stat_;
  sysfs::BmcEndpoint bmc_;

  // OS/protection scalars default to inline storage; a fleet-backed node
  // repoints them into the FleetState SoA arrays in its constructor, so the
  // batched sweep can walk them contiguously. Behaviour is identical either
  // way — the accessors above read through the pointers.
  PeriodicSchedule sample_schedule_storage_;
  double util_storage_ = 0.0;  // Utilization fraction
  std::uint64_t busy_jiffies_storage_ = 0;
  std::uint64_t total_jiffies_storage_ = 0;
  double jiffy_remainder_busy_storage_ = 0.0;
  double jiffy_remainder_total_storage_ = 0.0;
  std::int32_t prochot_events_storage_ = 0;
  double prochot_seconds_storage_ = 0.0;
  std::uint8_t halted_storage_ = 0;
  double bmc_override_duty_storage_ = 0.0;  // percent; valid when set flag != 0
  std::uint8_t bmc_override_set_storage_ = 0;
  PeriodicSchedule* sample_schedule_ = &sample_schedule_storage_;
  double* util_ = &util_storage_;
  std::uint64_t* busy_jiffies_ = &busy_jiffies_storage_;
  std::uint64_t* total_jiffies_ = &total_jiffies_storage_;
  double* jiffy_remainder_busy_ = &jiffy_remainder_busy_storage_;
  double* jiffy_remainder_total_ = &jiffy_remainder_total_storage_;
  std::int32_t* prochot_events_ = &prochot_events_storage_;
  double* prochot_seconds_ = &prochot_seconds_storage_;
  std::uint8_t* halted_ = &halted_storage_;
  double* bmc_override_duty_ = &bmc_override_duty_storage_;
  std::uint8_t* bmc_override_set_ = &bmc_override_set_storage_;
};

}  // namespace thermctl::cluster
