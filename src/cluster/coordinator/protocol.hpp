// Control-plane wire protocol: node ⇄ rack ⇄ room.
//
// The paper runs four independent per-node unified controllers under one
// flat `room_feedback` loop; at fleet scale the missing tier is an explicit
// hierarchy (ControlPULP's supervisor/worker shape): nodes push telemetry up,
// coordinators aggregate and push policy (`Pp`) and power budgets back down.
// Everything here is a plain request/response struct — POD payloads in a
// tagged union — so the same messages can later ride a socket transport
// unchanged (fixed-size, no pointers, no ownership).
//
// Message flow per control round (all deterministic, engine thread):
//
//   NodeAgent      ──TelemetryReport──▶  RackCoordinator ──RackReport──▶ Room
//   NodeAgent      ──JoinRequest─────▶  RackCoordinator
//   RackCoordinator──JoinAck/Leave───▶  NodeAgent
//   RackCoordinator──PowerBudget─────▶  NodeAgent        (also the heartbeat)
//   RackCoordinator──PolicyUpdate────▶  NodeAgent
//   RoomCoordinator──PowerBudget─────▶  RackCoordinator
//   RoomCoordinator──PolicyUpdate────▶  RackCoordinator
#pragma once

#include <cstdint>
#include <string_view>

namespace thermctl::cluster::ctrl {

/// Transport address of one plane participant (agent or coordinator).
using Endpoint = std::uint32_t;
constexpr Endpoint kNoEndpoint = 0xffffffffu;

enum class MsgType : std::uint8_t {
  kNone = 0,
  /// Node → rack: one sampling round of out-of-band telemetry.
  kTelemetryReport = 1,
  /// Node → rack: (re)join the coordinator's member set.
  kJoinRequest = 2,
  /// Rack → node: membership confirmed; budgets/policy will follow.
  kJoinAck = 3,
  /// Either direction: the sender is leaving the member set.
  kLeave = 4,
  /// Downstream: re-tune the unified controllers' policy parameter Pp.
  kPolicyUpdate = 5,
  /// Downstream: power budget in watts (<= 0 releases any cap).
  kPowerBudget = 6,
  /// Rack → room: aggregated rack telemetry.
  kRackReport = 7,
};

[[nodiscard]] std::string_view to_string(MsgType type);

/// One node's out-of-band view, as the BMC plane would report it (reads node
/// state directly — never through the in-band i2c/sysfs surfaces, whose
/// traffic counters belong to the node's own controllers).
struct TelemetryReport {
  std::uint32_t node = 0;
  double t_s = 0.0;
  double sensor_c = 0.0;   // last thermal-sensor conversion
  double die_c = 0.0;      // true die temperature (BMC diode)
  double wall_w = 0.0;     // metered AC wall power
  double duty_pct = 0.0;   // fan PWM duty
  double freq_ghz = 0.0;   // OS-selected CPU frequency
  bool autonomous = false; // node is in coordinator-loss fail-safe
};

struct JoinRequest {
  std::uint32_t node = 0;
};

struct JoinAck {
  /// Coordinator restart counter; lets an agent tell a resumed coordinator
  /// from a reordered stale ack.
  std::uint32_t epoch = 0;
};

struct Leave {
  std::uint32_t node = 0;
};

struct PolicyUpdate {
  int pp = 50;  // core::PolicyParam value, [1, 100]
};

struct PowerBudget {
  double watts = 0.0;  // <= 0: uncapped (release)
};

/// Rack → room aggregate, one per rack control round.
struct RackReport {
  std::uint32_t rack = 0;
  double t_s = 0.0;
  double power_w = 0.0;     // sum of member wall watts
  std::uint32_t members = 0;
};

/// The one wire unit. POD end to end: a queue transport copies it, a future
/// socket transport can memcpy it into a frame.
struct Message {
  MsgType type = MsgType::kNone;
  Endpoint from = kNoEndpoint;
  Endpoint to = kNoEndpoint;
  /// Stamped by the transport on send, monotonic per transport; lets tests
  /// and traces name an exact message ("seq 17 was dropped").
  std::uint64_t seq = 0;
  union {
    TelemetryReport telemetry;
    JoinRequest join;
    JoinAck join_ack;
    Leave leave;
    PolicyUpdate policy;
    PowerBudget budget;
    RackReport rack_report;
  };

  Message() : telemetry{} {}
};

[[nodiscard]] inline Message make_telemetry(const TelemetryReport& report) {
  Message m;
  m.type = MsgType::kTelemetryReport;
  m.telemetry = report;
  return m;
}

[[nodiscard]] inline Message make_join_request(std::uint32_t node) {
  Message m;
  m.type = MsgType::kJoinRequest;
  m.join = JoinRequest{node};
  return m;
}

[[nodiscard]] inline Message make_join_ack(std::uint32_t epoch) {
  Message m;
  m.type = MsgType::kJoinAck;
  m.join_ack = JoinAck{epoch};
  return m;
}

[[nodiscard]] inline Message make_leave(std::uint32_t node) {
  Message m;
  m.type = MsgType::kLeave;
  m.leave = Leave{node};
  return m;
}

[[nodiscard]] inline Message make_policy_update(int pp) {
  Message m;
  m.type = MsgType::kPolicyUpdate;
  m.policy = PolicyUpdate{pp};
  return m;
}

[[nodiscard]] inline Message make_power_budget(double watts) {
  Message m;
  m.type = MsgType::kPowerBudget;
  m.budget = PowerBudget{watts};
  return m;
}

[[nodiscard]] inline Message make_rack_report(const RackReport& report) {
  Message m;
  m.type = MsgType::kRackReport;
  m.rack_report = report;
  return m;
}

}  // namespace thermctl::cluster::ctrl
