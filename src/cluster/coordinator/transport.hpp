// Message transport for the hierarchical control plane.
//
// `Transport` is the seam the coordinators are written against: endpoints
// send tagged-union Messages and poll their own inbox. The only
// implementation today is in-process and queue-backed (the plane runs on the
// engine thread, serially at the BSP barrier), but the interface is shaped
// so a socket transport — one endpoint per BMC — can slot behind it later:
// no shared state leaks through, delivery is per-destination FIFO, and every
// message is a self-contained POD copy.
//
// Fault injection: QueueTransport can drop or reorder messages with seeded
// probabilities, which is how the verify fuzzer shakes the coordinators'
// loss tolerance (budget-as-heartbeat, stall failsafe, rejoin). With both
// rates at zero the RNG is never consumed and delivery is exactly FIFO, so
// a fault-free plane stays bit-reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cluster/coordinator/protocol.hpp"
#include "common/rng.hpp"

namespace thermctl::cluster::ctrl {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues `m` toward `m.to`, stamping `m.seq`. Returns false if the
  /// transport refused it (e.g. injected drop) — senders treat that the
  /// same as network loss and must not retry synchronously.
  virtual bool send(Message m) = 0;

  /// Pops the next message addressed to `inbox`, in delivery order.
  /// Returns false when the inbox is empty.
  virtual bool poll(Endpoint inbox, Message& out) = 0;
};

struct QueueTransportConfig {
  /// Probability a sent message silently vanishes.
  double drop_rate = 0.0;
  /// Probability a delivered message is swapped with its inbox successor
  /// (adjacent transposition — enough to exercise stale-seq handling
  /// without modelling a full adversarial scheduler).
  double reorder_rate = 0.0;
  std::uint64_t seed = 0x7ca9'0913ULL;
};

/// In-process transport: one FIFO deque per endpoint.
class QueueTransport final : public Transport {
 public:
  explicit QueueTransport(std::size_t endpoints, QueueTransportConfig config = {});

  bool send(Message m) override;
  bool poll(Endpoint inbox, Message& out) override;

  [[nodiscard]] std::size_t pending(Endpoint inbox) const;
  [[nodiscard]] std::uint64_t sent() const { return next_seq_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t reordered() const { return reordered_; }

 private:
  [[nodiscard]] bool faults_enabled() const {
    return config_.drop_rate > 0.0 || config_.reorder_rate > 0.0;
  }

  QueueTransportConfig config_;
  std::vector<std::deque<Message>> inboxes_;
  Rng rng_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace thermctl::cluster::ctrl
