#include "cluster/coordinator/transport.hpp"

#include "common/assert.hpp"

namespace thermctl::cluster::ctrl {

QueueTransport::QueueTransport(std::size_t endpoints, QueueTransportConfig config)
    : config_(config), inboxes_(endpoints), rng_(config.seed) {
  THERMCTL_ASSERT(endpoints > 0, "transport needs at least one endpoint");
  THERMCTL_ASSERT(config.drop_rate >= 0.0 && config.drop_rate < 1.0,
                  "drop_rate must be in [0, 1)");
  THERMCTL_ASSERT(config.reorder_rate >= 0.0 && config.reorder_rate < 1.0,
                  "reorder_rate must be in [0, 1)");
}

bool QueueTransport::send(Message m) {
  THERMCTL_ASSERT(m.to < inboxes_.size(), "send to unknown endpoint");
  THERMCTL_ASSERT(m.type != MsgType::kNone, "send of untyped message");
  m.seq = next_seq_++;
  // Faults draw from the RNG only when enabled, so a fault-free transport
  // consumes no randomness and the passive-plane oracle pairing stays exact.
  if (faults_enabled() && rng_.uniform() < config_.drop_rate) {
    ++dropped_;
    return false;
  }
  auto& inbox = inboxes_[m.to];
  inbox.push_back(m);
  if (faults_enabled() && inbox.size() >= 2 &&
      rng_.uniform() < config_.reorder_rate) {
    std::swap(inbox[inbox.size() - 1], inbox[inbox.size() - 2]);
    ++reordered_;
  }
  return true;
}

bool QueueTransport::poll(Endpoint inbox, Message& out) {
  THERMCTL_ASSERT(inbox < inboxes_.size(), "poll of unknown endpoint");
  auto& queue = inboxes_[inbox];
  if (queue.empty()) {
    return false;
  }
  out = queue.front();
  queue.pop_front();
  return true;
}

std::size_t QueueTransport::pending(Endpoint inbox) const {
  THERMCTL_ASSERT(inbox < inboxes_.size(), "pending of unknown endpoint");
  return inboxes_[inbox].size();
}

}  // namespace thermctl::cluster::ctrl
