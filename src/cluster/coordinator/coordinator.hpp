// Hierarchical control plane: node agents, rack coordinators, room coordinator.
//
// The paper's `room_feedback` is one flat loop over four nodes; this plane is
// the tier above it for fleet scale (node → rack → room), in the shape of
// ControlPULP's supervisor/worker hierarchy:
//
//   NodeAgent        one per node, the BMC-resident plane endpoint. Pushes
//                    out-of-band telemetry up, applies budgets (p-state caps)
//                    and Pp re-tunes pushed down, and owns the fail-safe: if
//                    the rack coordinator goes quiet past `stall_timeout`,
//                    the agent releases its cap and reverts the node to
//                    autonomous local control (the paper's per-node unified
//                    controller keeps running throughout), then retries
//                    joining with backoff.
//   RackCoordinator  aggregates member telemetry each plane round, enforces
//                    a shared rack power budget by dealing each member a
//                    proportional slice (the budget message doubles as the
//                    coordinator heartbeat), forwards Pp updates, acks
//                    joins, and reports the rack aggregate upward.
//   RoomCoordinator  sets rack budgets from room state: a total room budget
//                    is dealt to racks in proportion to their reported
//                    draw, tightened by `max_inlet_rise_c / actual rise`
//                    when the RoomModel runs hotter than the operator cap.
//
// Everything runs serially on the engine thread at the BSP barrier, in fixed
// order (agents in node order, then racks, then room), over a QueueTransport
// — so a plane round is deterministic and, in passive mode (telemetry and
// membership flow but nothing actuates), the run is bit-identical to a
// plane-detached run. The differential oracle asserts exactly that pairing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/coordinator/protocol.hpp"
#include "cluster/coordinator/transport.hpp"
#include "cluster/room.hpp"
#include "common/sim_time.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace thermctl::cluster::ctrl {

struct PlaneConfig {
  /// Passive: full message flow (telemetry, joins, budgets, heartbeats) but
  /// agents never actuate — no caps, no policy re-tunes. Bit-identical to
  /// running without the plane; the oracle's kPlanePassiveVsDetached pairing
  /// holds the plane to it.
  bool passive = false;
  /// Nodes per rack coordinator; 0 = one rack holds the whole cluster.
  std::size_t nodes_per_rack = 0;
  /// Initial shared budget per rack, watts of metered wall power; <= 0 means
  /// uncapped until the room coordinator says otherwise.
  double rack_budget_w = 0.0;
  /// Total room budget the room coordinator deals out to racks; <= 0
  /// disables room-level budgeting (racks keep their configured budget).
  double room_budget_w = 0.0;
  /// Operator cap on the room's recirculation rise (°C above CRAC supply).
  /// When the attached RoomModel runs hotter, the room coordinator tightens
  /// rack budgets by the ratio. 0 disables.
  double max_inlet_rise_c = 0.0;
  /// Plane control round period (coordination is slow relative to the 4 Hz
  /// in-band loops, like real BMC polling).
  Seconds period{1.0};
  /// Agent-side coordinator-stall fail-safe: quiet longer than this and the
  /// node reverts to autonomous control.
  Seconds stall_timeout{5.0};
  /// A member whose wall power is below `raise_margin · share` gets its cap
  /// raised one p-state (hysteresis against cap flapping).
  double raise_margin = 0.8;
  QueueTransportConfig transport{};
};

/// Aggregate plane counters, shared by every component (single-writer: the
/// whole plane runs on the engine thread).
struct PlaneStats {
  std::uint64_t rounds = 0;
  std::uint64_t telemetry_sent = 0;
  std::uint64_t telemetry_received = 0;
  std::uint64_t join_requests = 0;
  std::uint64_t join_acks = 0;
  std::uint64_t budgets_sent = 0;
  std::uint64_t budgets_received = 0;
  std::uint64_t caps_lowered = 0;
  std::uint64_t caps_raised = 0;
  std::uint64_t caps_released = 0;
  std::uint64_t failsafe_entries = 0;
  std::uint64_t failsafe_exits = 0;
  std::uint64_t policy_updates_applied = 0;
  std::uint64_t rack_over_budget_rounds = 0;
};

/// The per-node plane endpoint (what a BMC-resident agent would run).
class NodeAgent {
 public:
  NodeAgent(Node& node, std::size_t index, Endpoint self, Endpoint rack,
            const PlaneConfig& config, PlaneStats& stats);

  /// Wires the Pp re-tune path: called with the new policy parameter when a
  /// PolicyUpdate lands (active mode only). The experiment layer points this
  /// at the node's controllers' set_policy.
  void set_policy_sink(std::function<void(int)> sink) { policy_sink_ = std::move(sink); }
  void set_trace(obs::TraceRing* trace) { trace_ = trace; }

  void tick(SimTime now, Transport& transport);

  /// Drops any active p-state cap immediately (ControlPlane's
  /// failsafe_release_all fans out here). Unlike the budget path this does
  /// not wait for a plane round; the cap re-establishes itself on the next
  /// over-budget round once control resumes.
  void force_release_cap();

  /// True when not under coordinator control (never joined, or fail-safed).
  [[nodiscard]] bool autonomous() const { return autonomous_; }
  [[nodiscard]] bool joined() const { return joined_; }
  /// Current cap as a ladder index (0 = uncapped / max p-state).
  [[nodiscard]] std::size_t cap_index() const { return cap_index_; }

 private:
  void drain(SimTime now, Transport& transport);
  void apply_budget(double watts, SimTime now);
  void apply_policy(int pp);
  void enter_failsafe(SimTime now);
  void release_cap();
  void actuate_cap();

  Node& node_;
  std::size_t index_;
  Endpoint self_;
  Endpoint rack_;
  const PlaneConfig& config_;
  PlaneStats& stats_;
  std::function<void(int)> policy_sink_;
  obs::TraceRing* trace_ = nullptr;

  std::vector<long> ladder_khz_;  // available p-states, max first
  std::size_t cap_index_ = 0;
  double budget_w_ = 0.0;
  bool joined_ = false;
  bool autonomous_ = true;  // until first JoinAck
  bool failsafed_ = false;  // entered failsafe, not yet rejoined
  SimTime last_heard_;
  SimTime next_join_;
  Seconds join_backoff_;
};

/// Aggregates one rack's members under a shared power budget.
class RackCoordinator {
 public:
  RackCoordinator(std::uint32_t rack_id, Endpoint self, Endpoint room,
                  const PlaneConfig& config, PlaneStats& stats);

  void tick(SimTime now, Transport& transport);

  [[nodiscard]] std::uint32_t rack_id() const { return rack_id_; }
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }
  [[nodiscard]] double budget_w() const { return budget_w_; }
  /// Latest aggregate wall power over reporting members.
  [[nodiscard]] double reported_power_w() const;

 private:
  struct Member {
    std::uint32_t node = 0;
    TelemetryReport last{};
    bool have_report = false;
  };

  void drain(SimTime now, Transport& transport);

  std::uint32_t rack_id_;
  Endpoint self_;
  Endpoint room_;
  const PlaneConfig& config_;
  PlaneStats& stats_;
  // Keyed by member endpoint: deterministic iteration = node order.
  std::map<Endpoint, Member> members_;
  double budget_w_;
  std::uint32_t epoch_ = 1;
  int pending_pp_ = 0;
  bool have_pending_pp_ = false;
};

/// Deals the room budget to racks from RoomModel state.
class RoomCoordinator {
 public:
  RoomCoordinator(Endpoint self, std::vector<Endpoint> racks,
                  const PlaneConfig& config, PlaneStats& stats,
                  const RoomModel* room);

  void tick(SimTime now, Transport& transport);

  /// Queues a Pp re-tune for broadcast down the hierarchy next round.
  void broadcast_policy(int pp);

  [[nodiscard]] double reported_power_w() const;
  /// Budget scale applied last round (1 = no thermal tightening).
  [[nodiscard]] double last_scale() const { return last_scale_; }

 private:
  Endpoint self_;
  std::vector<Endpoint> racks_;
  const PlaneConfig& config_;
  PlaneStats& stats_;
  const RoomModel* room_;
  std::map<Endpoint, RackReport> reports_;
  double last_scale_ = 1.0;
  int pending_pp_ = 0;
  bool have_pending_pp_ = false;
};

/// Owns the whole hierarchy + transport; the engine drives it at the BSP
/// barrier via on_round().
class ControlPlane {
 public:
  /// `room` is optional and not owned; with one attached the room
  /// coordinator can tighten budgets on inlet rise.
  ControlPlane(Cluster& cluster, PlaneConfig config, const RoomModel* room = nullptr);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Pp re-tune path for node `i` (experiment wires controllers here).
  void set_policy_sink(std::size_t i, std::function<void(int)> sink);
  /// Per-node decision-trace rings (not owned; nullptr detaches).
  void set_trace(obs::RunTrace* trace);
  /// Plane metrics (engine-style pre-resolved handles; nullptr detaches).
  void set_metrics(obs::MetricsShard* shard);

  /// Queues a Pp broadcast through room → racks → agents.
  void broadcast_policy(int pp);

  /// Hot budget injection (thermctld `set-budget`): rewrites the live room
  /// budget the room coordinator re-reads every round, so the new total
  /// propagates room → racks → agents within one plane period without
  /// dropping control. Watts <= 0 disables room-level budgeting (racks then
  /// keep their configured budget). Engine-thread only, like on_round().
  void set_room_budget(double watts) { config_.room_budget_w = watts; }
  [[nodiscard]] double room_budget_w() const { return config_.room_budget_w; }

  /// Releases every agent's p-state cap at once — the thermctld watchdog's
  /// fail-safe ("never let a wedged daemon leave nodes frequency-capped").
  /// Caller's contract: the engine thread is either the caller or provably
  /// not stepping (a stalled control loop), since this actuates cpufreq.
  /// No-op per agent when passive, already uncapped, or the node is halted.
  void failsafe_release_all();

  /// One plane round, called by the engine every physics step; internally
  /// paced to config.period. Deterministic order: agents in node order,
  /// racks, room.
  void on_round(SimTime now);

  // ---- fault-injection hooks (tests, fuzzer) ----
  /// A stalled rack coordinator stops ticking: joins go unanswered, budget
  /// heartbeats cease, members fail safe after stall_timeout.
  void stall_rack(std::size_t rack);
  void resume_rack(std::size_t rack);

  [[nodiscard]] bool passive() const { return config_.passive; }
  [[nodiscard]] std::size_t rack_count() const { return racks_.size(); }
  /// Rack index owning node `i` (matches the agents' endpoint layout).
  [[nodiscard]] std::size_t rack_of(std::size_t node) const;
  /// Nodes currently under a plane p-state cap / running autonomously —
  /// the fleet rollup's per-sample plane columns.
  [[nodiscard]] std::size_t capped_count() const;
  [[nodiscard]] std::size_t autonomous_count() const;
  [[nodiscard]] const PlaneStats& stats() const { return stats_; }
  [[nodiscard]] const NodeAgent& agent(std::size_t i) const { return agents_[i]; }
  [[nodiscard]] const RackCoordinator& rack(std::size_t r) const { return racks_[r]; }
  [[nodiscard]] const RoomCoordinator& room_coordinator() const { return room_coord_; }
  [[nodiscard]] QueueTransport& transport() { return transport_; }

 private:
  PlaneConfig config_;
  PlaneStats stats_;
  QueueTransport transport_;
  std::vector<NodeAgent> agents_;
  std::vector<RackCoordinator> racks_;
  RoomCoordinator room_coord_;
  std::vector<bool> rack_stalled_;
  PeriodicSchedule schedule_;
  // Pre-resolved metric handles (all null when no shard attached).
  obs::Counter* m_rounds_ = nullptr;
  obs::Counter* m_messages_ = nullptr;
  obs::Counter* m_drops_ = nullptr;
  obs::Counter* m_budgets_ = nullptr;
  obs::Counter* m_failsafes_ = nullptr;
  std::uint64_t seen_messages_ = 0;
  std::uint64_t seen_drops_ = 0;
  std::uint64_t seen_budgets_ = 0;
  std::uint64_t seen_failsafes_ = 0;
};

}  // namespace thermctl::cluster::ctrl
