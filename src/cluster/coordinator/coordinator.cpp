#include "cluster/coordinator/coordinator.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "sysfs/cpufreq.hpp"

namespace thermctl::cluster::ctrl {
namespace {

// Endpoint layout: agents [0, N), racks [N, N+R), room at N+R.
std::size_t rack_count_for(std::size_t nodes, std::size_t nodes_per_rack) {
  if (nodes_per_rack == 0 || nodes_per_rack >= nodes) {
    return 1;
  }
  return (nodes + nodes_per_rack - 1) / nodes_per_rack;
}

std::vector<Endpoint> rack_endpoints(std::size_t nodes, std::size_t racks) {
  std::vector<Endpoint> eps;
  eps.reserve(racks);
  for (std::size_t r = 0; r < racks; ++r) {
    eps.push_back(static_cast<Endpoint>(nodes + r));
  }
  return eps;
}

}  // namespace

std::string_view to_string(MsgType type) {
  switch (type) {
    case MsgType::kNone:
      return "none";
    case MsgType::kTelemetryReport:
      return "telemetry_report";
    case MsgType::kJoinRequest:
      return "join_request";
    case MsgType::kJoinAck:
      return "join_ack";
    case MsgType::kLeave:
      return "leave";
    case MsgType::kPolicyUpdate:
      return "policy_update";
    case MsgType::kPowerBudget:
      return "power_budget";
    case MsgType::kRackReport:
      return "rack_report";
  }
  return "unknown";
}

// ---------------------------------------------------------------- NodeAgent

NodeAgent::NodeAgent(Node& node, std::size_t index, Endpoint self, Endpoint rack,
                     const PlaneConfig& config, PlaneStats& stats)
    : node_(node),
      index_(index),
      self_(self),
      rack_(rack),
      config_(config),
      stats_(stats),
      join_backoff_(config.period) {
  // Resolve the p-state ladder once, through the same sysfs surface the cap
  // actuation uses (file order: max first, matching CpuDevice's pstates).
  for (const double ghz : node_.cpufreq().available_ghz()) {
    ladder_khz_.push_back(sysfs::CpufreqPolicy::to_khz(GigaHertz{ghz}));
  }
  THERMCTL_ASSERT(!ladder_khz_.empty(), "node has no p-state ladder");
}

void NodeAgent::tick(SimTime now, Transport& transport) {
  drain(now, transport);

  // Coordinator-stall fail-safe: the budget heartbeat went quiet.
  if (joined_ && (now - last_heard_).value() > config_.stall_timeout.value()) {
    enter_failsafe(now);
  }

  // (Re)join with backoff while unattached.
  if (!joined_ && now >= next_join_) {
    Message join = make_join_request(static_cast<std::uint32_t>(index_));
    join.from = self_;
    join.to = rack_;
    transport.send(join);
    ++stats_.join_requests;
    next_join_ = now + join_backoff_;
    join_backoff_ =
        Seconds{std::min(join_backoff_.value() * 2.0, 8.0 * config_.period.value())};
  }

  // Telemetry every round, joined or not — the out-of-band plane keeps
  // observing even while autonomous (and even when the host has THERMTRIP
  // halted: the BMC stays powered). Reads are const-only so a passive plane
  // perturbs nothing.
  TelemetryReport report;
  report.node = static_cast<std::uint32_t>(index_);
  report.t_s = now.seconds();
  report.sensor_c = node_.sensor_reading().value();
  report.die_c = node_.die_temperature().value();
  report.wall_w = node_.wall_power().value();
  report.duty_pct = node_.fan().duty().percent();
  report.freq_ghz = node_.cpu().frequency().value();
  report.autonomous = autonomous_;
  Message m = make_telemetry(report);
  m.from = self_;
  m.to = rack_;
  transport.send(m);
  ++stats_.telemetry_sent;
}

void NodeAgent::drain(SimTime now, Transport& transport) {
  Message m;
  while (transport.poll(self_, m)) {
    switch (m.type) {
      case MsgType::kJoinAck: {
        last_heard_ = now;
        if (!joined_) {
          joined_ = true;
          autonomous_ = false;
          join_backoff_ = config_.period;
          if (failsafed_) {
            failsafed_ = false;
            ++stats_.failsafe_exits;
            THERMCTL_TRACE_EMIT(
                trace_, (obs::TraceEvent{.t_s = now.seconds(),
                                         .type = obs::TraceEventType::kPlaneFailsafeExit,
                                         .subsystem = obs::TraceSubsystem::kPlane,
                                         .i0 = static_cast<std::int64_t>(m.join_ack.epoch)}));
          }
        }
        break;
      }
      case MsgType::kPowerBudget:
        last_heard_ = now;
        apply_budget(m.budget.watts, now);
        break;
      case MsgType::kPolicyUpdate:
        last_heard_ = now;
        apply_policy(m.policy.pp);
        break;
      case MsgType::kLeave:
        // Orderly coordinator resignation: same degradation as a stall,
        // minus the timeout wait.
        if (joined_) {
          enter_failsafe(now);
        }
        break;
      default:
        break;  // stray upstream-direction traffic; drop
    }
  }
}

void NodeAgent::apply_budget(double watts, SimTime now) {
  ++stats_.budgets_received;
  budget_w_ = watts;
  if (config_.passive || node_.halted()) {
    return;
  }
  const std::size_t before = cap_index_;
  const double wall = node_.wall_power().value();
  if (watts <= 0.0) {
    if (cap_index_ != 0) {
      release_cap();
    }
  } else if (wall > watts && cap_index_ + 1 < ladder_khz_.size()) {
    // Over budget: one p-state down per round — the same gradual actuation
    // discipline as tDVFS, so a transient spike doesn't slam the node to
    // its floor frequency.
    ++cap_index_;
    actuate_cap();
    ++stats_.caps_lowered;
  } else if (wall < watts * config_.raise_margin && cap_index_ > 0) {
    --cap_index_;
    actuate_cap();
    ++stats_.caps_raised;
  }
  THERMCTL_TRACE_EMIT(
      trace_,
      (obs::TraceEvent{.t_s = now.seconds(),
                       .type = obs::TraceEventType::kPlaneBudget,
                       .subsystem = obs::TraceSubsystem::kPlane,
                       .flags = cap_index_ != before ? obs::kTraceFlagChanged
                                                     : obs::kTraceFlagNone,
                       .i0 = static_cast<std::int64_t>(ladder_khz_[cap_index_]),
                       .a = watts,
                       .b = wall}));
}

void NodeAgent::apply_policy(int pp) {
  if (config_.passive || !policy_sink_) {
    return;
  }
  const int clamped = std::clamp(pp, 1, 100);
  policy_sink_(clamped);
  ++stats_.policy_updates_applied;
  THERMCTL_TRACE_EMIT(trace_,
                      (obs::TraceEvent{.t_s = trace_ != nullptr ? trace_->time_s() : 0.0,
                                       .type = obs::TraceEventType::kPlanePolicyUpdate,
                                       .subsystem = obs::TraceSubsystem::kPlane,
                                       .i0 = clamped}));
}

void NodeAgent::enter_failsafe(SimTime now) {
  joined_ = false;
  autonomous_ = true;
  failsafed_ = true;
  ++stats_.failsafe_entries;
  budget_w_ = 0.0;
  if (!config_.passive && cap_index_ != 0 && !node_.halted()) {
    release_cap();
  }
  join_backoff_ = config_.period;
  next_join_ = now + join_backoff_;
  THERMCTL_TRACE_EMIT(trace_,
                      (obs::TraceEvent{.t_s = now.seconds(),
                                       .type = obs::TraceEventType::kPlaneFailsafeEnter,
                                       .subsystem = obs::TraceSubsystem::kPlane,
                                       .a = (now - last_heard_).value()}));
}

void NodeAgent::release_cap() {
  cap_index_ = 0;
  actuate_cap();
  ++stats_.caps_released;
}

void NodeAgent::force_release_cap() {
  if (config_.passive || cap_index_ == 0 || node_.halted()) {
    return;
  }
  release_cap();
}

void NodeAgent::actuate_cap() {
  const long target = ladder_khz_[cap_index_];
  if (node_.cpufreq().cur_khz() != target) {
    node_.cpufreq().set_khz(target);
  }
}

// --------------------------------------------------------- RackCoordinator

RackCoordinator::RackCoordinator(std::uint32_t rack_id, Endpoint self, Endpoint room,
                                 const PlaneConfig& config, PlaneStats& stats)
    : rack_id_(rack_id),
      self_(self),
      room_(room),
      config_(config),
      stats_(stats),
      budget_w_(config.rack_budget_w) {}

double RackCoordinator::reported_power_w() const {
  double total = 0.0;
  for (const auto& [ep, member] : members_) {
    if (member.have_report) {
      total += member.last.wall_w;
    }
  }
  return total;
}

void RackCoordinator::drain(SimTime /*now*/, Transport& transport) {
  Message m;
  while (transport.poll(self_, m)) {
    switch (m.type) {
      case MsgType::kJoinRequest: {
        Member& member = members_[m.from];
        member.node = m.join.node;
        Message ack = make_join_ack(epoch_);
        ack.from = self_;
        ack.to = m.from;
        transport.send(ack);
        ++stats_.join_acks;
        break;
      }
      case MsgType::kTelemetryReport: {
        auto it = members_.find(m.from);
        if (it != members_.end()) {
          it->second.last = m.telemetry;
          it->second.have_report = true;
          ++stats_.telemetry_received;
        }
        // Telemetry from a non-member is dropped: the node's join was lost
        // and its backoff retry will restore membership.
        break;
      }
      case MsgType::kLeave:
        members_.erase(m.from);
        break;
      case MsgType::kPowerBudget:
        budget_w_ = m.budget.watts;  // room override; <= 0 lifts the cap
        break;
      case MsgType::kPolicyUpdate:
        pending_pp_ = m.policy.pp;
        have_pending_pp_ = true;
        break;
      default:
        break;
    }
  }
}

void RackCoordinator::tick(SimTime now, Transport& transport) {
  drain(now, transport);

  const double total = reported_power_w();
  if (budget_w_ > 0.0 && total > budget_w_) {
    ++stats_.rack_over_budget_rounds;
  }

  // Deal every member its budget slice each round — proportional to its
  // reported draw so heavy nodes keep headroom and idle nodes release
  // theirs. The budget message doubles as the coordinator heartbeat, so it
  // goes out even when the rack is uncapped (watts <= 0 = "no cap").
  for (const auto& [ep, member] : members_) {
    double share = 0.0;
    if (budget_w_ > 0.0) {
      share = (total > 0.0 && member.have_report)
                  ? budget_w_ * member.last.wall_w / total
                  : budget_w_ / static_cast<double>(members_.size());
    }
    Message budget = make_power_budget(share);
    budget.from = self_;
    budget.to = ep;
    transport.send(budget);
    ++stats_.budgets_sent;
    if (have_pending_pp_) {
      Message policy = make_policy_update(pending_pp_);
      policy.from = self_;
      policy.to = ep;
      transport.send(policy);
    }
  }
  have_pending_pp_ = false;

  RackReport report;
  report.rack = rack_id_;
  report.t_s = now.seconds();
  report.power_w = total;
  report.members = static_cast<std::uint32_t>(members_.size());
  Message up = make_rack_report(report);
  up.from = self_;
  up.to = room_;
  transport.send(up);
}

// --------------------------------------------------------- RoomCoordinator

RoomCoordinator::RoomCoordinator(Endpoint self, std::vector<Endpoint> racks,
                                 const PlaneConfig& config, PlaneStats& stats,
                                 const RoomModel* room)
    : self_(self), racks_(std::move(racks)), config_(config), stats_(stats), room_(room) {}

void RoomCoordinator::broadcast_policy(int pp) {
  pending_pp_ = pp;
  have_pending_pp_ = true;
}

double RoomCoordinator::reported_power_w() const {
  double total = 0.0;
  for (const auto& [ep, report] : reports_) {
    total += report.power_w;
  }
  return total;
}

void RoomCoordinator::tick(SimTime /*now*/, Transport& transport) {
  Message m;
  while (transport.poll(self_, m)) {
    if (m.type == MsgType::kRackReport) {
      reports_[m.from] = m.rack_report;
    }
  }

  if (have_pending_pp_) {
    for (const Endpoint ep : racks_) {
      Message policy = make_policy_update(pending_pp_);
      policy.from = self_;
      policy.to = ep;
      transport.send(policy);
    }
    have_pending_pp_ = false;
  }

  if (config_.room_budget_w <= 0.0) {
    return;
  }
  // Thermal tightening: when the room runs hotter than the operator's inlet
  // rise cap, shrink the dealt budget by the ratio — the plane's version of
  // the paper's room_feedback Pp reduction, acting on power instead.
  double scale = 1.0;
  if (room_ != nullptr && config_.max_inlet_rise_c > 0.0) {
    const double rise = room_->mixed_rise().value();
    if (rise > config_.max_inlet_rise_c) {
      scale = config_.max_inlet_rise_c / rise;
    }
  }
  last_scale_ = scale;
  const double budget = config_.room_budget_w * scale;
  const double total = reported_power_w();
  for (const Endpoint ep : racks_) {
    double share = budget / static_cast<double>(racks_.size());
    auto it = reports_.find(ep);
    if (total > 0.0 && it != reports_.end() && it->second.power_w > 0.0) {
      share = budget * it->second.power_w / total;
    }
    Message msg = make_power_budget(share);
    msg.from = self_;
    msg.to = ep;
    transport.send(msg);
    ++stats_.budgets_sent;
  }
}

// ------------------------------------------------------------ ControlPlane

ControlPlane::ControlPlane(Cluster& cluster, PlaneConfig config, const RoomModel* room)
    : config_(config),
      transport_(cluster.size() + rack_count_for(cluster.size(), config.nodes_per_rack) + 1,
                 config.transport),
      room_coord_(static_cast<Endpoint>(
                      cluster.size() + rack_count_for(cluster.size(), config.nodes_per_rack)),
                  rack_endpoints(cluster.size(),
                                 rack_count_for(cluster.size(), config.nodes_per_rack)),
                  config_, stats_, room),
      schedule_(static_cast<std::int64_t>(config.period.value() * 1e6)) {
  THERMCTL_ASSERT(config_.period.value() > 0.0, "plane period must be positive");
  THERMCTL_ASSERT(config_.stall_timeout.value() > config_.period.value(),
                  "stall timeout must exceed the plane period");
  const std::size_t nodes = cluster.size();
  const std::size_t racks = rack_count_for(nodes, config_.nodes_per_rack);
  const std::size_t per_rack = config_.nodes_per_rack == 0 ? nodes : config_.nodes_per_rack;
  const Endpoint room_ep = static_cast<Endpoint>(nodes + racks);

  agents_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const Endpoint rack_ep = static_cast<Endpoint>(nodes + i / per_rack);
    agents_.emplace_back(cluster.node(i), i, static_cast<Endpoint>(i), rack_ep, config_,
                         stats_);
  }
  racks_.reserve(racks);
  for (std::size_t r = 0; r < racks; ++r) {
    racks_.emplace_back(static_cast<std::uint32_t>(r), static_cast<Endpoint>(nodes + r),
                        room_ep, config_, stats_);
  }
  rack_stalled_.assign(racks, false);
}

void ControlPlane::set_policy_sink(std::size_t i, std::function<void(int)> sink) {
  THERMCTL_ASSERT(i < agents_.size(), "policy sink node index out of range");
  agents_[i].set_policy_sink(std::move(sink));
}

void ControlPlane::set_trace(obs::RunTrace* trace) {
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    agents_[i].set_trace(trace != nullptr ? &trace->ring(i) : nullptr);
  }
}

void ControlPlane::set_metrics(obs::MetricsShard* shard) {
  if (shard == nullptr) {
    m_rounds_ = m_messages_ = m_drops_ = m_budgets_ = m_failsafes_ = nullptr;
    return;
  }
  m_rounds_ = &shard->counter("plane.rounds");
  m_messages_ = &shard->counter("plane.messages_sent");
  m_drops_ = &shard->counter("plane.messages_dropped");
  m_budgets_ = &shard->counter("plane.budgets_sent");
  m_failsafes_ = &shard->counter("plane.failsafe_entries");
}

void ControlPlane::broadcast_policy(int pp) { room_coord_.broadcast_policy(pp); }

void ControlPlane::failsafe_release_all() {
  for (NodeAgent& agent : agents_) {
    agent.force_release_cap();
  }
}

void ControlPlane::on_round(SimTime now) {
  bool due = false;
  while (schedule_.due(now)) {
    due = true;  // collapse any backlog into one round at `now`
  }
  if (!due) {
    return;
  }
  ++stats_.rounds;
  // Fixed round order = deterministic message flow: agents report (node
  // order), racks aggregate and deal, the room re-budgets the racks. Room
  // decisions reach agents on the next round — a deliberate one-round lag,
  // matching the up-then-down latency a real hierarchy has.
  for (NodeAgent& agent : agents_) {
    agent.tick(now, transport_);
  }
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    if (!rack_stalled_[r]) {
      racks_[r].tick(now, transport_);
    }
  }
  room_coord_.tick(now, transport_);

  if (m_rounds_ != nullptr) {
    m_rounds_->inc();
    m_messages_->add(transport_.sent() - seen_messages_);
    seen_messages_ = transport_.sent();
    m_drops_->add(transport_.dropped() - seen_drops_);
    seen_drops_ = transport_.dropped();
    m_budgets_->add(stats_.budgets_sent - seen_budgets_);
    seen_budgets_ = stats_.budgets_sent;
    m_failsafes_->add(stats_.failsafe_entries - seen_failsafes_);
    seen_failsafes_ = stats_.failsafe_entries;
  }
}

void ControlPlane::stall_rack(std::size_t rack) {
  THERMCTL_ASSERT(rack < racks_.size(), "stall of unknown rack");
  rack_stalled_[rack] = true;
}

void ControlPlane::resume_rack(std::size_t rack) {
  THERMCTL_ASSERT(rack < racks_.size(), "resume of unknown rack");
  rack_stalled_[rack] = false;
}

std::size_t ControlPlane::rack_of(std::size_t node) const {
  THERMCTL_ASSERT(node < agents_.size(), "rack_of of unknown node");
  const std::size_t per_rack =
      config_.nodes_per_rack == 0 ? agents_.size() : config_.nodes_per_rack;
  return node / per_rack;
}

std::size_t ControlPlane::capped_count() const {
  std::size_t n = 0;
  for (const NodeAgent& agent : agents_) {
    n += agent.cap_index() > 0 ? 1 : 0;
  }
  return n;
}

std::size_t ControlPlane::autonomous_count() const {
  std::size_t n = 0;
  for (const NodeAgent& agent : agents_) {
    n += agent.autonomous() ? 1 : 0;
  }
  return n;
}

}  // namespace thermctl::cluster::ctrl
