#include "cluster/engine.hpp"

#include <algorithm>

#include "cluster/coordinator/coordinator.hpp"
#include "common/assert.hpp"

namespace thermctl::cluster {

Engine::Engine(Cluster& cluster, EngineConfig config)
    : cluster_(cluster),
      config_(config),
      rank_of_node_(cluster.size(), kNoRank),
      node_loads_(cluster.size(), nullptr),
      steal_fraction_(cluster.size(), 0.0),
      recorder_(cluster.size()),
      record_schedule_(static_cast<std::int64_t>(config.record_period.value() * 1e6)) {
  THERMCTL_ASSERT(config_.physics_dt.value() > 0.0, "physics step must be positive");
  THERMCTL_ASSERT(config_.workers >= 0, "workers must be >= 0 (0 = auto)");
}

std::size_t Engine::resolved_workers() const {
  const std::size_t requested = config_.workers == 0
                                    ? runtime::default_thread_count()
                                    : static_cast<std::size_t>(config_.workers);
  return std::max<std::size_t>(1, std::min(requested, cluster_.size()));
}

void Engine::attach_app(workload::ParallelApp& app, std::vector<std::size_t> node_for_rank) {
  THERMCTL_ASSERT(app.rank_count() == node_for_rank.size(), "one node per rank required");
  std::vector<bool> used(cluster_.size(), false);
  for (std::size_t n : node_for_rank) {
    THERMCTL_ASSERT(n < cluster_.size(), "rank mapped to missing node");
    THERMCTL_ASSERT(!used[n], "at most one rank per node");
    used[n] = true;
  }
  app_ = &app;
  node_for_rank_ = std::move(node_for_rank);
  std::fill(rank_of_node_.begin(), rank_of_node_.end(), kNoRank);
  for (std::size_t r = 0; r < node_for_rank_.size(); ++r) {
    rank_of_node_[node_for_rank_[r]] = r;
  }
  freqs_scratch_.reserve(node_for_rank_.size());
  utils_scratch_.reserve(node_for_rank_.size());
}

void Engine::set_node_load(std::size_t i, const workload::SegmentLoad* load) {
  if (load == nullptr) {
    set_node_load_fn(i, nullptr);
    return;
  }
  set_node_load_fn(i, [load](SimTime t) { return load->at(t); });
}

void Engine::set_node_load(std::size_t i, const workload::TraceLoad* load) {
  if (load == nullptr) {
    set_node_load_fn(i, nullptr);
    return;
  }
  set_node_load_fn(i, [load](SimTime t) { return load->at(t); });
}

void Engine::set_node_load_fn(std::size_t i, std::function<Utilization(SimTime)> load) {
  THERMCTL_ASSERT(i < cluster_.size(), "node index out of range");
  node_loads_[i] = std::move(load);
}

void Engine::set_fleet_load_fn(FleetLoadFn load) {
  THERMCTL_ASSERT(cluster_.fleet() != nullptr,
                  "the fleet load hook requires the SoA cluster layout");
  fleet_load_ = std::move(load);
}

void Engine::attach_room(RoomModel& room) {
  THERMCTL_ASSERT(room.node_count() == cluster_.size(), "room sized for a different rack");
  room_ = &room;
}

void Engine::attach_plane(ctrl::ControlPlane& plane) { plane_ = &plane; }

void Engine::set_inband_overhead(std::size_t i, Seconds per_tick, Seconds period) {
  THERMCTL_ASSERT(i < cluster_.size(), "node index out of range");
  THERMCTL_ASSERT(period.value() > 0.0, "overhead period must be positive");
  THERMCTL_ASSERT(per_tick.value() >= 0.0 && per_tick.value() < period.value(),
                  "overhead must be shorter than its period");
  steal_fraction_[i] = per_tick.value() / period.value();
}

std::size_t Engine::node_of_rank(std::size_t r) const {
  THERMCTL_ASSERT(app_ != nullptr, "no app attached");
  THERMCTL_ASSERT(r < node_for_rank_.size(), "rank out of range");
  return node_for_rank_[r];
}

std::optional<std::size_t> Engine::rank_on_node(std::size_t i) const {
  THERMCTL_ASSERT(i < rank_of_node_.size(), "node index out of range");
  const std::size_t r = rank_of_node_[i];
  if (r == kNoRank) {
    return std::nullopt;
  }
  return r;
}

bool Engine::migrate_rank(std::size_t r, std::size_t new_node, Seconds cost) {
  THERMCTL_ASSERT(app_ != nullptr, "no app attached");
  THERMCTL_ASSERT(r < node_for_rank_.size(), "rank out of range");
  THERMCTL_ASSERT(new_node < cluster_.size(), "node out of range");
  if (rank_of_node_[new_node] != kNoRank || cluster_.node(new_node).halted()) {
    return false;
  }
  const std::size_t old_node = node_for_rank_[r];
  node_for_rank_[r] = new_node;
  rank_of_node_[old_node] = kNoRank;
  rank_of_node_[new_node] = r;
  app_->inject_stall(r, cost);
  cluster_.node(old_node).set_utilization(Utilization{0.02});  // vacated
  ++migrations_;
  return true;
}

void Engine::add_periodic(Seconds period, std::function<void(SimTime)> task) {
  THERMCTL_ASSERT(period.value() > 0.0, "task period must be positive");
  THERMCTL_ASSERT(static_cast<bool>(task), "task must be callable");
  // Phase tasks at one period so controllers first fire after the first full
  // sampling round, not at t=0 when no data exists.
  tasks_.push_back(PeriodicTask{
      PeriodicSchedule{static_cast<std::int64_t>(period.value() * 1e6),
                       static_cast<std::int64_t>(period.value() * 1e6)},
      std::move(task)});
}

void Engine::set_metrics(obs::MetricsShard* shard) {
  if (shard == nullptr) {
    m_steps_ = nullptr;
    m_sensor_samples_ = nullptr;
    m_task_ticks_ = nullptr;
    m_record_samples_ = nullptr;
    m_sim_time_ = nullptr;
    return;
  }
  m_steps_ = &shard->counter("engine.steps");
  m_sensor_samples_ = &shard->counter("engine.sensor_samples");
  m_task_ticks_ = &shard->counter("engine.task_ticks");
  m_record_samples_ = &shard->counter("engine.record_samples");
  m_sim_time_ = &shard->gauge("engine.sim_time_s");
}

ActivityCode Engine::activity_of_node(std::size_t i) const {
  if (app_ == nullptr) {
    return ActivityCode::kNone;
  }
  const auto rank = rank_on_node(i);
  if (!rank.has_value()) {
    return ActivityCode::kNone;
  }
  const auto kind = app_->current_phase_kind(*rank);
  if (!kind.has_value()) {
    return ActivityCode::kFinished;
  }
  switch (*kind) {
    case workload::PhaseKind::kCompute:
      return ActivityCode::kCompute;
    case workload::PhaseKind::kCommunicate:
      return ActivityCode::kCommunicate;
    case workload::PhaseKind::kIdle:
      return ActivityCode::kIdlePhase;
    case workload::PhaseKind::kBarrier:
      return ActivityCode::kBarrier;
  }
  return ActivityCode::kNone;
}

void Engine::record_sample() {
  recorder_.stamp(now_.seconds());
  FleetSweep* sweep = cluster_.sweep();
  if (sweep != nullptr) {
    // Fast path: every recorded field is fleet-resident (or, for the wall
    // watts, resolved by the sweep with Node::wall_power()'s exact memo
    // semantics), so the recording loop streams arrays instead of walking
    // Node objects.
    FleetState* fleet = cluster_.fleet();
    const double* die = sweep->die_temp_row();
    const double* sensor = fleet->sensor_last_data();
    const double* duty = fleet->fan_duty_data();
    const double* rpm = fleet->fan_rpm_data();
    const double* util = fleet->util_data();
    for (std::size_t i = 0; i < cluster_.size(); ++i) {
      recorder_.sample(now_.seconds(), i, die[i], sensor[i], duty[i], rpm[i],
                       sweep->nominal_freq_ghz(i), sweep->wall_power_w(i), util[i],
                       activity_of_node(i));
    }
    return;
  }
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    Node& n = cluster_.node(i);
    recorder_.sample(now_.seconds(), i, n.die_temperature().value(),
                     n.sensor_reading().value(), n.fan().duty().percent(), n.fan().rpm().value(),
                     n.cpu().frequency().value(), n.wall_power().value(),
                     n.utilization().fraction(), activity_of_node(i));
  }
}

std::uint64_t Engine::step_shard(std::size_t begin, std::size_t end, Seconds dt,
                                 SimTime after) {
  Node* const* nodes = cluster_.raw_nodes().data();
  FleetState* fleet = cluster_.fleet();
  FleetSweep* sweep = cluster_.sweep();

  // Fast path: batched device/OS sweep over the fleet's SoA arrays — the
  // same arithmetic in the same per-node order as the object walk below,
  // just executed as contiguous array passes (bit-identical; the oracle's
  // batched-vs-per-node pairing enforces it).
  if (sweep != nullptr) {
    sweep->pre_range(begin, end, dt);
    fleet->batch().step_range(dt, begin, end);
    sweep->post_range(begin, end, dt);
    return sweep->sample_range(begin, end, after);
  }

  // Physics: device/OS work per node, with the RC solve batched over the
  // shard's contiguous SoA slice when a fleet is present. Interleaving
  // per-node phases this way is bit-identical to sequential Node::step()
  // calls because each phase only touches its own node's state.
  for (std::size_t i = begin; i < end; ++i) {
    nodes[i]->step_pre_thermal(dt);
  }
  if (fleet != nullptr) {
    fleet->batch().step_range(dt, begin, end);
  } else {
    for (std::size_t i = begin; i < end; ++i) {
      nodes[i]->package().step(dt);
    }
  }
  for (std::size_t i = begin; i < end; ++i) {
    nodes[i]->step_post_thermal(dt);
  }

  // Sensor sampling (per node, on its own schedule). Counted locally; the
  // caller reduces shard counts in shard order so metrics stay deterministic.
  std::uint64_t samples = 0;
  for (std::size_t i = begin; i < end; ++i) {
    while (nodes[i]->sample_schedule().due(after)) {
      nodes[i]->sample_sensor();
      ++samples;
    }
  }
  return samples;
}

RunResult Engine::run() {
  // Bind the engine to the first thread that runs it: a rig shared between
  // sweep workers is a determinism (and data-race) bug, caught here rather
  // than as silent corruption.
  std::thread::id expected{};
  const std::thread::id me = std::this_thread::get_id();
  if (!owner_thread_.compare_exchange_strong(expected, me)) {
    THERMCTL_ASSERT(expected == me,
                    "Engine is bound to the thread that first ran it; build one "
                    "cluster/engine rig per sweep point instead of sharing");
  }

  const Seconds dt = config_.physics_dt;
  const std::size_t node_count = cluster_.size();
  Node* const* nodes = cluster_.raw_nodes().data();
  const std::size_t shards = resolved_workers();
  if (shards > 1 && pool_ == nullptr) {
    // Pool threads only run step_shard on disjoint node ranges; the barrier
    // (wait_idle) sits at the step's coupling point.
    pool_ = std::make_unique<runtime::ThreadPool>(shards - 1);
  }
  shard_samples_.assign(shards, 0);
  std::optional<Seconds> completion;
  // done() scans every rank; track it across the loop instead of re-asking
  // twice per step.
  bool app_running = app_ != nullptr && !app_->done();

  // Nodes breathe the room's air from the very first step: prime every inlet
  // from the room's current state (benches settle() it pre-run) so step one
  // of the physics already runs under the attached ambient.
  if (room_ != nullptr) {
    for (std::size_t i = 0; i < node_count; ++i) {
      nodes[i]->package().set_ambient(room_->inlet(i));
    }
  }

  // Record the initial state so series start at t=0.
  record_schedule_.due(now_);  // consume the t=0 firing
  // Pre-size the series for the horizon (capped so absurd horizons don't
  // balloon memory up front; past the cap push_back just grows as before).
  recorder_.reserve(std::min<std::size_t>(
      static_cast<std::size_t>(config_.horizon.value() / config_.record_period.value()) + 2,
      1u << 20));
  record_sample();

  while (true) {
    // 1. Workload → utilization.
    if (app_running) {
      freqs_scratch_.clear();
      for (std::size_t n : node_for_rank_) {
        const Node& node = *nodes[n];
        // A halted node makes no progress; a throttled or idle-injected one
        // runs at its delivered (not nominal) rate; in-band daemon overhead
        // (OS noise) steals a further slice.
        const double steal = 1.0 - steal_fraction_[n];
        freqs_scratch_.push_back(
            node.halted() ? GigaHertz{1e-6}
                          : GigaHertz{node.cpu().delivered_frequency().value() * steal});
      }
      app_->step(dt, freqs_scratch_, utils_scratch_);
      for (std::size_t r = 0; r < utils_scratch_.size(); ++r) {
        nodes[node_for_rank_[r]]->set_utilization(utils_scratch_[r]);
      }
      if (app_->done()) {
        app_running = false;
        completion = app_->completion_time();
      }
    }
    if (FleetState* fleet = cluster_.fleet(); fleet != nullptr) {
      // Fast path: Node::set_utilization on a fleet-backed node is
      // `util = halted ? 0 : u` over fleet-resident scalars — write the
      // arrays directly instead of bouncing through every Node object.
      double* util = fleet->util_data();
      const std::uint8_t* halted = fleet->halted_data();
      if (fleet_load_) {
        // One batched call fills the row; per-node functions override below.
        fleet_load_(now_, util, halted, node_count);
      }
      for (std::size_t i = 0; i < node_count; ++i) {
        if (node_loads_[i]) {
          util[i] = halted[i] != 0 ? 0.0 : node_loads_[i](now_).fraction();
        } else if (app_ != nullptr && !app_running && rank_of_node_[i] != kNoRank) {
          util[i] = halted[i] != 0 ? 0.0 : 0.02;  // job exited
        }
      }
    } else {
      for (std::size_t i = 0; i < node_count; ++i) {
        if (node_loads_[i]) {
          nodes[i]->set_utilization(node_loads_[i](now_));
        } else if (app_ != nullptr && !app_running && rank_of_node_[i] != kNoRank) {
          nodes[i]->set_utilization(Utilization{0.02});  // job exited
        }
      }
    }

    // 2. Physics, per-node and sharded BSP-style: contiguous node ranges
    // (contiguous SoA slices), one barrier per step at the join.
    SimTime after = now_;
    after.advance_us(static_cast<std::int64_t>(dt.value() * 1e6));
    if (shards == 1) {
      shard_samples_[0] = step_shard(0, node_count, dt, after);
    } else {
      const std::size_t base = node_count / shards;
      const std::size_t rem = node_count % shards;
      std::size_t begin = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t len = base + (s < rem ? 1 : 0);
        const std::size_t end = begin + len;
        if (s + 1 == shards) {
          // Last shard runs inline: the main thread works instead of waiting.
          shard_samples_[s] = step_shard(begin, end, dt, after);
        } else {
          pool_->submit([this, s, begin, end, dt, after] {
            shard_samples_[s] = step_shard(begin, end, dt, after);
          });
        }
        begin = end;
      }
      pool_->wait_idle();  // BSP barrier: all shards joined before coupling
    }
    now_ = after;

    // 3. Room coupling, serially at the barrier: the room mixes under the
    // rack's dissipation *from the step that just ran* — summed in node order
    // as metered wall power, the same quantity RoomModel::settle is primed
    // with — and sets every node's inlet for the next step. This is the only
    // way node state crosses node boundaries, which is what keeps the shard
    // phase above embarrassingly parallel and bit-identical at any shard
    // count. (It used to run before the physics phase on the *previous*
    // step's DC-only cpu+fan power: one round stale, and ~40% low against
    // settle()'s wall watts — the rack's PSU losses and platform base load
    // heat the room too, so a settled room drifted away from its own
    // steady state the moment the engine started stepping it.)
    if (room_ != nullptr) {
      double rack_watts = 0.0;
      if (FleetSweep* sweep = cluster_.sweep(); sweep != nullptr) {
        for (std::size_t i = 0; i < node_count; ++i) {
          rack_watts += sweep->wall_power_w(i);  // == Node::wall_power()
        }
      } else {
        for (std::size_t i = 0; i < node_count; ++i) {
          rack_watts += nodes[i]->wall_power().value();
        }
      }
      room_->step(dt, Watts{rack_watts});
      for (std::size_t i = 0; i < node_count; ++i) {
        nodes[i]->package().set_ambient(room_->inlet(i));
      }
    }

    if (m_steps_ != nullptr) {
      m_steps_->inc();
    }
    if (m_sensor_samples_ != nullptr) {
      // Reduce per-shard counts in shard order (deterministic, and identical
      // to the serial engine's per-sample increments).
      for (std::size_t s = 0; s < shards; ++s) {
        m_sensor_samples_->add(shard_samples_[s]);
      }
    }

    // 4. Control plane, serially at the barrier: agents report, racks deal
    // budgets, the room re-budgets racks — paced internally to the plane
    // period. A passive plane exchanges the same messages but never
    // actuates, which the differential oracle holds to bit-identity.
    if (plane_ != nullptr) {
      plane_->on_round(now_);
    }

    // 5. Controller ticks.
    for (PeriodicTask& task : tasks_) {
      while (task.schedule.due(now_)) {
        task.fn(now_);
        if (m_task_ticks_ != nullptr) {
          m_task_ticks_->inc();
        }
      }
    }

    // 6. Metrics.
    while (record_schedule_.due(now_)) {
      record_sample();
      if (m_record_samples_ != nullptr) {
        m_record_samples_->inc();
      }
    }

    // 7. Termination.
    if (completion.has_value() &&
        now_.seconds() >= completion->value() + config_.cooldown.value()) {
      break;
    }
    if (now_.seconds() >= config_.horizon.value()) {
      break;
    }
    // External stop (thermctld shutdown): checked last so the step that saw
    // the request still completes its controller and metrics phases.
    if (stop_requested_.load(std::memory_order_acquire)) {
      break;
    }
  }

  if (m_sim_time_ != nullptr) {
    m_sim_time_->set(now_.seconds());
  }

  RunResult result = recorder_.result();
  result.app_completed = app_ != nullptr && app_->done();
  result.exec_time_s =
      completion.has_value() ? completion->value() : now_.seconds();
  finalize(result);
  return result;
}

void Engine::finalize(RunResult& result) const {
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    const Node& n = cluster_.node(i);
    NodeSummary& s = result.summaries[i];
    const NodeSeries& series = result.nodes[i];

    double sum_die = 0.0;
    double max_die = 0.0;
    double sum_duty = 0.0;
    for (std::size_t k = 0; k < series.die_temp.size(); ++k) {
      sum_die += series.die_temp[k];
      max_die = std::max(max_die, series.die_temp[k]);
      sum_duty += series.duty[k];
    }
    const double count = static_cast<double>(std::max<std::size_t>(1, series.die_temp.size()));
    s.avg_die_temp = sum_die / count;
    s.max_die_temp = max_die;
    s.avg_duty = sum_duty / count;
    s.avg_power_w = n.meter().average_power().value();
    s.energy_j = n.meter().energy().value();
    s.freq_transitions = n.cpu().transition_count();
    s.prochot_events = n.prochot_events();
    s.prochot_seconds = n.prochot_time().value();

    const hw::I2cErrorStats& io = n.fan_driver().io_stats();
    s.i2c_retries = io.retries;
    s.i2c_naks = io.naks;
    s.i2c_bus_faults = io.bus_faults;
    s.i2c_exhausted = io.exhausted;
  }
}

}  // namespace thermctl::cluster
