// Discrete-time simulation engine.
//
// Advances cluster physics on a fine fixed step (default 50 ms) and drives
// three families of scheduled activity on top:
//
//   1. per-node sensor sampling (default 4 Hz, the paper's rate),
//   2. user-registered periodic tasks — this is where controllers
//      (fan policies, tDVFS, CPUSPEED) are plugged in, keeping the engine
//      free of any knowledge of control logic,
//   3. metrics recording (default 4 Hz to match the figures' sample-point
//      axes).
//
// Workload sources per node: either a rank of an attached ParallelApp
// (barrier-coupled across nodes) or a time-driven SegmentLoad. The run ends
// when the app completes (its completion time is the experiment's execution
// time) or at the horizon.
//
// Sharding: with `workers > 1` the per-node physics + sensor-sampling phase
// of each step is partitioned into contiguous node shards executed on a
// ThreadPool, BSP style — one barrier per step, placed exactly at the
// coupling points. Everything that couples nodes (app stepping before the
// shard phase; the room/ambient power reduction, control plane, controllers
// and metrics after the barrier) runs serially in node/registration order,
// and per-shard sample
// counters are reduced in shard order, so a sharded run is bit-identical to
// the serial engine (asserted by the differential oracle's
// sharded-vs-serial pairs).
// Thread-safety: an Engine (and the Cluster/app it drives) belongs to one
// thread. The first call to run() binds the engine to the calling thread and
// any later run() from a different thread trips a THERMCTL_ASSERT — catching
// the one misuse a parallel sweep invites (sharing a rig across runner
// workers instead of building one rig per sweep point; see src/runtime/).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/metrics.hpp"
#include "cluster/room.hpp"
#include "common/sim_time.hpp"
#include "obs/metrics_registry.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/app.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace_load.hpp"

namespace thermctl::cluster {

namespace ctrl {
class ControlPlane;
}

struct EngineConfig {
  Seconds physics_dt{0.05};
  Seconds horizon{900.0};
  Seconds record_period{0.25};
  /// Keep simulating this long after app completion (lets figures show the
  /// cool-down tail); 0 stops immediately.
  Seconds cooldown{0.0};
  /// Node shards for the per-step physics/sampling phase: 1 = serial engine
  /// (no pool), >1 = that many shards on a ThreadPool, 0 = one per hardware
  /// thread. Results are bit-identical for every value.
  int workers = 1;
};

class Engine {
 public:
  Engine(Cluster& cluster, EngineConfig config = {});

  /// Attaches a parallel app; rank r runs on node `node_for_rank[r]`.
  /// At most one rank per node. The app is not owned.
  void attach_app(workload::ParallelApp& app, std::vector<std::size_t> node_for_rank);

  /// Drives node `i` from a time-function load instead (not owned).
  void set_node_load(std::size_t i, const workload::SegmentLoad* load);
  void set_node_load(std::size_t i, const workload::TraceLoad* load);
  /// Fully general form: any utilization function of simulated time.
  void set_node_load_fn(std::size_t i, std::function<Utilization(SimTime)> load);

  /// Batched load hook for dense synthetic fleets: ONE call per physics step
  /// fills the fleet's whole utilization row in place of N per-node
  /// std::function dispatches (at 100k nodes the per-node hops cost more
  /// than the RC solve). The callback must write
  /// `util[i] = halted[i] != 0 ? 0.0 : <fraction in [0, 1]>` for every i.
  /// Requires the fleet-backed (SoA) cluster layout; per-node load functions
  /// still override individual nodes afterwards.
  using FleetLoadFn =
      std::function<void(SimTime, double* util, const std::uint8_t* halted, std::size_t count)>;
  void set_fleet_load_fn(FleetLoadFn load);

  /// Attaches a machine-room air model (not owned): each physics step the
  /// room mixes under the rack's dissipation and every node's inlet
  /// temperature is driven from it — closing the datacenter-level loop.
  void attach_room(RoomModel& room);

  /// Attaches a hierarchical control plane (not owned): its on_round fires
  /// serially at the BSP barrier every step, after room coupling and before
  /// controller ticks, so plane decisions land with one-step-fresh state and
  /// the local controllers see any cap/policy the plane just applied.
  void attach_plane(ctrl::ControlPlane& plane);

  /// Registers a periodic task (controller tick). Tasks fire after sensor
  /// sampling at the same instant, in registration order.
  void add_periodic(Seconds period, std::function<void(SimTime)> task);

  /// Models the in-band cost of a control daemon on node `i`: `per_tick` of
  /// CPU time stolen from the application every `period` (OS noise). The
  /// stolen fraction scales the delivered frequency the app sees on that
  /// node — and through barriers, taxes the whole parallel job. 0 disables.
  void set_inband_overhead(std::size_t i, Seconds per_tick, Seconds period);

  // ---- load migration (the in-band technique of Heath/Powell et al.) ----

  /// Node currently hosting rank `r` (requires an attached app).
  [[nodiscard]] std::size_t node_of_rank(std::size_t r) const;
  /// Rank hosted on node `i`, if any. O(1): served from a reverse map kept
  /// in sync by attach_app()/migrate_rank().
  [[nodiscard]] std::optional<std::size_t> rank_on_node(std::size_t i) const;

  /// Moves rank `r` to `new_node` (which must be free and not halted). The
  /// rank pays `cost` of checkpoint/transfer stall; the vacated node goes
  /// idle. Returns false (no change) if the target is occupied or down.
  bool migrate_rank(std::size_t r, std::size_t new_node, Seconds cost);

  [[nodiscard]] int migrations() const { return migrations_; }

  /// Points the engine at a metrics shard (nullptr detaches). Handles are
  /// resolved once here, so the run loop pays one branch + one non-atomic
  /// add per update — never a name lookup.
  void set_metrics(obs::MetricsShard* shard);

  /// Runs to completion and returns the recorded result.
  RunResult run();

  /// Asks a running engine to stop at the end of the current step (after the
  /// step's controllers and metrics have run), as if the horizon had been
  /// reached. Thread-safe and callable from any thread — this is how
  /// thermctld's socket `shutdown` ends a live run cleanly (spill finalize
  /// and result finalization happen exactly as on a natural exit). A stop
  /// requested before run() makes the run end after its first step.
  void request_stop() { stop_requested_.store(true, std::memory_order_release); }
  [[nodiscard]] bool stop_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  [[nodiscard]] SimTime now() const { return now_; }

  /// Shard count the physics phase will actually use (config workers
  /// resolved against hardware threads and clamped to the node count).
  [[nodiscard]] std::size_t resolved_workers() const;

 private:
  struct PeriodicTask {
    PeriodicSchedule schedule;
    std::function<void(SimTime)> fn;
  };

  void record_sample();
  [[nodiscard]] ActivityCode activity_of_node(std::size_t i) const;
  void finalize(RunResult& result) const;
  /// Physics + sampling for nodes [begin, end); `after` is the step's end
  /// time (sampling schedules are checked against it). Returns the number of
  /// sensor samples taken, for deterministic shard-order reduction.
  std::uint64_t step_shard(std::size_t begin, std::size_t end, Seconds dt, SimTime after);

  static constexpr std::size_t kNoRank = static_cast<std::size_t>(-1);

  Cluster& cluster_;
  EngineConfig config_;
  workload::ParallelApp* app_ = nullptr;
  RoomModel* room_ = nullptr;
  ctrl::ControlPlane* plane_ = nullptr;
  std::vector<std::size_t> node_for_rank_;
  std::vector<std::size_t> rank_of_node_;  // reverse map; kNoRank = vacant
  std::vector<std::function<Utilization(SimTime)>> node_loads_;
  FleetLoadFn fleet_load_;
  std::vector<double> steal_fraction_;  // per node, from in-band overhead
  std::vector<PeriodicTask> tasks_;
  MetricsRecorder recorder_;
  PeriodicSchedule record_schedule_;
  // Pre-resolved metric handles; all null when no shard is attached.
  obs::Counter* m_steps_ = nullptr;
  obs::Counter* m_sensor_samples_ = nullptr;
  obs::Counter* m_task_ticks_ = nullptr;
  obs::Counter* m_record_samples_ = nullptr;
  obs::Gauge* m_sim_time_ = nullptr;
  SimTime now_;
  int migrations_ = 0;
  // Hot-loop scratch, reused every physics step instead of reallocated.
  std::vector<GigaHertz> freqs_scratch_;
  std::vector<Utilization> utils_scratch_;
  // Shard machinery (only materialized when resolved_workers() > 1).
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::vector<std::uint64_t> shard_samples_;  // per-shard counts, reduced in shard order
  // Set by the first run(); later runs must come from the same thread.
  std::atomic<std::thread::id> owner_thread_{};
  // Cross-thread early-stop flag (see request_stop()).
  std::atomic<bool> stop_requested_{false};
};

}  // namespace thermctl::cluster
