#include "cluster/fleet_sweep.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace thermctl::cluster {

FleetSweep::FleetSweep(FleetState& fleet, const NodeParams& base,
                       const std::vector<Node*>& nodes)
    : fleet_(fleet), nodes_(nodes), convection_(base.package.convection) {
  THERMCTL_ASSERT(nodes_.size() == fleet_.size(), "sweep needs one node per fleet slot");

  die_temp_ = fleet_.batch().temperature_cell(0, fleet_.wiring().die);
  die_power_ = fleet_.batch().power_cell(0, fleet_.wiring().die);
  hs_amb_ = fleet_.wiring().hs_amb;

  fan_duty_ = fleet_.fan_duty_data();
  fan_rpm_ = fleet_.fan_rpm_data();
  fan_stuck_ = fleet_.fan_stuck_data();
  sensor_last_ = fleet_.sensor_last_data();
  pstate_ = fleet_.cpu_pstate_data();
  cpu_util_ = fleet_.cpu_util_data();
  cpu_die_temp_ = fleet_.cpu_die_temp_data();
  power_cache_ = fleet_.cpu_power_cache_data();
  power_valid_ = fleet_.cpu_power_valid_data();
  power_gen_ = fleet_.cpu_power_gen_data();
  throttled_ = fleet_.cpu_throttled_data();
  aperf_ = fleet_.cpu_aperf_data();
  mperf_ = fleet_.cpu_mperf_data();
  energy_uj_ = fleet_.cpu_energy_data();
  aperf_frac_ = fleet_.cpu_aperf_frac_data();
  mperf_frac_ = fleet_.cpu_mperf_frac_data();
  energy_frac_ = fleet_.cpu_energy_frac_data();
  inj_dyn_ = fleet_.inj_dyn_factor_data();
  inj_leak_ = fleet_.inj_leak_factor_data();
  inj_thr_ = fleet_.inj_thr_factor_data();
  inj_gen_ = fleet_.inj_generation_data();
  chip_temp_reg_ = fleet_.chip_temp_reg_data();
  chip_tach_ = fleet_.chip_tach_data();
  chip_last_rpm_ = fleet_.chip_last_rpm_data();
  chip_out_duty_ = fleet_.chip_out_duty_data();
  meter_energy_ = fleet_.meter_energy_data();
  meter_elapsed_ = fleet_.meter_elapsed_data();
  airflow_ = fleet_.airflow_data();
  airflow_set_ = fleet_.airflow_set_data();
  util_ = fleet_.util_data();
  busy_jiffies_ = fleet_.busy_jiffies_data();
  total_jiffies_ = fleet_.total_jiffies_data();
  jiffy_rem_busy_ = fleet_.jiffy_rem_busy_data();
  jiffy_rem_total_ = fleet_.jiffy_rem_total_data();
  prochot_events_ = fleet_.prochot_events_data();
  prochot_seconds_ = fleet_.prochot_seconds_data();
  halted_ = fleet_.halted_data();
  bmc_duty_ = fleet_.bmc_override_duty_data();
  bmc_set_ = fleet_.bmc_override_set_data();
  sample_schedule_ = fleet_.sample_schedule_data();

  const hw::CpuParams& cpu = base.cpu;
  pstate_freq_.reserve(cpu.pstates.size());
  pstate_v2_.reserve(cpu.pstates.size());
  for (const hw::PState& ps : cpu.pstates) {
    pstate_freq_.push_back(ps.frequency.value());
    pstate_v2_.push_back(ps.voltage.value() * ps.voltage.value());
  }
  max_freq_ = pstate_freq_.front();
  min_freq_ = pstate_freq_.back();
  k_dyn_ = cpu.k_dyn;
  k_leak_ = cpu.k_leak;
  leak_alpha_ = cpu.leakage_alpha;
  t_ref_ = cpu.t_ref.value();
  idle_activity_ = cpu.idle_activity;

  fan_max_rpm_ = base.fan.max_rpm.value();
  fan_stall_pct_ = base.fan.stall_duty.percent();
  fan_max_airflow_ = base.fan.max_airflow.value();
  fan_idle_w_ = base.fan.idle_power.value();
  fan_max_w_ = base.fan.max_power.value();
  rotor_tau_ = base.fan.rotor_tau.value();

  meter_base_w_ = base.meter.base_load.value();
  meter_eff_ = base.meter.psu_efficiency;
  meter_res_w_ = base.meter.resolution_watts;

  critical_enabled_ = base.protection.critical_enabled;
  prochot_enabled_ = base.protection.prochot_enabled;
  critical_c_ = base.protection.critical.value();
  prochot_c_ = base.protection.prochot.value();
  // Same arithmetic as `prochot - prochot_hysteresis` (Celsius - CelsiusDelta).
  prochot_release_c_ = base.protection.prochot.value() - base.protection.prochot_hysteresis.value();
}

double FleetSweep::cpu_power_w(std::size_t i) {
  // CpuDevice::power(): memoized until an input or the injection generation
  // changes; recompute stores the memo so later reads this step hit it.
  if (power_valid_[i] == 0 || power_gen_[i] != inj_gen_[i]) {
    const double v2 = pstate_v2_[pstate_[i]];
    const double activity = idle_activity_ + (1.0 - idle_activity_) * cpu_util_[i];
    const double eff = (throttled_[i] != 0) ? min_freq_ : pstate_freq_[pstate_[i]];
    const double p_dyn = k_dyn_ * v2 * eff * activity * inj_dyn_[i];
    const double p_leak =
        k_leak_ * v2 * (1.0 + leak_alpha_ * (cpu_die_temp_[i] - t_ref_)) * inj_leak_[i];
    power_cache_[i] = p_dyn + std::max(0.0, p_leak);
    power_valid_[i] = 1;
    power_gen_[i] = inj_gen_[i];
  }
  return power_cache_[i];
}

double FleetSweep::wall_power_w(std::size_t i) {
  const double frac = fan_rpm_[i] / fan_max_rpm_;
  const double dc_component = cpu_power_w(i) + (fan_idle_w_ + fan_max_w_ * frac * frac * frac);
  // PowerMeter::read_with: AC draw through PSU efficiency, display-rounded.
  const double dc = meter_base_w_ + dc_component;
  const double ac = dc / meter_eff_;
  return std::round(ac / meter_res_w_) * meter_res_w_;
}

void FleetSweep::pre_range(std::size_t begin, std::size_t end, Seconds dt) {
  THERMCTL_ASSERT(dt.value() > 0.0, "step duration must be positive");
  const double dtv = dt.value();

  // Pass 1 — utilization and die-temperature latch (Node::step_pre_thermal's
  // first block: halted zeroing, CpuDevice::set_utilization /
  // set_die_temperature, which invalidate the power memo).
  for (std::size_t i = begin; i < end; ++i) {
    if (halted_[i] != 0) {
      util_[i] = 0.0;
    }
    cpu_util_[i] = util_[i];
    cpu_die_temp_[i] = die_temp_[i];
    power_valid_[i] = 0;
  }

  // Pass 2 — fan duty latch + rotor dynamics (FanDevice::step). The BMC
  // override wins over the chip's PWM pin, as on real servers. The smoothing
  // factor is a function of dt alone; computing it per range call instead of
  // caching it per device avoids cross-shard mutable state.
  const double alpha = 1.0 - std::exp(-dtv / rotor_tau_);
  for (std::size_t i = begin; i < end; ++i) {
    const double duty = (bmc_set_[i] != 0) ? bmc_duty_[i] : chip_out_duty_[i];
    fan_duty_[i] = duty;
    double target = 0.0;
    if (fan_stuck_[i] == 0 && duty >= fan_stall_pct_) {
      const double span = 100.0 - fan_stall_pct_;
      const double dfrac = (duty - fan_stall_pct_) / span;
      constexpr double kMinFrac = 0.15;
      target = fan_max_rpm_ * (kMinFrac + (1.0 - kMinFrac) * dfrac);
    }
    double rpm = fan_rpm_[i];
    rpm += (target - rpm) * alpha;
    if (rpm < 1.0 && target == 0.0) {
      rpm = 0.0;
    }
    fan_rpm_[i] = rpm;
  }

  // Pass 3 — CPU power into the thermal batch (PackageModel::set_cpu_power).
  // The memo was invalidated in pass 1, so live nodes recompute exactly like
  // CpuDevice::power(); a halted node feeds the 2 W trickle and leaves its
  // memo invalid, as Node::step_pre_thermal does by never calling power().
  for (std::size_t i = begin; i < end; ++i) {
    die_power_[i] = (halted_[i] != 0) ? 2.0 : cpu_power_w(i);
  }

  // Pass 4 — airflow → convection resistance (PackageModel::set_airflow's
  // skip-if-unchanged memo; a settled rotor makes steady steps free).
  for (std::size_t i = begin; i < end; ++i) {
    const double af = fan_max_airflow_ * fan_rpm_[i] / fan_max_rpm_;
    if (airflow_set_[i] != 0 && af == airflow_[i]) {
      continue;
    }
    airflow_[i] = af;
    airflow_set_[i] = 1;
    fleet_.batch().set_resistance(i, hs_amb_, convection_.resistance(Cfm{af}));
  }
}

void FleetSweep::post_range(std::size_t begin, std::size_t end, Seconds dt) {
  const double dtv = dt.value();

  // Pass 1 — chip temperature register (Adt7467::set_measured_temperature's
  // early-out). Sub-degree drift never moves the int8 register; when it does
  // move, the register object re-runs the auto curve (and PWM mirror) itself.
  for (std::size_t i = begin; i < end; ++i) {
    const double die = die_temp_[i];
    const double clamped = std::clamp(die, -128.0, 127.0);
    const auto reg = static_cast<std::int8_t>(std::lround(clamped));
    if (reg != chip_temp_reg_[i]) {
      nodes_[i]->fan_chip().set_measured_temperature(Celsius{die});
    }
  }

  // Pass 2 — chip tach latch (Adt7467::set_measured_rpm).
  for (std::size_t i = begin; i < end; ++i) {
    const double rpm = fan_rpm_[i];
    if (rpm == chip_last_rpm_[i]) {
      continue;  // rotor at steady state: the latched tach period is current
    }
    chip_last_rpm_[i] = rpm;
    if (rpm < 100.0) {
      chip_tach_[i] = 0xFFFF;  // stalled / too slow to measure
    } else {
      const double count = hw::Adt7467::kTachClock / rpm;
      chip_tach_[i] = static_cast<std::uint16_t>(std::min(count, 65534.0));
    }
  }

  // Pass 3 — meter integration + hardware counters (PowerMeter::
  // integrate_with, CpuDevice::advance_counters). cpu_power_w resolves the
  // memo exactly like the object path: valid from pre for live nodes,
  // recomputed here for halted ones (whose pre phase skipped power()).
  for (std::size_t i = begin; i < end; ++i) {
    const double p_cpu = cpu_power_w(i);
    const double frac = fan_rpm_[i] / fan_max_rpm_;
    const double p_fan = fan_idle_w_ + fan_max_w_ * frac * frac * frac;
    const double dc = meter_base_w_ + (p_cpu + p_fan);
    meter_energy_[i] += dc / meter_eff_ * dtv;
    meter_elapsed_[i] += dtv;

    const double eff = (throttled_[i] != 0) ? min_freq_ : pstate_freq_[pstate_[i]];
    const double aperf_inc = eff * cpu_util_[i] * dtv * inj_thr_[i] * 1e3;
    const double mperf_inc = max_freq_ * dtv * 1e3;
    const double energy_inc = p_cpu * dtv * 1e6;
    aperf_frac_[i] += aperf_inc;
    mperf_frac_[i] += mperf_inc;
    energy_frac_[i] += energy_inc;
    const auto a = static_cast<std::uint64_t>(aperf_frac_[i]);
    const auto m = static_cast<std::uint64_t>(mperf_frac_[i]);
    const auto e = static_cast<std::uint64_t>(energy_frac_[i]);
    aperf_[i] += a;
    mperf_[i] += m;
    energy_uj_[i] += e;
    aperf_frac_[i] -= static_cast<double>(a);
    mperf_frac_[i] -= static_cast<double>(m);
    energy_frac_[i] -= static_cast<double>(e);
  }

  // Pass 4 — PROCHOT accounting, the protection ladder and jiffy accounting
  // (Node::step_post_thermal's tail). prochot_seconds accrues on the
  // *pre-protection* throttle state, exactly as in the object path.
  for (std::size_t i = begin; i < end; ++i) {
    if (throttled_[i] != 0) {
      prochot_seconds_[i] += dtv;
    }
    const double die = die_temp_[i];
    if (critical_enabled_ && die >= critical_c_ && halted_[i] == 0) {
      halted_[i] = 1;
      THERMCTL_LOG_WARN("node", "node %d THERMTRIP at %.1f C — halted", nodes_[i]->id(), die);
    }
    if (prochot_enabled_) {
      if (throttled_[i] == 0 && die >= prochot_c_) {
        throttled_[i] = 1;
        power_valid_[i] = 0;  // set_thermal_throttle invalidates the memo
        ++prochot_events_[i];
        THERMCTL_LOG_INFO("node", "node %d PROCHOT asserted at %.1f C", nodes_[i]->id(), die);
      } else if (throttled_[i] != 0 && die <= prochot_release_c_) {
        throttled_[i] = 0;
        power_valid_[i] = 0;
        THERMCTL_LOG_INFO("node", "node %d PROCHOT released at %.1f C", nodes_[i]->id(), die);
      }
    }

    jiffy_rem_busy_[i] += util_[i] * dtv * 100.0;
    jiffy_rem_total_[i] += dtv * 100.0;
    const auto busy_whole = static_cast<std::uint64_t>(jiffy_rem_busy_[i]);
    const auto total_whole = static_cast<std::uint64_t>(jiffy_rem_total_[i]);
    busy_jiffies_[i] += busy_whole;
    total_jiffies_[i] += total_whole;
    jiffy_rem_busy_[i] -= static_cast<double>(busy_whole);
    jiffy_rem_total_[i] -= static_cast<double>(total_whole);
  }
}

std::uint64_t FleetSweep::sample_range(std::size_t begin, std::size_t end, SimTime after) {
  std::uint64_t samples = 0;
  for (std::size_t i = begin; i < end; ++i) {
    while (sample_schedule_[i].due(after)) {
      nodes_[i]->sample_sensor();
      ++samples;
    }
  }
  return samples;
}

}  // namespace thermctl::cluster
