#include "cluster/room.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace thermctl::cluster {

RoomModel::RoomModel(std::size_t node_count, RoomParams params)
    : params_(params), offsets_(node_count, 0.0) {
  THERMCTL_ASSERT(node_count > 0, "room needs at least one node");
  THERMCTL_ASSERT(params_.tau.value() > 0.0, "mixing time constant must be positive");
  THERMCTL_ASSERT(params_.recirculation_k_per_w >= 0.0, "recirculation must be non-negative");
}

void RoomModel::set_node_offset(std::size_t i, CelsiusDelta offset) {
  THERMCTL_ASSERT(i < offsets_.size(), "node index out of range");
  offsets_[i] = offset.value();
}

void RoomModel::step(Seconds dt, Watts rack_power) {
  THERMCTL_ASSERT(dt.value() > 0.0, "step duration must be positive");
  const double target = params_.recirculation_k_per_w * rack_power.value();
  const double alpha = 1.0 - std::exp(-dt.value() / params_.tau.value());
  mixed_rise_ += (target - mixed_rise_) * alpha;
}

void RoomModel::settle(Watts rack_power) {
  mixed_rise_ = params_.recirculation_k_per_w * rack_power.value();
}

Celsius RoomModel::inlet(std::size_t i) const {
  THERMCTL_ASSERT(i < offsets_.size(), "node index out of range");
  return Celsius{params_.crac_supply.value() + mixed_rise_ + offsets_[i]};
}

Celsius RoomModel::steady_state_inlet(std::size_t i, Watts rack_power) const {
  THERMCTL_ASSERT(i < offsets_.size(), "node index out of range");
  return Celsius{params_.crac_supply.value() +
                 params_.recirculation_k_per_w * rack_power.value() + offsets_[i]};
}

}  // namespace thermctl::cluster
