#include "cluster/fleet_state.hpp"

#include <type_traits>

#include "thermal/rc_network.hpp"

namespace thermctl::cluster {

namespace {

// The batch template is wired by the same code path a standalone
// PackageModel uses, so every batch column starts bitwise-identical to a
// freshly constructed per-node network.
thermal::RcBatch make_batch(const thermal::PackageParams& package, std::size_t count,
                            thermal::PackageWiring* wiring_out) {
  thermal::RcNetwork tmpl;
  *wiring_out = thermal::PackageModel::wire_network(package, tmpl);
  return thermal::RcBatch{tmpl, count};
}

}  // namespace

FleetState::FleetState(const thermal::PackageParams& package, std::size_t count)
    : batch_(make_batch(package, count, &wiring_)),
      fan_duty_pct_(count, 0.0),
      fan_rpm_(count, 0.0),
      fan_stuck_(count, 0),
      sensor_last_(count, 0.0),
      cpu_pstate_(count, 0),
      cpu_util_(count, 0.0),
      cpu_die_temp_(count, 0.0),
      cpu_power_cache_(count, 0.0),
      cpu_power_valid_(count, 0),
      cpu_power_gen_(count, 0),
      cpu_throttled_(count, 0),
      cpu_transitions_(count, 0),
      cpu_aperf_(count, 0),
      cpu_mperf_(count, 0),
      cpu_energy_uj_(count, 0),
      cpu_aperf_frac_(count, 0.0),
      cpu_mperf_frac_(count, 0.0),
      cpu_energy_frac_(count, 0.0),
      inj_dyn_factor_(count, 1.0),
      inj_leak_factor_(count, 1.0),
      inj_thr_factor_(count, 1.0),
      inj_generation_(count, 0),
      chip_temp_reg_(count, 0),
      chip_tach_(count, 0),
      chip_last_rpm_(count, 0.0),
      chip_out_duty_pct_(count, 0.0),
      meter_energy_j_(count, 0.0),
      meter_elapsed_s_(count, 0.0),
      airflow_cfm_(count, 0.0),
      airflow_set_(count, 0),
      util_(count, 0.0),
      busy_jiffies_(count, 0),
      total_jiffies_(count, 0),
      jiffy_rem_busy_(count, 0.0),
      jiffy_rem_total_(count, 0.0),
      prochot_events_(count, 0),
      prochot_seconds_(count, 0.0),
      halted_(count, 0),
      bmc_override_duty_(count, 0.0),
      bmc_override_set_(count, 0),
      sample_schedule_(count) {}

std::size_t FleetState::memory_bytes() const {
  auto bytes = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  return batch_.memory_bytes() + bytes(fan_duty_pct_) + bytes(fan_rpm_) + bytes(fan_stuck_) +
         bytes(sensor_last_) + bytes(cpu_pstate_) + bytes(cpu_util_) + bytes(cpu_die_temp_) +
         bytes(cpu_power_cache_) + bytes(cpu_power_valid_) + bytes(cpu_power_gen_) +
         bytes(cpu_throttled_) + bytes(cpu_transitions_) + bytes(cpu_aperf_) +
         bytes(cpu_mperf_) + bytes(cpu_energy_uj_) + bytes(cpu_aperf_frac_) +
         bytes(cpu_mperf_frac_) + bytes(cpu_energy_frac_) + bytes(inj_dyn_factor_) +
         bytes(inj_leak_factor_) + bytes(inj_thr_factor_) + bytes(inj_generation_) +
         bytes(chip_temp_reg_) + bytes(chip_tach_) + bytes(chip_last_rpm_) +
         bytes(chip_out_duty_pct_) + bytes(meter_energy_j_) + bytes(meter_elapsed_s_) +
         bytes(airflow_cfm_) + bytes(airflow_set_) + bytes(util_) + bytes(busy_jiffies_) +
         bytes(total_jiffies_) + bytes(jiffy_rem_busy_) + bytes(jiffy_rem_total_) +
         bytes(prochot_events_) + bytes(prochot_seconds_) + bytes(halted_) +
         bytes(bmc_override_duty_) + bytes(bmc_override_set_) +
         sample_schedule_.capacity() * sizeof(PeriodicSchedule);
}

}  // namespace thermctl::cluster
