#include "cluster/fleet_state.hpp"

#include "thermal/rc_network.hpp"

namespace thermctl::cluster {

namespace {

// The batch template is wired by the same code path a standalone
// PackageModel uses, so every batch column starts bitwise-identical to a
// freshly constructed per-node network.
thermal::RcBatch make_batch(const thermal::PackageParams& package, std::size_t count,
                            thermal::PackageWiring* wiring_out) {
  thermal::RcNetwork tmpl;
  *wiring_out = thermal::PackageModel::wire_network(package, tmpl);
  return thermal::RcBatch{tmpl, count};
}

}  // namespace

FleetState::FleetState(const thermal::PackageParams& package, std::size_t count)
    : batch_(make_batch(package, count, &wiring_)),
      fan_duty_pct_(count, 0.0),
      fan_rpm_(count, 0.0),
      sensor_last_(count, 0.0) {}

}  // namespace thermctl::cluster
