// Machine-room air model: CRAC supply, recirculation, and hot pockets.
//
// The paper's motivation is data-center scale: "hot spots or pockets of
// elevated temperatures ... can be easily formed when room air circulation
// is not effective." This model closes that loop above the rack: each
// node's inlet temperature relaxes (first-order, minutes-scale) toward
//
//   T_inlet_i = T_supply + recirculation · P_rack + offset_i
//
// so the rack's own dissipation feeds back into every node's ambient, and
// per-node offsets model aisle geometry (the recirculation pockets the
// examples use). A coarse abstraction of the CFD/neural-net models of Choi
// and Moore et al. — enough to make "the room fights back" a simulated fact.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace thermctl::cluster {

struct RoomParams {
  /// Cold-aisle supply temperature from the CRAC units.
  Celsius crac_supply{26.0};
  /// Inlet rise per watt of total rack dissipation (recirculated fraction).
  double recirculation_k_per_w = 0.006;
  /// Room air mixing time constant.
  Seconds tau{120.0};
};

class RoomModel {
 public:
  RoomModel(std::size_t node_count, RoomParams params = {});

  /// Static per-node inlet offset (aisle position, blanking panels…).
  void set_node_offset(std::size_t i, CelsiusDelta offset);

  /// Advances room mixing by `dt` under the rack's current dissipation.
  void step(Seconds dt, Watts rack_power);

  /// Jumps straight to equilibrium for the given dissipation.
  void settle(Watts rack_power);

  [[nodiscard]] Celsius inlet(std::size_t i) const;
  [[nodiscard]] std::size_t node_count() const { return offsets_.size(); }

  /// Equilibrium inlet for node `i` at `rack_power` (analytic target).
  [[nodiscard]] Celsius steady_state_inlet(std::size_t i, Watts rack_power) const;

  /// Current common recirculation rise above CRAC supply (excludes per-node
  /// offsets) — the room-health signal coordinators budget against.
  [[nodiscard]] CelsiusDelta mixed_rise() const { return CelsiusDelta{mixed_rise_}; }

  [[nodiscard]] const RoomParams& params() const { return params_; }

 private:
  RoomParams params_;
  std::vector<double> offsets_;
  double mixed_rise_ = 0.0;  // current common recirculation rise, degC
};

}  // namespace thermctl::cluster
