// Parallel application execution model.
//
// Runs N rank Programs in lockstep simulated time. Each step the caller
// supplies per-rank CPU frequencies and a time slice; the model advances each
// rank through its phases (compute stretches with 1/f, communication doesn't)
// and resolves barriers *within* the slice so barrier latency is not
// quantized to the step size. Outputs per-rank utilization for the slice —
// the signal that drives CPU power, and that utilization-based governors
// (CPUSPEED) key off.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "workload/phase.hpp"

namespace thermctl::workload {

class ParallelApp {
 public:
  /// `wait_util` is the CPU utilization while blocked in a barrier (blocking
  /// MPI waits burn a little CPU on progress polling).
  ParallelApp(std::string name, std::vector<Program> rank_programs,
              Utilization wait_util = Utilization{0.10});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t rank_count() const { return ranks_.size(); }

  /// Advances the app by `dt` with the given per-rank frequencies (size must
  /// equal rank_count). Returns per-rank average utilization over the slice.
  std::vector<Utilization> step(Seconds dt, std::span<const GigaHertz> frequencies);

  /// Allocation-free variant for the simulation hot loop: `out` is cleared
  /// and refilled, reusing its capacity across steps.
  void step(Seconds dt, std::span<const GigaHertz> frequencies, std::vector<Utilization>& out);

  [[nodiscard]] bool done() const;

  /// Simulated wall time consumed so far.
  [[nodiscard]] Seconds elapsed() const { return elapsed_; }

  /// Wall time at which the last rank finished (valid once done()).
  [[nodiscard]] Seconds completion_time() const { return completion_; }

  /// Fraction of program phases completed by the slowest rank, in [0, 1].
  [[nodiscard]] double progress() const;

  /// Cumulative time rank `r` has spent blocked at barriers — the in-band
  /// slowdown tax that coupled DVFS imposes on *other* nodes.
  [[nodiscard]] Seconds barrier_wait_time(std::size_t r) const;

  /// Injects an execution stall into rank `r` (checkpoint/restart cost of a
  /// process migration, OS hiccup, …). The rank makes no program progress
  /// for `duration` of simulated time, running at `util` (state transfer).
  void inject_stall(std::size_t r, Seconds duration, Utilization util = Utilization{0.30});

  /// What rank `r` is doing right now — the signal a Tempest-style profiler
  /// samples to attribute heat to program activity. Barrier covers both
  /// checked-in waiting and pending release; nullopt = program finished.
  [[nodiscard]] std::optional<PhaseKind> current_phase_kind(std::size_t r) const;

 private:
  struct Rank {
    Program program;
    std::size_t phase = 0;          // current phase index
    double remaining_work = 0.0;    // GHz-s left in current compute phase
    double remaining_wall = 0.0;    // seconds left in current comm/idle phase
    std::size_t barriers_reached = 0;
    double busy_accum = 0.0;        // utilization-weighted seconds this step
    double budget = 0.0;            // seconds left to consume this step
    double barrier_wait = 0.0;      // lifetime barrier wait, seconds
    double stall_remaining = 0.0;   // injected stall, seconds
    double stall_util = 0.0;        // utilization while stalled
    bool finished = false;
    // Kind of program[phase], refreshed by load_phase. Programs run to
    // millions of phases; the recording path polls the current kind every
    // sample, and this keeps that poll off the (cold, huge) program vector.
    PhaseKind current_kind = PhaseKind::kCompute;
  };

  void load_phase(Rank& r);
  /// Advances `r` until its budget is exhausted or it blocks at a barrier.
  void run_rank(Rank& r, GigaHertz f);
  /// True if every unfinished rank is blocked at barrier epoch `epoch`.
  [[nodiscard]] bool barrier_releasable(std::size_t epoch) const;

  std::string name_;
  std::vector<Rank> ranks_;
  Utilization wait_util_;
  std::size_t barrier_epoch_ = 0;  // barriers fully released so far
  Seconds elapsed_{0.0};
  Seconds completion_{0.0};
};

}  // namespace thermctl::workload
