#include "workload/app.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace thermctl::workload {

namespace {
constexpr double kEps = 1e-12;
constexpr double kIdleUtil = 0.02;  // finished ranks tick over at OS idle
}  // namespace

double total_work(const Program& p) {
  double w = 0.0;
  for (const Phase& ph : p) {
    w += ph.work_ghz_s;
  }
  return w;
}

Seconds total_fixed_wall(const Program& p) {
  double t = 0.0;
  for (const Phase& ph : p) {
    t += ph.wall.value();
  }
  return Seconds{t};
}

Seconds ideal_duration(const Program& p, GigaHertz f) {
  THERMCTL_ASSERT(f.value() > 0.0, "frequency must be positive");
  return Seconds{total_work(p) / f.value() + total_fixed_wall(p).value()};
}

ParallelApp::ParallelApp(std::string name, std::vector<Program> rank_programs,
                         Utilization wait_util)
    : name_(std::move(name)), wait_util_(wait_util) {
  THERMCTL_ASSERT(!rank_programs.empty(), "app needs at least one rank");
  // All ranks must agree on the number of barriers or the app would hang.
  std::size_t barriers = 0;
  for (std::size_t r = 0; r < rank_programs.size(); ++r) {
    std::size_t count = 0;
    for (const Phase& ph : rank_programs[r]) {
      if (ph.kind == PhaseKind::kBarrier) {
        ++count;
      }
    }
    if (r == 0) {
      barriers = count;
    } else {
      THERMCTL_ASSERT(count == barriers, "rank programs disagree on barrier count");
    }
  }
  ranks_.reserve(rank_programs.size());
  for (auto& prog : rank_programs) {
    Rank rank;
    rank.program = std::move(prog);
    ranks_.push_back(std::move(rank));
    load_phase(ranks_.back());
  }
}

void ParallelApp::load_phase(Rank& r) {
  if (r.phase >= r.program.size()) {
    r.finished = true;
    return;
  }
  const Phase& ph = r.program[r.phase];
  r.remaining_work = ph.work_ghz_s;
  r.remaining_wall = ph.wall.value();
  r.current_kind = ph.kind;
}

bool ParallelApp::barrier_releasable(std::size_t epoch) const {
  bool any_waiting = false;
  for (const Rank& r : ranks_) {
    if (r.finished) {
      continue;
    }
    if (r.barriers_reached < epoch) {
      return false;
    }
    any_waiting = true;
  }
  // All-finished (or empty) must not release further epochs, or the release
  // loop would spin forever once the app completes.
  return any_waiting;
}

void ParallelApp::run_rank(Rank& r, GigaHertz f) {
  while (r.budget > kEps && !r.finished) {
    if (r.stall_remaining > kEps) {
      const double t = std::min(r.budget, r.stall_remaining);
      r.stall_remaining -= t;
      r.busy_accum += r.stall_util * t;
      r.budget -= t;
      continue;
    }
    const Phase& ph = r.program[r.phase];
    switch (ph.kind) {
      case PhaseKind::kCompute: {
        const double needed = r.remaining_work / f.value();
        const double t = std::min(r.budget, needed);
        r.remaining_work -= f.value() * t;
        r.busy_accum += ph.util.fraction() * t;
        r.budget -= t;
        if (r.remaining_work <= kEps) {
          ++r.phase;
          load_phase(r);
        }
        break;
      }
      case PhaseKind::kCommunicate:
      case PhaseKind::kIdle: {
        const double t = std::min(r.budget, r.remaining_wall);
        r.remaining_wall -= t;
        r.busy_accum += ph.util.fraction() * t;
        r.budget -= t;
        if (r.remaining_wall <= kEps) {
          ++r.phase;
          load_phase(r);
        }
        break;
      }
      case PhaseKind::kBarrier: {
        // Barrier phases load with work == 0; remaining_work doubles as the
        // "already checked in" marker so arrival is counted exactly once.
        if (r.remaining_work == 0.0) {
          r.remaining_work = 1.0;  // checked in
          ++r.barriers_reached;
        }
        if (barrier_epoch_ >= r.barriers_reached) {
          ++r.phase;  // barrier already released; pass through
          load_phase(r);
          break;
        }
        return;  // blocked; budget (if any) may be consumed as wait later
      }
    }
  }
}

std::vector<Utilization> ParallelApp::step(Seconds dt, std::span<const GigaHertz> frequencies) {
  std::vector<Utilization> out;
  step(dt, frequencies, out);
  return out;
}

void ParallelApp::step(Seconds dt, std::span<const GigaHertz> frequencies,
                       std::vector<Utilization>& out) {
  THERMCTL_ASSERT(dt.value() > 0.0, "step duration must be positive");
  THERMCTL_ASSERT(frequencies.size() == ranks_.size(), "one frequency per rank required");
  for (Rank& r : ranks_) {
    r.budget = dt.value();
    r.busy_accum = 0.0;
  }

  // Advance everyone, releasing barriers as they fill, until quiescent.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < ranks_.size(); ++i) {
      Rank& r = ranks_[i];
      if (r.finished && r.budget > kEps) {
        r.busy_accum += kIdleUtil * r.budget;
        r.budget = 0.0;
        continue;
      }
      run_rank(r, frequencies[i]);
    }
    while (barrier_releasable(barrier_epoch_ + 1)) {
      ++barrier_epoch_;
      progress = true;
    }
  }

  // Whatever budget is left on blocked ranks is barrier waiting time.
  for (Rank& r : ranks_) {
    if (r.budget > kEps) {
      r.busy_accum += wait_util_.fraction() * r.budget;
      r.barrier_wait += r.budget;
      r.budget = 0.0;
    }
  }

  elapsed_ += dt;
  if (done() && completion_.value() == 0.0) {
    completion_ = elapsed_;
  }

  out.clear();
  out.reserve(ranks_.size());
  for (Rank& r : ranks_) {
    out.emplace_back(std::clamp(r.busy_accum / dt.value(), 0.0, 1.0));
  }
}

bool ParallelApp::done() const {
  return std::all_of(ranks_.begin(), ranks_.end(), [](const Rank& r) { return r.finished; });
}

double ParallelApp::progress() const {
  double min_frac = 1.0;
  for (const Rank& r : ranks_) {
    const double frac = r.program.empty()
                            ? 1.0
                            : static_cast<double>(r.phase) / static_cast<double>(r.program.size());
    min_frac = std::min(min_frac, r.finished ? 1.0 : frac);
  }
  return min_frac;
}

Seconds ParallelApp::barrier_wait_time(std::size_t r) const {
  THERMCTL_ASSERT(r < ranks_.size(), "rank out of range");
  return Seconds{ranks_[r].barrier_wait};
}

std::optional<PhaseKind> ParallelApp::current_phase_kind(std::size_t r) const {
  THERMCTL_ASSERT(r < ranks_.size(), "rank out of range");
  const Rank& rank = ranks_[r];
  if (rank.finished) {
    return std::nullopt;
  }
  return rank.current_kind;
}

void ParallelApp::inject_stall(std::size_t r, Seconds duration, Utilization util) {
  THERMCTL_ASSERT(r < ranks_.size(), "rank out of range");
  THERMCTL_ASSERT(duration.value() >= 0.0, "stall duration must be non-negative");
  ranks_[r].stall_remaining += duration.value();
  ranks_[r].stall_util = util.fraction();
}

}  // namespace thermctl::workload
