#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace thermctl::workload {

Program cpu_burn_program(Seconds duration, GigaHertz nominal_f) {
  THERMCTL_ASSERT(duration.value() > 0.0, "duration must be positive");
  Program p;
  p.push_back(compute_phase(duration.value() * nominal_f.value()));
  return p;
}

SegmentLoad::SegmentLoad(std::vector<LoadSegment> segments, std::uint64_t noise_seed)
    : segments_(std::move(segments)), seed_(noise_seed) {
  THERMCTL_ASSERT(!segments_.empty(), "schedule needs at least one segment");
}

Seconds SegmentLoad::total_duration() const {
  double t = 0.0;
  for (const LoadSegment& s : segments_) {
    t += s.duration.value();
  }
  return Seconds{t};
}

Utilization SegmentLoad::at(SimTime t) const {
  double remaining = t.seconds();
  const LoadSegment* seg = nullptr;
  double local = 0.0;
  for (const LoadSegment& s : segments_) {
    if (remaining < s.duration.value()) {
      seg = &s;
      local = remaining;
      break;
    }
    remaining -= s.duration.value();
  }
  if (seg == nullptr) {
    return Utilization{0.0};  // past the end: idle
  }

  const double frac = seg->duration.value() > 0.0 ? local / seg->duration.value() : 0.0;
  double u = seg->util_begin + (seg->util_end - seg->util_begin) * frac;

  if (seg->jitter_amplitude > 0.0 && seg->jitter_period.value() > 0.0) {
    const double phase = std::fmod(local, seg->jitter_period.value());
    u += (phase < seg->jitter_period.value() / 2.0) ? seg->jitter_amplitude
                                                    : -seg->jitter_amplitude;
  }

  if (seg->noise_sigma > 0.0) {
    // Hash the microsecond timestamp so evaluation is stateless and
    // deterministic regardless of sampling order.
    std::uint64_t h = seed_ ^ static_cast<std::uint64_t>(t.us()) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
    // Box–Muller needs two uniforms; derive the second from another mix.
    std::uint64_t h2 = h * 0xc4ceb9fe1a85ec53ULL;
    h2 ^= h2 >> 33;
    const double unit2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
    const double gauss =
        std::sqrt(-2.0 * std::log(std::max(unit, 1e-300))) * std::cos(6.283185307179586 * unit2);
    u += seg->noise_sigma * gauss;
  }

  return Utilization{std::clamp(u, 0.0, 1.0)};
}

SegmentLoad fig2_profile(double scale, std::uint64_t seed) {
  THERMCTL_ASSERT(scale > 0.0, "scale must be positive");
  auto secs = [scale](double s) { return Seconds{s * scale}; };
  std::vector<LoadSegment> segs;
  // Idle lead-in.
  segs.push_back({secs(20.0), 0.03, 0.03, 0.0, Seconds{0.0}, 0.01});
  // Type I: sudden jump to full utilization...
  // Type II: ...held long enough that temperature climbs gradually.
  segs.push_back({secs(90.0), 1.0, 1.0, 0.0, Seconds{0.0}, 0.02});
  // Sudden drop to light load.
  segs.push_back({secs(30.0), 0.15, 0.15, 0.0, Seconds{0.0}, 0.02});
  // Type III: jitter — bursty oscillation with no sustained trend.
  segs.push_back({secs(60.0), 0.5, 0.5, 0.35, secs(3.0), 0.05});
  // Gradual ramp down.
  segs.push_back({secs(40.0), 0.6, 0.05, 0.0, Seconds{0.0}, 0.02});
  return SegmentLoad{std::move(segs), seed};
}

SegmentLoad sudden_profile(Seconds lead, Seconds hold, double level) {
  std::vector<LoadSegment> segs;
  segs.push_back({lead, 0.03, 0.03, 0.0, Seconds{0.0}, 0.0});
  segs.push_back({hold, level, level, 0.0, Seconds{0.0}, 0.0});
  segs.push_back({lead, 0.03, 0.03, 0.0, Seconds{0.0}, 0.0});
  return SegmentLoad{std::move(segs)};
}

SegmentLoad gradual_profile(Seconds duration, double level) {
  std::vector<LoadSegment> segs;
  segs.push_back({duration, level, level, 0.0, Seconds{0.0}, 0.0});
  return SegmentLoad{std::move(segs)};
}

SegmentLoad jitter_profile(Seconds duration, double mean, double amplitude, Seconds period) {
  std::vector<LoadSegment> segs;
  segs.push_back({duration, mean, mean, amplitude, period, 0.0});
  return SegmentLoad{std::move(segs)};
}

}  // namespace thermctl::workload
