// Utilization trace replay.
//
// Downstream users rarely have phase-structured models of their codes — they
// have monitoring exports. TraceLoad replays a recorded utilization series
// (time, utilization rows from CSV, or in-memory samples) against the
// simulated node: step interpolation or linear interpolation between
// samples, optional looping for open-ended soak runs.
#pragma once

#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "common/units.hpp"

namespace thermctl::workload {

struct TraceSample {
  double time_s = 0.0;
  double utilization = 0.0;  // fraction in [0, 1]
};

struct TraceLoadOptions {
  /// Linear interpolation between samples (false = step/hold).
  bool interpolate = false;
  /// Wrap around at the end instead of going idle.
  bool loop = false;
};

class TraceLoad {
 public:
  /// Samples must be in strictly increasing time order.
  TraceLoad(std::vector<TraceSample> samples, TraceLoadOptions options = {});

  /// Parses a CSV of `time_s,utilization` rows (header optional; '#'
  /// comments ignored). Throws std::runtime_error on unreadable files or
  /// unparseable rows.
  [[nodiscard]] static TraceLoad from_csv(const std::string& path,
                                          TraceLoadOptions options = {});

  [[nodiscard]] Utilization at(SimTime t) const;
  [[nodiscard]] Seconds duration() const;
  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }
  [[nodiscard]] bool done(SimTime t) const {
    return !options_.loop && t.seconds() >= duration().value();
  }

 private:
  std::vector<TraceSample> samples_;
  TraceLoadOptions options_;
};

}  // namespace thermctl::workload
