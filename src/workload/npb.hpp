// NAS-Parallel-Benchmark-like workload generators.
//
// The paper evaluates on NPB BT and LU (class B, 4 ranks). Those codes are
// bulk-synchronous iterative solvers: each time step does a slab of
// floating-point work per rank, exchanges boundary data, and synchronizes.
// Real NPB binaries cannot run here (no MPI cluster), so these generators
// emit phase Programs with the same *temporal structure*: N iterations of
// [compute | communicate | barrier], with per-rank, per-iteration work
// imbalance. The structure is what matters to the experiments — it is the
// alternation of high-utilization compute and low-utilization communication
// that makes CPUSPEED thrash frequencies (Table 1) while the thermal load
// stays "gradual" (Fig. 2).
//
// Default parameters are calibrated so BT.B.4 takes ≈ 219 s at 2.4 GHz
// (Table 1's CPUSPEED/75% cell) and LU.B.4 ≈ 205 s.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "workload/phase.hpp"

namespace thermctl::workload {

struct NpbParams {
  /// Benchmark iterations (NPB "time steps").
  int iterations = 200;
  /// Compute work per rank per iteration, GHz-seconds.
  double work_per_iter_ghz_s = 1.80;
  /// Total communication wall time per iteration (mean, across sub-phases).
  Seconds comm_per_iter{0.30};
  /// Exchange sub-phases per iteration (BT sweeps x/y/z faces: 3).
  int comm_subphases = 3;
  /// Relative variation of each exchange's duration (uniform ±). Real
  /// interconnects make exchange times irregular; this is what keeps
  /// utilization-driven governors from phase-locking onto the iteration
  /// period.
  double comm_jitter = 0.30;
  /// Probability that one exchange in an iteration becomes a straggler
  /// (network contention), extended by `straggler_extra`. Stragglers are the
  /// low-utilization windows CPUSPEED reacts to.
  double straggler_prob = 0.25;
  Seconds straggler_extra{0.35};
  /// Utilization during communication (progress engine + memcpy).
  Utilization comm_util{0.35};
  /// Relative per-iteration work jitter (uniform ±).
  double work_jitter = 0.04;
  /// Static per-rank imbalance (uniform ±, fixed for the whole run).
  double rank_imbalance = 0.02;
  /// Every `rinse_period` iterations insert a heavier "checkpoint" iteration
  /// (NPB verification/norm steps); 0 disables.
  int rinse_period = 50;
  double rinse_factor = 1.6;
};

/// Per-rank programs for an NPB-like benchmark.
[[nodiscard]] std::vector<Program> make_npb_programs(const NpbParams& params, int ranks,
                                                     Rng& rng);

/// BT class B on 4 ranks: longer compute slabs, moderate comm.
[[nodiscard]] NpbParams bt_class_b();

/// LU class B on 4 ranks: shorter iterations, lighter comm (pipelined
/// wavefront exchanges), more of them.
[[nodiscard]] NpbParams lu_class_b();

}  // namespace thermctl::workload
