#include "workload/npb.hpp"

#include "common/assert.hpp"

namespace thermctl::workload {

NpbParams bt_class_b() {
  NpbParams p;
  p.iterations = 200;
  // Calibrated to Table 1's 219 s at 2.4 GHz: 200 * (1.98/2.4 compute +
  // 0.15 comm + 0.30 * 0.40 expected straggler time) ≈ 219 s. BT is
  // compute-dominated; the straggled exchanges are what dip utilization.
  p.work_per_iter_ghz_s = 1.98;
  p.comm_per_iter = Seconds{0.15};
  p.comm_subphases = 3;  // x/y/z face exchanges per timestep
  p.comm_jitter = 0.30;
  p.straggler_prob = 0.30;
  p.straggler_extra = Seconds{0.40};
  p.comm_util = Utilization{0.35};
  p.work_jitter = 0.04;
  p.rank_imbalance = 0.02;
  p.rinse_period = 50;
  p.rinse_factor = 1.6;
  return p;
}

NpbParams lu_class_b() {
  NpbParams p;
  p.iterations = 250;
  // ≈ 208 s at 2.4 GHz including expected straggler time.
  p.work_per_iter_ghz_s = 1.58;
  p.comm_per_iter = Seconds{0.10};
  p.comm_subphases = 2;  // pipelined wavefront: fewer, lighter exchanges
  p.comm_jitter = 0.35;
  p.straggler_prob = 0.25;
  p.straggler_extra = Seconds{0.30};
  p.comm_util = Utilization{0.30};
  p.work_jitter = 0.06;
  p.rank_imbalance = 0.03;
  p.rinse_period = 60;
  p.rinse_factor = 1.4;
  return p;
}

std::vector<Program> make_npb_programs(const NpbParams& params, int ranks, Rng& rng) {
  THERMCTL_ASSERT(ranks > 0, "need at least one rank");
  THERMCTL_ASSERT(params.iterations > 0, "need at least one iteration");
  THERMCTL_ASSERT(params.comm_subphases >= 1, "need at least one exchange per iteration");
  THERMCTL_ASSERT(params.work_jitter >= 0.0 && params.work_jitter < 1.0, "bad jitter");
  THERMCTL_ASSERT(params.comm_jitter >= 0.0 && params.comm_jitter < 1.0, "bad comm jitter");
  THERMCTL_ASSERT(params.rank_imbalance >= 0.0 && params.rank_imbalance < 1.0, "bad imbalance");
  THERMCTL_ASSERT(params.straggler_prob >= 0.0 && params.straggler_prob <= 1.0,
                  "bad straggler probability");

  // Fixed per-rank speed factors for the whole run (data decomposition is
  // static in NPB, so imbalance is persistent, not per-iteration noise).
  std::vector<double> rank_factor(static_cast<std::size_t>(ranks));
  for (auto& f : rank_factor) {
    f = 1.0 + rng.uniform(-params.rank_imbalance, params.rank_imbalance);
  }

  const auto subs = static_cast<std::size_t>(params.comm_subphases);
  std::vector<Program> programs(static_cast<std::size_t>(ranks));
  for (auto& p : programs) {
    p.reserve(static_cast<std::size_t>(params.iterations) * (2 * subs + 1) + 2);
    // Startup: problem initialization (memory-bound, lower utilization).
    p.push_back(comm_phase(Seconds{1.5}, Utilization{0.55}));
    p.push_back(barrier_phase());
  }

  for (int it = 0; it < params.iterations; ++it) {
    const bool rinse =
        params.rinse_period > 0 && it > 0 && (it % params.rinse_period) == 0;
    // Shared per-iteration randomness: ranks stay loosely correlated (same
    // global solver state, collective exchanges) but not identical.
    const double iter_jitter = 1.0 + rng.uniform(-params.work_jitter, params.work_jitter);
    std::vector<double> comm_durations(subs);
    for (auto& d : comm_durations) {
      d = params.comm_per_iter.value() / static_cast<double>(subs) *
          (1.0 + rng.uniform(-params.comm_jitter, params.comm_jitter));
    }
    // Network contention occasionally stretches one exchange — the
    // low-utilization windows utilization-driven governors key off.
    if (rng.uniform() < params.straggler_prob) {
      comm_durations[rng.below(subs)] += params.straggler_extra.value();
    }

    for (int r = 0; r < ranks; ++r) {
      auto& p = programs[static_cast<std::size_t>(r)];
      double work = params.work_per_iter_ghz_s * iter_jitter *
                    rank_factor[static_cast<std::size_t>(r)];
      if (rinse) {
        work *= params.rinse_factor;
      }
      for (std::size_t s = 0; s < subs; ++s) {
        p.push_back(compute_phase(work / static_cast<double>(subs)));
        p.push_back(comm_phase(Seconds{comm_durations[s]}, params.comm_util));
      }
      p.push_back(barrier_phase());
    }
  }
  return programs;
}

}  // namespace thermctl::workload
