#include "workload/trace_load.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"

namespace thermctl::workload {

TraceLoad::TraceLoad(std::vector<TraceSample> samples, TraceLoadOptions options)
    : samples_(std::move(samples)), options_(options) {
  THERMCTL_ASSERT(!samples_.empty(), "trace needs at least one sample");
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    THERMCTL_ASSERT(samples_[i].time_s > samples_[i - 1].time_s,
                    "trace times must be strictly increasing");
  }
}

TraceLoad TraceLoad::from_csv(const std::string& path, TraceLoadOptions options) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error("TraceLoad: cannot open " + path);
  }
  std::vector<TraceSample> samples;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    if (line.find_first_not_of(" \t\r,") == std::string::npos) {
      continue;
    }
    std::replace(line.begin(), line.end(), ',', ' ');
    std::istringstream row{line};
    TraceSample s;
    if (!(row >> s.time_s >> s.utilization)) {
      // Permit one header row; anything else unparseable is an error.
      if (samples.empty() && line_no == 1) {
        continue;
      }
      throw std::runtime_error("TraceLoad: bad row at " + path + ":" +
                               std::to_string(line_no));
    }
    s.utilization = std::clamp(s.utilization, 0.0, 1.0);
    samples.push_back(s);
  }
  if (samples.empty()) {
    throw std::runtime_error("TraceLoad: no samples in " + path);
  }
  return TraceLoad{std::move(samples), options};
}

Seconds TraceLoad::duration() const { return Seconds{samples_.back().time_s}; }

Utilization TraceLoad::at(SimTime t) const {
  double s = t.seconds();
  const double dur = duration().value();
  if (options_.loop && dur > 0.0) {
    s = std::fmod(s, dur);
  }
  if (s <= samples_.front().time_s) {
    return Utilization{samples_.front().utilization};
  }
  if (s >= samples_.back().time_s) {
    return options_.loop ? Utilization{samples_.back().utilization} : Utilization{0.0};
  }
  // Binary search for the bracketing pair.
  const auto upper = std::upper_bound(
      samples_.begin(), samples_.end(), s,
      [](double value, const TraceSample& sample) { return value < sample.time_s; });
  const TraceSample& hi = *upper;
  const TraceSample& lo = *(upper - 1);
  if (!options_.interpolate) {
    return Utilization{lo.utilization};
  }
  const double frac = (s - lo.time_s) / (hi.time_s - lo.time_s);
  return Utilization{lo.utilization + frac * (hi.utilization - lo.utilization)};
}

}  // namespace thermctl::workload
