// Workload phase vocabulary.
//
// Applications are modelled as per-rank sequences of phases. The crucial
// distinction for thermal control is between *frequency-scalable* work
// (compute: its wall time stretches when DVFS slows the clock — the in-band
// performance cost) and *frequency-insensitive* time (communication, idle:
// the CPU is mostly waiting, so scaling is nearly free there). Barriers
// couple the ranks: everyone waits for the slowest, which is how one
// throttled node taxes the whole parallel job.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace thermctl::workload {

enum class PhaseKind {
  kCompute,      // fixed work, wall time = work / frequency
  kCommunicate,  // fixed wall time, moderate utilization (MPI progress)
  kIdle,         // fixed wall time, near-zero utilization
  kBarrier,      // wait until all ranks arrive
};

struct Phase {
  PhaseKind kind = PhaseKind::kIdle;
  /// For kCompute: work in GHz-seconds (i.e. 1e9 cycles).
  double work_ghz_s = 0.0;
  /// For kCommunicate / kIdle: wall-clock duration.
  Seconds wall{0.0};
  /// CPU utilization while the phase runs (compute defaults to 1.0).
  Utilization util{0.0};
};

/// One rank's complete program.
using Program = std::vector<Phase>;

[[nodiscard]] inline Phase compute_phase(double work_ghz_s, Utilization util = Utilization{1.0}) {
  return Phase{PhaseKind::kCompute, work_ghz_s, Seconds{0.0}, util};
}

[[nodiscard]] inline Phase comm_phase(Seconds wall, Utilization util = Utilization{0.35}) {
  return Phase{PhaseKind::kCommunicate, 0.0, wall, util};
}

[[nodiscard]] inline Phase idle_phase(Seconds wall, Utilization util = Utilization{0.02}) {
  return Phase{PhaseKind::kIdle, 0.0, wall, util};
}

[[nodiscard]] inline Phase barrier_phase() {
  return Phase{PhaseKind::kBarrier, 0.0, Seconds{0.0}, Utilization{0.0}};
}

/// Total compute work in a program (GHz-seconds).
[[nodiscard]] double total_work(const Program& p);

/// Total frequency-insensitive wall time in a program.
[[nodiscard]] Seconds total_fixed_wall(const Program& p);

/// Ideal (no-waiting) duration of a program at a constant frequency.
[[nodiscard]] Seconds ideal_duration(const Program& p, GigaHertz f);

}  // namespace thermctl::workload
