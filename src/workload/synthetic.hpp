// Synthetic load generators.
//
// Two families:
//
//  * `cpu_burn_program` — the paper's §4.2 stressor: sustained 100%
//    utilization for a fixed duration ("cpu-burn" from Robert Redelmeier's
//    burnK7 family). Used to exercise the fan controller across its whole
//    range (Fig. 5).
//
//  * `SegmentLoad` — a time-driven utilization function assembled from
//    segments (constant, ramp, square-wave jitter, random bursts). These
//    reproduce the three thermal behaviour types of §3.1 / Fig. 2:
//    Type I "sudden" (step changes), Type II "gradual" (sustained load
//    against thermal mass), Type III "jitter" (bursty oscillation with no
//    sustained trend).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "workload/phase.hpp"

namespace thermctl::workload {

/// A cpu-burn run: `duration` of solid compute (work sized for frequency `f`
/// so the wall time is duration at full speed), no barriers.
[[nodiscard]] Program cpu_burn_program(Seconds duration, GigaHertz nominal_f = GigaHertz{2.4});

/// One segment of a time-driven utilization schedule.
struct LoadSegment {
  Seconds duration{0.0};
  /// Utilization at segment start and end (linear in between → ramps).
  double util_begin = 0.0;
  double util_end = 0.0;
  /// Square-wave jitter: ± amplitude toggled every half `jitter_period`.
  double jitter_amplitude = 0.0;
  Seconds jitter_period{0.0};
  /// Gaussian per-sample noise sigma on top.
  double noise_sigma = 0.0;
};

/// Evaluates a segment schedule at arbitrary times. Deterministic given the
/// seed: noise is hashed from the sample time, not from call order.
class SegmentLoad {
 public:
  SegmentLoad(std::vector<LoadSegment> segments, std::uint64_t noise_seed = 0);

  [[nodiscard]] Utilization at(SimTime t) const;
  [[nodiscard]] Seconds total_duration() const;
  [[nodiscard]] bool done(SimTime t) const { return t.seconds() >= total_duration().value(); }

 private:
  std::vector<LoadSegment> segments_;
  std::uint64_t seed_;
};

/// Fig. 2-style composite: idle → sudden step to full → gradual hold →
/// sudden drop → jitter burst → idle. `scale` stretches all durations.
[[nodiscard]] SegmentLoad fig2_profile(double scale = 1.0, std::uint64_t seed = 42);

/// Pure Type I: idle, step to full, hold, step down.
[[nodiscard]] SegmentLoad sudden_profile(Seconds lead, Seconds hold, double level = 1.0);

/// Pure Type II: long full-utilization hold (the thermal mass makes the
/// *temperature* gradual even though utilization is constant).
[[nodiscard]] SegmentLoad gradual_profile(Seconds duration, double level = 1.0);

/// Pure Type III: oscillation around a mean with no sustained trend.
[[nodiscard]] SegmentLoad jitter_profile(Seconds duration, double mean = 0.5,
                                         double amplitude = 0.35,
                                         Seconds period = Seconds{2.0});

}  // namespace thermctl::workload
