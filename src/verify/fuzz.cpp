#include "verify/fuzz.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/coordinator/coordinator.hpp"
#include "cluster/engine.hpp"
#include "core/pid_fan.hpp"
#include "core/predictive_fan.hpp"
#include "core/step_wise.hpp"
#include "core/unified_controller.hpp"
#include "workload/synthetic.hpp"
#include "hw/adt7467.hpp"
#include "hw/cpu_device.hpp"
#include "hw/i2c.hpp"
#include "hw/thermal_sensor.hpp"
#include "sysfs/adt7467_driver.hpp"
#include "sysfs/cpufreq.hpp"
#include "sysfs/hwmon.hpp"
#include "sysfs/powercap.hpp"
#include "sysfs/thermal_zone.hpp"
#include "sysfs/vfs.hpp"

namespace thermctl::verify {

AdversarialStream::AdversarialStream(std::uint64_t seed, bool allow_nan)
    : rng_(seed), allow_nan_(allow_nan) {
  start_segment();
}

void AdversarialStream::start_segment() {
  kind_ = static_cast<int>(rng_.below(6));
  remaining_ = 5 + static_cast<int>(rng_.below(56));
  switch (kind_) {
    case 0:  // flat
      base_ = rng_.uniform(20.0, 90.0);
      break;
    case 1:  // ramp
      slope_ = rng_.uniform(0.2, 3.0) * (rng_.uniform() < 0.5 ? -1.0 : 1.0);
      break;
    case 2:  // spike train around the current base
      spike_ = rng_.uniform(10.0, 40.0);
      spike_phase_ = false;
      break;
    case 3:  // stuck-at: hold whatever the stream last produced
      break;
    case 4:  // NaN burst (or extreme spikes on integer-converting paths)
      spike_ = rng_.uniform(1.0e4, 5.0e5);
      break;
    case 5:  // step discontinuity, then flat
      base_ += rng_.uniform(5.0, 30.0) * (rng_.uniform() < 0.5 ? -1.0 : 1.0);
      break;
    default:
      break;
  }
}

double AdversarialStream::next() {
  if (remaining_ <= 0) {
    start_segment();
  }
  --remaining_;
  switch (kind_) {
    case 0:
    case 5:
      value_ = base_;
      break;
    case 1:
      base_ += slope_;
      // Keep the ramp bounded so long runs can't walk to infinity.
      if (base_ < -200.0 || base_ > 300.0) {
        slope_ = -slope_;
      }
      value_ = base_;
      break;
    case 2:
      spike_phase_ = !spike_phase_;
      value_ = spike_phase_ ? base_ + spike_ : base_ - spike_;
      break;
    case 3:
      break;  // stuck: value_ unchanged
    case 4:
      if (allow_nan_) {
        value_ = std::numeric_limits<double>::quiet_NaN();
      } else {
        spike_phase_ = !spike_phase_;
        value_ = spike_phase_ ? spike_ : -spike_;
      }
      break;
    default:
      break;
  }
  return value_;
}

std::string FuzzReport::to_string() const {
  std::ostringstream out;
  out << "fuzz " << target << " seed=" << seed << " ticks=" << ticks << ": "
      << invariants.to_string();
  return out.str();
}

void FuzzReport::merge(const FuzzReport& other) {
  target = target.empty() ? other.target : target + "+" + other.target;
  ticks += other.ticks;
  invariants.merge(other.invariants);
}

namespace {

/// Self-contained controller rig: the full sysfs plane (hwmon + cpufreq +
/// powercap) over simulated devices with a scripted, noise-free "truth"
/// temperature, mirroring the unit tests' fixture.
struct FuzzRig {
  sysfs::VirtualFs fs;
  hw::I2cBus bus;
  hw::Adt7467 chip;
  hw::CpuDevice cpu;
  sysfs::Adt7467Driver driver{bus};
  double truth = 45.0;
  hw::ThermalSensor sensor{[this] { return Celsius{truth}; },
                           [] {
                             hw::SensorParams p;
                             p.noise_sigma_degc = 0.0;  // stream IS the scenario
                             return p;
                           }(),
                           Rng{1}};
  std::unique_ptr<sysfs::HwmonDevice> hwmon;
  std::unique_ptr<sysfs::CpufreqPolicy> cpufreq;
  std::unique_ptr<sysfs::RaplDomain> rapl;

  FuzzRig() {
    bus.attach(sysfs::Adt7467Driver::kDefaultAddress, &chip);
    if (driver.probe() != sysfs::DriverStatus::kOk) {
      abort();
    }
    hwmon = std::make_unique<sysfs::HwmonDevice>(fs, "/sys/class/hwmon", 0, sensor, driver);
    cpufreq = std::make_unique<sysfs::CpufreqPolicy>(fs, "/sys/devices/system/cpu", 0, cpu);
    rapl = std::make_unique<sysfs::RaplDomain>(fs, "/sys/class/powercap", 0, cpu);
  }

  /// One 250 ms sample of `temp`, then tick `controller`.
  template <typename Controller>
  void tick(Controller& controller, double temp, SimTime now) {
    truth = temp;
    sensor.sample();
    controller.on_sample(now);
  }
};

core::PolicyParam random_pp(Rng& rng) {
  return core::PolicyParam{static_cast<int>(1 + rng.below(100))};
}

void check_duty_bounds(const char* who, double duty_pct, double min_pct, double max_pct,
                       double t, InvariantReport& report) {
  ++report.checks;
  if (duty_pct < min_pct - 1e-9 || duty_pct > max_pct + 1e-9) {
    std::ostringstream msg;
    msg << who << " duty " << duty_pct << "% outside [" << min_pct << ", " << max_pct << "]";
    report.add(InvariantKind::kActuationRange, t, 0, msg.str(), 64);
  }
}

}  // namespace

FuzzReport fuzz_unified(std::uint64_t seed, int ticks) {
  FuzzReport report;
  report.target = "unified";
  report.seed = seed;

  FuzzRig rig;
  core::UnifiedConfig cfg;
  Rng rng{seed ^ 0xa5a5a5a5a5a5a5a5ULL};
  cfg.pp = random_pp(rng);
  cfg.fan.array_size = 2 + rng.below(99);
  cfg.tdvfs.array_size = 2 + rng.below(31);
  cfg.tdvfs.threshold = Celsius{rng.uniform(44.0, 60.0)};
  core::UnifiedController controller{*rig.hwmon, *rig.cpufreq, cfg};

  AdversarialStream stream{seed, /*allow_nan=*/false};
  SimTime now;
  std::size_t seen_events = 0;
  for (int i = 0; i < ticks; ++i) {
    now.advance_us(250000);
    rig.tick(controller, stream.next(), now);
    ++report.ticks;
    const double t = now.seconds();

    const core::DynamicFanController& fan = controller.fan();
    const core::TdvfsDaemon& dvfs = controller.dvfs();
    ++report.invariants.checks;
    if (fan.current_index() >= fan.array().size()) {
      report.invariants.add(InvariantKind::kSelectorRange, t, 0, "fan index out of range", 64);
    }
    ++report.invariants.checks;
    if (dvfs.current_index() >= dvfs.array().size()) {
      report.invariants.add(InvariantKind::kSelectorRange, t, 0, "dvfs index out of range", 64);
    }
    check_duty_bounds("unified-fan", fan.current_duty().percent(),
                      cfg.fan.min_duty.percent(), cfg.fan.max_duty.percent(), t,
                      report.invariants);

    // Fan-preferred coordination on every new DVFS down-trigger.
    const std::vector<core::TdvfsEvent>& events = dvfs.events();
    for (std::size_t k = seen_events; k < events.size(); ++k) {
      if (events[k].to_ghz >= events[k].from_ghz) {
        continue;
      }
      ++report.invariants.checks;
      const std::optional<Celsius> avg = dvfs.last_round_average();
      if (!avg.has_value() || avg->value() <= dvfs.config().threshold.value()) {
        report.invariants.add(InvariantKind::kCoordination, t, 0,
                              "dvfs down-trigger without a hot round average", 64);
      }
    }
    seen_events = events.size();

    // Occasional runtime re-tune: both arrays must survive any Pp.
    if (rng.below(200) == 0) {
      controller.set_policy(random_pp(rng));
      check_control_array(fan.array(), report.invariants, t, 0);
      check_control_array(dvfs.array(), report.invariants, t, 0);
    }
  }
  return report;
}

FuzzReport fuzz_predictive(std::uint64_t seed, int ticks) {
  FuzzReport report;
  report.target = "predictive";
  report.seed = seed;

  FuzzRig rig;
  Rng rng{seed ^ 0x5c5c5c5c5c5c5c5cULL};
  core::PredictiveFanConfig cfg;
  cfg.base.pp = random_pp(rng);
  core::PredictiveFanController controller{*rig.hwmon, *rig.rapl, cfg};

  // Phase 1: flat temperature, constant load, RAPL counter parked just below
  // the wrap boundary. The counter wraps mid-phase; a correct controller
  // computes a ~constant power and never retargets (the window sees a flat
  // line and the feed-forward delta is ~zero).
  rig.cpu.set_utilization(Utilization{0.6});
  rig.cpu.preset_counters(0, 0, sysfs::RaplDomain::kMaxEnergyRangeUj - 2'000'000ULL);
  SimTime now;
  const int wrap_ticks = std::min(ticks / 2, 400);
  for (int i = 0; i < wrap_ticks; ++i) {
    now.advance_us(250000);
    rig.cpu.advance_counters(Seconds{0.25});
    rig.tick(controller, 48.0, now);
    ++report.ticks;
  }
  ++report.invariants.checks;
  if (!controller.events().empty()) {
    std::ostringstream msg;
    msg << controller.events().size()
        << " retargets under flat temperature across a RAPL counter wrap";
    report.invariants.add(InvariantKind::kStateMachine, now.seconds(), 0, msg.str(), 64);
  }

  // Phase 2: adversarial stream with load changes; structural bounds only.
  AdversarialStream stream{seed, /*allow_nan=*/false};
  for (int i = wrap_ticks; i < ticks; ++i) {
    now.advance_us(250000);
    if (rng.below(40) == 0) {
      rig.cpu.set_utilization(Utilization{rng.uniform(0.0, 1.0)});
    }
    rig.cpu.advance_counters(Seconds{0.25});
    rig.tick(controller, stream.next(), now);
    ++report.ticks;
    const double t = now.seconds();
    ++report.invariants.checks;
    if (controller.current_index() >= cfg.base.array_size) {
      report.invariants.add(InvariantKind::kSelectorRange, t, 0,
                            "predictive index out of range", 64);
    }
    check_duty_bounds("predictive", controller.current_duty().percent(),
                      cfg.base.min_duty.percent(), cfg.base.max_duty.percent(), t,
                      report.invariants);
  }
  return report;
}

FuzzReport fuzz_pid(std::uint64_t seed, int ticks) {
  FuzzReport report;
  report.target = "pid";
  report.seed = seed;

  FuzzRig rig;
  Rng rng{seed ^ 0x3737373737373737ULL};
  core::PidFanConfig cfg;
  core::PidFanController controller{*rig.hwmon, cfg};

  AdversarialStream stream{seed, /*allow_nan=*/false};
  SimTime now;
  bool just_reset = false;
  for (int i = 0; i < ticks; ++i) {
    now.advance_us(250000);
    const std::uint64_t actuations_before = controller.actuations();
    rig.tick(controller, stream.next(), now);
    ++report.ticks;
    const double t = now.seconds();

    check_duty_bounds("pid", controller.current_duty().percent(), cfg.min_duty.percent(),
                      cfg.max_duty.percent(), t, report.invariants);
    ++report.invariants.checks;
    if (!std::isfinite(controller.integrator())) {
      report.invariants.add(InvariantKind::kRcFinite, t, 0, "pid integrator not finite", 64);
    }
    if (just_reset) {
      // Hardware-state-unknown contract: the tick after a reset must write
      // PWM even if the computed duty matches the pre-reset cache.
      ++report.invariants.checks;
      if (controller.actuations() <= actuations_before) {
        report.invariants.add(InvariantKind::kStateMachine, t, 0,
                              "no PWM write on the tick after reset()", 64);
      }
      just_reset = false;
    }
    if (rng.below(100) == 0) {
      controller.reset();
      just_reset = true;
    }
  }
  return report;
}

FuzzReport fuzz_step_wise(std::uint64_t seed, int ticks) {
  FuzzReport report;
  report.target = "step-wise";
  report.seed = seed;

  // The zone's read_temp bypasses integer sysfs conversion, so this is the
  // one hwmon-free path where genuine NaN readings can reach a controller.
  sysfs::VirtualFs fs;
  double truth = 45.0;
  sysfs::ThermalZone zone{fs, "/sys/class/thermal", 0, "fuzz",
                          [&truth] { return Celsius{truth}; }};
  double fan_duty = 10.0;
  sysfs::FanCoolingAdapter fan{[&fan_duty](DutyCycle d) {
                                 fan_duty = d.percent();
                                 return true;
                               },
                               DutyCycle{10.0}, DutyCycle{100.0}, 9};
  long freq_khz = 2400000;
  sysfs::DvfsCoolingAdapter dvfs{[&freq_khz](long khz) {
                                   freq_khz = khz;
                                   return true;
                                 },
                                 {2400000, 2200000, 2000000, 1800000}};
  zone.add_trip({Celsius{51.0}, sysfs::TripType::kPassive});
  zone.add_trip({Celsius{90.0}, sysfs::TripType::kCritical});
  zone.bind(&fan);
  zone.bind(&dvfs);
  core::StepWiseGovernor governor{zone};

  AdversarialStream stream{seed, /*allow_nan=*/true};
  SimTime now;
  for (int i = 0; i < ticks; ++i) {
    now.advance_us(250000);
    truth = stream.next();
    governor.on_sample(now);
    ++report.ticks;
    const double t = now.seconds();
    for (const sysfs::CoolingDevice* device : zone.bound_devices()) {
      ++report.invariants.checks;
      if (device->cooling_state() < 0 || device->cooling_state() > device->max_cooling_state()) {
        std::ostringstream msg;
        msg << device->cooling_type() << " cooling state " << device->cooling_state()
            << " outside [0, " << device->max_cooling_state() << "]";
        report.invariants.add(InvariantKind::kActuationRange, t, 0, msg.str(), 64);
      }
    }
    ++report.invariants.checks;
    if (fan_duty < 10.0 - 1e-9 || fan_duty > 100.0 + 1e-9) {
      report.invariants.add(InvariantKind::kActuationRange, t, 0,
                            "step-wise fan duty outside its adapter bounds", 64);
    }
  }
  return report;
}

FuzzReport fuzz_selector(std::uint64_t seed, int rounds) {
  FuzzReport report;
  report.target = "selector";
  report.seed = seed;

  Rng rng{seed ^ 0xc9c9c9c9c9c9c9c9ULL};
  auto random_delta = [&rng]() {
    switch (rng.below(5)) {
      case 0:
        return std::numeric_limits<double>::quiet_NaN();
      case 1:
        return std::numeric_limits<double>::infinity() * (rng.uniform() < 0.5 ? -1.0 : 1.0);
      case 2:
        return rng.uniform(-1.0e6, 1.0e6);  // far beyond any array span
      default:
        return rng.uniform(-10.0, 10.0);
    }
  };

  for (int i = 0; i < rounds; ++i) {
    const std::size_t n = 2 + rng.below(120);
    core::ModeSelectorConfig scfg;
    core::ModeSelector selector{scfg, n};
    core::WindowRound round;
    round.level1_delta = CelsiusDelta{random_delta()};
    round.level2_delta = CelsiusDelta{random_delta()};
    round.level1_average = Celsius{rng.uniform(-100.0, 200.0)};
    round.level2_valid = rng.uniform() < 0.7;
    const std::size_t current = rng.below(n);
    const core::ModeDecision decision = selector.decide(current, round);
    check_selector_decision(selector, decision, current, round, n, report.invariants, 0.0, 0);
    ++report.ticks;

    // Array fills: random physical mode counts and bounds, random Pp, plus
    // a runtime re-tune — every fill must keep Eq. (1)'s structure.
    if (i % 4 == 0) {
      const std::size_t m = 1 + rng.below(80);
      std::vector<double> modes;
      modes.reserve(m);
      double v = rng.uniform(0.0, 5.0);
      for (std::size_t k = 0; k < m; ++k) {
        v += rng.uniform(0.1, 2.0);  // strictly ascending effectiveness
        modes.push_back(v);
      }
      core::ThermalControlArray array{modes, 2 + rng.below(120), random_pp(rng)};
      check_control_array(array, report.invariants);
      array.set_policy(random_pp(rng));
      check_control_array(array, report.invariants);
    }
  }
  return report;
}

FuzzReport fuzz_plane(std::uint64_t seed, int ticks) {
  FuzzReport report;
  report.target = "plane";
  report.seed = seed;

  Rng rng{seed ^ 0x3b3b3b3b3b3b3b3bULL};
  const std::size_t nodes = 2 + rng.below(5);
  cluster::NodeParams params;
  params.seed = seed;
  cluster::Cluster rack{nodes, params};
  for (std::size_t i = 0; i < nodes; ++i) {
    rack.node(i).set_utilization(Utilization{0.02});
  }
  rack.settle_all();

  cluster::EngineConfig engine_cfg;
  // A plane round per 0.25 s: `ticks` rounds total, capped so one fuzz seed
  // stays a sub-second run even at the CI tick count.
  engine_cfg.horizon = Seconds{0.25 * static_cast<double>(std::min(ticks, 600))};
  cluster::Engine engine{rack, engine_cfg};

  cluster::ctrl::PlaneConfig plane_cfg;
  plane_cfg.period = Seconds{0.25};
  plane_cfg.stall_timeout = Seconds{1.0 + rng.uniform(0.0, 2.0)};
  plane_cfg.nodes_per_rack = 1 + rng.below(3);
  // Sometimes binding, sometimes generous, sometimes uncapped.
  plane_cfg.rack_budget_w = rng.uniform() < 0.75 ? rng.uniform(30.0, 200.0) : 0.0;
  plane_cfg.transport.drop_rate = rng.uniform(0.05, 0.4);
  plane_cfg.transport.reorder_rate = rng.uniform(0.05, 0.4);
  plane_cfg.transport.seed = seed;
  cluster::ctrl::ControlPlane plane{rack, plane_cfg};
  engine.attach_plane(plane);

  // Busy nodes so budgets actually bite.
  std::vector<workload::SegmentLoad> loads;
  loads.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    loads.push_back(workload::sudden_profile(Seconds{0.0}, Seconds{1.0e6}, 0.9));
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    engine.set_node_load(i, &loads[i]);
  }

  // Chaos driver: every second, maybe stall or resume a random rack, churn
  // the broadcast Pp, or push a random budget through the real message path.
  engine.add_periodic(Seconds{1.0}, [&](SimTime) {
    const auto racks = plane.rack_count();
    switch (rng.below(5)) {
      case 0:
        plane.stall_rack(rng.below(racks));
        break;
      case 1:
        plane.resume_rack(rng.below(racks));
        break;
      case 2:
        plane.broadcast_policy(static_cast<int>(1 + rng.below(100)));
        break;
      case 3: {
        // Room -> random rack: a budget anywhere in [-50, 250] W (negative
        // and zero both mean "uncapped" and must be handled).
        cluster::ctrl::Message m =
            cluster::ctrl::make_power_budget(rng.uniform(-50.0, 250.0));
        m.from = static_cast<cluster::ctrl::Endpoint>(nodes + racks);
        m.to = static_cast<cluster::ctrl::Endpoint>(nodes + rng.below(racks));
        plane.transport().send(m);
        break;
      }
      default:
        break;  // quiet second
    }
  });

  // Invariant probe, every plane round.
  engine.add_periodic(Seconds{0.25}, [&](SimTime now) {
    const double t = now.seconds();
    ++report.ticks;
    for (std::size_t i = 0; i < nodes; ++i) {
      const cluster::ctrl::NodeAgent& agent = plane.agent(i);
      const std::vector<double> table = rack.node(i).cpufreq().available_ghz();

      ++report.invariants.checks;
      if (!table.empty() && agent.cap_index() >= table.size()) {
        std::ostringstream msg;
        msg << "agent cap index " << agent.cap_index() << " off the " << table.size()
            << "-entry p-state ladder";
        report.invariants.add(InvariantKind::kActuationRange, t, i, msg.str(), 64);
      }

      ++report.invariants.checks;
      if (agent.joined() && agent.autonomous()) {
        report.invariants.add(InvariantKind::kStateMachine, t, i,
                              "agent joined but still autonomous", 64);
      }

      ++report.invariants.checks;
      const double ghz = rack.node(i).cpu().frequency().value();
      bool on_table = table.empty();
      for (double f : table) {
        on_table = on_table || std::abs(f - ghz) < 1e-9;
      }
      if (!on_table) {
        std::ostringstream msg;
        msg << "cpu frequency " << ghz << " GHz not on the advertised table";
        report.invariants.add(InvariantKind::kActuationRange, t, i, msg.str(), 64);
      }

      ++report.invariants.checks;
      if (!std::isfinite(rack.node(i).die_temperature().value())) {
        report.invariants.add(InvariantKind::kRcFinite, t, i, "non-finite die temperature",
                              64);
      }
    }
  });

  engine.run();

  // Counter coherence after the storm: every failsafe exit pairs with an
  // entry, and acks never exceed requests (the transport drops, it does not
  // duplicate).
  const cluster::ctrl::PlaneStats& stats = plane.stats();
  ++report.invariants.checks;
  if (stats.failsafe_exits > stats.failsafe_entries) {
    report.invariants.add(InvariantKind::kStateMachine, engine_cfg.horizon.value(), 0,
                          "more failsafe exits than entries", 64);
  }
  ++report.invariants.checks;
  if (stats.join_acks > stats.join_requests) {
    report.invariants.add(InvariantKind::kStateMachine, engine_cfg.horizon.value(), 0,
                          "more join acks than join requests", 64);
  }
  return report;
}

FuzzReport fuzz_all(std::uint64_t seed, int ticks) {
  FuzzReport report = fuzz_unified(seed, ticks);
  report.merge(fuzz_predictive(seed, ticks));
  report.merge(fuzz_pid(seed, ticks));
  report.merge(fuzz_step_wise(seed, ticks));
  report.merge(fuzz_selector(seed, ticks * 2));
  report.merge(fuzz_plane(seed, ticks));
  report.seed = seed;
  return report;
}

}  // namespace thermctl::verify
