// Differential oracle — determinism as a testable property.
//
// The runtime promises that several configuration axes are *behaviourally
// inert*: a parallel sweep is bit-identical to a serial one, telemetry
// (tracing + metrics) never perturbs control decisions, fault-aware
// gating is a no-op on a zero-fault run, the sharded engine
// (EngineConfig::workers > 1) reproduces the serial engine bit-for-bit,
// a *passive* control plane (full message flow, zero actuation)
// leaves a run bit-identical to one with no plane attached at all, a
// thermctld daemon given no commands is a pure observer of the run it
// hosts, and the batched fleet layout (FleetState SoA + FleetSweep +
// ControlBank family ticks) reproduces the per-node-object reference
// layout bit-for-bit.
// Each promise is load-bearing — paper figures are produced by parallel
// sweeps, telemetry is meant to be always-safe to turn on, fault-aware mode
// must not change the paper's baseline behaviour, and fleet-scale runs lean
// on sharding — and each is exactly the kind of promise that rots silently
// (a stray shared RNG, an order-dependent reduction, a telemetry branch
// with a side effect, a shard boundary that leaks mid-step state).
//
// The oracle runs the same seeded config corpus under each paired
// configuration and diffs every recorded series, summary and event log
// bit-exactly (doubles compared by bit pattern, so a NaN == NaN and a
// -0.0 != +0.0). Any diff is a bug in the runtime, not noise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace thermctl::verify {

enum class OraclePairKind : std::uint8_t {
  kSerialVsParallel,    // run_sweep(threads=1) vs run_sweep(threads=N)
  kTelemetryOnVsOff,    // trace+metrics armed vs dark
  kFaultAwareZeroFault, // fault_aware gating on vs off, no faults scheduled
  kShardedVsSerial,     // engine workers > 1 vs the serial engine
  kPlanePassiveVsDetached,  // passive control plane attached vs no plane
  kLiveTelemetryOnVsOff,    // spiller + rollups + watchdog + exposition vs dark
  kDaemonPassiveVsEngine,   // thermctld with no socket/commands vs plain run
  kBatchedVsPerNodeControl, // ControlBank/FleetSweep batched layout vs the
                            // per-node-object reference layout
};

[[nodiscard]] const char* to_string(OraclePairKind kind);

/// Bit-exact comparison outcome for one result pair.
struct ResultDiff {
  std::uint64_t fields_compared = 0;
  std::uint64_t difference_count = 0;
  /// First few mismatches, as "field[index]: bits_a != bits_b" strings.
  std::vector<std::string> differences;

  [[nodiscard]] bool identical() const { return difference_count == 0; }
};

/// Diffs everything behavioural: times, all per-node series, summaries,
/// app completion, event logs, fault stats. Telemetry payloads (trace,
/// metrics snapshot) are deliberately excluded — the telemetry pair differs
/// there by construction.
[[nodiscard]] ResultDiff diff_results(const core::ExperimentResult& a,
                                      const core::ExperimentResult& b,
                                      std::size_t max_differences = 8);

struct OracleFailure {
  std::size_t config_index = 0;
  std::string config_name;
  OraclePairKind kind{};
  ResultDiff diff;
};

struct OracleReport {
  std::size_t configs = 0;
  std::size_t pairs_checked = 0;
  std::vector<OracleFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  [[nodiscard]] std::string to_string() const;
};

struct OracleOptions {
  /// Worker threads for the parallel pass (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Mismatch strings retained per failing pair.
  std::size_t max_differences = 8;
};

/// Seeded fuzz corpus of small, fast experiment configs spanning workload
/// kinds, cluster sizes, policies, fan ceilings and tDVFS thresholds. The
/// same (seed, count) always yields the same corpus.
[[nodiscard]] std::vector<core::ExperimentConfig> make_oracle_corpus(std::uint64_t seed,
                                                                     std::size_t count);

/// Runs every config under all eight pairings and reports any diff.
[[nodiscard]] OracleReport run_oracle(const std::vector<core::ExperimentConfig>& corpus,
                                      OracleOptions options = {});

}  // namespace thermctl::verify
