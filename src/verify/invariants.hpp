// Runtime invariant checking — the verification layer's property harness.
//
// The paper's machinery has properties that hold by construction and must
// keep holding under every policy, workload and fault schedule:
//
//  * thermal control array (§3.2.2, Eq. (1)): cells non-descending in
//    cooling effectiveness, g1 pinned to the least effective physical mode,
//    gN to the most effective, cells [n_p, N] all gN, and n_p itself equal
//    to Eq. (1)'s value — after construction AND after every set_policy;
//  * mode selector (§3.2.2): the chosen target always lands in [0, N−1],
//    and a decision attributed to level two really means level one produced
//    no index change and the level-two FIFO was valid;
//  * fan-preferred coordination (§4.3): tDVFS is the performance-costly
//    technique, so a frequency down-trigger is only legitimate when the
//    round-average temperature actually exceeded the threshold — i.e. the
//    fan (which shares the same sensor and Pp) had its chance first;
//  * RC-network sanity: die temperatures stay finite, inside a physical
//    envelope, and never jump more than a bounded amount per sample period.
//
// The checker is an observer: it reads controllers and nodes after each
// sampling tick and never actuates, so an armed run is bit-identical to an
// unarmed one. Arming is off by default and costs nothing when off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/control_array.hpp"
#include "core/experiment.hpp"
#include "core/mode_selector.hpp"

namespace thermctl::verify {

enum class InvariantKind : std::uint8_t {
  kArrayOrder,           // cells not non-descending in effectiveness
  kArrayPins,            // g1/gN boundary pins broken
  kArrayFill,            // cell value not a physical mode, or n_p wrong
  kSelectorRange,        // target index outside [0, N−1]
  kSelectorAttribution,  // level-2 attribution without a level-1 no-change
  kCoordination,         // tDVFS down-trigger without a hot round average
  kRcFinite,             // non-finite die temperature
  kRcStepDelta,          // per-sample die-temperature jump above bound
  kRcEnvelope,           // die temperature outside the physical envelope
  kActuationRange,       // actuator command outside its physical bounds
  kStateMachine,         // controller state-machine contract broken
};

[[nodiscard]] const char* to_string(InvariantKind kind);

struct InvariantViolation {
  InvariantKind kind{};
  double time_s = 0.0;
  std::size_t node = 0;
  std::string message;
};

struct InvariantConfig {
  /// Stop recording (but keep counting) beyond this many violations.
  std::size_t max_violations = 64;
  /// Largest credible die-temperature change per sample period (°C). The RC
  /// network's die stage has a seconds-scale time constant; an 8 °C jump in
  /// 250 ms means the physics integrator or recorder is broken.
  double max_step_delta_c = 8.0;
  /// Physical die-temperature envelope (°C).
  double envelope_min_c = 5.0;
  double envelope_max_c = 120.0;
};

struct InvariantReport {
  std::vector<InvariantViolation> violations;
  /// Total violations found (>= violations.size() once capped).
  std::uint64_t violation_count = 0;
  /// Individual invariant evaluations performed.
  std::uint64_t checks = 0;

  [[nodiscard]] bool ok() const { return violation_count == 0; }
  void add(InvariantKind kind, double time_s, std::size_t node, std::string message,
           std::size_t cap);
  void merge(const InvariantReport& other);
  [[nodiscard]] std::string to_string() const;
};

/// Structural invariants of a control-array fill, given the raw cells. The
/// span overload exists so tests can feed deliberately corrupted fills.
void check_control_array_cells(std::span<const double> cells,
                               std::span<const double> available, std::size_t np,
                               core::PolicyParam pp, InvariantReport& report,
                               double time_s = 0.0, std::size_t node = 0,
                               std::size_t cap = 64);

/// Same checks against a live array.
void check_control_array(const core::ThermalControlArray& array, InvariantReport& report,
                         double time_s = 0.0, std::size_t node = 0, std::size_t cap = 64);

/// Selector-decision sanity: target in range, level-2 attribution legal.
void check_selector_decision(const core::ModeSelector& selector,
                             const core::ModeDecision& decision, std::size_t current,
                             const core::WindowRound& round, std::size_t array_size,
                             InvariantReport& report, double time_s = 0.0,
                             std::size_t node = 0, std::size_t cap = 64);

/// Thread-safe violation accumulator shared by every run armed from one
/// config (the oracle reuses a config across serial and parallel passes).
class InvariantLog {
 public:
  void append(const InvariantReport& report) {
    const std::lock_guard<std::mutex> lock{mu_};
    merged_.merge(report);
  }
  [[nodiscard]] InvariantReport snapshot() const {
    const std::lock_guard<std::mutex> lock{mu_};
    return merged_;
  }
  [[nodiscard]] bool ok() const { return snapshot().ok(); }

 private:
  mutable std::mutex mu_;
  InvariantReport merged_;
};

/// Per-run checker: ticks at the sampling period (registered after every
/// controller, so it observes post-decision state) and flushes its report
/// into the shared log when the rig tears down.
class RunInvariantChecker {
 public:
  RunInvariantChecker(const core::RigView& rig, InvariantConfig config,
                      std::shared_ptr<InvariantLog> log);
  ~RunInvariantChecker();

  RunInvariantChecker(const RunInvariantChecker&) = delete;
  RunInvariantChecker& operator=(const RunInvariantChecker&) = delete;

  void tick(SimTime now);

  [[nodiscard]] const InvariantReport& report() const { return report_; }

 private:
  InvariantConfig config_;
  std::shared_ptr<InvariantLog> log_;
  cluster::Cluster* cluster_ = nullptr;
  std::vector<core::DynamicFanController*> fans_;
  std::vector<core::TdvfsDaemon*> tdvfs_;
  std::vector<std::optional<double>> last_die_;
  std::vector<int> last_fan_pp_;
  std::vector<int> last_tdvfs_pp_;
  std::vector<std::size_t> seen_tdvfs_events_;
  InvariantReport report_;
};

/// Arms invariant checking on a config: every run of it builds a fresh
/// RunInvariantChecker whose findings accumulate in the returned log. Chains
/// with any observer already installed. The armed run's RunResult stays
/// bit-identical to an unarmed run.
[[nodiscard]] std::shared_ptr<InvariantLog> arm_invariants(core::ExperimentConfig& config,
                                                           InvariantConfig icfg = {});

}  // namespace thermctl::verify
