#include "verify/differential.hpp"

#include <bit>
#include <memory>
#include <sstream>

#include "common/rng.hpp"
#include "daemon/daemon.hpp"
#include "obs/openmetrics.hpp"
#include "obs/spill.hpp"
#include "runtime/sweep.hpp"

namespace thermctl::verify {

const char* to_string(OraclePairKind kind) {
  switch (kind) {
    case OraclePairKind::kSerialVsParallel:
      return "serial-vs-parallel";
    case OraclePairKind::kTelemetryOnVsOff:
      return "telemetry-on-vs-off";
    case OraclePairKind::kFaultAwareZeroFault:
      return "fault-aware-zero-fault";
    case OraclePairKind::kShardedVsSerial:
      return "sharded-vs-serial";
    case OraclePairKind::kPlanePassiveVsDetached:
      return "plane-passive-vs-detached";
    case OraclePairKind::kLiveTelemetryOnVsOff:
      return "live-telemetry-on-vs-off";
    case OraclePairKind::kDaemonPassiveVsEngine:
      return "daemon-passive-vs-engine";
    case OraclePairKind::kBatchedVsPerNodeControl:
      return "batched-vs-per-node-control";
  }
  return "unknown";
}

namespace {

/// Accumulates bit-exact field comparisons into a ResultDiff.
struct Differ {
  ResultDiff diff;
  std::size_t cap;

  explicit Differ(std::size_t max_differences) : cap(max_differences) {}

  void mismatch(const std::string& what) {
    ++diff.difference_count;
    if (diff.differences.size() < cap) {
      diff.differences.push_back(what);
    }
  }

  void f64(const std::string& name, double a, double b) {
    ++diff.fields_compared;
    // Bit-pattern equality: NaN == NaN, but -0.0 != +0.0 and any ULP drift
    // counts. Determinism means *identical*, not "close".
    if (std::bit_cast<std::uint64_t>(a) != std::bit_cast<std::uint64_t>(b)) {
      std::ostringstream msg;
      msg << name << ": " << a << " != " << b;
      mismatch(msg.str());
    }
  }

  void u64(const std::string& name, std::uint64_t a, std::uint64_t b) {
    ++diff.fields_compared;
    if (a != b) {
      std::ostringstream msg;
      msg << name << ": " << a << " != " << b;
      mismatch(msg.str());
    }
  }

  void boolean(const std::string& name, bool a, bool b) {
    u64(name, a ? 1 : 0, b ? 1 : 0);
  }

  void f64_vec(const std::string& name, const std::vector<double>& a,
               const std::vector<double>& b) {
    ++diff.fields_compared;
    if (a.size() != b.size()) {
      std::ostringstream msg;
      msg << name << ".size: " << a.size() << " != " << b.size();
      mismatch(msg.str());
      return;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      f64(name + "[" + std::to_string(i) + "]", a[i], b[i]);
    }
  }
};

void diff_run(Differ& d, const cluster::RunResult& a, const cluster::RunResult& b) {
  d.f64_vec("times", a.times, b.times);
  d.boolean("app_completed", a.app_completed, b.app_completed);
  d.f64("exec_time_s", a.exec_time_s, b.exec_time_s);

  d.u64("nodes.size", a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < std::min(a.nodes.size(), b.nodes.size()); ++i) {
    const std::string p = "node" + std::to_string(i) + ".";
    const cluster::NodeSeries& sa = a.nodes[i];
    const cluster::NodeSeries& sb = b.nodes[i];
    d.f64_vec(p + "die_temp", sa.die_temp, sb.die_temp);
    d.f64_vec(p + "sensor_temp", sa.sensor_temp, sb.sensor_temp);
    d.f64_vec(p + "duty", sa.duty, sb.duty);
    d.f64_vec(p + "rpm", sa.rpm, sb.rpm);
    d.f64_vec(p + "freq_ghz", sa.freq_ghz, sb.freq_ghz);
    d.f64_vec(p + "power_w", sa.power_w, sb.power_w);
    d.f64_vec(p + "util", sa.util, sb.util);
    d.f64_vec(p + "activity", sa.activity, sb.activity);
  }

  d.u64("summaries.size", a.summaries.size(), b.summaries.size());
  for (std::size_t i = 0; i < std::min(a.summaries.size(), b.summaries.size()); ++i) {
    const std::string p = "summary" + std::to_string(i) + ".";
    const cluster::NodeSummary& sa = a.summaries[i];
    const cluster::NodeSummary& sb = b.summaries[i];
    d.f64(p + "avg_die_temp", sa.avg_die_temp, sb.avg_die_temp);
    d.f64(p + "max_die_temp", sa.max_die_temp, sb.max_die_temp);
    d.f64(p + "avg_duty", sa.avg_duty, sb.avg_duty);
    d.f64(p + "avg_power_w", sa.avg_power_w, sb.avg_power_w);
    d.f64(p + "energy_j", sa.energy_j, sb.energy_j);
    d.u64(p + "freq_transitions", sa.freq_transitions, sb.freq_transitions);
    d.u64(p + "prochot_events", static_cast<std::uint64_t>(sa.prochot_events),
          static_cast<std::uint64_t>(sb.prochot_events));
    d.f64(p + "prochot_seconds", sa.prochot_seconds, sb.prochot_seconds);
    d.f64(p + "seconds_above_threshold", sa.seconds_above_threshold,
          sb.seconds_above_threshold);
    d.u64(p + "i2c_retries", sa.i2c_retries, sb.i2c_retries);
    d.u64(p + "i2c_naks", sa.i2c_naks, sb.i2c_naks);
    d.u64(p + "i2c_bus_faults", sa.i2c_bus_faults, sb.i2c_bus_faults);
    d.u64(p + "i2c_exhausted", sa.i2c_exhausted, sb.i2c_exhausted);
  }
}

}  // namespace

ResultDiff diff_results(const core::ExperimentResult& a, const core::ExperimentResult& b,
                        std::size_t max_differences) {
  Differ d{max_differences};
  diff_run(d, a.run, b.run);

  d.f64("first_dvfs_trigger_s", a.first_dvfs_trigger_s, b.first_dvfs_trigger_s);

  d.u64("tdvfs_events.size", a.tdvfs_events.size(), b.tdvfs_events.size());
  for (std::size_t i = 0; i < std::min(a.tdvfs_events.size(), b.tdvfs_events.size()); ++i) {
    const std::string p = "tdvfs" + std::to_string(i);
    d.u64(p + ".size", a.tdvfs_events[i].size(), b.tdvfs_events[i].size());
    for (std::size_t k = 0;
         k < std::min(a.tdvfs_events[i].size(), b.tdvfs_events[i].size()); ++k) {
      const std::string q = p + "[" + std::to_string(k) + "].";
      d.f64(q + "time_s", a.tdvfs_events[i][k].time_s, b.tdvfs_events[i][k].time_s);
      d.f64(q + "from_ghz", a.tdvfs_events[i][k].from_ghz, b.tdvfs_events[i][k].from_ghz);
      d.f64(q + "to_ghz", a.tdvfs_events[i][k].to_ghz, b.tdvfs_events[i][k].to_ghz);
    }
  }

  d.u64("fan_events.size", a.fan_events.size(), b.fan_events.size());
  for (std::size_t i = 0; i < std::min(a.fan_events.size(), b.fan_events.size()); ++i) {
    const std::string p = "fan" + std::to_string(i);
    d.u64(p + ".size", a.fan_events[i].size(), b.fan_events[i].size());
    for (std::size_t k = 0; k < std::min(a.fan_events[i].size(), b.fan_events[i].size());
         ++k) {
      const std::string q = p + "[" + std::to_string(k) + "].";
      d.f64(q + "time_s", a.fan_events[i][k].time_s, b.fan_events[i][k].time_s);
      d.f64(q + "from_duty", a.fan_events[i][k].from_duty, b.fan_events[i][k].from_duty);
      d.f64(q + "to_duty", a.fan_events[i][k].to_duty, b.fan_events[i][k].to_duty);
      d.boolean(q + "used_level2", a.fan_events[i][k].used_level2,
                b.fan_events[i][k].used_level2);
    }
  }

  const core::ControllerFaultStats& fa = a.fault_stats;
  const core::ControllerFaultStats& fb = b.fault_stats;
  d.u64("fault.failsafe_entries", fa.failsafe_entries, fb.failsafe_entries);
  d.u64("fault.failsafe_exits", fa.failsafe_exits, fb.failsafe_exits);
  d.u64("fault.dvfs_hold_entries", fa.dvfs_hold_entries, fb.dvfs_hold_entries);
  d.u64("fault.dvfs_held_ticks", fa.dvfs_held_ticks, fb.dvfs_held_ticks);
  d.u64("fault.sensor_rejected", fa.sensor_rejected, fb.sensor_rejected);
  d.u64("fault.sensor_stuck_detections", fa.sensor_stuck_detections,
        fb.sensor_stuck_detections);
  d.u64("fault.sensor_failures", fa.sensor_failures, fb.sensor_failures);
  d.u64("fault.sensor_recoveries", fa.sensor_recoveries, fb.sensor_recoveries);

  return d.diff;
}

std::vector<core::ExperimentConfig> make_oracle_corpus(std::uint64_t seed, std::size_t count) {
  std::vector<core::ExperimentConfig> corpus;
  corpus.reserve(count);
  Rng rng{seed};
  for (std::size_t i = 0; i < count; ++i) {
    core::ExperimentConfig cfg = core::paper_platform();
    cfg.name = "oracle-" + std::to_string(i);
    // Mostly small racks for speed; every fourth config is wide enough that
    // the sharded-vs-serial pair exercises multi-node shards and partitions
    // the shard count does not divide evenly.
    cfg.nodes = (i % 4 == 3) ? 4 + rng.below(5) : 1 + rng.below(3);
    cfg.seed = rng.next_u64();
    cfg.pp = core::PolicyParam{static_cast<int>(1 + rng.below(100))};
    cfg.max_duty = DutyCycle{static_cast<double>(60 + rng.below(41))};
    cfg.fan = core::FanPolicyKind::kDynamic;

    // Small, fast workloads: each point simulates 20–45 s at 1–3 nodes so a
    // >= 20-config corpus (x4 passes) stays inside a CI budget.
    switch (rng.below(3)) {
      case 0:
        cfg.workload = core::WorkloadKind::kIdle;
        cfg.engine.horizon = Seconds{rng.uniform(20.0, 35.0)};
        break;
      case 1:
        cfg.workload = core::WorkloadKind::kCpuBurn;
        cfg.cpu_burn_duration = Seconds{rng.uniform(8.0, 14.0)};
        cfg.engine.horizon = Seconds{20.0};
        break;
      default:
        cfg.workload = core::WorkloadKind::kCpuBurnCycles;
        cfg.cpu_burn_duration = Seconds{rng.uniform(40.0, 45.0)};
        break;
    }

    if (rng.uniform() < 0.5) {
      cfg.dvfs = core::DvfsPolicyKind::kTdvfs;
      // Thresholds low enough that some corpus points actually trigger.
      cfg.tdvfs.threshold = Celsius{rng.uniform(44.0, 54.0)};
    }
    corpus.push_back(std::move(cfg));
  }
  return corpus;
}

OracleReport run_oracle(const std::vector<core::ExperimentConfig>& corpus,
                        OracleOptions options) {
  OracleReport report;
  report.configs = corpus.size();

  auto record = [&](std::size_t index, OraclePairKind kind, ResultDiff diff) {
    ++report.pairs_checked;
    if (!diff.identical()) {
      report.failures.push_back(
          OracleFailure{index, corpus[index].name, kind, std::move(diff)});
    }
  };

  // Reference pass: strictly serial.
  const std::vector<core::ExperimentResult> base =
      runtime::run_sweep(corpus, runtime::SweepOptions{.threads = 1});

  // Pair 1: the same corpus across worker threads.
  {
    const std::vector<core::ExperimentResult> parallel =
        runtime::run_sweep(corpus, runtime::SweepOptions{.threads = options.threads});
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      record(i, OraclePairKind::kSerialVsParallel,
             diff_results(base[i], parallel[i], options.max_differences));
    }
  }

  // Pair 2: telemetry armed (trace + metrics). The payloads differ by
  // construction; everything behavioural must not.
  {
    std::vector<core::ExperimentConfig> lit = corpus;
    for (core::ExperimentConfig& cfg : lit) {
      cfg.telemetry.trace = true;
      cfg.telemetry.metrics = true;
    }
    const std::vector<core::ExperimentResult> traced =
        runtime::run_sweep(lit, runtime::SweepOptions{.threads = options.threads});
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      record(i, OraclePairKind::kTelemetryOnVsOff,
             diff_results(base[i], traced[i], options.max_differences));
    }
  }

  // Pair 3: fault-aware gating enabled with nothing to gate (no fault
  // campaign): the monitors watch every sample but must never intervene.
  {
    std::vector<core::ExperimentConfig> gated = corpus;
    for (core::ExperimentConfig& cfg : gated) {
      cfg.fault_aware = true;
      cfg.faults.enabled = false;
    }
    const std::vector<core::ExperimentResult> aware =
        runtime::run_sweep(gated, runtime::SweepOptions{.threads = options.threads});
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      record(i, OraclePairKind::kFaultAwareZeroFault,
             diff_results(base[i], aware[i], options.max_differences));
    }
  }

  // Pair 4: the sharded engine. Same configs, but the per-step physics phase
  // is split across 2–5 worker shards (varied per config so both divisible
  // and non-divisible node/shard partitions occur, and shard counts above
  // the node count get clamped). BSP with one barrier per step must be
  // bit-identical to the serial engine.
  {
    std::vector<core::ExperimentConfig> sharded = corpus;
    for (std::size_t i = 0; i < sharded.size(); ++i) {
      sharded[i].engine.workers = static_cast<int>(2 + i % 4);
    }
    const std::vector<core::ExperimentResult> shard_res =
        runtime::run_sweep(sharded, runtime::SweepOptions{.threads = options.threads});
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      record(i, OraclePairKind::kShardedVsSerial,
             diff_results(base[i], shard_res[i], options.max_differences));
    }
  }

  // Pair 5: a passive hierarchical control plane attached (joins, telemetry,
  // budget heartbeats all flow every plane round — over a lossy transport,
  // even) vs no plane at all. Passive agents never touch cpufreq or the
  // policy sinks, so the node behaviour must be bit-identical; plane_stats
  // is the only thing allowed to differ and is not diffed.
  {
    std::vector<core::ExperimentConfig> planed = corpus;
    for (std::size_t i = 0; i < planed.size(); ++i) {
      core::ExperimentConfig& cfg = planed[i];
      cfg.control_plane.enabled = true;
      cfg.control_plane.plane.passive = true;
      // Exercise the budget/tightening paths too: they must compute but not
      // actuate. Vary rack width so single- and multi-rack layouts occur.
      cfg.control_plane.plane.nodes_per_rack = 1 + i % 3;
      cfg.control_plane.plane.rack_budget_w = 150.0;
      cfg.control_plane.plane.room_budget_w = 400.0;
      // Faulty transport on half the corpus: drops and reorders consume the
      // plane's own RNG, which must stay isolated from the run's streams.
      if (i % 2 == 1) {
        cfg.control_plane.plane.transport.drop_rate = 0.2;
        cfg.control_plane.plane.transport.reorder_rate = 0.2;
      }
    }
    const std::vector<core::ExperimentResult> attached =
        runtime::run_sweep(planed, runtime::SweepOptions{.threads = options.threads});
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      record(i, OraclePairKind::kPlanePassiveVsDetached,
             diff_results(base[i], attached[i], options.max_differences));
    }
  }

  // Pair 6: the full live telemetry pipeline armed — streaming spiller into
  // an in-memory sink, fleet rollups on a sub-second cadence, watchdog rules
  // set low enough to actually fire, and mid-run OpenMetrics expositions
  // into a capturing sink. All of it is observation on the engine thread's
  // serial phases; node behaviour must stay bit-identical to the dark run.
  {
    std::vector<core::ExperimentConfig> live = corpus;
    // Sinks are raw non-owning pointers in TelemetryConfig; keep them alive
    // across the (possibly parallel) sweep.
    std::vector<std::unique_ptr<obs::MemorySpillSink>> spill_sinks;
    std::vector<std::unique_ptr<obs::CapturingTelemetrySink>> live_sinks;
    spill_sinks.reserve(live.size());
    live_sinks.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      core::ExperimentConfig& cfg = live[i];
      cfg.telemetry.trace = true;
      cfg.telemetry.metrics = true;
      // Tiny rings + tight budgets force wraps, deferrals and spiller
      // catch-up — the paths most likely to hide a behavioural side effect.
      cfg.telemetry.trace_ring_capacity = 32;
      cfg.telemetry.spill = true;
      cfg.telemetry.spill_cfg.period_s = 0.5;
      cfg.telemetry.spill_cfg.max_events_per_drain = i % 2 == 0 ? 0 : 16;
      spill_sinks.push_back(std::make_unique<obs::MemorySpillSink>());
      cfg.telemetry.spill_sink = spill_sinks.back().get();
      cfg.telemetry.rollup.enabled = true;
      cfg.telemetry.rollup.interval_s = 0.5;
      cfg.telemetry.rollup.nodes_per_rack = 1 + i % 3;
      cfg.telemetry.rollup.violation_temp_c = 45.0;
      cfg.telemetry.alerts = {
          {"hot-rack", obs::AlertKind::kMaxTemp, 45.0, 1.0, true},
          {"fleet-power", obs::AlertKind::kPowerOverBudget, 50.0, 0.0, false},
      };
      live_sinks.push_back(std::make_unique<obs::CapturingTelemetrySink>());
      cfg.telemetry.live_sink = live_sinks.back().get();
      cfg.telemetry.live_every = 2;
    }
    const std::vector<core::ExperimentResult> lit =
        runtime::run_sweep(live, runtime::SweepOptions{.threads = options.threads});
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      record(i, OraclePairKind::kLiveTelemetryOnVsOff,
             diff_results(base[i], lit[i], options.max_differences));
    }
  }

  // Pair 7: the same config hosted inside thermctld with no socket and no
  // commands. The daemon's control round rides the engine as one more
  // periodic observer (pet the deadman, drain an empty queue, refresh a
  // status snapshot), so a command-free daemon run must be bit-identical to
  // the plain engine run. Serial by necessity: Daemon::run() wraps
  // run_experiment itself, so it cannot go through run_sweep.
  {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      daemon::DaemonConfig dc;
      dc.experiment = corpus[i];
      // Armed but effectively un-fireable: a spurious failsafe would actuate.
      dc.watchdog_timeout_s = 3600.0;
      daemon::Daemon d{dc};
      const core::ExperimentResult hosted = d.run();
      record(i, OraclePairKind::kDaemonPassiveVsEngine,
             diff_results(base[i], hosted, options.max_differences));
    }
  }

  // Pair 8: the batched fleet layout (FleetState SoA arrays swept by
  // FleetSweep, controllers banked and ticked one periodic per family with a
  // batched sensor latch) vs the per-node-object reference layout (every
  // node its own devices, every controller its own periodic, every sensor
  // read a VirtualFs round trip). This pair runs BOTH sides itself rather
  // than reusing `base` so it can also mix in fault campaigns (live sensor
  // stuck/bus faults through the fault-aware gates) and armed telemetry —
  // the batched latch and family tick order must hold up under both, not
  // just on clean dark runs.
  {
    std::vector<core::ExperimentConfig> variant = corpus;
    for (std::size_t i = 0; i < variant.size(); ++i) {
      core::ExperimentConfig& cfg = variant[i];
      if (i % 2 == 1) {
        cfg.fault_aware = true;
        cfg.faults.enabled = true;
        cfg.faults.episodes_per_node = 2;
        cfg.faults.start_after = Seconds{2.0};
        cfg.faults.min_duration = Seconds{1.0};
        cfg.faults.max_duration = Seconds{6.0};
      }
      if (i % 3 == 1) {
        cfg.telemetry.trace = true;
        cfg.telemetry.metrics = true;
      }
    }
    std::vector<core::ExperimentConfig> batched = variant;
    for (core::ExperimentConfig& cfg : batched) {
      cfg.control_layout = core::ControlLayout::kBatched;
    }
    std::vector<core::ExperimentConfig> per_node = variant;
    for (core::ExperimentConfig& cfg : per_node) {
      cfg.control_layout = core::ControlLayout::kPerNode;
    }
    const std::vector<core::ExperimentResult> banked =
        runtime::run_sweep(batched, runtime::SweepOptions{.threads = options.threads});
    const std::vector<core::ExperimentResult> unbanked =
        runtime::run_sweep(per_node, runtime::SweepOptions{.threads = options.threads});
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      record(i, OraclePairKind::kBatchedVsPerNodeControl,
             diff_results(banked[i], unbanked[i], options.max_differences));
    }
  }

  return report;
}

std::string OracleReport::to_string() const {
  std::ostringstream out;
  out << configs << " configs, " << pairs_checked << " pairs checked, " << failures.size()
      << " failing";
  for (const OracleFailure& f : failures) {
    out << "\n  config " << f.config_index << " (" << f.config_name << ") "
        << verify::to_string(f.kind) << ": " << f.diff.difference_count << " diffs";
    for (const std::string& line : f.diff.differences) {
      out << "\n    " << line;
    }
  }
  return out.str();
}

}  // namespace thermctl::verify
