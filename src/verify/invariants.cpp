#include "verify/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "cluster/cluster.hpp"
#include "cluster/node.hpp"

namespace thermctl::verify {

const char* to_string(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kArrayOrder:
      return "array-order";
    case InvariantKind::kArrayPins:
      return "array-pins";
    case InvariantKind::kArrayFill:
      return "array-fill";
    case InvariantKind::kSelectorRange:
      return "selector-range";
    case InvariantKind::kSelectorAttribution:
      return "selector-attribution";
    case InvariantKind::kCoordination:
      return "coordination";
    case InvariantKind::kRcFinite:
      return "rc-finite";
    case InvariantKind::kRcStepDelta:
      return "rc-step-delta";
    case InvariantKind::kRcEnvelope:
      return "rc-envelope";
    case InvariantKind::kActuationRange:
      return "actuation-range";
    case InvariantKind::kStateMachine:
      return "state-machine";
  }
  return "unknown";
}

void InvariantReport::add(InvariantKind kind, double time_s, std::size_t node,
                          std::string message, std::size_t cap) {
  ++violation_count;
  if (violations.size() < cap) {
    violations.push_back(InvariantViolation{kind, time_s, node, std::move(message)});
  }
}

void InvariantReport::merge(const InvariantReport& other) {
  checks += other.checks;
  violation_count += other.violation_count;
  for (const InvariantViolation& v : other.violations) {
    if (violations.size() >= 256) {
      break;
    }
    violations.push_back(v);
  }
}

std::string InvariantReport::to_string() const {
  std::ostringstream out;
  out << checks << " checks, " << violation_count << " violations";
  for (const InvariantViolation& v : violations) {
    out << "\n  [" << verify::to_string(v.kind) << "] t=" << v.time_s << "s node=" << v.node
        << ": " << v.message;
  }
  return out.str();
}

namespace {

/// Effectiveness rank of a cell value: its index in the physical mode list
/// (which is ordered least → most effective), or nullopt if the value is not
/// a physical mode at all.
std::optional<std::size_t> rank_of(std::span<const double> available, double value) {
  for (std::size_t i = 0; i < available.size(); ++i) {
    if (available[i] == value) {
      return i;
    }
  }
  return std::nullopt;
}

}  // namespace

void check_control_array_cells(std::span<const double> cells,
                               std::span<const double> available, std::size_t np,
                               core::PolicyParam pp, InvariantReport& report, double time_s,
                               std::size_t node, std::size_t cap) {
  if (cells.empty() || available.empty()) {
    ++report.checks;
    report.add(InvariantKind::kArrayFill, time_s, node, "empty array or mode list", cap);
    return;
  }

  // Eq. (1) recomputed from scratch must agree with the fill's n_p.
  ++report.checks;
  const std::size_t expected_np = core::ThermalControlArray::eq1_np(pp, cells.size());
  if (np != expected_np) {
    std::ostringstream msg;
    msg << "n_p=" << np << " but Eq. (1) gives " << expected_np << " for Pp=" << pp.value
        << ", N=" << cells.size();
    report.add(InvariantKind::kArrayFill, time_s, node, msg.str(), cap);
  }

  // Boundary pins: g1 least effective, gN most effective.
  ++report.checks;
  if (cells.front() != available.front()) {
    std::ostringstream msg;
    msg << "g1=" << cells.front() << " is not the least effective mode " << available.front();
    report.add(InvariantKind::kArrayPins, time_s, node, msg.str(), cap);
  }
  ++report.checks;
  if (cells.back() != available.back()) {
    std::ostringstream msg;
    msg << "gN=" << cells.back() << " is not the most effective mode " << available.back();
    report.add(InvariantKind::kArrayPins, time_s, node, msg.str(), cap);
  }

  // Every cell holds a physical mode; ranks are non-descending; the plateau
  // [n_p, N] is all gN.
  std::size_t prev_rank = 0;
  bool have_prev = false;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ++report.checks;
    const std::optional<std::size_t> rank = rank_of(available, cells[i]);
    if (!rank.has_value()) {
      std::ostringstream msg;
      msg << "cell " << i + 1 << " holds " << cells[i] << ", not a physical mode";
      report.add(InvariantKind::kArrayFill, time_s, node, msg.str(), cap);
      have_prev = false;
      continue;
    }
    if (have_prev && *rank < prev_rank) {
      std::ostringstream msg;
      msg << "cell " << i + 1 << " (" << cells[i] << ") less effective than cell " << i << " ("
          << cells[i - 1] << ")";
      report.add(InvariantKind::kArrayOrder, time_s, node, msg.str(), cap);
    }
    // Plateau: cells [n_p, N] all hold gN — except cell 1 when n_p == 1,
    // where the §3.2.2 g1 boundary pin takes precedence over the plateau
    // (the fill forces cells_.front() back to the least effective mode).
    if (i + 1 >= np && cells[i] != available.back() && !(i == 0 && np == 1)) {
      std::ostringstream msg;
      msg << "cell " << i + 1 << " in plateau [n_p=" << np << ", N] holds " << cells[i]
          << ", not gN=" << available.back();
      report.add(InvariantKind::kArrayFill, time_s, node, msg.str(), cap);
    }
    prev_rank = *rank;
    have_prev = true;
  }
}

void check_control_array(const core::ThermalControlArray& array, InvariantReport& report,
                         double time_s, std::size_t node, std::size_t cap) {
  check_control_array_cells(array.cells(), array.available_modes(), array.np(),
                            array.policy(), report, time_s, node, cap);
}

void check_selector_decision(const core::ModeSelector& selector,
                             const core::ModeDecision& decision, std::size_t current,
                             const core::WindowRound& round, std::size_t array_size,
                             InvariantReport& report, double time_s, std::size_t node,
                             std::size_t cap) {
  ++report.checks;
  if (decision.target >= array_size) {
    std::ostringstream msg;
    msg << "target " << decision.target << " outside [0, " << array_size - 1 << "]";
    report.add(InvariantKind::kSelectorRange, time_s, node, msg.str(), cap);
  }
  ++report.checks;
  if (!decision.changed && decision.target != current) {
    std::ostringstream msg;
    msg << "unchanged decision moved index " << current << " -> " << decision.target;
    report.add(InvariantKind::kSelectorAttribution, time_s, node, msg.str(), cap);
  }
  if (decision.used_level2) {
    // Level-2 attribution is only legal when level one produced no change
    // and the FIFO actually held enough rounds for Δt_L2 to mean anything.
    ++report.checks;
    if (selector.apply(current, round.level1_delta) != current) {
      report.add(InvariantKind::kSelectorAttribution, time_s, node,
                 "level-2 attribution but level-1 delta already moved the index", cap);
    }
    ++report.checks;
    if (!round.level2_valid) {
      report.add(InvariantKind::kSelectorAttribution, time_s, node,
                 "level-2 attribution from an invalid level-2 FIFO", cap);
    }
  }
}

RunInvariantChecker::RunInvariantChecker(const core::RigView& rig, InvariantConfig config,
                                         std::shared_ptr<InvariantLog> log)
    : config_(config), log_(std::move(log)), cluster_(rig.cluster), fans_(rig.fans),
      tdvfs_(rig.tdvfs) {
  last_die_.resize(cluster_ != nullptr ? cluster_->size() : 0);
  last_fan_pp_.assign(fans_.size(), -1);
  last_tdvfs_pp_.assign(tdvfs_.size(), -1);
  seen_tdvfs_events_.assign(tdvfs_.size(), 0);
}

RunInvariantChecker::~RunInvariantChecker() {
  if (log_ != nullptr) {
    log_->append(report_);
  }
}

void RunInvariantChecker::tick(SimTime now) {
  const double t = now.seconds();
  const std::size_t cap = config_.max_violations;

  // RC-network sanity, per node.
  for (std::size_t i = 0; cluster_ != nullptr && i < cluster_->size(); ++i) {
    const double die = cluster_->node(i).die_temperature().value();
    ++report_.checks;
    if (!std::isfinite(die)) {
      report_.add(InvariantKind::kRcFinite, t, i, "die temperature not finite", cap);
      last_die_[i].reset();
      continue;
    }
    ++report_.checks;
    if (die < config_.envelope_min_c || die > config_.envelope_max_c) {
      std::ostringstream msg;
      msg << "die " << die << " degC outside [" << config_.envelope_min_c << ", "
          << config_.envelope_max_c << "]";
      report_.add(InvariantKind::kRcEnvelope, t, i, msg.str(), cap);
    }
    ++report_.checks;
    if (last_die_[i].has_value() && std::abs(die - *last_die_[i]) > config_.max_step_delta_c) {
      std::ostringstream msg;
      msg << "die jumped " << die - *last_die_[i] << " degC in one sample period";
      report_.add(InvariantKind::kRcStepDelta, t, i, msg.str(), cap);
    }
    last_die_[i] = die;
  }

  // Dynamic fan controllers: index in range; full array re-check whenever
  // the policy changed (construction counts as a change).
  for (std::size_t j = 0; j < fans_.size(); ++j) {
    const core::DynamicFanController* fan = fans_[j];
    ++report_.checks;
    if (fan->current_index() >= fan->array().size()) {
      std::ostringstream msg;
      msg << "fan index " << fan->current_index() << " >= N=" << fan->array().size();
      report_.add(InvariantKind::kSelectorRange, t, j, msg.str(), cap);
    }
    const int pp = fan->array().policy().value;
    if (pp != last_fan_pp_[j]) {
      check_control_array(fan->array(), report_, t, j, cap);
      last_fan_pp_[j] = pp;
    }
  }

  // tDVFS daemons: index in range, array fill on policy change, and the
  // coordination invariant on every new down-trigger.
  for (std::size_t j = 0; j < tdvfs_.size(); ++j) {
    const core::TdvfsDaemon* daemon = tdvfs_[j];
    ++report_.checks;
    if (daemon->current_index() >= daemon->array().size()) {
      std::ostringstream msg;
      msg << "tdvfs index " << daemon->current_index() << " >= N=" << daemon->array().size();
      report_.add(InvariantKind::kSelectorRange, t, j, msg.str(), cap);
    }
    const int pp = daemon->array().policy().value;
    if (pp != last_tdvfs_pp_[j]) {
      check_control_array(daemon->array(), report_, t, j, cap);
      last_tdvfs_pp_[j] = pp;
    }
    const std::vector<core::TdvfsEvent>& events = daemon->events();
    for (std::size_t k = seen_tdvfs_events_[j]; k < events.size(); ++k) {
      const core::TdvfsEvent& e = events[k];
      if (e.to_ghz >= e.from_ghz) {
        continue;  // restore (or lateral): no coordination obligation
      }
      // Fan-preferred ordering (§4.3): DVFS costs performance, so a
      // down-trigger is only legitimate once the shared sensor's round
      // average actually crossed the threshold — while the average is below
      // it, cooling demand belongs to the fan (which still has headroom by
      // definition of "not hot enough to trigger").
      ++report_.checks;
      const std::optional<Celsius> avg = daemon->last_round_average();
      const double threshold = daemon->config().threshold.value();
      if (!avg.has_value() || avg->value() <= threshold) {
        std::ostringstream msg;
        msg << "down-trigger " << e.from_ghz << " -> " << e.to_ghz << " GHz with round average ";
        if (avg.has_value()) {
          msg << avg->value() << " degC <= threshold " << threshold << " degC";
        } else {
          msg << "unset";
        }
        report_.add(InvariantKind::kCoordination, t, j, msg.str(), cap);
      }
    }
    seen_tdvfs_events_[j] = events.size();
  }
}

std::shared_ptr<InvariantLog> arm_invariants(core::ExperimentConfig& config,
                                             InvariantConfig icfg) {
  auto log = std::make_shared<InvariantLog>();
  // Chain: an already-installed observer keeps running first.
  auto prev = config.on_rig_built;
  config.on_rig_built = [log, icfg, prev = std::move(prev)](const core::RigView& rig) {
    if (prev) {
      prev(rig);
    }
    // Fresh checker per run: the same armed config may run many times
    // (serial + parallel oracle passes) and checkers must not share mutable
    // state across runs. The engine owns the periodic task (and with it the
    // checker); teardown flushes into the shared log.
    auto checker = std::make_shared<RunInvariantChecker>(rig, icfg, log);
    rig.engine->add_periodic(rig.config->node_params.sample_period,
                             [checker](SimTime now) { checker->tick(now); });
  };
  return log;
}

}  // namespace thermctl::verify
