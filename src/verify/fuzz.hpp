// Deterministic controller fuzzing — adversarial sensor streams against
// every controller in the stack.
//
// The experiment harness only ever shows controllers physically plausible
// temperatures (the RC network is smooth by construction), so the fuzzer
// exists to drive them with everything the RC network will never produce:
// spikes, steep ramps, stuck-at values, NaN bursts, step discontinuities,
// and RAPL counters parked just below their wrap boundary. Each fuzz run is
// seeded and fully replayable — a violation report carries the seed, and
// re-running with that seed reproduces the exact stream.
//
// Checked properties per controller:
//  * UnifiedController — fan/DVFS indices stay inside their arrays, duty
//    stays inside [min_duty, max_duty], both arrays survive random
//    set_policy re-fills, DVFS down-triggers honour the fan-preferred
//    coordination invariant;
//  * PredictiveFanController — a RAPL wrap under flat temperature and
//    constant load must not retarget the fan (the wrap-corrected power
//    delta is ~zero); duty bounds as above;
//  * PidFanController — duty clamps to its bounds under any input, the
//    integrator stays finite, and a reset() is always followed by an
//    actuation on the next tick (the hardware-state-unknown contract);
//  * StepWiseGovernor — bound cooling devices never leave [0, max_state],
//    NaN zone temperatures are treated as "no trend" rather than stepping;
//  * ModeSelector / ThermalControlArray — decisions on random (including
//    non-finite) window rounds stay in range with legal level-2
//    attribution; random fills keep every Eq. (1) structural property.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "verify/invariants.hpp"

namespace thermctl::verify {

/// Seeded generator of adversarial per-sample temperatures: segments of
/// 5–60 samples, each one of {flat, ramp, spike train, stuck-at, NaN burst,
/// step}. With `allow_nan` false (for paths that convert readings through
/// integer sysfs attributes), NaN-burst segments become extreme-magnitude
/// spike segments instead.
class AdversarialStream {
 public:
  AdversarialStream(std::uint64_t seed, bool allow_nan);

  /// Next sample (°C). Finite values stay within ±5·10⁵ °C.
  double next();

 private:
  void start_segment();

  Rng rng_;
  bool allow_nan_;
  int kind_ = 0;
  int remaining_ = 0;
  double base_ = 45.0;
  double slope_ = 0.0;
  double spike_ = 0.0;
  double value_ = 45.0;
  bool spike_phase_ = false;
};

struct FuzzReport {
  std::string target;
  std::uint64_t seed = 0;
  std::uint64_t ticks = 0;
  InvariantReport invariants;

  [[nodiscard]] bool ok() const { return invariants.ok(); }
  [[nodiscard]] std::string to_string() const;
  void merge(const FuzzReport& other);
};

[[nodiscard]] FuzzReport fuzz_unified(std::uint64_t seed, int ticks = 2000);
[[nodiscard]] FuzzReport fuzz_predictive(std::uint64_t seed, int ticks = 2000);
[[nodiscard]] FuzzReport fuzz_pid(std::uint64_t seed, int ticks = 2000);
[[nodiscard]] FuzzReport fuzz_step_wise(std::uint64_t seed, int ticks = 2000);
[[nodiscard]] FuzzReport fuzz_selector(std::uint64_t seed, int rounds = 4000);
/// Hierarchical control plane under a hostile transport: seeded message
/// drop/reorder rates, rack coordinators stalling and resuming mid-run, and
/// random budget/Pp churn injected through the real message path. Checks
/// per plane round that caps stay on the p-state ladder, CPU frequency
/// stays on the advertised table, the join/failsafe state machine stays
/// coherent, and die temperatures stay finite.
[[nodiscard]] FuzzReport fuzz_plane(std::uint64_t seed, int ticks = 2000);

/// All of the above under one seed; reports merge into one.
[[nodiscard]] FuzzReport fuzz_all(std::uint64_t seed, int ticks = 2000);

}  // namespace thermctl::verify
