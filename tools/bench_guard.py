#!/usr/bin/env python3
"""Throughput regression gate for the engine hot path.

Runs `micro_engine_throughput` (best of N short runs), reads its JSON
report, and fails when `hot_path.steps_per_sec` lands below the checked-in
floor in tools/bench_floor.json.

The floor is deliberately far below the recorded baseline in
BENCH_engine.json: CI runners, sanitizer overhead, and shared developer
machines differ from the benchmarking host by integer factors, and this
gate exists to catch *structural* regressions — a de-vectorized RC batch,
an accidentally quadratic engine loop, per-step allocation — not 20 %%
scheduling noise. Raise the floor only after the recorded baseline itself
moves up by more than the gap.

Single-core runners: when the bench report says parallelism_available is
false, the floor is multiplied by single_core_floor_scale from the floor
file (a scale of 0 skips the gate) — the recorded floor assumes worker
parallelism that a one-hardware-thread machine cannot provide.

Usage:
    tools/bench_guard.py <path-to-micro_engine_throughput> [options]

Exit status: 0 when the best run clears the floor, 1 otherwise.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile


def run_once(bench, horizon, max_scale, timeout_s):
    """One bench invocation; returns the parsed JSON report."""
    with tempfile.TemporaryDirectory() as tmp:
        out = pathlib.Path(tmp) / "bench.json"
        cmd = [
            str(bench),
            "--horizon", str(horizon),
            # The guard ladder stops at --ladder-scale: enough points to gate
            # the fleet-scale falloff without the full 100k build each run.
            "--max-scale", str(max_scale),
            "--sweep-points", "2",
            "--out", str(out),
        ]
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL, timeout=timeout_s)
        return json.loads(out.read_text())


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench", help="path to the micro_engine_throughput binary")
    parser.add_argument("--floor-file",
                        default=str(pathlib.Path(__file__).with_name("bench_floor.json")),
                        help="JSON file holding hot_path_steps_per_sec_floor")
    parser.add_argument("--floor", type=float, default=None,
                        help="override the floor (steps/sec) instead of reading the file")
    parser.add_argument("--runs", type=int, default=3,
                        help="bench invocations; the best one is judged (default 3)")
    parser.add_argument("--horizon", type=float, default=60.0,
                        help="simulated seconds per run (default 60)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-run wall clock limit in seconds")
    parser.add_argument("--ladder-scale", type=int, default=2048,
                        help="largest scaling-ladder point to run and gate "
                             "(default 2048; floors for absent points are skipped)")
    args = parser.parse_args()

    bench = pathlib.Path(args.bench)
    if not bench.exists():
        print(f"bench_guard: bench binary not found: {bench}", file=sys.stderr)
        return 1

    floor_doc = json.loads(pathlib.Path(args.floor_file).read_text())
    if args.floor is not None:
        floor = args.floor
    else:
        floor = float(floor_doc["hot_path_steps_per_sec_floor"])

    best = 0.0
    best_node_steps = 0.0
    ladder_best = {}  # node count -> best node_steps_per_sec across runs
    parallelism_available = True
    for i in range(max(1, args.runs)):
        report = run_once(bench, args.horizon, max_scale=args.ladder_scale,
                          timeout_s=args.timeout)
        sps = float(report["hot_path"]["steps_per_sec"])
        nsps = float(report["hot_path"].get("node_steps_per_sec", 0.0))
        parallelism_available = bool(report.get("parallelism_available", True))
        print(f"bench_guard: run {i + 1}: {sps:,.0f} steps/s "
              f"({nsps:,.0f} node-steps/s)")
        for point in report.get("scaling", []):
            nodes = int(point["nodes"])
            point_nsps = float(point.get("node_steps_per_sec", 0.0))
            ladder_best[nodes] = max(ladder_best.get(nodes, 0.0), point_nsps)
        if sps > best:
            best, best_node_steps = sps, nsps

    if not parallelism_available:
        # The floor was recorded on a multi-core host where the sharded
        # engine's workers actually run in parallel; on a single-hardware-
        # thread runner the same workload is structurally slower and the
        # unscaled floor would flag healthy builds. Scale it by the factor
        # checked in next to the floor (0 disables the gate entirely here).
        scale = float(floor_doc.get("single_core_floor_scale", 0.0))
        scaled = floor * scale
        print(f"bench_guard: runner reports parallelism_available=false "
              f"(single hardware thread); scaling floor {floor:,.0f} -> "
              f"{scaled:,.0f} (x{scale})")
        floor = scaled
        if floor <= 0.0:
            print("bench_guard: floor disabled on this runner (scale 0); "
                  "throughput recorded but not gated")
            print(f"bench_guard: best {best:,.0f} steps/s -> PASS (ungated)")
            return 0

    verdict = "PASS" if best >= floor else "FAIL"
    print(f"bench_guard: best {best:,.0f} steps/s vs floor {floor:,.0f} -> {verdict}")
    if best < floor:
        print("bench_guard: hot-path throughput regressed below the checked-in "
              "floor; see tools/bench_guard.py for what this gate is meant to "
              "catch before adjusting the floor.", file=sys.stderr)
        return 1

    # Per-ladder-point floors: node_steps_per_sec at each fleet size must not
    # collapse. This is what catches a reintroduced per-node dispatch path or
    # a de-vectorized RC batch — regressions the 16-node hot path never sees.
    ladder_floors = {int(k): float(v) for k, v in
                     floor_doc.get("scaling_node_steps_per_sec_floors", {}).items()}
    ladder_scale = 1.0
    if not parallelism_available:
        ladder_scale = float(floor_doc.get("single_core_ladder_floor_scale", 1.0))
    failed_points = []
    for nodes in sorted(ladder_floors):
        if nodes not in ladder_best:
            continue  # above --ladder-scale in this guard run
        point_floor = ladder_floors[nodes] * ladder_scale
        got = ladder_best[nodes]
        point_verdict = "PASS" if got >= point_floor or point_floor <= 0.0 else "FAIL"
        print(f"bench_guard: ladder {nodes:>6} nodes: {got:,.0f} node-steps/s "
              f"vs floor {point_floor:,.0f} -> {point_verdict}")
        if point_verdict == "FAIL":
            failed_points.append(nodes)
    if failed_points:
        print(f"bench_guard: fleet-scale throughput regressed at "
              f"{failed_points} nodes; the batched control path or the "
              f"vectorized RC substeps likely lost their layout win.",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
